//! Figure 13: linear vs random read bandwidth under the closed-page
//! policy, across request sizes — plus the open-page ablation quantifying
//! what HMC gives up.

use hmc_bench::{bench_mc, print_comparisons, Comparison};
use hmc_core::experiments::page_policy::{figure13, figure13_table, page_policy_ablation};
use hmc_core::hmc_host::workload::Addressing;
use hmc_core::{AccessPattern, SystemConfig};

fn main() {
    let cfg = SystemConfig::default();
    let mc = bench_mc();
    let points = figure13(&cfg, &mc);
    println!("{}", figure13_table(&points));

    let bw = |pattern: AccessPattern, mode: Addressing, bytes: u64| {
        points
            .iter()
            .find(|p| p.pattern == pattern && p.addressing == mode && p.size.bytes() == bytes)
            .map_or(0.0, |p| p.bandwidth_gbs)
    };
    let v16 = AccessPattern::Vaults(16);
    let v1 = AccessPattern::Vaults(1);
    let ablation = page_policy_ablation(&cfg, &mc);
    println!(
        "## Open-page ablation (linear, 1 vault, 128 B)\n\
         closed page: {:.1} GB/s   open page: {:.1} GB/s   row hits: {}\n",
        ablation.closed_gbs, ablation.open_gbs, ablation.open_row_hits
    );

    print_comparisons(
        "Figure 13",
        &[
            Comparison::range(
                "16 vaults: random / linear at 128 B",
                "equal (closed page; random slightly ahead)",
                bw(v16, Addressing::Random, 128) / bw(v16, Addressing::Linear, 128),
                "x",
                0.85,
                1.15,
            ),
            Comparison::range(
                "1 vault: random / linear at 128 B",
                "equal (no row-buffer benefit)",
                bw(v1, Addressing::Random, 128) / bw(v1, Addressing::Linear, 128),
                "x",
                0.85,
                1.15,
            ),
            Comparison::range(
                "16 vaults: 128 B over 16 B bandwidth",
                "climbs with block size (overhead amortized)",
                bw(v16, Addressing::Random, 128) / bw(v16, Addressing::Random, 16),
                "x",
                1.7,
                3.5,
            ),
            Comparison::range(
                "open-page gain on the friendliest workload",
                "small (256 B rows): closed page is cheap",
                ablation.open_gbs / ablation.closed_gbs,
                "x",
                0.9,
                1.5,
            ),
        ],
    );
}
