//! Figure 7: bandwidth of `ro` / `rw` / `wo` across the access-pattern
//! axis at 128 B — the request-kind ordering experiment.

use hmc_bench::{bench_mc, paper, print_comparisons, Comparison};
use hmc_core::experiments::bandwidth::{figure7, figure7_table};
use hmc_core::{AccessPattern, SystemConfig};
use hmc_types::RequestKind;

fn main() {
    let cfg = SystemConfig::default();
    let points = figure7(&cfg, &bench_mc());
    println!("{}", figure7_table(&points));

    let bw = |pattern: AccessPattern, kind: RequestKind| {
        points
            .iter()
            .find(|p| p.pattern == pattern && p.kind == kind)
            .map_or(0.0, |p| p.bandwidth_gbs)
    };
    let v16 = AccessPattern::Vaults(16);
    let ro = bw(v16, RequestKind::ReadOnly);
    let rw = bw(v16, RequestKind::ReadModifyWrite);
    let wo = bw(v16, RequestKind::WriteOnly);
    print_comparisons(
        "Figure 7",
        &[
            Comparison::range(
                "ro 128 B over 16 vaults",
                format!("≈{} GB/s", paper::RO_16V_128B_GBS),
                ro,
                "GB/s",
                17.0,
                24.0,
            ),
            Comparison::range(
                "rw beats ro (bi-directional utilization)",
                "rw > ro",
                rw / ro,
                "x",
                1.01,
                2.0,
            ),
            Comparison::range(
                "rw / wo ratio",
                format!("≈{}x (reads limited by writes)", paper::RW_OVER_WO),
                rw / wo,
                "x",
                1.6,
                2.4,
            ),
            Comparison::range(
                "8 banks ≈ 1 vault (bus-saturated)",
                "equal within noise",
                bw(AccessPattern::Banks(8), RequestKind::ReadOnly)
                    / bw(AccessPattern::Vaults(1), RequestKind::ReadOnly),
                "x",
                0.8,
                1.2,
            ),
        ],
    );
}
