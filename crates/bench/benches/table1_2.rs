//! Tables I and II: structural properties of the HMC generations and the
//! flit sizes of every transaction type, regenerated from the model's
//! spec/packet laws.

use hmc_bench::{print_comparisons, Comparison};
use hmc_core::Table;
use hmc_types::packet::{OpKind, TransactionSizes};
use hmc_types::{HmcSpec, HmcVersion, LinkConfig, RequestSize};

fn table1() -> Table {
    let mut t = Table::new(
        "Table I: properties of HMC versions",
        &["property", "HMC 1.0", "HMC 1.1", "HMC 2.0"],
    );
    let specs: Vec<HmcSpec> = [HmcVersion::Gen1, HmcVersion::Gen2, HmcVersion::Hmc2]
        .into_iter()
        .map(HmcSpec::of)
        .collect();
    let row = |name: &str, f: &dyn Fn(&HmcSpec) -> String| {
        let mut cells = vec![name.to_string()];
        cells.extend(specs.iter().map(f));
        cells
    };
    t.row(row("size (GB)", &|s| {
        format!("{:.1}", s.capacity_bytes() as f64 / (1 << 30) as f64)
    }));
    t.row(row("DRAM layers", &|s| s.dram_layers().to_string()));
    t.row(row("quadrants", &|s| s.num_quadrants().to_string()));
    t.row(row("vaults", &|s| s.num_vaults().to_string()));
    t.row(row("vaults/quadrant", &|s| {
        s.vaults_per_quadrant().to_string()
    }));
    t.row(row("banks", &|s| s.total_banks().to_string()));
    t.row(row("banks/vault", &|s| s.banks_per_vault().to_string()));
    t.row(row("bank size (MB)", &|s| {
        (s.bank_bytes() >> 20).to_string()
    }));
    t.row(row("partition size (MB)", &|s| {
        (s.partition_bytes() >> 20).to_string()
    }));
    t
}

fn table2() -> Table {
    let mut t = Table::new(
        "Table II: request/response sizes in flits",
        &["size", "rd req", "rd resp", "wr req", "wr resp"],
    );
    for size in RequestSize::ALL {
        let rd = TransactionSizes::of(OpKind::Read, size);
        let wr = TransactionSizes::of(OpKind::Write, size);
        t.row(vec![
            size.to_string(),
            rd.request_flits().count().to_string(),
            rd.response_flits().count().to_string(),
            wr.request_flits().count().to_string(),
            wr.response_flits().count().to_string(),
        ]);
    }
    t
}

fn main() {
    println!("{}", table1());
    println!("{}", table2());
    let gen2 = HmcSpec::of(HmcVersion::Gen2);
    let links = LinkConfig::ac510();
    print_comparisons(
        "Tables I & II",
        &[
            Comparison::range(
                "total banks, 4 GB HMC 1.1 (Eq. 1)",
                format!("{}", hmc_bench::paper::TOTAL_BANKS_GEN2),
                gen2.total_banks() as f64,
                "banks",
                256.0,
                256.0,
            ),
            Comparison::range(
                "peak bandwidth, 2x half-width @15 Gb/s (Eq. 2)",
                format!("{} GB/s", hmc_bench::paper::PEAK_BANDWIDTH_GBS),
                links.peak_bandwidth_bytes_per_sec() as f64 / 1e9,
                "GB/s",
                60.0,
                60.0,
            ),
            Comparison::range(
                "wire efficiency at 128 B",
                "89%",
                RequestSize::MAX.wire_efficiency() * 100.0,
                "%",
                88.0,
                90.0,
            ),
            Comparison::range(
                "wire efficiency at 16 B",
                "50%",
                RequestSize::MIN.wire_efficiency() * 100.0,
                "%",
                50.0,
                50.0,
            ),
        ],
    );
}
