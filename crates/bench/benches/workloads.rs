//! Application kernels and the address-mapping ablation: what the cube
//! gives real access patterns, and what the Address Mapping Mode
//! Register's degrees of freedom are worth.

use hmc_bench::{bench_mc, print_comparisons, Comparison};
use hmc_core::experiments::faults::{ber_sweep, faults_table, BER_AXIS};
use hmc_core::experiments::generations::{generation_sweep, generations_table};
use hmc_core::experiments::kernels::{kernels_table, run_kernels, Kernel};
use hmc_core::experiments::mapping::{mapping_ablation, mapping_table};
use hmc_core::SystemConfig;
use hmc_types::InterleaveOrder;

fn main() {
    let cfg = SystemConfig::default();
    let mc = bench_mc();

    let kernels = run_kernels(&cfg, &mc);
    println!("{}", kernels_table(&kernels));

    let mapping = mapping_ablation(&cfg, &mc);
    println!("{}", mapping_table(&mapping));

    let faults = ber_sweep(&cfg, &BER_AXIS, &mc);
    println!("{}", faults_table(&faults));

    let gens = generation_sweep(&mc);
    println!("{}", generations_table(&gens));

    let get = |k: Kernel| kernels.iter().find(|r| r.kernel == k).expect("present");
    let hot_default = mapping
        .iter()
        .find(|p| p.order == InterleaveOrder::VaultThenBank && p.max_block.bytes() == 128)
        .expect("present");
    let hot_bank_first = mapping
        .iter()
        .find(|p| p.order == InterleaveOrder::BankThenVault && p.max_block.bytes() == 128)
        .expect("present");
    print_comparisons(
        "Kernels, mapping, faults, generations",
        &[
            Comparison::range(
                "rare lane errors (1e-9) cost nothing",
                "integrity machinery absorbs them",
                faults[1].bandwidth_gbs / faults[0].bandwidth_gbs,
                "x",
                0.97,
                1.03,
            ),
            Comparison::range(
                "heavy lane errors (1e-5) derate the ceiling",
                "retries burn wire time",
                faults[4].bandwidth_gbs / faults[0].bandwidth_gbs,
                "x",
                0.5,
                0.98,
            ),
            Comparison::range(
                "HMC 2.0 (4 links) over HMC 1.1 read ceiling",
                "projection for the then-unreleased part",
                gens[2].ro_gbs / gens[1].ro_gbs,
                "x",
                1.3,
                2.5,
            ),
            Comparison::range(
                "scan == gather (closed page: locality is free to ignore)",
                "conclusion (iii) of the paper",
                get(Kernel::Scan).bandwidth_gbs / get(Kernel::Gather).bandwidth_gbs,
                "x",
                0.85,
                1.15,
            ),
            Comparison::range(
                "pointer chase pays one round trip per hop",
                "~unloaded latency per dependent access",
                get(Kernel::PointerChase).latency_ns,
                "ns",
                550.0,
                900.0,
            ),
            Comparison::range(
                "hot 2 KB structure vs scan bandwidth",
                "small structures are parallelism-starved",
                get(Kernel::HotSpot).bandwidth_gbs / get(Kernel::Scan).bandwidth_gbs,
                "x",
                0.3,
                0.95,
            ),
            Comparison::range(
                "bank-first interleave on a 2 KB buffer",
                "packs it into one vault: ~10 GB/s cap",
                hot_bank_first.hot_buffer_gbs,
                "GB/s",
                8.0,
                12.0,
            ),
            Comparison::range(
                "default interleave on the same buffer",
                "spreads it across all 16 vaults",
                hot_default.hot_buffer_gbs / hot_bank_first.hot_buffer_gbs,
                "x",
                1.4,
                2.5,
            ),
        ],
    );
}
