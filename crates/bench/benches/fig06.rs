//! Figure 6: bandwidth as an eight-bit zero-mask walks across the address
//! bits, restricting traffic to one bank, one vault, two vaults, ... —
//! the experiment that exposes the address-mapping hierarchy.

use hmc_bench::{bench_mc, print_comparisons, Comparison};
use hmc_core::experiments::bandwidth::{figure6, figure6_table};
use hmc_core::SystemConfig;
use hmc_types::RequestKind;

fn main() {
    let cfg = SystemConfig::default();
    let points = figure6(&cfg, &bench_mc());
    println!("{}", figure6_table(&points));

    let bw = |label: &str, kind: RequestKind| {
        points
            .iter()
            .find(|p| p.label == label && p.kind == kind)
            .map_or(0.0, |p| p.bandwidth_gbs)
    };
    let ro = RequestKind::ReadOnly;
    print_comparisons(
        "Figure 6",
        &[
            Comparison::range(
                "row-only mask (24-31) ro bandwidth",
                "near peak, ≈21 GB/s",
                bw("24-31", ro),
                "GB/s",
                16.0,
                24.0,
            ),
            Comparison::range(
                "one-bank mask (7-14) is the minimum",
                "global minimum of the sweep",
                bw("7-14", ro),
                "GB/s",
                0.5,
                2.0,
            ),
            Comparison::range(
                "drop from two vaults (2-9) to one vault (3-10)",
                "large drop (vault ceiling 10 GB/s)",
                bw("2-9", ro) / bw("3-10", ro),
                "x",
                1.5,
                3.0,
            ),
            Comparison::range(
                "one-vault mask (3-10) bandwidth",
                "≈10 GB/s internal ceiling",
                bw("3-10", ro),
                "GB/s",
                8.0,
                12.0,
            ),
        ],
    );
}
