//! Figures 17 and 18: latency–bandwidth curves from small-scale GUPS
//! (1–9 active ports), with the Little's-law saturation analysis the
//! paper performs on the 4-bank and 2-bank patterns.

use hmc_bench::{paper, print_comparisons, sweep_mc, Comparison};
use hmc_core::experiments::latency::{curves_table, figure17, figure18};
use hmc_core::{AccessPattern, SystemConfig};
use hmc_types::RequestSize;

fn main() {
    let cfg = SystemConfig::default();
    let mc = sweep_mc();

    let f17 = figure17(&cfg, &mc);
    println!(
        "{}",
        curves_table("Figure 17: 4-bank and 2-bank sweeps", &f17)
    );

    // Figure 18 at two representative sizes (all nine patterns).
    let sizes = [RequestSize::new(32).expect("valid"), RequestSize::MAX];
    let f18 = figure18(&cfg, &sizes, &mc);
    println!("{}", curves_table("Figure 18: all patterns", &f18));

    let outstanding = |pattern: AccessPattern, bytes: u64| {
        f17.iter()
            .find(|c| c.pattern == pattern && c.size.bytes() == bytes)
            .and_then(|c| c.analysis.points.last())
            .map_or(0.0, |p| p.outstanding())
    };
    let o4 = outstanding(AccessPattern::Banks(4), 128);
    let o2 = outstanding(AccessPattern::Banks(2), 128);
    let sat = |pattern: AccessPattern, bytes: u64| {
        f18.iter()
            .find(|c| c.pattern == pattern && c.size.bytes() == bytes)
            .map_or(0.0, |c| c.analysis.saturation_bandwidth_gbs())
    };
    let v1 = sat(AccessPattern::Vaults(1), 128);
    let v2 = sat(AccessPattern::Vaults(2), 128);
    print_comparisons(
        "Figures 17 & 18",
        &[
            Comparison::range(
                "outstanding at saturation, 4 banks (Little's law)",
                format!("≈{}", paper::OUTSTANDING_4BANK),
                o4,
                "requests",
                200.0,
                600.0,
            ),
            Comparison::range(
                "4-bank / 2-bank outstanding ratio",
                "≈2x (one queue per bank)",
                o4 / o2,
                "x",
                1.5,
                2.5,
            ),
            Comparison::range(
                "1-vault saturation bandwidth",
                format!("≈{} GB/s", paper::VAULT_CEILING_GBS),
                v1,
                "GB/s",
                8.0,
                12.0,
            ),
            Comparison::range(
                "2-vault / 1-vault saturation ratio",
                "≈2x (19 GB/s vs 10 GB/s)",
                v2 / v1,
                "x",
                1.5,
                2.4,
            ),
        ],
    );
}
