//! Figure 16: high-load read latency across patterns and sizes — the
//! queueing-dominated regime where targeted patterns pay microseconds.

use hmc_bench::{bench_mc, paper, print_comparisons, Comparison};
use hmc_core::experiments::latency::{figure16, figure16_table};
use hmc_core::{AccessPattern, SystemConfig};

fn main() {
    let cfg = SystemConfig::default();
    let points = figure16(&cfg, &bench_mc());
    println!("{}", figure16_table(&points));

    let lat = |pattern: AccessPattern, bytes: u64| {
        points
            .iter()
            .find(|p| p.pattern == pattern && p.size.bytes() == bytes)
            .map_or(0.0, |p| p.latency_ns)
    };
    print_comparisons(
        "Figure 16",
        &[
            Comparison::range(
                "32 B across 16 vaults",
                format!("{} ns", paper::HIGH_LOAD_32B_16V_NS),
                lat(AccessPattern::Vaults(16), 32),
                "ns",
                1_200.0,
                4_500.0,
            ),
            Comparison::range(
                "128 B to one bank",
                format!("{} ns", paper::HIGH_LOAD_128B_1BANK_NS),
                lat(AccessPattern::Banks(1), 128),
                "ns",
                12_000.0,
                40_000.0,
            ),
            Comparison::range(
                "one bank / 16 vaults latency ratio (128 B)",
                "order of magnitude (queueing at the bank)",
                lat(AccessPattern::Banks(1), 128) / lat(AccessPattern::Vaults(16), 128),
                "x",
                3.0,
                20.0,
            ),
            Comparison::range(
                "32 B faster than 128 B at the same pattern",
                "32 B always lower (one DRAM-bus beat)",
                lat(AccessPattern::Banks(1), 32) / lat(AccessPattern::Banks(1), 128),
                "x",
                0.1,
                0.99,
            ),
        ],
    );
}
