//! Table III and Figures 9–12: the thermal and power characterization —
//! temperature and system power per access pattern under the four cooling
//! environments, their linear fits against bandwidth, and the cooling
//! power needed to hold a temperature as bandwidth grows.

use hmc_bench::{bench_mc, paper, print_comparisons, Comparison};
use hmc_core::experiments::thermal::{
    figure10_table, figure11, figure11_table, figure12, figure9_10, figure9_table, table3,
};
use hmc_core::SystemConfig;
use hmc_types::RequestKind;
use sim_engine::LinearFit;

fn main() {
    println!("{}", table3());

    let cfg = SystemConfig::default();
    let mc = bench_mc();
    let mut all = Vec::new();
    for kind in RequestKind::ALL {
        let outcomes = figure9_10(&cfg, kind, &mc);
        println!("{}", figure9_table(kind, &outcomes));
        println!("{}", figure10_table(kind, &outcomes));
        all.extend(outcomes);
    }

    let f11 = figure11(&all);
    println!("{}", figure11_table(&f11));

    println!("## Figure 12: cooling power to hold a surface temperature");
    for line in figure12(&all, &[50.0, 55.0, 60.0]) {
        let first = line.points.first().map_or(0.0, |p| p.1);
        let last = line.points.last().map_or(0.0, |p| p.1);
        let max_bw = line.points.last().map_or(0.0, |p| p.0);
        println!(
            "  {} hold {:.0} C: {:.2} W at 0 GB/s -> {:.2} W at {:.1} GB/s",
            line.kind, line.target_c, first, last, max_bw
        );
    }

    // Headline comparisons.
    let ro_fit: Option<&LinearFit> = f11
        .temp_fits
        .iter()
        .find(|(k, _)| *k == RequestKind::ReadOnly)
        .map(|(_, f)| f);
    let ro_power: Option<&LinearFit> = f11
        .power_fits
        .iter()
        .find(|(k, _)| *k == RequestKind::ReadOnly)
        .map(|(_, f)| f);
    let wo_fit = f11
        .temp_fits
        .iter()
        .find(|(k, _)| *k == RequestKind::WriteOnly)
        .map(|(_, f)| f);
    let temp_rise = ro_fit.map_or(0.0, |f| f.predict(20.0) - f.predict(5.0));
    let power_rise = ro_power.map_or(0.0, |f| f.predict(20.0) - f.predict(5.0));
    let wo_slope_ratio = match (ro_fit, wo_fit) {
        (Some(r), Some(w)) => w.slope / r.slope,
        _ => 0.0,
    };
    let ro_fail = all
        .iter()
        .filter(|o| o.kind == RequestKind::ReadOnly && o.failure.is_some())
        .count();
    let write_fail = all
        .iter()
        .filter(|o| o.kind != RequestKind::ReadOnly && o.failure.is_some())
        .count();
    let cooling_lines = figure12(&all, &[55.0]);
    let ro_line = cooling_lines
        .iter()
        .find(|l| l.kind == RequestKind::ReadOnly)
        .expect("ro line exists");
    let span_bw = ro_line.points.last().unwrap().0 - ro_line.points.first().unwrap().0;
    let span_w = ro_line.points.last().unwrap().1 - ro_line.points.first().unwrap().1;
    let cooling_per_16 = if span_bw > 0.0 {
        span_w / span_bw * 16.0
    } else {
        0.0
    };

    print_comparisons(
        "Figures 9-12 / Table III",
        &[
            Comparison::range(
                "temperature rise 5 -> 20 GB/s, ro, Cfg2",
                format!("≈{} C", paper::TEMP_RISE_5_TO_20_C),
                temp_rise,
                "C",
                1.5,
                6.0,
            ),
            Comparison::range(
                "device power rise 5 -> 20 GB/s",
                format!("≈{} W", paper::POWER_RISE_5_TO_20_W),
                power_rise,
                "W",
                1.0,
                3.5,
            ),
            Comparison::range(
                "wo temperature slope vs ro slope",
                "writes more temperature-sensitive (steeper)",
                wo_slope_ratio,
                "x",
                1.05,
                3.0,
            ),
            Comparison::range(
                "read-only thermal failures across all configs",
                "none (ro survives even weak cooling)",
                ro_fail as f64,
                "failures",
                0.0,
                0.0,
            ),
            Comparison::range(
                "write-workload thermal failures (weak cooling)",
                "wo/rw fail under weak cooling (~75 C limit)",
                write_fail as f64,
                "failures",
                1.0,
                40.0,
            ),
            Comparison::range(
                "cooling power growth per 16 GB/s (hold 55 C)",
                format!("≈{} W", paper::COOLING_W_PER_16_GBS),
                cooling_per_16,
                "W",
                0.5,
                3.0,
            ),
        ],
    );
    println!(
        "\nKnown divergence: the paper's Fig 9b omits wo at Cfg3 (failure); in this model\n\
         wo at Cfg3 settles a few degrees below the write limit and survives. The write\n\
         failure band is reproduced at Cfg4. See EXPERIMENTS.md."
    );
}
