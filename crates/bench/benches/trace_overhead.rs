//! Benchmarks the cost of lifecycle tracing: the same full-scale window
//! with the tracer disabled (the default — every record call is one
//! predictable branch), fully enabled, and enabled with sparse event-log
//! sampling. The disabled case is the one that must stay within a few
//! percent of a build without any instrumentation.

use criterion::{criterion_group, criterion_main, Criterion};
use hmc_core::hmc_host::Workload;
use hmc_core::system::{System, SystemConfig};
use hmc_types::{RequestKind, RequestSize, Time, TimeDelta};
use std::hint::black_box;

fn run_window(trace: Option<u64>) -> u64 {
    let mut sys = System::new(SystemConfig::default());
    if let Some(sample_every) = trace {
        sys.enable_tracing(sample_every);
    }
    sys.host_mut().apply_workload(&Workload::full_scale(
        RequestKind::ReadModifyWrite,
        RequestSize::new(64).expect("valid"),
    ));
    sys.host_mut().start(Time::ZERO);
    sys.run_for(TimeDelta::from_us(50));
    sys.host().total_issued()
}

fn bench_trace_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("trace_overhead");
    g.sample_size(10);
    g.bench_function("disabled", |b| b.iter(|| black_box(run_window(None))));
    g.bench_function("enabled_sample_all", |b| {
        b.iter(|| black_box(run_window(Some(1))))
    });
    g.bench_function("enabled_sample_1_in_128", |b| {
        b.iter(|| black_box(run_window(Some(128))))
    });
    g.finish();
}

criterion_group!(benches, bench_trace_overhead);
criterion_main!(benches);
