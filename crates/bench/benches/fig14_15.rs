//! Figure 14 (TX-path latency deconstruction) and Figure 15 (low-load
//! latency of 2–28-request streams at each size).

use hmc_bench::{paper, print_comparisons, Comparison};
use hmc_core::experiments::latency::{
    figure14, figure14_table, figure15, figure15_table, FIG15_SIZES,
};
use hmc_core::SystemConfig;
use hmc_types::RequestSize;

fn main() {
    let cfg = SystemConfig::default();
    let d128 = figure14(&cfg, RequestSize::MAX);
    println!("{}", figure14_table(&d128));
    let d16 = figure14(&cfg, RequestSize::MIN);

    let points = figure15(&cfg);
    for bytes in FIG15_SIZES {
        let size = RequestSize::new(bytes).expect("valid");
        println!("{}", figure15_table(size, &points));
    }

    let avg = |bytes: u64, n: usize| {
        points
            .iter()
            .find(|p| p.size.bytes() == bytes && p.n == n)
            .map_or(0.0, |p| p.avg_ns)
    };
    let max_growth_128 = {
        let p2 = points
            .iter()
            .find(|p| p.size.bytes() == 128 && p.n == 2)
            .unwrap();
        let p28 = points
            .iter()
            .find(|p| p.size.bytes() == 128 && p.n == 28)
            .unwrap();
        p28.max_ns - p2.max_ns
    };
    print_comparisons(
        "Figures 14 & 15",
        &[
            Comparison::range(
                "minimum round trip, 16 B read",
                format!("{} ns", paper::MIN_LATENCY_16B_NS),
                d16.measured_ns,
                "ns",
                500.0,
                820.0,
            ),
            Comparison::range(
                "minimum round trip, 128 B read",
                format!("{} ns", paper::MIN_LATENCY_128B_NS),
                d128.measured_ns,
                "ns",
                550.0,
                880.0,
            ),
            Comparison::range(
                "infrastructure share (TX + RX)",
                format!("{} ns", paper::INFRA_NS),
                d128.infra_ns,
                "ns",
                400.0,
                600.0,
            ),
            Comparison::range(
                "in-cube share",
                format!("≈{} ns average", paper::IN_CUBE_NS),
                d128.in_cube_ns,
                "ns",
                70.0,
                280.0,
            ),
            Comparison::range(
                "28-packet stream: 128 B avg over 16 B avg",
                "≈1.5x (interference grows with size)",
                avg(128, 28) / avg(16, 28),
                "x",
                1.05,
                2.0,
            ),
            Comparison::range(
                "max latency growth with stream length (128 B)",
                "maximum grows; minimum stays flat",
                max_growth_128,
                "ns",
                30.0,
                2_000.0,
            ),
        ],
    );
}
