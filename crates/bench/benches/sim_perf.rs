//! Criterion benchmarks of the simulator itself (not the paper's
//! experiments): how fast the event core, device, and full system run.

use criterion::{criterion_group, criterion_main, Criterion};
use hmc_core::experiments::bandwidth;
use hmc_core::hmc_host::Workload;
use hmc_core::system::{System, SystemConfig};
use hmc_core::MeasureConfig;
use hmc_types::{RequestKind, RequestSize, Time, TimeDelta};
use sim_engine::{exec, EventQueue, SplitMix64};
use std::hint::black_box;

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::with_capacity(1024);
            let mut rng = SplitMix64::new(7);
            for i in 0..10_000u64 {
                q.push(Time::from_ps(rng.next_below(1_000_000)), i);
            }
            let mut sum = 0u64;
            while let Some((_, v)) = q.pop() {
                sum = sum.wrapping_add(v);
            }
            black_box(sum)
        })
    });
}

fn bench_full_system(c: &mut Criterion) {
    let mut g = c.benchmark_group("full_system");
    g.sample_size(10);
    g.bench_function("full_scale_ro_128B_50us", |b| {
        b.iter(|| {
            let mut sys = System::new(SystemConfig::default());
            sys.host_mut().apply_workload(&Workload::full_scale(
                RequestKind::ReadOnly,
                RequestSize::MAX,
            ));
            sys.host_mut().start(Time::ZERO);
            sys.run_for(TimeDelta::from_us(50));
            black_box(sys.host().total_issued())
        })
    });
    g.bench_function("full_scale_rw_64B_50us", |b| {
        b.iter(|| {
            let mut sys = System::new(SystemConfig::default());
            sys.host_mut().apply_workload(&Workload::full_scale(
                RequestKind::ReadModifyWrite,
                RequestSize::new(64).expect("valid"),
            ));
            sys.host_mut().start(Time::ZERO);
            sys.run_for(TimeDelta::from_us(50));
            black_box(sys.host().total_issued())
        })
    });
    g.bench_function("single_bank_flood_50us", |b| {
        b.iter(|| {
            let cfg = SystemConfig::default();
            let mask = hmc_core::AccessPattern::Banks(1)
                .mask(cfg.mem.mapping, &cfg.mem.spec)
                .expect("valid");
            let mut sys = System::new(cfg);
            sys.host_mut().apply_workload(&Workload::masked(
                RequestKind::ReadOnly,
                RequestSize::MAX,
                mask,
            ));
            sys.host_mut().start(Time::ZERO);
            sys.run_for(TimeDelta::from_us(50));
            black_box(sys.host().total_issued())
        })
    });
    g.finish();
}

/// Sweep throughput: the Figure 7 grid (27 independent measurement
/// points) through the parallel executor, serial vs. all cores. The
/// ratio of the two is the perf-regression headline for the executor;
/// on a single-core host both report the same time.
fn bench_sweep(c: &mut Criterion) {
    let mc = MeasureConfig {
        warmup: TimeDelta::from_us(20),
        window: TimeDelta::from_us(60),
    };
    let cfg = SystemConfig::default();
    let mut g = c.benchmark_group("sweep_fig7");
    g.sample_size(3);
    g.bench_function("serial", |b| {
        exec::set_threads(1);
        b.iter(|| black_box(bandwidth::figure7(&cfg, &mc).len()));
    });
    g.bench_function("all_cores", |b| {
        exec::set_threads(0);
        b.iter(|| black_box(bandwidth::figure7(&cfg, &mc).len()));
    });
    exec::set_threads(0);
    g.finish();
}

criterion_group!(benches, bench_event_queue, bench_full_system, bench_sweep);
criterion_main!(benches);
