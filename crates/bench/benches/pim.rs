//! PIM projection: in-stack update throughput vs host-driven updates, and
//! the thermal envelope of logic-layer compute — the paper's motivating
//! scenario ("a sustained [PIM] operation can eventually lead to failure
//! by exceeding the operational temperature").

use hmc_bench::{bench_mc, print_comparisons, Comparison};
use hmc_core::hmc_host::Workload;
use hmc_core::hmc_thermal::{CoolingConfig, FailurePolicy};
use hmc_core::measure::run_measurement;
use hmc_core::{SystemConfig, Table};
use hmc_pim::experiments::{measure_pim, thermal_envelope};
use hmc_pim::PimConfig;
use hmc_types::{RequestKind, RequestSize, TimeDelta};

fn main() {
    let sys_cfg = SystemConfig::default();
    let mc = bench_mc();
    let window = TimeDelta::from_us(200);

    // Host-driven updates: rw over the external links.
    let host = run_measurement(
        &sys_cfg,
        &Workload::full_scale(RequestKind::ReadModifyWrite, RequestSize::MIN),
        &mc,
    );
    let host_updates = host.host.writes_completed as f64 / mc.window.as_secs_f64();

    // In-stack updates: the PIM fabric, vault-local.
    let pim = measure_pim(
        &sys_cfg.mem,
        &PimConfig::default(),
        &CoolingConfig::cfg1(),
        window,
    );

    let mut t = Table::new(
        "Host-driven vs in-stack updates (16 B read-modify-write)",
        &["driver", "updates M/s", "mem latency ns", "link GB/s"],
    );
    t.row(vec![
        "host rw over SerDes".into(),
        format!("{:.1}", host_updates / 1e6),
        format!("{:.0}", host.mean_latency_ns()),
        format!("{:.1}", host.bandwidth_gbs),
    ]);
    t.row(vec![
        "PIM in logic layer".into(),
        format!("{:.1}", pim.ops_per_sec / 1e6),
        format!("{:.0}", pim.mem_latency_ns),
        "0.0".into(),
    ]);
    println!("{t}");

    let rows = thermal_envelope(
        &sys_cfg.mem,
        &PimConfig::default(),
        &FailurePolicy::default(),
        window,
    );
    let mut et = Table::new(
        "PIM thermal envelope: max sustainable update rate per cooling config",
        &["cooling", "max updates M/s", "surface C", "throttled?"],
    );
    for r in &rows {
        et.row(vec![
            r.cooling.to_string(),
            format!("{:.1}", r.max_ops_per_sec / 1e6),
            format!("{:.1}", r.surface_c),
            if r.unconstrained {
                "no".into()
            } else {
                "yes".into()
            },
        ]);
    }
    println!("{et}");

    print_comparisons(
        "PIM projection",
        &[
            Comparison::range(
                "PIM / host update-rate advantage",
                "in-stack updates dodge the link+packet path",
                pim.ops_per_sec / host_updates,
                "x",
                1.3,
                20.0,
            ),
            Comparison::range(
                "in-stack memory latency",
                "a fraction of the ~650 ns external round trip",
                pim.mem_latency_ns,
                "ns",
                20.0,
                400.0,
            ),
            Comparison::range(
                "envelope monotone: Cfg1 over Cfg4 sustainable rate",
                "stronger cooling buys more in-stack compute",
                rows[0].max_ops_per_sec / rows[3].max_ops_per_sec.max(1.0),
                "x",
                1.0,
                1e9,
            ),
        ],
    );
}
