//! Read-ratio sweep — validates the related-work result the paper cites:
//! HMCSim (Rosenfeld) and OpenHMC (Schmidt et al.) both found maximum
//! link utilization at a read ratio between 53 % and 66 %.

use hmc_bench::{bench_mc, print_comparisons, Comparison};
use hmc_core::experiments::read_ratio::{optimal_ratio, read_ratio_sweep, read_ratio_table};
use hmc_core::SystemConfig;
use hmc_types::RequestSize;

fn main() {
    let cfg = SystemConfig::default();
    let points = read_ratio_sweep(&cfg, RequestSize::MAX, 10, &bench_mc());
    println!("{}", read_ratio_table(&points));

    let peak = optimal_ratio(&points).expect("sweep not empty");
    let pure_reads = points.last().expect("sweep not empty");
    let pure_writes = points.first().expect("sweep not empty");
    print_comparisons(
        "Read-ratio sweep (related work: HMCSim / OpenHMC)",
        &[
            Comparison::range(
                "optimal read ratio",
                "53-66 % reads maximizes link utilization",
                peak.read_fraction * 100.0,
                "%",
                40.0,
                80.0,
            ),
            Comparison::range(
                "peak over pure reads",
                "mixed traffic fills both directions",
                peak.bandwidth_gbs / pure_reads.bandwidth_gbs,
                "x",
                1.1,
                2.0,
            ),
            Comparison::range(
                "peak over pure writes",
                "writes alone idle the downstream direction",
                peak.bandwidth_gbs / pure_writes.bandwidth_gbs,
                "x",
                1.3,
                3.5,
            ),
        ],
    );
}
