//! Figure 8: read-only bandwidth and MRPS across request sizes — the
//! experiment showing that small requests trade bandwidth for request
//! rate, bounded by DRAM timing and link processing rather than FPGA
//! buffer sizes.

use hmc_bench::{bench_mc, print_comparisons, Comparison};
use hmc_core::experiments::bandwidth::{figure8, figure8_table};
use hmc_core::{AccessPattern, SystemConfig};

fn main() {
    let cfg = SystemConfig::default();
    let points = figure8(&cfg, &bench_mc());
    println!("{}", figure8_table(&points));

    let at = |pattern: AccessPattern, bytes: u64| {
        points
            .iter()
            .find(|p| p.pattern == pattern && p.size.bytes() == bytes)
            .copied()
            .expect("point exists")
    };
    let v16 = AccessPattern::Vaults(16);
    let b2 = AccessPattern::Banks(2);
    print_comparisons(
        "Figure 8",
        &[
            Comparison::range(
                "16 vaults: 32 B MRPS over 128 B MRPS",
                "≈2x as many requests handled",
                at(v16, 32).mrps / at(v16, 128).mrps,
                "x",
                1.4,
                2.4,
            ),
            Comparison::range(
                "16 vaults: 32 B bandwidth below 128 B",
                "smaller requests waste overhead",
                at(v16, 32).bandwidth_gbs / at(v16, 128).bandwidth_gbs,
                "x",
                0.4,
                0.9,
            ),
            Comparison::range(
                "2 banks: request rate similar across sizes",
                "similar number of requests (DRAM-bound)",
                at(b2, 32).mrps / at(b2, 128).mrps,
                "x",
                0.8,
                1.6,
            ),
        ],
    );
}
