//! The DDR baseline comparison and the design-choice ablations DESIGN.md
//! calls out: bank-queue depth (moves the Figure 17 knee), write-drain
//! rate (moves the wo ceiling), and the packet-processing overhead (moves
//! the read ceiling).

use hmc_bench::{bench_mc, print_comparisons, sweep_mc, Comparison};
use hmc_core::experiments::baseline::{baseline_table, compare, random_access_throughput};
use hmc_core::experiments::latency::latency_bandwidth_curve;
use hmc_core::hmc_host::Workload;
use hmc_core::measure::run_measurement;
use hmc_core::{AccessPattern, SystemConfig};
use hmc_types::{RequestKind, RequestSize, TimeDelta};

fn main() {
    let cfg = SystemConfig::default();
    let mc = bench_mc();

    // --- DDR baseline -------------------------------------------------
    let rows: Vec<_> = [16u64, 64, 128]
        .into_iter()
        .map(|b| compare(&cfg, RequestSize::new(b).expect("valid"), &mc))
        .collect();
    println!("{}", baseline_table(&rows));
    let (hmc_rand, ddr_rand) = random_access_throughput(&cfg, &mc);
    println!(
        "Random 128 B read data throughput: HMC {hmc_rand:.1} GB/s vs DDR {ddr_rand:.1} GB/s\n"
    );

    // --- Ablation: bank queue depth ------------------------------------
    println!("## Ablation: per-bank queue depth (4-bank pattern, 128 B)");
    let mut knee_outstanding = Vec::new();
    for depth in [30usize, 60, 120, 240] {
        let mut c = cfg.clone();
        c.mem.vault.bank_queue_depth = depth;
        let curve =
            latency_bandwidth_curve(&c, AccessPattern::Banks(4), RequestSize::MAX, &sweep_mc());
        let o = curve
            .analysis
            .points
            .last()
            .map_or(0.0, |p| p.outstanding());
        println!("  depth {depth:>3}: deepest-sweep outstanding {o:>6.0}");
        knee_outstanding.push(o);
    }

    // --- Ablation: write drain rate ------------------------------------
    println!("\n## Ablation: posted-write drain rate (wo, 128 B, 16 vaults)");
    let mut wo_bw = Vec::new();
    for gbs in [5u64, 10, 20, 40] {
        let mut c = cfg.clone();
        c.mem.link_layer.write_drain_bytes_per_sec = gbs * 1_000_000_000;
        let m = run_measurement(
            &c,
            &Workload::full_scale(RequestKind::WriteOnly, RequestSize::MAX),
            &mc,
        );
        println!(
            "  drain {gbs:>2} GB/s: wo counted bandwidth {:>5.1} GB/s",
            m.bandwidth_gbs
        );
        wo_bw.push(m.bandwidth_gbs);
    }

    // --- Ablation: packet-processing overhead --------------------------
    println!("\n## Ablation: link packet-processing overhead (ro, 128 B)");
    let mut ro_bw = Vec::new();
    for ns in [0u64, 4, 7, 12] {
        let mut c = cfg.clone();
        c.mem.link_layer.packet_overhead = TimeDelta::from_ns(ns);
        let m = run_measurement(
            &c,
            &Workload::full_scale(RequestKind::ReadOnly, RequestSize::MAX),
            &mc,
        );
        println!(
            "  overhead {ns:>2} ns: ro counted bandwidth {:>5.1} GB/s",
            m.bandwidth_gbs
        );
        ro_bw.push(m.bandwidth_gbs);
    }

    let c128 = &rows[2];
    print_comparisons(
        "Baseline & ablations",
        &[
            Comparison::range(
                "HMC unloaded latency premium over DDR",
                "packet interface costs ~10x unloaded",
                c128.hmc_unloaded_ns / c128.ddr_unloaded_ns,
                "x",
                5.0,
                25.0,
            ),
            Comparison::range(
                "HMC in-cube share over one DDR access",
                "≈2x a closed-page DRAM access",
                c128.hmc_in_cube_ns / c128.ddr_unloaded_ns,
                "x",
                1.0,
                6.0,
            ),
            Comparison::range(
                "HMC / DDR loaded bandwidth (128 B reads)",
                "HMC wins on concurrency",
                c128.hmc_bandwidth_gbs / c128.ddr_bandwidth_gbs,
                "x",
                1.05,
                4.0,
            ),
            Comparison::range(
                "bank-queue depth doubles -> outstanding grows",
                "knee position tracks queue capacity",
                knee_outstanding[3] / knee_outstanding[1],
                "x",
                1.5,
                6.0,
            ),
            Comparison::range(
                "write drain halved -> wo bandwidth drops",
                "wo ceiling tracks the drain knob",
                wo_bw[0] / wo_bw[1],
                "x",
                0.3,
                0.8,
            ),
            Comparison::range(
                "zero packet overhead -> ro ceiling rises",
                "read ceiling tracks the overhead knob",
                ro_bw[0] / ro_bw[2],
                "x",
                1.1,
                2.5,
            ),
        ],
    );
}
