//! Shared infrastructure for the benchmark harness: the paper's reference
//! numbers and the paper-vs-measured comparison printer.
//!
//! Every `benches/` target regenerates one table or figure of the paper
//! and prints (a) the reproduced rows/series and (b) a paper-vs-measured
//! summary of the headline quantities. `cargo bench --workspace` therefore
//! emits the full reproduction record (tee it into `bench_output.txt`).

use hmc_core::measure::MeasureConfig;
use hmc_types::TimeDelta;

pub mod dashboard;
pub mod paper;

/// The measurement window benches use. Set `HMC_BENCH_FAST=1` to shrink it
/// (useful in CI) at some cost in measurement noise.
pub fn bench_mc() -> MeasureConfig {
    // The fast-mode switch scales the measurement window only; every
    // simulated statistic within a window stays bit-identical.
    // hmc-lint: allow(env-read)
    if std::env::var_os("HMC_BENCH_FAST").is_some() {
        MeasureConfig {
            warmup: TimeDelta::from_us(30),
            window: TimeDelta::from_us(150),
        }
    } else {
        MeasureConfig {
            warmup: TimeDelta::from_us(100),
            window: TimeDelta::from_us(600),
        }
    }
}

/// A faster window for the many-point sweeps (Figures 17/18).
pub fn sweep_mc() -> MeasureConfig {
    // Same fast-mode switch as `bench_mc`: window length, not results.
    // hmc-lint: allow(env-read)
    if std::env::var_os("HMC_BENCH_FAST").is_some() {
        MeasureConfig {
            warmup: TimeDelta::from_us(25),
            window: TimeDelta::from_us(100),
        }
    } else {
        MeasureConfig {
            warmup: TimeDelta::from_us(50),
            window: TimeDelta::from_us(250),
        }
    }
}

/// One paper-vs-measured comparison row.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// What is being compared.
    pub what: &'static str,
    /// The paper's reported value (as prose).
    pub paper: String,
    /// Our measured value.
    pub measured: String,
    /// Whether the shape criterion holds.
    pub ok: bool,
}

impl Comparison {
    /// Builds a row from a numeric measurement and an acceptance range.
    pub fn range(
        what: &'static str,
        paper: impl Into<String>,
        measured: f64,
        unit: &str,
        lo: f64,
        hi: f64,
    ) -> Self {
        Comparison {
            what,
            paper: paper.into(),
            measured: format!("{measured:.2} {unit}"),
            ok: (lo..=hi).contains(&measured),
        }
    }
}

/// Prints a comparison block with a PASS/DIVERGES marker per row.
pub fn print_comparisons(title: &str, rows: &[Comparison]) {
    println!("\n=== paper vs measured: {title} ===");
    for r in rows {
        println!(
            "  [{}] {:<46} paper: {:<28} measured: {}",
            if r.ok { "ok" } else { "!!" },
            r.what,
            r.paper,
            r.measured
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_range_marks_pass_and_fail() {
        let ok = Comparison::range("x", "≈21", 20.0, "GB/s", 17.0, 24.0);
        assert!(ok.ok);
        let bad = Comparison::range("x", "≈21", 40.0, "GB/s", 17.0, 24.0);
        assert!(!bad.ok);
        assert!(bad.measured.contains("40.00"));
    }

    #[test]
    fn windows_are_positive() {
        let mc = bench_mc();
        assert!(mc.window.as_ps() > 0);
        let s = sweep_mc();
        assert!(s.window.as_ps() > 0);
        assert!(s.window <= mc.window);
    }
}
