//! A dependency-free live terminal dashboard for long-running chain
//! simulations.
//!
//! The dashboard is a *view* over the chain's own observability surface:
//! every displayed number is read from the per-cube gauge samplers, the
//! aggregated host statistics, and the deterministic PDES epoch profile.
//! Each simulated `frame_span` the runner captures one [`Frame`] into a
//! fixed-capacity [`Ring`], then either repaints the terminal (live
//! mode, ANSI, wall-clock paced) or keeps simulating silently (headless
//! mode). Because frames are derived purely from simulation state, the
//! ring's JSON dump is bit-identical across PDES worker counts — CI
//! byte-diffs a serial against a parallel run to prove it.
//!
//! Wall-clock use (repaint pacing, the shard-utilization footer) lives
//! only in this crate, outside the `hmc-lint` determinism perimeter, and
//! is excluded from [`Dashboard::to_json`].

use std::fmt::Write as _;

use hmc_core::hmc_host::Workload;
use hmc_core::topology::{ChainSystem, Topology};
use hmc_core::{SystemBuilder, SystemConfig};
use hmc_types::{Time, TimeDelta};

/// A fixed-capacity ring buffer: pushing beyond capacity overwrites the
/// oldest entry. Iteration yields entries oldest-first.
#[derive(Debug, Clone)]
pub struct Ring<T> {
    buf: Vec<T>,
    head: usize,
    cap: usize,
}

impl<T> Ring<T> {
    /// Creates an empty ring holding at most `cap` entries (min 1).
    pub fn new(cap: usize) -> Self {
        let cap = cap.max(1);
        Ring {
            buf: Vec::with_capacity(cap),
            head: 0,
            cap,
        }
    }

    /// Appends an entry, evicting the oldest once full.
    pub fn push(&mut self, item: T) {
        if self.buf.len() < self.cap {
            self.buf.push(item);
        } else {
            self.buf[self.head] = item;
            self.head = (self.head + 1) % self.cap;
        }
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Iterates oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        let (tail, head) = self.buf.split_at(self.head);
        head.iter().chain(tail.iter())
    }

    /// The most recently pushed entry.
    pub fn last(&self) -> Option<&T> {
        if self.buf.is_empty() {
            None
        } else if self.head == 0 {
            self.buf.last()
        } else {
            Some(&self.buf[self.head - 1])
        }
    }
}

/// One cube's slice of a dashboard frame.
#[derive(Debug, Clone, Copy, Default)]
pub struct CubeFrame {
    /// Read+write payload bandwidth over the frame, GB/s.
    pub bandwidth_gbs: f64,
    /// Host requests in flight (latest gauge sample).
    pub outstanding: f64,
    /// Requests queued across the cube's vault controllers.
    pub vault_queued: f64,
    /// DRAM banks busy.
    pub busy_banks: f64,
    /// Cumulative link CRC retries (fault counter).
    pub link_retries: f64,
    /// Cumulative link stall events (fault counter).
    pub link_stalls: f64,
    /// Cumulative leaked credits (fault counter).
    pub credits_leaked: f64,
    /// Cross-shard envelopes parked in the cube's mailbox.
    pub mailbox: f64,
}

/// One captured dashboard frame: a simulated instant plus every cube's
/// gauges at that instant.
#[derive(Debug, Clone)]
pub struct Frame {
    /// Simulated capture instant.
    pub at: Time,
    /// Per-cube gauge snapshot, indexed by cube.
    pub cubes: Vec<CubeFrame>,
}

/// Reads the latest sample of gauge `name` from cube `s`, or 0.0 when
/// the series does not exist (yet).
fn gauge(sys: &ChainSystem, s: usize, name: &str) -> f64 {
    sys.metrics(s)
        .and_then(|m| m.get(name))
        .and_then(|series| series.points().last().copied())
        .map_or(0.0, |(_, v)| v)
}

/// The frame ring plus the byte counters needed to turn cumulative host
/// statistics into per-frame bandwidth.
#[derive(Debug, Clone)]
pub struct Dashboard {
    ring: Ring<Frame>,
    prev_bytes: Vec<u64>,
    prev_at: Time,
}

impl Dashboard {
    /// Creates a dashboard for a `cubes`-cube chain retaining the last
    /// `capacity` frames.
    pub fn new(cubes: usize, capacity: usize) -> Self {
        Dashboard {
            ring: Ring::new(capacity),
            prev_bytes: vec![0; cubes],
            prev_at: Time::ZERO,
        }
    }

    /// The retained frames.
    pub fn frames(&self) -> &Ring<Frame> {
        &self.ring
    }

    /// Snapshots the chain into a new frame and pushes it into the ring.
    pub fn capture(&mut self, sys: &ChainSystem) {
        let at = sys.now();
        let span_sec = (at.since(self.prev_at).as_ns_f64() / 1e9).max(1e-30);
        let mut cubes = Vec::with_capacity(self.prev_bytes.len());
        for s in 0..self.prev_bytes.len() {
            let bytes = sys.host(s).stats().counted_bytes;
            let delta = bytes.saturating_sub(self.prev_bytes[s]);
            self.prev_bytes[s] = bytes;
            cubes.push(CubeFrame {
                bandwidth_gbs: delta as f64 / span_sec / 1e9,
                outstanding: gauge(sys, s, "host.outstanding"),
                vault_queued: gauge(sys, s, "device.vault_queued"),
                busy_banks: gauge(sys, s, "device.busy_banks"),
                link_retries: gauge(sys, s, "device.link_retries"),
                link_stalls: gauge(sys, s, "device.link_stalls"),
                credits_leaked: gauge(sys, s, "device.credits_leaked"),
                mailbox: gauge(sys, s, "chain.mailbox"),
            });
        }
        self.prev_at = at;
        self.ring.push(Frame { at, cubes });
    }

    /// A unicode sparkline of aggregate bandwidth over the retained
    /// frames (oldest left).
    pub fn sparkline(&self) -> String {
        const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
        let totals: Vec<f64> = self
            .ring
            .iter()
            .map(|f| f.cubes.iter().map(|c| c.bandwidth_gbs).sum())
            .collect();
        let max = totals.iter().cloned().fold(0.0f64, f64::max);
        totals
            .iter()
            .map(|&t| {
                if max <= 0.0 {
                    BARS[0]
                } else {
                    let i = ((t / max) * 7.0).round() as usize;
                    BARS[i.min(7)]
                }
            })
            .collect()
    }

    /// Renders the latest frame as a plain-text panel (no ANSI control
    /// codes — the live loop adds cursor handling around it).
    pub fn render(&self, sys: &ChainSystem) -> String {
        let mut out = String::new();
        let Some(f) = self.ring.last() else {
            return "no frames captured yet\n".to_string();
        };
        let epochs = sys.epoch_profile().map_or(0, |p| p.epochs());
        let _ = writeln!(
            out,
            "chain dashboard   t={:9.2} us   epochs={epochs}   frames={}/{}",
            f.at.as_ns_f64() / 1e3,
            self.ring.len(),
            self.ring.capacity(),
        );
        let _ = writeln!(
            out,
            "cube   bw GB/s  outst  vaultq  banks  retries  stalls  leaked  mailbox"
        );
        for (i, c) in f.cubes.iter().enumerate() {
            let _ = writeln!(
                out,
                "{i:>4}  {:>8.2}  {:>5.0}  {:>6.0}  {:>5.0}  {:>7.0}  {:>6.0}  {:>6.0}  {:>7.0}",
                c.bandwidth_gbs,
                c.outstanding,
                c.vault_queued,
                c.busy_banks,
                c.link_retries,
                c.link_stalls,
                c.credits_leaked,
                c.mailbox,
            );
        }
        let _ = writeln!(out, "bw history: {}", self.sparkline());
        // Wall-clock footer: worker busy fractions (parallel runs only).
        // Deliberately absent from to_json() — it is not deterministic.
        if let Some(u) = sys.shard_utilization() {
            let _ = write!(out, "shard workers (wall):");
            for w in 0..sys.parallel_shards() {
                let _ = write!(out, "  w{w} {:>5.1}%", u.busy_fraction(w) * 100.0);
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Dumps the ring as deterministic JSON: every field is derived from
    /// simulation state, so the dump is byte-identical across PDES worker
    /// counts. Shape: `{"capacity": ..., "frames": [{"t_ps": ...,
    /// "cubes": [{...}, ...]}, ...]}`.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{{\"capacity\":{},\"frames\":[", self.ring.capacity());
        for (i, f) in self.ring.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"t_ps\":{},\"cubes\":[", f.at.as_ps());
            for (j, c) in f.cubes.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"cube\":{j},\"bandwidth_gbs\":{:.3},\"outstanding\":{},\
                     \"vault_queued\":{},\"busy_banks\":{},\"link_retries\":{},\
                     \"link_stalls\":{},\"credits_leaked\":{},\"mailbox\":{}}}",
                    c.bandwidth_gbs,
                    c.outstanding,
                    c.vault_queued,
                    c.busy_banks,
                    c.link_retries,
                    c.link_stalls,
                    c.credits_leaked,
                    c.mailbox,
                );
            }
            out.push_str("]}");
        }
        out.push_str("]}\n");
        out
    }
}

/// How [`run_dashboard`] presents frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DashboardMode {
    /// Repaint the terminal after every frame, pacing with a wall-clock
    /// sleep of the given milliseconds so the panel is watchable.
    Live {
        /// Wall milliseconds to sleep between repaints.
        refresh_ms: u64,
    },
    /// Simulate silently and keep only the ring (for JSON export / CI).
    Headless,
}

/// Capture parameters for [`run_dashboard`].
#[derive(Debug, Clone, Copy)]
pub struct DashboardRun {
    /// Total simulated time to run.
    pub total: TimeDelta,
    /// Simulated time per captured frame (also the gauge period).
    pub frame_span: TimeDelta,
    /// Ring capacity — frames retained at the end.
    pub capacity: usize,
    /// Live repaint or silent headless capture.
    pub mode: DashboardMode,
}

/// Builds a fully-observed chain (gauges + epoch profiler), runs
/// `workload` for `run.total` simulated time capturing one frame every
/// `run.frame_span` into a `run.capacity`-deep ring, and returns the
/// dashboard plus the finished system (for trace/metrics/profile
/// export).
pub fn run_dashboard(
    cfg: &SystemConfig,
    topo: Topology,
    workload: &Workload,
    shards: usize,
    run: DashboardRun,
) -> (Dashboard, ChainSystem) {
    let mut sys = SystemBuilder::new(cfg.clone())
        .topology(topo)
        .metrics(run.frame_span)
        .epoch_profiler()
        .parallel_shards(shards)
        .build_chain();
    sys.apply_workload(workload);
    sys.start(Time::ZERO);
    let mut dash = Dashboard::new(sys.cubes(), run.capacity);
    let frames = (run.total.as_ps() / run.frame_span.as_ps().max(1)).max(1);
    for _ in 0..frames {
        sys.run_for(run.frame_span);
        dash.capture(&sys);
        if let DashboardMode::Live { refresh_ms } = run.mode {
            // ANSI: clear screen, home cursor, repaint.
            print!("\x1b[2J\x1b[H{}", dash.render(&sys));
            std::thread::sleep(std::time::Duration::from_millis(refresh_ms));
        }
    }
    (dash, sys)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmc_types::RequestKind;
    use hmc_types::RequestSize;

    #[test]
    fn ring_wraps_and_iterates_oldest_first() {
        let mut r = Ring::new(3);
        assert!(r.is_empty());
        for i in 0..5 {
            r.push(i);
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.capacity(), 3);
        let got: Vec<i32> = r.iter().copied().collect();
        assert_eq!(got, vec![2, 3, 4]);
        assert_eq!(r.last(), Some(&4));
    }

    #[test]
    fn headless_dashboard_fills_the_ring_and_dumps_json() {
        let (dash, sys) = run_dashboard(
            &SystemConfig::default(),
            Topology::chain(2),
            &Workload::full_scale(RequestKind::ReadOnly, RequestSize::new(64).unwrap()),
            1,
            DashboardRun {
                total: TimeDelta::from_us(20),
                frame_span: TimeDelta::from_us(1),
                capacity: 8,
                mode: DashboardMode::Headless,
            },
        );
        assert_eq!(dash.frames().len(), 8, "ring retains the newest frames");
        let last = dash.frames().last().expect("frames captured");
        assert_eq!(last.cubes.len(), 2);
        assert!(
            last.cubes.iter().any(|c| c.bandwidth_gbs > 0.0),
            "a saturated chain moves bytes"
        );
        let json = dash.to_json();
        assert!(json.starts_with("{\"capacity\":8,\"frames\":["));
        assert!(json.contains("\"bandwidth_gbs\""));
        assert!(json.contains("\"mailbox\""));
        assert_eq!(
            json.matches("\"t_ps\"").count(),
            8,
            "one object per retained frame"
        );
        let panel = dash.render(&sys);
        assert!(panel.contains("chain dashboard"));
        assert!(panel.contains("bw history"));
    }

    #[test]
    fn dashboard_json_is_identical_across_worker_counts() {
        let run = |shards| {
            run_dashboard(
                &SystemConfig::default(),
                Topology::chain(4),
                &Workload::full_scale(RequestKind::ReadOnly, RequestSize::new(64).unwrap()),
                shards,
                DashboardRun {
                    total: TimeDelta::from_us(10),
                    frame_span: TimeDelta::from_us(1),
                    capacity: 16,
                    mode: DashboardMode::Headless,
                },
            )
            .0
            .to_json()
        };
        assert_eq!(run(1), run(4), "frame stream must be bit-identical");
    }
}
