//! The paper's reported numbers, transcribed for the paper-vs-measured
//! record (Hadidi et al., "Demystifying the Characteristics of 3D-Stacked
//! Memories: A Case Study for Hybrid Memory Cube", IISWC 2017).

/// Counted read-only bandwidth at 128 B over 16 vaults (Figures 6–8), GB/s.
pub const RO_16V_128B_GBS: f64 = 21.0;

/// Approximate rw / wo bandwidth ratio (Figure 7: "roughly double").
pub const RW_OVER_WO: f64 = 2.0;

/// Single-vault internal bandwidth ceiling, GB/s (Section IV-A).
pub const VAULT_CEILING_GBS: f64 = 10.0;

/// Minimum low-load read latency at 16 B, ns (Section IV-E2).
pub const MIN_LATENCY_16B_NS: f64 = 655.0;

/// Minimum low-load read latency at 128 B, ns (Section IV-E2).
pub const MIN_LATENCY_128B_NS: f64 = 711.0;

/// Infrastructure (FPGA + link) share of the round trip, ns.
pub const INFRA_NS: f64 = 547.0;

/// Average in-cube share of the round trip, ns.
pub const IN_CUBE_NS: f64 = 125.0;

/// High-load read latency, 32 B across 16 vaults, ns (Figure 16).
pub const HIGH_LOAD_32B_16V_NS: f64 = 1_966.0;

/// High-load read latency, 128 B to one bank, ns (Figure 16).
pub const HIGH_LOAD_128B_1BANK_NS: f64 = 24_233.0;

/// High-load average over low-load average (Section IV-E3).
pub const HIGH_OVER_LOW_LOAD: f64 = 12.0;

/// Little's-law outstanding requests at saturation, 4-bank pattern
/// (Figure 17a).
pub const OUTSTANDING_4BANK: f64 = 375.0;

/// Temperature rise from 5 to 20 GB/s in Cfg2, read-only, °C
/// (Figure 11a).
pub const TEMP_RISE_5_TO_20_C: f64 = 3.0;

/// Device power rise from 5 to 20 GB/s, W (Figure 11b).
pub const POWER_RISE_5_TO_20_W: f64 = 2.0;

/// Cooling-power growth per 16 GB/s of bandwidth, W (Section IV-C).
pub const COOLING_W_PER_16_GBS: f64 = 1.5;

/// Thermal limit for read-dominated workloads, °C.
pub const READ_LIMIT_C: f64 = 85.0;

/// Thermal limit for write-heavy workloads, °C.
pub const WRITE_LIMIT_C: f64 = 75.0;

/// Table III idle temperatures, °C, Cfg1..Cfg4.
pub const IDLE_TEMPS_C: [f64; 4] = [43.1, 51.7, 62.3, 71.6];

/// Table III cooling powers, W, Cfg1..Cfg4.
pub const COOLING_POWERS_W: [f64; 4] = [19.32, 15.9, 13.9, 10.78];

/// Wire efficiency at 128 B requests (Section IV-D).
pub const WIRE_EFFICIENCY_128B: f64 = 128.0 / 144.0;

/// Wire efficiency at 16 B requests (Section IV-D).
pub const WIRE_EFFICIENCY_16B: f64 = 0.5;

/// Peak bidirectional link bandwidth of the AC-510 arrangement, GB/s
/// (Equation 2).
pub const PEAK_BANDWIDTH_GBS: f64 = 60.0;

/// Total banks in a 4 GB HMC 1.1 (Equation 1).
pub const TOTAL_BANKS_GEN2: u32 = 256;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_values_are_sane() {
        let sizes = [MIN_LATENCY_16B_NS, MIN_LATENCY_128B_NS];
        assert!(sizes.windows(2).all(|w| w[0] < w[1]));
        let split = [INFRA_NS + IN_CUBE_NS, MIN_LATENCY_128B_NS + 60.0];
        assert!(split.windows(2).all(|w| w[0] < w[1]));
        assert!(IDLE_TEMPS_C.windows(2).all(|w| w[0] < w[1]));
        assert!(COOLING_POWERS_W.windows(2).all(|w| w[0] > w[1]));
        assert_eq!(TOTAL_BANKS_GEN2, 256);
        assert!((WIRE_EFFICIENCY_128B - 0.888).abs() < 1e-2);
    }
}
