//! `repro` — regenerate any table or figure of the paper on demand.
//!
//! Usage: `cargo run --release -p hmc-bench --bin repro -- <command> ...`
//!
//! Commands (each accepts `--threads N` to fan sweeps across OS threads
//! and `--json PATH` to export its artifact as JSON):
//!
//! * `figure <id>...` — print paper tables/figures: `table1`, `table2`,
//!   `table3`, `fig6`..`fig18`, `baseline`, `readratio`, `kernels`,
//!   `mapping`, `faults`, `generations`, or `all`. `--breakdown` adds the
//!   traced per-stage attribution to `fig14`.
//! * `sweep <trace|metrics|perf> [--backend <kind>]` — observability
//!   captures: a traced full-scale window as Chrome trace-event JSON
//!   (Perfetto-loadable), the same window's sampled gauge series, or
//!   simulation-throughput measurements (`perf` defaults to
//!   `BENCH_simperf.json`, including the cross-backend
//!   `backend_compare` grid). `--backend` selects the device preset for
//!   `trace`/`metrics` (`hmc` default, `hmc-gen3`, `ddr3-1600`, `hbm`).
//! * `compare [--quick]` — the cross-technology table: every backend
//!   preset under the identical host pipeline at the Figure 9 operating
//!   point (full-scale ro and rw at 128 B) plus one open-loop
//!   multi-tenant point, reporting bandwidth, p99, and the
//!   channels-in-flight concurrency gauge (nonzero exit if the HBM
//!   backend does not sustain more channels in flight than HMC Gen2).
//! * `sanitize` — run the Figure 9 bandwidth subset with the protocol
//!   sanitizer armed, verify bit-identity against the plain run, and
//!   print the invariant-check report (nonzero exit on any violation).
//! * `faults [scenario|all]` — run built-in fault scenarios with the
//!   host robustness layer on and the sanitizer armed, and print the
//!   degraded-mode characterization (nonzero exit on violations or a
//!   run that failed to drain).
//! * `openloop [policy|all] [--poisson] [--quick] [--cubes N] [--shards N]
//!   [--faults scenario]` — open-loop multi-tenant overload sweep:
//!   throughput-latency curves over the saturation-fraction grid plus
//!   per-tenant SLO conformance, MMPP arrivals by default, sanitizer and
//!   shed-accounting invariant armed (nonzero exit on violations or a
//!   failed drain). `--faults` composes one 1.5x-saturation point with a
//!   built-in fault scenario and the host robustness layer.
//! * `chain [--cubes N] [--star] [--interleave cube|vault] [--shards N]`
//!   — multi-cube chain characterization: aggregate bandwidth vs chain
//!   length, the per-hop latency ladder, and near/far asymmetry, with
//!   the shape checks asserted (two cubes >= 1.8x one cube; ladder rungs
//!   on the modeled pass-through adder). `--shards N` pumps the cubes on
//!   `N` conservative-PDES worker threads — bit-identical results,
//!   different wall clock. Observability add-ons:
//!   * `--breakdown` — run a traced stream and print the chain-wide
//!     latency attribution (includes the `hop_link` stage; telescopes
//!     with zero residue).
//!   * `--trace-json PATH` — Perfetto export of the traced run with one
//!     epoch track per PDES shard.
//!   * `--metrics-json PATH` — the merged cube-prefixed gauge stream.
//!   * `--profile-json PATH` — the deterministic epoch profile.
//!   * `--dashboard` / `--dashboard-headless` — stream gauge frames
//!     through a fixed ring buffer into a live ANSI panel, or simulate
//!     silently and dump the final ring as JSON (stdout, plus `--json
//!     PATH`). Tune with `--frames N` (ring capacity), `--frame-us N`
//!     (simulated time per frame), `--span-us N` (total simulated time),
//!     `--refresh-ms N` (live repaint pacing).
//!
//! Unknown commands or flags print the usage text and exit nonzero (the
//! pre-subcommand flag aliases were removed after their deprecation
//! period).
//!
//! (The `benches/` targets print the same tables plus paper-vs-measured
//! verdicts; this binary is the quick interactive entry point.)

use hmc_bench::{bench_mc, sweep_mc};
use hmc_core::experiments::{
    bandwidth, baseline, chain, faults, generations, kernels, latency, mapping, openloop,
    page_policy, read_ratio, thermal,
};
use hmc_core::hmc_host::{OpenLoopConfig, ShedPolicy, Workload};
use hmc_core::hmc_types::CubeInterleave;
use hmc_core::measure::{run_backend_measurement, BackendMeasurement, MeasureConfig};
use hmc_core::mem_backend::BackendKind;
use hmc_core::observe::{run_window_observed, run_window_observed_backend};
use hmc_core::topology::Topology;
use hmc_core::{JsonReport, System, SystemBuilder, SystemConfig};
use hmc_types::packet::{OpKind, TransactionSizes};
use hmc_types::{HmcSpec, HmcVersion, RequestKind, RequestSize, Time, TimeDelta};
use sim_engine::exec;
use sim_engine::ArrivalKind;

fn table1() {
    for v in [HmcVersion::Gen1, HmcVersion::Gen2, HmcVersion::Hmc2] {
        let s = HmcSpec::of(v);
        println!(
            "{}: {} quadrants, {} vaults, {} banks ({} MB each), {} layers",
            s,
            s.num_quadrants(),
            s.num_vaults(),
            s.total_banks(),
            s.bank_bytes() >> 20,
            s.dram_layers(),
        );
    }
}

fn table2() {
    println!("size  rd-req  rd-resp  wr-req  wr-resp (flits)");
    for size in RequestSize::ALL {
        let rd = TransactionSizes::of(OpKind::Read, size);
        let wr = TransactionSizes::of(OpKind::Write, size);
        println!(
            "{:>5}  {:>6}  {:>7}  {:>6}  {:>7}",
            size.to_string(),
            rd.request_flits().count(),
            rd.response_flits().count(),
            wr.request_flits().count(),
            wr.response_flits().count(),
        );
    }
}

/// Output options shared by every target.
#[derive(Debug, Clone, Copy, Default)]
struct Opts {
    /// Print the traced per-stage attribution alongside `fig14`.
    breakdown: bool,
}

fn run(target: &str, cfg: &SystemConfig, opts: Opts) {
    let mc = bench_mc();
    match target {
        "table1" => table1(),
        "table2" => table2(),
        "table3" => println!("{}", thermal::table3()),
        "fig6" => println!("{}", bandwidth::figure6_table(&bandwidth::figure6(cfg, &mc))),
        "fig7" => println!("{}", bandwidth::figure7_table(&bandwidth::figure7(cfg, &mc))),
        "fig8" => println!("{}", bandwidth::figure8_table(&bandwidth::figure8(cfg, &mc))),
        "fig9" | "fig10" => {
            for kind in RequestKind::ALL {
                let outcomes = thermal::figure9_10(cfg, kind, &mc);
                if target == "fig9" {
                    println!("{}", thermal::figure9_table(kind, &outcomes));
                } else {
                    println!("{}", thermal::figure10_table(kind, &outcomes));
                }
            }
        }
        "fig11" | "fig12" => {
            let mut all = Vec::new();
            for kind in RequestKind::ALL {
                all.extend(thermal::figure9_10(cfg, kind, &mc));
            }
            if target == "fig11" {
                println!("{}", thermal::figure11_table(&thermal::figure11(&all)));
            } else {
                for line in thermal::figure12(&all, &[50.0, 55.0, 60.0]) {
                    println!(
                        "{} hold {:.0} C: {:?}",
                        line.kind,
                        line.target_c,
                        line.points
                            .iter()
                            .map(|(b, w)| format!("{b:.1}GB/s->{w:.2}W"))
                            .collect::<Vec<_>>()
                    );
                }
            }
        }
        "fig13" => println!(
            "{}",
            page_policy::figure13_table(&page_policy::figure13(cfg, &mc))
        ),
        "fig14" => {
            println!(
                "{}",
                latency::figure14_table(&latency::figure14(cfg, RequestSize::MAX))
            );
            if opts.breakdown {
                let obs = latency::figure14_breakdown(cfg, RequestSize::MAX);
                println!(
                    "{}",
                    latency::figure14_breakdown_table(&obs, RequestSize::MAX)
                );
            }
        }
        "fig15" => {
            let pts = latency::figure15(cfg);
            for bytes in latency::FIG15_SIZES {
                let size = RequestSize::new(bytes).expect("valid");
                println!("{}", latency::figure15_table(size, &pts));
            }
        }
        "fig16" => println!("{}", latency::figure16_table(&latency::figure16(cfg, &mc))),
        "fig17" => println!(
            "{}",
            latency::curves_table("Figure 17", &latency::figure17(cfg, &sweep_mc()))
        ),
        "fig18" => {
            let sizes = [RequestSize::new(32).expect("valid"), RequestSize::MAX];
            println!(
                "{}",
                latency::curves_table("Figure 18", &latency::figure18(cfg, &sizes, &sweep_mc()))
            );
        }
        "baseline" => {
            let rows: Vec<_> = [16u64, 64, 128]
                .into_iter()
                .map(|b| baseline::compare(cfg, RequestSize::new(b).expect("valid"), &mc))
                .collect();
            println!("{}", baseline::baseline_table(&rows));
        }
        "readratio" => {
            let pts = read_ratio::read_ratio_sweep(cfg, RequestSize::MAX, 10, &mc);
            println!("{}", read_ratio::read_ratio_table(&pts));
        }
        "kernels" => {
            println!("{}", kernels::kernels_table(&kernels::run_kernels(cfg, &mc)));
        }
        "mapping" => {
            println!("{}", mapping::mapping_table(&mapping::mapping_ablation(cfg, &mc)));
        }
        "faults" => {
            let pts = faults::ber_sweep(cfg, &faults::BER_AXIS, &mc);
            println!("{}", faults::faults_table(&pts));
        }
        "generations" => {
            println!(
                "{}",
                generations::generations_table(&generations::generation_sweep(&mc))
            );
        }
        other => eprintln!(
            "unknown target '{other}' (try: table1..3, fig6..fig18, baseline, readratio, kernels, mapping, all)"
        ),
    }
}

/// Measures the conservative-PDES chain scheduler's throughput at one
/// `(cubes, workers)` point: a saturated full-scale read run over `span`,
/// returning `(events, wall_sec)`. With `armed` the full observability
/// surface rides along (tracer, per-cube gauges, epoch profiler) so the
/// armed-vs-unarmed delta is the overhead of watching.
fn chain_perf_point(
    cfg: &SystemConfig,
    cubes: u8,
    shards: usize,
    span: TimeDelta,
    armed: bool,
) -> (u64, f64) {
    use std::time::Instant;
    let mut b = SystemBuilder::new(cfg.clone())
        .parallel_shards(shards)
        .topology(Topology::chain(cubes));
    if armed {
        b = b
            .tracing(64)
            .metrics(TimeDelta::from_us(1))
            .epoch_profiler();
    }
    let mut sys = b.build_chain();
    sys.apply_workload(&Workload::full_scale(
        RequestKind::ReadOnly,
        RequestSize::MAX,
    ));
    sys.start(Time::ZERO);
    let t0 = Instant::now();
    sys.run_for(span);
    (sys.events_processed(), t0.elapsed().as_secs_f64())
}

/// Measures simulation throughput and writes `BENCH_simperf.json`:
///
/// * `event_core`: one full-scale rw `System` run — events per
///   wall-second and simulated µs per wall-second of the event core;
/// * `sweep`: the Figure 7 sweep at the configured thread count —
///   simulated µs per wall-second across the whole fleet of points;
/// * `parallel_chain`: the epoch scheduler's events per wall-second over
///   the cubes x epoch-worker grid {1,2,4,8} x {1,2,4,8} (every cell is
///   bit-identical in results; only the wall clock moves);
/// * `observability`: armed-vs-unarmed throughput on a {2,4,8} x {1,4}
///   chain grid — the wall-clock cost of tracer + per-cube gauges +
///   epoch profiler (the event counts are asserted identical).
fn perf_json(cfg: &SystemConfig) {
    use std::time::Instant;

    // Event-core throughput on a single saturated system.
    let span = TimeDelta::from_us(400);
    let mut sys = System::new(cfg.clone());
    sys.host_mut().apply_workload(&Workload::full_scale(
        RequestKind::ReadModifyWrite,
        RequestSize::MAX,
    ));
    sys.host_mut().start(Time::ZERO);
    let t0 = Instant::now();
    sys.run_for(span);
    let core_wall = t0.elapsed().as_secs_f64();
    let events = sys.events_processed();

    // Sweep throughput: the full Figure 7 grid (27 measurement points).
    let mc = bench_mc();
    let t1 = Instant::now();
    let pts = bandwidth::figure7(cfg, &mc);
    let sweep_wall = t1.elapsed().as_secs_f64();
    let sim_us_per_point = (mc.warmup + mc.window).as_ns_f64() / 1e3;
    let sweep_sim_us = pts.len() as f64 * sim_us_per_point;

    // The conservative-PDES chain grid. Single-core hosts show flat (or
    // slightly negative) scaling here — the numbers record what this
    // machine actually did, not an aspiration.
    let chain_span = TimeDelta::from_us(100);
    let mut chain_cells = String::new();
    for cubes in [1u8, 2, 4, 8] {
        for shards in [1usize, 2, 4, 8] {
            let (ev, wall) = chain_perf_point(cfg, cubes, shards, chain_span, false);
            if !chain_cells.is_empty() {
                chain_cells.push_str(",\n");
            }
            chain_cells.push_str(&format!(
                "      {{\"cubes\": {cubes}, \"shards\": {shards}, \
                 \"events\": {ev}, \"wall_sec\": {wall:.3}, \
                 \"events_per_sec\": {:.0}}}",
                ev as f64 / wall
            ));
        }
    }

    // Observability overhead: the same chain grid (smaller, to keep the
    // run short) measured bare and with tracer + gauges + epoch profiler
    // armed. The events counts are bit-identical by construction; only
    // the wall clock moves.
    let mut obs_cells = String::new();
    for cubes in [2u8, 4, 8] {
        for shards in [1usize, 4] {
            let (ev_bare, wall_bare) = chain_perf_point(cfg, cubes, shards, chain_span, false);
            let (ev_armed, wall_armed) = chain_perf_point(cfg, cubes, shards, chain_span, true);
            assert_eq!(
                ev_bare, ev_armed,
                "armed observability must not change the event count"
            );
            if !obs_cells.is_empty() {
                obs_cells.push_str(",\n");
            }
            obs_cells.push_str(&format!(
                "      {{\"cubes\": {cubes}, \"shards\": {shards}, \
                 \"events\": {ev_bare}, \
                 \"unarmed_events_per_sec\": {:.0}, \
                 \"armed_events_per_sec\": {:.0}, \
                 \"overhead_pct\": {:.1}}}",
                ev_bare as f64 / wall_bare,
                ev_armed as f64 / wall_armed,
                (wall_armed / wall_bare - 1.0) * 100.0
            ));
        }
    }

    // Open-loop overload grid: offered load vs goodput across the
    // standard fraction grid (MMPP arrivals, reject-newest, sanitizer
    // armed) — the throughput-latency curve as a regression surface.
    let ol_run = openloop::OpenLoopRun::mmpp(hmc_core::hmc_host::ShedPolicy::RejectNewest);
    let t2 = Instant::now();
    let ol = openloop::run_openloop(cfg, &ol_run, &mc);
    let ol_wall = t2.elapsed().as_secs_f64();
    assert!(ol.is_clean(), "openloop perf grid must sanitize clean");
    let mut ol_cells = String::new();
    for p in &ol.points {
        if !ol_cells.is_empty() {
            ol_cells.push_str(",\n");
        }
        ol_cells.push_str(&format!(
            "      {{\"load\": {:.2}, \"offered_rps\": {:.0}, \
             \"goodput_rps\": {:.0}, \"shed\": {}, \"p99_ns\": {:.1}}}",
            p.offered_rps / ol.saturation_rps,
            p.offered_rps,
            p.goodput_rps,
            p.shed,
            p.p99_ns
        ));
    }

    // Cross-backend simulation throughput and achieved bandwidth at the
    // Figure 9 operating point (full-scale ro at 128 B): every device
    // preset behind the identical host pipeline.
    let mut backend_cells = String::new();
    for kind in BackendKind::ALL {
        let mut sys = SystemBuilder::new(cfg.clone()).backend(kind).build_any();
        let t = Instant::now();
        let m = run_backend_measurement(
            &mut sys,
            &Workload::full_scale(RequestKind::ReadOnly, RequestSize::MAX),
            &mc,
        );
        let wall = t.elapsed().as_secs_f64();
        if !backend_cells.is_empty() {
            backend_cells.push_str(",\n");
        }
        backend_cells.push_str(&format!(
            "      {{\"backend\": \"{}\", \"events\": {}, \
             \"events_per_sec\": {:.0}, \"achieved_gbs\": {:.2}, \
             \"peak_channels\": {}}}",
            m.backend,
            m.events,
            m.events as f64 / wall,
            m.bandwidth_gbs,
            m.peak_channels,
        ));
    }

    let json = format!(
        "{{\n  \"event_core\": {{\n    \"events_per_sec\": {:.0},\n    \
         \"simulated_us_per_wall_sec\": {:.1}\n  }},\n  \"sweep\": {{\n    \
         \"name\": \"fig7\",\n    \"points\": {},\n    \"threads\": {},\n    \
         \"wall_sec\": {:.3},\n    \"simulated_us_per_wall_sec\": {:.1}\n  }},\n  \
         \"parallel_chain\": {{\n    \"span_us\": {:.0},\n    \
         \"host_cores\": {},\n    \"points\": [\n{}\n    ]\n  }},\n  \
         \"observability\": {{\n    \"span_us\": {:.0},\n    \
         \"armed\": \"tracer + per-cube gauges + epoch profiler\",\n    \
         \"points\": [\n{}\n    ]\n  }},\n  \
         \"backend_compare\": {{\n    \"workload\": \"full-scale ro 128B\",\n    \
         \"points\": [\n{backend_cells}\n    ]\n  }},\n  \
         \"openloop\": {{\n    \"arrivals\": \"mmpp\",\n    \
         \"policy\": \"reject-newest\",\n    \
         \"saturation_rps\": {:.0},\n    \"wall_sec\": {:.3},\n    \
         \"points\": [\n{}\n    ]\n  }}\n}}\n",
        events as f64 / core_wall,
        span.as_ns_f64() / 1e3 / core_wall,
        pts.len(),
        exec::threads(),
        sweep_wall,
        sweep_sim_us / sweep_wall,
        chain_span.as_ns_f64() / 1e3,
        std::thread::available_parallelism().map_or(1, |n| n.get()),
        chain_cells,
        chain_span.as_ns_f64() / 1e3,
        obs_cells,
        ol.saturation_rps,
        ol_wall,
        ol_cells,
    );
    print!("{json}");
    if let Err(e) = std::fs::write("BENCH_simperf.json", &json) {
        eprintln!("could not write BENCH_simperf.json: {e}");
    }
}

/// Writes a [`JsonReport`] artifact to `path` with a stderr note.
fn write_artifact<R: JsonReport + ?Sized>(report: &R, path: &str) {
    match report.write_json(std::path::Path::new(path)) {
        Ok(()) => eprintln!("wrote {} artifact to {path}", report.kind()),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

/// Runs a traced full-scale window on the selected backend preset and
/// writes the requested exports: Chrome trace-event JSON and/or the
/// sampled gauge series. The default `hmc` preset takes the concrete
/// [`System`] path (byte-identical artifacts across refactors); other
/// presets go through the generic backend build.
fn capture_observed(
    cfg: &SystemConfig,
    kind: BackendKind,
    trace_out: Option<&str>,
    metrics_out: Option<&str>,
) {
    let workload = Workload::full_scale(
        RequestKind::ReadModifyWrite,
        RequestSize::new(64).expect("valid"),
    );
    let span = TimeDelta::from_us(50);
    let obs = if kind == BackendKind::Hmc {
        run_window_observed(cfg, &workload, span, 101, TimeDelta::from_us(1))
    } else {
        run_window_observed_backend(cfg, kind, &workload, span, 101, TimeDelta::from_us(1))
    };
    if let Some(path) = trace_out {
        write_artifact(&obs.report, path);
    }
    if let Some(path) = metrics_out {
        write_artifact(&obs.metrics, path);
    }
}

/// One backend's row of the `repro compare` table.
struct CompareRow {
    /// Fig-9 operating point, read-only.
    ro: BackendMeasurement,
    /// Fig-9 operating point, read-modify-write.
    rw: BackendMeasurement,
    /// Open-loop point: goodput (requests/s), p99 (ns), sheds.
    open_goodput_rps: f64,
    open_p99_ns: f64,
    open_shed: u64,
}

/// The offered rate of the compare table's open-loop point: modest
/// enough that even the single-channel DIMM can serve most of it, so
/// the p99 column contrasts queueing behavior rather than raw ceilings.
const COMPARE_OPENLOOP_RPS: f64 = 10.0e6;

/// Measures one backend preset at the Figure 9 operating point (ro and
/// rw full-scale) plus the open-loop multi-tenant point.
fn compare_backend(cfg: &SystemConfig, kind: BackendKind, mc: &MeasureConfig) -> CompareRow {
    let mut sys = SystemBuilder::new(cfg.clone()).backend(kind).build_any();
    let ro = run_backend_measurement(
        &mut sys,
        &Workload::full_scale(RequestKind::ReadOnly, RequestSize::MAX),
        mc,
    );
    let mut sys = SystemBuilder::new(cfg.clone()).backend(kind).build_any();
    let rw = run_backend_measurement(
        &mut sys,
        &Workload::full_scale(RequestKind::ReadModifyWrite, RequestSize::MAX),
        mc,
    );
    let open = OpenLoopConfig::standard_mix(
        COMPARE_OPENLOOP_RPS,
        ArrivalKind::Poisson,
        ShedPolicy::RejectNewest,
    );
    let mut sys = SystemBuilder::new(cfg.clone())
        .backend(kind)
        .open_loop(open.clone())
        .build_any();
    sys.host_mut().start(Time::ZERO);
    sys.step_until(Time::ZERO + mc.warmup);
    sys.host_mut().reset_stats();
    sys.step_until(Time::ZERO + mc.warmup + mc.window);
    let point = openloop::make_window_point(
        COMPARE_OPENLOOP_RPS,
        &open,
        sys.host().open_stats(),
        mc.window,
    );
    CompareRow {
        ro,
        rw,
        open_goodput_rps: point.goodput_rps,
        open_p99_ns: point.p99_ns,
        open_shed: point.shed,
    }
}

/// Runs every backend preset under the identical host pipeline and
/// prints the cross-technology table. Returns `false` (nonzero exit)
/// if the HBM backend fails to sustain more channels in flight than
/// HMC Gen2 — the structural-concurrency claim the comparison rests on.
fn run_compare(cfg: &SystemConfig, mc: &MeasureConfig, json_out: Option<&str>) -> bool {
    let rows: Vec<(BackendKind, CompareRow)> = BackendKind::ALL
        .into_iter()
        .map(|kind| (kind, compare_backend(cfg, kind, mc)))
        .collect();
    println!(
        "{:<10} {:>9} {:>9} {:>9} {:>9} {:>6} {:>11} {:>10} {:>7}",
        "backend",
        "ro-GB/s",
        "ro-p99ns",
        "rw-GB/s",
        "rw-p99ns",
        "chans",
        "open-Mrps",
        "open-p99",
        "shed"
    );
    let mut cells = String::new();
    for (kind, r) in &rows {
        println!(
            "{:<10} {:>9.2} {:>9.0} {:>9.2} {:>9.0} {:>6} {:>11.2} {:>10.0} {:>7}",
            kind.label(),
            r.ro.bandwidth_gbs,
            r.ro.p99_latency_ns,
            r.rw.bandwidth_gbs,
            r.rw.p99_latency_ns,
            r.ro.peak_channels,
            r.open_goodput_rps / 1e6,
            r.open_p99_ns,
            r.open_shed,
        );
        if !cells.is_empty() {
            cells.push_str(",\n");
        }
        cells.push_str(&format!(
            "    {{\"backend\": \"{}\", \
             \"ro_gbs\": {:.3}, \"ro_p99_ns\": {:.1}, \
             \"rw_gbs\": {:.3}, \"rw_p99_ns\": {:.1}, \
             \"peak_channels\": {}, \"events\": {}, \
             \"open_goodput_rps\": {:.0}, \"open_p99_ns\": {:.1}, \
             \"open_shed\": {}}}",
            kind.label(),
            r.ro.bandwidth_gbs,
            r.ro.p99_latency_ns,
            r.rw.bandwidth_gbs,
            r.rw.p99_latency_ns,
            r.ro.peak_channels,
            r.ro.events,
            r.open_goodput_rps,
            r.open_p99_ns,
            r.open_shed,
        ));
    }
    let hmc_chans = rows
        .iter()
        .find(|(k, _)| *k == BackendKind::Hmc)
        .map_or(0, |(_, r)| r.ro.peak_channels);
    let hbm_chans = rows
        .iter()
        .find(|(k, _)| *k == BackendKind::Hbm)
        .map_or(0, |(_, r)| r.ro.peak_channels);
    let ok = hbm_chans > hmc_chans;
    println!(
        "channels-in-flight: hbm {hbm_chans} vs hmc {hmc_chans} — {}",
        if ok { "ok" } else { "VIOLATION" }
    );
    if let Some(path) = json_out {
        let json = format!(
            "{{\n  \"workload\": \"fig9 operating point (full-scale ro/rw 128B) + \
             openloop {:.0}rps poisson reject-newest\",\n  \
             \"window_us\": {:.1},\n  \"backends\": [\n{cells}\n  ],\n  \
             \"verdict\": {{\"hbm_channels\": {hbm_chans}, \
             \"hmc_channels\": {hmc_chans}, \"hbm_exceeds_hmc\": {ok}}}\n}}\n",
            COMPARE_OPENLOOP_RPS,
            mc.window.as_ns_f64() / 1e3,
        );
        match std::fs::write(path, &json) {
            Ok(()) => eprintln!("wrote compare artifact to {path}"),
            Err(e) => eprintln!("could not write {path}: {e}"),
        }
    }
    ok
}

/// Runs the Figure 9 subset twice — plain and sanitized — checks the
/// figures match to the bit, and prints the sanitizer's findings.
/// Returns `false` if any invariant was violated or the runs diverged.
fn run_sanitize(cfg: &SystemConfig, json_out: Option<&str>) -> bool {
    let mc = bench_mc();
    let plain = hmc_core::sanitize::fig9_bandwidth_subset(cfg, &mc, false);
    let sane = hmc_core::sanitize::fig9_bandwidth_subset(cfg, &mc, true);
    println!("{}", sane.table());
    println!("{}", sane.report);
    let identical = plain.fingerprint() == sane.fingerprint();
    if identical {
        println!("bit-identity: sanitized figures match the plain run exactly");
    } else {
        eprintln!("bit-identity FAILED: sanitized figures diverge from the plain run");
    }
    if let Some(path) = json_out {
        write_artifact(&sane.report, path);
    }
    sane.report.is_clean() && identical
}

/// Runs one built-in fault scenario (or all of them) with the sanitizer
/// armed and prints the degraded-mode table plus each sanitizer report.
/// Returns `false` if any scenario saw a violation or failed to drain.
fn run_faults(cfg: &SystemConfig, which: &str, json_out: Option<&str>) -> bool {
    use sim_engine::FaultScenario;
    let mc = bench_mc();
    let names: Vec<&str> = if which == "all" {
        FaultScenario::builtin_names().to_vec()
    } else if FaultScenario::builtin(which).is_some() {
        vec![which]
    } else {
        eprintln!(
            "unknown scenario '{which}' (built-ins: {}, or 'all')",
            FaultScenario::builtin_names().join(", ")
        );
        return false;
    };
    let outcomes: Vec<_> = names
        .iter()
        .map(|n| faults::run_builtin(cfg, n, &mc).expect("name came from the built-in list"))
        .collect();
    println!("{}", faults::scenario_table(&outcomes));
    let mut ok = true;
    for o in &outcomes {
        if !o.report.is_clean() {
            eprintln!("scenario '{}' sanitizer violations:\n{}", o.name, o.report);
            ok = false;
        }
        if !o.drained {
            eprintln!(
                "scenario '{}' failed to drain: recovery hung or a request was lost",
                o.name
            );
            ok = false;
        }
    }
    if let Some(path) = json_out {
        write_artifact(outcomes.as_slice(), path);
    }
    ok
}

/// Runs the open-loop multi-tenant overload sweep for one shed policy
/// (or all three) and prints the throughput-latency curve plus the
/// per-tenant SLO conformance table. With `--faults <scenario>` it runs
/// a single 1.5x-saturation point composed with that fault scenario and
/// the host robustness layer instead. Returns `false` on any sanitizer
/// violation or failed drain.
#[allow(clippy::too_many_lines)]
fn run_openloop(cfg: &SystemConfig, args: &[String], json_out: Option<&str>) -> bool {
    use hmc_core::hmc_host::ShedPolicy;
    use sim_engine::{ArrivalKind, FaultScenario};

    let mut policies: Vec<ShedPolicy> = ShedPolicy::ALL.to_vec();
    let mut kind = openloop::bursty();
    let mut cubes = 1u8;
    let mut shards = 1usize;
    let mut scenario: Option<FaultScenario> = None;
    let mut mc = bench_mc();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--poisson" => kind = ArrivalKind::Poisson,
            "--quick" => mc = hmc_core::measure::MeasureConfig::quick(),
            "--cubes" => {
                cubes = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--shards" => {
                shards = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--faults" => {
                let name = it.next().unwrap_or_else(|| usage());
                match FaultScenario::builtin(name) {
                    Some(s) => scenario = Some(s),
                    None => {
                        eprintln!(
                            "unknown scenario '{name}' (built-ins: {})",
                            FaultScenario::builtin_names().join(", ")
                        );
                        return false;
                    }
                }
            }
            "all" => policies = ShedPolicy::ALL.to_vec(),
            p => match ShedPolicy::parse(p) {
                Some(policy) => policies = vec![policy],
                None => {
                    eprintln!(
                        "unknown policy '{p}' (policies: {}, or 'all')",
                        ShedPolicy::ALL.map(|p| p.label()).join(", ")
                    );
                    return false;
                }
            },
        }
    }
    let mut ok = true;
    if let Some(scenario) = scenario {
        for policy in policies {
            let run = openloop::OpenLoopRun {
                kind,
                cubes,
                workers: shards,
                ..openloop::OpenLoopRun::standard(policy)
            };
            let o = openloop::run_openloop_scenario(cfg, &run, &scenario, 1.5, &mc);
            let p = &o.point;
            println!(
                "{} + {} at 1.5x saturation: offered={} shed={} completed={} \
                 p99={:.0} ns abandoned={} retries={} drained={}",
                policy,
                o.scenario,
                p.offered,
                p.shed,
                p.completed,
                p.p99_ns,
                o.robust.abandoned,
                o.robust.retries,
                o.drained,
            );
            if !o.is_clean() {
                eprintln!(
                    "degraded run under '{}' was not clean:\n{}",
                    o.scenario, o.report
                );
                ok = false;
            }
        }
        return ok;
    }
    let mut last: Option<openloop::OpenLoopOutcome> = None;
    for policy in policies {
        let run = openloop::OpenLoopRun {
            kind,
            cubes,
            workers: shards,
            ..openloop::OpenLoopRun::standard(policy)
        };
        let o = openloop::run_openloop(cfg, &run, &mc);
        println!("{}", openloop::throughput_table(&o));
        println!("{}", openloop::slo_table(&o));
        if !o.is_clean() {
            eprintln!("openloop sweep under {policy} was not clean:\n{}", o.report);
            ok = false;
        }
        last = Some(o);
    }
    if let (Some(path), Some(o)) = (json_out, last.as_ref()) {
        write_artifact(o, path);
    }
    ok
}

/// Runs the multi-cube chain characterization and prints its three
/// tables. The shape checks (aggregate scaling, exact ladder adders,
/// near/far asymmetry) are asserted inside `characterize`.
fn run_chain(
    cfg: &SystemConfig,
    cubes: u8,
    star: bool,
    interleave: CubeInterleave,
    shards: usize,
    json_out: Option<&str>,
) {
    let topo = if star {
        Topology::star(cubes)
    } else {
        Topology::chain(cubes)
    }
    .with_interleave(interleave);
    let mc = bench_mc();
    let report = chain::characterize_sharded(cfg, topo, &mc, shards);
    println!("{}", report.scaling_table());
    println!("{}", report.ladder_table());
    println!("{}", report.near_far_table());
    if let Some(path) = json_out {
        write_artifact(&report, path);
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: repro <command> [--threads N] [--json PATH]\n\
         commands:\n\
         \x20 figure <table1|table2|table3|fig6..fig18|baseline|readratio|kernels|mapping|faults|generations|all>... [--breakdown]\n\
         \x20 sweep <trace|metrics|perf> [--backend hmc|hmc-gen3|ddr3-1600|hbm]\n\
         \x20 compare [--quick]\n\
         \x20 sanitize\n\
         \x20 faults [scenario|all]\n\
         \x20 openloop [policy|all] [--poisson] [--quick] [--cubes N] [--shards N]\n\
         \x20          [--faults scenario]\n\
         \x20 chain [--cubes N] [--star] [--interleave cube|vault] [--shards N]\n\
         \x20       [--breakdown] [--trace-json P] [--metrics-json P] [--profile-json P]\n\
         \x20       [--dashboard | --dashboard-headless] [--frames N] [--frame-us N]\n\
         \x20       [--span-us N] [--refresh-ms N]"
    );
    std::process::exit(2);
}

/// Shared option extraction: pulls `--threads N` and `--json PATH` out of
/// a subcommand's argument list, returning the remaining arguments.
fn take_common(args: &[String]) -> (Vec<String>, Option<String>) {
    let mut rest = Vec::new();
    let mut json: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--threads" => {
                let n = it
                    .next()
                    .and_then(|v| v.parse::<usize>().ok())
                    .unwrap_or_else(|| usage());
                exec::set_threads(n);
            }
            "--json" => json = Some(it.next().unwrap_or_else(|| usage()).clone()),
            other => rest.push(other.to_string()),
        }
    }
    (rest, json)
}

const ALL_TARGETS: [&str; 22] = [
    "table1",
    "table2",
    "table3",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "fig17",
    "fig18",
    "baseline",
    "readratio",
    "kernels",
    "mapping",
    "faults",
    "generations",
];

fn cmd_figure(cfg: &SystemConfig, args: &[String]) {
    let (rest, _json) = take_common(args);
    let mut opts = Opts::default();
    let mut targets: Vec<String> = Vec::new();
    for arg in &rest {
        match arg.as_str() {
            "--breakdown" => opts.breakdown = true,
            flag if flag.starts_with("--") => usage(),
            t => targets.push(t.to_string()),
        }
    }
    if targets.is_empty() {
        usage();
    }
    for arg in &targets {
        if arg == "all" {
            for t in ALL_TARGETS {
                println!("\n########## {t} ##########");
                run(t, cfg, opts);
            }
        } else {
            run(arg, cfg, opts);
        }
    }
}

fn cmd_sweep(cfg: &SystemConfig, args: &[String]) {
    let (rest, json) = take_common(args);
    let mut backend = BackendKind::default();
    let mut target: Option<String> = None;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--backend" => {
                let name = it.next().unwrap_or_else(|| usage());
                backend = BackendKind::parse(name).unwrap_or_else(|| {
                    eprintln!(
                        "unknown backend '{name}' (kinds: {})",
                        BackendKind::ALL.map(|k| k.label()).join(", ")
                    );
                    std::process::exit(2);
                });
            }
            t if !t.starts_with("--") && target.is_none() => target = Some(t.to_string()),
            _ => usage(),
        }
    }
    match target.as_deref() {
        Some("trace") => {
            capture_observed(
                cfg,
                backend,
                Some(json.as_deref().unwrap_or("trace.json")),
                None,
            );
        }
        Some("metrics") => {
            capture_observed(
                cfg,
                backend,
                None,
                Some(json.as_deref().unwrap_or("metrics.json")),
            );
        }
        Some("perf") => perf_json(cfg),
        _ => usage(),
    }
}

/// Parsed observability add-ons of the `chain` subcommand.
#[derive(Debug, Clone, Default)]
struct ChainObs {
    breakdown: bool,
    trace_out: Option<String>,
    metrics_out: Option<String>,
    profile_out: Option<String>,
    dashboard: bool,
    headless: bool,
    frames: usize,
    frame_us: u64,
    span_us: u64,
    refresh_ms: u64,
}

/// Runs the chain observability captures requested alongside (or instead
/// of) the characterization tables.
fn run_chain_obs(
    cfg: &SystemConfig,
    topo: Topology,
    shards: usize,
    o: &ChainObs,
    json: Option<&str>,
) {
    use hmc_bench::dashboard::{run_dashboard, DashboardMode, DashboardRun};
    use hmc_core::observe::run_chain_observed;

    let workload =
        Workload::full_scale(RequestKind::ReadOnly, RequestSize::new(64).expect("valid"));
    if o.breakdown || o.trace_out.is_some() || o.metrics_out.is_some() || o.profile_out.is_some() {
        let obs = run_chain_observed(
            cfg,
            topo,
            &Workload::read_stream(256, RequestSize::new(64).expect("valid")),
            None,
            8,
            Some(TimeDelta::from_us(1)),
            shards,
        );
        if o.breakdown {
            println!(
                "{}",
                obs.report
                    .attribution_table("chain latency attribution", &obs.latency)
            );
        }
        if let Some(path) = &o.trace_out {
            let json = obs.report.chrome_json_with_profile(Some(&obs.profile));
            match std::fs::write(path, &json) {
                Ok(()) => eprintln!("wrote trace artifact to {path}"),
                Err(e) => eprintln!("could not write {path}: {e}"),
            }
        }
        if let Some(path) = &o.metrics_out {
            if let Some(m) = &obs.metrics {
                write_artifact(m, path);
            }
        }
        if let Some(path) = &o.profile_out {
            write_artifact(&obs.profile, path);
        }
    }
    if o.dashboard || o.headless {
        let mode = if o.headless {
            DashboardMode::Headless
        } else {
            DashboardMode::Live {
                refresh_ms: o.refresh_ms,
            }
        };
        let (dash, sys) = run_dashboard(
            cfg,
            topo,
            &workload,
            shards,
            DashboardRun {
                total: TimeDelta::from_us(o.span_us),
                frame_span: TimeDelta::from_us(o.frame_us),
                capacity: o.frames,
                mode,
            },
        );
        if o.headless {
            let dump = dash.to_json();
            print!("{dump}");
            if let Some(path) = json {
                match std::fs::write(path, &dump) {
                    Ok(()) => eprintln!("wrote dashboard artifact to {path}"),
                    Err(e) => eprintln!("could not write {path}: {e}"),
                }
            }
        } else {
            // Leave the final panel on screen with a wall-clock summary.
            print!("{}", dash.render(&sys));
        }
    }
}

fn cmd_chain(cfg: &SystemConfig, args: &[String]) {
    let (rest, json) = take_common(args);
    let mut cubes: u8 = 2;
    let mut star = false;
    let mut interleave = CubeInterleave::CubeFirst;
    let mut shards: usize = 1;
    let mut obs = ChainObs {
        frames: 64,
        frame_us: 5,
        span_us: 500,
        refresh_ms: 100,
        ..ChainObs::default()
    };
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        let num = |it: &mut std::slice::Iter<String>| -> u64 {
            it.next()
                .and_then(|v| v.parse::<u64>().ok())
                .unwrap_or_else(|| usage())
        };
        match arg.as_str() {
            "--cubes" => cubes = u8::try_from(num(&mut it)).unwrap_or_else(|_| usage()),
            "--shards" => shards = num(&mut it) as usize,
            "--star" => star = true,
            "--interleave" => {
                interleave = match it.next().map(String::as_str) {
                    Some("cube") => CubeInterleave::CubeFirst,
                    Some("vault") => CubeInterleave::VaultFirst,
                    _ => usage(),
                };
            }
            "--breakdown" => obs.breakdown = true,
            "--trace-json" => obs.trace_out = Some(it.next().unwrap_or_else(|| usage()).clone()),
            "--metrics-json" => {
                obs.metrics_out = Some(it.next().unwrap_or_else(|| usage()).clone());
            }
            "--profile-json" => {
                obs.profile_out = Some(it.next().unwrap_or_else(|| usage()).clone());
            }
            "--dashboard" => obs.dashboard = true,
            "--dashboard-headless" => obs.headless = true,
            "--frames" => obs.frames = num(&mut it) as usize,
            "--frame-us" => obs.frame_us = num(&mut it),
            "--span-us" => obs.span_us = num(&mut it),
            "--refresh-ms" => obs.refresh_ms = num(&mut it),
            _ => usage(),
        }
    }
    if !(2..=8).contains(&cubes) {
        eprintln!("--cubes must be in 2..=8 (the CUB field addresses 8 cubes)");
        std::process::exit(2);
    }
    let topo = if star {
        Topology::star(cubes)
    } else {
        Topology::chain(cubes)
    }
    .with_interleave(interleave);
    let observing = obs.breakdown
        || obs.dashboard
        || obs.headless
        || obs.trace_out.is_some()
        || obs.metrics_out.is_some()
        || obs.profile_out.is_some();
    if observing {
        run_chain_obs(cfg, topo, shards, &obs, json.as_deref());
    } else {
        run_chain(cfg, cubes, star, interleave, shards, json.as_deref());
    }
}

fn main() {
    let cfg = SystemConfig::default();
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("figure") => cmd_figure(&cfg, &args[1..]),
        Some("sweep") => cmd_sweep(&cfg, &args[1..]),
        Some("sanitize") => {
            let (_, json) = take_common(&args[1..]);
            if !run_sanitize(&cfg, json.as_deref()) {
                std::process::exit(1);
            }
        }
        Some("faults") => {
            let (rest, json) = take_common(&args[1..]);
            let which = rest.first().map(String::as_str).unwrap_or("all");
            if !run_faults(&cfg, which, json.as_deref()) {
                std::process::exit(1);
            }
        }
        Some("openloop") => {
            let (rest, json) = take_common(&args[1..]);
            if !run_openloop(&cfg, &rest, json.as_deref()) {
                std::process::exit(1);
            }
        }
        Some("chain") => cmd_chain(&cfg, &args[1..]),
        Some("compare") => {
            let (rest, json) = take_common(&args[1..]);
            let mut mc = bench_mc();
            for arg in &rest {
                match arg.as_str() {
                    "--quick" => mc = MeasureConfig::quick(),
                    _ => usage(),
                }
            }
            if !run_compare(&cfg, &mc, json.as_deref()) {
                std::process::exit(1);
            }
        }
        Some(other) => {
            eprintln!("unknown command '{other}'");
            usage();
        }
        None => usage(),
    }
}
