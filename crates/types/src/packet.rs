//! Flit-granular packet sizing (Table II of the paper) and request kinds.
//!
//! HMC packets are built from 16 B *flits*. Data payloads span one to eight
//! flits (16–128 B); every request and every response additionally carries
//! an 8 B header and an 8 B tail — exactly one flit of overhead per packet.

use std::fmt;

use crate::error::HmcError;

/// Bytes per flit.
pub const FLIT_BYTES: u64 = 16;

/// Packet overhead per request or response: one flit (8 B header + 8 B
/// tail).
pub const OVERHEAD_FLITS: u64 = 1;

/// A count of flits.
///
/// ```
/// use hmc_types::packet::FlitCount;
///
/// let payload = FlitCount::new(8);
/// assert_eq!(payload.bytes(), 128);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct FlitCount(u64);

impl FlitCount {
    /// Zero flits.
    pub const ZERO: FlitCount = FlitCount(0);

    /// Creates a flit count.
    pub const fn new(flits: u64) -> Self {
        FlitCount(flits)
    }

    /// The number of flits.
    pub const fn count(self) -> u64 {
        self.0
    }

    /// The flits expressed in bytes.
    pub const fn bytes(self) -> u64 {
        self.0 * FLIT_BYTES
    }
}

impl std::ops::Add for FlitCount {
    type Output = FlitCount;
    fn add(self, rhs: FlitCount) -> FlitCount {
        FlitCount(self.0 + rhs.0)
    }
}

impl fmt::Display for FlitCount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} flits", self.0)
    }
}

/// Data payload size of a request: 16 B to 128 B in 16 B steps (footnote 11
/// of the paper lists all eight).
///
/// ```
/// use hmc_types::packet::RequestSize;
///
/// let s = RequestSize::new(128)?;
/// assert_eq!(s.payload_flits().count(), 8);
/// // 128 B of data per 144 B on the wire: 89% efficiency (Section IV-D).
/// assert!((s.wire_efficiency() - 128.0 / 144.0).abs() < 1e-12);
/// # Ok::<(), hmc_types::HmcError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RequestSize(u64);

impl RequestSize {
    /// The smallest payload: one flit.
    pub const MIN: RequestSize = RequestSize(16);
    /// The largest payload: eight flits.
    pub const MAX: RequestSize = RequestSize(128);

    /// All eight supported sizes, ascending.
    pub const ALL: [RequestSize; 8] = [
        RequestSize(16),
        RequestSize(32),
        RequestSize(48),
        RequestSize(64),
        RequestSize(80),
        RequestSize(96),
        RequestSize(112),
        RequestSize(128),
    ];

    /// The sizes Figure 8 plots.
    pub const FIG8: [RequestSize; 3] = [RequestSize(128), RequestSize(64), RequestSize(32)];

    /// Creates a request size.
    ///
    /// # Errors
    ///
    /// Returns [`HmcError::InvalidRequestSize`] unless `bytes` is a multiple
    /// of 16 in `16..=128`.
    pub const fn new(bytes: u64) -> Result<Self, HmcError> {
        if bytes >= 16 && bytes <= 128 && bytes.is_multiple_of(16) {
            Ok(RequestSize(bytes))
        } else {
            Err(HmcError::InvalidRequestSize(bytes))
        }
    }

    /// Payload size in bytes.
    pub const fn bytes(self) -> u64 {
        self.0
    }

    /// Payload size in flits.
    pub const fn payload_flits(self) -> FlitCount {
        FlitCount(self.0 / FLIT_BYTES)
    }

    /// Number of 32 B DRAM-bus beats the payload occupies inside a vault.
    /// Sub-32 B payloads still cost a full beat (Section II-C).
    pub const fn dram_beats(self) -> u64 {
        self.0.div_ceil(32)
    }

    /// Fraction of wire bytes that are data: `data / (data + overhead)`.
    pub fn wire_efficiency(self) -> f64 {
        self.0 as f64 / (self.0 + FLIT_BYTES) as f64
    }
}

impl fmt::Display for RequestSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} B", self.0)
    }
}

impl TryFrom<u64> for RequestSize {
    type Error = HmcError;
    fn try_from(bytes: u64) -> Result<Self, HmcError> {
        RequestSize::new(bytes)
    }
}

/// GUPS port request kind: read-only, write-only, or read-modify-write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RequestKind {
    /// `ro`: read requests only.
    #[default]
    ReadOnly,
    /// `wo`: write requests only.
    WriteOnly,
    /// `rw`: each location is read and then written back.
    ReadModifyWrite,
}

impl RequestKind {
    /// The three kinds in the order the paper's figures present them.
    pub const ALL: [RequestKind; 3] = [
        RequestKind::ReadOnly,
        RequestKind::ReadModifyWrite,
        RequestKind::WriteOnly,
    ];

    /// The short name the paper uses (`ro`, `wo`, `rw`).
    pub const fn short_name(self) -> &'static str {
        match self {
            RequestKind::ReadOnly => "ro",
            RequestKind::WriteOnly => "wo",
            RequestKind::ReadModifyWrite => "rw",
        }
    }

    /// True if the kind issues read requests.
    pub const fn reads(self) -> bool {
        matches!(self, RequestKind::ReadOnly | RequestKind::ReadModifyWrite)
    }

    /// True if the kind issues write requests.
    pub const fn writes(self) -> bool {
        matches!(self, RequestKind::WriteOnly | RequestKind::ReadModifyWrite)
    }
}

impl fmt::Display for RequestKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.short_name())
    }
}

/// The direction of an elementary memory operation on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// A read: empty request, data-carrying response.
    Read,
    /// A write: data-carrying request, empty response.
    Write,
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            OpKind::Read => "read",
            OpKind::Write => "write",
        })
    }
}

/// Packet sizes for one transaction — the rows of Table II.
///
/// ```
/// use hmc_types::packet::{OpKind, RequestSize, TransactionSizes};
///
/// let t = TransactionSizes::of(OpKind::Read, RequestSize::new(128)?);
/// assert_eq!(t.request_flits().count(), 1); // empty request + overhead
/// assert_eq!(t.response_flits().count(), 9); // 8 data + overhead
/// assert_eq!(t.total_wire_bytes(), 160);
/// # Ok::<(), hmc_types::HmcError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TransactionSizes {
    op: OpKind,
    size: RequestSize,
}

impl TransactionSizes {
    /// Table II sizes for an operation of the given payload size.
    pub const fn of(op: OpKind, size: RequestSize) -> Self {
        TransactionSizes { op, size }
    }

    /// The operation type.
    pub const fn op(self) -> OpKind {
        self.op
    }

    /// The payload size.
    pub const fn size(self) -> RequestSize {
        self.size
    }

    /// Request packet size (host → cube), including the overhead flit.
    pub const fn request_flits(self) -> FlitCount {
        match self.op {
            OpKind::Read => FlitCount(OVERHEAD_FLITS),
            OpKind::Write => FlitCount(self.size.payload_flits().count() + OVERHEAD_FLITS),
        }
    }

    /// Response packet size (cube → host), including the overhead flit.
    pub const fn response_flits(self) -> FlitCount {
        match self.op {
            OpKind::Read => FlitCount(self.size.payload_flits().count() + OVERHEAD_FLITS),
            OpKind::Write => FlitCount(OVERHEAD_FLITS),
        }
    }

    /// Total bytes the transaction moves on the wire in both directions —
    /// the quantity the paper's bandwidth accounting multiplies by the
    /// access count ("including header, tail and data payload").
    pub const fn total_wire_bytes(self) -> u64 {
        (self.request_flits().count() + self.response_flits().count()) * FLIT_BYTES
    }
}

impl fmt::Display for TransactionSizes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}: req {} / resp {}",
            self.op,
            self.size,
            self.request_flits(),
            self.response_flits()
        )
    }
}

/// Wire bytes moved by one *logical access* of the given kind and size,
/// counting every constituent request and response packet. A
/// read-modify-write access is one read transaction plus one write
/// transaction.
pub fn wire_bytes_per_access(kind: RequestKind, size: RequestSize) -> u64 {
    match kind {
        RequestKind::ReadOnly => TransactionSizes::of(OpKind::Read, size).total_wire_bytes(),
        RequestKind::WriteOnly => TransactionSizes::of(OpKind::Write, size).total_wire_bytes(),
        RequestKind::ReadModifyWrite => {
            TransactionSizes::of(OpKind::Read, size).total_wire_bytes()
                + TransactionSizes::of(OpKind::Write, size).total_wire_bytes()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flit_count_bytes() {
        assert_eq!(FlitCount::new(9).bytes(), 144);
        assert_eq!((FlitCount::new(1) + FlitCount::new(8)).count(), 9);
        assert_eq!(FlitCount::ZERO.bytes(), 0);
    }

    #[test]
    fn request_size_validation() {
        assert!(RequestSize::new(16).is_ok());
        assert!(RequestSize::new(128).is_ok());
        assert!(RequestSize::new(0).is_err());
        assert!(RequestSize::new(24).is_err());
        assert!(RequestSize::new(144).is_err());
        assert_eq!(RequestSize::ALL.len(), 8);
        assert!(RequestSize::ALL.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn dram_beats() {
        assert_eq!(RequestSize::new(16).unwrap().dram_beats(), 1);
        assert_eq!(RequestSize::new(32).unwrap().dram_beats(), 1);
        assert_eq!(RequestSize::new(48).unwrap().dram_beats(), 2);
        assert_eq!(RequestSize::new(128).unwrap().dram_beats(), 4);
    }

    #[test]
    fn wire_efficiency_matches_section_4d() {
        // 128 B requests: 128/(128+16) = 89%; 16 B requests: 50%.
        let big = RequestSize::new(128).unwrap();
        let small = RequestSize::new(16).unwrap();
        assert!((big.wire_efficiency() - 0.8888).abs() < 1e-3);
        assert!((small.wire_efficiency() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn table_2_read_sizes() {
        for size in RequestSize::ALL {
            let t = TransactionSizes::of(OpKind::Read, size);
            assert_eq!(t.request_flits().count(), 1, "read request is 1 flit");
            let expected = size.payload_flits().count() + 1;
            assert_eq!(t.response_flits().count(), expected);
            assert!((2..=9).contains(&t.response_flits().count()));
        }
    }

    #[test]
    fn table_2_write_sizes() {
        for size in RequestSize::ALL {
            let t = TransactionSizes::of(OpKind::Write, size);
            assert_eq!(t.response_flits().count(), 1, "write response is 1 flit");
            let expected = size.payload_flits().count() + 1;
            assert_eq!(t.request_flits().count(), expected);
        }
    }

    #[test]
    fn wire_bytes_per_access_by_kind() {
        let s = RequestSize::new(128).unwrap();
        // ro: 1-flit request + 9-flit response = 160 B.
        assert_eq!(wire_bytes_per_access(RequestKind::ReadOnly, s), 160);
        // wo: 9-flit request + 1-flit response = 160 B.
        assert_eq!(wire_bytes_per_access(RequestKind::WriteOnly, s), 160);
        // rw: both transactions = 320 B.
        assert_eq!(wire_bytes_per_access(RequestKind::ReadModifyWrite, s), 320);
    }

    #[test]
    fn request_kind_properties() {
        assert!(RequestKind::ReadOnly.reads());
        assert!(!RequestKind::ReadOnly.writes());
        assert!(RequestKind::WriteOnly.writes());
        assert!(!RequestKind::WriteOnly.reads());
        assert!(RequestKind::ReadModifyWrite.reads());
        assert!(RequestKind::ReadModifyWrite.writes());
        assert_eq!(RequestKind::ReadOnly.short_name(), "ro");
    }

    #[test]
    fn try_from_u64() {
        assert_eq!(RequestSize::try_from(64).unwrap().bytes(), 64);
        assert!(RequestSize::try_from(7).is_err());
    }

    #[test]
    fn display_impls() {
        let t = TransactionSizes::of(OpKind::Read, RequestSize::MAX);
        assert!(format!("{t}").contains("read"));
        assert_eq!(format!("{}", RequestKind::ReadModifyWrite), "rw");
        assert_eq!(format!("{}", RequestSize::MIN), "16 B");
        assert_eq!(format!("{}", FlitCount::new(2)), "2 flits");
        assert_eq!(format!("{}", OpKind::Write), "write");
    }
}
