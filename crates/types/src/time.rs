//! Picosecond-resolution simulation time.
//!
//! The whole workspace uses a single integer time base of **picoseconds** so
//! that the three clock domains of the modelled system — the 187.5 MHz FPGA
//! fabric, the 15 Gb/s SerDes lanes, and the internal DRAM timing — can be
//! expressed exactly without floating-point drift.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant on the simulation timeline, in picoseconds since the
/// start of the simulation.
///
/// ```
/// use hmc_types::time::{Time, TimeDelta};
///
/// let t = Time::ZERO + TimeDelta::from_ns(5);
/// assert_eq!(t.as_ps(), 5_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(u64);

/// A span of simulation time, in picoseconds.
///
/// ```
/// use hmc_types::time::TimeDelta;
///
/// let d = TimeDelta::from_us(2) + TimeDelta::from_ns(500);
/// assert_eq!(d.as_ns_f64(), 2_500.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TimeDelta(u64);

impl Time {
    /// The origin of the simulation timeline.
    pub const ZERO: Time = Time(0);
    /// A sentinel later than any reachable simulation instant.
    pub const MAX: Time = Time(u64::MAX);

    /// Creates an instant from raw picoseconds.
    pub const fn from_ps(ps: u64) -> Self {
        Time(ps)
    }

    /// Raw picosecond value.
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// This instant expressed in nanoseconds (lossy).
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// This instant expressed in microseconds (lossy).
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// This instant expressed in seconds (lossy).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// The span from `earlier` to `self`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is after `self`.
    pub fn since(self, earlier: Time) -> TimeDelta {
        debug_assert!(earlier.0 <= self.0, "since() called with a later instant");
        TimeDelta(self.0.saturating_sub(earlier.0))
    }

    /// Saturating add that never wraps past [`Time::MAX`].
    pub fn saturating_add(self, delta: TimeDelta) -> Time {
        Time(self.0.saturating_add(delta.0))
    }
}

impl TimeDelta {
    /// A zero-length span.
    pub const ZERO: TimeDelta = TimeDelta(0);

    /// Creates a span from raw picoseconds.
    pub const fn from_ps(ps: u64) -> Self {
        TimeDelta(ps)
    }

    /// Creates a span from nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        TimeDelta(ns * 1_000)
    }

    /// Creates a span from microseconds.
    pub const fn from_us(us: u64) -> Self {
        TimeDelta(us * 1_000_000)
    }

    /// Creates a span from milliseconds.
    pub const fn from_ms(ms: u64) -> Self {
        TimeDelta(ms * 1_000_000_000)
    }

    /// Creates a span from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        TimeDelta(s * 1_000_000_000_000)
    }

    /// Creates a span from fractional seconds, rounding to the nearest
    /// picosecond.
    pub fn from_secs_f64(s: f64) -> Self {
        TimeDelta((s * 1e12).round() as u64)
    }

    /// Raw picosecond value.
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// This span in nanoseconds (lossy).
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// This span in microseconds (lossy).
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// This span in seconds (lossy).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// True if this span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiplies the span by an integer factor, saturating on overflow.
    pub fn saturating_mul(self, factor: u64) -> TimeDelta {
        TimeDelta(self.0.saturating_mul(factor))
    }
}

impl Add<TimeDelta> for Time {
    type Output = Time;
    fn add(self, rhs: TimeDelta) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign<TimeDelta> for Time {
    fn add_assign(&mut self, rhs: TimeDelta) {
        self.0 += rhs.0;
    }
}

impl Sub<TimeDelta> for Time {
    type Output = Time;
    fn sub(self, rhs: TimeDelta) -> Time {
        Time(self.0 - rhs.0)
    }
}

impl Sub for Time {
    type Output = TimeDelta;
    fn sub(self, rhs: Time) -> TimeDelta {
        TimeDelta(self.0 - rhs.0)
    }
}

impl Add for TimeDelta {
    type Output = TimeDelta;
    fn add(self, rhs: TimeDelta) -> TimeDelta {
        TimeDelta(self.0 + rhs.0)
    }
}

impl AddAssign for TimeDelta {
    fn add_assign(&mut self, rhs: TimeDelta) {
        self.0 += rhs.0;
    }
}

impl Sub for TimeDelta {
    type Output = TimeDelta;
    fn sub(self, rhs: TimeDelta) -> TimeDelta {
        TimeDelta(self.0 - rhs.0)
    }
}

impl SubAssign for TimeDelta {
    fn sub_assign(&mut self, rhs: TimeDelta) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for TimeDelta {
    type Output = TimeDelta;
    fn mul(self, rhs: u64) -> TimeDelta {
        TimeDelta(self.0 * rhs)
    }
}

impl Div<u64> for TimeDelta {
    type Output = TimeDelta;
    fn div(self, rhs: u64) -> TimeDelta {
        TimeDelta(self.0 / rhs)
    }
}

impl Sum for TimeDelta {
    fn sum<I: Iterator<Item = TimeDelta>>(iter: I) -> Self {
        iter.fold(TimeDelta::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} ns", self.as_ns_f64())
    }
}

impl fmt::Display for TimeDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3} us", self.as_us_f64())
        } else {
            write!(f, "{:.3} ns", self.as_ns_f64())
        }
    }
}

/// A clock frequency, stored as an exact period in picoseconds.
///
/// The modelled FPGA fabric runs at 187.5 MHz, whose period (5333.3 ps) does
/// not divide evenly into picoseconds; [`Frequency::from_mhz_exact`] keeps a
/// rational period so that cycle arithmetic stays deterministic.
///
/// ```
/// use hmc_types::time::Frequency;
///
/// let fpga = Frequency::FPGA_187_5_MHZ;
/// // Ten FPGA cycles are the paper's 53.3 ns FlitsToParallel latency.
/// assert_eq!(fpga.cycles(10).as_ns_f64().round(), 53.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Frequency {
    /// Period numerator in picoseconds.
    period_num: u64,
    /// Period denominator.
    period_den: u64,
}

impl Frequency {
    /// The 187.5 MHz clock of the Kintex UltraScale GUPS design
    /// (period = 16/3 ns).
    pub const FPGA_187_5_MHZ: Frequency = Frequency {
        period_num: 16_000,
        period_den: 3,
    };

    /// Creates a frequency from megahertz with an exact rational period.
    ///
    /// # Panics
    ///
    /// Panics if `mhz` is zero.
    pub fn from_mhz_exact(mhz: u64) -> Self {
        assert!(mhz > 0, "frequency must be non-zero");
        // period = 1 / (mhz * 1e6) s = 1e6 / mhz ps
        Frequency {
            period_num: 1_000_000,
            period_den: mhz,
        }
    }

    /// The span covered by `n` whole cycles, rounded down to a picosecond.
    pub fn cycles(self, n: u64) -> TimeDelta {
        TimeDelta(self.period_num * n / self.period_den)
    }

    /// The period of one cycle, rounded down to a picosecond.
    pub fn period(self) -> TimeDelta {
        self.cycles(1)
    }

    /// The frequency in hertz (lossy).
    pub fn as_hz_f64(self) -> f64 {
        1e12 * self.period_den as f64 / self.period_num as f64
    }
}

impl fmt::Display for Frequency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} MHz", self.as_hz_f64() / 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_roundtrips_units() {
        assert_eq!(TimeDelta::from_ns(1).as_ps(), 1_000);
        assert_eq!(TimeDelta::from_us(1).as_ps(), 1_000_000);
        assert_eq!(TimeDelta::from_ms(1).as_ps(), 1_000_000_000);
        assert_eq!(TimeDelta::from_secs(1).as_ps(), 1_000_000_000_000);
        assert_eq!(TimeDelta::from_secs_f64(0.5).as_ps(), 500_000_000_000);
    }

    #[test]
    fn time_arithmetic() {
        let t0 = Time::from_ps(100);
        let t1 = t0 + TimeDelta::from_ps(50);
        assert_eq!(t1.as_ps(), 150);
        assert_eq!((t1 - t0).as_ps(), 50);
        assert_eq!(t1.since(t0).as_ps(), 50);
        let mut t = t0;
        t += TimeDelta::from_ps(10);
        assert_eq!(t.as_ps(), 110);
        assert_eq!((t - TimeDelta::from_ps(10)).as_ps(), 100);
    }

    #[test]
    fn delta_arithmetic() {
        let a = TimeDelta::from_ns(3);
        let b = TimeDelta::from_ns(2);
        assert_eq!((a + b).as_ps(), 5_000);
        assert_eq!((a - b).as_ps(), 1_000);
        assert_eq!((a * 4).as_ps(), 12_000);
        assert_eq!((a / 3).as_ps(), 1_000);
        let sum: TimeDelta = vec![a, b, b].into_iter().sum();
        assert_eq!(sum.as_ps(), 7_000);
    }

    #[test]
    fn saturating_ops() {
        assert_eq!(Time::MAX.saturating_add(TimeDelta::from_ns(1)), Time::MAX);
        assert_eq!(
            TimeDelta::from_ps(u64::MAX).saturating_mul(2).as_ps(),
            u64::MAX
        );
    }

    #[test]
    fn fpga_clock_is_exact() {
        let f = Frequency::FPGA_187_5_MHZ;
        // 3 cycles of 187.5 MHz are exactly 16 ns.
        assert_eq!(f.cycles(3).as_ps(), 16_000);
        // 10 cycles round down to 53.333 ns -> 53333 ps.
        assert_eq!(f.cycles(10).as_ps(), 53_333);
        assert!((f.as_hz_f64() - 187.5e6).abs() < 1.0);
    }

    #[test]
    fn from_mhz_exact_periods() {
        let f = Frequency::from_mhz_exact(200);
        assert_eq!(f.period().as_ps(), 5_000);
        assert_eq!(f.cycles(4).as_ps(), 20_000);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_frequency_panics() {
        let _ = Frequency::from_mhz_exact(0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", TimeDelta::from_ns(5)), "5.000 ns");
        assert_eq!(format!("{}", TimeDelta::from_us(2)), "2.000 us");
        assert_eq!(format!("{}", Time::from_ps(1500)), "1.500 ns");
        assert_eq!(format!("{}", Frequency::from_mhz_exact(100)), "100.0 MHz");
    }

    #[test]
    fn since_is_saturating_in_release() {
        let t0 = Time::from_ps(10);
        let t1 = Time::from_ps(30);
        assert_eq!(t1.since(t0).as_ps(), 20);
    }
}
