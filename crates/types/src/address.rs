//! The HMC request address space and its low-order-interleaved mapping.
//!
//! HMC request headers carry a 34-bit address (16 GB addressable); on a 4 GB
//! HMC 1.1 the two high-order bits are ignored. Addresses are interleaved
//! across the structural hierarchy **atom → block → vault → bank → row**
//! exactly as Figure 3 of the paper shows: the low four bits select a 16 B
//! atom inside a block, the next bits select the atom's offset within the
//! *maximum block* (configurable 16/32/64/128 B via the Address Mapping Mode
//! Register), then four bits pick the vault (two of which are the quadrant),
//! then four bits pick the bank inside the vault, and everything above falls
//! into the 256 B DRAM row.

use std::fmt;

use crate::error::HmcError;
use crate::spec::HmcSpec;

/// Bytes per address atom: flits are 16 B and the mapping ignores the low
/// four address bits.
pub const ATOM_BYTES: u64 = 16;

/// DRAM row (page) size in HMC: 256 B, notably smaller than DDR4's
/// 512–2048 B.
pub const ROW_BYTES: u64 = 256;

/// Number of address bits carried in an HMC request header.
pub const ADDRESS_BITS: u32 = 34;

/// Number of CUB (cube id) routing bits a chained configuration adds above
/// the in-cube address: HMC 1.1 request headers reserve a 3-bit cube field,
/// so a processor can shard a *global* address space across up to eight
/// chained cubes.
pub const CUB_BITS: u32 = 3;

/// Maximum number of cubes a chain or star topology may contain
/// (`2^CUB_BITS`).
pub const MAX_CUBES: u8 = 1 << CUB_BITS;

/// A physical address inside the HMC address space.
///
/// ```
/// use hmc_types::address::Address;
///
/// let a = Address::new(0x1000);
/// assert_eq!(a.as_u64(), 0x1000);
/// assert_eq!((a + 0x40).as_u64(), 0x1040);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Address(u64);

impl Address {
    /// Creates an address, keeping only the bits a request header can carry:
    /// the 34 in-cube address bits plus the [`CUB_BITS`] routing field a
    /// chained global address may occupy above them. Single-cube callers
    /// never produce values past bit 33, so the wider mask is inert there.
    pub const fn new(raw: u64) -> Self {
        Address(raw & ((1 << (ADDRESS_BITS + CUB_BITS)) - 1))
    }

    /// The raw address value.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Extracts the bit field `[lo, lo+width)`.
    pub const fn bits(self, lo: u32, width: u32) -> u64 {
        (self.0 >> lo) & ((1 << width) - 1)
    }

    /// True if the address starts on a 32 B boundary — the granularity of
    /// the DRAM data bus within a vault. The specification notes that
    /// requests not aligned this way use the bus inefficiently.
    pub const fn is_dram_bus_aligned(self) -> bool {
        self.0.is_multiple_of(32)
    }
}

impl std::ops::Add<u64> for Address {
    type Output = Address;
    fn add(self, rhs: u64) -> Address {
        Address::new(self.0.wrapping_add(rhs))
    }
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#011x}", self.0)
    }
}

impl From<u64> for Address {
    fn from(raw: u64) -> Self {
        Address::new(raw)
    }
}

/// The *maximum block size* configured in the Address Mapping Mode Register.
///
/// It controls how many low-order address bits stay contiguous inside one
/// vault before the interleave moves to the next vault (Figure 3). The
/// hardware default is 128 B (register value `0x2`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MaxBlockSize {
    /// 16 B blocks: every consecutive atom lands in a different vault.
    B16,
    /// 32 B blocks.
    B32,
    /// 64 B blocks.
    B64,
    /// 128 B blocks — the device default.
    #[default]
    B128,
}

impl MaxBlockSize {
    /// All supported settings, smallest first.
    pub const ALL: [MaxBlockSize; 4] = [
        MaxBlockSize::B16,
        MaxBlockSize::B32,
        MaxBlockSize::B64,
        MaxBlockSize::B128,
    ];

    /// The block size in bytes.
    pub const fn bytes(self) -> u64 {
        match self {
            MaxBlockSize::B16 => 16,
            MaxBlockSize::B32 => 32,
            MaxBlockSize::B64 => 64,
            MaxBlockSize::B128 => 128,
        }
    }

    /// Number of address bits that select an atom within a block
    /// (`log2(bytes / 16)`).
    pub const fn block_offset_bits(self) -> u32 {
        match self {
            MaxBlockSize::B16 => 0,
            MaxBlockSize::B32 => 1,
            MaxBlockSize::B64 => 2,
            MaxBlockSize::B128 => 3,
        }
    }

    /// Parses a byte count into a block size.
    ///
    /// # Errors
    ///
    /// Returns [`HmcError::InvalidBlockSize`] for anything other than 16, 32,
    /// 64, or 128.
    pub fn from_bytes(bytes: u64) -> Result<Self, HmcError> {
        match bytes {
            16 => Ok(MaxBlockSize::B16),
            32 => Ok(MaxBlockSize::B32),
            64 => Ok(MaxBlockSize::B64),
            128 => Ok(MaxBlockSize::B128),
            other => Err(HmcError::InvalidBlockSize(other)),
        }
    }
}

impl fmt::Display for MaxBlockSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} B", self.bytes())
    }
}

/// Identifies a vault within the cube (globally, 0..num_vaults).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VaultId(u16);

impl VaultId {
    /// Creates a vault id from a global index.
    pub const fn new(index: u16) -> Self {
        VaultId(index)
    }

    /// The global vault index.
    pub const fn index(self) -> u16 {
        self.0
    }
}

impl fmt::Display for VaultId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vault{}", self.0)
    }
}

/// Identifies a bank within a vault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BankId(u16);

impl BankId {
    /// Creates a bank id from an index within its vault.
    pub const fn new(index: u16) -> Self {
        BankId(index)
    }

    /// The bank index within its vault.
    pub const fn index(self) -> u16 {
        self.0
    }
}

impl fmt::Display for BankId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bank{}", self.0)
    }
}

/// Identifies a quadrant (a group of vaults sharing one external link).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct QuadrantId(u16);

impl QuadrantId {
    /// Creates a quadrant id.
    pub const fn new(index: u16) -> Self {
        QuadrantId(index)
    }

    /// The quadrant index.
    pub const fn index(self) -> u16 {
        self.0
    }
}

impl fmt::Display for QuadrantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "quad{}", self.0)
    }
}

/// Identifies a cube within a chained (multi-cube) topology — the CUB
/// routing field of a request header. Single-cube systems use cube 0
/// everywhere.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CubeId(u8);

impl CubeId {
    /// Creates a cube id from a chain position.
    pub const fn new(index: u8) -> Self {
        CubeId(index)
    }

    /// The cube's position in the chain (0 = host-adjacent cube).
    pub const fn index(self) -> u8 {
        self.0
    }
}

impl fmt::Display for CubeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cube{}", self.0)
    }
}

/// How a sharded host spreads its global address space across the cubes of
/// a chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CubeInterleave {
    /// Consecutive blocks rotate across cubes first (block `b` lands on cube
    /// `b mod N`), then interleave vaults *within* each cube as usual. This
    /// spreads even a small sequential window over every cube — the
    /// chain-level analogue of the vault-first interleave of Figure 3.
    #[default]
    CubeFirst,
    /// Each cube owns one contiguous capacity-sized slice of the global
    /// space (cube = `addr / capacity`): vault-level interleave stays
    /// intact inside a cube, but a working set smaller than one cube never
    /// leaves it.
    VaultFirst,
}

impl fmt::Display for CubeInterleave {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CubeInterleave::CubeFirst => write!(f, "cube-first"),
            CubeInterleave::VaultFirst => write!(f, "vault-first"),
        }
    }
}

/// The cube-sharding function: splits a *global* address into the cube that
/// owns it and the *local* in-cube address the device decodes.
///
/// With `cubes == 1` both interleaves are the identity (`split` returns
/// cube 0 and the unchanged address), which is what keeps single-cube
/// topology runs bit-identical to the plain `System` path.
///
/// ```
/// use hmc_types::address::{ChainShard, CubeInterleave};
///
/// let shard = ChainShard::new(2, CubeInterleave::CubeFirst);
/// let cap = 4 << 30; // 4 GB per cube
/// let (c0, a0) = shard.split(0, cap);
/// let (c1, a1) = shard.split(128, cap);
/// assert_eq!((c0.index(), a0.as_u64()), (0, 0));
/// assert_eq!((c1.index(), a1.as_u64()), (1, 0));
/// assert_eq!(shard.compose(c1, a1.as_u64(), cap), 128);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ChainShard {
    cubes: u8,
    interleave: CubeInterleave,
    block: u64,
}

impl ChainShard {
    /// The single-cube identity shard.
    pub const SINGLE: ChainShard = ChainShard {
        cubes: 1,
        interleave: CubeInterleave::CubeFirst,
        block: 128,
    };

    /// Creates a shard over `cubes` cubes with 128 B interleave blocks (the
    /// device's default maximum block size, so cube rotation and vault
    /// rotation advance in lockstep).
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= cubes <= MAX_CUBES`.
    pub fn new(cubes: u8, interleave: CubeInterleave) -> Self {
        assert!(
            (1..=MAX_CUBES).contains(&cubes),
            "chain must have 1..={MAX_CUBES} cubes, got {cubes}"
        );
        ChainShard {
            cubes,
            interleave,
            block: 128,
        }
    }

    /// Number of cubes in the shard.
    pub const fn cubes(self) -> u8 {
        self.cubes
    }

    /// The configured interleave order.
    pub const fn interleave(self) -> CubeInterleave {
        self.interleave
    }

    /// The interleave block size in bytes.
    pub const fn block(self) -> u64 {
        self.block
    }

    /// Splits a global byte address into `(owning cube, local address)`.
    /// `cube_capacity` is the byte capacity of one cube.
    pub fn split(self, global: u64, cube_capacity: u64) -> (CubeId, Address) {
        let cubes = self.cubes as u64;
        if cubes == 1 {
            return (CubeId::new(0), Address::new(global));
        }
        match self.interleave {
            CubeInterleave::CubeFirst => {
                let block = global / self.block;
                let cube = block % cubes;
                let local = (block / cubes) * self.block + global % self.block;
                // `cube < cubes <= MAX_CUBES = 8`, so the narrowing is exact.
                // hmc-lint: allow(lossy-cast)
                (CubeId::new(cube as u8), Address::new(local % cube_capacity))
            }
            CubeInterleave::VaultFirst => {
                let cube = (global / cube_capacity) % cubes;
                (
                    // `cube < cubes <= MAX_CUBES = 8`, so the narrowing is exact.
                    // hmc-lint: allow(lossy-cast)
                    CubeId::new(cube as u8),
                    Address::new(global % cube_capacity),
                )
            }
        }
    }

    /// Rebuilds the global address a `(cube, local)` pair came from —
    /// inverse of [`split`](ChainShard::split) for in-range locals.
    pub fn compose(self, cube: CubeId, local: u64, cube_capacity: u64) -> u64 {
        let cubes = self.cubes as u64;
        if cubes == 1 {
            return local;
        }
        match self.interleave {
            CubeInterleave::CubeFirst => {
                let block = local / self.block;
                (block * cubes + cube.index() as u64) * self.block + local % self.block
            }
            CubeInterleave::VaultFirst => cube.index() as u64 * cube_capacity + local,
        }
    }
}

impl Default for ChainShard {
    fn default() -> Self {
        ChainShard::SINGLE
    }
}

impl fmt::Display for ChainShard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cube(s), {}", self.cubes, self.interleave)
    }
}

/// The structural coordinates an address decodes to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Location {
    /// Quadrant containing the vault.
    pub quadrant: QuadrantId,
    /// Global vault index.
    pub vault: VaultId,
    /// Bank within the vault.
    pub bank: BankId,
    /// DRAM row within the bank (256 B rows).
    pub row: u64,
    /// Byte offset of the address within its row.
    pub row_offset: u64,
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{}/{} row {} +{}",
            self.quadrant, self.vault, self.bank, self.row, self.row_offset
        )
    }
}

/// Order of the vault and bank fields in the interleave.
///
/// The HMC specification lets the user "fine-tune the address mapping
/// scheme by changing bit positions used for vault and bank mapping"
/// (Section II-C); these are the two meaningful orders.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum InterleaveOrder {
    /// Vault bits just above the block offset (the device default):
    /// consecutive blocks spread across vaults first — maximum vault-level
    /// parallelism for sequential streams.
    #[default]
    VaultThenBank,
    /// Bank bits just above the block offset: consecutive blocks stay in
    /// one vault, cycling its banks — an ablation showing why the default
    /// matters (sequential streams pin to the 10 GB/s vault ceiling).
    BankThenVault,
}

/// The low-order interleaved address mapping of Figure 3.
///
/// Field layout (low to high): 4 ignored atom bits, `block_offset_bits`,
/// then the vault and bank fields in the configured [`InterleaveOrder`]
/// (vault-first by default; the low part of the vault field selects the
/// vault within its quadrant, the high part the quadrant), then the row.
/// The field widths for the vault and bank levels come from the device
/// [`HmcSpec`] at decode time, so the same mapping value works for Gen1,
/// Gen2, and HMC 2.0 geometries.
///
/// ```
/// use hmc_types::address::{Address, AddressMapping, MaxBlockSize};
/// use hmc_types::spec::{HmcSpec, HmcVersion};
///
/// let spec = HmcSpec::of(HmcVersion::Gen2);
/// let map = AddressMapping::new(MaxBlockSize::B128);
/// // Consecutive 128 B blocks land in consecutive vaults.
/// let a = map.decode(Address::new(0), &spec);
/// let b = map.decode(Address::new(128), &spec);
/// assert_eq!(a.vault.index(), 0);
/// assert_eq!(b.vault.index(), 1);
/// assert_eq!(a.bank, b.bank);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct AddressMapping {
    max_block: MaxBlockSize,
    order: InterleaveOrder,
}

impl AddressMapping {
    /// Number of always-ignored low-order bits (16 B atoms).
    pub const ATOM_BITS: u32 = 4;

    /// Creates a mapping with the given maximum block size and the
    /// default vault-first interleave.
    pub const fn new(max_block: MaxBlockSize) -> Self {
        AddressMapping {
            max_block,
            order: InterleaveOrder::VaultThenBank,
        }
    }

    /// Creates a mapping with an explicit field order (the mode-register
    /// fine-tuning ablation).
    pub const fn with_order(max_block: MaxBlockSize, order: InterleaveOrder) -> Self {
        AddressMapping { max_block, order }
    }

    /// The configured maximum block size.
    pub const fn max_block(self) -> MaxBlockSize {
        self.max_block
    }

    /// The configured field order.
    pub const fn order(self) -> InterleaveOrder {
        self.order
    }

    /// Lowest bit above the block offset (start of the vault/bank
    /// fields).
    const fn fields_shift(self) -> u32 {
        Self::ATOM_BITS + self.max_block.block_offset_bits()
    }

    /// Lowest bit of the vault id field.
    pub fn vault_shift_for(self, spec: &HmcSpec) -> u32 {
        match self.order {
            InterleaveOrder::VaultThenBank => self.fields_shift(),
            InterleaveOrder::BankThenVault => self.fields_shift() + spec.bank_bits(),
        }
    }

    /// Lowest bit of the vault id field under the default geometry-
    /// independent (vault-first) order.
    ///
    /// # Panics
    ///
    /// Panics if the mapping uses [`InterleaveOrder::BankThenVault`],
    /// whose vault position depends on the geometry — use
    /// [`vault_shift_for`](AddressMapping::vault_shift_for) there.
    pub fn vault_shift(self) -> u32 {
        assert_eq!(
            self.order,
            InterleaveOrder::VaultThenBank,
            "vault_shift() requires the default order; use vault_shift_for()"
        );
        self.fields_shift()
    }

    /// Lowest bit of the bank id field for the given device geometry.
    pub fn bank_shift(self, spec: &HmcSpec) -> u32 {
        match self.order {
            InterleaveOrder::VaultThenBank => self.fields_shift() + spec.vault_bits(),
            InterleaveOrder::BankThenVault => self.fields_shift(),
        }
    }

    /// Lowest bit of the row field for the given device geometry.
    pub fn row_shift(self, spec: &HmcSpec) -> u32 {
        self.fields_shift() + spec.vault_bits() + spec.bank_bits()
    }

    /// Decodes an address into structural coordinates.
    pub fn decode(self, addr: Address, spec: &HmcSpec) -> Location {
        let vault_raw = u16::try_from(addr.bits(self.vault_shift_for(spec), spec.vault_bits()))
            .expect("vault field fits u16");
        let bank = u16::try_from(addr.bits(self.bank_shift(spec), spec.bank_bits()))
            .expect("bank field fits u16");
        let row = addr.as_u64() >> self.row_shift(spec);
        // The quadrant is the high part of the vault field: vaults are
        // numbered with the vault-in-quadrant bits low (Figure 3).
        let vaults_per_quad_bits = spec.vault_bits() - spec.quadrant_bits();
        let quadrant = vault_raw >> vaults_per_quad_bits;
        Location {
            quadrant: QuadrantId::new(quadrant),
            vault: VaultId::new(vault_raw),
            bank: BankId::new(bank),
            row,
            row_offset: addr.as_u64() % ROW_BYTES,
        }
    }

    /// Builds the address whose decoded coordinates are the given vault,
    /// bank, and row with a zero in-block offset. Inverse of [`decode`] for
    /// aligned addresses.
    ///
    /// [`decode`]: AddressMapping::decode
    pub fn encode(self, vault: VaultId, bank: BankId, row: u64, spec: &HmcSpec) -> Address {
        debug_assert!(u32::from(vault.index()) < spec.num_vaults());
        debug_assert!(u32::from(bank.index()) < spec.banks_per_vault());
        let mut raw = 0u64;
        raw |= (vault.index() as u64) << self.vault_shift_for(spec);
        raw |= (bank.index() as u64) << self.bank_shift(spec);
        raw |= row << self.row_shift(spec);
        Address::new(raw)
    }
}

/// The GUPS mask / anti-mask registers: force chosen address bits to zero
/// (`zero_mask`) or one (`one_mask`), restricting a random address stream to
/// a subset of quadrants, vaults, banks, or rows.
///
/// ```
/// use hmc_types::address::{Address, AddressMask};
///
/// // Figure 6's "bits 7-14 forced to zero" mask: all traffic lands on
/// // bank 0 of vault 0 in quadrant 0.
/// let mask = AddressMask::zero_bits(7, 14);
/// let a = mask.apply(Address::new(0x3FFF0));
/// assert_eq!(a.as_u64() & 0x7F80, 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct AddressMask {
    zero_mask: u64,
    one_mask: u64,
}

impl AddressMask {
    /// A mask that leaves addresses untouched.
    pub const NONE: AddressMask = AddressMask {
        zero_mask: 0,
        one_mask: 0,
    };

    /// Creates a mask from raw bit masks. Bits set in `zero_mask` are forced
    /// to zero; bits set in `one_mask` are forced to one.
    ///
    /// # Panics
    ///
    /// Panics if a bit appears in both masks.
    pub fn new(zero_mask: u64, one_mask: u64) -> Self {
        assert_eq!(
            zero_mask & one_mask,
            0,
            "a bit cannot be forced to both zero and one"
        );
        AddressMask {
            zero_mask,
            one_mask,
        }
    }

    /// Forces the inclusive bit range `[lo, hi]` to zero — the operation the
    /// paper's Figure 6 sweeps across bit positions.
    pub fn zero_bits(lo: u32, hi: u32) -> Self {
        assert!(lo <= hi && hi < 64, "invalid bit range {lo}-{hi}");
        let width = hi - lo + 1;
        let mask = if width == 64 {
            u64::MAX
        } else {
            ((1u64 << width) - 1) << lo
        };
        AddressMask {
            zero_mask: mask,
            one_mask: 0,
        }
    }

    /// Adds another force-to-zero range to this mask.
    ///
    /// # Panics
    ///
    /// Panics if the range overlaps bits forced to one, or if the range is
    /// invalid.
    pub fn with_zero_bits(mut self, lo: u32, hi: u32) -> Self {
        assert!(lo <= hi && hi < 64, "invalid bit range {lo}-{hi}");
        let mask = ((1u64 << (hi - lo + 1)) - 1) << lo;
        assert_eq!(self.one_mask & mask, 0, "bit forced to both zero and one");
        self.zero_mask |= mask;
        self
    }

    /// Adds an anti-mask forcing the inclusive bit range `[lo, hi]` to one.
    ///
    /// # Panics
    ///
    /// Panics if the range overlaps bits already forced to zero.
    pub fn with_one_bits(mut self, lo: u32, hi: u32) -> Self {
        assert!(lo <= hi && hi < 64, "invalid bit range {lo}-{hi}");
        let mask = ((1u64 << (hi - lo + 1)) - 1) << lo;
        assert_eq!(self.zero_mask & mask, 0, "bit forced to both zero and one");
        self.one_mask |= mask;
        self
    }

    /// The raw force-to-zero mask.
    pub const fn zero_mask(self) -> u64 {
        self.zero_mask
    }

    /// The raw force-to-one mask.
    pub const fn one_mask(self) -> u64 {
        self.one_mask
    }

    /// Applies the mask to an address.
    pub const fn apply(self, addr: Address) -> Address {
        Address::new((addr.as_u64() & !self.zero_mask) | self.one_mask)
    }

    /// Number of distinct addresses the mask leaves reachable out of an
    /// `address_bits`-wide space.
    pub fn reachable_fraction(self, address_bits: u32) -> f64 {
        let space = (1u64 << address_bits) - 1;
        let forced = ((self.zero_mask | self.one_mask) & space).count_ones();
        1.0 / (1u64 << forced) as f64
    }
}

impl fmt::Display for AddressMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "mask(zero={:#x}, one={:#x})",
            self.zero_mask, self.one_mask
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{HmcSpec, HmcVersion};

    fn gen2() -> HmcSpec {
        HmcSpec::of(HmcVersion::Gen2)
    }

    #[test]
    fn address_masks_to_header_bits() {
        // 34 in-cube bits plus the 3-bit CUB routing field.
        let a = Address::new(u64::MAX);
        assert_eq!(a.as_u64(), (1 << (34 + 3)) - 1);
    }

    #[test]
    fn single_cube_shard_is_identity() {
        let shard = ChainShard::SINGLE;
        let cap = 4u64 << 30;
        for raw in [0u64, 0x80, 0x1234_5670, (1 << 34) - 16] {
            let (cube, local) = shard.split(raw, cap);
            assert_eq!(cube.index(), 0);
            assert_eq!(local.as_u64(), raw);
            assert_eq!(shard.compose(cube, local.as_u64(), cap), raw);
        }
        assert_eq!(ChainShard::default(), ChainShard::SINGLE);
    }

    #[test]
    fn cube_first_rotates_blocks_across_cubes() {
        let shard = ChainShard::new(4, CubeInterleave::CubeFirst);
        let cap = 4u64 << 30;
        // Sixteen consecutive 128 B blocks visit the four cubes round-robin.
        for b in 0..16u64 {
            let (cube, local) = shard.split(b * 128, cap);
            assert_eq!(cube.index() as u64, b % 4);
            assert_eq!(local.as_u64(), (b / 4) * 128);
        }
        // Offsets within a block stay with the block.
        let (cube, local) = shard.split(5 * 128 + 48, cap);
        assert_eq!(cube.index(), 1);
        assert_eq!(local.as_u64(), 128 + 48);
    }

    #[test]
    fn vault_first_gives_contiguous_slices() {
        let shard = ChainShard::new(2, CubeInterleave::VaultFirst);
        let cap = 4u64 << 30;
        let (c0, a0) = shard.split(cap - 16, cap);
        let (c1, a1) = shard.split(cap + 32, cap);
        assert_eq!((c0.index(), a0.as_u64()), (0, cap - 16));
        assert_eq!((c1.index(), a1.as_u64()), (1, 32));
    }

    #[test]
    fn shard_split_compose_roundtrip() {
        let cap = 1u64 << 20;
        for cubes in [2u8, 3, 8] {
            for il in [CubeInterleave::CubeFirst, CubeInterleave::VaultFirst] {
                let shard = ChainShard::new(cubes, il);
                for raw in (0..cubes as u64 * cap).step_by((cap / 7) as usize + 16) {
                    let (cube, local) = shard.split(raw, cap);
                    assert!(cube.index() < cubes);
                    assert!(local.as_u64() < cap);
                    assert_eq!(shard.compose(cube, local.as_u64(), cap), raw);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "cubes")]
    fn shard_rejects_zero_cubes() {
        let _ = ChainShard::new(0, CubeInterleave::CubeFirst);
    }

    #[test]
    fn address_bit_extraction() {
        let a = Address::new(0b1011_0000);
        assert_eq!(a.bits(4, 4), 0b1011);
        assert_eq!(a.bits(0, 4), 0);
    }

    #[test]
    fn dram_bus_alignment() {
        assert!(Address::new(64).is_dram_bus_aligned());
        assert!(!Address::new(16).is_dram_bus_aligned());
    }

    #[test]
    fn block_size_fields() {
        assert_eq!(MaxBlockSize::B128.block_offset_bits(), 3);
        assert_eq!(MaxBlockSize::B16.block_offset_bits(), 0);
        assert_eq!(MaxBlockSize::from_bytes(64).unwrap(), MaxBlockSize::B64);
        assert!(MaxBlockSize::from_bytes(48).is_err());
    }

    #[test]
    fn default_mapping_matches_figure_3a() {
        // 128 B max block: vault field at bits 7-10, bank at 11-14.
        let map = AddressMapping::new(MaxBlockSize::B128);
        let spec = gen2();
        assert_eq!(map.vault_shift(), 7);
        assert_eq!(map.bank_shift(&spec), 11);
        assert_eq!(map.row_shift(&spec), 15);
    }

    #[test]
    fn small_block_mapping_matches_figure_3c() {
        // 32 B max block: vault at bits 5-8, bank at 9-12.
        let map = AddressMapping::new(MaxBlockSize::B32);
        let spec = gen2();
        assert_eq!(map.vault_shift(), 5);
        assert_eq!(map.bank_shift(&spec), 9);
        assert_eq!(map.row_shift(&spec), 13);
    }

    #[test]
    fn sequential_blocks_interleave_across_vaults_first() {
        let map = AddressMapping::default();
        let spec = gen2();
        // 16 consecutive 128 B blocks cover all 16 vaults in bank 0.
        let locs: Vec<Location> = (0..16)
            .map(|i| map.decode(Address::new(i * 128), &spec))
            .collect();
        for (i, loc) in locs.iter().enumerate() {
            assert_eq!(loc.vault.index() as usize, i);
            assert_eq!(loc.bank.index(), 0);
        }
        // The 17th block wraps to vault 0, bank 1.
        let wrap = map.decode(Address::new(16 * 128), &spec);
        assert_eq!(wrap.vault.index(), 0);
        assert_eq!(wrap.bank.index(), 1);
    }

    #[test]
    fn os_page_spans_two_banks_per_vault() {
        // Section II-C: a 4 KB OS page is allocated in two banks across all
        // vaults with the default 128 B mapping.
        let map = AddressMapping::default();
        let spec = gen2();
        let mut banks_by_vault = std::collections::BTreeMap::new();
        for atom in (0..4096).step_by(16) {
            let loc = map.decode(Address::new(atom), &spec);
            banks_by_vault
                .entry(loc.vault.index())
                .or_insert_with(std::collections::BTreeSet::new)
                .insert(loc.bank.index());
        }
        assert_eq!(banks_by_vault.len(), 16, "page spread over all vaults");
        for banks in banks_by_vault.values() {
            assert_eq!(banks.len(), 2, "two banks per vault");
        }
    }

    #[test]
    fn smaller_block_size_raises_page_blp() {
        // Footnote 6: reducing the max block size increases the banks a
        // single 4 KB page touches per vault.
        let map = AddressMapping::new(MaxBlockSize::B32);
        let spec = gen2();
        let mut banks = std::collections::BTreeSet::new();
        for atom in (0..4096).step_by(16) {
            let loc = map.decode(Address::new(atom), &spec);
            if loc.vault.index() == 0 {
                banks.insert(loc.bank.index());
            }
        }
        assert_eq!(banks.len(), 8, "32 B blocks give 8-bank BLP per vault");
    }

    #[test]
    fn quadrant_is_high_vault_bits() {
        let map = AddressMapping::default();
        let spec = gen2();
        for v in 0..16u64 {
            let loc = map.decode(Address::new(v << 7), &spec);
            assert_eq!(loc.vault.index() as u64, v);
            assert_eq!(loc.quadrant.index() as u64, v / 4);
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let map = AddressMapping::default();
        let spec = gen2();
        for v in 0..16 {
            for b in 0..16 {
                let addr = map.encode(VaultId::new(v), BankId::new(b), 37, &spec);
                let loc = map.decode(addr, &spec);
                assert_eq!(loc.vault.index(), v);
                assert_eq!(loc.bank.index(), b);
                assert_eq!(loc.row, 37);
            }
        }
    }

    #[test]
    fn bank_first_order_keeps_streams_in_one_vault() {
        let spec = gen2();
        let map = AddressMapping::with_order(MaxBlockSize::B128, InterleaveOrder::BankThenVault);
        assert_eq!(map.order(), InterleaveOrder::BankThenVault);
        // Bank field sits at bits 7-10, vault at 11-14.
        assert_eq!(map.bank_shift(&spec), 7);
        assert_eq!(map.vault_shift_for(&spec), 11);
        assert_eq!(map.row_shift(&spec), 15);
        // Sixteen consecutive 128 B blocks all land in vault 0, cycling
        // its banks.
        for i in 0..16u64 {
            let loc = map.decode(Address::new(i * 128), &spec);
            assert_eq!(loc.vault.index(), 0);
            assert_eq!(loc.bank.index() as u64, i);
        }
        // The 17th moves to vault 1.
        assert_eq!(map.decode(Address::new(16 * 128), &spec).vault.index(), 1);
    }

    #[test]
    fn bank_first_encode_roundtrips() {
        let spec = gen2();
        let map = AddressMapping::with_order(MaxBlockSize::B64, InterleaveOrder::BankThenVault);
        for v in [0u16, 5, 15] {
            for b in [0u16, 7, 15] {
                let a = map.encode(VaultId::new(v), BankId::new(b), 11, &spec);
                let loc = map.decode(a, &spec);
                assert_eq!((loc.vault.index(), loc.bank.index(), loc.row), (v, b, 11));
            }
        }
    }

    #[test]
    #[should_panic(expected = "default order")]
    fn vault_shift_guards_order() {
        let map = AddressMapping::with_order(MaxBlockSize::B128, InterleaveOrder::BankThenVault);
        let _ = map.vault_shift();
    }

    #[test]
    fn figure_6_one_bank_mask() {
        // Mask 7-14 forces bank 0 of vault 0 in quadrant 0.
        let map = AddressMapping::default();
        let spec = gen2();
        let mask = AddressMask::zero_bits(7, 14);
        for raw in [0u64, 0xABCDE0, 0x3_FFFF_FFFFu64] {
            let loc = map.decode(mask.apply(Address::new(raw)), &spec);
            assert_eq!(loc.vault.index(), 0);
            assert_eq!(loc.bank.index(), 0);
            assert_eq!(loc.quadrant.index(), 0);
        }
    }

    #[test]
    fn figure_6_vault_count_per_mask() {
        let map = AddressMapping::default();
        let spec = gen2();
        let cases = [
            ((3u32, 10u32), 1usize), // one vault
            ((2, 9), 2),             // two vaults
            ((1, 8), 4),             // four vaults
            ((0, 7), 8),             // eight vaults
            ((24, 31), 16),          // row-only mask: all vaults
        ];
        for ((lo, hi), expected_vaults) in cases {
            let mask = AddressMask::zero_bits(lo, hi);
            let mut vaults = std::collections::BTreeSet::new();
            for raw in 0..(1u64 << 16) {
                let loc = map.decode(mask.apply(Address::new(raw << 4)), &spec);
                vaults.insert(loc.vault.index());
            }
            assert_eq!(
                vaults.len(),
                expected_vaults,
                "mask {lo}-{hi} should reach {expected_vaults} vaults"
            );
        }
    }

    #[test]
    fn anti_mask_forces_ones() {
        let mask = AddressMask::zero_bits(0, 3).with_one_bits(7, 8);
        let a = mask.apply(Address::new(0));
        assert_eq!(a.as_u64(), 0b1_1000_0000);
    }

    #[test]
    #[should_panic(expected = "both zero and one")]
    fn conflicting_mask_panics() {
        let _ = AddressMask::zero_bits(0, 7).with_one_bits(4, 4);
    }

    #[test]
    fn reachable_fraction() {
        let mask = AddressMask::zero_bits(0, 7);
        assert!((mask.reachable_fraction(32) - 1.0 / 256.0).abs() < 1e-12);
        assert_eq!(AddressMask::NONE.reachable_fraction(32), 1.0);
    }

    #[test]
    fn display_impls() {
        let spec = gen2();
        let loc = AddressMapping::default().decode(Address::new(0x1234560), &spec);
        assert!(format!("{loc}").contains("vault"));
        assert!(format!("{}", Address::new(0x10)).starts_with("0x"));
        assert!(format!("{}", MaxBlockSize::B64).contains("64"));
        assert!(format!("{}", AddressMask::zero_bits(0, 3)).contains("0xf"));
        assert_eq!(format!("{}", CubeId::new(3)), "cube3");
        assert!(
            format!("{}", ChainShard::new(2, CubeInterleave::VaultFirst)).contains("vault-first")
        );
    }
}
