//! In-flight memory request and response records.
//!
//! These are the units the host controller, links, and vault controllers
//! pass around. A [`MemoryRequest`] is identified by a globally unique
//! [`RequestId`] (for statistics) and a per-port [`Tag`] (the GUPS read tag
//! pool has 64 entries per port, so tags are small integers that get
//! recycled when a response retires).

use std::fmt;

use crate::address::{Address, CubeId};
use crate::packet::{OpKind, RequestSize, TransactionSizes};
use crate::tenant::TenantTag;
use crate::time::Time;

/// Identifies one of the GUPS ports on the FPGA (nine usable ports).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PortId(u8);

impl PortId {
    /// Creates a port id.
    pub const fn new(index: u8) -> Self {
        PortId(index)
    }

    /// The port index.
    pub const fn index(self) -> u8 {
        self.0
    }
}

impl fmt::Display for PortId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "port{}", self.0)
    }
}

/// A per-port read tag, drawn from the port's tag pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Tag(u16);

impl Tag {
    /// Creates a tag.
    pub const fn new(value: u16) -> Self {
        Tag(value)
    }

    /// The tag value.
    pub const fn value(self) -> u16 {
        self.0
    }
}

impl fmt::Display for Tag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tag{}", self.0)
    }
}

/// A globally unique, monotonically increasing request identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct RequestId(u64);

impl RequestId {
    /// Creates a request id from a raw sequence number.
    pub const fn new(seq: u64) -> Self {
        RequestId(seq)
    }

    /// The raw sequence number.
    pub const fn value(self) -> u64 {
        self.0
    }

    /// The next id in sequence.
    pub const fn next(self) -> RequestId {
        RequestId(self.0 + 1)
    }
}

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "req#{}", self.0)
    }
}

/// One memory operation travelling from a GUPS port toward the cube.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryRequest {
    /// Globally unique identifier.
    pub id: RequestId,
    /// Issuing port.
    pub port: PortId,
    /// Per-port tag (reads hold a tag pool entry until the response
    /// arrives).
    pub tag: Tag,
    /// Read or write.
    pub op: OpKind,
    /// Payload size.
    pub size: RequestSize,
    /// Target cube — the CUB routing field. Cube 0 in single-cube systems;
    /// in a chain, intermediate cubes forward mismatching requests toward
    /// this cube over their pass-through links.
    pub cube: CubeId,
    /// Target address within the owning cube (after cube sharding and
    /// mask/anti-mask application).
    pub addr: Address,
    /// Instant the port submitted the request to the HMC controller —
    /// the paper's latency measurements start here.
    pub issued_at: Time,
    /// Generator token standing in for the payload contents: writes carry
    /// the token into the cube's backing store, reads carry zero. Used by
    /// the stream-GUPS data-integrity check.
    pub data_token: u64,
    /// Owning tenant stream and priority class. [`TenantTag::NONE`] for
    /// closed-loop (GUPS) traffic; set by the open-loop arrival frontend.
    pub tenant: TenantTag,
}

impl MemoryRequest {
    /// Table II packet sizes for this request.
    pub fn sizes(&self) -> TransactionSizes {
        TransactionSizes::of(self.op, self.size)
    }

    /// The trace identifier the observability layer files lifecycle spans
    /// under — the globally unique request sequence number.
    pub const fn trace_id(&self) -> crate::trace::TraceId {
        self.id.value()
    }
}

impl fmt::Display for MemoryRequest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} {} {} @ {}",
            self.id, self.port, self.op, self.size, self.addr
        )
    }
}

/// The response to a [`MemoryRequest`], observed back at the issuing port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryResponse {
    /// Identifier of the request this answers.
    pub id: RequestId,
    /// Issuing port the response returns to.
    pub port: PortId,
    /// Tag being released back to the pool.
    pub tag: Tag,
    /// Operation type.
    pub op: OpKind,
    /// Payload size of the original request.
    pub size: RequestSize,
    /// Cube that served the request (echoed CUB field, used to route the
    /// response back through the chain and by write-back address reuse).
    pub cube: CubeId,
    /// Address of the original request (real responses are tag-matched;
    /// the host controller keeps the per-tag address table this models).
    pub addr: Address,
    /// Instant the original request was submitted.
    pub issued_at: Time,
    /// Instant the response reached the port's monitoring unit.
    pub completed_at: Time,
    /// For reads, the token read back from the backing store (zero for
    /// never-written locations); for writes, zero.
    pub data_token: u64,
    /// Tenant tag echoed from the original request, so per-tenant SLO
    /// accounting happens at the completion site without a lookup.
    pub tenant: TenantTag,
}

impl MemoryResponse {
    /// Round-trip latency as the GUPS monitoring unit measures it.
    pub fn latency(&self) -> crate::time::TimeDelta {
        self.completed_at.since(self.issued_at)
    }

    /// The trace identifier of the request this response answers.
    pub const fn trace_id(&self) -> crate::trace::TraceId {
        self.id.value()
    }
}

impl fmt::Display for MemoryResponse {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} done in {}", self.id, self.latency())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::TimeDelta;

    fn request() -> MemoryRequest {
        MemoryRequest {
            id: RequestId::new(7),
            port: PortId::new(2),
            tag: Tag::new(5),
            op: OpKind::Read,
            size: RequestSize::new(64).unwrap(),
            cube: CubeId::new(0),
            addr: Address::new(0x80),
            issued_at: Time::from_ps(1_000),
            data_token: 0,
            tenant: TenantTag::NONE,
        }
    }

    #[test]
    fn request_sizes_follow_table_2() {
        let r = request();
        assert_eq!(r.sizes().request_flits().count(), 1);
        assert_eq!(r.sizes().response_flits().count(), 5);
    }

    #[test]
    fn response_latency() {
        let r = request();
        let resp = MemoryResponse {
            id: r.id,
            port: r.port,
            tag: r.tag,
            op: r.op,
            size: r.size,
            cube: r.cube,
            addr: r.addr,
            issued_at: r.issued_at,
            completed_at: r.issued_at + TimeDelta::from_ns(700),
            data_token: 0,
            tenant: TenantTag::NONE,
        };
        assert_eq!(resp.latency().as_ns_f64(), 700.0);
    }

    #[test]
    fn request_id_sequencing() {
        let id = RequestId::new(0);
        assert_eq!(id.next().value(), 1);
        assert!(id < id.next());
    }

    #[test]
    fn display_impls() {
        let r = request();
        assert!(format!("{r}").contains("req#7"));
        assert!(format!("{}", PortId::new(3)).contains("3"));
        assert!(format!("{}", Tag::new(9)).contains("9"));
        let resp = MemoryResponse {
            id: r.id,
            port: r.port,
            tag: r.tag,
            op: r.op,
            size: r.size,
            cube: r.cube,
            addr: r.addr,
            issued_at: r.issued_at,
            completed_at: r.issued_at + TimeDelta::from_ns(1),
            data_token: 0,
            tenant: TenantTag::NONE,
        };
        assert!(format!("{resp}").contains("done"));
    }
}
