//! The workspace-wide error type.

use std::error::Error;
use std::fmt;

/// Errors raised while configuring or driving the modelled HMC system.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum HmcError {
    /// A request payload size was not a multiple of 16 in `16..=128`.
    InvalidRequestSize(u64),
    /// A maximum block size was not one of 16/32/64/128 B.
    InvalidBlockSize(u64),
    /// A link count other than 2 or 4 was requested.
    InvalidLinkCount(u32),
    /// A port index outside the available GUPS ports was referenced.
    InvalidPort(u8),
    /// An access-pattern parameter was out of range for the device
    /// geometry (e.g. more banks than a vault has).
    InvalidPattern(String),
    /// The device shut down due to exceeding its thermal limit; the
    /// payload is the junction temperature in Celsius at failure.
    ThermalShutdown(f64),
    /// A simulation was configured inconsistently.
    InvalidConfig(String),
}

impl fmt::Display for HmcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HmcError::InvalidRequestSize(b) => {
                write!(
                    f,
                    "invalid request size {b} B (expected 16..=128 in 16 B steps)"
                )
            }
            HmcError::InvalidBlockSize(b) => {
                write!(
                    f,
                    "invalid max block size {b} B (expected 16, 32, 64, or 128)"
                )
            }
            HmcError::InvalidLinkCount(n) => {
                write!(f, "invalid link count {n} (HMC supports 2 or 4 links)")
            }
            HmcError::InvalidPort(p) => write!(f, "port {p} does not exist"),
            HmcError::InvalidPattern(msg) => write!(f, "invalid access pattern: {msg}"),
            HmcError::ThermalShutdown(t) => {
                write!(f, "thermal shutdown at {t:.1} C junction temperature")
            }
            HmcError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl Error for HmcError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_lowercase_and_informative() {
        let cases: Vec<HmcError> = vec![
            HmcError::InvalidRequestSize(24),
            HmcError::InvalidBlockSize(48),
            HmcError::InvalidLinkCount(3),
            HmcError::InvalidPort(12),
            HmcError::InvalidPattern("32 banks".into()),
            HmcError::ThermalShutdown(86.2),
            HmcError::InvalidConfig("zero duration".into()),
        ];
        for e in cases {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
            assert!(!msg.ends_with('.'));
        }
    }

    #[test]
    fn error_trait_object_compatible() {
        fn takes_err(_: Box<dyn Error + Send + Sync>) {}
        takes_err(Box::new(HmcError::InvalidPort(1)));
    }

    #[test]
    fn thermal_shutdown_carries_temperature() {
        if let HmcError::ThermalShutdown(t) = HmcError::ThermalShutdown(85.5) {
            assert!((t - 85.5).abs() < 1e-12);
        } else {
            unreachable!();
        }
    }
}
