//! Structural specifications of HMC device generations (Table I of the
//! paper) and external-link configurations (Equation 2).

use std::fmt;

use crate::error::HmcError;
use crate::time::TimeDelta;

/// The HMC generations the paper tabulates in Table I.
///
/// The characterized hardware is a 4 GB HMC 1.1 (Gen2) device; Gen1 and
/// HMC 2.0 specs are included so the model can be re-geometried.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum HmcVersion {
    /// HMC 1.0 (Gen1): 0.5 GB, 4 DRAM layers, 128 banks.
    Gen1,
    /// HMC 1.1 (Gen2): the 4 GB, 8-layer, 256-bank device under test.
    #[default]
    Gen2,
    /// HMC 2.0: 32 vaults, up to 512 banks; hardware unavailable at the
    /// time of the paper.
    Hmc2,
    /// A projected Gen3 geometry: the HMC 2.0 stack doubled again to 64
    /// vaults, paired with the four full-width-link arrangement
    /// ([`LinkConfig::gen3`]). Never built — the extrapolation point the
    /// paper's conclusion gestures at ("generic to the class of
    /// 3D-memory systems").
    Gen3,
}

impl fmt::Display for HmcVersion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            HmcVersion::Gen1 => "HMC 1.0 (Gen1)",
            HmcVersion::Gen2 => "HMC 1.1 (Gen2)",
            HmcVersion::Hmc2 => "HMC 2.0",
            HmcVersion::Gen3 => "HMC Gen3 (projected)",
        };
        f.write_str(s)
    }
}

/// Structural properties of one HMC device (one column of Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HmcSpec {
    version: HmcVersion,
    /// Total capacity in bytes.
    capacity_bytes: u64,
    /// Number of stacked DRAM layers.
    dram_layers: u32,
    /// Capacity of one DRAM layer in bits.
    layer_bits: u64,
    /// Number of quadrants (always 4).
    quadrants: u32,
    /// Number of vaults.
    vaults: u32,
    /// Banks per vault.
    banks_per_vault: u32,
}

impl HmcSpec {
    /// The spec for a given generation, using the configuration the paper
    /// reports for the four-link arrangement (and the 4 GB capacity point
    /// where a generation offers two).
    pub fn of(version: HmcVersion) -> Self {
        match version {
            HmcVersion::Gen1 => HmcSpec {
                version,
                capacity_bytes: 512 << 20,
                dram_layers: 4,
                layer_bits: 1 << 30,
                quadrants: 4,
                vaults: 16,
                banks_per_vault: 8,
            },
            HmcVersion::Gen2 => HmcSpec {
                version,
                capacity_bytes: 4 << 30,
                dram_layers: 8,
                layer_bits: 4 << 30,
                quadrants: 4,
                vaults: 16,
                banks_per_vault: 16,
            },
            HmcVersion::Hmc2 => HmcSpec {
                version,
                capacity_bytes: 8 << 30,
                dram_layers: 8,
                layer_bits: 4 << 30,
                quadrants: 4,
                vaults: 32,
                banks_per_vault: 16,
            },
            HmcVersion::Gen3 => HmcSpec {
                version,
                capacity_bytes: 16 << 30,
                dram_layers: 16,
                layer_bits: 8 << 30,
                quadrants: 4,
                vaults: 64,
                banks_per_vault: 16,
            },
        }
    }

    /// The generation this spec describes.
    pub const fn version(&self) -> HmcVersion {
        self.version
    }

    /// Total device capacity in bytes.
    pub const fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }

    /// Number of stacked DRAM layers.
    pub const fn dram_layers(&self) -> u32 {
        self.dram_layers
    }

    /// Number of quadrants.
    pub const fn num_quadrants(&self) -> u32 {
        self.quadrants
    }

    /// Number of vaults.
    pub const fn num_vaults(&self) -> u32 {
        self.vaults
    }

    /// Vaults per quadrant.
    pub const fn vaults_per_quadrant(&self) -> u32 {
        self.vaults / self.quadrants
    }

    /// Banks per vault.
    pub const fn banks_per_vault(&self) -> u32 {
        self.banks_per_vault
    }

    /// Total banks in the device — Equation 1 of the paper
    /// (`layers × partitions/layer × banks/partition`), which equals
    /// `vaults × banks_per_vault`.
    pub const fn total_banks(&self) -> u32 {
        self.vaults * self.banks_per_vault
    }

    /// DRAM partitions per layer (one per vault).
    pub const fn partitions_per_layer(&self) -> u32 {
        self.vaults
    }

    /// Size of one bank in bytes.
    pub const fn bank_bytes(&self) -> u64 {
        self.capacity_bytes / self.total_banks() as u64
    }

    /// Size of one DRAM partition (a vault's share of one layer) in bytes.
    pub const fn partition_bytes(&self) -> u64 {
        self.capacity_bytes / (self.dram_layers * self.partitions_per_layer()) as u64
    }

    /// Address bits needed to select a vault.
    pub const fn vault_bits(&self) -> u32 {
        self.vaults.trailing_zeros()
    }

    /// Address bits needed to select a bank within a vault.
    pub const fn bank_bits(&self) -> u32 {
        self.banks_per_vault.trailing_zeros()
    }

    /// Address bits needed to select a quadrant.
    pub const fn quadrant_bits(&self) -> u32 {
        self.quadrants.trailing_zeros()
    }

    /// The closed-page DRAM timing floor of this device — the protocol
    /// minimums (Section II-C) a legal bank-access schedule can never go
    /// below. The device model's calibrated `DramTiming` defaults equal
    /// these values; the runtime sanitizer checks every scheduled access
    /// against them, so a corrupted or ablated timing config is caught
    /// rather than silently producing illegal schedules.
    pub const fn timing_floor(&self) -> DramTimingFloor {
        // 3D-stacked DRAM runs at a lower internal frequency than
        // contemporary DDR (footnote 13 of the paper); the floor is the
        // paper-calibrated Gen2 timing, shared by all generations here.
        DramTimingFloor {
            t_rcd: TimeDelta::from_ns(25),
            t_cl: TimeDelta::from_ns(25),
            t_rp: TimeDelta::from_ns(38),
            t_ras: TimeDelta::from_ns(90),
            t_wr: TimeDelta::from_ns(30),
            t_ccd: TimeDelta::from_ns(4),
        }
    }
}

/// Minimum legal closed-page DRAM timing parameters of a device — the
/// reference values the protocol sanitizer validates scheduled bank
/// accesses against (ACT→RD/WR→PRE ordering and spacing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DramTimingFloor {
    /// Minimum activate-to-CAS delay.
    pub t_rcd: TimeDelta,
    /// Minimum CAS latency.
    pub t_cl: TimeDelta,
    /// Minimum precharge time.
    pub t_rp: TimeDelta,
    /// Minimum row-active time.
    pub t_ras: TimeDelta,
    /// Minimum write recovery time.
    pub t_wr: TimeDelta,
    /// Minimum column-command spacing (one TSV bus beat).
    pub t_ccd: TimeDelta,
}

impl DramTimingFloor {
    /// Minimum activate-to-activate spacing on one bank (`tRAS + tRP`).
    pub const fn t_rc(&self) -> TimeDelta {
        TimeDelta::from_ps(self.t_ras.as_ps() + self.t_rp.as_ps())
    }

    /// Minimum activate-to-data delay of a closed-page access
    /// (`tRCD + tCL`).
    pub const fn read_access(&self) -> TimeDelta {
        TimeDelta::from_ps(self.t_rcd.as_ps() + self.t_cl.as_ps())
    }

    /// Minimum full cycle of a closed-page write (`tRCD + tWR + tRP`).
    pub const fn write_cycle(&self) -> TimeDelta {
        TimeDelta::from_ps(self.t_rcd.as_ps() + self.t_wr.as_ps() + self.t_rp.as_ps())
    }
}

impl Default for HmcSpec {
    fn default() -> Self {
        HmcSpec::of(HmcVersion::Gen2)
    }
}

impl fmt::Display for HmcSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} GB, {} layers, {} vaults x {} banks",
            self.version,
            self.capacity_bytes >> 30,
            self.dram_layers,
            self.vaults,
            self.banks_per_vault
        )
    }
}

/// Lane count of one external link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LinkWidth {
    /// Half-width: 8 lanes per direction (the AC-510 configuration).
    #[default]
    Half,
    /// Full-width: 16 lanes per direction.
    Full,
}

impl LinkWidth {
    /// Lanes per direction.
    pub const fn lanes(self) -> u32 {
        match self {
            LinkWidth::Half => 8,
            LinkWidth::Full => 16,
        }
    }
}

/// Configurable per-lane signalling rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LinkSpeed {
    /// 10 Gb/s per lane.
    G10,
    /// 12.5 Gb/s per lane.
    G12_5,
    /// 15 Gb/s per lane (the AC-510 configuration).
    #[default]
    G15,
}

impl LinkSpeed {
    /// Signalling rate in bits per second per lane.
    pub const fn bits_per_second(self) -> u64 {
        match self {
            LinkSpeed::G10 => 10_000_000_000,
            LinkSpeed::G12_5 => 12_500_000_000,
            LinkSpeed::G15 => 15_000_000_000,
        }
    }
}

/// An external link arrangement: how many SerDes links, their width, and
/// their speed.
///
/// ```
/// use hmc_types::spec::LinkConfig;
///
/// // Equation 2 of the paper: two half-width links at 15 Gb/s give a
/// // bidirectional peak of 60 GB/s.
/// let links = LinkConfig::ac510();
/// assert_eq!(links.peak_bandwidth_bytes_per_sec(), 60_000_000_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LinkConfig {
    num_links: u32,
    width: LinkWidth,
    speed: LinkSpeed,
}

impl LinkConfig {
    /// Creates a link configuration.
    ///
    /// # Errors
    ///
    /// Returns [`HmcError::InvalidLinkCount`] unless `num_links` is 2 or 4.
    pub fn new(num_links: u32, width: LinkWidth, speed: LinkSpeed) -> Result<Self, HmcError> {
        if num_links != 2 && num_links != 4 {
            return Err(HmcError::InvalidLinkCount(num_links));
        }
        Ok(LinkConfig {
            num_links,
            width,
            speed,
        })
    }

    /// The AC-510 accelerator configuration: two half-width links at
    /// 15 Gb/s.
    pub fn ac510() -> Self {
        LinkConfig {
            num_links: 2,
            width: LinkWidth::Half,
            speed: LinkSpeed::G15,
        }
    }

    /// The projected Gen3 link arrangement: four full-width links at
    /// 15 Gb/s — a 240 GB/s bidirectional peak, four times the AC-510
    /// board's.
    pub fn gen3() -> Self {
        LinkConfig {
            num_links: 4,
            width: LinkWidth::Full,
            speed: LinkSpeed::G15,
        }
    }

    /// Number of links.
    pub const fn num_links(&self) -> u32 {
        self.num_links
    }

    /// Per-link width.
    pub const fn width(&self) -> LinkWidth {
        self.width
    }

    /// Per-lane speed.
    pub const fn speed(&self) -> LinkSpeed {
        self.speed
    }

    /// Raw bandwidth of one link in one direction, in bytes per second.
    pub const fn link_bytes_per_sec(&self) -> u64 {
        self.width.lanes() as u64 * self.speed.bits_per_second() / 8
    }

    /// Equation 2: aggregate peak bandwidth counting both directions of
    /// every link, in bytes per second.
    pub const fn peak_bandwidth_bytes_per_sec(&self) -> u64 {
        2 * self.num_links as u64 * self.link_bytes_per_sec()
    }

    /// Aggregate raw bandwidth in one direction across all links.
    pub const fn directional_bandwidth_bytes_per_sec(&self) -> u64 {
        self.num_links as u64 * self.link_bytes_per_sec()
    }

    /// Time to serialize `bytes` onto one link in one direction, in
    /// picoseconds.
    pub const fn serialize_ps(&self, bytes: u64) -> u64 {
        // ps = bytes * 8 bits / (lanes * bps) * 1e12
        bytes * 8 * 1_000_000_000_000 / (self.width.lanes() as u64 * self.speed.bits_per_second())
    }
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig::ac510()
    }
}

impl fmt::Display for LinkConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} x {}-lane @ {} Gb/s",
            self.num_links,
            self.width.lanes(),
            self.speed.bits_per_second() / 1_000_000_000
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_1_gen1() {
        let s = HmcSpec::of(HmcVersion::Gen1);
        assert_eq!(s.capacity_bytes(), 512 << 20);
        assert_eq!(s.dram_layers(), 4);
        assert_eq!(s.num_quadrants(), 4);
        assert_eq!(s.num_vaults(), 16);
        assert_eq!(s.vaults_per_quadrant(), 4);
        assert_eq!(s.total_banks(), 128);
        assert_eq!(s.banks_per_vault(), 8);
        assert_eq!(s.bank_bytes(), 4 << 20);
        assert_eq!(s.partition_bytes(), 8 << 20);
    }

    #[test]
    fn table_1_gen2() {
        let s = HmcSpec::of(HmcVersion::Gen2);
        assert_eq!(s.capacity_bytes(), 4 << 30);
        assert_eq!(s.dram_layers(), 8);
        assert_eq!(s.num_vaults(), 16);
        assert_eq!(s.vaults_per_quadrant(), 4);
        // Equation 1: 8 layers x 16 partitions x 2 banks = 256 banks.
        assert_eq!(s.total_banks(), 256);
        assert_eq!(s.banks_per_vault(), 16);
        assert_eq!(s.bank_bytes(), 16 << 20);
        assert_eq!(s.partition_bytes(), 32 << 20);
    }

    #[test]
    fn table_1_hmc2() {
        let s = HmcSpec::of(HmcVersion::Hmc2);
        assert_eq!(s.num_vaults(), 32);
        assert_eq!(s.vaults_per_quadrant(), 8);
        assert_eq!(s.total_banks(), 512);
        assert_eq!(s.bank_bytes(), 16 << 20);
    }

    #[test]
    fn gen3_projection() {
        let s = HmcSpec::of(HmcVersion::Gen3);
        assert_eq!(s.num_vaults(), 64);
        assert_eq!(s.vault_bits(), 6);
        assert_eq!(s.total_banks(), 1024);
        assert_eq!(s.capacity_bytes(), 16 << 30);
        let l = LinkConfig::gen3();
        assert_eq!(l.num_links(), 4);
        assert_eq!(l.width().lanes(), 16);
        // 4 x 16 lanes x 15 Gb/s x 2 directions = 240 GB/s.
        assert_eq!(l.peak_bandwidth_bytes_per_sec(), 240_000_000_000);
        assert!(format!("{}", HmcVersion::Gen3).contains("Gen3"));
    }

    #[test]
    fn field_widths() {
        let s = HmcSpec::of(HmcVersion::Gen2);
        assert_eq!(s.vault_bits(), 4);
        assert_eq!(s.bank_bits(), 4);
        assert_eq!(s.quadrant_bits(), 2);
        let g1 = HmcSpec::of(HmcVersion::Gen1);
        assert_eq!(g1.bank_bits(), 3);
    }

    #[test]
    fn timing_floor_composite_minimums() {
        let f = HmcSpec::default().timing_floor();
        assert_eq!(f.t_rc().as_ps(), 128_000, "tRC = tRAS + tRP = 128 ns");
        assert_eq!(f.read_access().as_ps(), 50_000, "tRCD + tCL = 50 ns");
        assert_eq!(f.write_cycle().as_ps(), 93_000, "tRCD + tWR + tRP");
        assert!(f.t_ccd.as_ps() > 0);
        // All generations share the paper-calibrated floor.
        assert_eq!(HmcSpec::of(HmcVersion::Gen1).timing_floor(), f);
        assert_eq!(HmcSpec::of(HmcVersion::Hmc2).timing_floor(), f);
    }

    #[test]
    fn equation_2_peak_bandwidth() {
        // 2 links x 8 lanes x 15 Gb/s x 2 (full duplex) = 480 Gb/s = 60 GB/s.
        let l = LinkConfig::ac510();
        assert_eq!(l.peak_bandwidth_bytes_per_sec(), 60_000_000_000);
        assert_eq!(l.directional_bandwidth_bytes_per_sec(), 30_000_000_000);
        assert_eq!(l.link_bytes_per_sec(), 15_000_000_000);
    }

    #[test]
    fn four_full_links() {
        let l = LinkConfig::new(4, LinkWidth::Full, LinkSpeed::G15).unwrap();
        // 4 x 16 x 15 x 2 = 1920 Gb/s = 240 GB/s.
        assert_eq!(l.peak_bandwidth_bytes_per_sec(), 240_000_000_000);
    }

    #[test]
    fn invalid_link_count_rejected() {
        assert!(matches!(
            LinkConfig::new(3, LinkWidth::Half, LinkSpeed::G10),
            Err(HmcError::InvalidLinkCount(3))
        ));
    }

    #[test]
    fn serialization_time() {
        let l = LinkConfig::ac510();
        // One 16 B flit over 8 lanes at 15 Gb/s: 128 bits / 120 Gb/s
        // = 1066 ps (rounded down).
        assert_eq!(l.serialize_ps(16), 1066);
        // A 9-flit read response (144 B) takes 9x as long.
        assert_eq!(l.serialize_ps(144), 9600);
    }

    #[test]
    fn display_impls() {
        assert!(format!("{}", HmcSpec::default()).contains("HMC 1.1"));
        assert!(format!("{}", LinkConfig::ac510()).contains("8-lane"));
        assert!(format!("{}", HmcVersion::Hmc2).contains("2.0"));
    }
}
