//! The request-lifecycle stage vocabulary of the tracing subsystem.
//!
//! A request's round trip decomposes into consecutive, non-overlapping
//! stages whose spans telescope exactly to `completed_at - issued_at`:
//! each stage ends where the next begins, so summing per-stage histograms
//! over a fully drained read stream reproduces the end-to-end latency to
//! the picosecond. The stage boundaries correspond to the observable
//! hand-off instants of the model (event timestamps), mirroring the
//! paper's Figure 14 deconstruction.
//!
//! The generic tracer in `sim_engine::trace` is policy-free and indexes
//! stages by `usize`; this module is the one place the domain meaning of
//! those indices is defined.

use std::fmt;

/// One stage of a request's lifecycle, in round-trip order.
///
/// Host-side TX stages run from issue to the last flit crossing the wire;
/// device-side stages run from wire arrival to the response leaving over
/// SerDes; the final RX stage covers the host's receive pipeline. The
/// `WriteStall`/`WriteDrain` stages only appear on posted writes — read
/// paths record zero samples there, which is why [`Stage::read_path`]
/// excludes them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(usize)]
pub enum Stage {
    /// Port issue to FlitsToParallel completion (fixed 10 cycles).
    TxFlits = 0,
    /// Waiting in the transmit node's queue (arbitration + backlog).
    TxQueue = 1,
    /// The fixed TX pipeline: arbiter, AddSeq, FlowControl, AddCRC,
    /// SerDes conversion, and the transmit stage.
    TxPipe = 2,
    /// Request-packet serialization onto the wire.
    LinkTx = 3,
    /// Device link ingress: queueing plus deserialization/processing.
    LinkIngress = 4,
    /// Posted write waiting for a write-buffer slot (writes only).
    WriteStall = 5,
    /// Posted write passing through the rate-limited drain (writes only).
    WriteDrain = 6,
    /// Waiting at the link head for a free vault input-FIFO slot.
    VaultStall = 7,
    /// Crossbar hop from link to vault (ingress direction).
    XbarReq = 8,
    /// Queued inside the vault (input FIFO + bank queue) until a bank
    /// starts the access.
    VaultQueue = 9,
    /// The DRAM access itself: ACT/CAS timing plus TSV bus beats.
    Dram = 10,
    /// Crossbar hop from vault back to the link (egress direction).
    XbarResp = 11,
    /// Device link egress: response queueing plus serialization.
    LinkEgress = 12,
    /// Host RX pipeline from wire exit to the port's monitoring unit.
    Rx = 13,
    /// Link-layer retry: re-serialization attempts after a CRC-failed
    /// transfer, in either direction. Zero samples on clean links.
    LinkRetry = 14,
    /// Cube-to-cube hop traversal in a multi-cube chain: pass-through
    /// queueing, hop-link serialization, and head-of-line parking at the
    /// receiving cube, in either direction. Zero samples on single-cube
    /// runs, where no request ever crosses a hop link.
    HopLink = 15,
}

impl Stage {
    /// Number of stages (the length every per-stage histogram vector
    /// must have).
    pub const COUNT: usize = 16;

    /// Every stage, in round-trip order.
    pub const ALL: [Stage; Stage::COUNT] = [
        Stage::TxFlits,
        Stage::TxQueue,
        Stage::TxPipe,
        Stage::LinkTx,
        Stage::LinkIngress,
        Stage::WriteStall,
        Stage::WriteDrain,
        Stage::VaultStall,
        Stage::XbarReq,
        Stage::VaultQueue,
        Stage::Dram,
        Stage::XbarResp,
        Stage::LinkEgress,
        Stage::Rx,
        Stage::LinkRetry,
        Stage::HopLink,
    ];

    /// Stage display names, indexed by [`Stage::index`]. This is the
    /// vocabulary handed to the engine's generic tracer.
    pub const NAMES: [&'static str; Stage::COUNT] = [
        "tx_flits",
        "tx_queue",
        "tx_pipe",
        "link_tx",
        "link_ingress",
        "write_stall",
        "write_drain",
        "vault_stall",
        "xbar_req",
        "vault_queue",
        "dram",
        "xbar_resp",
        "link_egress",
        "rx",
        "link_retry",
        "hop_link",
    ];

    /// The stages a read traverses; their spans telescope exactly to the
    /// end-to-end latency of a read.
    pub const fn read_path() -> [Stage; 12] {
        [
            Stage::TxFlits,
            Stage::TxQueue,
            Stage::TxPipe,
            Stage::LinkTx,
            Stage::LinkIngress,
            Stage::VaultStall,
            Stage::XbarReq,
            Stage::VaultQueue,
            Stage::Dram,
            Stage::XbarResp,
            Stage::LinkEgress,
            Stage::Rx,
        ]
    }

    /// The stage's histogram index.
    pub const fn index(self) -> usize {
        self as usize
    }

    /// The stage's display name.
    pub const fn name(self) -> &'static str {
        Stage::NAMES[self as usize]
    }

    /// True for the posted-write-only stages.
    pub const fn write_only(self) -> bool {
        matches!(self, Stage::WriteStall | Stage::WriteDrain)
    }

    /// True for stages that only appear under injected faults; clean runs
    /// record zero samples there, which is why [`Stage::read_path`]
    /// excludes them.
    pub const fn fault_only(self) -> bool {
        matches!(self, Stage::LinkRetry)
    }

    /// True for stages that only appear on multi-cube chain runs; a
    /// single-cube system never routes a request over a hop link, so
    /// [`Stage::read_path`] excludes them.
    pub const fn chain_only(self) -> bool {
        matches!(self, Stage::HopLink)
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A trace identifier: the globally unique [`RequestId`] sequence number
/// of the request being traced.
///
/// [`RequestId`]: crate::request::RequestId
pub type TraceId = u64;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_match_positions() {
        for (i, s) in Stage::ALL.iter().enumerate() {
            assert_eq!(s.index(), i);
            assert_eq!(s.name(), Stage::NAMES[i]);
        }
        assert_eq!(Stage::ALL.len(), Stage::COUNT);
        assert_eq!(Stage::NAMES.len(), Stage::COUNT);
    }

    #[test]
    fn read_path_skips_write_stages() {
        let rp = Stage::read_path();
        assert!(rp.iter().all(|s| !s.write_only()));
        assert!(rp.iter().all(|s| !s.fault_only()));
        assert!(rp.iter().all(|s| !s.chain_only()));
        assert_eq!(rp.len(), Stage::COUNT - 4);
        // Round-trip order is preserved.
        for w in rp.windows(2) {
            assert!(w[0].index() < w[1].index());
        }
    }

    #[test]
    fn display_uses_names() {
        assert_eq!(Stage::Dram.to_string(), "dram");
        assert_eq!(Stage::TxFlits.to_string(), "tx_flits");
        assert!(Stage::WriteStall.write_only());
        assert!(!Stage::Dram.write_only());
    }
}
