//! Core value types shared across the `hmcsim` workspace.
//!
//! This crate defines the vocabulary of the Hybrid Memory Cube (HMC)
//! characterization laboratory:
//!
//! * [`time`] — picosecond-resolution simulation time ([`Time`], [`TimeDelta`])
//!   and clock-domain helpers ([`Frequency`]).
//! * [`address`] — the 34-bit HMC request address space, the low-order
//!   interleaved [`AddressMapping`] of Figure 3 of the paper, and the GUPS
//!   mask/anti-mask registers used to target quadrants, vaults, and banks.
//! * [`packet`] — flit-granular packet sizes for each transaction type
//!   (Table II of the paper) and request kinds (`ro`/`wo`/`rw`).
//! * [`spec`] — structural properties of HMC 1.0 / 1.1 / 2.0 devices
//!   (Table I) and the link peak-bandwidth law (Equation 2).
//! * [`request`] — in-flight memory request/response records and identifiers.
//! * [`trace`] — the request-lifecycle [`Stage`] vocabulary the
//!   observability layer attributes latency to.
//!
//! # Example
//!
//! ```
//! use hmc_types::spec::{HmcSpec, HmcVersion};
//! use hmc_types::address::{Address, AddressMapping, MaxBlockSize};
//!
//! let spec = HmcSpec::of(HmcVersion::Gen2);
//! assert_eq!(spec.total_banks(), 256);
//!
//! let mapping = AddressMapping::new(MaxBlockSize::B128);
//! let location = mapping.decode(Address::new(0x180), &spec);
//! assert_eq!(location.vault.index(), 3);
//! ```

pub mod address;
pub mod error;
pub mod packet;
pub mod request;
pub mod spec;
pub mod tenant;
pub mod time;
pub mod trace;

pub use address::{
    Address, AddressMapping, AddressMask, ChainShard, CubeId, CubeInterleave, InterleaveOrder,
    Location, MaxBlockSize, MAX_CUBES,
};
pub use error::HmcError;
pub use packet::{FlitCount, RequestKind, RequestSize, TransactionSizes, FLIT_BYTES};
pub use request::{MemoryRequest, MemoryResponse, PortId, RequestId, Tag};
pub use spec::{DramTimingFloor, HmcSpec, HmcVersion, LinkConfig, LinkSpeed, LinkWidth};
pub use tenant::{Priority, TenantId, TenantTag};
pub use time::{Frequency, Time, TimeDelta};
pub use trace::{Stage, TraceId};
