//! Multi-tenant vocabulary for open-loop production traffic.
//!
//! The open-loop arrival frontend folds thousands-to-millions of logical
//! clients into a handful of per-tenant streams. Each request carries a
//! [`TenantTag`] — a tenant identifier plus a [`Priority`] class — from
//! the arrival process through the admission queue, the packet lifecycle,
//! and back out on the response, so shed policies, SLO conformance
//! accounting, and per-tenant gauges can all key off the same tag.
//!
//! Closed-loop workloads (the GUPS ports) issue requests tagged
//! [`TenantTag::NONE`]; the tag is plumbed but inert for them.

use std::fmt;

/// Identifies one tenant stream of the open-loop arrival frontend.
///
/// Tenant 0 is reserved for untagged (closed-loop) traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TenantId(u16);

impl TenantId {
    /// Creates a tenant id.
    pub const fn new(index: u16) -> Self {
        TenantId(index)
    }

    /// The tenant index.
    pub const fn index(self) -> u16 {
        self.0
    }
}

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tenant{}", self.0)
    }
}

/// Priority class of a tenant stream, from most to least protected.
///
/// The priority-aware shed policy drops [`Priority::Batch`] work before
/// [`Priority::Standard`], and [`Priority::Standard`] before
/// [`Priority::Critical`]. Ordering: `Critical < Standard < Batch`, so
/// "larger = shed first" comparisons read naturally.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Priority {
    /// Latency-critical serving traffic; shed last.
    Critical,
    /// Ordinary production traffic.
    #[default]
    Standard,
    /// Best-effort background work; shed first.
    Batch,
}

impl Priority {
    /// Every class, in shed-last-to-shed-first order.
    pub const ALL: [Priority; 3] = [Priority::Critical, Priority::Standard, Priority::Batch];

    /// Short lowercase label used in tables and JSON.
    pub const fn label(self) -> &'static str {
        match self {
            Priority::Critical => "critical",
            Priority::Standard => "standard",
            Priority::Batch => "batch",
        }
    }
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The tenant annotation carried by every request and response.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TenantTag {
    /// Owning tenant stream.
    pub tenant: TenantId,
    /// Priority class inherited from the tenant's spec.
    pub priority: Priority,
}

impl TenantTag {
    /// The untagged (closed-loop) sentinel: tenant 0, standard priority.
    pub const NONE: TenantTag = TenantTag {
        tenant: TenantId::new(0),
        priority: Priority::Standard,
    };

    /// Creates a tag for a tenant stream.
    pub const fn new(tenant: TenantId, priority: Priority) -> Self {
        TenantTag { tenant, priority }
    }
}

impl fmt::Display for TenantTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.tenant, self.priority)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_orders_shed_last_to_shed_first() {
        assert!(Priority::Critical < Priority::Standard);
        assert!(Priority::Standard < Priority::Batch);
        assert_eq!(Priority::ALL.len(), 3);
    }

    #[test]
    fn none_tag_is_default() {
        assert_eq!(TenantTag::NONE, TenantTag::default());
        assert_eq!(TenantTag::NONE.tenant.index(), 0);
    }

    #[test]
    fn display_impls() {
        let tag = TenantTag::new(TenantId::new(3), Priority::Batch);
        assert_eq!(format!("{tag}"), "tenant3/batch");
        assert_eq!(format!("{}", Priority::Critical), "critical");
    }
}
