//! The per-vault memory controller: input FIFO, one queue per bank, and
//! the shared 32 B-granular TSV data bus.

use hmc_types::packet::OpKind;
use hmc_types::{AddressMapping, HmcSpec, MemoryRequest, Time};
use sim_engine::{BankOp, BoundedQueue, Sanitizer};

use crate::config::{DramTiming, MemConfig, PagePolicy};
use crate::dram::Bank;

/// Cumulative activity counters for one vault.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VaultStats {
    /// Read operations completed by the banks.
    pub reads: u64,
    /// Write operations completed by the banks.
    pub writes: u64,
    /// Payload bytes moved over the TSV data bus.
    pub data_bytes: u64,
}

/// An operation the vault has committed to a bank, with its computed
/// timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StartedOp {
    /// The request being serviced.
    pub req: MemoryRequest,
    /// Bank index within the vault.
    pub bank: usize,
    /// When the vault emits the response toward the crossbar (reads: data
    /// fully on the bus; writes: data absorbed and acknowledged).
    pub response_at: Time,
    /// When the bank can begin its next access.
    pub bank_free_at: Time,
}

/// One vault: its controller queues, banks, and data bus.
///
/// Requests arrive into a small shared input FIFO; the controller moves
/// them into per-bank queues (head-of-line blocking when the target bank's
/// queue is full), and each bank services its queue one closed-page access
/// at a time. All banks share one TSV data bus reserved in 32 B beats.
#[derive(Debug, Clone)]
pub struct Vault {
    id: u16,
    input: BoundedQueue<MemoryRequest>,
    bank_queues: Vec<BoundedQueue<MemoryRequest>>,
    banks: Vec<Bank>,
    bus_free_at: Time,
    timing: DramTiming,
    policy: PagePolicy,
    mapping: AddressMapping,
    spec: HmcSpec,
    stats: VaultStats,
}

impl Vault {
    /// Creates an idle vault with the configured queue depths.
    pub fn new(id: u16, config: &MemConfig) -> Self {
        let banks = config.spec.banks_per_vault() as usize;
        Vault {
            id,
            input: BoundedQueue::new(config.vault.input_fifo_depth),
            bank_queues: (0..banks)
                .map(|_| BoundedQueue::new(config.vault.bank_queue_depth))
                .collect(),
            banks: vec![Bank::new(); banks],
            bus_free_at: Time::ZERO,
            timing: config.dram,
            policy: config.page_policy,
            mapping: config.mapping,
            spec: config.spec,
            stats: VaultStats::default(),
        }
    }

    /// The vault's index.
    pub fn id(&self) -> u16 {
        self.id
    }

    /// True if the input FIFO can take another request.
    pub fn has_input_space(&self) -> bool {
        !self.input.is_full()
    }

    /// Free input FIFO slots.
    pub fn input_free(&self) -> usize {
        self.input.free()
    }

    /// Enqueues an arriving request; hands it back if the FIFO is full
    /// (callers reserve space ahead of time, so this failing indicates a
    /// reservation bug).
    pub fn accept(&mut self, req: MemoryRequest, now: Time) -> Result<(), MemoryRequest> {
        self.input.try_push(req, now)
    }

    /// Moves requests from the input FIFO into bank queues until the FIFO
    /// empties or its head targets a full bank queue. Returns how many
    /// moved (each freed slot is a credit the link layer can reuse).
    pub fn drain_input(&mut self, now: Time) -> usize {
        let mut moved = 0;
        while let Some(req) = self.input.front().copied() {
            let bank = self.bank_of(&req);
            if self.bank_queues[bank].is_full() {
                break; // head-of-line blocking
            }
            let req = self.input.pop(now).expect("front() was Some");
            self.bank_queues[bank]
                .try_push(req, now)
                .expect("checked for space");
            moved += 1;
        }
        moved
    }

    /// Starts an access on every bank that is free at `now` and has queued
    /// work, appending the committed operations to `out`.
    pub fn start_ready(&mut self, now: Time, out: &mut Vec<StartedOp>) {
        // A disabled sanitizer is allocation-free and every check is an
        // inlined early return, so the unchecked path costs nothing.
        self.start_ready_checked(now, out, &mut Sanitizer::new());
    }

    /// [`start_ready`](Vault::start_ready) with every committed bank
    /// access validated against the protocol sanitizer's timing FSM.
    pub fn start_ready_checked(
        &mut self,
        now: Time,
        out: &mut Vec<StartedOp>,
        sanitizer: &mut Sanitizer,
    ) {
        for bank_idx in 0..self.banks.len() {
            if !self.banks[bank_idx].is_free(now) || self.bank_queues[bank_idx].is_empty() {
                continue;
            }
            let req = self.bank_queues[bank_idx]
                .pop(now)
                .expect("checked non-empty");
            let op = self.run_on_bank(bank_idx, req, now, sanitizer);
            out.push(op);
        }
    }

    fn run_on_bank(
        &mut self,
        bank_idx: usize,
        req: MemoryRequest,
        now: Time,
        sanitizer: &mut Sanitizer,
    ) -> StartedOp {
        let row = self.mapping.decode(req.addr, &self.spec).row;
        let beats = req.size.dram_beats();
        let bus_time = self.timing.bus_beat.saturating_mul(beats);
        let bank = &mut self.banks[bank_idx];
        // Sanitizer bank ids are device-global so one FSM table covers
        // every vault.
        let global_bank = u32::from(self.id) * self.spec.banks_per_vault()
            + u32::try_from(bank_idx).expect("bank index fits u32");
        let response_at = match req.op {
            OpKind::Read => {
                let access = bank.begin_read(now, row, beats, &self.timing, self.policy);
                sanitizer.check_bank_access(
                    global_bank,
                    BankOp::Read,
                    access.start,
                    access.data_at,
                    access.busy_until,
                );
                // Data leaves the sense amps onto the shared bus.
                let bus_start = access.data_at.max(self.bus_free_at);
                let bus_end = bus_start + bus_time;
                self.bus_free_at = bus_end;
                bank.extend_busy(bus_end);
                self.stats.reads += 1;
                bus_end
            }
            OpKind::Write => {
                let access = bank.begin_write(now, row, beats, &self.timing, self.policy);
                sanitizer.check_bank_access(
                    global_bank,
                    BankOp::Write,
                    access.start,
                    access.data_at,
                    access.busy_until,
                );
                // Data flows from the link buffer over the bus into the
                // bank; the write is acknowledged once absorbed.
                let bus_start = access.start.max(self.bus_free_at);
                let bus_end = bus_start + bus_time;
                self.bus_free_at = bus_end;
                bank.extend_busy(bus_end);
                self.stats.writes += 1;
                bus_end
            }
        };
        self.stats.data_bytes += req.size.bytes();
        StartedOp {
            req,
            bank: bank_idx,
            response_at,
            bank_free_at: self.banks[bank_idx].next_free(),
        }
    }

    /// Refresh: occupies every bank and the bus until `until` and closes
    /// any open rows.
    pub fn hold_all(&mut self, until: Time) {
        for bank in &mut self.banks {
            bank.hold_until(until);
        }
        self.bus_free_at = self.bus_free_at.max(until);
    }

    /// Drops all queued work (a shutdown emptied the controller) and
    /// closes every row; bank timing state and activity counters
    /// survive.
    pub fn reset_state(&mut self, now: Time) {
        while self.input.pop(now).is_some() {}
        for q in &mut self.bank_queues {
            while q.pop(now).is_some() {}
        }
        self.hold_all(now);
    }

    /// Earliest instant any bank with queued work becomes free, if any —
    /// lets the device schedule the next dispatch opportunity.
    pub fn next_bank_ready(&self) -> Option<Time> {
        self.banks
            .iter()
            .zip(&self.bank_queues)
            .filter(|(_, q)| !q.is_empty())
            .map(|(b, _)| b.next_free())
            .min()
    }

    /// Total requests currently queued in the vault (input FIFO plus all
    /// bank queues) — the `L` of a Little's-law reading.
    pub fn queued(&self) -> usize {
        self.input.len() + self.bank_queues.iter().map(|q| q.len()).sum::<usize>()
    }

    /// Banks busy with an access (or held by refresh) at `now` — the
    /// bank-occupancy gauge the metrics sampler reports.
    pub fn busy_banks(&self, now: Time) -> usize {
        self.banks.iter().filter(|b| !b.is_free(now)).count()
    }

    /// Activity counters.
    pub fn stats(&self) -> VaultStats {
        self.stats
    }

    /// Sum of per-bank activation counts (for the power model).
    pub fn activations(&self) -> u64 {
        self.banks.iter().map(|b| b.stats().activations).sum()
    }

    /// Sum of per-bank open-page row hits (ablation instrumentation).
    pub fn row_hits(&self) -> u64 {
        self.banks.iter().map(|b| b.stats().row_hits).sum()
    }

    fn bank_of(&self, req: &MemoryRequest) -> usize {
        self.mapping.decode(req.addr, &self.spec).bank.index() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmc_types::{Address, PortId, RequestId, RequestSize, Tag};

    fn config() -> MemConfig {
        MemConfig::default()
    }

    fn read_req(id: u64, addr: u64, size: u64) -> MemoryRequest {
        MemoryRequest {
            id: RequestId::new(id),
            port: PortId::new(0),
            tag: Tag::new(0),
            op: OpKind::Read,
            size: RequestSize::new(size).unwrap(),
            cube: hmc_types::CubeId::new(0),
            addr: Address::new(addr),
            issued_at: Time::ZERO,
            data_token: 0,
            tenant: hmc_types::TenantTag::NONE,
        }
    }

    fn write_req(id: u64, addr: u64, size: u64) -> MemoryRequest {
        MemoryRequest {
            op: OpKind::Write,
            ..read_req(id, addr, size)
        }
    }

    /// Address targeting vault 0, a given bank, and a given row under the
    /// default 128 B mapping.
    fn addr_for(bank: u64, row: u64) -> u64 {
        (bank << 11) | (row << 15)
    }

    #[test]
    fn single_read_timing() {
        let mut v = Vault::new(0, &config());
        v.accept(read_req(0, addr_for(0, 0), 128), Time::ZERO)
            .unwrap();
        assert_eq!(v.drain_input(Time::ZERO), 1);
        let mut out = Vec::new();
        v.start_ready(Time::ZERO, &mut out);
        assert_eq!(out.len(), 1);
        // Data at tRCD+tCL = 50 ns, four 4 ns beats: response at 66 ns.
        assert_eq!(out[0].response_at.as_ns_f64(), 66.0);
        // Bank cycles for tRC plus the three extra beats: 140 ns.
        assert_eq!(out[0].bank_free_at.as_ns_f64(), 140.0);
        assert_eq!(v.stats().reads, 1);
        assert_eq!(v.stats().data_bytes, 128);
    }

    #[test]
    fn write_ack_after_bus_transfer() {
        let mut v = Vault::new(0, &config());
        v.accept(write_req(0, addr_for(0, 0), 128), Time::ZERO)
            .unwrap();
        v.drain_input(Time::ZERO);
        let mut out = Vec::new();
        v.start_ready(Time::ZERO, &mut out);
        // Write data crosses the bus immediately: 16 ns for 4 beats.
        assert_eq!(out[0].response_at.as_ns_f64(), 16.0);
        assert_eq!(v.stats().writes, 1);
    }

    #[test]
    fn same_bank_requests_serialize_at_trc() {
        let mut v = Vault::new(0, &config());
        for i in 0..3 {
            v.accept(read_req(i, addr_for(0, i), 128), Time::ZERO)
                .unwrap();
        }
        v.drain_input(Time::ZERO);
        let mut out = Vec::new();
        v.start_ready(Time::ZERO, &mut out);
        assert_eq!(out.len(), 1, "one access per bank at a time");
        let free = out[0].bank_free_at;
        let mut out2 = Vec::new();
        v.start_ready(free, &mut out2);
        assert_eq!(out2.len(), 1);
        assert_eq!(
            out2[0].response_at.since(out[0].response_at).as_ns_f64(),
            140.0
        );
    }

    #[test]
    fn different_banks_run_in_parallel() {
        let mut v = Vault::new(0, &config());
        for b in 0..4 {
            v.accept(read_req(b, addr_for(b, 0), 128), Time::ZERO)
                .unwrap();
        }
        v.drain_input(Time::ZERO);
        let mut out = Vec::new();
        v.start_ready(Time::ZERO, &mut out);
        assert_eq!(out.len(), 4, "four banks start simultaneously");
        // All four have the same bank timing but the bus serializes their
        // four-beat (16 ns) transfers: responses at 66, 82, 98, 114 ns.
        let mut times: Vec<f64> = out.iter().map(|o| o.response_at.as_ns_f64()).collect();
        times.sort_by(f64::total_cmp);
        assert_eq!(times, vec![66.0, 82.0, 98.0, 114.0]);
    }

    #[test]
    fn bus_saturates_at_eight_banks() {
        // Section IV-B: accessing more than eight banks of a vault does
        // not raise bandwidth, because the TSV bus is the ceiling.
        let cfg = config();
        let count_throughput = |nbanks: u64| -> f64 {
            let mut v = Vault::new(0, &cfg);
            let mut completed = 0u64;
            let mut last = Time::ZERO;
            let horizon = Time::from_ps(50_000_000); // 50 us
            let mut next_id = 0u64;
            let mut row = 0u64;
            loop {
                // Keep every bank queue topped up; the FIFO is small, so
                // refill-and-drain a few times per step.
                for _ in 0..4 {
                    while v.has_input_space() {
                        let bank = next_id % nbanks;
                        v.accept(read_req(next_id, addr_for(bank, row % 1024), 128), last)
                            .unwrap();
                        next_id += 1;
                        row += 1;
                    }
                    v.drain_input(last);
                }
                let mut out = Vec::new();
                v.start_ready(last, &mut out);
                completed += out.len() as u64;
                match v.next_bank_ready() {
                    Some(t) if t <= horizon => last = t.max(last),
                    _ => break,
                }
                if last >= horizon {
                    break;
                }
            }
            completed as f64 * 128.0 / horizon.as_secs_f64() / 1e9
        };
        let one = count_throughput(1);
        let eight = count_throughput(8);
        let sixteen = count_throughput(16);
        // One bank: ~0.9 GB/s of payload (128 B per 140 ns).
        assert!((0.8..1.1).contains(&one), "one-bank GB/s {one}");
        // Eight banks approach the 8 GB/s bus ceiling.
        assert!((6.8..8.4).contains(&eight), "eight-bank GB/s {eight}");
        // Sixteen banks add little (bus-limited).
        assert!(
            (sixteen - eight).abs() / eight < 0.15,
            "16 banks {sixteen} vs 8 banks {eight}"
        );
    }

    #[test]
    fn input_fifo_blocks_on_full_bank_queue() {
        let mut cfg = config();
        cfg.vault.bank_queue_depth = 2;
        cfg.vault.input_fifo_depth = 4;
        let mut v = Vault::new(0, &cfg);
        // Five to bank 0: two fill the queue, rest jam the FIFO even
        // though bank 1's queue is empty.
        for i in 0..4 {
            v.accept(read_req(i, addr_for(0, i), 128), Time::ZERO)
                .unwrap();
        }
        assert_eq!(v.drain_input(Time::ZERO), 2);
        assert_eq!(v.queued(), 4);
        // A bank-1 request behind the jam cannot be reached (HOL).
        v.accept(read_req(9, addr_for(1, 0), 128), Time::ZERO)
            .unwrap();
        assert_eq!(v.drain_input(Time::ZERO), 0);
    }

    #[test]
    fn fifo_rejects_when_full() {
        let mut cfg = config();
        cfg.vault.input_fifo_depth = 2;
        let mut v = Vault::new(3, &cfg);
        assert_eq!(v.id(), 3);
        assert!(v.accept(read_req(0, 0, 16), Time::ZERO).is_ok());
        assert!(v.accept(read_req(1, 0, 16), Time::ZERO).is_ok());
        assert!(!v.has_input_space());
        assert_eq!(v.input_free(), 0);
        assert!(v.accept(read_req(2, 0, 16), Time::ZERO).is_err());
    }

    #[test]
    fn refresh_holds_everything() {
        let mut v = Vault::new(0, &config());
        v.accept(read_req(0, addr_for(0, 0), 128), Time::ZERO)
            .unwrap();
        v.drain_input(Time::ZERO);
        v.hold_all(Time::from_ps(350_000));
        let mut out = Vec::new();
        v.start_ready(Time::ZERO, &mut out);
        assert!(out.is_empty(), "banks are held by refresh");
        assert_eq!(v.next_bank_ready(), Some(Time::from_ps(350_000)));
        v.start_ready(Time::from_ps(350_000), &mut out);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn activations_counted_for_power_model() {
        let mut v = Vault::new(0, &config());
        for i in 0..3 {
            v.accept(read_req(i, addr_for(i, 0), 128), Time::ZERO)
                .unwrap();
        }
        v.drain_input(Time::ZERO);
        let mut out = Vec::new();
        v.start_ready(Time::ZERO, &mut out);
        assert_eq!(v.activations(), 3);
        assert_eq!(v.row_hits(), 0);
    }

    #[test]
    fn small_requests_use_one_beat() {
        let mut v = Vault::new(0, &config());
        v.accept(read_req(0, addr_for(0, 0), 16), Time::ZERO)
            .unwrap();
        v.drain_input(Time::ZERO);
        let mut out = Vec::new();
        v.start_ready(Time::ZERO, &mut out);
        // 16 B still costs one full 32 B beat: response at 50 + 4 = 54 ns.
        assert_eq!(out[0].response_at.as_ns_f64(), 54.0);
    }
}
