//! Device-side SerDes link layer with the HMC link-level retry protocol.
//!
//! Each external link deserializes one request packet at a time (ingress)
//! and serializes one response packet at a time (egress). Packet handling
//! costs the raw wire time of the packet's flits plus a fixed per-packet
//! processing overhead; posted write data additionally passes through a
//! rate-limited drain into the cube (the calibration knob reproducing the
//! paper's write-bandwidth ceiling — see DESIGN.md).
//!
//! Transfers run the spec's retry protocol structurally: every packet
//! entering a serializer is assigned a sequence number and parked in a
//! bounded retry buffer until the receiver acknowledges it. A transfer
//! whose CRC check fails (per-packet seeded draw against the armed
//! bit-error rate) is *re-serialized as a later simulation event* — the
//! receiver's retry pointer stays put, the transmitter replays from the
//! retry buffer after [`LinkLayerConfig::retry_penalty`], and only a clean
//! transfer advances the pointer and releases the buffer slot.

use std::collections::VecDeque;

use hmc_types::{LinkConfig, MemoryRequest, Time, TimeDelta};
use sim_engine::{BoundedQueue, SplitMix64};

use crate::config::LinkLayerConfig;

/// A response packet travelling back toward the host: the original request
/// plus the token read from the backing store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutPacket {
    /// The request this packet answers.
    pub req: MemoryRequest,
    /// Read-back data token (zero for writes).
    pub token: u64,
}

/// Cumulative traffic counters for one link.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Bytes received from the host (request packets incl. overhead flit).
    pub bytes_up: u64,
    /// Bytes sent to the host (response packets incl. overhead flit).
    pub bytes_down: u64,
    /// Request packets received.
    pub req_packets: u64,
    /// Response packets sent.
    pub resp_packets: u64,
    /// Peak egress queue depth observed.
    pub egress_peak: usize,
    /// Link-level retries: transfers whose CRC failed and that were
    /// re-serialized from the retry buffer.
    pub retries: u64,
    /// Times the link's serializers were stalled by an injected fault.
    pub stall_events: u64,
    /// Ingress credits lost to injected token leaks.
    pub leaked_credits: u64,
}

/// Outcome of a transfer attempt completing on a link direction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Transfer<T> {
    /// The receiver's CRC check passed: its retry pointer advanced past
    /// the packet's sequence number and the retry-buffer slot is free.
    /// `retried` is true if any earlier attempt for this packet failed.
    Delivered {
        /// The acknowledged payload, out of the retry buffer.
        payload: T,
        /// True if this packet needed at least one retry round.
        retried: bool,
    },
    /// The CRC check failed: the packet stays in the retry buffer and
    /// re-serializes, completing at `next_done`.
    Retry {
        /// When the replayed transfer completes.
        next_done: Time,
        /// Request id of the packet being replayed (for tracing).
        id: u64,
        /// Failed attempts so far for this packet (1 = first failure).
        failures: u64,
    },
}

/// The transmit-side retry state of one link direction: a bounded buffer
/// of unacknowledged packets with the spec's sequence numbers and the
/// receiver's retry pointer.
#[derive(Debug, Clone)]
struct RetryBuffer<T> {
    capacity: usize,
    /// Unacknowledged packets, oldest first, tagged with their sequence
    /// numbers.
    entries: VecDeque<(u64, T)>,
    /// Sequence number the next transmitted packet gets.
    next_seq: u64,
    /// The receiver's retry pointer: every packet with a sequence number
    /// below it has been acknowledged.
    retry_ptr: u64,
    /// Failed attempts of the packet currently in service.
    failures: u64,
}

impl<T> RetryBuffer<T> {
    fn new(capacity: usize) -> Self {
        RetryBuffer {
            capacity: capacity.max(1),
            entries: VecDeque::new(),
            next_seq: 0,
            retry_ptr: 0,
            failures: 0,
        }
    }

    fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Admits a packet for transmission, assigning its sequence number.
    fn push(&mut self, payload: T) -> u64 {
        debug_assert!(!self.is_full(), "retry buffer overflow");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.entries.push_back((seq, payload));
        seq
    }

    /// Acknowledges the oldest packet: the retry pointer moves past its
    /// sequence number and the slot frees up.
    fn ack_head(&mut self) -> (u64, T) {
        let (seq, payload) = self
            .entries
            .pop_front()
            .expect("ack with empty retry buffer");
        self.retry_ptr = seq + 1;
        self.failures = 0;
        (seq, payload)
    }

    fn head(&self) -> Option<&(u64, T)> {
        self.entries.front()
    }

    fn clear(&mut self) {
        self.entries.clear();
        self.retry_ptr = self.next_seq;
        self.failures = 0;
    }
}

/// One device-side external link.
#[derive(Debug, Clone)]
pub struct DeviceLink {
    ingress: BoundedQueue<MemoryRequest>,
    ingress_busy: bool,
    ingress_retry: RetryBuffer<MemoryRequest>,
    blocked: Option<MemoryRequest>,
    egress: VecDeque<OutPacket>,
    egress_busy: bool,
    egress_retry: RetryBuffer<OutPacket>,
    /// Injected fault: serializers start no new transfer before this.
    stalled_until: Time,
    /// Injected fault: ingress credits the device no longer advertises.
    leaked: usize,
    wire: LinkConfig,
    cfg: LinkLayerConfig,
    rng: SplitMix64,
    stats: LinkStats,
}

impl DeviceLink {
    /// Creates an idle link.
    pub fn new(wire: LinkConfig, cfg: LinkLayerConfig) -> Self {
        Self::with_seed(wire, cfg, 0x11CE)
    }

    /// Creates an idle link with an explicit error-injection seed.
    pub fn with_seed(wire: LinkConfig, cfg: LinkLayerConfig, seed: u64) -> Self {
        DeviceLink {
            ingress: BoundedQueue::new(cfg.ingress_queue_depth),
            ingress_busy: false,
            ingress_retry: RetryBuffer::new(cfg.retry_buffer_depth),
            blocked: None,
            egress: VecDeque::new(),
            egress_busy: false,
            egress_retry: RetryBuffer::new(cfg.retry_buffer_depth),
            stalled_until: Time::ZERO,
            leaked: 0,
            wire,
            cfg,
            rng: SplitMix64::new(seed),
            stats: LinkStats::default(),
        }
    }

    /// Serialization plus processing time of a packet of `bytes` — the
    /// per-hop SerDes cost a pass-through (chained) cube pays again for
    /// every forwarded packet. Exposed so the chain topology can report
    /// the modeled hop adder its latency experiments must reproduce.
    pub fn transfer_time(&self, bytes: u64) -> TimeDelta {
        self.packet_time(bytes)
    }

    /// Serialization plus processing time of a packet of `bytes`.
    fn packet_time(&self, bytes: u64) -> TimeDelta {
        let raw = self.wire.serialize_ps(bytes) as f64 / self.cfg.efficiency;
        let flits = bytes / hmc_types::packet::FLIT_BYTES;
        // Efficiency derating is a float config knob; the one division
        // truncates back to integer ps immediately, and identical inputs
        // give identical IEEE-754 quotients, so determinism holds.
        // hmc-lint: allow(float-time)
        TimeDelta::from_ps(raw as u64)
            + self.cfg.packet_overhead
            + self.cfg.per_flit_overhead.saturating_mul(flits)
    }

    /// Probability the receiver's CRC rejects a packet of `bytes`:
    /// `1 - (1 - BER)^bits`.
    fn corruption_probability(&self, bytes: u64) -> f64 {
        let bits = i32::try_from(bytes * 8).expect("packet bit count fits i32");
        1.0 - (1.0 - self.cfg.bit_error_rate).powi(bits)
    }

    /// Draws the CRC outcome for a transfer of `bytes`. No PRNG state is
    /// touched on a clean link, so runs with faults disabled stay
    /// bit-identical.
    fn transfer_corrupted(&mut self, bytes: u64) -> bool {
        if self.cfg.bit_error_rate <= 0.0 {
            return false;
        }
        let p_err = self.corruption_probability(bytes);
        self.rng.next_f64() < p_err
    }

    /// Arms a new bit-error rate (injected `flit-corruption` fault).
    pub fn set_bit_error_rate(&mut self, ber: f64) {
        self.cfg.bit_error_rate = ber;
    }

    /// Stalls both serializers until `until` (injected `link-stall`
    /// fault). In-progress transfers complete; new ones wait.
    pub fn stall_until(&mut self, until: Time) {
        self.stalled_until = self.stalled_until.max(until);
        self.stats.stall_events += 1;
    }

    /// True while an injected stall is holding the serializers.
    pub fn is_stalled(&self, now: Time) -> bool {
        now < self.stalled_until
    }

    /// Leaks `count` ingress credits (injected `credit-leak` fault): the
    /// host-visible window shrinks, the physical queue does not.
    pub fn leak_credits(&mut self, count: usize) {
        self.leaked += count;
        self.stats.leaked_credits += count as u64;
    }

    /// True if the host may transmit another request to this link.
    pub fn can_accept(&self) -> bool {
        !self.ingress.is_full()
    }

    /// Free ingress credits as the host flow control sees them (leaked
    /// tokens are never re-advertised).
    pub fn ingress_free(&self) -> usize {
        self.ingress.free().saturating_sub(self.leaked)
    }

    /// Enqueues an arriving request packet.
    pub fn enqueue_ingress(&mut self, req: MemoryRequest, now: Time) -> Result<(), MemoryRequest> {
        self.ingress.try_push(req, now)
    }

    /// Starts deserializing the next queued request, if idle: the packet
    /// takes a sequence number and a retry-buffer slot, and the first
    /// transfer attempt completes at the returned instant. The packet
    /// itself stays in the retry buffer until the attempt is
    /// acknowledged via [`complete_ingress`].
    ///
    /// [`complete_ingress`]: DeviceLink::complete_ingress
    pub fn start_ingress(&mut self, now: Time) -> Option<Time> {
        if self.ingress_busy
            || self.blocked.is_some()
            || self.is_stalled(now)
            || self.ingress_retry.is_full()
        {
            return None;
        }
        let req = self.ingress.pop(now)?;
        self.ingress_busy = true;
        let wire_bytes = req.sizes().request_flits().bytes();
        self.stats.bytes_up += wire_bytes;
        self.stats.req_packets += 1;
        self.ingress_retry.push(req);
        Some(now + self.packet_time(wire_bytes))
    }

    /// Resolves an ingress transfer attempt at `now`: either the packet
    /// is delivered (CRC clean, retry pointer advances) or it replays
    /// from the retry buffer.
    pub fn complete_ingress(&mut self, now: Time) -> Transfer<MemoryRequest> {
        debug_assert!(self.ingress_busy);
        let &(_, req) = self
            .ingress_retry
            .head()
            .expect("ingress attempt without packet");
        let wire_bytes = req.sizes().request_flits().bytes();
        if self.transfer_corrupted(wire_bytes) {
            self.stats.retries += 1;
            self.ingress_retry.failures += 1;
            Transfer::Retry {
                next_done: now + self.cfg.retry_penalty + self.packet_time(wire_bytes),
                id: req.id.value(),
                failures: self.ingress_retry.failures,
            }
        } else {
            let retried = self.ingress_retry.failures > 0;
            let (_, req) = self.ingress_retry.ack_head();
            Transfer::Delivered {
                payload: req,
                retried,
            }
        }
    }

    /// Marks the in-flight ingress packet as delivered downstream.
    pub fn finish_ingress(&mut self) {
        debug_assert!(self.ingress_busy);
        self.ingress_busy = false;
    }

    /// Parks the processed packet because a downstream resource (target
    /// vault input FIFO, or the posted-write buffer) has no space; the
    /// link stalls (head-of-line) until [`take_blocked`] succeeds.
    ///
    /// [`take_blocked`]: DeviceLink::take_blocked
    pub fn block_head(&mut self, req: MemoryRequest) {
        debug_assert!(self.blocked.is_none());
        self.blocked = Some(req);
        self.ingress_busy = false;
    }

    /// The stalled packet's target, if the link is stalled.
    pub fn blocked_request(&self) -> Option<&MemoryRequest> {
        self.blocked.as_ref()
    }

    /// Removes and returns the stalled packet (the caller verified its
    /// vault now has space).
    pub fn take_blocked(&mut self) -> Option<MemoryRequest> {
        self.blocked.take()
    }

    /// Queues a response packet for egress.
    pub fn push_egress(&mut self, pkt: OutPacket) {
        self.egress.push_back(pkt);
        self.stats.egress_peak = self.stats.egress_peak.max(self.egress.len());
    }

    /// Starts serializing the next response, if idle; same retry-buffer
    /// contract as [`start_ingress`].
    ///
    /// [`start_ingress`]: DeviceLink::start_ingress
    pub fn start_egress(&mut self, now: Time) -> Option<Time> {
        if self.egress_busy || self.is_stalled(now) || self.egress_retry.is_full() {
            return None;
        }
        let pkt = self.egress.pop_front()?;
        self.egress_busy = true;
        let wire_bytes = pkt.req.sizes().response_flits().bytes();
        self.stats.bytes_down += wire_bytes;
        self.stats.resp_packets += 1;
        self.egress_retry.push(pkt);
        Some(now + self.packet_time(wire_bytes))
    }

    /// Resolves an egress transfer attempt at `now`.
    pub fn complete_egress(&mut self, now: Time) -> Transfer<OutPacket> {
        debug_assert!(self.egress_busy);
        let &(_, pkt) = self
            .egress_retry
            .head()
            .expect("egress attempt without packet");
        let wire_bytes = pkt.req.sizes().response_flits().bytes();
        if self.transfer_corrupted(wire_bytes) {
            self.stats.retries += 1;
            self.egress_retry.failures += 1;
            Transfer::Retry {
                next_done: now + self.cfg.retry_penalty + self.packet_time(wire_bytes),
                id: pkt.req.id.value(),
                failures: self.egress_retry.failures,
            }
        } else {
            let retried = self.egress_retry.failures > 0;
            let (_, pkt) = self.egress_retry.ack_head();
            Transfer::Delivered {
                payload: pkt,
                retried,
            }
        }
    }

    /// Marks the in-flight egress packet as sent.
    pub fn finish_egress(&mut self) {
        debug_assert!(self.egress_busy);
        self.egress_busy = false;
    }

    /// Pending ingress requests (queued + in flight + blocked).
    pub fn ingress_backlog(&self) -> usize {
        self.ingress.len() + usize::from(self.ingress_busy) + usize::from(self.blocked.is_some())
    }

    /// Pending egress responses (queued + in flight).
    pub fn egress_backlog(&self) -> usize {
        self.egress.len() + usize::from(self.egress_busy)
    }

    /// Sequence number the next transmitted ingress packet would get
    /// (equals the count of packets ever admitted).
    pub fn ingress_seq(&self) -> u64 {
        self.ingress_retry.next_seq
    }

    /// The ingress receiver's retry pointer (first unacknowledged
    /// sequence number).
    pub fn ingress_retry_ptr(&self) -> u64 {
        self.ingress_retry.retry_ptr
    }

    /// Drops all queued and in-flight transport state (a shutdown lost
    /// the link): queues, busy flags, retry buffers, and injected faults
    /// are cleared; traffic counters and the error-injection PRNG
    /// survive. Returns how many ingress-window requests were dropped,
    /// so the caller can reconcile its credit accounting.
    pub fn reset_transport(&mut self, now: Time) -> usize {
        let mut dropped = self.ingress.len();
        while self.ingress.pop(now).is_some() {}
        dropped += usize::from(self.blocked.is_some());
        self.blocked = None;
        self.ingress_busy = false;
        self.egress_busy = false;
        // In-service packets sit in the retry buffers, not the queues.
        dropped += self.ingress_retry.entries.len();
        self.ingress_retry.clear();
        self.egress_retry.clear();
        self.egress.clear();
        self.stalled_until = Time::ZERO;
        self.leaked = 0;
        dropped
    }

    /// Traffic counters.
    pub fn stats(&self) -> LinkStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmc_types::packet::OpKind;
    use hmc_types::{Address, PortId, RequestId, RequestSize, Tag};

    fn link() -> DeviceLink {
        DeviceLink::new(LinkConfig::ac510(), LinkLayerConfig::default())
    }

    fn req(op: OpKind, size: u64) -> MemoryRequest {
        MemoryRequest {
            id: RequestId::new(0),
            port: PortId::new(0),
            tag: Tag::new(0),
            op,
            size: RequestSize::new(size).unwrap(),
            cube: hmc_types::CubeId::new(0),
            addr: Address::new(0),
            issued_at: Time::ZERO,
            data_token: 0,
            tenant: hmc_types::TenantTag::NONE,
        }
    }

    /// Drives one egress packet through all its retry rounds, returning
    /// the delivery instant and the packet.
    fn pump_egress(l: &mut DeviceLink, now: Time) -> (Time, OutPacket) {
        let mut done = l.start_egress(now).expect("egress idle");
        loop {
            match l.complete_egress(done) {
                Transfer::Delivered { payload, .. } => {
                    l.finish_egress();
                    return (done, payload);
                }
                Transfer::Retry { next_done, .. } => done = next_done,
            }
        }
    }

    #[test]
    fn read_request_ingress_time() {
        let mut l = link();
        l.enqueue_ingress(req(OpKind::Read, 128), Time::ZERO)
            .unwrap();
        let done = l.start_ingress(Time::ZERO).unwrap();
        // 16 B over 8 lanes @15 Gb/s = 1066 ps, plus 7 ns of processing
        // overhead.
        assert_eq!(done.as_ps(), 8_066);
        assert_eq!(l.stats().bytes_up, 16);
        let Transfer::Delivered { payload, retried } = l.complete_ingress(done) else {
            panic!("clean link never retries");
        };
        assert_eq!(payload.op, OpKind::Read);
        assert!(!retried);
        // Busy until finished.
        assert!(l.start_ingress(Time::ZERO).is_none());
        l.finish_ingress();
        assert!(l.start_ingress(done).is_none(), "queue now empty");
    }

    #[test]
    fn write_ingress_is_wire_time_only() {
        // The posted-write drain lives in the device, not the link: the
        // link only pays the wire + processing time, so reads behind a
        // write are not drain-stalled at the serializer.
        let mut l = link();
        l.enqueue_ingress(req(OpKind::Write, 128), Time::ZERO)
            .unwrap();
        let done = l.start_ingress(Time::ZERO).unwrap();
        // 144 B wire = 9600 ps + 7000 ps = 16600 ps.
        assert_eq!(done.as_ps(), 16_600);
    }

    #[test]
    fn small_write_ingress_time() {
        let mut l = link();
        l.enqueue_ingress(req(OpKind::Write, 16), Time::ZERO)
            .unwrap();
        let done = l.start_ingress(Time::ZERO).unwrap();
        // 32 B wire = 2133 ps + 7000 ps = 9133 ps.
        assert_eq!(done.as_ps(), 9_133);
    }

    #[test]
    fn ingress_credit_window() {
        let mut l = link();
        assert!(l.can_accept());
        for _ in 0..32 {
            l.enqueue_ingress(req(OpKind::Read, 16), Time::ZERO)
                .unwrap();
        }
        assert!(!l.can_accept());
        assert_eq!(l.ingress_free(), 0);
        assert!(l
            .enqueue_ingress(req(OpKind::Read, 16), Time::ZERO)
            .is_err());
        assert_eq!(l.ingress_backlog(), 32);
    }

    #[test]
    fn vault_blocking_stalls_ingress() {
        let mut l = link();
        l.enqueue_ingress(req(OpKind::Read, 16), Time::ZERO)
            .unwrap();
        l.enqueue_ingress(req(OpKind::Read, 16), Time::ZERO)
            .unwrap();
        let done = l.start_ingress(Time::ZERO).unwrap();
        let Transfer::Delivered { payload, .. } = l.complete_ingress(done) else {
            panic!("clean link");
        };
        l.block_head(payload);
        assert!(l.blocked_request().is_some());
        // Stalled: no further ingress.
        assert!(l.start_ingress(Time::from_ps(1_000_000)).is_none());
        let unblocked = l.take_blocked().unwrap();
        assert_eq!(unblocked.op, OpKind::Read);
        // Flow resumes.
        assert!(l.start_ingress(Time::from_ps(1_000_000)).is_some());
    }

    #[test]
    fn egress_serializes_responses() {
        let mut l = link();
        l.push_egress(OutPacket {
            req: req(OpKind::Read, 128),
            token: 5,
        });
        l.push_egress(OutPacket {
            req: req(OpKind::Read, 128),
            token: 6,
        });
        assert_eq!(l.egress_backlog(), 2);
        let (done, p) = pump_egress(&mut l, Time::ZERO);
        assert_eq!(p.token, 5);
        // 144 B response: 9600 ps wire + 7000 ps overhead.
        assert_eq!(done.as_ps(), 16_600);
        let (done2, p2) = pump_egress(&mut l, done);
        assert_eq!(p2.token, 6);
        assert_eq!(done2.as_ps(), 33_200);
        assert_eq!(l.stats().bytes_down, 288);
        assert_eq!(l.stats().resp_packets, 2);
        assert_eq!(l.stats().egress_peak, 2);
    }

    #[test]
    fn egress_busy_between_start_and_finish() {
        let mut l = link();
        l.push_egress(OutPacket {
            req: req(OpKind::Read, 128),
            token: 0,
        });
        let done = l.start_egress(Time::ZERO).unwrap();
        assert!(l.start_egress(Time::ZERO).is_none(), "busy");
        let Transfer::Delivered { .. } = l.complete_egress(done) else {
            panic!("clean link");
        };
        assert!(l.start_egress(done).is_none(), "still busy until finish");
        l.finish_egress();
    }

    #[test]
    fn sequence_numbers_and_retry_pointer_track_acks() {
        let mut l = link();
        assert_eq!(l.ingress_seq(), 0);
        assert_eq!(l.ingress_retry_ptr(), 0);
        l.enqueue_ingress(req(OpKind::Read, 16), Time::ZERO)
            .unwrap();
        let done = l.start_ingress(Time::ZERO).unwrap();
        // Admitted: sequence advanced, not yet acknowledged.
        assert_eq!(l.ingress_seq(), 1);
        assert_eq!(l.ingress_retry_ptr(), 0);
        let Transfer::Delivered { .. } = l.complete_ingress(done) else {
            panic!("clean link");
        };
        // Acknowledged: the retry pointer passed the packet.
        assert_eq!(l.ingress_retry_ptr(), 1);
        l.finish_ingress();
    }

    #[test]
    fn corrupted_transfer_replays_as_later_event() {
        // BER high enough that corruption happens within a few packets.
        let cfg = LinkLayerConfig {
            bit_error_rate: 1e-3,
            ..LinkLayerConfig::default()
        };
        let mut l = DeviceLink::with_seed(LinkConfig::ac510(), cfg, 42);
        let mut now = Time::ZERO;
        let mut total_rounds = 0u64;
        for i in 0..20 {
            l.push_egress(OutPacket {
                req: req(OpKind::Read, 128),
                token: i,
            });
            let mut done = l.start_egress(now).unwrap();
            let mut rounds = 0u64;
            let pkt = loop {
                match l.complete_egress(done) {
                    Transfer::Delivered { payload, retried } => {
                        assert_eq!(retried, rounds > 0);
                        break payload;
                    }
                    Transfer::Retry {
                        next_done,
                        id,
                        failures,
                    } => {
                        rounds += 1;
                        assert_eq!(id, 0);
                        assert_eq!(failures, rounds);
                        // Replay is a genuinely later event: one retry
                        // round plus a full re-serialization.
                        assert_eq!(next_done.as_ps(), done.as_ps() + 120_000 + 16_600);
                        done = next_done;
                    }
                }
            };
            l.finish_egress();
            assert_eq!(pkt.token, i);
            total_rounds += rounds;
            now = done;
        }
        assert_eq!(l.stats().retries, total_rounds);
        assert!(
            total_rounds > 0,
            "seed 42 at BER 1e-3 must corrupt something in 20 packets"
        );
    }

    #[test]
    fn zero_ber_never_retries() {
        let mut l = link();
        let mut now = Time::ZERO;
        for i in 0..50 {
            l.push_egress(OutPacket {
                req: req(OpKind::Read, 128),
                token: i,
            });
            let (done, _) = pump_egress(&mut l, now);
            now = done;
        }
        assert_eq!(l.stats().retries, 0);
    }

    #[test]
    fn high_ber_forces_retries_and_slows_packets() {
        let cfg = LinkLayerConfig {
            bit_error_rate: 1e-4, // ~11% per 144 B packet
            ..LinkLayerConfig::default()
        };
        let mut noisy = DeviceLink::with_seed(LinkConfig::ac510(), cfg, 42);
        let mut clean = link();
        let mut t_noisy = Time::ZERO;
        let mut t_clean = Time::ZERO;
        for i in 0..500 {
            let p = OutPacket {
                req: req(OpKind::Read, 128),
                token: i,
            };
            noisy.push_egress(p);
            clean.push_egress(p);
            t_noisy = pump_egress(&mut noisy, t_noisy).0;
            t_clean = pump_egress(&mut clean, t_clean).0;
        }
        assert!(noisy.stats().retries > 10, "{}", noisy.stats().retries);
        assert!(t_noisy > t_clean, "retries cost time");
    }

    #[test]
    fn retry_injection_is_deterministic() {
        let run = |seed| {
            let cfg = LinkLayerConfig {
                bit_error_rate: 1e-4,
                ..LinkLayerConfig::default()
            };
            let mut l = DeviceLink::with_seed(LinkConfig::ac510(), cfg, seed);
            let mut t = Time::ZERO;
            for i in 0..200 {
                l.push_egress(OutPacket {
                    req: req(OpKind::Read, 128),
                    token: i,
                });
                t = pump_egress(&mut l, t).0;
            }
            (t, l.stats().retries)
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7).1, run(8).1);
    }

    #[test]
    fn efficiency_derates_wire_rate() {
        let cfg = LinkLayerConfig {
            efficiency: 0.5,
            ..LinkLayerConfig::default()
        };
        let mut l = DeviceLink::new(LinkConfig::ac510(), cfg);
        l.push_egress(OutPacket {
            req: req(OpKind::Read, 128),
            token: 0,
        });
        let (done, _) = pump_egress(&mut l, Time::ZERO);
        // Wire time doubles: 19200 + 7000.
        assert_eq!(done.as_ps(), 26_200);
    }

    #[test]
    fn stall_holds_serializers_then_releases() {
        let mut l = link();
        l.stall_until(Time::from_ps(50_000));
        l.enqueue_ingress(req(OpKind::Read, 16), Time::ZERO)
            .unwrap();
        l.push_egress(OutPacket {
            req: req(OpKind::Read, 128),
            token: 0,
        });
        assert!(l.start_ingress(Time::ZERO).is_none());
        assert!(l.start_egress(Time::from_ps(49_999)).is_none());
        assert!(l.is_stalled(Time::from_ps(10_000)));
        // Stall expires: both directions flow again.
        assert!(!l.is_stalled(Time::from_ps(50_000)));
        assert!(l.start_ingress(Time::from_ps(50_000)).is_some());
        assert!(l.start_egress(Time::from_ps(50_000)).is_some());
        assert_eq!(l.stats().stall_events, 1);
    }

    #[test]
    fn leaked_credits_shrink_advertised_window_only() {
        let mut l = link();
        assert_eq!(l.ingress_free(), 32);
        l.leak_credits(24);
        assert_eq!(l.ingress_free(), 8);
        // The physical queue still accepts packets already in flight.
        for _ in 0..32 {
            l.enqueue_ingress(req(OpKind::Read, 16), Time::ZERO)
                .unwrap();
        }
        assert_eq!(l.ingress_free(), 0);
        assert_eq!(l.stats().leaked_credits, 24);
    }

    #[test]
    fn reset_transport_drops_state_keeps_counters() {
        let mut l = link();
        for _ in 0..4 {
            l.enqueue_ingress(req(OpKind::Read, 16), Time::ZERO)
                .unwrap();
        }
        let done = l.start_ingress(Time::ZERO).unwrap();
        let _ = done;
        l.push_egress(OutPacket {
            req: req(OpKind::Read, 128),
            token: 1,
        });
        let before = l.stats();
        // 3 still queued + 1 in the retry buffer awaiting ack.
        let dropped = l.reset_transport(Time::from_ps(100_000));
        assert_eq!(dropped, 4);
        assert_eq!(l.ingress_backlog(), 0);
        assert_eq!(l.egress_backlog(), 0);
        assert_eq!(l.ingress_retry_ptr(), l.ingress_seq());
        assert_eq!(l.stats(), before, "counters survive the reset");
        // The link is immediately usable again.
        l.enqueue_ingress(req(OpKind::Read, 16), Time::from_ps(100_000))
            .unwrap();
        assert!(l.start_ingress(Time::from_ps(100_000)).is_some());
    }
}
