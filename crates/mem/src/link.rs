//! Device-side SerDes link layer.
//!
//! Each external link deserializes one request packet at a time (ingress)
//! and serializes one response packet at a time (egress). Packet handling
//! costs the raw wire time of the packet's flits plus a fixed per-packet
//! processing overhead; posted write data additionally passes through a
//! rate-limited drain into the cube (the calibration knob reproducing the
//! paper's write-bandwidth ceiling — see DESIGN.md).

use std::collections::VecDeque;

use hmc_types::{LinkConfig, MemoryRequest, Time, TimeDelta};
use sim_engine::{BoundedQueue, SplitMix64};

use crate::config::LinkLayerConfig;

/// A response packet travelling back toward the host: the original request
/// plus the token read from the backing store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutPacket {
    /// The request this packet answers.
    pub req: MemoryRequest,
    /// Read-back data token (zero for writes).
    pub token: u64,
}

/// Cumulative traffic counters for one link.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Bytes received from the host (request packets incl. overhead flit).
    pub bytes_up: u64,
    /// Bytes sent to the host (response packets incl. overhead flit).
    pub bytes_down: u64,
    /// Request packets received.
    pub req_packets: u64,
    /// Response packets sent.
    pub resp_packets: u64,
    /// Peak egress queue depth observed.
    pub egress_peak: usize,
    /// Link-level retries triggered by injected bit errors.
    pub retries: u64,
}

/// One device-side external link.
#[derive(Debug, Clone)]
pub struct DeviceLink {
    ingress: BoundedQueue<MemoryRequest>,
    ingress_busy: bool,
    blocked: Option<MemoryRequest>,
    egress: VecDeque<OutPacket>,
    egress_busy: bool,
    wire: LinkConfig,
    cfg: LinkLayerConfig,
    rng: SplitMix64,
    stats: LinkStats,
}

impl DeviceLink {
    /// Creates an idle link.
    pub fn new(wire: LinkConfig, cfg: LinkLayerConfig) -> Self {
        Self::with_seed(wire, cfg, 0x11CE)
    }

    /// Creates an idle link with an explicit error-injection seed.
    pub fn with_seed(wire: LinkConfig, cfg: LinkLayerConfig, seed: u64) -> Self {
        DeviceLink {
            ingress: BoundedQueue::new(cfg.ingress_queue_depth),
            ingress_busy: false,
            blocked: None,
            egress: VecDeque::new(),
            egress_busy: false,
            wire,
            cfg,
            rng: SplitMix64::new(seed),
            stats: LinkStats::default(),
        }
    }

    /// Serialization plus processing time of a packet of `bytes`.
    fn packet_time(&self, bytes: u64) -> TimeDelta {
        let raw = self.wire.serialize_ps(bytes) as f64 / self.cfg.efficiency;
        let flits = bytes / hmc_types::packet::FLIT_BYTES;
        // Efficiency derating is a float config knob; the one division
        // truncates back to integer ps immediately, and identical inputs
        // give identical IEEE-754 quotients, so determinism holds.
        // hmc-lint: allow(float-time)
        TimeDelta::from_ps(raw as u64)
            + self.cfg.packet_overhead
            + self.cfg.per_flit_overhead.saturating_mul(flits)
    }

    /// Serialization time including any link-level retries the injected
    /// bit-error rate produces: each failed attempt costs one full
    /// serialization plus the retry round.
    fn packet_time_with_retries(&mut self, bytes: u64) -> TimeDelta {
        let base = self.packet_time(bytes);
        if self.cfg.bit_error_rate <= 0.0 {
            return base;
        }
        // P(packet corrupt) = 1 - (1 - BER)^bits.
        let p_err = 1.0 - (1.0 - self.cfg.bit_error_rate).powi(bytes as i32 * 8);
        let mut total = base;
        while self.rng.next_f64() < p_err {
            self.stats.retries += 1;
            total += base + self.cfg.retry_penalty;
        }
        total
    }

    /// True if the host may transmit another request to this link.
    pub fn can_accept(&self) -> bool {
        !self.ingress.is_full()
    }

    /// Free ingress credits as the host flow control sees them.
    pub fn ingress_free(&self) -> usize {
        self.ingress.free()
    }

    /// Enqueues an arriving request packet.
    pub fn enqueue_ingress(&mut self, req: MemoryRequest, now: Time) -> Result<(), MemoryRequest> {
        self.ingress.try_push(req, now)
    }

    /// Starts processing the next queued request, if idle. Returns the
    /// request and the instant its ingress completes; the caller schedules
    /// the completion event.
    pub fn start_ingress(&mut self, now: Time) -> Option<(Time, MemoryRequest)> {
        if self.ingress_busy || self.blocked.is_some() {
            return None;
        }
        let req = self.ingress.pop(now)?;
        self.ingress_busy = true;
        let wire_bytes = req.sizes().request_flits().bytes();
        self.stats.bytes_up += wire_bytes;
        self.stats.req_packets += 1;
        let t = self.packet_time_with_retries(wire_bytes);
        Some((now + t, req))
    }

    /// Marks the in-flight ingress packet as delivered downstream.
    pub fn finish_ingress(&mut self) {
        debug_assert!(self.ingress_busy);
        self.ingress_busy = false;
    }

    /// Parks the processed packet because a downstream resource (target
    /// vault input FIFO, or the posted-write buffer) has no space; the
    /// link stalls (head-of-line) until [`take_blocked`] succeeds.
    ///
    /// [`take_blocked`]: DeviceLink::take_blocked
    pub fn block_head(&mut self, req: MemoryRequest) {
        debug_assert!(self.blocked.is_none());
        self.blocked = Some(req);
        self.ingress_busy = false;
    }

    /// The stalled packet's target, if the link is stalled.
    pub fn blocked_request(&self) -> Option<&MemoryRequest> {
        self.blocked.as_ref()
    }

    /// Removes and returns the stalled packet (the caller verified its
    /// vault now has space).
    pub fn take_blocked(&mut self) -> Option<MemoryRequest> {
        self.blocked.take()
    }

    /// Queues a response packet for egress.
    pub fn push_egress(&mut self, pkt: OutPacket) {
        self.egress.push_back(pkt);
        self.stats.egress_peak = self.stats.egress_peak.max(self.egress.len());
    }

    /// Starts serializing the next response, if idle. Returns the packet
    /// and the instant it fully leaves the device.
    pub fn start_egress(&mut self, now: Time) -> Option<(Time, OutPacket)> {
        if self.egress_busy {
            return None;
        }
        let pkt = self.egress.pop_front()?;
        self.egress_busy = true;
        let wire_bytes = pkt.req.sizes().response_flits().bytes();
        self.stats.bytes_down += wire_bytes;
        self.stats.resp_packets += 1;
        let t = self.packet_time_with_retries(wire_bytes);
        Some((now + t, pkt))
    }

    /// Marks the in-flight egress packet as sent.
    pub fn finish_egress(&mut self) {
        debug_assert!(self.egress_busy);
        self.egress_busy = false;
    }

    /// Pending ingress requests (queued + in flight + blocked).
    pub fn ingress_backlog(&self) -> usize {
        self.ingress.len() + usize::from(self.ingress_busy) + usize::from(self.blocked.is_some())
    }

    /// Pending egress responses (queued + in flight).
    pub fn egress_backlog(&self) -> usize {
        self.egress.len() + usize::from(self.egress_busy)
    }

    /// Traffic counters.
    pub fn stats(&self) -> LinkStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmc_types::packet::OpKind;
    use hmc_types::{Address, PortId, RequestId, RequestSize, Tag};

    fn link() -> DeviceLink {
        DeviceLink::new(LinkConfig::ac510(), LinkLayerConfig::default())
    }

    fn req(op: OpKind, size: u64) -> MemoryRequest {
        MemoryRequest {
            id: RequestId::new(0),
            port: PortId::new(0),
            tag: Tag::new(0),
            op,
            size: RequestSize::new(size).unwrap(),
            addr: Address::new(0),
            issued_at: Time::ZERO,
            data_token: 0,
        }
    }

    #[test]
    fn read_request_ingress_time() {
        let mut l = link();
        l.enqueue_ingress(req(OpKind::Read, 128), Time::ZERO)
            .unwrap();
        let (done, r) = l.start_ingress(Time::ZERO).unwrap();
        assert_eq!(r.op, OpKind::Read);
        // 16 B over 8 lanes @15 Gb/s = 1066 ps, plus 7 ns of processing
        // overhead.
        assert_eq!(done.as_ps(), 8_066);
        assert_eq!(l.stats().bytes_up, 16);
        // Busy until finished.
        assert!(l.start_ingress(Time::ZERO).is_none());
        l.finish_ingress();
        assert!(l.start_ingress(done).is_none(), "queue now empty");
    }

    #[test]
    fn write_ingress_is_wire_time_only() {
        // The posted-write drain lives in the device, not the link: the
        // link only pays the wire + processing time, so reads behind a
        // write are not drain-stalled at the serializer.
        let mut l = link();
        l.enqueue_ingress(req(OpKind::Write, 128), Time::ZERO)
            .unwrap();
        let (done, _) = l.start_ingress(Time::ZERO).unwrap();
        // 144 B wire = 9600 ps + 7000 ps = 16600 ps.
        assert_eq!(done.as_ps(), 16_600);
    }

    #[test]
    fn small_write_ingress_time() {
        let mut l = link();
        l.enqueue_ingress(req(OpKind::Write, 16), Time::ZERO)
            .unwrap();
        let (done, _) = l.start_ingress(Time::ZERO).unwrap();
        // 32 B wire = 2133 ps + 7000 ps = 9133 ps.
        assert_eq!(done.as_ps(), 9_133);
    }

    #[test]
    fn ingress_credit_window() {
        let mut l = link();
        assert!(l.can_accept());
        for _ in 0..32 {
            l.enqueue_ingress(req(OpKind::Read, 16), Time::ZERO)
                .unwrap();
        }
        assert!(!l.can_accept());
        assert_eq!(l.ingress_free(), 0);
        assert!(l
            .enqueue_ingress(req(OpKind::Read, 16), Time::ZERO)
            .is_err());
        assert_eq!(l.ingress_backlog(), 32);
    }

    #[test]
    fn vault_blocking_stalls_ingress() {
        let mut l = link();
        l.enqueue_ingress(req(OpKind::Read, 16), Time::ZERO)
            .unwrap();
        l.enqueue_ingress(req(OpKind::Read, 16), Time::ZERO)
            .unwrap();
        let (_, r) = l.start_ingress(Time::ZERO).unwrap();
        l.block_head(r);
        assert!(l.blocked_request().is_some());
        // Stalled: no further ingress.
        assert!(l.start_ingress(Time::from_ps(1_000_000)).is_none());
        let unblocked = l.take_blocked().unwrap();
        assert_eq!(unblocked.op, OpKind::Read);
        // Flow resumes.
        assert!(l.start_ingress(Time::from_ps(1_000_000)).is_some());
    }

    #[test]
    fn egress_serializes_responses() {
        let mut l = link();
        l.push_egress(OutPacket {
            req: req(OpKind::Read, 128),
            token: 5,
        });
        l.push_egress(OutPacket {
            req: req(OpKind::Read, 128),
            token: 6,
        });
        assert_eq!(l.egress_backlog(), 2);
        let (done, p) = l.start_egress(Time::ZERO).unwrap();
        assert_eq!(p.token, 5);
        // 144 B response: 9600 ps wire + 7000 ps overhead.
        assert_eq!(done.as_ps(), 16_600);
        assert!(l.start_egress(Time::ZERO).is_none(), "busy");
        l.finish_egress();
        let (done2, p2) = l.start_egress(done).unwrap();
        assert_eq!(p2.token, 6);
        assert_eq!(done2.as_ps(), 33_200);
        assert_eq!(l.stats().bytes_down, 288);
        assert_eq!(l.stats().resp_packets, 2);
        assert_eq!(l.stats().egress_peak, 2);
    }

    #[test]
    fn zero_ber_never_retries() {
        let mut l = link();
        for i in 0..50 {
            l.push_egress(OutPacket {
                req: req(OpKind::Read, 128),
                token: i,
            });
        }
        let mut now = Time::ZERO;
        while let Some((done, _)) = l.start_egress(now) {
            now = done;
            l.finish_egress();
        }
        assert_eq!(l.stats().retries, 0);
    }

    #[test]
    fn high_ber_forces_retries_and_slows_packets() {
        let cfg = LinkLayerConfig {
            bit_error_rate: 1e-4, // ~11% per 144 B packet
            ..LinkLayerConfig::default()
        };
        let mut noisy = DeviceLink::with_seed(LinkConfig::ac510(), cfg, 42);
        let mut clean = link();
        let mut t_noisy = Time::ZERO;
        let mut t_clean = Time::ZERO;
        for i in 0..500 {
            let p = OutPacket {
                req: req(OpKind::Read, 128),
                token: i,
            };
            noisy.push_egress(p);
            clean.push_egress(p);
            let (dn, _) = noisy.start_egress(t_noisy).unwrap();
            noisy.finish_egress();
            t_noisy = dn;
            let (dc, _) = clean.start_egress(t_clean).unwrap();
            clean.finish_egress();
            t_clean = dc;
        }
        assert!(noisy.stats().retries > 10, "{}", noisy.stats().retries);
        assert!(t_noisy > t_clean, "retries cost time");
    }

    #[test]
    fn retry_injection_is_deterministic() {
        let run = |seed| {
            let cfg = LinkLayerConfig {
                bit_error_rate: 1e-4,
                ..LinkLayerConfig::default()
            };
            let mut l = DeviceLink::with_seed(LinkConfig::ac510(), cfg, seed);
            let mut t = Time::ZERO;
            for i in 0..200 {
                l.push_egress(OutPacket {
                    req: req(OpKind::Read, 128),
                    token: i,
                });
                let (d, _) = l.start_egress(t).unwrap();
                l.finish_egress();
                t = d;
            }
            (t, l.stats().retries)
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7).1, run(8).1);
    }

    #[test]
    fn efficiency_derates_wire_rate() {
        let cfg = LinkLayerConfig {
            efficiency: 0.5,
            ..LinkLayerConfig::default()
        };
        let mut l = DeviceLink::new(LinkConfig::ac510(), cfg);
        l.push_egress(OutPacket {
            req: req(OpKind::Read, 128),
            token: 0,
        });
        let (done, _) = l.start_egress(Time::ZERO).unwrap();
        // Wire time doubles: 19200 + 7000.
        assert_eq!(done.as_ps(), 26_200);
    }
}
