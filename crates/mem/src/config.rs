//! Configuration of the device model, with defaults calibrated against the
//! paper's measured AC-510 + 4 GB HMC 1.1 system.
//!
//! Two knobs are *calibration constants* rather than datasheet values (the
//! paper's own instrumentation could not isolate them either):
//!
//! * [`LinkLayerConfig::packet_overhead`] — fixed per-packet processing
//!   time in the device link layer; it sets where the measured ~21 GB/s
//!   read ceiling falls below the 30 GB/s raw directional link bandwidth
//!   and why small packets gain requests/second more slowly than they lose
//!   bytes/request (Figure 8).
//! * [`LinkLayerConfig::write_drain_bytes_per_sec`] — the posted-write
//!   drain rate; it reproduces the measured `wo ≈ ½·rw` ordering
//!   (Figure 7).

use hmc_types::{AddressMapping, HmcSpec, LinkConfig, TimeDelta};

/// Row-buffer management policy of the vault controllers.
///
/// Real HMC uses a closed-page policy (Section II-C); the open-page variant
/// exists as an ablation to quantify what HMC gives up in exchange for the
/// lower static power.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PagePolicy {
    /// Precharge after every access — the HMC policy.
    #[default]
    ClosedPage,
    /// Leave the row open; hits skip the activate, misses pay an extra
    /// precharge.
    OpenPage,
}

/// DRAM timing parameters of the stacked layers.
///
/// 3D-stacked DRAM runs at lower internal frequency than contemporary DDR
/// (footnote 13 of the paper), and the per-bank cycle time here is
/// calibrated so one bank sustains the ≈1.25 GB/s of counted bandwidth the
/// paper's single-bank experiments imply (Figure 16: 24.2 µs at ≈190
/// outstanding requests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramTiming {
    /// Activate-to-CAS delay.
    pub t_rcd: TimeDelta,
    /// CAS latency.
    pub t_cl: TimeDelta,
    /// Precharge time.
    pub t_rp: TimeDelta,
    /// Row-active minimum.
    pub t_ras: TimeDelta,
    /// Write recovery.
    pub t_wr: TimeDelta,
    /// Time for one 32 B beat on the vault's TSV data bus. The default
    /// (4 ns) makes a vault's data bus worth 8 GB/s of payload, i.e. the
    /// ≈10 GB/s of counted bandwidth the paper measures per vault.
    pub bus_beat: TimeDelta,
}

impl DramTiming {
    /// Bank cycle time for a closed-page access (`tRAS + tRP`).
    pub fn t_rc(&self) -> TimeDelta {
        self.t_ras + self.t_rp
    }

    /// Time from access start until read data begins on the TSV bus.
    pub fn read_access(&self) -> TimeDelta {
        self.t_rcd + self.t_cl
    }
}

impl Default for DramTiming {
    /// The calibrated timing sits exactly on the protocol floor of
    /// [`HmcSpec::timing_floor`] — the sanitizer validates scheduled
    /// accesses against the floor, so deriving the default from it keeps
    /// a single source of truth.
    fn default() -> Self {
        let f = HmcSpec::default().timing_floor();
        DramTiming {
            t_rcd: f.t_rcd,
            t_cl: f.t_cl,
            t_rp: f.t_rp,
            t_ras: f.t_ras,
            t_wr: f.t_wr,
            bus_beat: f.t_ccd,
        }
    }
}

/// Vault-controller queueing structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VaultConfig {
    /// Shared input FIFO in front of the bank queues (head-of-line
    /// blocking when a bank queue fills).
    pub input_fifo_depth: usize,
    /// Depth of each per-bank queue. The paper infers one queue per bank
    /// from the Little's-law outstanding counts of Figure 17; this depth
    /// sets where those saturation knees land.
    pub bank_queue_depth: usize,
}

impl Default for VaultConfig {
    fn default() -> Self {
        VaultConfig {
            input_fifo_depth: 16,
            bank_queue_depth: 120,
        }
    }
}

/// Device-side link layer parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkLayerConfig {
    /// Requests the link input buffer can hold before the host must stall
    /// (the credit window the host controller sees).
    pub ingress_queue_depth: usize,
    /// Fixed per-packet processing time in each direction (framing, CRC
    /// check, routing) on top of raw serialization. Calibration constant.
    pub packet_overhead: TimeDelta,
    /// Additional processing time per flit of the packet (internal
    /// buffering). Calibration constant.
    pub per_flit_overhead: TimeDelta,
    /// Divides the raw lane rate to model lane-level protocol overhead
    /// (token returns, nulls). 1.0 = no derating.
    pub efficiency: f64,
    /// Aggregate drain rate of posted write data into the cube, across all
    /// links. Calibration constant reproducing the measured write
    /// bandwidth ceiling.
    pub write_drain_bytes_per_sec: u64,
    /// Posted-write buffer entries shared by the links; when full, an
    /// arriving write stalls its link's ingress (reads behind it wait
    /// too, but reads on the other link keep flowing).
    pub write_buffer_depth: usize,
    /// Raw bit-error rate of each lane. Packets failing their CRC are
    /// replayed by the link-level retry protocol (the reason the
    /// controller carries the Add-Seq#/Add-CRC stages of Figure 14).
    /// Zero disables error injection.
    pub bit_error_rate: f64,
    /// Extra latency of one link-level retry round (error detection at
    /// the receiver, retry-pointer return, replay from the retry
    /// buffer).
    pub retry_penalty: TimeDelta,
    /// Packets the link-level retry buffer can hold awaiting
    /// acknowledgement (per direction). The HMC spec keeps every
    /// transmitted packet in the transmitter's retry buffer until the
    /// receiver's retry pointer passes its sequence number.
    pub retry_buffer_depth: usize,
}

impl Default for LinkLayerConfig {
    fn default() -> Self {
        LinkLayerConfig {
            ingress_queue_depth: 32,
            packet_overhead: TimeDelta::from_ps(7_000),
            per_flit_overhead: TimeDelta::ZERO,
            efficiency: 1.0,
            write_drain_bytes_per_sec: 10_800_000_000,
            write_buffer_depth: 16,
            bit_error_rate: 0.0,
            retry_penalty: TimeDelta::from_ns(120),
            retry_buffer_depth: 8,
        }
    }
}

/// Quadrant-switch and device SerDes latencies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct XbarConfig {
    /// Hop latency from a link to a vault in its own quadrant.
    pub local_hop: TimeDelta,
    /// Additional latency to reach a vault in another quadrant.
    pub remote_hop_extra: TimeDelta,
    /// Device-side deserialization pipeline (SerDes conversion on entry).
    pub ingress_latency: TimeDelta,
    /// Device-side serialization pipeline (SerDes conversion on exit).
    pub egress_latency: TimeDelta,
}

impl Default for XbarConfig {
    fn default() -> Self {
        XbarConfig {
            local_hop: TimeDelta::from_ns(4),
            remote_hop_extra: TimeDelta::from_ns(8),
            ingress_latency: TimeDelta::from_ns(60),
            egress_latency: TimeDelta::from_ns(60),
        }
    }
}

/// DRAM refresh behaviour. Refresh pressure doubles when the junction
/// exceeds the high-temperature threshold — the mechanism that couples
/// temperature back into power and bandwidth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefreshConfig {
    /// Master enable.
    pub enabled: bool,
    /// Refresh interval per vault (tREFI).
    pub interval: TimeDelta,
    /// Duration a refresh occupies all banks of a vault (tRFC).
    pub duration: TimeDelta,
}

impl Default for RefreshConfig {
    fn default() -> Self {
        RefreshConfig {
            enabled: true,
            interval: TimeDelta::from_ns(7_800),
            duration: TimeDelta::from_ns(350),
        }
    }
}

/// Full configuration of the modelled device.
#[derive(Debug, Clone, PartialEq)]
pub struct MemConfig {
    /// Device geometry (Table I column).
    pub spec: HmcSpec,
    /// Address interleaving (Figure 3).
    pub mapping: AddressMapping,
    /// External link arrangement.
    pub links: LinkConfig,
    /// DRAM timing.
    pub dram: DramTiming,
    /// Row-buffer policy.
    pub page_policy: PagePolicy,
    /// Vault controller queues.
    pub vault: VaultConfig,
    /// Device link layer.
    pub link_layer: LinkLayerConfig,
    /// Switch/SerDes latencies.
    pub xbar: XbarConfig,
    /// Refresh engine.
    pub refresh: RefreshConfig,
    /// Track written data tokens for integrity checking (costs memory in
    /// long random-write runs; stream experiments enable it).
    pub track_data: bool,
    /// Base seed for the per-link BER draw streams (link `l` uses
    /// `link_seed ^ l`). The historical default; chain topologies give each
    /// cube a distinct base so fault injection decorrelates across cubes.
    pub link_seed: u64,
}

impl Default for MemConfig {
    fn default() -> Self {
        MemConfig {
            spec: HmcSpec::default(),
            mapping: AddressMapping::default(),
            links: LinkConfig::ac510(),
            dram: DramTiming::default(),
            page_policy: PagePolicy::default(),
            vault: VaultConfig::default(),
            link_layer: LinkLayerConfig::default(),
            xbar: XbarConfig::default(),
            refresh: RefreshConfig::default(),
            track_data: false,
            link_seed: 0x11CE,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_timing_matches_calibration() {
        let t = DramTiming::default();
        // Bank cycle 128 ns: one 128 B access per bank per 128 ns is
        // 1 GB/s of payload, 1.25 GB/s counted.
        assert_eq!(t.t_rc().as_ns_f64(), 128.0);
        assert_eq!(t.read_access().as_ns_f64(), 50.0);
        // 32 B per 4 ns = 8 GB/s vault data bus.
        assert_eq!(t.bus_beat.as_ns_f64(), 4.0);
    }

    #[test]
    fn default_timing_sits_on_the_spec_floor() {
        let t = DramTiming::default();
        let f = HmcSpec::default().timing_floor();
        assert_eq!(t.t_rcd, f.t_rcd);
        assert_eq!(t.t_cl, f.t_cl);
        assert_eq!(t.t_rp, f.t_rp);
        assert_eq!(t.t_ras, f.t_ras);
        assert_eq!(t.t_wr, f.t_wr);
        assert_eq!(t.bus_beat, f.t_ccd);
        assert_eq!(t.t_rc(), f.t_rc());
    }

    #[test]
    fn default_config_is_ac510() {
        let c = MemConfig::default();
        assert_eq!(c.links.num_links(), 2);
        assert_eq!(c.spec.num_vaults(), 16);
        assert_eq!(c.page_policy, PagePolicy::ClosedPage);
        assert!(c.refresh.enabled);
        assert!(!c.track_data);
    }

    #[test]
    fn write_drain_and_buffer_defaults() {
        let c = MemConfig::default();
        assert_eq!(c.link_layer.write_drain_bytes_per_sec, 10_800_000_000);
        assert_eq!(c.link_layer.write_buffer_depth, 16);
    }

    #[test]
    fn queue_depths_are_positive() {
        let v = VaultConfig::default();
        assert!(v.input_fifo_depth > 0);
        assert!(v.bank_queue_depth > 0);
        assert!(LinkLayerConfig::default().ingress_queue_depth > 0);
    }
}
