//! An HBM-style stacked-DRAM backend: many narrow pseudo-channels behind
//! a wide, fixed-latency PHY — and **no** packet-link/SerDes layer.
//!
//! The contrast with the HMC device is the point (grounded in
//! "Benchmarking High Bandwidth Memory on FPGAs"): HBM trades HMC's
//! serialized, packetized, CRC-protected links for a 2.5D interposer
//! crossing with pipeline latency only, and exposes its concurrency as
//! 32 independent pseudo-channels instead of 16 vaults behind a
//! crossbar. Under the same host pipeline this shows up as (a) lower
//! unloaded latency — no serialization, packetization, or retry-buffer
//! cost, and (b) roughly twice the sustainable channels-in-flight.
//!
//! Each pseudo-channel reuses the vault controller machinery
//! ([`Vault`]): an input FIFO, per-bank queues, and a shared data bus,
//! with the same closed-page timing discipline the sanitizer's FSM
//! validates. Requests cross the PHY in FIFO order per port, route to
//! their pseudo-channel by address bits, and responses cross back with
//! the same fixed latency.

use std::collections::BTreeMap;

use hmc_types::packet::OpKind;
use hmc_types::{
    AddressMapping, HmcSpec, HmcVersion, MemoryRequest, MemoryResponse, Time, TimeDelta,
};
use mem_backend::{AddressLayout, BackendOutput, CoreStats, MemoryBackend};
use sim_engine::{BoundedQueue, EventQueue, MetricsSampler, Sanitizer, Tracer};

use crate::config::{DramTiming, MemConfig, PagePolicy, RefreshConfig, VaultConfig};
use crate::vault::Vault;

/// Configuration of the HBM-style backend.
#[derive(Debug, Clone, PartialEq)]
pub struct HbmConfig {
    /// Stack geometry. The vault count is the pseudo-channel count; the
    /// default is the 32-vault HMC 2.0 geometry, matching HBM2's 32
    /// pseudo-channels.
    pub spec: HmcSpec,
    /// Address bit-field layout (shared with the host's generators).
    pub mapping: AddressMapping,
    /// Per-bank DRAM timing (the stacked-DRAM timing class).
    pub dram: DramTiming,
    /// Page policy (closed-page by default, like the HMC model).
    pub page_policy: PagePolicy,
    /// Per-pseudo-channel controller queue depths.
    pub vault: VaultConfig,
    /// Per-channel refresh cadence.
    pub refresh: RefreshConfig,
    /// Host-facing ports. Wide parallel AXI-style ports, not SerDes
    /// links; the count mirrors the host's link arrangement.
    pub num_ports: usize,
    /// Request slots per port (the credit window the host sees).
    pub port_queue_depth: usize,
    /// One-way PHY/interposer crossing latency, paid once per request
    /// and once per response — the whole link-layer cost of this
    /// technology.
    pub phy_latency: TimeDelta,
}

impl Default for HbmConfig {
    fn default() -> Self {
        let mem = MemConfig::default();
        HbmConfig {
            spec: HmcSpec::of(HmcVersion::Hmc2),
            mapping: mem.mapping,
            dram: mem.dram,
            page_policy: PagePolicy::ClosedPage,
            vault: mem.vault,
            refresh: mem.refresh,
            num_ports: 2,
            port_queue_depth: 32,
            phy_latency: TimeDelta::from_ns(10),
        }
    }
}

#[derive(Debug, Clone)]
enum HbmEvent {
    /// A request finished crossing the PHY on `port` and is eligible to
    /// route to its pseudo-channel.
    Arrive { port: usize },
    /// A pseudo-channel's earliest busy bank frees up.
    Wake { channel: u16, seq: u64 },
    /// Per-channel refresh tick.
    Refresh { channel: u16 },
    /// A response finished crossing the PHY back toward the host.
    Return { port: usize, resp: MemoryResponse },
}

/// The HBM-style device: 32 pseudo-channels, fixed-latency PHY, no
/// SerDes. Drive it through the [`MemoryBackend`] trait.
#[derive(Debug)]
pub struct HbmDevice {
    cfg: HbmConfig,
    /// Per-port ingress FIFO (the credit pool).
    ports: Vec<BoundedQueue<MemoryRequest>>,
    /// Per-port count of queued requests that already crossed the PHY.
    eligible: Vec<usize>,
    channels: Vec<Vault>,
    /// Port each in-flight request arrived on (response routing).
    arrival_port: BTreeMap<u64, usize>,
    wake_at: Vec<Option<Time>>,
    wake_seq: Vec<u64>,
    events: EventQueue<HbmEvent>,
    event_bound: usize,
    refresh_multiplier: u32,
    data_read_bytes: u64,
    data_write_bytes: u64,
    now: Time,
    scratch: Vec<(Time, HbmEvent)>,
    tracer: Tracer,
    sanitizer: Sanitizer,
}

impl HbmDevice {
    /// Builds an idle device from its configuration.
    pub fn new(cfg: HbmConfig) -> Self {
        let n = cfg.spec.num_vaults() as usize;
        // The vault controller reads geometry, mapping, timing, policy,
        // and queue depths out of a MemConfig; build one carrying the
        // HBM parameters so each pseudo-channel sees them.
        let mem = MemConfig {
            spec: cfg.spec,
            mapping: cfg.mapping,
            dram: cfg.dram,
            page_policy: cfg.page_policy,
            vault: cfg.vault,
            ..MemConfig::default()
        };
        let channels: Vec<Vault> = (0..n)
            .map(|c| Vault::new(u16::try_from(c).expect("channel index fits u16"), &mem))
            .collect();
        let mut events = EventQueue::with_capacity(1024);
        if cfg.refresh.enabled {
            let step = cfg.refresh.interval / n as u64;
            for c in 0..n {
                events.push(
                    Time::ZERO + step * (c as u64 + 1),
                    HbmEvent::Refresh {
                        channel: u16::try_from(c).expect("channel index fits u16"),
                    },
                );
            }
        }
        // Structural ceiling on pending events: one arrival per port
        // slot, one return per bank-queue entry, one wake + one refresh
        // per channel, with slack.
        let event_bound = cfg.num_ports * cfg.port_queue_depth
            + n * (cfg.vault.input_fifo_depth
                + cfg.spec.banks_per_vault() as usize * cfg.vault.bank_queue_depth)
            + 2 * n
            + 64;
        HbmDevice {
            ports: (0..cfg.num_ports)
                .map(|_| BoundedQueue::new(cfg.port_queue_depth))
                .collect(),
            eligible: vec![0; cfg.num_ports],
            cfg,
            channels,
            arrival_port: BTreeMap::new(),
            wake_at: vec![None; n],
            wake_seq: vec![0; n],
            events,
            event_bound,
            refresh_multiplier: 1,
            data_read_bytes: 0,
            data_write_bytes: 0,
            now: Time::ZERO,
            scratch: Vec::new(),
            tracer: Tracer::new(&hmc_types::trace::Stage::NAMES),
            sanitizer: Sanitizer::new(),
        }
    }

    /// The device configuration.
    pub fn config(&self) -> &HbmConfig {
        &self.cfg
    }

    fn channel_of(&self, req: &MemoryRequest) -> usize {
        self.cfg
            .mapping
            .decode(req.addr, &self.cfg.spec)
            .vault
            .index() as usize
    }

    /// Moves PHY-crossed requests from port FIFO heads into their
    /// pseudo-channel input FIFOs (head-of-line blocking per port).
    fn route_port(&mut self, port: usize, now: Time, out: &mut [BackendOutput]) {
        while self.eligible[port] > 0 {
            let Some(req) = self.ports[port].front().copied() else {
                break;
            };
            let c = self.channel_of(&req);
            if !self.channels[c].has_input_space() {
                break;
            }
            let req = self.ports[port].pop(now).expect("front() was Some");
            self.eligible[port] -= 1;
            self.sanitizer.credit_release(port, now);
            self.channels[c]
                .accept(req, now)
                .expect("checked for space");
            self.arrival_port.insert(req.id.value(), port);
            self.pump_channel(c, now, out);
        }
    }

    /// Drains a pseudo-channel's queues, starts every ready bank,
    /// schedules the response PHY crossings, and re-arms the wake.
    fn pump_channel(&mut self, c: usize, now: Time, _out: &mut [BackendOutput]) {
        let mut freed = 0;
        let mut started = Vec::new();
        loop {
            let moved = self.channels[c].drain_input(now);
            freed += moved;
            let before = started.len();
            self.channels[c].start_ready_checked(now, &mut started, &mut self.sanitizer);
            if moved == 0 && started.len() == before {
                break;
            }
        }
        for op in started {
            match op.req.op {
                OpKind::Read => self.data_read_bytes += op.req.size.bytes(),
                OpKind::Write => self.data_write_bytes += op.req.size.bytes(),
            }
            let port = self
                .arrival_port
                .remove(&op.req.id.value())
                .expect("every routed request recorded its port");
            let resp = MemoryResponse {
                id: op.req.id,
                port: op.req.port,
                tag: op.req.tag,
                op: op.req.op,
                size: op.req.size,
                cube: op.req.cube,
                addr: op.req.addr,
                issued_at: op.req.issued_at,
                completed_at: op.response_at,
                data_token: op.req.data_token,
                tenant: op.req.tenant,
            };
            self.events.push(
                op.response_at + self.cfg.phy_latency,
                HbmEvent::Return { port, resp },
            );
        }
        if freed > 0 {
            // Freed input slots may unblock any port's head.
            for p in 0..self.ports.len() {
                self.retry_port(p, now);
            }
        }
        self.arm_wake(c, now);
    }

    /// Re-checks a port whose head may have been blocked on a full
    /// channel FIFO. Split from [`route_port`] to keep the re-entry
    /// out of `pump_channel`'s recursion (freed slots only move FIFO
    /// heads; any bank starts they enable come on the next wake).
    fn retry_port(&mut self, port: usize, now: Time) {
        while self.eligible[port] > 0 {
            let Some(req) = self.ports[port].front().copied() else {
                break;
            };
            let c = self.channel_of(&req);
            if !self.channels[c].has_input_space() {
                break;
            }
            let req = self.ports[port].pop(now).expect("front() was Some");
            self.eligible[port] -= 1;
            self.sanitizer.credit_release(port, now);
            self.channels[c]
                .accept(req, now)
                .expect("checked for space");
            self.arrival_port.insert(req.id.value(), port);
            self.arm_wake(c, now);
        }
    }

    /// Arms a channel's single live dispatch opportunity (same
    /// supersede-by-sequence discipline as the HMC device).
    fn arm_wake(&mut self, c: usize, now: Time) {
        if self.channels[c].queued() == 0 {
            return;
        }
        let Some(t) = self.channels[c].next_bank_ready() else {
            return;
        };
        let t = t.max(now + TimeDelta::from_ps(1));
        if let Some(w) = self.wake_at[c] {
            if w <= t {
                return;
            }
        }
        self.wake_seq[c] += 1;
        self.wake_at[c] = Some(t);
        self.events.push(
            t,
            HbmEvent::Wake {
                channel: u16::try_from(c).expect("channel index fits u16"),
                seq: self.wake_seq[c],
            },
        );
    }

    fn handle(&mut self, ev: HbmEvent, now: Time, out: &mut Vec<BackendOutput>) {
        match ev {
            HbmEvent::Arrive { port } => {
                self.eligible[port] += 1;
                self.route_port(port, now, out);
            }
            HbmEvent::Wake { channel, seq } => {
                let c = channel as usize;
                if seq != self.wake_seq[c] {
                    return; // superseded
                }
                self.wake_at[c] = None;
                self.pump_channel(c, now, out);
            }
            HbmEvent::Refresh { channel } => {
                let c = channel as usize;
                self.channels[c].hold_all(now + self.cfg.refresh.duration);
                let next = now + self.cfg.refresh.interval / u64::from(self.refresh_multiplier);
                self.events.push(next, HbmEvent::Refresh { channel });
                self.arm_wake(c, now);
            }
            HbmEvent::Return { port, resp } => {
                out.push(BackendOutput {
                    resp: MemoryResponse {
                        completed_at: now,
                        ..resp
                    },
                    link: port,
                    at: now,
                });
            }
        }
    }
}

impl MemoryBackend for HbmDevice {
    fn label(&self) -> &'static str {
        "hbm"
    }

    fn num_links(&self) -> usize {
        self.ports.len()
    }

    fn address_layout(&self) -> AddressLayout {
        // The pseudo-channel field occupies the mapping's vault bits —
        // same bits the host's generators interleave on.
        let mut l =
            AddressLayout::of_mapping("hbm-pseudo-channel", self.cfg.mapping, &self.cfg.spec);
        let vault = l.get("vault").expect("of_mapping defines vault");
        l = AddressLayout::new("hbm-pseudo-channel")
            .field("vault", vault.shift, vault.width)
            .field("channel", vault.shift, vault.width)
            .field(
                "bank",
                self.cfg.mapping.bank_shift(&self.cfg.spec),
                self.cfg.spec.bank_bits(),
            )
            .field(
                "row",
                self.cfg.mapping.row_shift(&self.cfg.spec),
                64 - self.cfg.mapping.row_shift(&self.cfg.spec),
            );
        l
    }

    fn free_slots(&self, link: usize) -> usize {
        self.ports[link].free()
    }

    fn submit(&mut self, link: usize, req: MemoryRequest, now: Time) -> Result<(), MemoryRequest> {
        debug_assert!(now >= self.now, "submit in the past");
        self.ports[link].try_push(req, now)?;
        self.sanitizer.credit_acquire(link, now);
        self.events
            .push(now + self.cfg.phy_latency, HbmEvent::Arrive { port: link });
        Ok(())
    }

    fn next_time(&self) -> Option<Time> {
        self.events.peek_time()
    }

    fn now(&self) -> Time {
        self.now
    }

    fn pending_events(&self) -> usize {
        self.events.len()
    }

    fn advance(&mut self, until: Time, out: &mut Vec<BackendOutput>) {
        self.sanitizer
            .check_queue_bound("hbm events", self.events.len(), self.event_bound, until);
        while let Some((t, ev)) = self.events.pop_before(until) {
            self.sanitizer.check_event_time(t);
            self.now = self.now.max(t);
            self.handle(ev, t, out);
        }
        self.now = self.now.max(until);
    }

    fn advance_instant(&mut self, t: Time, out: &mut Vec<BackendOutput>) {
        self.sanitizer
            .check_queue_bound("hbm events", self.events.len(), self.event_bound, t);
        let mut batch = std::mem::take(&mut self.scratch);
        loop {
            batch.clear();
            if self.events.pop_until(t, &mut batch) == 0 {
                break;
            }
            for (at, ev) in batch.drain(..) {
                debug_assert_eq!(at, t, "advance_instant needs the exact next-event time");
                self.sanitizer.check_event_time(at);
                self.now = self.now.max(at);
                self.handle(ev, at, out);
            }
        }
        self.scratch = batch;
        self.now = self.now.max(t);
    }

    fn events_processed(&self) -> u64 {
        self.events.total_popped()
    }

    fn total_queued(&self) -> usize {
        self.ports.iter().map(BoundedQueue::len).sum::<usize>()
            + self.channels.iter().map(Vault::queued).sum::<usize>()
    }

    fn channels_in_flight(&self, now: Time) -> usize {
        self.channels
            .iter()
            .filter(|c| c.queued() > 0 || c.busy_banks(now) > 0)
            .count()
    }

    fn core_stats(&self) -> CoreStats {
        let reads: u64 = self.channels.iter().map(|c| c.stats().reads).sum();
        let writes: u64 = self.channels.iter().map(|c| c.stats().writes).sum();
        CoreStats {
            reads_completed: reads,
            writes_completed: writes,
            data_read_bytes: self.data_read_bytes,
            data_write_bytes: self.data_write_bytes,
            // No packetization: wire traffic is the payload itself.
            bytes_up: self.data_write_bytes,
            bytes_down: self.data_read_bytes,
        }
    }

    fn sample_metrics(&self, at: Time, s: &mut MetricsSampler) {
        s.record("device.vault_queued", at, self.total_queued() as f64);
        let busy: usize = self.channels.iter().map(|c| c.busy_banks(at)).sum();
        s.record("device.busy_banks", at, busy as f64);
        s.record(
            "device.channels_in_flight",
            at,
            self.channels_in_flight(at) as f64,
        );
        let credits: usize = self.ports.iter().map(BoundedQueue::free).sum();
        s.record("device.ingress_credits", at, credits as f64);
    }

    fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    fn tracer_mut(&mut self) -> &mut Tracer {
        &mut self.tracer
    }

    fn enable_sanitizer(&mut self) {
        let floor = match self.cfg.page_policy {
            PagePolicy::ClosedPage => Some(self.cfg.spec.timing_floor()),
            PagePolicy::OpenPage => None,
        };
        self.sanitizer.enable(floor);
        let pools = vec![self.cfg.port_queue_depth; self.ports.len()];
        self.sanitizer.set_credit_pools(&pools);
    }

    fn sanitizer(&self) -> &Sanitizer {
        &self.sanitizer
    }

    fn sanitizer_mut(&mut self) -> &mut Sanitizer {
        &mut self.sanitizer
    }

    fn diagnostic_dump(&self, at: Time) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        writeln!(s, "hbm @ {at}: {} pending events", self.events.len())
            .expect("writing to a String cannot fail");
        for (p, q) in self.ports.iter().enumerate() {
            writeln!(
                s,
                "  port {p}: queued={} eligible={}",
                q.len(),
                self.eligible[p]
            )
            .expect("writing to a String cannot fail");
        }
        for (c, ch) in self.channels.iter().enumerate() {
            if ch.queued() == 0 {
                continue;
            }
            writeln!(
                s,
                "  channel {c}: queued={} busy_banks={}",
                ch.queued(),
                ch.busy_banks(at)
            )
            .expect("writing to a String cannot fail");
        }
        s
    }

    fn set_refresh_multiplier(&mut self, m: u32) {
        self.refresh_multiplier = m.max(1);
    }

    fn refresh_multiplier(&self) -> u32 {
        self.refresh_multiplier
    }

    fn reset_after_shutdown(&mut self, resume: Time) {
        for c in 0..self.channels.len() {
            self.channels[c].reset_state(resume);
        }
        for q in &mut self.ports {
            while q.pop(resume).is_some() {}
        }
        self.eligible.iter_mut().for_each(|e| *e = 0);
        self.arrival_port.clear();
        self.events.clear();
        self.sanitizer.credit_forget_all();
        if self.cfg.refresh.enabled {
            let n = self.channels.len();
            let step = self.cfg.refresh.interval / n as u64;
            for c in 0..n {
                self.events.push(
                    resume + step * (c as u64 + 1),
                    HbmEvent::Refresh {
                        channel: u16::try_from(c).expect("channel index fits u16"),
                    },
                );
            }
        }
        self.now = self.now.max(resume);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmc_types::{Address, CubeId, PortId, RequestId, RequestSize, Tag, TenantTag};

    fn req(id: u64, addr: u64, op: OpKind) -> MemoryRequest {
        MemoryRequest {
            id: RequestId::new(id),
            port: PortId::new(0),
            tag: Tag::new(0),
            op,
            size: RequestSize::new(128).expect("valid"),
            cube: CubeId::new(0),
            addr: Address::new(addr),
            issued_at: Time::ZERO,
            data_token: 0,
            tenant: TenantTag::NONE,
        }
    }

    #[test]
    fn thirty_two_pseudo_channels() {
        let dev = HbmDevice::new(HbmConfig::default());
        assert_eq!(dev.channels.len(), 32);
        assert_eq!(dev.num_links(), 2);
        let layout = dev.address_layout();
        assert_eq!(layout.get("channel").unwrap().width, 5, "2^5 = 32 PCs");
    }

    #[test]
    fn read_latency_is_phy_plus_dram() {
        let mut dev = HbmDevice::new(HbmConfig::default());
        dev.submit(0, req(0, 0, OpKind::Read), Time::ZERO).unwrap();
        let mut out = Vec::new();
        dev.advance(Time::from_ps(10_000_000), &mut out);
        assert_eq!(out.len(), 1);
        // 10 ns PHY in + 50 ns tRCD+tCL + 16 ns bus (4 beats) + 10 ns
        // PHY out = 86 ns. No SerDes, no packetization.
        assert_eq!(out[0].at.as_ns_f64(), 86.0);
        assert_eq!(out[0].link, 0);
        let s = dev.core_stats();
        assert_eq!(s.reads_completed, 1);
        assert_eq!(s.data_read_bytes, 128);
    }

    #[test]
    fn consecutive_blocks_spread_across_channels() {
        let mut dev = HbmDevice::new(HbmConfig::default());
        for i in 0..8 {
            dev.submit(0, req(i, i * 128, OpKind::Read), Time::ZERO)
                .unwrap();
        }
        let mut out = Vec::new();
        // Past the PHY crossing (10 ns) but before the 86 ns completion:
        // all eight banks are mid-access.
        dev.advance(Time::from_ps(30_000), &mut out);
        assert!(out.is_empty());
        assert_eq!(dev.channels_in_flight(Time::from_ps(30_000)), 8);
    }

    #[test]
    fn port_credits_bound_admission() {
        let cfg = HbmConfig {
            port_queue_depth: 4,
            ..HbmConfig::default()
        };
        let mut dev = HbmDevice::new(cfg);
        assert_eq!(dev.free_slots(0), 4);
        for i in 0..4 {
            dev.submit(0, req(i, i * 128, OpKind::Read), Time::ZERO)
                .unwrap();
        }
        assert_eq!(dev.free_slots(0), 0);
        assert!(!dev.can_accept(0));
        assert!(dev.submit(0, req(9, 0, OpKind::Read), Time::ZERO).is_err());
    }

    #[test]
    fn writes_complete_and_count() {
        let mut dev = HbmDevice::new(HbmConfig::default());
        dev.submit(1, req(0, 256, OpKind::Write), Time::ZERO)
            .unwrap();
        let mut out = Vec::new();
        dev.advance(Time::from_ps(10_000_000), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].link, 1);
        assert_eq!(dev.core_stats().writes_completed, 1);
        assert_eq!(dev.core_stats().data_write_bytes, 128);
    }

    #[test]
    fn double_run_determinism() {
        let run = || {
            let mut dev = HbmDevice::new(HbmConfig::default());
            let mut out = Vec::new();
            let mut t = Time::ZERO;
            for i in 0..200u64 {
                // A deterministic scattered stream with both ops.
                let op = if i % 3 == 0 {
                    OpKind::Write
                } else {
                    OpKind::Read
                };
                let addr = (i * 12_289) % (1 << 20);
                let port = (i % 2) as usize;
                if dev.can_accept(port) {
                    dev.submit(port, req(i, addr, op), t).unwrap();
                }
                t += TimeDelta::from_ns(20);
                dev.advance(t, &mut out);
            }
            dev.advance(Time::from_ps(100_000_000), &mut out);
            (out, dev.core_stats(), dev.events_processed())
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
    }

    #[test]
    fn sanitized_run_is_clean_and_bit_identical() {
        let run = |armed: bool| {
            let mut dev = HbmDevice::new(HbmConfig::default());
            if armed {
                dev.enable_sanitizer();
            }
            let mut out = Vec::new();
            for i in 0..100u64 {
                let addr = (i * 40_961) % (1 << 22);
                dev.submit((i % 2) as usize, req(i, addr, OpKind::Read), Time::ZERO)
                    .ok();
            }
            dev.advance(Time::from_ps(100_000_000), &mut out);
            if armed {
                dev.sanitizer_mut()
                    .check_drained(Time::from_ps(100_000_000));
                assert!(
                    dev.sanitizer().report().is_clean(),
                    "{}",
                    dev.sanitizer().report()
                );
            }
            out
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn refresh_holds_channels() {
        let mut dev = HbmDevice::new(HbmConfig::default());
        // Sit past several refresh intervals with no traffic.
        let mut out = Vec::new();
        dev.advance(Time::from_ps(20_000_000_000), &mut out);
        assert!(out.is_empty());
        assert!(dev.events_processed() > 0, "refresh ticked");
    }
}
