//! The quadrant crossbar: links attach to quadrants, and packets hop to
//! other quadrants at extra latency (Section II-B of the paper).

use hmc_types::{HmcSpec, LinkConfig, TimeDelta};

use crate::config::XbarConfig;

/// Routing statistics of the crossbar.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct XbarStats {
    /// Packets delivered within the link's own quadrant.
    pub local_hops: u64,
    /// Packets that crossed to another quadrant.
    pub remote_hops: u64,
}

/// The switch connecting external links to vaults.
#[derive(Debug, Clone)]
pub struct Xbar {
    cfg: XbarConfig,
    /// Quadrant each link attaches to.
    link_quadrant: Vec<u16>,
    vaults_per_quadrant: u16,
    stats: XbarStats,
}

impl Xbar {
    /// Builds the switch for a device geometry and link arrangement. With
    /// two links the attached quadrants are 0 and 2; with four links, all
    /// four.
    pub fn new(cfg: XbarConfig, spec: &HmcSpec, links: &LinkConfig) -> Self {
        let n = links.num_links();
        let stride = spec.num_quadrants() / n;
        Xbar {
            cfg,
            link_quadrant: (0..n)
                .map(|l| u16::try_from(l * stride).expect("quadrant index fits u16"))
                .collect(),
            vaults_per_quadrant: u16::try_from(spec.vaults_per_quadrant())
                .expect("vaults per quadrant fits u16"),
            stats: XbarStats::default(),
        }
    }

    /// The quadrant link `link` attaches to.
    pub fn quadrant_of_link(&self, link: usize) -> u16 {
        self.link_quadrant[link]
    }

    /// True if `vault` is in `link`'s own quadrant.
    pub fn is_local(&self, link: usize, vault: u16) -> bool {
        vault / self.vaults_per_quadrant == self.link_quadrant[link]
    }

    /// Switch traversal latency from `link` to `vault` (or back), counting
    /// the hop statistics.
    pub fn delay(&mut self, link: usize, vault: u16) -> TimeDelta {
        if self.is_local(link, vault) {
            self.stats.local_hops += 1;
            self.cfg.local_hop
        } else {
            self.stats.remote_hops += 1;
            self.cfg.local_hop + self.cfg.remote_hop_extra
        }
    }

    /// Switch traversal latency without recording a hop (for planning).
    pub fn peek_delay(&self, link: usize, vault: u16) -> TimeDelta {
        if self.is_local(link, vault) {
            self.cfg.local_hop
        } else {
            self.cfg.local_hop + self.cfg.remote_hop_extra
        }
    }

    /// Hop counts.
    pub fn stats(&self) -> XbarStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmc_types::{HmcVersion, LinkSpeed, LinkWidth};

    fn xbar() -> Xbar {
        Xbar::new(
            XbarConfig::default(),
            &HmcSpec::of(HmcVersion::Gen2),
            &LinkConfig::ac510(),
        )
    }

    #[test]
    fn two_links_attach_to_quadrants_0_and_2() {
        let x = xbar();
        assert_eq!(x.quadrant_of_link(0), 0);
        assert_eq!(x.quadrant_of_link(1), 2);
    }

    #[test]
    fn four_links_attach_everywhere() {
        let x = Xbar::new(
            XbarConfig::default(),
            &HmcSpec::of(HmcVersion::Gen2),
            &LinkConfig::new(4, LinkWidth::Full, LinkSpeed::G15).unwrap(),
        );
        assert_eq!(
            (0..4).map(|l| x.quadrant_of_link(l)).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
    }

    #[test]
    fn local_access_is_faster() {
        let mut x = xbar();
        // Vaults 0-3 are quadrant 0 (local to link 0); vault 8 is
        // quadrant 2 (local to link 1).
        assert!(x.is_local(0, 3));
        assert!(!x.is_local(0, 8));
        assert!(x.is_local(1, 8));
        let local = x.delay(0, 0);
        let remote = x.delay(0, 15);
        assert!(remote > local);
        assert_eq!(local.as_ns_f64(), 4.0);
        assert_eq!(remote.as_ns_f64(), 12.0);
        assert_eq!(x.stats().local_hops, 1);
        assert_eq!(x.stats().remote_hops, 1);
    }

    #[test]
    fn peek_does_not_count() {
        let x = xbar();
        assert_eq!(x.peek_delay(0, 0).as_ns_f64(), 4.0);
        assert_eq!(x.stats().local_hops, 0);
    }
}
