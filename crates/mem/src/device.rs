//! The assembled HMC device: links, crossbar, vaults, refresh, and the
//! event loop tying them together.

use std::collections::{BTreeMap, VecDeque};

use hmc_types::packet::OpKind;
use hmc_types::trace::Stage;
use hmc_types::{MemoryRequest, MemoryResponse, Time, TimeDelta};
use sim_engine::fault::FaultKind;
use sim_engine::{EventQueue, MetricsSampler, Sanitizer, Tracer};

use crate::config::{MemConfig, PagePolicy};
use crate::link::{DeviceLink, OutPacket, Transfer};
use crate::store::SparseStore;
use crate::vault::Vault;
use crate::xbar::Xbar;

/// A response leaving the device, timestamped with the instant its last
/// flit crossed the link (the host's RX pipeline starts then).
///
/// This is the backend-neutral [`mem_backend::BackendOutput`] under its
/// historical device-side name; every existing construction and
/// destructuring site keeps compiling unchanged.
pub type DeviceOutput = mem_backend::BackendOutput;

/// Declares a plain counter struct plus its field-wise [`Sub`] — the
/// single source of truth for window deltas. Adding a counter here makes
/// it flow through `after - before` automatically instead of silently
/// dropping out of a hand-written delta.
///
/// [`Sub`]: std::ops::Sub
macro_rules! counter_stats {
    (
        $(#[$meta:meta])*
        pub struct $name:ident {
            $($(#[$fmeta:meta])* pub $field:ident: u64,)+
        }
    ) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
        pub struct $name {
            $($(#[$fmeta])* pub $field: u64,)+
        }

        impl std::ops::Sub for $name {
            type Output = $name;

            /// Field-wise delta: the activity between two snapshots.
            fn sub(self, before: $name) -> $name {
                $name {
                    $($field: self.$field - before.$field,)+
                }
            }
        }
    };
}

counter_stats! {
    /// Aggregated activity counters of the whole device.
    pub struct DeviceStats {
        /// Read operations completed by the DRAM banks.
        pub reads_completed: u64,
        /// Write operations completed by the DRAM banks.
        pub writes_completed: u64,
        /// Request-packet bytes received across all links.
        pub bytes_up: u64,
        /// Response-packet bytes sent across all links.
        pub bytes_down: u64,
        /// Payload bytes read from DRAM.
        pub data_read_bytes: u64,
        /// Payload bytes written to DRAM.
        pub data_write_bytes: u64,
        /// Row activations across all banks.
        pub bank_activations: u64,
        /// Open-page row hits (ablation mode only).
        pub row_hits: u64,
        /// Refresh operations performed.
        pub refreshes: u64,
        /// Crossbar local-quadrant deliveries.
        pub local_hops: u64,
        /// Crossbar remote-quadrant deliveries.
        pub remote_hops: u64,
        /// Link-level retries (injected bit errors caught by CRC).
        pub link_retries: u64,
        /// Injected link-stall fault activations across all links.
        pub link_stalls: u64,
        /// Ingress credits lost to injected token leaks.
        pub credits_leaked: u64,
        /// Requests that arrived while a copy with the same id was
        /// already routed (host timeout-driven retransmissions).
        pub duplicate_requests: u64,
        /// Responses dropped because their request id was already
        /// answered by an earlier copy.
        pub dropped_responses: u64,
    }
}

impl DeviceStats {
    /// Total SerDes traffic in both directions.
    pub fn link_bytes(&self) -> u64 {
        self.bytes_up + self.bytes_down
    }
}

#[derive(Debug, Clone)]
enum DeviceEvent {
    /// An ingress transfer attempt completes; the packet sits in the
    /// link's retry buffer until the CRC outcome acknowledges it.
    IngressAttempt {
        link: usize,
    },
    VaultArrive {
        vault: u16,
        req: MemoryRequest,
    },
    BankWake {
        vault: u16,
        seq: u64,
    },
    ResponseAtLink {
        link: usize,
        pkt: OutPacket,
    },
    /// An egress transfer attempt completes (same retry contract as
    /// ingress).
    EgressAttempt {
        link: usize,
    },
    WriteDrained {
        link: usize,
        req: MemoryRequest,
    },
    PimReturn {
        pkt: OutPacket,
    },
    Refresh {
        vault: u16,
    },
    /// Injected fault: arm a bit-error rate on a link.
    FaultBer {
        link: usize,
        ber: f64,
    },
    /// Injected fault: leak ingress credits on a link.
    FaultLeak {
        link: usize,
        count: usize,
    },
    /// Injected fault: stall a link's serializers for a duration.
    FaultStall {
        link: usize,
        duration: TimeDelta,
    },
    /// A link stall expired; restart both serializers.
    LinkWake {
        link: usize,
    },
    /// Injected fault: wedge a vault's banks for a duration.
    FaultWedge {
        vault: u16,
        duration: TimeDelta,
    },
}

/// The pseudo-link id marking requests injected by logic-layer (PIM)
/// compute units. Their responses return through [`DeviceOutput::link`]
/// with this value instead of leaving over SerDes.
pub const PIM_LINK: usize = usize::MAX;

/// The modelled 3D-stacked memory cube.
///
/// The device is an event-driven component: the host [`submit`]s requests
/// to a link (after checking [`can_accept`]) and periodically calls
/// [`advance`], collecting completed responses. [`next_time`] exposes the
/// earliest pending internal event so a caller can interleave the device
/// with other simulation actors deterministically.
///
/// [`submit`]: HmcDevice::submit
/// [`can_accept`]: HmcDevice::can_accept
/// [`advance`]: HmcDevice::advance
/// [`next_time`]: HmcDevice::next_time
#[derive(Debug)]
pub struct HmcDevice {
    cfg: MemConfig,
    links: Vec<DeviceLink>,
    vaults: Vec<Vault>,
    /// Input-FIFO slots promised to in-flight requests, per vault.
    vault_reserved: Vec<usize>,
    /// Time of the single live bank wake per vault.
    wake_at: Vec<Option<Time>>,
    /// Sequence number of the live wake; stale events are dropped.
    wake_seq: Vec<u64>,
    xbar: Xbar,
    store: Option<SparseStore>,
    /// Posted-write buffer occupancy (shared across links).
    write_buf_used: usize,
    /// Drain cursor of the posted-write path.
    drain_free_at: Time,
    /// Drained writes waiting for a vault input slot.
    drained_waiting: VecDeque<(usize, MemoryRequest)>,
    /// Link each in-flight request arrived on (keyed by request id;
    /// ordered map so any state-affecting iteration stays deterministic).
    arrival_link: BTreeMap<u64, usize>,
    events: EventQueue<DeviceEvent>,
    /// Structural bound on pending events (with slack) the sanitizer's
    /// queue check uses.
    event_bound: usize,
    refresh_multiplier: u32,
    refreshes: u64,
    data_read_bytes: u64,
    data_write_bytes: u64,
    /// Routed requests whose id was already in flight (host
    /// retransmissions overtaking their originals).
    duplicate_requests: u64,
    /// Completed responses dropped because an earlier copy answered.
    dropped_responses: u64,
    now: Time,
    /// Reusable drain buffer for [`HmcDevice::advance_instant`].
    scratch: Vec<(Time, DeviceEvent)>,
    tracer: Tracer,
    sanitizer: Sanitizer,
}

impl HmcDevice {
    /// Builds an idle device from its configuration.
    pub fn new(cfg: MemConfig) -> Self {
        let n_vaults = cfg.spec.num_vaults() as usize;
        let n_links = cfg.links.num_links() as usize;
        let links = (0..n_links)
            .map(|l| DeviceLink::with_seed(cfg.links, cfg.link_layer, cfg.link_seed ^ l as u64))
            .collect();
        let vaults = (0..n_vaults)
            .map(|v| Vault::new(u16::try_from(v).expect("vault index fits u16"), &cfg))
            .collect();
        let xbar = Xbar::new(cfg.xbar, &cfg.spec, &cfg.links);
        // Bound pending events by what can be in flight at once: each
        // vault-FIFO slot, each link-ingress slot, and one refresh per
        // vault own at most one scheduled event each.
        let event_capacity = n_vaults * (cfg.vault.input_fifo_depth + 1)
            + n_links * (cfg.link_layer.ingress_queue_depth + cfg.link_layer.write_buffer_depth)
            + 64;
        // Queue-bound invariant: the capacity accounting above, plus one
        // possible ResponseAtLink/PimReturn per bank and per reserved
        // vault slot, plus slack — exceeding this means an event leak.
        let event_bound = event_capacity
            + cfg.spec.total_banks() as usize
            + n_vaults * cfg.vault.input_fifo_depth
            + 64;
        let mut events = EventQueue::with_capacity(event_capacity);
        if cfg.refresh.enabled {
            // Stagger vault refreshes across the interval (none at t = 0,
            // so cold-start accesses are not refresh-delayed).
            let step = cfg.refresh.interval / n_vaults as u64;
            for v in 0..n_vaults {
                events.push(
                    Time::ZERO + step * (v as u64 + 1),
                    DeviceEvent::Refresh {
                        vault: u16::try_from(v).expect("vault index fits u16"),
                    },
                );
            }
        }
        HmcDevice {
            store: cfg.track_data.then(SparseStore::new),
            links,
            vaults,
            vault_reserved: vec![0; n_vaults],
            wake_at: vec![None; n_vaults],
            wake_seq: vec![0; n_vaults],
            xbar,
            write_buf_used: 0,
            drain_free_at: Time::ZERO,
            drained_waiting: VecDeque::new(),
            arrival_link: BTreeMap::new(),
            events,
            event_bound,
            refresh_multiplier: 1,
            refreshes: 0,
            data_read_bytes: 0,
            data_write_bytes: 0,
            duplicate_requests: 0,
            dropped_responses: 0,
            now: Time::ZERO,
            scratch: Vec::new(),
            tracer: Tracer::new(&Stage::NAMES),
            sanitizer: Sanitizer::new(),
            cfg,
        }
    }

    /// The device configuration.
    pub fn config(&self) -> &MemConfig {
        &self.cfg
    }

    /// True if link `link` has an ingress credit for another request.
    pub fn can_accept(&self, link: usize) -> bool {
        self.links[link].can_accept()
    }

    /// Free ingress credits on `link` (the window the host flow control
    /// sees).
    pub fn ingress_free(&self, link: usize) -> usize {
        self.links[link].ingress_free()
    }

    /// Submits a request packet that finished crossing the wire onto link
    /// `link` at `now`.
    ///
    /// # Errors
    ///
    /// Hands the request back if the link's ingress buffer is full; callers
    /// should gate on [`can_accept`](HmcDevice::can_accept).
    pub fn submit(
        &mut self,
        link: usize,
        req: MemoryRequest,
        now: Time,
    ) -> Result<(), MemoryRequest> {
        debug_assert!(now >= self.now, "submit in the past");
        self.links[link].enqueue_ingress(req, now)?;
        // A request accepted into the ingress window holds one credit
        // until ingress processing pops it (see kick_ingress).
        self.sanitizer.credit_acquire(link, now);
        self.tracer.begin(req.trace_id(), now);
        self.kick_ingress(link, now);
        Ok(())
    }

    /// Submits a request from a logic-layer (PIM) compute unit: it enters
    /// the target vault directly — no SerDes, no packetization, no
    /// posted-write drain — paying only a short in-stack hop. The response
    /// comes back through [`advance`](HmcDevice::advance) with
    /// [`DeviceOutput::link`] set to [`PIM_LINK`].
    ///
    /// # Errors
    ///
    /// Hands the request back when the target vault's input FIFO has no
    /// free slot (the PIM unit should retry after a completion).
    pub fn pim_submit(&mut self, req: MemoryRequest, now: Time) -> Result<(), MemoryRequest> {
        debug_assert!(now >= self.now, "submit in the past");
        let loc = self.cfg.mapping.decode(req.addr, &self.cfg.spec);
        let v = loc.vault.index() as usize;
        if self.vault_reserved[v] >= self.cfg.vault.input_fifo_depth {
            return Err(req);
        }
        self.vault_reserved[v] += 1;
        self.arrival_link.insert(req.id.value(), PIM_LINK);
        self.tracer.begin(req.trace_id(), now);
        self.events.push(
            now + self.cfg.xbar.local_hop,
            DeviceEvent::VaultArrive {
                vault: loc.vault.index(),
                req,
            },
        );
        Ok(())
    }

    /// Free input-FIFO slots of the vault that `addr` maps to — the
    /// admission window a PIM unit sees.
    pub fn pim_free_slots(&self, addr: hmc_types::Address) -> usize {
        let loc = self.cfg.mapping.decode(addr, &self.cfg.spec);
        self.cfg.vault.input_fifo_depth - self.vault_reserved[loc.vault.index() as usize]
    }

    /// Earliest pending internal event, if any.
    pub fn next_time(&self) -> Option<Time> {
        self.events.peek_time()
    }

    /// The device's local clock (the time of the last processed event).
    pub fn now(&self) -> Time {
        self.now
    }

    /// Pending internal events (diagnostics).
    pub fn pending_events(&self) -> usize {
        self.events.len()
    }

    /// Processes every internal event scheduled at or before `until`,
    /// appending responses that left the device to `out`.
    pub fn advance(&mut self, until: Time, out: &mut Vec<DeviceOutput>) {
        self.sanitizer.check_queue_bound(
            "device events",
            self.events.len(),
            self.event_bound,
            until,
        );
        while let Some((t, ev)) = self.events.pop_before(until) {
            self.sanitizer.check_event_time(t);
            self.now = self.now.max(t);
            self.handle(ev, t, out);
        }
        self.now = self.now.max(until);
    }

    /// [`advance`](HmcDevice::advance) specialized to the simulation
    /// loop's hot path: `t` must be the exact next-event instant (so every
    /// pending event at or before `t` sits at exactly `t`). The whole
    /// instant drains in one [`EventQueue::pop_until`] batch; events a
    /// handler schedules at `t` itself join a follow-up batch, which
    /// preserves the pop-one-at-a-time order because their sequence
    /// numbers are larger than every drained event's.
    pub fn advance_instant(&mut self, t: Time, out: &mut Vec<DeviceOutput>) {
        self.sanitizer
            .check_queue_bound("device events", self.events.len(), self.event_bound, t);
        let mut batch = std::mem::take(&mut self.scratch);
        loop {
            batch.clear();
            if self.events.pop_until(t, &mut batch) == 0 {
                break;
            }
            for (at, ev) in batch.drain(..) {
                debug_assert_eq!(at, t, "advance_instant needs the exact next-event time");
                self.sanitizer.check_event_time(at);
                self.now = self.now.max(at);
                self.handle(ev, at, out);
            }
        }
        self.scratch = batch;
        self.now = self.now.max(t);
    }

    /// Total device events processed since construction.
    pub fn events_processed(&self) -> u64 {
        self.events.total_popped()
    }

    /// Current refresh-rate multiplier (≥ 1; 2 in the high-temperature
    /// regime).
    pub fn refresh_multiplier(&self) -> u32 {
        self.refresh_multiplier
    }

    /// Sets the refresh-rate multiplier — the thermal model raises it when
    /// the junction runs hot.
    pub fn set_refresh_multiplier(&mut self, m: u32) {
        self.refresh_multiplier = m.max(1);
    }

    /// Wipes the backing store, modelling the data loss of a thermal
    /// shutdown.
    pub fn wipe_data(&mut self) {
        if let Some(s) = &mut self.store {
            s.wipe();
        }
    }

    /// Schedules a device-level fault from a fault scenario as an
    /// ordinary simulation event at `at`. Thermal spikes are
    /// system-level (the thermal model and recovery sequence live above
    /// the device) and are ignored here.
    pub fn schedule_fault(&mut self, at: Time, kind: FaultKind) {
        let ev = match kind {
            FaultKind::FlitCorruption { link, ber } => DeviceEvent::FaultBer { link, ber },
            FaultKind::CreditLeak { link, count } => DeviceEvent::FaultLeak { link, count },
            FaultKind::LinkStall { link, duration } => DeviceEvent::FaultStall { link, duration },
            FaultKind::VaultWedge { vault, duration } => DeviceEvent::FaultWedge {
                vault: u16::try_from(vault).expect("vault index fits u16"),
                duration,
            },
            FaultKind::ThermalSpike { .. } => return,
        };
        self.events.push(at, ev);
    }

    /// Thermal shutdown: drops every in-flight request, queued packet,
    /// pending event, and the DRAM contents, then re-initializes the
    /// device so it resumes service at `resume`. Traffic counters, the
    /// lifecycle tracer, and the sanitizer survive; ingress credits held
    /// by dropped requests are forgotten (the host replays from its own
    /// in-flight window).
    pub fn reset_after_shutdown(&mut self, resume: Time) {
        self.events.clear();
        for l in &mut self.links {
            l.reset_transport(resume);
        }
        self.sanitizer.credit_forget_all();
        for v in 0..self.vaults.len() {
            self.vaults[v].reset_state(resume);
            self.vault_reserved[v] = 0;
            self.wake_at[v] = None;
        }
        self.write_buf_used = 0;
        self.drain_free_at = resume;
        self.drained_waiting.clear();
        self.arrival_link.clear();
        self.wipe_data();
        if self.cfg.refresh.enabled {
            let n_vaults = self.vaults.len();
            let step = self.cfg.refresh.interval / n_vaults as u64;
            for v in 0..n_vaults {
                self.events.push(
                    resume + step * (v as u64 + 1),
                    DeviceEvent::Refresh {
                        vault: u16::try_from(v).expect("vault index fits u16"),
                    },
                );
            }
        }
        self.now = self.now.max(resume);
    }

    /// Read-only access to the backing store (when `track_data` is on).
    pub fn store(&self) -> Option<&SparseStore> {
        self.store.as_ref()
    }

    /// Requests currently queued inside vault `v` (input FIFO + bank
    /// queues).
    pub fn vault_queued(&self, v: usize) -> usize {
        self.vaults[v].queued()
    }

    /// Requests queued across all vaults.
    pub fn total_queued(&self) -> usize {
        self.vaults.iter().map(|v| v.queued()).sum()
    }

    /// Aggregated activity counters.
    pub fn stats(&self) -> DeviceStats {
        let mut s = DeviceStats {
            refreshes: self.refreshes,
            data_read_bytes: self.data_read_bytes,
            data_write_bytes: self.data_write_bytes,
            duplicate_requests: self.duplicate_requests,
            dropped_responses: self.dropped_responses,
            ..DeviceStats::default()
        };
        for v in &self.vaults {
            let vs = v.stats();
            s.reads_completed += vs.reads;
            s.writes_completed += vs.writes;
            s.bank_activations += v.activations();
            s.row_hits += v.row_hits();
        }
        for l in &self.links {
            let ls = l.stats();
            s.bytes_up += ls.bytes_up;
            s.bytes_down += ls.bytes_down;
            s.link_retries += ls.retries;
            s.link_stalls += ls.stall_events;
            s.credits_leaked += ls.leaked_credits;
        }
        let xs = self.xbar.stats();
        s.local_hops = xs.local_hops;
        s.remote_hops = xs.remote_hops;
        s
    }

    /// The device-side lifecycle tracer (disabled unless
    /// [`tracer_mut`](HmcDevice::tracer_mut) enabled it).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Mutable tracer access (enable tracing before submitting work).
    pub fn tracer_mut(&mut self) -> &mut Tracer {
        &mut self.tracer
    }

    /// Arms the protocol sanitizer: the per-bank DRAM timing FSM (only
    /// under the closed-page policy — open-page row hits legally undercut
    /// the closed-page floor), the per-link ingress credit ledger, and the
    /// event-order/queue-bound checks. Enable before submitting work.
    pub fn enable_sanitizer(&mut self) {
        let floor = match self.cfg.page_policy {
            PagePolicy::ClosedPage => Some(self.cfg.spec.timing_floor()),
            PagePolicy::OpenPage => None,
        };
        self.sanitizer.enable(floor);
        let pools = vec![self.cfg.link_layer.ingress_queue_depth; self.links.len()];
        self.sanitizer.set_credit_pools(&pools);
    }

    /// The device-side sanitizer (disabled unless
    /// [`enable_sanitizer`](HmcDevice::enable_sanitizer) armed it).
    pub fn sanitizer(&self) -> &Sanitizer {
        &self.sanitizer
    }

    /// Mutable sanitizer access (drain checks, watchdog reporting).
    pub fn sanitizer_mut(&mut self) -> &mut Sanitizer {
        &mut self.sanitizer
    }

    /// Deterministic snapshot of the device's internal occupancies — the
    /// body of the watchdog's diagnostic dump.
    pub fn diagnostic_dump(&self, at: Time) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        writeln!(s, "device @ {at}: {} pending events", self.events.len())
            .expect("writing to a String cannot fail");
        for (l, link) in self.links.iter().enumerate() {
            writeln!(
                s,
                "  link {l}: ingress_free={} ingress_backlog={} egress_backlog={} blocked={}",
                link.ingress_free(),
                link.ingress_backlog(),
                link.egress_backlog(),
                link.blocked_request().is_some(),
            )
            .expect("writing to a String cannot fail");
        }
        writeln!(
            s,
            "  write_buf={}/{} drained_waiting={}",
            self.write_buf_used,
            self.cfg.link_layer.write_buffer_depth,
            self.drained_waiting.len()
        )
        .expect("writing to a String cannot fail");
        for (v, vault) in self.vaults.iter().enumerate() {
            let queued = vault.queued();
            if queued == 0 && self.vault_reserved[v] == 0 {
                continue;
            }
            writeln!(
                s,
                "  vault {v}: queued={queued} reserved={} busy_banks={} next_ready={}",
                self.vault_reserved[v],
                vault.busy_banks(at),
                vault
                    .next_bank_ready()
                    .map_or("-".to_string(), |t| t.to_string()),
            )
            .expect("writing to a String cannot fail");
        }
        s
    }

    /// Records the device's gauges into a metrics sampler at instant
    /// `at`: vault queue depth, posted-write buffer fill, busy banks,
    /// the link-level ingress-credit / egress-backlog levels, and the
    /// fault-plane counters (retries, stall windows, leaked credits).
    pub fn sample_metrics(&self, at: Time, s: &mut MetricsSampler) {
        s.record("device.vault_queued", at, self.total_queued() as f64);
        s.record("device.write_buf", at, self.write_buf_used as f64);
        let busy: usize = self.vaults.iter().map(|v| v.busy_banks(at)).sum();
        s.record("device.busy_banks", at, busy as f64);
        let credits: usize = self.links.iter().map(|l| l.ingress_free()).sum();
        s.record("device.ingress_credits", at, credits as f64);
        let egress: usize = self.links.iter().map(|l| l.egress_backlog()).sum();
        s.record("device.egress_backlog", at, egress as f64);
        let retries: u64 = self.links.iter().map(|l| l.stats().retries).sum();
        s.record("device.link_retries", at, retries as f64);
        let stalls: u64 = self.links.iter().map(|l| l.stats().stall_events).sum();
        s.record("device.link_stalls", at, stalls as f64);
        let leaked: u64 = self.links.iter().map(|l| l.stats().leaked_credits).sum();
        s.record("device.credits_leaked", at, leaked as f64);
    }

    // ------------------------------------------------------------------
    // internals
    // ------------------------------------------------------------------

    fn handle(&mut self, ev: DeviceEvent, now: Time, out: &mut Vec<DeviceOutput>) {
        match ev {
            DeviceEvent::IngressAttempt { link } => match self.links[link].complete_ingress(now) {
                Transfer::Retry {
                    next_done,
                    id,
                    failures,
                } => {
                    // Close the normal ingress span at the first CRC
                    // failure; everything after is the retry stage.
                    if failures == 1 {
                        self.tracer.transition(id, Stage::LinkIngress.index(), now);
                    }
                    self.events
                        .push(next_done, DeviceEvent::IngressAttempt { link });
                }
                Transfer::Delivered {
                    payload: req,
                    retried,
                } => {
                    let stage = if retried {
                        Stage::LinkRetry
                    } else {
                        Stage::LinkIngress
                    };
                    self.tracer.transition(req.trace_id(), stage.index(), now);
                    let accepted = match req.op {
                        OpKind::Read => self.route_request(link, req, now),
                        OpKind::Write => self.try_drain(link, req, now),
                    };
                    if accepted {
                        self.links[link].finish_ingress();
                        self.kick_ingress(link, now);
                    } else {
                        self.links[link].block_head(req);
                    }
                }
            },
            DeviceEvent::VaultArrive { vault, req } => {
                self.tracer
                    .transition(req.trace_id(), Stage::XbarReq.index(), now);
                self.vaults[vault as usize]
                    .accept(req, now)
                    .expect("input FIFO slot was reserved");
                self.pump_vault(vault as usize, now, out);
            }
            DeviceEvent::BankWake { vault, seq } => {
                if seq != self.wake_seq[vault as usize] {
                    return; // superseded
                }
                self.wake_at[vault as usize] = None;
                self.pump_vault(vault as usize, now, out);
            }
            DeviceEvent::ResponseAtLink { link, pkt } => {
                self.tracer
                    .transition(pkt.req.trace_id(), Stage::XbarResp.index(), now);
                self.links[link].push_egress(pkt);
                self.kick_egress(link, now);
            }
            DeviceEvent::EgressAttempt { link } => match self.links[link].complete_egress(now) {
                Transfer::Retry {
                    next_done,
                    id,
                    failures,
                } => {
                    if failures == 1 {
                        self.tracer.transition(id, Stage::LinkEgress.index(), now);
                    }
                    self.events
                        .push(next_done, DeviceEvent::EgressAttempt { link });
                }
                Transfer::Delivered {
                    payload: pkt,
                    retried,
                } => {
                    self.links[link].finish_egress();
                    let stage = if retried {
                        Stage::LinkRetry
                    } else {
                        Stage::LinkEgress
                    };
                    self.tracer.finish(pkt.req.trace_id(), stage.index(), now);
                    out.push(DeviceOutput {
                        resp: MemoryResponse {
                            id: pkt.req.id,
                            port: pkt.req.port,
                            tag: pkt.req.tag,
                            op: pkt.req.op,
                            size: pkt.req.size,
                            cube: pkt.req.cube,
                            addr: pkt.req.addr,
                            issued_at: pkt.req.issued_at,
                            completed_at: now,
                            data_token: pkt.token,
                            tenant: pkt.req.tenant,
                        },
                        link,
                        at: now,
                    });
                    self.kick_egress(link, now);
                }
            },
            DeviceEvent::PimReturn { pkt } => {
                self.tracer
                    .finish(pkt.req.trace_id(), Stage::XbarResp.index(), now);
                out.push(DeviceOutput {
                    resp: MemoryResponse {
                        id: pkt.req.id,
                        port: pkt.req.port,
                        tag: pkt.req.tag,
                        op: pkt.req.op,
                        size: pkt.req.size,
                        cube: pkt.req.cube,
                        addr: pkt.req.addr,
                        issued_at: pkt.req.issued_at,
                        completed_at: now,
                        data_token: pkt.token,
                        tenant: pkt.req.tenant,
                    },
                    link: PIM_LINK,
                    at: now,
                });
            }
            DeviceEvent::WriteDrained { link, req } => {
                self.tracer
                    .transition(req.trace_id(), Stage::WriteDrain.index(), now);
                // The buffer slot stays held until the write lands in its
                // vault's input FIFO — otherwise the posted-write path
                // would admit writes far faster than a congested vault
                // drains them, breaking flow control.
                if self.route_request(link, req, now) {
                    self.write_buf_used -= 1;
                    self.unblock_drain_waiters(now);
                } else {
                    self.drained_waiting.push_back((link, req));
                }
            }
            DeviceEvent::Refresh { vault } => {
                let v = vault as usize;
                self.vaults[v].hold_all(now + self.cfg.refresh.duration);
                self.refreshes += 1;
                let next = now + self.cfg.refresh.interval / self.refresh_multiplier as u64;
                self.events.push(next, DeviceEvent::Refresh { vault });
                self.arm_wake(v, now);
            }
            DeviceEvent::FaultBer { link, ber } => {
                self.links[link].set_bit_error_rate(ber);
            }
            DeviceEvent::FaultLeak { link, count } => {
                self.links[link].leak_credits(count);
            }
            DeviceEvent::FaultStall { link, duration } => {
                let until = now + duration;
                self.links[link].stall_until(until);
                self.events.push(until, DeviceEvent::LinkWake { link });
            }
            DeviceEvent::LinkWake { link } => {
                self.kick_ingress(link, now);
                self.kick_egress(link, now);
            }
            DeviceEvent::FaultWedge { vault, duration } => {
                let v = vault as usize;
                self.vaults[v].hold_all(now + duration);
                self.arm_wake(v, now);
            }
        }
    }

    /// Starts ingress processing on `link` if it is idle and has queued
    /// packets.
    fn kick_ingress(&mut self, link: usize, now: Time) {
        if let Some(done) = self.links[link].start_ingress(now) {
            self.sanitizer.credit_release(link, now);
            self.events.push(done, DeviceEvent::IngressAttempt { link });
        }
    }

    fn kick_egress(&mut self, link: usize, now: Time) {
        if let Some(done) = self.links[link].start_egress(now) {
            self.events.push(done, DeviceEvent::EgressAttempt { link });
        }
    }

    /// Admits a posted write into the shared write buffer; returns false
    /// when the buffer is full (the link must stall).
    fn try_drain(&mut self, link: usize, req: MemoryRequest, now: Time) -> bool {
        if self.write_buf_used >= self.cfg.link_layer.write_buffer_depth {
            return false;
        }
        self.write_buf_used += 1;
        self.tracer
            .transition(req.trace_id(), Stage::WriteStall.index(), now);
        let payload_ps =
            req.size.bytes() * 1_000_000_000_000 / self.cfg.link_layer.write_drain_bytes_per_sec;
        let end = now.max(self.drain_free_at) + TimeDelta::from_ps(payload_ps);
        self.drain_free_at = end;
        self.events
            .push(end, DeviceEvent::WriteDrained { link, req });
        true
    }

    /// Re-admits writes stalled at link heads now that buffer slots
    /// freed.
    fn unblock_drain_waiters(&mut self, now: Time) {
        for l in 0..self.links.len() {
            if self.write_buf_used >= self.cfg.link_layer.write_buffer_depth {
                break;
            }
            let is_write = self.links[l]
                .blocked_request()
                .is_some_and(|r| r.op == OpKind::Write);
            if !is_write {
                continue;
            }
            let req = self.links[l].take_blocked().expect("checked blocked");
            let admitted = self.try_drain(l, req, now);
            debug_assert!(admitted, "buffer slot was free");
            self.kick_ingress(l, now);
        }
    }

    /// Reserves a vault slot and schedules delivery; returns false if the
    /// target vault has no free slot.
    fn route_request(&mut self, link: usize, req: MemoryRequest, now: Time) -> bool {
        let loc = self.cfg.mapping.decode(req.addr, &self.cfg.spec);
        let v = loc.vault.index() as usize;
        if self.vault_reserved[v] >= self.cfg.vault.input_fifo_depth {
            return false;
        }
        self.vault_reserved[v] += 1;
        if self.arrival_link.insert(req.id.value(), link).is_some() {
            // A host retransmission overtook its original (the first
            // copy is still in flight): remember the newer arrival link
            // and count the duplicate. Whichever copy completes first
            // answers; the other's response is dropped in pump_vault.
            self.duplicate_requests += 1;
        }
        self.tracer
            .transition(req.trace_id(), Stage::VaultStall.index(), now);
        let delay = self.xbar.delay(link, loc.vault.index()) + self.cfg.xbar.ingress_latency;
        self.events.push(
            now + delay,
            DeviceEvent::VaultArrive {
                vault: loc.vault.index(),
                req,
            },
        );
        true
    }

    /// Drains the vault's input FIFO, starts every ready bank, routes the
    /// produced responses, releases link stalls, and re-arms the vault's
    /// wake event.
    fn pump_vault(&mut self, v: usize, now: Time, _out: &mut [DeviceOutput]) {
        let mut freed = 0;
        let mut started = Vec::new();
        loop {
            let moved = self.vaults[v].drain_input(now);
            freed += moved;
            let before = started.len();
            self.vaults[v].start_ready_checked(now, &mut started, &mut self.sanitizer);
            if moved == 0 && started.len() == before {
                break;
            }
        }
        self.vault_reserved[v] -= freed;
        for op in started {
            if self.tracer.is_enabled() {
                // The bank access starts at the pump instant and the
                // vault has already committed its completion time.
                let id = op.req.trace_id();
                self.tracer.transition(id, Stage::VaultQueue.index(), now);
                self.tracer
                    .transition(id, Stage::Dram.index(), op.response_at);
            }
            let token = match op.req.op {
                OpKind::Read => {
                    self.data_read_bytes += op.req.size.bytes();
                    self.store.as_mut().map_or(0, |s| s.read(op.req.addr))
                }
                OpKind::Write => {
                    self.data_write_bytes += op.req.size.bytes();
                    if let Some(s) = &mut self.store {
                        s.write(op.req.addr, op.req.size.bytes(), op.req.data_token);
                    }
                    0
                }
            };
            let Some(link) = self.arrival_link.remove(&op.req.id.value()) else {
                // The second copy of a duplicated request: an earlier
                // copy already consumed the routing entry and will (or
                // did) answer the host. Absorb this response.
                self.dropped_responses += 1;
                continue;
            };
            if link == PIM_LINK {
                // Logic-layer consumers get their data after the in-stack
                // hop, skipping the SerDes egress entirely.
                self.events.push(
                    op.response_at + self.cfg.xbar.local_hop,
                    DeviceEvent::PimReturn {
                        pkt: OutPacket { req: op.req, token },
                    },
                );
            } else {
                let delay =
                    self.xbar.delay(link, self.vaults[v].id()) + self.cfg.xbar.egress_latency;
                self.events.push(
                    op.response_at + delay,
                    DeviceEvent::ResponseAtLink {
                        link,
                        pkt: OutPacket { req: op.req, token },
                    },
                );
            }
        }
        if freed > 0 {
            self.release_stalls(v, now);
        }
        self.arm_wake(v, now);
    }

    /// Re-tries work stalled on vault `v` now that slots freed up:
    /// drained writes first (they are oldest), then links whose head read
    /// is blocked on this vault.
    fn release_stalls(&mut self, v: usize, now: Time) {
        let mut i = 0;
        while i < self.drained_waiting.len() {
            if self.vault_reserved[v] >= self.cfg.vault.input_fifo_depth {
                return;
            }
            let targets_v = {
                let (_, req) = &self.drained_waiting[i];
                let loc = self.cfg.mapping.decode(req.addr, &self.cfg.spec);
                loc.vault.index() as usize == v
            };
            if targets_v {
                let (link, req) = self.drained_waiting.remove(i).expect("index valid");
                let routed = self.route_request(link, req, now);
                debug_assert!(routed, "slot was free");
                self.write_buf_used -= 1;
                self.unblock_drain_waiters(now);
            } else {
                i += 1;
            }
        }
        for link in 0..self.links.len() {
            if self.vault_reserved[v] >= self.cfg.vault.input_fifo_depth {
                break;
            }
            let targets_v = self.links[link].blocked_request().is_some_and(|req| {
                req.op == OpKind::Read && {
                    let loc = self.cfg.mapping.decode(req.addr, &self.cfg.spec);
                    loc.vault.index() as usize == v
                }
            });
            if !targets_v {
                continue;
            }
            let req = self.links[link].take_blocked().expect("checked blocked");
            let routed = self.route_request(link, req, now);
            debug_assert!(routed, "slot was free");
            self.kick_ingress(link, now);
        }
    }

    /// Arms the vault's single live dispatch opportunity. A live wake
    /// firing at or before the needed time is left alone; an earlier need
    /// supersedes it via the sequence number.
    fn arm_wake(&mut self, v: usize, now: Time) {
        if self.vaults[v].queued() == 0 {
            return;
        }
        let Some(t) = self.vaults[v].next_bank_ready() else {
            return;
        };
        // Guard against same-instant rescheduling loops.
        let t = t.max(now + TimeDelta::from_ps(1));
        if let Some(w) = self.wake_at[v] {
            if w <= t {
                return;
            }
        }
        self.wake_seq[v] += 1;
        self.wake_at[v] = Some(t);
        self.events.push(
            t,
            DeviceEvent::BankWake {
                vault: u16::try_from(v).expect("vault index fits u16"),
                seq: self.wake_seq[v],
            },
        );
    }
}

/// The HMC device behind the pluggable-backend seam. Every method
/// delegates to the inherent implementation above, so a `System<HmcDevice>`
/// driven through the trait is bit-identical to one calling the inherent
/// API directly.
impl mem_backend::MemoryBackend for HmcDevice {
    fn label(&self) -> &'static str {
        match self.cfg.spec.version() {
            hmc_types::HmcVersion::Gen3 => "hmc-gen3",
            _ => "hmc",
        }
    }

    fn num_links(&self) -> usize {
        self.links.len()
    }

    fn address_layout(&self) -> mem_backend::AddressLayout {
        mem_backend::AddressLayout::of_mapping(
            "hmc-low-interleave",
            self.cfg.mapping,
            &self.cfg.spec,
        )
    }

    fn can_accept(&self, link: usize) -> bool {
        HmcDevice::can_accept(self, link)
    }

    fn free_slots(&self, link: usize) -> usize {
        self.ingress_free(link)
    }

    fn submit(&mut self, link: usize, req: MemoryRequest, now: Time) -> Result<(), MemoryRequest> {
        HmcDevice::submit(self, link, req, now)
    }

    fn next_time(&self) -> Option<Time> {
        HmcDevice::next_time(self)
    }

    fn now(&self) -> Time {
        HmcDevice::now(self)
    }

    fn pending_events(&self) -> usize {
        HmcDevice::pending_events(self)
    }

    fn advance(&mut self, until: Time, out: &mut Vec<DeviceOutput>) {
        HmcDevice::advance(self, until, out);
    }

    fn advance_instant(&mut self, t: Time, out: &mut Vec<DeviceOutput>) {
        HmcDevice::advance_instant(self, t, out);
    }

    fn events_processed(&self) -> u64 {
        HmcDevice::events_processed(self)
    }

    fn total_queued(&self) -> usize {
        HmcDevice::total_queued(self)
    }

    fn channels_in_flight(&self, now: Time) -> usize {
        self.vaults
            .iter()
            .filter(|v| v.queued() > 0 || v.busy_banks(now) > 0)
            .count()
    }

    fn core_stats(&self) -> mem_backend::CoreStats {
        let s = self.stats();
        mem_backend::CoreStats {
            reads_completed: s.reads_completed,
            writes_completed: s.writes_completed,
            data_read_bytes: s.data_read_bytes,
            data_write_bytes: s.data_write_bytes,
            bytes_up: s.bytes_up,
            bytes_down: s.bytes_down,
        }
    }

    fn sample_metrics(&self, at: Time, s: &mut MetricsSampler) {
        HmcDevice::sample_metrics(self, at, s);
    }

    fn tracer(&self) -> &Tracer {
        HmcDevice::tracer(self)
    }

    fn tracer_mut(&mut self) -> &mut Tracer {
        HmcDevice::tracer_mut(self)
    }

    fn enable_sanitizer(&mut self) {
        HmcDevice::enable_sanitizer(self);
    }

    fn sanitizer(&self) -> &Sanitizer {
        HmcDevice::sanitizer(self)
    }

    fn sanitizer_mut(&mut self) -> &mut Sanitizer {
        HmcDevice::sanitizer_mut(self)
    }

    fn diagnostic_dump(&self, at: Time) -> String {
        HmcDevice::diagnostic_dump(self, at)
    }

    fn schedule_fault(&mut self, at: Time, kind: FaultKind) {
        HmcDevice::schedule_fault(self, at, kind);
    }

    fn reset_after_shutdown(&mut self, resume: Time) {
        HmcDevice::reset_after_shutdown(self, resume);
    }

    fn set_refresh_multiplier(&mut self, m: u32) {
        HmcDevice::set_refresh_multiplier(self, m);
    }

    fn refresh_multiplier(&self) -> u32 {
        HmcDevice::refresh_multiplier(self)
    }

    fn wipe_data(&mut self) {
        HmcDevice::wipe_data(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmc_types::{Address, PortId, RequestId, RequestSize, Tag};

    fn read_req(id: u64, addr: u64, size: u64) -> MemoryRequest {
        MemoryRequest {
            id: RequestId::new(id),
            port: PortId::new(0),
            tag: Tag::new((id % 64) as u16),
            op: OpKind::Read,
            size: RequestSize::new(size).unwrap(),
            cube: hmc_types::CubeId::new(0),
            addr: Address::new(addr),
            issued_at: Time::ZERO,
            data_token: 0,
            tenant: hmc_types::TenantTag::NONE,
        }
    }

    fn write_req(id: u64, addr: u64, size: u64, token: u64) -> MemoryRequest {
        MemoryRequest {
            op: OpKind::Write,
            data_token: token,
            ..read_req(id, addr, size)
        }
    }

    fn run_to_idle(dev: &mut HmcDevice, mut horizon: Time) -> Vec<DeviceOutput> {
        let mut out = Vec::new();
        // Refresh events recur forever, so cap at the horizon.
        dev.advance(horizon, &mut out);
        horizon += TimeDelta::from_us(100);
        dev.advance(horizon, &mut out);
        out
    }

    #[test]
    fn single_read_completes_with_plausible_latency() {
        let mut dev = HmcDevice::new(MemConfig::default());
        dev.submit(0, read_req(0, 0, 128), Time::ZERO).unwrap();
        let out = run_to_idle(&mut dev, Time::from_ps(1_000_000));
        assert_eq!(out.len(), 1);
        let lat = out[0].at.since(Time::ZERO).as_ns_f64();
        // In-cube latency: ingress + xbar + DRAM (50) + beats (16) + xbar +
        // egress + serialization; roughly 100-200 ns.
        assert!((80.0..250.0).contains(&lat), "in-cube latency {lat} ns");
        assert_eq!(dev.stats().reads_completed, 1);
        assert_eq!(dev.stats().bytes_up, 16);
        assert_eq!(dev.stats().bytes_down, 144);
    }

    #[test]
    fn write_then_read_returns_token() {
        let cfg = MemConfig {
            track_data: true,
            ..MemConfig::default()
        };
        let mut dev = HmcDevice::new(cfg);
        dev.submit(0, write_req(0, 0x400, 128, 0xABCD), Time::ZERO)
            .unwrap();
        let out = run_to_idle(&mut dev, Time::from_ps(1_000_000));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].resp.op, OpKind::Write);
        let t1 = dev.now();
        dev.submit(0, read_req(1, 0x400, 128), t1).unwrap();
        let out2 = run_to_idle(&mut dev, t1 + TimeDelta::from_us(1));
        assert_eq!(out2.len(), 1);
        assert_eq!(out2[0].resp.data_token, 0xABCD);
        assert!(dev
            .store()
            .unwrap()
            .verify(Address::new(0x400), 128, 0xABCD));
    }

    #[test]
    fn responses_return_on_arrival_link() {
        let mut dev = HmcDevice::new(MemConfig::default());
        dev.submit(1, read_req(0, 0, 128), Time::ZERO).unwrap();
        let out = run_to_idle(&mut dev, Time::from_ps(1_000_000));
        assert_eq!(out[0].link, 1);
    }

    #[test]
    fn remote_quadrant_access_is_slower() {
        let mut cfg = MemConfig::default();
        cfg.refresh.enabled = false;
        let mut dev = HmcDevice::new(cfg.clone());
        // Vault 0 is local to link 0; vault 8 (quadrant 2) is remote.
        dev.submit(0, read_req(0, 0, 128), Time::ZERO).unwrap();
        let local = run_to_idle(&mut dev, Time::from_ps(1_000_000))[0].at;
        let mut dev2 = HmcDevice::new(cfg);
        dev2.submit(0, read_req(0, 8 << 7, 128), Time::ZERO)
            .unwrap();
        let remote = run_to_idle(&mut dev2, Time::from_ps(1_000_000))[0].at;
        // Two crossings, 8 ns extra each.
        assert_eq!(remote.since(local).as_ns_f64(), 16.0);
        assert_eq!(dev2.stats().remote_hops, 2);
    }

    #[test]
    fn ingress_credits_backpressure() {
        let mut dev = HmcDevice::new(MemConfig::default());
        let mut accepted = 0;
        // Flood link 0 with same-instant submissions.
        for i in 0..100 {
            if dev.can_accept(0) {
                dev.submit(0, read_req(i, (i % 16) << 7, 128), Time::ZERO)
                    .unwrap();
                accepted += 1;
            } else {
                break;
            }
        }
        // The queue holds 32; one more is in flight after the first kick.
        assert!((32..=34).contains(&accepted), "accepted {accepted}");
        assert!(!dev.can_accept(0));
        assert!(dev.submit(0, read_req(999, 0, 128), Time::ZERO).is_err());
    }

    #[test]
    fn all_submitted_requests_eventually_complete() {
        let cfg = MemConfig {
            track_data: false,
            ..MemConfig::default()
        };
        let mut dev = HmcDevice::new(cfg);
        let mut sent = 0u64;
        let mut now = Time::ZERO;
        let mut out = Vec::new();
        let mut rng = sim_engine::SplitMix64::new(42);
        while sent < 2_000 {
            if dev.can_accept((sent % 2) as usize) {
                let addr = rng.next_below(1 << 30) & !0xF;
                let op = if rng.next_f64() < 0.5 {
                    read_req(sent, addr, 64)
                } else {
                    write_req(sent, addr, 64, sent)
                };
                dev.submit((sent % 2) as usize, op, now).unwrap();
                sent += 1;
            } else {
                now = dev.next_time().unwrap_or(now).max(now);
                dev.advance(now, &mut out);
            }
        }
        // Drain.
        for _ in 0..1_000_000 {
            match dev.next_time() {
                Some(t) => {
                    now = t;
                    dev.advance(now, &mut out);
                }
                None => break,
            }
            if out.len() as u64 == sent {
                break;
            }
        }
        assert_eq!(out.len() as u64, sent, "every request answered");
        let s = dev.stats();
        assert_eq!(s.reads_completed + s.writes_completed, sent);
    }

    #[test]
    fn single_bank_flood_exposes_queueing() {
        // All requests to vault 0 / bank 0: the bank serializes at tRC and
        // queues grow; latency of late responses far exceeds the first.
        let mut cfg = MemConfig::default();
        cfg.refresh.enabled = false;
        let mut dev = HmcDevice::new(cfg);
        let mut now = Time::ZERO;
        let mut out = Vec::new();
        let mut sent = 0u64;
        while sent < 300 {
            if dev.can_accept(0) {
                dev.submit(0, read_req(sent, (sent % 512) << 15, 128), now)
                    .unwrap();
                sent += 1;
            } else {
                now = dev.next_time().expect("events pending");
                dev.advance(now, &mut out);
            }
        }
        while out.len() < 300 {
            now = dev.next_time().expect("still draining");
            dev.advance(now, &mut out);
        }
        let first = out.first().unwrap();
        let last = out.last().unwrap();
        let spread = last.at.since(first.at).as_us_f64();
        // 299 accesses x 128 ns ≈ 38 us of serialization.
        assert!(spread > 30.0, "bank serialization spread {spread} us");
    }

    #[test]
    fn pim_requests_bypass_links_and_return_fast() {
        let mut cfg = MemConfig {
            track_data: true,
            ..MemConfig::default()
        };
        cfg.refresh.enabled = false;
        let mut dev = HmcDevice::new(cfg);
        // A PIM write then read at the same address.
        dev.pim_submit(write_req(0, 0x200, 16, 0x77), Time::ZERO)
            .unwrap();
        let mut out = Vec::new();
        dev.advance(Time::from_ps(1_000_000), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].link, PIM_LINK);
        let t1 = dev.now();
        dev.pim_submit(read_req(1, 0x200, 16), t1).unwrap();
        dev.advance(t1 + TimeDelta::from_us(1), &mut out);
        assert_eq!(out.len(), 2);
        assert_eq!(out[1].resp.data_token, 0x77);
        // In-stack round trip is far below the external-link round trip:
        // hop + DRAM + beat + hop, with no SerDes or packet processing.
        let lat = out[1].at.since(t1).as_ns_f64();
        assert!(lat < 100.0, "PIM read latency {lat} ns");
        // No SerDes traffic was generated at all.
        assert_eq!(dev.stats().link_bytes(), 0);
    }

    #[test]
    fn pim_admission_window_tracks_vault_fifo() {
        let mut cfg = MemConfig::default();
        cfg.refresh.enabled = false;
        let mut dev = HmcDevice::new(cfg);
        let addr = Address::new(0);
        let window = dev.pim_free_slots(addr);
        assert_eq!(window, 16);
        let mut accepted = 0;
        for i in 0..64 {
            if dev.pim_submit(read_req(i, 0, 128), Time::ZERO).is_ok() {
                accepted += 1;
            }
        }
        assert_eq!(accepted, 16, "admission bounded by the vault FIFO");
        assert_eq!(dev.pim_free_slots(addr), 0);
    }

    #[test]
    fn refresh_happens_and_multiplier_speeds_it_up() {
        let mut dev = HmcDevice::new(MemConfig::default());
        let mut out = Vec::new();
        dev.advance(Time::from_ps(100_000_000), &mut out); // 100 us
        let base = dev.stats().refreshes;
        assert!(base > 100, "16 vaults / 7.8 us over 100 us: {base}");
        dev.set_refresh_multiplier(2);
        dev.advance(Time::from_ps(200_000_000), &mut out);
        let hot = dev.stats().refreshes - base;
        assert!(
            hot as f64 > base as f64 * 1.7,
            "doubled refresh: {hot} vs {base}"
        );
        assert_eq!(dev.refresh_multiplier(), 2);
    }

    #[test]
    fn stats_accumulate_consistently() {
        let mut dev = HmcDevice::new(MemConfig::default());
        dev.submit(0, read_req(0, 0, 32), Time::ZERO).unwrap();
        dev.submit(0, write_req(1, 128, 32, 7), Time::ZERO).unwrap();
        let out = run_to_idle(&mut dev, Time::from_ps(2_000_000));
        assert_eq!(out.len(), 2);
        let s = dev.stats();
        assert_eq!(s.reads_completed, 1);
        assert_eq!(s.writes_completed, 1);
        assert_eq!(s.data_read_bytes, 32);
        assert_eq!(s.data_write_bytes, 32);
        // Read req 16 B + write req 48 B up; read resp 48 B + write resp
        // 16 B down.
        assert_eq!(s.bytes_up, 64);
        assert_eq!(s.bytes_down, 64);
        assert_eq!(s.link_bytes(), 128);
        assert!(s.bank_activations >= 2);
    }
}
