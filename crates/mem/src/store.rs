//! A sparse backing store tracking write tokens per 16 B atom, so that the
//! stream-GUPS data-integrity check can verify reads end to end.

use std::collections::BTreeMap;

use hmc_types::address::ATOM_BYTES;
use hmc_types::Address;

/// Sparse contents of the DRAM stack. Each 16 B atom remembers the token
/// of the last write covering it; unwritten atoms read back as zero (DRAM
/// contents after initialization are undefined — zero stands in for
/// "never written in this run").
#[derive(Debug, Clone, Default)]
pub struct SparseStore {
    atoms: BTreeMap<u64, u64>,
    writes: u64,
    reads: u64,
}

impl SparseStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        SparseStore::default()
    }

    /// Records a write of `size` bytes at `addr` carrying `token`.
    pub fn write(&mut self, addr: Address, size: u64, token: u64) {
        let first = addr.as_u64() / ATOM_BYTES;
        let count = size.div_ceil(ATOM_BYTES).max(1);
        for atom in first..first + count {
            self.atoms.insert(atom, token);
        }
        self.writes += 1;
    }

    /// Reads the token of the first atom covered by `addr` (zero if never
    /// written).
    pub fn read(&mut self, addr: Address) -> u64 {
        self.reads += 1;
        let atom = addr.as_u64() / ATOM_BYTES;
        self.atoms.get(&atom).copied().unwrap_or(0)
    }

    /// True if every atom in `[addr, addr + size)` carries `token`.
    pub fn verify(&self, addr: Address, size: u64, token: u64) -> bool {
        let first = addr.as_u64() / ATOM_BYTES;
        let count = size.div_ceil(ATOM_BYTES).max(1);
        (first..first + count).all(|a| self.atoms.get(&a).copied().unwrap_or(0) == token)
    }

    /// Number of distinct atoms ever written.
    pub fn atoms_written(&self) -> usize {
        self.atoms.len()
    }

    /// Write operations recorded.
    pub fn write_count(&self) -> u64 {
        self.writes
    }

    /// Read operations recorded.
    pub fn read_count(&self) -> u64 {
        self.reads
    }

    /// Discards everything (models the data loss of a thermal shutdown:
    /// "when failure occurs, stored data in DRAM is lost").
    pub fn wipe(&mut self) {
        self.atoms.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_roundtrips() {
        let mut s = SparseStore::new();
        s.write(Address::new(0x100), 128, 0xDEAD);
        assert_eq!(s.read(Address::new(0x100)), 0xDEAD);
        assert_eq!(s.read(Address::new(0x170)), 0xDEAD); // last atom
        assert_eq!(s.read(Address::new(0x180)), 0); // past the write
        assert_eq!(s.atoms_written(), 8);
    }

    #[test]
    fn verify_covers_whole_span() {
        let mut s = SparseStore::new();
        s.write(Address::new(0), 64, 7);
        assert!(s.verify(Address::new(0), 64, 7));
        assert!(!s.verify(Address::new(0), 128, 7)); // tail unwritten
        assert!(!s.verify(Address::new(0), 64, 8)); // wrong token
    }

    #[test]
    fn overwrite_updates_token() {
        let mut s = SparseStore::new();
        s.write(Address::new(0), 32, 1);
        s.write(Address::new(16), 16, 2);
        assert_eq!(s.read(Address::new(0)), 1);
        assert_eq!(s.read(Address::new(16)), 2);
    }

    #[test]
    fn counters_and_wipe() {
        let mut s = SparseStore::new();
        s.write(Address::new(0), 16, 1);
        s.read(Address::new(0));
        assert_eq!(s.write_count(), 1);
        assert_eq!(s.read_count(), 1);
        s.wipe();
        assert_eq!(s.read(Address::new(0)), 0, "thermal failure loses data");
        assert_eq!(s.atoms_written(), 0);
    }

    #[test]
    fn zero_size_still_touches_one_atom() {
        let mut s = SparseStore::new();
        s.write(Address::new(0x40), 0, 9);
        assert_eq!(s.read(Address::new(0x40)), 9);
    }
}
