//! Flit-level discrete-event model of a Hybrid Memory Cube device.
//!
//! The model reproduces the internal organization the paper's measurements
//! expose (Section II of the paper):
//!
//! * [`dram`] — closed-page DRAM banks with explicit ACT/CAS/PRE timing and
//!   an optional open-page ablation mode.
//! * [`vault`] — one memory controller per vault: a small input FIFO, one
//!   queue per bank, and the 32 B-granular TSV data bus whose ~10 GB/s
//!   ceiling shapes Figures 6, 7, and 18.
//! * [`xbar`] — the quadrant switch: accesses to a vault in the link's own
//!   quadrant are faster than remote-quadrant accesses.
//! * [`link`] — device-side SerDes link layer: per-packet serialization and
//!   processing time, plus the posted-write drain limit that makes `wo`
//!   traffic slower than `ro` (the paper observes this asymmetry but could
//!   not attribute it; see DESIGN.md).
//! * [`store`] — a sparse backing store carrying write tokens so stream
//!   GUPS can verify data integrity end to end.
//! * [`device`] — the assembled [`HmcDevice`], an event-driven component
//!   the host model drives through `submit` / `advance`.
//!
//! # Example
//!
//! ```
//! use hmc_mem::{HmcDevice, MemConfig};
//! use hmc_types::{Address, CubeId, MemoryRequest, PortId, RequestId, RequestSize, Tag, TenantTag, Time};
//! use hmc_types::packet::OpKind;
//!
//! let mut dev = HmcDevice::new(MemConfig::default());
//! let req = MemoryRequest {
//!     id: RequestId::new(0),
//!     port: PortId::new(0),
//!     tag: Tag::new(0),
//!     op: OpKind::Read,
//!     size: RequestSize::new(128)?,
//!     cube: CubeId::new(0),
//!     addr: Address::new(0),
//!     issued_at: Time::ZERO,
//!     data_token: 0,
//!     tenant: TenantTag::NONE,
//! };
//! dev.submit(0, req, Time::ZERO).unwrap();
//! let mut out = Vec::new();
//! dev.advance(Time::from_ps(10_000_000), &mut out);
//! assert_eq!(out.len(), 1); // the read came back
//! # Ok::<(), hmc_types::HmcError>(())
//! ```

pub mod config;
pub mod device;
pub mod dram;
pub mod hbm;
pub mod link;
pub mod store;
pub mod vault;
pub mod xbar;

pub use config::{
    DramTiming, LinkLayerConfig, MemConfig, PagePolicy, RefreshConfig, VaultConfig, XbarConfig,
};
pub use device::{DeviceOutput, DeviceStats, HmcDevice, PIM_LINK};
pub use hbm::{HbmConfig, HbmDevice};
pub use store::SparseStore;
