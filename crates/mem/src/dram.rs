//! A single DRAM bank's timing state machine.

use hmc_types::{Time, TimeDelta};

use crate::config::{DramTiming, PagePolicy};

/// Cumulative activity counters for one bank.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BankStats {
    /// Row activations performed.
    pub activations: u64,
    /// Read accesses completed.
    pub reads: u64,
    /// Write accesses completed.
    pub writes: u64,
    /// Open-page row hits (always zero under the closed-page policy).
    pub row_hits: u64,
}

/// Timing outcome of starting one access on a bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BankAccess {
    /// When the access actually began (>= requested start).
    pub start: Time,
    /// For reads: when data is ready to leave the sense amps onto the TSV
    /// bus. For writes: when the bank can begin absorbing data.
    pub data_at: Time,
    /// Lower bound on when the bank can start its next access (the caller
    /// may extend it to cover bus occupancy).
    pub busy_until: Time,
}

/// One DRAM bank inside a vault.
///
/// Under the closed-page policy every access pays the full
/// activate–CAS–precharge sequence; under the open-page ablation the row
/// register is tracked and hits skip the activate.
#[derive(Debug, Clone)]
pub struct Bank {
    next_free: Time,
    open_row: Option<u64>,
    stats: BankStats,
}

impl Bank {
    /// Creates an idle bank.
    pub fn new() -> Self {
        Bank {
            next_free: Time::ZERO,
            open_row: None,
            stats: BankStats::default(),
        }
    }

    /// Earliest instant the bank can start a new access.
    pub fn next_free(&self) -> Time {
        self.next_free
    }

    /// True if the bank can start an access at `now`.
    pub fn is_free(&self, now: Time) -> bool {
        self.next_free <= now
    }

    /// Activity counters.
    pub fn stats(&self) -> BankStats {
        self.stats
    }

    /// Pushes the bank's availability out to at least `until` and closes
    /// any open row — the refresh engine's effect on a bank.
    pub fn hold_until(&mut self, until: Time) {
        self.next_free = self.next_free.max(until);
        self.open_row = None;
    }

    /// Pushes the bank's availability out to at least `until` without
    /// touching the row register — used to account for TSV-bus occupancy
    /// extending past the bank's own cycle.
    pub fn extend_busy(&mut self, until: Time) {
        self.next_free = self.next_free.max(until);
    }

    /// Starts a read of `row` no earlier than `at`, moving `beats` 32 B
    /// bursts of data (bursts beyond the first extend the column
    /// occupancy, which is why larger requests cycle a bank slightly
    /// slower — the Figure 16 size effect).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the bank is still busy at `at`.
    pub fn begin_read(
        &mut self,
        at: Time,
        row: u64,
        beats: u64,
        t: &DramTiming,
        policy: PagePolicy,
    ) -> BankAccess {
        debug_assert!(self.is_free(at), "bank busy until {}", self.next_free);
        self.stats.reads += 1;
        self.access(at, row, beats, t, policy, false)
    }

    /// Starts a write of `row` no earlier than `at` absorbing `beats`
    /// bursts.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the bank is still busy at `at`.
    pub fn begin_write(
        &mut self,
        at: Time,
        row: u64,
        beats: u64,
        t: &DramTiming,
        policy: PagePolicy,
    ) -> BankAccess {
        debug_assert!(self.is_free(at), "bank busy until {}", self.next_free);
        self.stats.writes += 1;
        self.access(at, row, beats, t, policy, true)
    }

    fn access(
        &mut self,
        at: Time,
        row: u64,
        beats: u64,
        t: &DramTiming,
        policy: PagePolicy,
        is_write: bool,
    ) -> BankAccess {
        let start = at.max(self.next_free);
        // Bursts beyond the first occupy the column path before the row
        // can close.
        let burst_tail = t.bus_beat.saturating_mul(beats.saturating_sub(1));
        let (to_data, cycle) = match policy {
            PagePolicy::ClosedPage => {
                self.stats.activations += 1;
                self.open_row = None;
                let to_data = t.t_rcd + t.t_cl;
                let cycle = if is_write {
                    // Write recovery and precharge dominate; keep the bank
                    // cycle symmetric with reads so per-bank read and write
                    // rates match.
                    t.t_rc().max(t.t_rcd + t.t_wr + t.t_rp)
                } else {
                    t.t_rc()
                };
                (to_data, cycle + burst_tail)
            }
            PagePolicy::OpenPage => {
                if self.open_row == Some(row) {
                    self.stats.row_hits += 1;
                    // Row hit: CAS only, bank reusable right after the
                    // column access.
                    let to_data = t.t_cl;
                    let cycle = t.t_cl + if is_write { t.t_wr } else { TimeDelta::ZERO };
                    (to_data, cycle + burst_tail)
                } else {
                    let had_open = self.open_row.is_some();
                    self.stats.activations += 1;
                    self.open_row = Some(row);
                    let pre = if had_open { t.t_rp } else { TimeDelta::ZERO };
                    let to_data = pre + t.t_rcd + t.t_cl;
                    let cycle = to_data + if is_write { t.t_wr } else { TimeDelta::ZERO };
                    (to_data, cycle + burst_tail)
                }
            }
        };
        self.next_free = start + cycle;
        BankAccess {
            start,
            data_at: start + to_data,
            busy_until: self.next_free,
        }
    }
}

impl Default for Bank {
    fn default() -> Self {
        Bank::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> DramTiming {
        DramTiming::default()
    }

    #[test]
    fn closed_page_read_timing() {
        let mut b = Bank::new();
        let a = b.begin_read(Time::ZERO, 7, 1, &t(), PagePolicy::ClosedPage);
        assert_eq!(a.start, Time::ZERO);
        assert_eq!(a.data_at.as_ns_f64(), 50.0); // tRCD + tCL
        assert_eq!(a.busy_until.as_ns_f64(), 128.0); // tRC
        assert_eq!(b.stats().activations, 1);
        assert_eq!(b.stats().reads, 1);
        assert_eq!(b.stats().row_hits, 0);
    }

    #[test]
    fn closed_page_every_access_activates() {
        let mut b = Bank::new();
        let mut at = Time::ZERO;
        for _ in 0..5 {
            let a = b.begin_read(at, 3, 1, &t(), PagePolicy::ClosedPage);
            at = a.busy_until;
        }
        // Same row every time, yet five activations: no row reuse.
        assert_eq!(b.stats().activations, 5);
        assert_eq!(at.as_ns_f64(), 5.0 * 128.0);
    }

    #[test]
    fn open_page_row_hit_is_cheap() {
        let mut b = Bank::new();
        let a0 = b.begin_read(Time::ZERO, 3, 1, &t(), PagePolicy::OpenPage);
        // First access: empty bank, no precharge needed.
        assert_eq!(a0.data_at.as_ns_f64(), 50.0);
        let a1 = b.begin_read(a0.busy_until, 3, 1, &t(), PagePolicy::OpenPage);
        // Hit: CAS only.
        assert_eq!(a1.data_at.since(a1.start).as_ns_f64(), 25.0);
        assert_eq!(b.stats().row_hits, 1);
        assert_eq!(b.stats().activations, 1);
    }

    #[test]
    fn open_page_conflict_pays_precharge() {
        let mut b = Bank::new();
        let a0 = b.begin_read(Time::ZERO, 3, 1, &t(), PagePolicy::OpenPage);
        let a1 = b.begin_read(a0.busy_until, 9, 1, &t(), PagePolicy::OpenPage);
        // Miss with open row: tRP + tRCD + tCL = 88 ns to data.
        assert_eq!(a1.data_at.since(a1.start).as_ns_f64(), 88.0);
        assert_eq!(b.stats().activations, 2);
        assert_eq!(b.stats().row_hits, 0);
    }

    #[test]
    fn write_timing_closed() {
        let mut b = Bank::new();
        let a = b.begin_write(Time::ZERO, 0, 1, &t(), PagePolicy::ClosedPage);
        // Write cycle: max(tRC, tRCD + tWR + tRP) = max(128, 93) = 128 ns.
        assert_eq!(a.busy_until.as_ns_f64(), 128.0);
        assert_eq!(b.stats().writes, 1);
    }

    #[test]
    fn hold_until_extends_and_closes_row() {
        let mut b = Bank::new();
        b.begin_read(Time::ZERO, 1, 1, &t(), PagePolicy::OpenPage);
        b.hold_until(Time::from_ps(1_000_000));
        assert_eq!(b.next_free(), Time::from_ps(1_000_000));
        assert!(!b.is_free(Time::from_ps(999_999)));
        // The previously open row was closed by the hold: next access to
        // the same row activates again.
        let a = b.begin_read(Time::from_ps(1_000_000), 1, 1, &t(), PagePolicy::OpenPage);
        assert_eq!(a.data_at.since(a.start).as_ns_f64(), 50.0);
        assert_eq!(b.stats().activations, 2);
    }

    #[test]
    fn deferred_start_respects_busy() {
        let mut b = Bank::new();
        let a0 = b.begin_read(Time::ZERO, 1, 1, &t(), PagePolicy::ClosedPage);
        // Ask to start later than busy_until: starts at the asked time.
        let late = a0.busy_until + TimeDelta::from_ns(10);
        let a1 = b.begin_read(late, 2, 1, &t(), PagePolicy::ClosedPage);
        assert_eq!(a1.start, late);
    }

    #[test]
    fn longer_bursts_extend_the_bank_cycle() {
        // A 128 B access (4 beats) holds the bank 12 ns longer than a
        // 32 B access (1 beat) — the size effect of Figure 16.
        let mut small = Bank::new();
        let a1 = small.begin_read(Time::ZERO, 0, 1, &t(), PagePolicy::ClosedPage);
        assert_eq!(a1.busy_until.as_ns_f64(), 128.0);
        let mut big = Bank::new();
        let a4 = big.begin_read(Time::ZERO, 0, 4, &t(), PagePolicy::ClosedPage);
        assert_eq!(a4.busy_until.as_ns_f64(), 140.0);
        assert_eq!(a4.data_at, a1.data_at, "first data unaffected");
    }
}
