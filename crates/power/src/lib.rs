//! Component-level power model of the measured system.
//!
//! The paper's power analyzer sees the whole machine: ~100 W idle, with
//! everything above idle attributed to the FPGA + HMC (the PCIe switch is
//! quiescent during experiments and the FPGA performs the same task
//! throughout, so *variation* is the HMC's). This crate decomposes the
//! device power into:
//!
//! * SerDes link energy per wire byte — the links burn ~43 % of HMC power
//!   at load (the paper cites this share from the HMC literature);
//! * DRAM array energy per payload byte (reads and writes) plus a per-
//!   activation charge;
//! * temperature-dependent static leakage — the coupling that makes the
//!   same bandwidth cost more watts under weaker cooling (Figure 10);
//! * refresh energy, which doubles in the hot regime.
//!
//! The scale is calibrated to the paper's measurement that raising
//! bandwidth from 5 to 20 GB/s adds ≈2 W of device power (Figure 11b).

use hmc_types::TimeDelta;

/// Activity rates the power model converts to watts, typically derived
/// from two device-statistics snapshots.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ActivityRates {
    /// Wire bytes per second across all links, both directions.
    pub link_bytes_per_sec: f64,
    /// DRAM payload bytes read per second.
    pub read_bytes_per_sec: f64,
    /// DRAM payload bytes written per second.
    pub write_bytes_per_sec: f64,
    /// Bank activations per second.
    pub activations_per_sec: f64,
    /// Refresh operations per second.
    pub refreshes_per_sec: f64,
}

impl ActivityRates {
    /// Rates over a window given event-count deltas.
    pub fn from_deltas(
        link_bytes: u64,
        read_bytes: u64,
        write_bytes: u64,
        activations: u64,
        refreshes: u64,
        window: TimeDelta,
    ) -> Self {
        let s = window.as_secs_f64();
        if s == 0.0 {
            return ActivityRates::default();
        }
        ActivityRates {
            link_bytes_per_sec: link_bytes as f64 / s,
            read_bytes_per_sec: read_bytes as f64 / s,
            write_bytes_per_sec: write_bytes as f64 / s,
            activations_per_sec: activations as f64 / s,
            refreshes_per_sec: refreshes as f64 / s,
        }
    }
}

/// Energy and static-power coefficients.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerParams {
    /// Whole-machine idle power (watts) — everything the analyzer sees
    /// with no experiment running.
    pub system_idle_w: f64,
    /// Additional FPGA power while GUPS is loaded and clocking (constant
    /// across experiments, per the paper's attribution argument).
    pub fpga_active_w: f64,
    /// HMC static power above the machine-idle baseline.
    pub hmc_static_w: f64,
    /// SerDes energy per wire byte (pJ/B).
    pub serdes_pj_per_byte: f64,
    /// DRAM read energy per payload byte (pJ/B).
    pub dram_read_pj_per_byte: f64,
    /// DRAM write energy per payload byte (pJ/B) — writes cost a little
    /// more than reads.
    pub dram_write_pj_per_byte: f64,
    /// Extra write-path energy per posted-write payload byte (pJ/B) —
    /// buffering and drain logic in the link layer. This is the knob that
    /// reproduces the steeper temperature-vs-bandwidth slope of write
    /// workloads the paper observed but could not attribute.
    pub write_path_pj_per_byte: f64,
    /// Energy per row activation (nJ).
    pub activation_nj: f64,
    /// Energy per refresh operation (nJ).
    pub refresh_nj: f64,
    /// Leakage slope: extra watts per °C above the reference.
    pub leakage_w_per_c: f64,
    /// Leakage reference temperature (°C).
    pub leakage_ref_c: f64,
}

impl Default for PowerParams {
    fn default() -> Self {
        PowerParams {
            system_idle_w: 100.0,
            fpga_active_w: 4.0,
            hmc_static_w: 2.0,
            serdes_pj_per_byte: 100.0,
            dram_read_pj_per_byte: 45.0,
            dram_write_pj_per_byte: 55.0,
            write_path_pj_per_byte: 100.0,
            activation_nj: 2.0,
            refresh_nj: 30.0,
            leakage_w_per_c: 0.04,
            leakage_ref_c: 40.0,
        }
    }
}

/// Watts by component for one operating point.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PowerBreakdown {
    /// SerDes links.
    pub serdes_w: f64,
    /// DRAM array accesses.
    pub dram_w: f64,
    /// Posted-write path (buffers and drain).
    pub write_path_w: f64,
    /// Row activations.
    pub activation_w: f64,
    /// Refresh.
    pub refresh_w: f64,
    /// HMC static power.
    pub static_w: f64,
    /// Temperature-dependent leakage.
    pub leakage_w: f64,
}

impl PowerBreakdown {
    /// Total HMC device power.
    pub fn device_total_w(&self) -> f64 {
        self.serdes_w
            + self.dram_w
            + self.write_path_w
            + self.activation_w
            + self.refresh_w
            + self.static_w
            + self.leakage_w
    }

    /// The SerDes share of device power (the paper cites ≈43 % at load).
    pub fn serdes_share(&self) -> f64 {
        let t = self.device_total_w();
        if t == 0.0 {
            0.0
        } else {
            self.serdes_w / t
        }
    }
}

/// The power model.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PowerModel {
    params: PowerParams,
}

impl PowerModel {
    /// A model with explicit coefficients.
    pub fn new(params: PowerParams) -> Self {
        PowerModel { params }
    }

    /// The coefficients in use.
    pub fn params(&self) -> &PowerParams {
        &self.params
    }

    /// HMC device power at an operating point.
    pub fn device_power(&self, rates: &ActivityRates, junction_c: f64) -> PowerBreakdown {
        let p = &self.params;
        PowerBreakdown {
            serdes_w: p.serdes_pj_per_byte * 1e-12 * rates.link_bytes_per_sec,
            dram_w: p.dram_read_pj_per_byte * 1e-12 * rates.read_bytes_per_sec
                + p.dram_write_pj_per_byte * 1e-12 * rates.write_bytes_per_sec,
            write_path_w: p.write_path_pj_per_byte * 1e-12 * rates.write_bytes_per_sec,
            activation_w: p.activation_nj * 1e-9 * rates.activations_per_sec,
            refresh_w: p.refresh_nj * 1e-9 * rates.refreshes_per_sec,
            static_w: p.hmc_static_w,
            leakage_w: p.leakage_w_per_c * (junction_c - p.leakage_ref_c).max(0.0),
        }
    }

    /// Power dissipated in the shared heatsink region (FPGA + HMC) — the
    /// input to the thermal model.
    pub fn local_power_w(&self, rates: &ActivityRates, junction_c: f64) -> f64 {
        // The 13.5 W board/FPGA-idle share is calibrated so the idle
        // point dissipates ~20 W locally, matching the thermal
        // calibration constant `IDLE_LOCAL_POWER_W`.
        13.5 + self.params.fpga_active_w + self.device_power(rates, junction_c).device_total_w()
    }

    /// What the wall-power analyzer reads for the whole machine.
    pub fn system_power_w(&self, rates: &ActivityRates, junction_c: f64) -> f64 {
        self.params.system_idle_w
            + self.params.fpga_active_w
            + self.device_power(rates, junction_c).device_total_w()
            - self.params.hmc_static_w // static HMC power is inside idle
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A read-only 16-vault operating point: ~21 GB/s counted.
    fn high_load() -> ActivityRates {
        ActivityRates {
            link_bytes_per_sec: 21e9,
            read_bytes_per_sec: 17e9,
            write_bytes_per_sec: 0.0,
            activations_per_sec: 130e6,
            refreshes_per_sec: 2e6,
        }
    }

    #[test]
    fn five_to_twenty_gbs_adds_about_two_watts() {
        // Figure 11b: device power grows ~2 W when counted bandwidth goes
        // from 5 to 20 GB/s. Scale a read-only operating point.
        let m = PowerModel::default();
        let at = |gbs: f64| {
            let f = gbs / 21.0;
            let r = ActivityRates {
                link_bytes_per_sec: high_load().link_bytes_per_sec * f,
                read_bytes_per_sec: high_load().read_bytes_per_sec * f,
                activations_per_sec: high_load().activations_per_sec * f,
                refreshes_per_sec: 2e6,
                write_bytes_per_sec: 0.0,
            };
            m.device_power(&r, 55.0).device_total_w()
        };
        let delta = at(20.0) - at(5.0);
        assert!((1.4..2.6).contains(&delta), "delta {delta} W");
    }

    #[test]
    fn serdes_share_near_43_percent_at_load() {
        let m = PowerModel::default();
        let b = m.device_power(&high_load(), 55.0);
        let share = b.serdes_share();
        assert!((0.30..0.55).contains(&share), "serdes share {share}");
    }

    #[test]
    fn system_power_in_paper_range() {
        // Figure 10's y-axis spans ~104-118 W.
        let m = PowerModel::default();
        let idle = m.system_power_w(&ActivityRates::default(), 45.0);
        assert!((103.0..107.0).contains(&idle), "idle {idle}");
        let busy = m.system_power_w(&high_load(), 70.0);
        assert!((106.0..118.0).contains(&busy), "busy {busy}");
        assert!(busy > idle);
    }

    #[test]
    fn hotter_junction_costs_more_power() {
        let m = PowerModel::default();
        let cold = m.system_power_w(&high_load(), 45.0);
        let hot = m.system_power_w(&high_load(), 75.0);
        assert!((hot - cold - 30.0 * 0.04).abs() < 1e-9);
    }

    #[test]
    fn writes_cost_more_than_reads() {
        let m = PowerModel::default();
        let reads = ActivityRates {
            read_bytes_per_sec: 10e9,
            ..ActivityRates::default()
        };
        let writes = ActivityRates {
            write_bytes_per_sec: 10e9,
            ..ActivityRates::default()
        };
        assert!(m.device_power(&writes, 50.0).dram_w > m.device_power(&reads, 50.0).dram_w);
    }

    #[test]
    fn rates_from_deltas() {
        let r = ActivityRates::from_deltas(1_000, 500, 250, 10, 2, TimeDelta::from_us(1));
        assert!((r.link_bytes_per_sec - 1e9).abs() < 1.0);
        assert!((r.read_bytes_per_sec - 5e8).abs() < 1.0);
        assert!((r.activations_per_sec - 1e7).abs() < 1.0);
        let zero = ActivityRates::from_deltas(1, 1, 1, 1, 1, TimeDelta::ZERO);
        assert_eq!(zero, ActivityRates::default());
    }

    #[test]
    fn local_power_at_idle_matches_thermal_calibration() {
        let m = PowerModel::default();
        let local = m.local_power_w(&ActivityRates::default(), 40.0);
        assert!((19.0..21.0).contains(&local), "local idle {local} W");
    }

    #[test]
    fn breakdown_sums() {
        let m = PowerModel::default();
        let b = m.device_power(&high_load(), 60.0);
        let sum = b.serdes_w
            + b.dram_w
            + b.write_path_w
            + b.activation_w
            + b.refresh_w
            + b.static_w
            + b.leakage_w;
        assert!((sum - b.device_total_w()).abs() < 1e-12);
        assert_eq!(PowerBreakdown::default().serdes_share(), 0.0);
    }
}
