//! A tiny, dependency-free stand-in for the `criterion` crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! the real criterion cannot be fetched. This shim implements the subset of
//! its API the `benches/` targets use — `Criterion`, `BenchmarkGroup`,
//! `Bencher::iter`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros — with a simple batched wall-clock measurement.
//! Benchmarks report the median, minimum, and mean time per iteration, and
//! can dump machine-readable results via [`Criterion::json_report`].
//!
//! The measurement protocol: each benchmark is warmed up for
//! [`WARMUP_MS`] ms, then run in `sample_size` batches sized to take
//! roughly [`BATCH_TARGET_MS`] ms each; the per-iteration time of each
//! batch forms the sample distribution.

pub use std::hint::black_box;

use std::time::{Duration, Instant};

/// Warm-up budget per benchmark, in milliseconds.
pub const WARMUP_MS: u64 = 300;
/// Target wall-clock length of one measurement batch, in milliseconds.
pub const BATCH_TARGET_MS: u64 = 25;

/// One finished benchmark: its id and per-iteration statistics.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Full benchmark id (`group/name` or bare `name`).
    pub id: String,
    /// Median time per iteration, nanoseconds.
    pub median_ns: f64,
    /// Minimum time per iteration, nanoseconds.
    pub min_ns: f64,
    /// Mean time per iteration, nanoseconds.
    pub mean_ns: f64,
    /// Total iterations measured (excluding warm-up).
    pub iterations: u64,
}

/// The benchmark driver. Collects results so callers can render a JSON
/// report after all groups ran.
#[derive(Debug, Default)]
pub struct Criterion {
    sample_size: Option<usize>,
    results: Vec<BenchResult>,
}

/// The timing context handed to the closure of
/// [`Criterion::bench_function`].
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` for this batch's iteration budget and records the elapsed
    /// wall-clock time.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench(id: &str, sample_size: usize, mut routine: impl FnMut(&mut Bencher)) -> BenchResult {
    // Warm up and size the batches so one batch takes ~BATCH_TARGET_MS.
    let warmup = Duration::from_millis(WARMUP_MS);
    let start = Instant::now();
    let mut warm_iters = 0u64;
    let mut per_iter = Duration::from_millis(1);
    while start.elapsed() < warmup {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        routine(&mut b);
        per_iter = b.elapsed.max(Duration::from_nanos(1));
        warm_iters += 1;
    }
    let batch_iters =
        ((BATCH_TARGET_MS as f64 * 1e6 / per_iter.as_nanos() as f64).ceil() as u64).max(1);
    let _ = warm_iters;

    let mut samples_ns: Vec<f64> = Vec::with_capacity(sample_size);
    let mut total_iters = 0u64;
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters: batch_iters,
            elapsed: Duration::ZERO,
        };
        routine(&mut b);
        samples_ns.push(b.elapsed.as_nanos() as f64 / batch_iters as f64);
        total_iters += batch_iters;
    }
    samples_ns.sort_by(|a, b| a.total_cmp(b));
    let median_ns = samples_ns[samples_ns.len() / 2];
    let min_ns = samples_ns[0];
    let mean_ns = samples_ns.iter().sum::<f64>() / samples_ns.len() as f64;
    let r = BenchResult {
        id: id.to_string(),
        median_ns,
        min_ns,
        mean_ns,
        iterations: total_iters,
    };
    println!(
        "{:<44} time: [median {} | min {} | mean {}]  ({} iters)",
        r.id,
        fmt_ns(median_ns),
        fmt_ns(min_ns),
        fmt_ns(mean_ns),
        total_iters
    );
    r
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

impl Criterion {
    /// Accepted for source compatibility with real criterion; CLI arguments
    /// (cargo bench passes `--bench`) are ignored.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Sets the number of measurement batches per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = Some(n.max(2));
        self
    }

    /// Measures one benchmark function.
    pub fn bench_function(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let n = self.sample_size.unwrap_or(20);
        let r = run_bench(id, n, &mut f);
        self.results.push(r);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// All results measured so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Renders every measured benchmark as a JSON object keyed by id, with
    /// `median_ns`/`min_ns`/`mean_ns` fields.
    pub fn json_report(&self) -> String {
        let mut s = String::from("{\n");
        for (i, r) in self.results.iter().enumerate() {
            s.push_str(&format!(
                "  \"{}\": {{\"median_ns\": {:.1}, \"min_ns\": {:.1}, \"mean_ns\": {:.1}}}{}\n",
                r.id,
                r.median_ns,
                r.min_ns,
                r.mean_ns,
                if i + 1 == self.results.len() { "" } else { "," }
            ));
        }
        s.push('}');
        s
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measurement batches for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    /// Measures one benchmark in the group (id `group/name`).
    pub fn bench_function(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let n = self.sample_size.or(self.parent.sample_size).unwrap_or(20);
        let full = format!("{}/{}", self.name, id);
        let r = run_bench(&full, n, &mut f);
        self.parent.results.push(r);
        self
    }

    /// Ends the group (retained for API compatibility).
    pub fn finish(self) {}
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        /// Generated benchmark group entry point.
        pub fn $name() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_result() {
        let mut c = Criterion::default().sample_size(2);
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        assert_eq!(c.results().len(), 1);
        assert_eq!(c.results()[0].id, "noop");
        assert!(c.results()[0].median_ns >= 0.0);
        let json = c.json_report();
        assert!(json.contains("\"noop\""));
        assert!(json.contains("median_ns"));
    }

    #[test]
    fn groups_prefix_ids() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("grp");
            g.sample_size(2);
            g.bench_function("inner", |b| b.iter(|| black_box(7u64).wrapping_mul(3)));
            g.finish();
        }
        assert_eq!(c.results()[0].id, "grp/inner");
    }
}
