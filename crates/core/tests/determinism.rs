//! Determinism regression tests: repeated runs of the same experiment
//! must agree to the bit — figures, tables, and sanitizer reports.
//!
//! These guard the `HashMap`→`BTreeMap` conversions and any future
//! iteration-order dependence: a randomized container in a simulation
//! path shows up here as a flaky byte-level mismatch.

use hmc_core::experiments::openloop::{bursty, openloop_json};
use hmc_core::hmc_types::{RequestKind, RequestSize, Time, TimeDelta};
use hmc_core::measure::MeasureConfig;
use hmc_core::sanitize::fig9_bandwidth_subset;
use hmc_core::topology::Topology;
use hmc_core::{SystemBuilder, SystemConfig};
use hmc_host::{OpenLoopConfig, ShedPolicy, Workload};
use sim_engine::FaultScenario;

fn tiny() -> MeasureConfig {
    MeasureConfig {
        warmup: TimeDelta::from_us(20),
        window: TimeDelta::from_us(60),
    }
}

#[test]
fn repeated_runs_are_bit_identical() {
    let cfg = SystemConfig::default();
    let a = fig9_bandwidth_subset(&cfg, &tiny(), false);
    let b = fig9_bandwidth_subset(&cfg, &tiny(), false);
    assert_eq!(a.fingerprint(), b.fingerprint(), "figures must not drift");
    assert_eq!(
        a.table().to_string(),
        b.table().to_string(),
        "rendered tables must match byte for byte"
    );
}

#[test]
fn sanitized_reruns_agree_including_reports() {
    let cfg = SystemConfig::default();
    let a = fig9_bandwidth_subset(&cfg, &tiny(), true);
    let b = fig9_bandwidth_subset(&cfg, &tiny(), true);
    assert_eq!(a.fingerprint(), b.fingerprint());
    // The sanitizer's own accounting is part of the deterministic
    // surface: identical runs perform identical checks in identical
    // order, so the JSON reports are byte-identical too.
    assert_eq!(a.report.to_json(), b.report.to_json());
    assert_eq!(a.report.to_string(), b.report.to_string());
}

/// Runs an eight-cube chain under the noisy-link scenario on every cube
/// (sanitizer armed) on `workers` epoch threads and returns the full
/// serialized surface: the sanitizer's `JsonReport` plus a flattened
/// stats line.
fn noisy_octet(workers: usize) -> String {
    let scenario = FaultScenario::builtin("noisy-link").expect("builtin scenario");
    let mut sys = SystemBuilder::new(SystemConfig::default())
        .sanitizer()
        .faults(&scenario)
        .parallel_shards(workers)
        .topology(Topology::chain(8))
        .build_chain();
    sys.apply_workload(&Workload::full_scale(
        RequestKind::ReadOnly,
        RequestSize::new(128).expect("size"),
    ));
    sys.start(Time::ZERO);
    sys.run_for(TimeDelta::from_us(5));
    sys.stop_generation();
    assert!(
        sys.run_until_idle(TimeDelta::from_ms(10)),
        "noisy 8-cube chain on {workers} workers failed to drain"
    );
    sys.sanitize_check_drained();
    let report = sys.sanitizer_report();
    let s = sys.host_stats();
    let retries: u64 = (0..sys.cubes())
        .map(|c| sys.device(c).stats().link_retries)
        .sum();
    format!(
        "{}\nreads={} bytes={} lat_mean={} retries={} events={} now={}",
        report.to_json(),
        s.reads_completed,
        s.counted_bytes,
        s.read_latency.mean().as_ps(),
        retries,
        sys.events_processed(),
        sys.now().as_ps(),
    )
}

/// Runs a four-cube chain under a deliberately saturating MMPP open-loop
/// frontend (sanitizer armed) on `workers` epoch threads and returns the
/// full serialized surface: sanitizer `JsonReport`, the openloop JSON
/// export (shed counts, SLO conformance, latency quantiles), and a
/// flattened per-tenant shed line.
fn saturating_mmpp_quartet(workers: usize) -> String {
    // Far above what four cubes can retire: every shed path stays hot.
    let open = OpenLoopConfig::standard_mix(2.0e9, bursty(), ShedPolicy::PriorityShed);
    let mut sys = SystemBuilder::new(SystemConfig::default())
        .sanitizer()
        .open_loop(open.clone())
        .parallel_shards(workers)
        .topology(Topology::chain(4))
        .build_chain();
    sys.start(Time::ZERO);
    sys.run_for(TimeDelta::from_us(40));
    let stats = sys.open_stats();
    sys.stop_generation();
    assert!(
        sys.run_until_idle(TimeDelta::from_ms(10)),
        "saturated 4-cube open loop on {workers} workers failed to drain"
    );
    sys.sanitize_check_drained();
    let report = sys.sanitizer_report();
    let point = hmc_core::experiments::openloop::make_window_point(
        2.0e9,
        &open,
        &stats,
        TimeDelta::from_us(40),
    );
    let outcome = hmc_core::experiments::openloop::OpenLoopOutcome {
        policy: open.policy,
        kind: "mmpp",
        cubes: 4,
        saturation_rps: 0.0,
        points: vec![point],
        drained: true,
        report: report.clone(),
    };
    let sheds: String = stats
        .iter()
        .map(|t| {
            format!(
                " {}:{}/{}/{}",
                t.offered, t.shed_rate, t.shed_queue, t.shed_deadline
            )
        })
        .collect();
    format!(
        "{}\n{}\nsheds={} events={} now={}",
        report.to_json(),
        openloop_json(&outcome),
        sheds,
        sys.events_processed(),
        sys.now().as_ps(),
    )
}

#[test]
fn saturating_openloop_surface_is_identical_across_shard_counts() {
    // Overload is where nondeterminism hides: shed decisions, eviction
    // choices, and backpressure toggles all depend on exact queue state
    // at exact instants. The epoch scheduler must not perturb any of it.
    let serial = saturating_mmpp_quartet(1);
    assert!(
        serial.contains("\"clean\":true"),
        "saturated open loop must sanitize clean: {serial}"
    );
    assert!(serial.contains("\"shed\":"), "surface missing shed counts");
    for workers in [2, 4, 8] {
        assert_eq!(
            serial,
            saturating_mmpp_quartet(workers),
            "open-loop surface diverged at {workers} epoch workers"
        );
    }
}

#[test]
fn noisy_chain_json_report_is_identical_across_shard_counts() {
    // The parallel epoch scheduler must not perturb a single byte of the
    // serialized report, even with link-retry randomness live on all
    // eight cubes' host links.
    let serial = noisy_octet(1);
    assert!(
        serial.contains("\"clean\":true"),
        "noisy chain must sanitize clean: {serial}"
    );
    assert!(serial.contains("retries="), "fingerprint missing stats");
    for workers in [2, 4, 8] {
        assert_eq!(
            serial,
            noisy_octet(workers),
            "JsonReport diverged at {workers} epoch workers"
        );
    }
}
