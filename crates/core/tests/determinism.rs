//! Determinism regression tests: repeated runs of the same experiment
//! must agree to the bit — figures, tables, and sanitizer reports.
//!
//! These guard the `HashMap`→`BTreeMap` conversions and any future
//! iteration-order dependence: a randomized container in a simulation
//! path shows up here as a flaky byte-level mismatch.

use hmc_core::hmc_types::TimeDelta;
use hmc_core::measure::MeasureConfig;
use hmc_core::sanitize::fig9_bandwidth_subset;
use hmc_core::SystemConfig;

fn tiny() -> MeasureConfig {
    MeasureConfig {
        warmup: TimeDelta::from_us(20),
        window: TimeDelta::from_us(60),
    }
}

#[test]
fn repeated_runs_are_bit_identical() {
    let cfg = SystemConfig::default();
    let a = fig9_bandwidth_subset(&cfg, &tiny(), false);
    let b = fig9_bandwidth_subset(&cfg, &tiny(), false);
    assert_eq!(a.fingerprint(), b.fingerprint(), "figures must not drift");
    assert_eq!(
        a.table().to_string(),
        b.table().to_string(),
        "rendered tables must match byte for byte"
    );
}

#[test]
fn sanitized_reruns_agree_including_reports() {
    let cfg = SystemConfig::default();
    let a = fig9_bandwidth_subset(&cfg, &tiny(), true);
    let b = fig9_bandwidth_subset(&cfg, &tiny(), true);
    assert_eq!(a.fingerprint(), b.fingerprint());
    // The sanitizer's own accounting is part of the deterministic
    // surface: identical runs perform identical checks in identical
    // order, so the JSON reports are byte-identical too.
    assert_eq!(a.report.to_json(), b.report.to_json());
    assert_eq!(a.report.to_string(), b.report.to_string());
}
