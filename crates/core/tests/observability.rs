//! Chain-wide observability invariants:
//!
//! * arming the full observer surface (lifecycle tracer, per-cube gauge
//!   samplers, epoch profiler) must be *bit-inert* — the simulation's own
//!   results are byte-identical with and without the observers, with the
//!   protocol sanitizer armed in both runs;
//! * the deterministic observer artifacts themselves (gauge streams,
//!   epoch profiles, trace exports) must be byte-identical between a
//!   serial and a parallel pump of the same chain.

use hmc_core::hmc_types::{RequestKind, RequestSize, Time, TimeDelta};
use hmc_core::observe::{metrics_json, run_chain_observed, TraceReport};
use hmc_core::topology::Topology;
use hmc_core::{JsonReport, SystemBuilder, SystemConfig};
use hmc_host::Workload;

/// Runs an 8-cube chain on `workers` epoch threads, sanitizer armed,
/// optionally with every observer armed on top. Returns the
/// simulation-results fingerprint (which must not see the observers)
/// plus the full sanitizer JSON (identical across worker counts at a
/// *fixed* observer configuration; its check counters legitimately grow
/// with the extra sampling instants an armed gauge sampler pumps).
fn octet_fingerprint(workers: usize, observed: bool) -> (String, String) {
    let mut b = SystemBuilder::new(SystemConfig::default())
        .sanitizer()
        .parallel_shards(workers)
        .topology(Topology::chain(8));
    if observed {
        b = b.tracing(4).metrics(TimeDelta::from_us(1)).epoch_profiler();
    }
    let mut sys = b.build_chain();
    sys.apply_workload(&Workload::full_scale(
        RequestKind::ReadOnly,
        RequestSize::new(128).expect("size"),
    ));
    sys.start(Time::ZERO);
    sys.run_for(TimeDelta::from_us(5));
    sys.stop_generation();
    assert!(
        sys.run_until_idle(TimeDelta::from_ms(10)),
        "8-cube chain (workers={workers}, observed={observed}) failed to drain"
    );
    sys.sanitize_check_drained();
    let report = sys.sanitizer_report();
    let s = sys.host_stats();
    let results = format!(
        "reads={} bytes={} lat_total={} lat_count={} events={} now={} \
         injected={} retired={} in_flight={} clean={} violations={}",
        s.reads_completed,
        s.counted_bytes,
        s.read_latency.total().as_ps(),
        s.read_latency.count(),
        sys.events_processed(),
        sys.now().as_ps(),
        report.injected(),
        report.retired(),
        report.in_flight(),
        report.is_clean(),
        report.total_violations(),
    );
    (results, report.to_json())
}

#[test]
fn armed_observability_is_bit_inert_on_the_parallel_chain() {
    // Tracer + per-cube samplers + epoch profiler must not move a single
    // byte of the simulation's own results — serial or parallel.
    let (bare, bare_json) = octet_fingerprint(1, false);
    assert!(bare.contains("clean=true"), "chain must sanitize clean");
    let (bare4, bare4_json) = octet_fingerprint(4, false);
    let (armed1, armed1_json) = octet_fingerprint(1, true);
    let (armed4, armed4_json) = octet_fingerprint(4, true);
    for (label, fp) in [
        ("workers=4 bare", &bare4),
        ("workers=1 armed", &armed1),
        ("workers=4 armed", &armed4),
    ] {
        assert_eq!(&bare, fp, "results diverged at {label}");
    }
    // At a fixed observer configuration the sanitizer's own accounting
    // (including check counters) is part of the deterministic surface.
    assert_eq!(bare_json, bare4_json, "bare sanitizer JSON diverged");
    assert_eq!(armed1_json, armed4_json, "armed sanitizer JSON diverged");
}

/// Captures every deterministic observer artifact of one fully-observed
/// chain run: the merged cube-prefixed gauge stream, the epoch profile,
/// and the merged trace report (stage counts + Perfetto export).
fn observer_artifacts(workers: usize) -> String {
    let obs = run_chain_observed(
        &SystemConfig::default(),
        Topology::chain(4),
        &Workload::read_stream(128, RequestSize::new(64).expect("size")),
        None,
        2,
        Some(TimeDelta::from_us(1)),
        workers,
    );
    assert_eq!(obs.integrity_failures, 0);
    let metrics = obs.metrics.expect("metrics were enabled");
    format!(
        "{}\n{}\n{}",
        metrics_json(&metrics),
        obs.profile.to_json(),
        obs.report.chrome_json_with_profile(Some(&obs.profile)),
    )
}

#[test]
fn observer_artifacts_are_identical_serial_vs_parallel() {
    // The gauge stream, the epoch profile, and the trace export are all
    // derived from simulation state only — a parallel pump must emit the
    // very same bytes as the serial one.
    let serial = observer_artifacts(1);
    assert!(serial.contains("cube0.host.outstanding"));
    // Hop gauges are named by global edge index: cube 3's port in a
    // 4-cube chain is edge 2.
    assert!(serial.contains("cube3.hop.edge2.credits"));
    assert!(serial.contains("\"window_utilization\""));
    for workers in [2, 4] {
        let par = observer_artifacts(workers);
        if serial != par {
            let i = serial
                .bytes()
                .zip(par.bytes())
                .position(|(a, b)| a != b)
                .unwrap_or(serial.len().min(par.len()));
            let lo = i.saturating_sub(120);
            panic!(
                "observer artifacts diverged at {workers} epoch workers (byte {i}):\nserial: …{}…\nparallel: …{}…",
                &serial[lo..(i + 120).min(serial.len())],
                &par[lo..(i + 120).min(par.len())],
            );
        }
    }
}

#[test]
fn single_cube_chain_report_matches_single_system_report() {
    // The chain merge path over the identity topology must agree with
    // the plain single-system merge: same stage totals, no hop spans.
    let workload = Workload::read_stream(32, RequestSize::new(64).expect("size"));
    let chain = run_chain_observed(
        &SystemConfig::default(),
        Topology::chain(1),
        &workload,
        None,
        1,
        None,
        1,
    );
    let mut sys = SystemBuilder::new(SystemConfig::default())
        .tracing(1)
        .build();
    sys.host_mut().apply_workload(&workload);
    sys.host_mut().start(Time::ZERO);
    assert!(sys.run_until_idle(TimeDelta::from_ms(100)));
    let single = TraceReport::from_system(&sys);
    for s in hmc_core::hmc_types::trace::Stage::ALL {
        assert_eq!(
            chain.report.stage(s).total().as_ps(),
            single.stage(s).total().as_ps(),
            "stage {s} diverged between chain(1) and System"
        );
    }
    assert_eq!(chain.report.json(), single.json(), "exports must agree");
}
