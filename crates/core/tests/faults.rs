//! End-to-end fault-plane tests: live thermal-shutdown recovery, link
//! degradation, and the inertness/determinism guarantees of the
//! robustness layer.

use hmc_core::experiments::faults::run_builtin;
use hmc_core::hmc_host::Workload;
use hmc_core::hmc_types::{RequestKind, RequestSize, Time, TimeDelta};
use hmc_core::measure::{run_measurement, MeasureConfig};
use hmc_core::sim_engine::FaultScenario;
use hmc_core::{System, SystemConfig};

/// A window wide enough to cover every built-in scenario's trigger
/// instant (200–400 µs) without the full standard runtime.
fn wide() -> MeasureConfig {
    MeasureConfig {
        warmup: TimeDelta::from_us(50),
        window: TimeDelta::from_us(400),
    }
}

fn robust_system(scenario: &str) -> System {
    let mut cfg = SystemConfig::default();
    cfg.host.robust.enabled = true;
    let mut sys = System::new(cfg);
    sys.enable_sanitizer();
    sys.install_faults(&FaultScenario::builtin(scenario).expect("built-in"));
    sys
}

#[test]
fn write_workload_thermal_spike_shuts_down_and_recovers() {
    // thermal-throttle spikes to 82 °C at 300 µs: above the 75 °C write
    // limit, below the 85 °C read limit — the paper's ~10 °C earlier
    // write-workload shutdown, reproduced live.
    let mut sys = robust_system("thermal-throttle");
    sys.host_mut().apply_workload(&Workload::full_scale(
        RequestKind::WriteOnly,
        RequestSize::MAX,
    ));
    sys.host_mut().start(Time::ZERO);
    sys.step_until(Time::from_ps(400_000_000));

    assert_eq!(sys.recoveries().len(), 1, "write workload must shut down");
    let rec = &sys.recoveries()[0];
    assert_eq!(rec.shutdown_at, Time::from_ps(300_000_000));
    assert_eq!(rec.surface_c, 82.0);
    // The documented recovery sequence: 60 s cool + 500 ms restart +
    // 500 ms retrain + 2 s re-init = 63 s of dead time.
    assert_eq!(rec.outage(), TimeDelta::from_secs(63));
    assert!(rec.replayed > 0, "the in-flight window replays");
    assert_eq!(
        rec.resume_at,
        Time::from_ps(300_000_000) + TimeDelta::from_secs(63)
    );

    // Run past the resume instant so the replay executes, then drain.
    sys.step_until(rec.resume_at + TimeDelta::from_us(200));
    sys.host_mut().stop_generation();
    assert!(sys.run_until_idle(TimeDelta::from_ms(50)), "recovery hung");
    sys.sanitize_check_drained();
    let report = sys.sanitizer_report();
    assert!(report.is_clean(), "{report}");
    assert_eq!(sys.host().outstanding(), 0);
}

#[test]
fn read_workload_survives_the_same_spike_with_refresh_boost() {
    // 82 °C is below the 85 °C read limit: no shutdown, but above the
    // 80 °C refresh-boost threshold.
    let mut sys = robust_system("thermal-throttle");
    sys.host_mut().apply_workload(&Workload::full_scale(
        RequestKind::ReadOnly,
        RequestSize::MAX,
    ));
    sys.host_mut().start(Time::ZERO);
    sys.step_until(Time::from_ps(400_000_000));
    assert!(sys.recoveries().is_empty(), "read workload must survive");
    sys.host_mut().stop_generation();
    assert!(sys.run_until_idle(TimeDelta::from_ms(50)));
    sys.sanitize_check_drained();
    assert!(sys.sanitizer_report().is_clean());
}

#[test]
fn thermal_recovery_is_bit_deterministic() {
    let run = || {
        run_builtin(&SystemConfig::default(), "thermal-runaway", &wide())
            .expect("built-in")
            .fingerprint()
    };
    let a = run();
    assert_eq!(a, run(), "recovery cycle must replay identically");
    // The fingerprint proves a shutdown actually happened (index 14).
    assert_eq!(a[14], 1, "exactly one shutdown in the window");
}

#[test]
fn dead_link_drains_onto_the_survivor() {
    let mut sys = robust_system("link-death");
    sys.host_mut().apply_workload(&Workload::full_scale(
        RequestKind::ReadOnly,
        RequestSize::MAX,
    ));
    sys.host_mut().start(Time::ZERO);
    sys.step_until(Time::from_ps(600_000_000));

    assert!(
        sys.host().link_is_dead(1),
        "stalled link must be declared dead"
    );
    assert!(!sys.host().link_is_dead(0), "survivor stays up");
    assert_eq!(sys.host().live_links(), 1);
    let at_death = sys.host().stats().reads_completed;
    sys.step_until(Time::from_ps(800_000_000));
    assert!(
        sys.host().stats().reads_completed > at_death,
        "traffic keeps flowing through the survivor"
    );
    sys.host_mut().stop_generation();
    assert!(sys.run_until_idle(TimeDelta::from_ms(50)));
    sys.sanitize_check_drained();
    assert!(
        sys.sanitizer_report().is_clean(),
        "{}",
        sys.sanitizer_report()
    );
}

#[test]
fn enabling_robustness_without_faults_is_bit_inert() {
    let mc = MeasureConfig {
        warmup: TimeDelta::from_us(30),
        window: TimeDelta::from_us(150),
    };
    let wl = Workload::full_scale(RequestKind::ReadOnly, RequestSize::MAX);
    let plain = run_measurement(&SystemConfig::default(), &wl, &mc);
    let mut cfg = SystemConfig::default();
    cfg.host.robust.enabled = true;
    let robust = run_measurement(&cfg, &wl, &mc);
    // Deadline tracking must observe, never perturb: every figure is
    // identical to the bit with the layer on.
    assert_eq!(
        plain.bandwidth_gbs.to_bits(),
        robust.bandwidth_gbs.to_bits()
    );
    assert_eq!(plain.mrps.to_bits(), robust.mrps.to_bits());
    assert_eq!(
        plain.read_latency.mean().as_ps(),
        robust.read_latency.mean().as_ps()
    );
    assert_eq!(plain.device_delta, robust.device_delta);
}

#[test]
fn every_builtin_scenario_is_clean_and_deterministic() {
    let cfg = SystemConfig::default();
    for name in FaultScenario::builtin_names() {
        let a = run_builtin(&cfg, name, &wide()).expect("built-in");
        assert!(
            a.is_clean(),
            "scenario '{name}' must stay clean:\n{}",
            a.report
        );
        assert_eq!(a.issued, a.completed, "scenario '{name}' lost requests");
        let b = run_builtin(&cfg, name, &wide()).expect("built-in");
        assert_eq!(
            a.fingerprint(),
            b.fingerprint(),
            "scenario '{name}' must be deterministic"
        );
    }
}
