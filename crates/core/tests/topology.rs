//! Topology regression tests.
//!
//! The single-cube [`ChainSystem`] claims to execute the *exact* event
//! interleaving of [`System`] — these tests pin that claim to the bit
//! (`f64::to_bits` on every derived measurement), and pin the multi-cube
//! pump to deterministic re-execution under an adverse (noisy-link,
//! sanitizer-armed) configuration.

use hmc_core::hmc_types::{RequestKind, RequestSize, Time, TimeDelta};
use hmc_core::topology::{ChainSystem, Topology};
use hmc_core::{System, SystemConfig};
use hmc_host::Workload;
use sim_engine::FaultScenario;

const WARMUP: TimeDelta = TimeDelta::from_us(20);
const WINDOW: TimeDelta = TimeDelta::from_us(60);

/// Everything a measurement run derives, flattened to exact bits.
#[derive(Debug, PartialEq, Eq)]
struct Fingerprint {
    reads_completed: u64,
    writes_completed: u64,
    counted_bytes: u64,
    latency_count: u64,
    latency_mean_ps: u64,
    bandwidth_bits: u64,
    mrps_bits: u64,
    dev_reads: u64,
    dev_writes: u64,
    dev_bytes_down: u64,
    dev_activations: u64,
    events: u64,
    now_ps: u64,
}

fn run_system(w: &Workload) -> Fingerprint {
    let mut sys = System::new(SystemConfig::default());
    sys.host_mut().apply_workload(w);
    sys.host_mut().start(Time::ZERO);
    sys.step_until(Time::ZERO + WARMUP);
    sys.host_mut().reset_stats();
    sys.step_until(Time::ZERO + WARMUP + WINDOW);
    let s = sys.host().stats();
    let d = sys.device().stats();
    Fingerprint {
        reads_completed: s.reads_completed,
        writes_completed: s.writes_completed,
        counted_bytes: s.counted_bytes,
        latency_count: s.read_latency.count(),
        latency_mean_ps: s.read_latency.mean().as_ps(),
        bandwidth_bits: s.bandwidth_gbs(WINDOW).to_bits(),
        mrps_bits: s.mrps(WINDOW).to_bits(),
        dev_reads: d.reads_completed,
        dev_writes: d.writes_completed,
        dev_bytes_down: d.bytes_down,
        dev_activations: d.bank_activations,
        events: sys.events_processed(),
        now_ps: sys.now().as_ps(),
    }
}

fn run_chain(w: &Workload) -> Fingerprint {
    let mut sys = ChainSystem::new(SystemConfig::default(), Topology::single());
    sys.host_mut(0).apply_workload(w);
    sys.host_mut(0).start(Time::ZERO);
    sys.step_until(Time::ZERO + WARMUP);
    sys.reset_stats();
    sys.step_until(Time::ZERO + WARMUP + WINDOW);
    let s = sys.host_stats();
    let d = sys.device(0).stats();
    Fingerprint {
        reads_completed: s.reads_completed,
        writes_completed: s.writes_completed,
        counted_bytes: s.counted_bytes,
        latency_count: s.read_latency.count(),
        latency_mean_ps: s.read_latency.mean().as_ps(),
        bandwidth_bits: s.bandwidth_gbs(WINDOW).to_bits(),
        mrps_bits: s.mrps(WINDOW).to_bits(),
        dev_reads: d.reads_completed,
        dev_writes: d.writes_completed,
        dev_bytes_down: d.bytes_down,
        dev_activations: d.bank_activations,
        events: sys.events_processed(),
        now_ps: sys.now().as_ps(),
    }
}

#[test]
fn single_cube_chain_is_bit_identical_to_system() {
    // Random full-scale traffic exercises every port RNG; mixed traffic
    // exercises the read/write split; the stream exercises exact pacing.
    let workloads = [
        Workload::full_scale(RequestKind::ReadOnly, RequestSize::new(128).expect("size")),
        Workload::mixed(RequestSize::new(64).expect("size"), 0.7),
        Workload::read_stream(512, RequestSize::new(32).expect("size")),
    ];
    for w in &workloads {
        let a = run_system(w);
        let b = run_chain(w);
        assert_eq!(a, b, "single-cube chain diverged from System for {w:?}");
        // Streams finish inside the warmup, so only the continuous
        // workloads must show traffic in the measurement window; the
        // stream still pins event counts and the final clock.
        if matches!(w, Workload::Continuous { .. }) {
            assert!(a.reads_completed > 0, "workload produced no traffic");
        }
        assert!(a.events > 0, "no events processed");
    }
}

#[test]
fn single_cube_chain_matches_system_under_noisy_link() {
    // The retry path must also be bit-identical: same BER draws, same
    // replay schedule. noisy-link arms BER 1e-6 on both links at t=0.
    let scenario = FaultScenario::builtin("noisy-link").expect("builtin scenario");
    let w = Workload::full_scale(RequestKind::ReadOnly, RequestSize::new(128).expect("size"));

    let mut sys = System::new(SystemConfig::default());
    sys.install_faults(&scenario);
    sys.host_mut().apply_workload(&w);
    sys.host_mut().start(Time::ZERO);
    sys.step_until(Time::ZERO + WINDOW);

    let mut chain = ChainSystem::new(SystemConfig::default(), Topology::single());
    chain.install_faults(0, &scenario);
    chain.host_mut(0).apply_workload(&w);
    chain.host_mut(0).start(Time::ZERO);
    chain.step_until(Time::ZERO + WINDOW);

    assert!(
        sys.device().stats().link_retries > 0,
        "scenario injected no retries — test is vacuous"
    );
    assert_eq!(
        sys.device().stats().link_retries,
        chain.device(0).stats().link_retries
    );
    assert_eq!(
        sys.host().stats().reads_completed,
        chain.host_stats().reads_completed
    );
    assert_eq!(sys.events_processed(), chain.events_processed());
}

/// Drives a two-cube chain under the noisy-link scenario on both cubes
/// with the sanitizer armed, and returns its deterministic surface.
fn run_noisy_pair() -> (String, u64, u64, u64) {
    let mut sys = ChainSystem::new(SystemConfig::default(), Topology::chain(2));
    sys.enable_sanitizer();
    let scenario = FaultScenario::builtin("noisy-link").expect("builtin scenario");
    sys.install_faults(0, &scenario);
    sys.install_faults(1, &scenario);
    sys.apply_workload(&Workload::full_scale(
        RequestKind::ReadOnly,
        RequestSize::new(128).expect("size"),
    ));
    sys.start(Time::ZERO);
    sys.run_for(TimeDelta::from_us(50));
    sys.stop_generation();
    let drained = sys.run_until_idle(TimeDelta::from_ms(10));
    assert!(drained, "noisy two-cube chain failed to drain");
    sys.sanitize_check_drained();
    let s = sys.host_stats();
    (
        sys.sanitizer_report().to_json(),
        s.reads_completed,
        sys.device(0).stats().link_retries + sys.device(1).stats().link_retries,
        sys.events_processed(),
    )
}

/// Runs a `cubes`-cube chain with the sanitizer armed on `workers` epoch
/// workers and flattens every observable surface — merged host window,
/// per-cube device counters, event totals, final clock, and the full
/// sanitizer report — into one comparable string.
fn run_sharded(cubes: u8, workers: usize) -> String {
    let mut sys = ChainSystem::new(SystemConfig::default(), Topology::chain(cubes));
    sys.set_parallel_shards(workers);
    sys.enable_sanitizer();
    sys.apply_workload(&Workload::full_scale(
        RequestKind::ReadOnly,
        RequestSize::new(128).expect("size"),
    ));
    sys.start(Time::ZERO);
    sys.run_for(TimeDelta::from_us(5));
    sys.stop_generation();
    assert!(
        sys.run_until_idle(TimeDelta::from_ms(10)),
        "{cubes}-cube chain on {workers} workers failed to drain"
    );
    sys.sanitize_check_drained();
    let s = sys.host_stats();
    let mut out = format!(
        "reads={} writes={} bytes={} lat_n={} lat_mean={} events={} now={}\n",
        s.reads_completed,
        s.writes_completed,
        s.counted_bytes,
        s.read_latency.count(),
        s.read_latency.mean().as_ps(),
        sys.events_processed(),
        sys.now().as_ps(),
    );
    for c in 0..sys.cubes() {
        let d = sys.device(c).stats();
        out.push_str(&format!(
            "cube{c}: reads={} writes={} down={} up={} acts={} retries={}\n",
            d.reads_completed,
            d.writes_completed,
            d.bytes_down,
            d.bytes_up,
            d.bank_activations,
            d.link_retries,
        ));
    }
    out.push_str(&sys.sanitizer_report().to_json());
    out
}

#[test]
fn parallel_shards_are_bit_identical_to_serial() {
    // The tentpole claim: the epoch scheduler computes the same states no
    // matter how many worker threads pump the shards — at every cube
    // count. Serial (1 worker) is the reference; 2/4/8 workers must agree
    // byte for byte, sanitizer report included.
    for cubes in 1..=8u8 {
        let serial = run_sharded(cubes, 1);
        for workers in [2, 4, 8] {
            let parallel = run_sharded(cubes, workers);
            assert_eq!(
                serial, parallel,
                "{cubes} cubes diverged on {workers} workers"
            );
        }
        assert!(
            serial.contains("\"clean\":true"),
            "sanitizer flagged the {cubes}-cube run: {serial}"
        );
    }
}

#[test]
fn noisy_two_cube_chain_drains_deterministically() {
    let a = run_noisy_pair();
    let b = run_noisy_pair();
    assert_eq!(a, b, "noisy chain runs must agree to the byte");
    assert!(a.2 > 0, "noisy-link scenario injected no retries");
    // The sanitizer saw a fully conserved run: no violations even with
    // every packet at risk of replay on both cubes' host links.
    assert!(
        a.0.contains("\"clean\":true"),
        "sanitizer flagged the noisy chain: {}",
        a.0
    );
}
