//! Fault-injection tests for the runtime protocol sanitizer.
//!
//! Each test corrupts one aspect of a valid configuration and asserts
//! that the sanitizer reports the *specific* violation class the fault
//! should produce — proving the checks detect real protocol breakage
//! rather than merely counting to zero on healthy runs.

use hmc_core::hmc_host::Workload;
use hmc_core::hmc_types::{RequestKind, RequestSize, Time, TimeDelta};
use hmc_core::sim_engine::ViolationClass;
use hmc_core::{System, SystemConfig};

/// Drives `sys` with full-scale read traffic for `span`.
fn drive(sys: &mut System, span: TimeDelta) {
    sys.host_mut().apply_workload(&Workload::full_scale(
        RequestKind::ReadOnly,
        RequestSize::MAX,
    ));
    sys.host_mut().start(Time::ZERO);
    sys.step_until(Time::ZERO + span);
}

#[test]
fn zeroed_trp_trips_dram_timing_checks() {
    let mut cfg = SystemConfig::default();
    // A tRP of zero shrinks the row cycle below the Gen2 floor: banks
    // re-activate faster than the DRAM process allows.
    cfg.mem.dram.t_rp = TimeDelta::ZERO;
    let mut sys = System::new(cfg);
    sys.enable_sanitizer();
    drive(&mut sys, TimeDelta::from_us(100));

    let report = sys.sanitizer_report();
    assert!(
        report.count_of(ViolationClass::DramTiming) > 0,
        "tRP=0 must violate the timing floor:\n{report}"
    );
    // The fault is purely a timing one — conservation and credit
    // accounting stay intact.
    assert_eq!(report.count_of(ViolationClass::Conservation), 0);
    assert_eq!(report.count_of(ViolationClass::CreditOverflow), 0);
    assert_eq!(report.count_of(ViolationClass::CreditUnderflow), 0);
}

#[test]
fn wedged_device_trips_watchdog_with_diagnostic_dump() {
    let mut cfg = SystemConfig::default();
    // A 10 ms tRAS parks every bank for far longer than the run: the
    // first wave of reads occupies all banks, the FIFOs and link
    // ingress back up, the hosts stall on credit, and nothing ever
    // completes — the classic wedge.
    cfg.mem.dram.t_ras = TimeDelta::from_ms(10);
    let mut sys = System::new(cfg);
    sys.enable_sanitizer_with_span(TimeDelta::from_us(50));
    drive(&mut sys, TimeDelta::from_us(200));

    let report = sys.sanitizer_report();
    assert!(
        report.count_of(ViolationClass::Watchdog) >= 1,
        "no forward progress must trip the watchdog:\n{report}"
    );
    let v = report
        .violations()
        .iter()
        .find(|v| v.class == ViolationClass::Watchdog)
        .expect("watchdog violation recorded");
    // The violation carries the full diagnostic dump for post-mortem.
    assert!(v.detail.contains("waiting_credit"), "detail: {}", v.detail);
    assert!(!report.is_clean());
}

#[test]
fn healthy_run_is_clean_and_drains() {
    let mut sys = System::new(SystemConfig::default());
    sys.enable_sanitizer_with_span(TimeDelta::from_us(50));
    drive(&mut sys, TimeDelta::from_us(200));

    let report = sys.sanitizer_report();
    assert!(report.is_clean(), "{report}");
    assert!(report.total_checks() > 0);
    // JSON export round-trips the clean verdict.
    let json = report.to_json();
    assert!(json.starts_with("{\"clean\":true,"), "{json}");
}
