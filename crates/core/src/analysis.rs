//! Analysis tools: Little's-law readings and saturation-knee detection —
//! the methodology behind the paper's Figure 17 discussion.

use sim_engine::LinearFit;

/// One `(offered bandwidth, mean latency)` point of a latency–bandwidth
/// sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadPoint {
    /// Measured counted bandwidth, GB/s.
    pub bandwidth_gbs: f64,
    /// Mean read latency, ns.
    pub latency_ns: f64,
    /// Requests per second actually completed.
    pub requests_per_sec: f64,
}

impl LoadPoint {
    /// Little's law at this operating point: mean outstanding requests
    /// `L = λ · W`.
    pub fn outstanding(&self) -> f64 {
        self.requests_per_sec * self.latency_ns * 1e-9
    }
}

/// Summary of a latency–bandwidth sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SaturationAnalysis {
    /// The sweep, in increasing offered-load order.
    pub points: Vec<LoadPoint>,
    /// Index of the detected saturation knee, if the sweep saturates.
    pub knee: Option<usize>,
}

impl SaturationAnalysis {
    /// Analyses a sweep (points must be in increasing offered-load
    /// order). The knee is the first point whose latency exceeds the
    /// low-load latency by `knee_factor` while bandwidth stops growing
    /// (< 10 % gain over the previous point).
    pub fn analyse(points: Vec<LoadPoint>, knee_factor: f64) -> Self {
        let knee = if points.len() < 2 {
            None
        } else {
            let base = points[0].latency_ns;
            (1..points.len()).find(|&i| {
                let bw_gain = points[i].bandwidth_gbs / points[i - 1].bandwidth_gbs.max(1e-9);
                points[i].latency_ns > base * knee_factor && bw_gain < 1.10
            })
        };
        SaturationAnalysis { points, knee }
    }

    /// The saturated bandwidth (at the knee, or the max observed).
    pub fn saturation_bandwidth_gbs(&self) -> f64 {
        match self.knee {
            Some(i) => self.points[i].bandwidth_gbs,
            None => self
                .points
                .iter()
                .map(|p| p.bandwidth_gbs)
                .fold(0.0, f64::max),
        }
    }

    /// Little's-law outstanding count at the saturation point — the
    /// quantity the paper finds to be ≈375 for 4-bank patterns and half
    /// that for 2-bank patterns.
    pub fn outstanding_at_saturation(&self) -> Option<f64> {
        // At saturation the deepest point of the sweep carries the full
        // queue population; use the final point if no knee was detected.
        match self.knee {
            Some(_) => self.points.last().map(LoadPoint::outstanding),
            None => None,
        }
    }
}

/// Fits a line to `(x, y)` observation pairs — re-exported convenience
/// for the Figure 11/12 regressions.
pub fn fit_line(points: &[(f64, f64)]) -> Option<LinearFit> {
    LinearFit::fit(points)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sweep_with_knee() -> Vec<LoadPoint> {
        // Bandwidth saturates at 10 GB/s while latency climbs.
        vec![
            LoadPoint {
                bandwidth_gbs: 2.0,
                latency_ns: 700.0,
                requests_per_sec: 12.5e6,
            },
            LoadPoint {
                bandwidth_gbs: 6.0,
                latency_ns: 800.0,
                requests_per_sec: 37.5e6,
            },
            LoadPoint {
                bandwidth_gbs: 9.8,
                latency_ns: 1_500.0,
                requests_per_sec: 61.0e6,
            },
            LoadPoint {
                bandwidth_gbs: 10.0,
                latency_ns: 4_000.0,
                requests_per_sec: 62.5e6,
            },
            LoadPoint {
                bandwidth_gbs: 10.0,
                latency_ns: 6_000.0,
                requests_per_sec: 62.5e6,
            },
        ]
    }

    #[test]
    fn knee_detected_where_bandwidth_flattens() {
        let a = SaturationAnalysis::analyse(sweep_with_knee(), 2.0);
        assert_eq!(a.knee, Some(3));
        assert!((a.saturation_bandwidth_gbs() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn littles_law_outstanding() {
        let p = LoadPoint {
            bandwidth_gbs: 10.0,
            latency_ns: 6_000.0,
            requests_per_sec: 62.5e6,
        };
        // 62.5e6 × 6 µs = 375 — the paper's 4-bank number.
        assert!((p.outstanding() - 375.0).abs() < 1e-6);
        let a = SaturationAnalysis::analyse(sweep_with_knee(), 2.0);
        assert!((a.outstanding_at_saturation().unwrap() - 375.0).abs() < 1e-6);
    }

    #[test]
    fn unsaturated_sweep_has_no_knee() {
        let pts = vec![
            LoadPoint {
                bandwidth_gbs: 2.0,
                latency_ns: 700.0,
                requests_per_sec: 12.5e6,
            },
            LoadPoint {
                bandwidth_gbs: 4.0,
                latency_ns: 710.0,
                requests_per_sec: 25.0e6,
            },
        ];
        let a = SaturationAnalysis::analyse(pts, 2.0);
        assert_eq!(a.knee, None);
        assert_eq!(a.outstanding_at_saturation(), None);
        assert!((a.saturation_bandwidth_gbs() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn tiny_sweeps_handled() {
        let a = SaturationAnalysis::analyse(vec![], 2.0);
        assert_eq!(a.knee, None);
        assert_eq!(a.saturation_bandwidth_gbs(), 0.0);
    }

    #[test]
    fn fit_line_reexport() {
        let f = fit_line(&[(0.0, 1.0), (1.0, 2.0)]).unwrap();
        assert!((f.slope - 1.0).abs() < 1e-12);
    }
}
