//! The paper's targeted access patterns, expressed as GUPS address masks.
//!
//! A "*k*-bank" pattern restricts random traffic to *k* banks inside vault
//! 0; a "*k*-vault" pattern spans all banks of *k* vaults. These are the
//! x-axis categories of Figures 7–10 and 16, built exactly the way the
//! paper builds them: by forcing address bits to zero with the GUPS mask
//! registers (Section IV-A).

use std::fmt;

use hmc_types::{AddressMapping, AddressMask, HmcError, HmcSpec};

/// One of the paper's access-pattern categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessPattern {
    /// Random traffic over `n` banks of vault 0 (`n` a power of two up to
    /// the banks per vault).
    Banks(u32),
    /// Random traffic over all banks of `n` vaults (`n` a power of two up
    /// to the vault count).
    Vaults(u32),
}

impl AccessPattern {
    /// The x-axis of the paper's pattern figures, widest pattern first:
    /// 16, 8, 4, 2, 1 vaults, then 8, 4, 2, 1 banks.
    pub fn paper_axis() -> Vec<AccessPattern> {
        vec![
            AccessPattern::Vaults(16),
            AccessPattern::Vaults(8),
            AccessPattern::Vaults(4),
            AccessPattern::Vaults(2),
            AccessPattern::Vaults(1),
            AccessPattern::Banks(8),
            AccessPattern::Banks(4),
            AccessPattern::Banks(2),
            AccessPattern::Banks(1),
        ]
    }

    /// The GUPS mask implementing this pattern under the given mapping
    /// and geometry.
    ///
    /// # Errors
    ///
    /// Returns [`HmcError::InvalidPattern`] if the count is not a power of
    /// two or exceeds the geometry.
    pub fn mask(&self, mapping: AddressMapping, spec: &HmcSpec) -> Result<AddressMask, HmcError> {
        let check = |n: u32, limit: u32, what: &str| -> Result<u32, HmcError> {
            if n == 0 || !n.is_power_of_two() || n > limit {
                Err(HmcError::InvalidPattern(format!(
                    "{what} count {n} must be a power of two in 1..={limit}"
                )))
            } else {
                Ok(n.trailing_zeros())
            }
        };
        let vault_lo = mapping.vault_shift();
        let bank_lo = mapping.bank_shift(spec);
        match self {
            AccessPattern::Vaults(n) => {
                let bits = check(*n, spec.num_vaults(), "vault")?;
                if bits == spec.vault_bits() {
                    return Ok(AddressMask::NONE);
                }
                // Freeze the high vault-field bits, leaving `bits` low
                // ones free: traffic spans 2^bits vaults, all banks.
                Ok(AddressMask::zero_bits(
                    vault_lo + bits,
                    vault_lo + spec.vault_bits() - 1,
                ))
            }
            AccessPattern::Banks(n) => {
                let bits = check(*n, spec.banks_per_vault(), "bank")?;
                // All traffic lands in vault 0 (vault field zeroed)...
                let vault_mask = AddressMask::zero_bits(vault_lo, bank_lo - 1);
                if bits == spec.bank_bits() {
                    return Ok(vault_mask);
                }
                // ...with only the low `bits` of the bank field free.
                Ok(vault_mask.with_zero_bits(bank_lo + bits, bank_lo + spec.bank_bits() - 1))
            }
        }
    }

    /// Number of distinct banks the pattern reaches.
    pub fn bank_count(&self, spec: &HmcSpec) -> u32 {
        match self {
            AccessPattern::Banks(n) => *n,
            AccessPattern::Vaults(n) => n * spec.banks_per_vault(),
        }
    }

    /// Number of distinct vaults the pattern reaches.
    pub fn vault_count(&self) -> u32 {
        match self {
            AccessPattern::Banks(_) => 1,
            AccessPattern::Vaults(n) => *n,
        }
    }
}

impl fmt::Display for AccessPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessPattern::Banks(1) => write!(f, "1 bank"),
            AccessPattern::Banks(n) => write!(f, "{n} banks"),
            AccessPattern::Vaults(1) => write!(f, "1 vault"),
            AccessPattern::Vaults(n) => write!(f, "{n} vaults"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmc_types::Address;
    use std::collections::BTreeSet;

    fn reached(mask: AddressMask) -> (BTreeSet<u16>, BTreeSet<u16>) {
        let spec = HmcSpec::default();
        let map = AddressMapping::default();
        let mut vaults = BTreeSet::new();
        let mut banks = BTreeSet::new();
        for raw in 0..(1u64 << 16) {
            let loc = map.decode(mask.apply(Address::new(raw << 4)), &spec);
            vaults.insert(loc.vault.index());
            banks.insert(loc.vault.index() * 16 + loc.bank.index());
        }
        (vaults, banks)
    }

    #[test]
    fn vault_patterns_reach_expected_counts() {
        let spec = HmcSpec::default();
        let map = AddressMapping::default();
        for n in [1u32, 2, 4, 8, 16] {
            let mask = AccessPattern::Vaults(n).mask(map, &spec).unwrap();
            let (vaults, banks) = reached(mask);
            assert_eq!(vaults.len() as u32, n, "{n} vaults");
            assert_eq!(banks.len() as u32, n * 16, "{n} vaults, all banks");
        }
    }

    #[test]
    fn bank_patterns_stay_in_vault_zero() {
        let spec = HmcSpec::default();
        let map = AddressMapping::default();
        for n in [1u32, 2, 4, 8, 16] {
            let mask = AccessPattern::Banks(n).mask(map, &spec).unwrap();
            let (vaults, banks) = reached(mask);
            assert_eq!(vaults.iter().copied().collect::<Vec<_>>(), vec![0]);
            assert_eq!(banks.len() as u32, n, "{n} banks");
        }
    }

    #[test]
    fn sixteen_vaults_is_unmasked() {
        let spec = HmcSpec::default();
        let map = AddressMapping::default();
        assert_eq!(
            AccessPattern::Vaults(16).mask(map, &spec).unwrap(),
            AddressMask::NONE
        );
    }

    #[test]
    fn invalid_patterns_rejected() {
        let spec = HmcSpec::default();
        let map = AddressMapping::default();
        assert!(AccessPattern::Vaults(3).mask(map, &spec).is_err());
        assert!(AccessPattern::Vaults(32).mask(map, &spec).is_err());
        assert!(AccessPattern::Banks(0).mask(map, &spec).is_err());
        assert!(AccessPattern::Banks(32).mask(map, &spec).is_err());
    }

    #[test]
    fn counts_and_axis() {
        let spec = HmcSpec::default();
        assert_eq!(AccessPattern::Banks(4).bank_count(&spec), 4);
        assert_eq!(AccessPattern::Vaults(2).bank_count(&spec), 32);
        assert_eq!(AccessPattern::Banks(4).vault_count(), 1);
        assert_eq!(AccessPattern::Vaults(8).vault_count(), 8);
        let axis = AccessPattern::paper_axis();
        assert_eq!(axis.len(), 9);
        assert_eq!(axis[0], AccessPattern::Vaults(16));
        assert_eq!(axis[8], AccessPattern::Banks(1));
    }

    #[test]
    fn display_matches_paper_labels() {
        assert_eq!(AccessPattern::Vaults(16).to_string(), "16 vaults");
        assert_eq!(AccessPattern::Vaults(1).to_string(), "1 vault");
        assert_eq!(AccessPattern::Banks(2).to_string(), "2 banks");
        assert_eq!(AccessPattern::Banks(1).to_string(), "1 bank");
    }
}
