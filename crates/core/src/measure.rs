//! Warm-up / measurement-window experiment runner.
//!
//! The paper warms the system up and then reads the GUPS counters over a
//! fixed window (20 s on hardware). The simulator reproduces the same
//! steady state in far less simulated time, so the default window is a few
//! milliseconds; [`MeasureConfig::quick`] shrinks it further for unit
//! tests and doc examples.

use hmc_host::{HostStats, Workload};
use hmc_mem::DeviceStats;
use hmc_power::ActivityRates;
use hmc_types::{Time, TimeDelta};
use mem_backend::MemoryBackend;
use sim_engine::Histogram;

use crate::builder::SystemBuilder;
use crate::system::{System, SystemConfig};

/// Measurement-window parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MeasureConfig {
    /// Simulated time before the window opens (reach steady state).
    pub warmup: TimeDelta,
    /// Measurement window length.
    pub window: TimeDelta,
}

impl MeasureConfig {
    /// The default experiment window: 100 µs warm-up, 1 ms measurement.
    pub fn standard() -> Self {
        MeasureConfig {
            warmup: TimeDelta::from_us(100),
            window: TimeDelta::from_ms(1),
        }
    }

    /// A fast window for tests and docs: 50 µs warm-up, 200 µs window.
    pub fn quick() -> Self {
        MeasureConfig {
            warmup: TimeDelta::from_us(50),
            window: TimeDelta::from_us(200),
        }
    }
}

impl Default for MeasureConfig {
    fn default() -> Self {
        MeasureConfig::standard()
    }
}

/// The outcome of one measurement window.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Counted bandwidth (paper accounting: full packet footprints of
    /// completed transactions over the window), GB/s.
    pub bandwidth_gbs: f64,
    /// Completed requests in millions per second.
    pub mrps: f64,
    /// Read-latency histogram over the window.
    pub read_latency: Histogram,
    /// Host-side counters over the window.
    pub host: HostStats,
    /// Device activity delta over the window.
    pub device_delta: DeviceStats,
    /// The window length.
    pub window: TimeDelta,
    /// Mean outstanding requests over the window, by Little's law
    /// (`throughput × mean latency`).
    pub outstanding: f64,
}

impl Measurement {
    /// Device activity expressed as rates, for the power model.
    pub fn activity_rates(&self) -> ActivityRates {
        ActivityRates::from_deltas(
            self.device_delta.link_bytes(),
            self.device_delta.data_read_bytes,
            self.device_delta.data_write_bytes,
            self.device_delta.bank_activations,
            self.device_delta.refreshes,
            self.window,
        )
    }

    /// Mean read latency in nanoseconds (0 if no reads completed).
    pub fn mean_latency_ns(&self) -> f64 {
        self.read_latency.mean().as_ns_f64()
    }
}

/// Runs `workload` on a fresh system and measures one window.
pub fn run_measurement(cfg: &SystemConfig, workload: &Workload, mc: &MeasureConfig) -> Measurement {
    run_measurement_with(cfg, workload, mc, |_| {})
}

/// Like [`run_measurement`], with a setup hook applied to the fresh
/// system before it starts (e.g. forcing the hot-regime refresh
/// multiplier).
pub fn run_measurement_with(
    cfg: &SystemConfig,
    workload: &Workload,
    mc: &MeasureConfig,
    setup: impl FnOnce(&mut System),
) -> Measurement {
    run_measurement_system(cfg, workload, mc, setup).0
}

/// Like [`run_measurement_with`], additionally returning the finished
/// [`System`] so callers can inspect component state after the window —
/// the sanitized runs read the merged `SanitizerReport` from it.
pub fn run_measurement_system(
    cfg: &SystemConfig,
    workload: &Workload,
    mc: &MeasureConfig,
    setup: impl FnOnce(&mut System),
) -> (Measurement, System) {
    let mut sys = SystemBuilder::new(cfg.clone()).build();
    setup(&mut sys);
    run_measurement_built(sys, workload, mc)
}

/// Measures one window on a system the caller already constructed —
/// the [`SystemBuilder`] entry point: declare observability up front,
/// build, then hand the system here.
pub fn run_measurement_built(
    mut sys: System,
    workload: &Workload,
    mc: &MeasureConfig,
) -> (Measurement, System) {
    sys.host_mut().apply_workload(workload);
    sys.host_mut().start(Time::ZERO);
    sys.step_until(Time::ZERO + mc.warmup);
    sys.host_mut().reset_stats();
    let before = sys.device().stats();
    sys.step_until(Time::ZERO + mc.warmup + mc.window);
    let after = sys.device().stats();
    let host = sys.host().stats();
    let bandwidth_gbs = host.bandwidth_gbs(mc.window);
    let mrps = host.mrps(mc.window);
    let read_latency = host.read_latency.clone();
    let completed_per_sec =
        (host.reads_completed + host.writes_completed) as f64 / mc.window.as_secs_f64();
    let outstanding = completed_per_sec * read_latency.mean().as_secs_f64();
    let m = Measurement {
        bandwidth_gbs,
        mrps,
        read_latency,
        device_delta: after - before,
        host,
        window: mc.window,
        outstanding,
    };
    (m, sys)
}

/// One backend's numbers for the cross-technology compare table: the
/// subset of [`Measurement`] every [`MemoryBackend`] can produce, plus
/// the concurrency gauge the comparison turns on.
#[derive(Debug, Clone)]
pub struct BackendMeasurement {
    /// Backend technology label.
    pub backend: &'static str,
    /// Counted bandwidth over the window, GB/s.
    pub bandwidth_gbs: f64,
    /// Completed requests, millions per second.
    pub mrps: f64,
    /// Mean read latency over the window, ns.
    pub mean_latency_ns: f64,
    /// 99th-percentile read latency over the window, ns (0 if no reads).
    pub p99_latency_ns: f64,
    /// Peak structurally independent channels observed with work in
    /// flight — vaults (HMC), banks (DIMM), pseudo-channels (HBM).
    pub peak_channels: usize,
    /// Backend-internal events processed during the window (the
    /// simulator-throughput numerator of `BENCH_simperf`).
    pub events: u64,
    /// Requests completed during the window.
    pub completed: u64,
}

/// Measures one warm-up + window cycle on any backend, sampling the
/// channels-in-flight gauge at 256 deterministic points across the
/// window. The generic analogue of [`run_measurement_built`] for the
/// `repro compare` table.
pub fn run_backend_measurement<B: MemoryBackend>(
    sys: &mut System<B>,
    workload: &Workload,
    mc: &MeasureConfig,
) -> BackendMeasurement {
    sys.host_mut().apply_workload(workload);
    sys.host_mut().start(Time::ZERO);
    sys.step_until(Time::ZERO + mc.warmup);
    sys.host_mut().reset_stats();
    let events_before = sys.device().events_processed();
    let completed_before = sys.device().core_stats().completed();
    let end = Time::ZERO + mc.warmup + mc.window;
    let slice = mc.window / 256;
    let mut peak = 0usize;
    while sys.now() < end {
        let next = (sys.now() + slice).min(end);
        sys.step_until(next);
        peak = peak.max(sys.device().channels_in_flight(sys.now()));
    }
    let host = sys.host().stats();
    BackendMeasurement {
        backend: sys.device().label(),
        bandwidth_gbs: host.bandwidth_gbs(mc.window),
        mrps: host.mrps(mc.window),
        mean_latency_ns: host.read_latency.mean().as_ns_f64(),
        p99_latency_ns: host
            .read_latency
            .quantile(0.99)
            .map_or(0.0, |d| d.as_ns_f64()),
        peak_channels: peak,
        events: sys.device().events_processed() - events_before,
        completed: sys.device().core_stats().completed() - completed_before,
    }
}

/// Runs a [`Workload::Stream`] to completion on a fresh system and
/// returns the latency histogram plus integrity-failure count.
pub fn run_stream(cfg: &SystemConfig, workload: &Workload) -> (Histogram, u64) {
    let mut sys = SystemBuilder::new(cfg.clone()).build();
    sys.host_mut().apply_workload(workload);
    sys.host_mut().start(Time::ZERO);
    let drained = sys.run_until_idle(TimeDelta::from_ms(100));
    assert!(
        drained,
        "stream did not drain: {} outstanding, host next event {:?}, \
         device next event {:?} at t={} ns",
        sys.host().outstanding(),
        sys.host().next_time(),
        sys.device().next_time(),
        sys.now().as_ns_f64(),
    );
    let stats = sys.host().stats();
    (stats.read_latency.clone(), stats.integrity_failures)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmc_types::{RequestKind, RequestSize};

    #[test]
    fn full_scale_reads_hit_calibrated_bandwidth() {
        let m = run_measurement(
            &SystemConfig::default(),
            &Workload::full_scale(RequestKind::ReadOnly, RequestSize::MAX),
            &MeasureConfig::quick(),
        );
        // Paper Figure 7: ro 128 B over 16 vaults ≈ 21 GB/s counted.
        assert!(
            (17.0..24.0).contains(&m.bandwidth_gbs),
            "ro bandwidth {}",
            m.bandwidth_gbs
        );
        assert!(m.mrps > 80.0, "mrps {}", m.mrps);
        assert!(m.mean_latency_ns() > 600.0);
        assert!(m.outstanding > 50.0);
    }

    #[test]
    fn activity_rates_consistent_with_bandwidth() {
        let m = run_measurement(
            &SystemConfig::default(),
            &Workload::full_scale(RequestKind::ReadOnly, RequestSize::MAX),
            &MeasureConfig::quick(),
        );
        let r = m.activity_rates();
        // Counted bytes at the host track wire bytes at the device.
        let host_rate = m.bandwidth_gbs * 1e9;
        assert!(
            (r.link_bytes_per_sec - host_rate).abs() / host_rate < 0.15,
            "device {} vs host {}",
            r.link_bytes_per_sec,
            host_rate
        );
        assert!(r.read_bytes_per_sec > 0.0);
        assert_eq!(r.write_bytes_per_sec, 0.0);
    }

    #[test]
    fn device_stats_subtraction_is_field_wise() {
        let before = DeviceStats {
            reads_completed: 10,
            bytes_up: 1_000,
            bank_activations: 7,
            ..DeviceStats::default()
        };
        let after = DeviceStats {
            reads_completed: 25,
            bytes_up: 4_000,
            row_hits: 3,
            ..before
        };
        let delta = after - before;
        assert_eq!(delta.reads_completed, 15);
        assert_eq!(delta.bytes_up, 3_000);
        assert_eq!(delta.bank_activations, 0);
        assert_eq!(delta.row_hits, 3);
        assert_eq!(delta.writes_completed, 0);
        // Subtracting a window from itself zeroes every counter.
        assert_eq!(after - after, DeviceStats::default());
    }

    #[test]
    fn stream_measurement_drains() {
        let (lat, fails) = run_stream(
            &SystemConfig::default(),
            &Workload::read_stream(12, RequestSize::new(64).unwrap()),
        );
        assert_eq!(lat.count(), 12);
        assert_eq!(fails, 0);
    }
}
