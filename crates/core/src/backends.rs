//! The backend preset vocabulary behind [`SystemBuilder::backend`].
//!
//! [`AnyBackend`] is the runtime-selected device model: the four
//! [`BackendKind`] presets (`hmc`, `hmc-gen3`, `ddr3-1600`, `hbm`)
//! instantiate into one of its variants, and `System<AnyBackend>` runs
//! the identical host pipeline against whichever technology was picked
//! — the honest-comparison requirement of the paper's Section V.
//!
//! Construction is split into three steps the builder composes:
//! [`apply_preset`] rewrites the system configuration to the preset's
//! geometry (Gen3 swaps in four full-width links and 16 GB of address
//! space; HBM swaps in the 32-vault HMC 2.0 geometry its pseudo-channel
//! count mirrors), [`instantiate`] constructs the device from the
//! rewritten config, and [`host_layout`] derives the address bit-field
//! layout the host's generators assume so the builder can run the
//! fail-fast [`AddressLayout`] handshake.
//!
//! [`SystemBuilder::backend`]: crate::builder::SystemBuilder::backend

use ddr_baseline::{DdrConfig, DdrDevice, DdrDeviceConfig};
use hmc_mem::{HbmConfig, HbmDevice, HmcDevice};
use hmc_types::{HmcSpec, HmcVersion, LinkConfig, MemoryRequest, Time};
use mem_backend::{AddressLayout, BackendKind, BackendOutput, CoreStats, MemoryBackend};
use sim_engine::{FaultKind, MetricsSampler, Sanitizer, Tracer};

use crate::system::SystemConfig;

/// A runtime-selected memory backend: one enum the `repro` binary and
/// the builder's preset path use so every technology runs behind the
/// same monomorphized host pipeline.
///
/// The Gen3 preset is the [`AnyBackend::Hmc`] variant constructed from
/// a Gen3-geometry config — same protocol machinery, bigger device.
// One `AnyBackend` exists per simulated system (never collections of
// them), so the size skew between device variants buys nothing back.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum AnyBackend {
    /// The packetized HMC device (Gen2 or Gen3 geometry).
    Hmc(HmcDevice),
    /// The event-driven DDR3 DIMM controller.
    Ddr(DdrDevice),
    /// The HBM-style pseudo-channel stack.
    Hbm(HbmDevice),
}

macro_rules! delegate {
    ($self:ident, $d:ident => $e:expr) => {
        match $self {
            AnyBackend::Hmc($d) => $e,
            AnyBackend::Ddr($d) => $e,
            AnyBackend::Hbm($d) => $e,
        }
    };
}

impl MemoryBackend for AnyBackend {
    fn label(&self) -> &'static str {
        delegate!(self, d => MemoryBackend::label(d))
    }

    fn num_links(&self) -> usize {
        delegate!(self, d => MemoryBackend::num_links(d))
    }

    fn address_layout(&self) -> AddressLayout {
        delegate!(self, d => MemoryBackend::address_layout(d))
    }

    fn can_accept(&self, link: usize) -> bool {
        delegate!(self, d => MemoryBackend::can_accept(d, link))
    }

    fn free_slots(&self, link: usize) -> usize {
        delegate!(self, d => MemoryBackend::free_slots(d, link))
    }

    fn submit(&mut self, link: usize, req: MemoryRequest, now: Time) -> Result<(), MemoryRequest> {
        delegate!(self, d => MemoryBackend::submit(d, link, req, now))
    }

    fn next_time(&self) -> Option<Time> {
        delegate!(self, d => MemoryBackend::next_time(d))
    }

    fn now(&self) -> Time {
        delegate!(self, d => MemoryBackend::now(d))
    }

    fn pending_events(&self) -> usize {
        delegate!(self, d => MemoryBackend::pending_events(d))
    }

    fn advance(&mut self, until: Time, out: &mut Vec<BackendOutput>) {
        delegate!(self, d => MemoryBackend::advance(d, until, out))
    }

    fn advance_instant(&mut self, t: Time, out: &mut Vec<BackendOutput>) {
        delegate!(self, d => MemoryBackend::advance_instant(d, t, out))
    }

    fn events_processed(&self) -> u64 {
        delegate!(self, d => MemoryBackend::events_processed(d))
    }

    fn total_queued(&self) -> usize {
        delegate!(self, d => MemoryBackend::total_queued(d))
    }

    fn channels_in_flight(&self, now: Time) -> usize {
        delegate!(self, d => MemoryBackend::channels_in_flight(d, now))
    }

    fn core_stats(&self) -> CoreStats {
        delegate!(self, d => MemoryBackend::core_stats(d))
    }

    fn sample_metrics(&self, at: Time, s: &mut MetricsSampler) {
        delegate!(self, d => MemoryBackend::sample_metrics(d, at, s))
    }

    fn tracer(&self) -> &Tracer {
        delegate!(self, d => MemoryBackend::tracer(d))
    }

    fn tracer_mut(&mut self) -> &mut Tracer {
        delegate!(self, d => MemoryBackend::tracer_mut(d))
    }

    fn enable_sanitizer(&mut self) {
        delegate!(self, d => MemoryBackend::enable_sanitizer(d))
    }

    fn sanitizer(&self) -> &Sanitizer {
        delegate!(self, d => MemoryBackend::sanitizer(d))
    }

    fn sanitizer_mut(&mut self) -> &mut Sanitizer {
        delegate!(self, d => MemoryBackend::sanitizer_mut(d))
    }

    fn diagnostic_dump(&self, at: Time) -> String {
        delegate!(self, d => MemoryBackend::diagnostic_dump(d, at))
    }

    fn schedule_fault(&mut self, at: Time, kind: FaultKind) {
        delegate!(self, d => MemoryBackend::schedule_fault(d, at, kind))
    }

    fn reset_after_shutdown(&mut self, resume: Time) {
        delegate!(self, d => MemoryBackend::reset_after_shutdown(d, resume))
    }

    fn set_refresh_multiplier(&mut self, m: u32) {
        delegate!(self, d => MemoryBackend::set_refresh_multiplier(d, m))
    }

    fn refresh_multiplier(&self) -> u32 {
        delegate!(self, d => MemoryBackend::refresh_multiplier(d))
    }

    fn wipe_data(&mut self) {
        delegate!(self, d => MemoryBackend::wipe_data(d))
    }
}

/// Rewrites a system configuration to a preset's geometry, so the host's
/// address space, link arrangement, and affinity masks agree with the
/// device the preset instantiates.
///
/// `hmc` and `ddr3-1600` leave the configuration untouched (the DIMM
/// sits behind the host's default two ports and the default 4 GB address
/// space); `hmc-gen3` installs the Gen3 geometry with four full-width
/// links; `hbm` installs the 32-vault HMC 2.0 geometry whose vault count
/// the pseudo-channels mirror.
pub fn apply_preset(kind: BackendKind, cfg: &mut SystemConfig) {
    match kind {
        BackendKind::Hmc | BackendKind::Ddr3_1600 => {}
        BackendKind::HmcGen3 => {
            cfg.mem.spec = HmcSpec::of(HmcVersion::Gen3);
            cfg.mem.links = LinkConfig::gen3();
            cfg.host.links = cfg.mem.links;
            cfg.host.memory_capacity = cfg.mem.spec.capacity_bytes();
        }
        BackendKind::Hbm => {
            cfg.mem.spec = HmcSpec::of(HmcVersion::Hmc2);
            cfg.host.memory_capacity = cfg.mem.spec.capacity_bytes();
        }
    }
}

/// Constructs the preset's device from an already-rewritten
/// configuration (see [`apply_preset`]).
pub fn instantiate(kind: BackendKind, cfg: &SystemConfig) -> AnyBackend {
    match kind {
        BackendKind::Hmc | BackendKind::HmcGen3 => AnyBackend::Hmc(HmcDevice::new(cfg.mem.clone())),
        BackendKind::Ddr3_1600 => {
            let ddr = DdrConfig::preset("ddr3-1600").expect("ddr3-1600 is a known preset");
            AnyBackend::Ddr(DdrDevice::new(DdrDeviceConfig {
                ddr,
                num_ports: cfg.host.links.num_links() as usize,
                ..DdrDeviceConfig::default()
            }))
        }
        BackendKind::Hbm => AnyBackend::Hbm(HbmDevice::new(HbmConfig {
            spec: cfg.mem.spec,
            mapping: cfg.mem.mapping,
            dram: cfg.mem.dram,
            num_ports: cfg.host.links.num_links() as usize,
            ..HbmConfig::default()
        })),
    }
}

/// The address bit-field layout the host's generators assume toward
/// this preset — the other side of the build-time handshake.
///
/// HMC-family and HBM presets share the configured interleave (the host
/// draws addresses through the same mapping the device decodes). The
/// DIMM preset returns an empty `host-linear` layout: the host makes no
/// vault/bank interleave assumption toward a rank-addressed DIMM, so
/// only a backend that *claims* interleave fields can conflict.
pub fn host_layout(kind: BackendKind, cfg: &SystemConfig) -> AddressLayout {
    match kind {
        BackendKind::Ddr3_1600 => AddressLayout::new("host-linear"),
        _ => AddressLayout::of_mapping("host-interleave", cfg.mem.mapping, &cfg.mem.spec),
    }
}

/// The fail-fast half of the handshake: panics at build time with the
/// [`AddressLayout::check_against_host`] diagnostic (naming both
/// bit-fields) when the backend decodes any shared field differently
/// than the host generates it.
///
/// # Panics
///
/// Panics with the mismatch diagnostic; a silent disagreement would not
/// crash anything downstream, it would quietly bend every parallelism
/// measurement.
pub fn assert_layout_compatible<B: MemoryBackend>(device: &B, host: &AddressLayout) {
    if let Err(diag) = device.address_layout().check_against_host(host) {
        panic!("{diag}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmc_types::address::MaxBlockSize;
    use hmc_types::AddressMapping;

    #[test]
    fn presets_instantiate_and_pass_the_handshake() {
        for kind in BackendKind::ALL {
            let mut cfg = SystemConfig::default();
            apply_preset(kind, &mut cfg);
            let dev = instantiate(kind, &cfg);
            assert_eq!(dev.label(), kind.label());
            assert_layout_compatible(&dev, &host_layout(kind, &cfg));
            assert_eq!(dev.num_links(), cfg.host.links.num_links() as usize);
        }
    }

    #[test]
    fn gen3_preset_grows_the_address_space() {
        let mut cfg = SystemConfig::default();
        apply_preset(BackendKind::HmcGen3, &mut cfg);
        assert_eq!(cfg.host.memory_capacity, 16 << 30);
        assert_eq!(cfg.host.links.num_links(), 4);
    }

    #[test]
    fn mismatched_mapping_fails_the_handshake() {
        // A device decoding a 32 B-block interleave against a host
        // generating the default 128 B-block interleave: the vault
        // field lands on different bits.
        let cfg = SystemConfig::default();
        let dev = AnyBackend::Hbm(HbmDevice::new(HbmConfig {
            mapping: AddressMapping::new(MaxBlockSize::B32),
            ..HbmConfig::default()
        }));
        let host = AddressLayout::of_mapping("host-interleave", cfg.mem.mapping, &cfg.mem.spec);
        let err = dev.address_layout().check_against_host(&host).unwrap_err();
        assert!(err.contains("hbm-pseudo-channel"), "{err}");
        assert!(err.contains("host-interleave"), "{err}");
        assert!(err.contains("`vault`"), "{err}");
    }
}
