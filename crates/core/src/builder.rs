//! The single construction path for simulated systems.
//!
//! Historically every runner wired its own sequence of `System::new` plus
//! `enable_*` mutator calls, and each new observability feature (tracing,
//! metrics, sanitizer, faults, failure policies, now topologies) grew the
//! permutations. [`SystemBuilder`] consolidates them: declare everything
//! up front, then [`build`](SystemBuilder::build) a single-cube
//! [`System`] or [`build_chain`](SystemBuilder::build_chain) a multi-cube
//! [`ChainSystem`] with identical semantics.
//!
//! ```
//! use hmc_core::builder::SystemBuilder;
//! use hmc_core::topology::Topology;
//! use hmc_core::SystemConfig;
//! use hmc_types::TimeDelta;
//!
//! // A sanitized, metric-sampled two-cube chain in one expression.
//! let chain = SystemBuilder::new(SystemConfig::default())
//!     .metrics(TimeDelta::from_us(10))
//!     .sanitizer()
//!     .topology(Topology::chain(2))
//!     .build_chain();
//! assert_eq!(chain.cubes(), 2);
//! assert!(chain.sanitizer_enabled());
//! ```

use hmc_thermal::FailurePolicy;
use hmc_types::TimeDelta;
use mem_backend::{BackendKind, MemoryBackend};
use sim_engine::FaultScenario;

use crate::backends::{self, AnyBackend};
use crate::system::{System, SystemConfig};
use crate::topology::{ChainSystem, Topology};

/// Declarative constructor for [`System`] and [`ChainSystem`].
///
/// Every observability and fault knob that used to require a post-`new`
/// `enable_*` call is a chainable method here; the two `build` variants
/// apply them in one fixed order (policy, tracing, metrics, sanitizer,
/// faults), so all construction paths behave identically.
#[derive(Debug, Clone)]
pub struct SystemBuilder {
    cfg: SystemConfig,
    backend: BackendKind,
    topo: Topology,
    tracing: Option<u64>,
    metrics: Option<TimeDelta>,
    /// `Some(None)` = default watchdog span, `Some(Some(d))` = explicit.
    sanitizer: Option<Option<TimeDelta>>,
    /// Scenarios to install: `None` cube = every cube of the topology.
    faults: Vec<(Option<usize>, FaultScenario)>,
    policy: Option<FailurePolicy>,
    shards: Option<usize>,
    profiler: bool,
}

impl SystemBuilder {
    /// Starts a builder from a system configuration.
    pub fn new(cfg: SystemConfig) -> Self {
        SystemBuilder {
            cfg,
            backend: BackendKind::default(),
            topo: Topology::single(),
            tracing: None,
            metrics: None,
            sanitizer: None,
            faults: Vec::new(),
            policy: None,
            shards: None,
            profiler: false,
        }
    }

    /// Selects the memory-backend preset (the default is
    /// [`BackendKind::Hmc`], the characterized Gen2 device).
    ///
    /// This is the single selection path: the preset rewrites the
    /// configuration's geometry at build time (see
    /// [`backends::apply_preset`]) and picks the device model. HMC-family
    /// presets work with every build variant; `ddr3-1600` and `hbm`
    /// require [`build_any`](Self::build_any).
    pub fn backend(mut self, kind: BackendKind) -> Self {
        self.backend = kind;
        self
    }

    /// Pumps chain epochs on `workers` threads instead of sequentially.
    /// Purely a wall-clock knob: results are bit-identical at every
    /// setting (see [`ChainSystem::set_parallel_shards`]). Ignored by
    /// [`build`](Self::build) and by single-cube chains, which always run
    /// the exact serial interleaving.
    pub fn parallel_shards(mut self, workers: usize) -> Self {
        self.shards = Some(workers);
        self
    }

    /// Enables lifecycle tracing; one request in `sample_every` lands in
    /// the exportable event log.
    pub fn tracing(mut self, sample_every: u64) -> Self {
        self.tracing = Some(sample_every);
        self
    }

    /// Arms the deterministic PDES epoch profiler (see
    /// [`ChainSystem::enable_epoch_profiler`]). Chain-only: ignored by
    /// [`build`](Self::build), which has no epoch loop to profile.
    pub fn epoch_profiler(mut self) -> Self {
        self.profiler = true;
        self
    }

    /// Installs a periodic gauge sampler (one per cube in a chain).
    pub fn metrics(mut self, period: TimeDelta) -> Self {
        self.metrics = Some(period);
        self
    }

    /// Arms the protocol sanitizer and forward-progress watchdog with the
    /// default span.
    pub fn sanitizer(mut self) -> Self {
        self.sanitizer = Some(None);
        self
    }

    /// [`sanitizer`](SystemBuilder::sanitizer) with an explicit watchdog
    /// span.
    pub fn sanitizer_span(mut self, span: TimeDelta) -> Self {
        self.sanitizer = Some(Some(span));
        self
    }

    /// Installs a fault scenario — on the single system, or on *every*
    /// cube of a chain (matching how a chain shares one workload).
    /// Scenarios compose; call repeatedly to merge schedules.
    pub fn faults(mut self, scenario: &FaultScenario) -> Self {
        self.faults.push((None, scenario.clone()));
        self
    }

    /// Installs a fault scenario on one specific cube of a chain.
    pub fn faults_on(mut self, cube: usize, scenario: &FaultScenario) -> Self {
        self.faults.push((Some(cube), scenario.clone()));
        self
    }

    /// Replaces the thermal limits evaluated at spikes.
    pub fn failure_policy(mut self, policy: FailurePolicy) -> Self {
        self.policy = Some(policy);
        self
    }

    /// Enables the host fault-robustness layer (per-request deadlines,
    /// bounded retransmission, link-death rerouting) with its configured
    /// parameters.
    pub fn robust(mut self) -> Self {
        self.cfg.host.robust.enabled = true;
        self
    }

    /// Attaches the open-loop multi-tenant arrival frontend with
    /// admission control to every host. In a chain, each sharded host
    /// receives a clone (so the config's `offered_rps` is per shard) and
    /// draws decorrelated arrivals through its `rng_salt`.
    pub fn open_loop(mut self, open: hmc_host::OpenLoopConfig) -> Self {
        self.cfg.host.openloop = Some(open);
        self
    }

    /// Selects the cube topology ([`Topology::single`] by default).
    /// Multi-cube topologies require [`build_chain`](Self::build_chain).
    pub fn topology(mut self, topo: Topology) -> Self {
        self.topo = topo;
        self
    }

    /// Applies the declared observability and fault knobs to a built
    /// system, in the one fixed order every build variant shares.
    fn finish_system<B: MemoryBackend>(self, mut sys: System<B>) -> System<B> {
        if let Some(policy) = self.policy {
            sys.set_failure_policy(policy);
        }
        if let Some(sample_every) = self.tracing {
            sys.enable_tracing(sample_every);
        }
        if let Some(period) = self.metrics {
            sys.enable_metrics(period);
        }
        match self.sanitizer {
            Some(Some(span)) => sys.enable_sanitizer_with_span(span),
            Some(None) => sys.enable_sanitizer(),
            None => {}
        }
        for (_, scenario) in &self.faults {
            sys.install_faults(scenario);
        }
        sys
    }

    /// Builds a single-cube [`System`] with the concrete HMC device
    /// (the statically-typed fast path every existing caller uses).
    ///
    /// # Panics
    ///
    /// Panics if a multi-cube [`topology`](SystemBuilder::topology) was
    /// selected — use [`build_chain`](SystemBuilder::build_chain) — or
    /// if a non-HMC [`backend`](SystemBuilder::backend) preset was
    /// selected — use [`build_any`](SystemBuilder::build_any).
    pub fn build(mut self) -> System {
        assert_eq!(
            self.topo.cubes(),
            1,
            "multi-cube topology requires build_chain()"
        );
        assert!(
            matches!(self.backend, BackendKind::Hmc | BackendKind::HmcGen3),
            "backend preset '{}' requires build_any()",
            self.backend
        );
        backends::apply_preset(self.backend, &mut self.cfg);
        let sys = System::new(self.cfg.clone());
        self.finish_system(sys)
    }

    /// Builds a single-cube system around the selected
    /// [`backend`](SystemBuilder::backend) preset, after the build-time
    /// address-layout handshake.
    ///
    /// # Panics
    ///
    /// Panics on a multi-cube topology, or with a diagnostic naming
    /// both bit-fields when the instantiated backend decodes a shared
    /// address field differently than the host generates it.
    pub fn build_any(mut self) -> System<AnyBackend> {
        assert_eq!(
            self.topo.cubes(),
            1,
            "multi-cube topology requires build_chain()"
        );
        backends::apply_preset(self.backend, &mut self.cfg);
        let device = backends::instantiate(self.backend, &self.cfg);
        backends::assert_layout_compatible(
            &device,
            &backends::host_layout(self.backend, &self.cfg),
        );
        let sys = System::with_backend(self.cfg.host.clone(), device);
        self.finish_system(sys)
    }

    /// Builds a single-cube system around a caller-constructed backend
    /// — the checked entry point for custom device models that share
    /// the host's interleave (DIMM-style backends with no interleave
    /// contract go through [`build_any`](Self::build_any) presets).
    ///
    /// # Panics
    ///
    /// Panics on a multi-cube topology, or with a diagnostic naming
    /// both bit-fields when `device` decodes a shared address field
    /// differently than the host's configured mapping generates it.
    pub fn build_with<B: MemoryBackend>(self, device: B) -> System<B> {
        assert_eq!(
            self.topo.cubes(),
            1,
            "multi-cube topology requires build_chain()"
        );
        let host = mem_backend::AddressLayout::of_mapping(
            "host-interleave",
            self.cfg.mem.mapping,
            &self.cfg.mem.spec,
        );
        backends::assert_layout_compatible(&device, &host);
        let sys = System::with_backend(self.cfg.host.clone(), device);
        self.finish_system(sys)
    }

    /// Builds a [`ChainSystem`] of the selected topology (any cube count,
    /// including the single-cube identity topology).
    ///
    /// # Panics
    ///
    /// Panics if a non-HMC [`backend`](SystemBuilder::backend) preset
    /// was selected: cube chaining is an HMC-specification feature (the
    /// hop links are HMC pass-through serializers), so chains are
    /// HMC-family only.
    pub fn build_chain(mut self) -> ChainSystem {
        assert!(
            matches!(self.backend, BackendKind::Hmc | BackendKind::HmcGen3),
            "backend preset '{}' cannot form a cube chain; chaining is HMC-family only",
            self.backend
        );
        backends::apply_preset(self.backend, &mut self.cfg);
        let mut sys = ChainSystem::new(self.cfg, self.topo);
        if let Some(workers) = self.shards {
            sys.set_parallel_shards(workers);
        }
        if let Some(policy) = self.policy {
            sys.set_failure_policy(policy);
        }
        if let Some(sample_every) = self.tracing {
            sys.enable_tracing(sample_every);
        }
        if let Some(period) = self.metrics {
            sys.enable_metrics(period);
        }
        if self.profiler {
            sys.enable_epoch_profiler();
        }
        match self.sanitizer {
            Some(Some(span)) => sys.enable_sanitizer_with_span(span),
            Some(None) => sys.enable_sanitizer(),
            None => {}
        }
        for (cube, scenario) in &self.faults {
            match cube {
                Some(c) => sys.install_faults(*c, scenario),
                None => {
                    for c in 0..sys.cubes() {
                        sys.install_faults(c, scenario);
                    }
                }
            }
        }
        sys
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_matches_mutator_path() {
        let built = SystemBuilder::new(SystemConfig::default())
            .tracing(8)
            .metrics(TimeDelta::from_us(10))
            .sanitizer()
            .build();
        let mut mutated = System::new(SystemConfig::default());
        mutated.enable_tracing(8);
        mutated.enable_metrics(TimeDelta::from_us(10));
        mutated.enable_sanitizer();
        assert_eq!(built.sanitizer_enabled(), mutated.sanitizer_enabled());
        assert_eq!(built.metrics().is_some(), mutated.metrics().is_some());
    }

    #[test]
    fn builder_installs_faults_on_every_cube() {
        let scenario = FaultScenario::builtin("noisy-link").expect("builtin");
        let chain = SystemBuilder::new(SystemConfig::default())
            .faults(&scenario)
            .topology(Topology::chain(2))
            .build_chain();
        assert_eq!(chain.cubes(), 2);
    }

    #[test]
    fn robust_flag_reaches_the_hosts() {
        let chain = SystemBuilder::new(SystemConfig::default())
            .robust()
            .topology(Topology::chain(2))
            .build_chain();
        assert_eq!(chain.cubes(), 2);
    }

    #[test]
    fn parallel_shards_reach_the_chain() {
        let chain = SystemBuilder::new(SystemConfig::default())
            .parallel_shards(4)
            .topology(Topology::chain(2))
            .build_chain();
        assert_eq!(chain.parallel_shards(), 4);
        // Requesting zero workers clamps to the serial scheduler.
        let serial = SystemBuilder::new(SystemConfig::default())
            .parallel_shards(0)
            .topology(Topology::chain(2))
            .build_chain();
        assert_eq!(serial.parallel_shards(), 1);
    }

    #[test]
    #[should_panic(expected = "build_chain")]
    fn build_rejects_multi_cube_topologies() {
        let _ = SystemBuilder::new(SystemConfig::default())
            .topology(Topology::chain(2))
            .build();
    }
}
