//! The full-system co-simulation: host and device advanced in lockstep
//! with deterministic event interleaving.
//!
//! Installed [`FaultScenario`]s flow through here: device-level faults
//! become device events at install time, while thermal spikes act as time
//! barriers in [`System::step_until`] — the system advances exactly to
//! the spike, evaluates the [`FailurePolicy`] against the live workload's
//! write content, and on shutdown executes the timed
//! [`RecoveryStep`] sequence (DRAM lost, host in-flight window replayed).

use hmc_host::{Host, HostConfig, LinkSink};
use hmc_mem::{DeviceOutput, HmcDevice, MemConfig};
use hmc_thermal::{FailurePolicy, RecoveryStep, ThermalEvent};
use hmc_types::{MemoryRequest, Time, TimeDelta};
use mem_backend::MemoryBackend;
use sim_engine::{FaultKind, FaultScenario, MetricsSampler, SanitizerReport, ViolationClass};

/// Configuration of the whole modelled system.
#[derive(Debug, Clone, Default)]
pub struct SystemConfig {
    /// Device-side configuration.
    pub mem: MemConfig,
    /// Host-side configuration.
    pub host: HostConfig,
}

/// Newtype adapter: any memory backend as the host's transmit sink.
struct DeviceSink<'a, B: MemoryBackend>(&'a mut B);

impl<B: MemoryBackend> LinkSink for DeviceSink<'_, B> {
    fn free_slots(&self, link: usize) -> usize {
        self.0.free_slots(link)
    }

    fn submit(&mut self, link: usize, req: MemoryRequest, now: Time) -> Result<(), MemoryRequest> {
        self.0.submit(link, req, now)
    }
}

/// The co-simulated system: an FPGA host driving an HMC device.
///
/// ```
/// use hmc_core::{System, SystemConfig};
/// use hmc_host::Workload;
/// use hmc_types::{RequestKind, RequestSize, Time, TimeDelta};
///
/// let mut sys = System::new(SystemConfig::default());
/// sys.host_mut().apply_workload(&Workload::read_stream(
///     4,
///     RequestSize::new(64)?,
/// ));
/// sys.host_mut().start(Time::ZERO);
/// sys.run_until_idle(TimeDelta::from_us(100));
/// assert_eq!(sys.host().stats().reads_completed, 4);
/// # Ok::<(), hmc_types::HmcError>(())
/// ```
#[derive(Debug)]
pub struct System<B: MemoryBackend = HmcDevice> {
    host: Host,
    device: B,
    now: Time,
    sampler: Option<MetricsSampler>,
    watchdog: Option<Watchdog>,
    /// Pending thermal spikes (sorted ascending); each acts as a time
    /// barrier in [`System::step_until`].
    thermal_spikes: Vec<(Time, f64)>,
    /// Thermal limits evaluated at each spike.
    policy: FailurePolicy,
    /// Every shutdown/recovery cycle executed so far.
    recoveries: Vec<RecoveryRecord>,
}

/// One thermal shutdown and its timed recovery, as executed live.
#[derive(Debug, Clone)]
pub struct RecoveryRecord {
    /// Instant the spike crossed the policy limit and the device halted.
    pub shutdown_at: Time,
    /// The offending surface temperature, °C.
    pub surface_c: f64,
    /// The recovery sequence with the duration charged per step.
    pub steps: Vec<(RecoveryStep, TimeDelta)>,
    /// Instant the device accepted traffic again.
    pub resume_at: Time,
    /// In-flight requests the host replayed from `resume_at`.
    pub replayed: usize,
}

impl RecoveryRecord {
    /// Total dead time of the cycle.
    pub fn outage(&self) -> TimeDelta {
        self.resume_at.since(self.shutdown_at)
    }
}

/// Forward-progress watchdog state: outstanding requests with no
/// retirement for [`Watchdog::span`] of simulated time means the system
/// wedged (deadlock or livelock) and a diagnostic dump is recorded.
/// Shared with the chain topology, whose pump runs the same check over
/// the fleet-wide completion count.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Watchdog {
    /// Simulated time without a retirement before the watchdog trips.
    pub(crate) span: TimeDelta,
    /// Completion count at the last observed progress.
    pub(crate) last_completed: u64,
    /// Instant of the last observed progress.
    pub(crate) last_progress: Time,
    /// Set once tripped so the report carries one dump, not thousands.
    pub(crate) tripped: bool,
}

impl System {
    /// Builds an idle system around the characterized HMC device.
    pub fn new(cfg: SystemConfig) -> Self {
        let device = HmcDevice::new(cfg.mem);
        System::with_backend(cfg.host, device)
    }
}

impl<B: MemoryBackend> System<B> {
    /// Builds an idle system around an already-constructed backend —
    /// the generic entry point [`SystemBuilder::build_any`] and the
    /// conformance tests use for non-HMC technologies.
    ///
    /// [`SystemBuilder::build_any`]: crate::SystemBuilder::build_any
    pub fn with_backend(host: HostConfig, device: B) -> Self {
        System {
            host: Host::new(host),
            device,
            now: Time::ZERO,
            sampler: None,
            watchdog: None,
            thermal_spikes: Vec::new(),
            policy: FailurePolicy::default(),
            recoveries: Vec::new(),
        }
    }

    /// Installs a fault scenario: device-level faults are translated into
    /// device events immediately; thermal spikes are queued as time
    /// barriers for [`System::step_until`]. Scenarios compose — calling
    /// this twice merges the schedules.
    ///
    /// Deprecated construction path: prefer
    /// [`SystemBuilder::faults`](crate::SystemBuilder::faults) when the
    /// scenario is known up front.
    pub fn install_faults(&mut self, scenario: &FaultScenario) {
        for ev in &scenario.events {
            match ev.kind {
                FaultKind::ThermalSpike { surface_c } => {
                    self.thermal_spikes.push((ev.at, surface_c));
                }
                kind => self.device.schedule_fault(ev.at, kind),
            }
        }
        self.thermal_spikes
            .sort_by(|a, b| a.0.cmp(&b.0).then(a.1.total_cmp(&b.1)));
    }

    /// Replaces the thermal limits evaluated at spikes (defaults follow
    /// the paper: 85 °C read / 75 °C write / 80 °C refresh boost).
    pub fn set_failure_policy(&mut self, policy: FailurePolicy) {
        self.policy = policy;
    }

    /// Every thermal shutdown/recovery cycle executed so far.
    pub fn recoveries(&self) -> &[RecoveryRecord] {
        &self.recoveries
    }

    /// Turns on lifecycle tracing on both the host and device tracers.
    /// Every traced request feeds the per-stage histograms; one in
    /// `sample_every` also lands in the exportable event log.
    ///
    /// Deprecated construction path: prefer
    /// [`SystemBuilder::tracing`](crate::SystemBuilder::tracing), which
    /// declares the same thing before the system exists. Kept as a thin
    /// wrapper for existing callers.
    pub fn enable_tracing(&mut self, sample_every: u64) {
        self.host.tracer_mut().enable(sample_every);
        self.device.tracer_mut().enable(sample_every);
    }

    /// Installs a periodic gauge sampler with the given period. Samples
    /// are taken deterministically at each period boundary as simulated
    /// time advances through [`System::step_until`].
    ///
    /// Deprecated construction path: prefer
    /// [`SystemBuilder::metrics`](crate::SystemBuilder::metrics).
    pub fn enable_metrics(&mut self, period: TimeDelta) {
        self.sampler = Some(MetricsSampler::new(period));
    }

    /// The gauge sampler, if [`System::enable_metrics`] installed one.
    pub fn metrics(&self) -> Option<&MetricsSampler> {
        self.sampler.as_ref()
    }

    /// Arms the protocol sanitizer on both components plus the
    /// forward-progress watchdog (default span). Enable before starting a
    /// run; the merged outcome comes from
    /// [`sanitizer_report`](System::sanitizer_report).
    ///
    /// Deprecated construction path: prefer
    /// [`SystemBuilder::sanitizer`](crate::SystemBuilder::sanitizer).
    pub fn enable_sanitizer(&mut self) {
        // Worst legal retirement gap: one fully-loaded bank queue
        // (120 deep) serializing at tRC ≈ 15 µs; 200 µs means wedged.
        self.enable_sanitizer_with_span(TimeDelta::from_us(200));
    }

    /// [`enable_sanitizer`](System::enable_sanitizer) with an explicit
    /// watchdog span (simulated time without a retirement while requests
    /// are outstanding before the run is declared wedged).
    pub fn enable_sanitizer_with_span(&mut self, span: TimeDelta) {
        self.host.enable_sanitizer();
        self.device.enable_sanitizer();
        self.watchdog = Some(Watchdog {
            span,
            last_completed: self.completed(),
            last_progress: self.now,
            tripped: false,
        });
    }

    /// True once [`enable_sanitizer`](System::enable_sanitizer) armed the
    /// checks.
    pub fn sanitizer_enabled(&self) -> bool {
        self.host.sanitizer().is_enabled()
    }

    /// The merged sanitizer outcome of both components (host first, so
    /// violation order is deterministic).
    pub fn sanitizer_report(&self) -> SanitizerReport {
        let mut r = self.host.sanitizer().report();
        r.merge(&self.device.sanitizer().report());
        r
    }

    /// Asserts the request-conservation ledger is empty — call once the
    /// run has drained (no outstanding requests expected). With the
    /// open-loop frontend attached this also asserts the shed-accounting
    /// invariant (`offered = shed + completed` at drain).
    pub fn sanitize_check_drained(&mut self) {
        let now = self.now;
        self.host.check_open_conservation(now);
        self.host.sanitizer_mut().check_drained(now);
    }

    /// Deterministic dump of both components' occupancies, credit counts,
    /// and clock — the body of the watchdog's diagnostic report.
    pub fn diagnostic_dump(&self) -> String {
        let mut s = format!("system wedged at {}\n", self.now);
        s.push_str(&self.host.diagnostic_dump(self.now));
        s.push_str(&self.device.diagnostic_dump(self.now));
        let in_use = self.device.sanitizer().credits_in_use();
        if !in_use.is_empty() {
            s.push_str("credits in use per link: ");
            for (l, c) in in_use.iter().enumerate() {
                if l > 0 {
                    s.push_str(", ");
                }
                s.push_str(&format!("link {l}={c}"));
            }
            s.push('\n');
        }
        s
    }

    fn completed(&self) -> u64 {
        self.host.total_issued() - self.host.outstanding()
    }

    /// Feeds the watchdog: records progress, and trips it (once) with a
    /// diagnostic dump when outstanding requests stop retiring.
    fn watchdog_check(&mut self, now: Time) {
        let Some(mut wd) = self.watchdog else {
            return;
        };
        let completed = self.completed();
        if completed != wd.last_completed || self.host.outstanding() == 0 {
            wd.last_completed = completed;
            wd.last_progress = now;
        } else if !wd.tripped && now >= wd.last_progress && now.since(wd.last_progress) >= wd.span {
            wd.tripped = true;
            let detail = format!(
                "no retirement for {} with {} outstanding\n{}",
                now.since(wd.last_progress),
                self.host.outstanding(),
                self.diagnostic_dump(),
            );
            self.host
                .sanitizer_mut()
                .note_violation(ViolationClass::Watchdog, now, detail);
        }
        self.watchdog = Some(wd);
    }

    /// The host model.
    pub fn host(&self) -> &Host {
        &self.host
    }

    /// Mutable host access (workload installation, stat windows).
    pub fn host_mut(&mut self) -> &mut Host {
        &mut self.host
    }

    /// The device model.
    pub fn device(&self) -> &B {
        &self.device
    }

    /// Mutable device access (refresh coupling, data wipes).
    pub fn device_mut(&mut self) -> &mut B {
        &mut self.device
    }

    /// Total discrete events processed by the host and device queues —
    /// the denominator of events-per-second throughput reporting.
    pub fn events_processed(&self) -> u64 {
        self.host.events_processed() + self.device.events_processed()
    }

    /// The system clock (time of the last processed event).
    pub fn now(&self) -> Time {
        self.now
    }

    /// Advances both components until no event at or before `end`
    /// remains. Installed thermal spikes act as barriers: the system
    /// advances exactly to each spike, evaluates the failure policy, and
    /// (on shutdown) executes the recovery cycle before continuing.
    pub fn step_until(&mut self, end: Time) {
        while let Some(&(at, surface_c)) = self.thermal_spikes.first() {
            if at > end {
                break;
            }
            self.step_events_until(at);
            self.thermal_spikes.remove(0);
            self.apply_thermal_spike(at, surface_c);
        }
        self.step_events_until(end);
    }

    /// Evaluates one thermal spike against the failure policy. The
    /// write limit applies as soon as the run has completed any write —
    /// the paper's ~10 °C earlier write-workload shutdowns.
    fn apply_thermal_spike(&mut self, at: Time, surface_c: f64) {
        let writes = self.device.core_stats().writes_completed > 0;
        match self.policy.check(surface_c, writes) {
            Ok(ThermalEvent::Normal) => {}
            Ok(ThermalEvent::RefreshBoost) => self.device.set_refresh_multiplier(2),
            Err(_) => self.thermal_shutdown(at, surface_c),
        }
    }

    /// Executes a live shutdown/recovery cycle: the device halts and
    /// forgets everything (in-flight packets, queue contents, DRAM data),
    /// the timed recovery sequence elapses, and the host replays its
    /// in-flight window from the resume instant.
    fn thermal_shutdown(&mut self, at: Time, surface_c: f64) {
        let mut steps = Vec::new();
        let mut resume = at;
        for step in RecoveryStep::sequence() {
            let d = step.typical_duration();
            steps.push((step, d));
            resume += d;
        }
        self.device.reset_after_shutdown(resume);
        let replayed = self.host.reset_for_recovery(resume);
        // The outage is legal dead time, not a wedge: restart the
        // forward-progress clock at the resume instant.
        if let Some(wd) = &mut self.watchdog {
            wd.last_progress = resume;
        }
        self.now = self.now.max(at);
        self.recoveries.push(RecoveryRecord {
            shutdown_at: at,
            surface_c,
            steps,
            resume_at: resume,
            replayed,
        });
    }

    /// The event-pump core of [`System::step_until`] (no thermal
    /// barriers).
    fn step_events_until(&mut self, end: Time) {
        let links = self.device.num_links();
        let mut outputs: Vec<DeviceOutput> = Vec::new();
        loop {
            let t = match (self.host.next_time(), self.device.next_time()) {
                (Some(h), Some(d)) => h.min(d),
                (Some(h), None) => h,
                (None, Some(d)) => d,
                (None, None) => break,
            };
            if t > end {
                break;
            }
            // Host first: its submissions at instants <= t reach a device
            // whose clock has not passed t yet.
            {
                let mut sink = DeviceSink(&mut self.device);
                self.host.advance_instant(t, &mut sink);
            }
            outputs.clear();
            self.device.advance_instant(t, &mut outputs);
            for o in &outputs {
                self.host.receive_response(o.resp, o.at);
            }
            if self.host.any_node_stalled() {
                for l in 0..links {
                    let free = self.device.free_slots(l);
                    if free > 0 {
                        self.host.notify_credit(l, free, t);
                    }
                }
            }
            if let Some(mut s) = self.sampler.take() {
                while let Some(due) = s.due_before(t) {
                    self.host.sample_metrics(due, &mut s);
                    self.device.sample_metrics(due, &mut s);
                    s.advance();
                }
                self.sampler = Some(s);
            }
            self.now = t;
            self.watchdog_check(t);
        }
        self.now = self.now.max(end);
        // A wedged system can drain both event queues while requests are
        // still outstanding (e.g. a link that never grants credit): the
        // loop above exits immediately, so the watchdog must also see the
        // end-of-step instant.
        self.watchdog_check(self.now);
    }

    /// Runs until the host has no outstanding work (stream drained) or
    /// `max` simulated time elapses. Returns `true` if the system went
    /// idle.
    pub fn run_until_idle(&mut self, max: TimeDelta) -> bool {
        let deadline = self.now + max;
        // Step in slices so we can observe the idle condition between
        // event bursts.
        while self.now < deadline {
            if !self.host.is_busy() {
                return true;
            }
            let spike = self.thermal_spikes.first().map(|&(t, _)| t);
            let next = [self.host.next_time(), self.device.next_time(), spike]
                .into_iter()
                .flatten()
                .min();
            let Some(next) = next else {
                return !self.host.is_busy();
            };
            if next > deadline {
                break;
            }
            self.step_until(next);
        }
        !self.host.is_busy()
    }

    /// Convenience: advance by a span.
    pub fn run_for(&mut self, span: TimeDelta) {
        let end = self.now + span;
        self.step_until(end);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmc_host::Workload;
    use hmc_types::{RequestKind, RequestSize};

    #[test]
    fn stream_of_reads_completes() {
        let mut sys = System::new(SystemConfig::default());
        sys.host_mut()
            .apply_workload(&Workload::read_stream(8, RequestSize::MAX));
        sys.host_mut().start(Time::ZERO);
        assert!(sys.run_until_idle(TimeDelta::from_us(100)));
        let s = sys.host().stats();
        assert_eq!(s.reads_completed, 8);
        assert_eq!(s.integrity_failures, 0);
        assert!(s.read_latency.min().unwrap().as_ns_f64() > 300.0);
    }

    #[test]
    fn continuous_workload_reaches_steady_state() {
        let mut sys = System::new(SystemConfig::default());
        sys.host_mut().apply_workload(&Workload::full_scale(
            RequestKind::ReadOnly,
            RequestSize::MAX,
        ));
        sys.host_mut().start(Time::ZERO);
        sys.run_for(TimeDelta::from_us(200));
        let s = sys.host().stats();
        assert!(s.reads_completed > 10_000, "{}", s.reads_completed);
        // Outstanding is bounded by the tag pools.
        assert!(sys.host().outstanding() <= 9 * 64);
    }

    #[test]
    fn device_and_host_agree_on_completions() {
        let mut sys = System::new(SystemConfig::default());
        sys.host_mut().apply_workload(&Workload::full_scale(
            RequestKind::ReadModifyWrite,
            RequestSize::new(64).unwrap(),
        ));
        sys.host_mut().start(Time::ZERO);
        sys.run_for(TimeDelta::from_us(100));
        sys.host_mut().stop_generation();
        assert!(sys.run_until_idle(TimeDelta::from_ms(10)), "drain stalled");
        let h = sys.host().stats();
        let d = sys.device().stats();
        assert_eq!(h.reads_completed, d.reads_completed);
        assert_eq!(h.writes_completed, d.writes_completed);
        assert!(h.writes_completed > 0, "rw produced writes");
    }

    #[test]
    fn write_only_is_drain_limited_not_stuck() {
        let mut sys = System::new(SystemConfig::default());
        sys.host_mut().apply_workload(&Workload::full_scale(
            RequestKind::WriteOnly,
            RequestSize::MAX,
        ));
        sys.host_mut().start(Time::ZERO);
        sys.run_for(TimeDelta::from_us(200));
        let s = sys.host().stats();
        assert!(s.writes_completed > 5_000, "{}", s.writes_completed);
    }

    #[test]
    fn determinism_same_seed_same_result() {
        let run = || {
            let mut sys = System::new(SystemConfig::default());
            sys.host_mut().apply_workload(&Workload::full_scale(
                RequestKind::ReadOnly,
                RequestSize::new(32).unwrap(),
            ));
            sys.host_mut().start(Time::ZERO);
            sys.run_for(TimeDelta::from_us(100));
            let s = sys.host().stats();
            (s.reads_completed, s.counted_bytes)
        };
        assert_eq!(run(), run());
    }
}
