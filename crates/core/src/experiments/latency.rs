//! Latency experiments: Figures 14, 15, 16, 17, and 18.

use hmc_host::controller::{infrastructure_latency, TxStage};
use hmc_host::Workload;
use hmc_types::packet::OpKind;
use hmc_types::{RequestKind, RequestSize, TransactionSizes};
use sim_engine::exec;

use crate::analysis::{LoadPoint, SaturationAnalysis};
use crate::measure::{run_measurement, run_stream, MeasureConfig};
use crate::observe::{run_stream_observed, ObservedStream};
use crate::pattern::AccessPattern;
use crate::report::{f1, ns, Table};
use crate::system::SystemConfig;

/// Figure 14: the TX-path deconstruction plus the measured end-to-end
/// split between infrastructure and in-cube latency.
#[derive(Debug, Clone)]
pub struct Deconstruction {
    /// Request size analysed.
    pub size: RequestSize,
    /// Named TX stages with cycle costs.
    pub tx_stages: Vec<TxStage>,
    /// TX-path latency (min arbitration), ns.
    pub tx_ns: f64,
    /// RX-path latency for the data response, ns.
    pub rx_ns: f64,
    /// Infrastructure share (TX + RX), ns — the paper's ≈547 ns.
    pub infra_ns: f64,
    /// Measured unloaded round-trip of a single read, ns.
    pub measured_ns: f64,
    /// What remains inside the cube (measured − infrastructure), ns — the
    /// paper's ≈125 ns.
    pub in_cube_ns: f64,
}

/// Computes Figure 14 by combining the stage budget with a measured
/// single-request round trip.
pub fn figure14(cfg: &SystemConfig, size: RequestSize) -> Deconstruction {
    let host = &cfg.host;
    let read = TransactionSizes::of(OpKind::Read, size);
    let tx_stages = host.tx.breakdown(read);
    let tx = host
        .tx
        .min_latency(read.request_flits(), host.frequency)
        .as_ns_f64();
    let rx = host
        .rx
        .latency(read.response_flits(), host.frequency)
        .as_ns_f64();
    let infra = infrastructure_latency(&host.tx, &host.rx, size, host.frequency).as_ns_f64();
    let (hist, _) = run_stream(cfg, &Workload::read_stream(1, size));
    let measured = hist.min().map_or(0.0, |d| d.as_ns_f64());
    Deconstruction {
        size,
        tx_stages,
        tx_ns: tx,
        rx_ns: rx,
        infra_ns: infra,
        measured_ns: measured,
        in_cube_ns: measured - infra,
    }
}

/// Renders Figure 14.
pub fn figure14_table(d: &Deconstruction) -> Table {
    let mut t = Table::new(
        format!("Figure 14: latency deconstruction ({} read)", d.size),
        &["stage", "cycles", "ns"],
    );
    let cycle_ns = 16.0 / 3.0;
    for s in &d.tx_stages {
        t.row(vec![
            s.name.to_string(),
            s.cycles.to_string(),
            f1(s.cycles as f64 * cycle_ns),
        ]);
    }
    t.row(vec!["TX total".into(), "-".into(), f1(d.tx_ns)]);
    t.row(vec!["RX total".into(), "-".into(), f1(d.rx_ns)]);
    t.row(vec!["infrastructure".into(), "-".into(), f1(d.infra_ns)]);
    t.row(vec![
        "measured round-trip".into(),
        "-".into(),
        f1(d.measured_ns),
    ]);
    t.row(vec!["in-cube".into(), "-".into(), f1(d.in_cube_ns)]);
    t
}

/// Figure 14, measured per-stage: traces a short read stream and
/// attributes every picosecond of end-to-end latency to a pipeline
/// stage. Unlike [`figure14`] (which combines an analytical stage budget
/// with one measured round trip), this attribution is exact — the traced
/// stage spans telescope to the measured latency with zero residue.
pub fn figure14_breakdown(cfg: &SystemConfig, size: RequestSize) -> ObservedStream {
    run_stream_observed(cfg, &Workload::read_stream(16, size), 1)
}

/// Renders the measured stage attribution of [`figure14_breakdown`].
pub fn figure14_breakdown_table(obs: &ObservedStream, size: RequestSize) -> Table {
    obs.report.attribution_table(
        format!("Figure 14: measured stage attribution ({size} reads)"),
        &obs.latency,
    )
}

/// One point of Figure 15: a stream length and the latency statistics it
/// produces.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamPoint {
    /// Requests in the stream.
    pub n: usize,
    /// Request size.
    pub size: RequestSize,
    /// Minimum latency, ns.
    pub min_ns: f64,
    /// Average latency, ns.
    pub avg_ns: f64,
    /// Maximum latency, ns.
    pub max_ns: f64,
}

/// The request sizes Figure 15 plots.
pub const FIG15_SIZES: [u64; 4] = [16, 32, 64, 128];

/// Figure 15: low-load latency of read streams of 2–28 requests for each
/// size.
pub fn figure15(cfg: &SystemConfig) -> Vec<StreamPoint> {
    let points: Vec<_> = FIG15_SIZES
        .into_iter()
        .flat_map(|bytes| {
            let size = RequestSize::new(bytes).expect("valid size");
            (2..=28).step_by(2).map(move |n| (size, n))
        })
        .collect();
    exec::sweep(points, |(size, n)| {
        let (hist, fails) = run_stream(cfg, &Workload::read_stream(n, size));
        debug_assert_eq!(fails, 0);
        StreamPoint {
            n,
            size,
            min_ns: hist.min().map_or(0.0, |d| d.as_ns_f64()),
            avg_ns: hist.mean().as_ns_f64(),
            max_ns: hist.max().map_or(0.0, |d| d.as_ns_f64()),
        }
    })
}

/// Renders Figure 15 for one size.
pub fn figure15_table(size: RequestSize, points: &[StreamPoint]) -> Table {
    let mut t = Table::new(
        format!("Figure 15: low-load latency vs stream length ({size})"),
        &["# reads", "min", "avg", "max"],
    );
    for p in points.iter().filter(|p| p.size == size) {
        t.row(vec![
            p.n.to_string(),
            ns(p.min_ns),
            ns(p.avg_ns),
            ns(p.max_ns),
        ]);
    }
    t
}

/// One point of Figure 16: high-load read latency and bandwidth for a
/// pattern × size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HighLoadPoint {
    /// Access pattern.
    pub pattern: AccessPattern,
    /// Request size.
    pub size: RequestSize,
    /// Counted bandwidth, GB/s.
    pub bandwidth_gbs: f64,
    /// Mean read latency, ns.
    pub latency_ns: f64,
}

/// Figure 16: full-scale read-only latency across patterns and sizes.
pub fn figure16(cfg: &SystemConfig, mc: &MeasureConfig) -> Vec<HighLoadPoint> {
    let points: Vec<_> = AccessPattern::paper_axis()
        .into_iter()
        .flat_map(|pattern| {
            RequestSize::FIG8
                .into_iter()
                .map(move |size| (pattern, size))
        })
        .collect();
    exec::sweep(points, |(pattern, size)| {
        let mask = pattern
            .mask(cfg.mem.mapping, &cfg.mem.spec)
            .expect("paper axis valid");
        let m = run_measurement(
            cfg,
            &Workload::masked(RequestKind::ReadOnly, size, mask),
            mc,
        );
        HighLoadPoint {
            pattern,
            size,
            bandwidth_gbs: m.bandwidth_gbs,
            latency_ns: m.mean_latency_ns(),
        }
    })
}

/// Renders Figure 16.
pub fn figure16_table(points: &[HighLoadPoint]) -> Table {
    let mut t = Table::new(
        "Figure 16: high-load read latency by pattern and size",
        &[
            "pattern",
            "128B GB/s",
            "128B lat",
            "64B GB/s",
            "64B lat",
            "32B GB/s",
            "32B lat",
        ],
    );
    for pattern in AccessPattern::paper_axis() {
        let get = |bytes: u64| {
            points
                .iter()
                .find(|p| p.pattern == pattern && p.size.bytes() == bytes)
                .copied()
        };
        let cells = |bytes: u64| -> (String, String) {
            get(bytes).map_or(("-".into(), "-".into()), |p| {
                (f1(p.bandwidth_gbs), ns(p.latency_ns))
            })
        };
        let (b128, l128) = cells(128);
        let (b64, l64) = cells(64);
        let (b32, l32) = cells(32);
        t.row(vec![pattern.to_string(), b128, l128, b64, l64, b32, l32]);
    }
    t
}

/// A latency–bandwidth curve (Figures 17/18): one pattern × size swept
/// over the number of active GUPS ports.
#[derive(Debug, Clone)]
pub struct LatencyBandwidthCurve {
    /// Access pattern.
    pub pattern: AccessPattern,
    /// Request size.
    pub size: RequestSize,
    /// The sweep with its saturation analysis.
    pub analysis: SaturationAnalysis,
}

/// Sweeps offered load (1..=9 active ports) for one pattern × size.
pub fn latency_bandwidth_curve(
    cfg: &SystemConfig,
    pattern: AccessPattern,
    size: RequestSize,
    mc: &MeasureConfig,
) -> LatencyBandwidthCurve {
    sweep_curves(cfg, vec![(pattern, size)], mc)
        .pop()
        .expect("one combo in, one curve out")
}

/// Measures a latency–bandwidth curve per `(pattern, size)` combination.
/// The whole `combos × ports` grid is flattened into one sweep so every
/// point parallelizes independently, then regrouped per combination.
fn sweep_curves(
    cfg: &SystemConfig,
    combos: Vec<(AccessPattern, RequestSize)>,
    mc: &MeasureConfig,
) -> Vec<LatencyBandwidthCurve> {
    let ports_axis = cfg.host.num_ports;
    let points: Vec<_> = combos
        .iter()
        .flat_map(|&(pattern, size)| (1..=ports_axis).map(move |ports| (pattern, size, ports)))
        .collect();
    let measured = exec::sweep(points, |(pattern, size, ports)| {
        let mask = pattern
            .mask(cfg.mem.mapping, &cfg.mem.spec)
            .expect("pattern valid");
        let m = run_measurement(
            cfg,
            &Workload::small_scale(RequestKind::ReadOnly, size, mask, ports),
            mc,
        );
        let rps =
            (m.host.reads_completed + m.host.writes_completed) as f64 / m.window.as_secs_f64();
        LoadPoint {
            bandwidth_gbs: m.bandwidth_gbs,
            latency_ns: m.mean_latency_ns(),
            requests_per_sec: rps,
        }
    });
    combos
        .into_iter()
        .zip(measured.chunks(ports_axis))
        .map(|((pattern, size), pts)| LatencyBandwidthCurve {
            pattern,
            size,
            analysis: SaturationAnalysis::analyse(pts.to_vec(), 2.0),
        })
        .collect()
}

/// Figure 17: the 4-bank and 2-bank curves for every Figure 15 size, with
/// the Little's-law outstanding analysis the paper performs.
pub fn figure17(cfg: &SystemConfig, mc: &MeasureConfig) -> Vec<LatencyBandwidthCurve> {
    let combos: Vec<_> = [AccessPattern::Banks(4), AccessPattern::Banks(2)]
        .into_iter()
        .flat_map(|pattern| {
            FIG15_SIZES
                .into_iter()
                .map(move |bytes| (pattern, RequestSize::new(bytes).expect("valid")))
        })
        .collect();
    sweep_curves(cfg, combos, mc)
}

/// Figure 18: curves for every pattern at the given sizes.
pub fn figure18(
    cfg: &SystemConfig,
    sizes: &[RequestSize],
    mc: &MeasureConfig,
) -> Vec<LatencyBandwidthCurve> {
    let combos: Vec<_> = AccessPattern::paper_axis()
        .into_iter()
        .flat_map(|pattern| sizes.iter().map(move |&size| (pattern, size)))
        .collect();
    sweep_curves(cfg, combos, mc)
}

/// Renders a set of latency–bandwidth curves.
pub fn curves_table(title: &str, curves: &[LatencyBandwidthCurve]) -> Table {
    let mut t = Table::new(
        title,
        &[
            "pattern",
            "size",
            "ports",
            "BW GB/s",
            "latency",
            "outstanding",
        ],
    );
    for c in curves {
        for (i, p) in c.analysis.points.iter().enumerate() {
            t.row(vec![
                c.pattern.to_string(),
                c.size.to_string(),
                (i + 1).to_string(),
                f1(p.bandwidth_gbs),
                ns(p.latency_ns),
                f1(p.outstanding()),
            ]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmc_types::TimeDelta;

    fn tiny() -> MeasureConfig {
        MeasureConfig {
            warmup: TimeDelta::from_us(30),
            window: TimeDelta::from_us(150),
        }
    }

    #[test]
    fn figure14_splits_infrastructure_and_cube() {
        let d = figure14(&SystemConfig::default(), RequestSize::MAX);
        // Infrastructure dominates (paper: 547 of ~711 ns).
        assert!(d.infra_ns > 380.0, "infra {}", d.infra_ns);
        assert!(
            (500.0..850.0).contains(&d.measured_ns),
            "measured {}",
            d.measured_ns
        );
        assert!(
            (60.0..280.0).contains(&d.in_cube_ns),
            "in-cube {}",
            d.in_cube_ns
        );
        assert_eq!(d.tx_stages.len(), 7);
        let table = figure14_table(&d);
        assert!(table.len() >= 12);
    }

    #[test]
    fn figure14_breakdown_attributes_all_latency() {
        let cfg = SystemConfig::default();
        let obs = figure14_breakdown(&cfg, RequestSize::MAX);
        let sum = obs.report.stage_sum_ns(obs.latency.count());
        let e2e = obs.latency.mean().as_ns_f64();
        // Acceptance bound is 1%; the trace telescopes so the actual
        // residue is sub-picosecond rounding.
        assert!(
            ((sum - e2e) / e2e).abs() < 0.01,
            "stage sum {sum} ns vs end-to-end {e2e} ns"
        );
        let table = figure14_breakdown_table(&obs, RequestSize::MAX);
        let rendered = table.to_string();
        assert!(rendered.contains("dram"));
        assert!(rendered.contains("link_tx"));
        // The DRAM access is a real but minority share of the unloaded
        // round trip (the paper's infrastructure-dominates observation).
        let dram = obs.report.stage(hmc_types::trace::Stage::Dram);
        assert!(dram.mean().as_ns_f64() > 10.0);
        assert!(dram.mean().as_ns_f64() < e2e / 2.0);
    }

    #[test]
    fn figure15_minimum_flat_maximum_grows() {
        let cfg = SystemConfig::default();
        let size = RequestSize::MAX;
        let short = {
            let (h, _) = run_stream(&cfg, &Workload::read_stream(2, size));
            (h.min().unwrap().as_ns_f64(), h.max().unwrap().as_ns_f64())
        };
        let long = {
            let (h, _) = run_stream(&cfg, &Workload::read_stream(28, size));
            (h.min().unwrap().as_ns_f64(), h.max().unwrap().as_ns_f64())
        };
        // Minimum roughly constant; maximum grows with stream length.
        assert!((long.0 - short.0).abs() < 100.0, "{short:?} vs {long:?}");
        assert!(long.1 > short.1 + 50.0, "{short:?} vs {long:?}");
    }

    #[test]
    fn figure15_large_packets_interfere_more() {
        let cfg = SystemConfig::default();
        let avg = |bytes: u64, n: usize| {
            let (h, _) = run_stream(
                &cfg,
                &Workload::read_stream(n, RequestSize::new(bytes).unwrap()),
            );
            h.mean().as_ns_f64()
        };
        let small28 = avg(16, 28);
        let large28 = avg(128, 28);
        // Paper: a 28-packet 128 B stream is ~1.5x the 16 B stream.
        let ratio = large28 / small28;
        assert!((1.1..2.0).contains(&ratio), "ratio {ratio}");
        // Tiny streams cost almost the same regardless of size.
        let small2 = avg(16, 2);
        let large2 = avg(128, 2);
        assert!((large2 - small2).abs() < 120.0, "{small2} vs {large2}");
    }

    #[test]
    fn figure16_one_bank_queueing_dominates() {
        let cfg = SystemConfig::default();
        let mc = tiny();
        let one_bank = {
            let mask = AccessPattern::Banks(1)
                .mask(cfg.mem.mapping, &cfg.mem.spec)
                .unwrap();
            run_measurement(
                &cfg,
                &Workload::masked(RequestKind::ReadOnly, RequestSize::MAX, mask),
                &mc,
            )
        };
        let all_vaults = run_measurement(
            &cfg,
            &Workload::full_scale(RequestKind::ReadOnly, RequestSize::MAX),
            &mc,
        );
        // Paper: 24 us vs ~2-5 us — an order of magnitude.
        assert!(
            one_bank.mean_latency_ns() > 4.0 * all_vaults.mean_latency_ns(),
            "1 bank {} ns vs 16 vaults {} ns",
            one_bank.mean_latency_ns(),
            all_vaults.mean_latency_ns()
        );
        assert!(
            one_bank.mean_latency_ns() > 10_000.0,
            "1-bank latency {} ns",
            one_bank.mean_latency_ns()
        );
        // 32 B requests are faster than 128 B at the same pattern.
        let mask = AccessPattern::Banks(1)
            .mask(cfg.mem.mapping, &cfg.mem.spec)
            .unwrap();
        let small = run_measurement(
            &cfg,
            &Workload::masked(RequestKind::ReadOnly, RequestSize::new(32).unwrap(), mask),
            &mc,
        );
        assert!(small.mean_latency_ns() < one_bank.mean_latency_ns());
    }

    #[test]
    fn figure17_outstanding_scales_with_banks() {
        let cfg = SystemConfig::default();
        let mc = tiny();
        let four = latency_bandwidth_curve(&cfg, AccessPattern::Banks(4), RequestSize::MAX, &mc);
        let two = latency_bandwidth_curve(&cfg, AccessPattern::Banks(2), RequestSize::MAX, &mc);
        // Deepest-sweep outstanding: 4-bank should be ~2x 2-bank (the
        // paper's 375 vs 187 observation).
        let o4 = four.analysis.points.last().unwrap().outstanding();
        let o2 = two.analysis.points.last().unwrap().outstanding();
        let ratio = o4 / o2;
        assert!((1.5..2.5).contains(&ratio), "outstanding ratio {ratio}");
        // And 4 banks saturate at ~2x the bandwidth.
        let b4 = four.analysis.saturation_bandwidth_gbs();
        let b2 = two.analysis.saturation_bandwidth_gbs();
        assert!((1.5..2.5).contains(&(b4 / b2)), "bw ratio {}", b4 / b2);
    }
}
