//! One module per paper table/figure (see the experiment index in
//! DESIGN.md):
//!
//! | module | reproduces |
//! |---|---|
//! | [`bandwidth`] | Fig 6 (mask sweep), Fig 7 (patterns × ro/rw/wo), Fig 8 (request sizes + MRPS) |
//! | [`thermal`] | Table III, Fig 9 (temperature), Fig 10 (power), Fig 11 (regressions), Fig 12 (cooling power) |
//! | [`page_policy`] | Fig 13 (linear vs random × size) + the open-page ablation |
//! | [`latency`] | Fig 14 (TX deconstruction), Fig 15 (low-load), Fig 16 (high-load), Figs 17/18 (latency–bandwidth) |
//! | [`baseline`] | the DDR DIMM comparison (packet-interface latency premium, bus ceiling) |
//! | [`read_ratio`] | the 53–66 % optimal-read-ratio result of the related OpenHMC/HMCSim studies |
//! | [`mapping`] | the Address Mapping Mode Register ablation (field order × block size) |
//! | [`kernels`] | the application building blocks the paper's intro motivates (scan/hot-spot/chase/gather) |
//! | [`faults`] | link bit-error injection: the cost of the packet-integrity machinery doing work |
//! | [`generations`] | the Table I geometries re-measured, including the then-unreleased HMC 2.0 |
//! | [`chain`] | multi-cube chains: aggregate scaling, per-hop latency adders, near/far asymmetry |
//! | [`openloop`] | open-loop multi-tenant overload: throughput–latency curves, shed policies, SLO conformance |

pub mod bandwidth;
pub mod baseline;
pub mod chain;
pub mod faults;
pub mod generations;
pub mod kernels;
pub mod latency;
pub mod mapping;
pub mod openloop;
pub mod page_policy;
pub mod read_ratio;
pub mod thermal;
