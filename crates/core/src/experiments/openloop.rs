//! Open-loop multi-tenant traffic: throughput–latency curves, per-tenant
//! SLO conformance, and graceful-overload characterization.
//!
//! The paper's GUPS generators are *closed-loop*: a fixed window of
//! outstanding tags throttles the offered rate to whatever the memory
//! sustains, so saturation shows up as flat bandwidth, never as queueing
//! collapse. Production front-ends are open-loop — arrivals keep coming
//! no matter how loaded the memory is — and the interesting questions
//! change: where does goodput plateau, how fast does p99 grow past
//! saturation, and what does the admission layer shed to keep the rest
//! of the traffic inside its SLOs?
//!
//! [`run_openloop`] sweeps the offered load across a fraction grid of a
//! closed-loop [`saturation_probe`], with the protocol sanitizer (and
//! its forward-progress watchdog) armed and the shed-accounting
//! invariant checked at every drain: `offered = shed + completed`.
//! [`run_openloop_scenario`] composes the same frontend with a PR-4
//! fault scenario and the host robustness layer — overload plus faults
//! must degrade by shedding predictably, never by wedging.

use hmc_host::{OpenLoopConfig, RobustStats, ShedPolicy, TenantOpenStats, Workload};
use hmc_types::{RequestKind, RequestSize, Time, TimeDelta};
use sim_engine::{ArrivalKind, FaultScenario, Histogram, SanitizerReport};

use crate::builder::SystemBuilder;
use crate::measure::{run_measurement, MeasureConfig};
use crate::report::{f1, f2, ns, Table};
use crate::system::SystemConfig;
use crate::topology::{ChainSystem, Topology};

/// The load grid [`run_openloop`] sweeps, as fractions of the probed
/// closed-loop saturation rate — past 1.0 the frontend offers more than
/// the memory can retire and the admission layer must shed.
pub const LOAD_FRACTIONS: [f64; 6] = [0.25, 0.5, 0.75, 1.0, 1.25, 1.5];

/// The canonical bursty arrival process of the overload experiments: a
/// two-state MMPP dwelling 12.5 % of a 20 µs cycle in a 4× ON burst.
pub fn bursty() -> ArrivalKind {
    ArrivalKind::Mmpp {
        burst: 4.0,
        on_fraction: 0.125,
        cycle: TimeDelta::from_us(20),
    }
}

/// Short lowercase label for an arrival kind (tables, JSON, CLI).
pub fn kind_label(kind: ArrivalKind) -> &'static str {
    match kind {
        ArrivalKind::Poisson => "poisson",
        ArrivalKind::Mmpp { .. } => "mmpp",
    }
}

/// Sweep shape: shed policy, arrival process, topology, and load grid.
#[derive(Debug, Clone)]
pub struct OpenLoopRun {
    /// Queue-full shed policy.
    pub policy: ShedPolicy,
    /// Interarrival process.
    pub kind: ArrivalKind,
    /// Chain length (1 = the single-cube identity topology).
    pub cubes: u8,
    /// Epoch worker threads (wall-clock only; results are bit-identical
    /// at every setting).
    pub workers: usize,
    /// Offered-load grid as fractions of the probed saturation rate.
    pub fractions: Vec<f64>,
}

impl OpenLoopRun {
    /// Poisson arrivals on a single cube over the standard load grid.
    pub fn standard(policy: ShedPolicy) -> Self {
        OpenLoopRun {
            policy,
            kind: ArrivalKind::Poisson,
            cubes: 1,
            workers: 1,
            fractions: LOAD_FRACTIONS.to_vec(),
        }
    }

    /// [`standard`](OpenLoopRun::standard) with [`bursty`] MMPP arrivals.
    pub fn mmpp(policy: ShedPolicy) -> Self {
        OpenLoopRun {
            kind: bursty(),
            ..OpenLoopRun::standard(policy)
        }
    }
}

/// Per-tenant figures at one load point.
#[derive(Debug, Clone)]
pub struct TenantPoint {
    /// Tenant name from the mix.
    pub name: String,
    /// Arrivals generated in the window.
    pub offered: u64,
    /// Total sheds (rate + queue + deadline).
    pub shed: u64,
    /// Completions in the window.
    pub completed: u64,
    /// p99 arrival-to-completion latency, ns.
    pub p99_ns: f64,
    /// The tenant's SLO target, ns.
    pub slo_ns: f64,
    /// Fraction of completions inside the SLO.
    pub slo_frac: f64,
}

/// One point of the offered-load sweep.
#[derive(Debug, Clone)]
pub struct LoadPoint {
    /// Configured aggregate offered rate, requests/second (all shards).
    pub offered_rps: f64,
    /// Arrivals actually generated in the window.
    pub offered: u64,
    /// Entries admitted into the queue.
    pub admitted: u64,
    /// Arrivals shed (rate + queue + deadline, all tenants).
    pub shed: u64,
    /// Completions in the window.
    pub completed: u64,
    /// Goodput: completions per second over the window.
    pub goodput_rps: f64,
    /// p50 arrival-to-completion latency, ns.
    pub p50_ns: f64,
    /// p99 arrival-to-completion latency, ns.
    pub p99_ns: f64,
    /// p999 arrival-to-completion latency, ns (exact-count fast path
    /// when the reservoir never decimated).
    pub p999_ns: f64,
    /// Fraction of arrivals generated while backpressure was asserted.
    pub backpressured_frac: f64,
    /// Per-tenant breakdown, mix order.
    pub tenants: Vec<TenantPoint>,
}

/// The outcome of one open-loop sweep.
#[derive(Debug, Clone)]
pub struct OpenLoopOutcome {
    /// Shed policy the sweep ran under.
    pub policy: ShedPolicy,
    /// Arrival-process label (`"poisson"` / `"mmpp"`).
    pub kind: &'static str,
    /// Chain length.
    pub cubes: u8,
    /// The probed closed-loop saturation rate, requests/second.
    pub saturation_rps: f64,
    /// One entry per load fraction, grid order.
    pub points: Vec<LoadPoint>,
    /// True if every point's run went idle within the drain budget.
    pub drained: bool,
    /// Merged sanitizer report across all points (armed for every run).
    pub report: SanitizerReport,
}

impl OpenLoopOutcome {
    /// True if the sanitizer saw no violations and every run drained.
    pub fn is_clean(&self) -> bool {
        self.report.is_clean() && self.drained
    }

    /// Bit-exact fingerprint: every float as raw bits plus every
    /// counter. Identical runs — at any epoch worker count — must agree.
    pub fn fingerprint(&self) -> Vec<u64> {
        let mut v = vec![
            self.saturation_rps.to_bits(),
            u64::from(self.cubes),
            u64::from(self.drained),
        ];
        for p in &self.points {
            v.extend([
                p.offered_rps.to_bits(),
                p.offered,
                p.admitted,
                p.shed,
                p.completed,
                p.goodput_rps.to_bits(),
                p.p50_ns.to_bits(),
                p.p99_ns.to_bits(),
                p.p999_ns.to_bits(),
                p.backpressured_frac.to_bits(),
            ]);
            for t in &p.tenants {
                v.extend([
                    t.offered,
                    t.shed,
                    t.completed,
                    t.p99_ns.to_bits(),
                    t.slo_frac.to_bits(),
                ]);
            }
        }
        v
    }
}

/// Probes the closed-loop saturation rate: full-scale 128 B reads, all
/// tags outstanding — the ceiling the open-loop grid is scaled against.
pub fn saturation_probe(cfg: &SystemConfig, mc: &MeasureConfig) -> f64 {
    let m = run_measurement(
        cfg,
        &Workload::full_scale(RequestKind::ReadOnly, RequestSize::MAX),
        mc,
    );
    let done = m.device_delta.reads_completed + m.device_delta.writes_completed;
    done as f64 / mc.window.as_secs_f64()
}

/// Sums the robustness counters across every shard of a chain.
fn chain_robust(sys: &ChainSystem) -> RobustStats {
    let mut acc = RobustStats::default();
    for c in 0..sys.cubes() {
        let r = sys.host(c).robust_stats();
        acc.timeouts += r.timeouts;
        acc.retries += r.retries;
        acc.poisoned_responses += r.poisoned_responses;
        acc.abandoned += r.abandoned;
        acc.links_degraded += r.links_degraded;
        acc.replayed += r.replayed;
    }
    acc
}

fn quantile_ns(h: &Histogram, q: f64) -> f64 {
    h.quantile(q).map_or(0.0, |d| d.as_ns_f64())
}

fn p999_ns(h: &Histogram) -> f64 {
    h.p999().map_or(0.0, |d| d.as_ns_f64())
}

/// Runs one load point and returns its figures plus the run's sanitizer
/// report, drain verdict, and (when robustness is on) robust counters.
fn run_point(
    cfg: &SystemConfig,
    run: &OpenLoopRun,
    offered_rps: f64,
    scenario: Option<&FaultScenario>,
    mc: &MeasureConfig,
) -> (LoadPoint, bool, SanitizerReport, RobustStats) {
    let open =
        OpenLoopConfig::standard_mix(offered_rps / f64::from(run.cubes), run.kind, run.policy);
    let mut b = SystemBuilder::new(cfg.clone())
        .open_loop(open.clone())
        .sanitizer()
        .parallel_shards(run.workers)
        .topology(Topology::chain(run.cubes));
    if let Some(s) = scenario {
        b = b.robust().faults(s);
    }
    let mut sys = b.build_chain();
    sys.start(Time::ZERO);
    sys.run_for(mc.warmup);
    sys.reset_stats();
    let robust_before = chain_robust(&sys);
    sys.run_for(mc.window);
    let stats = sys.open_stats();
    let robust_after = chain_robust(&sys);
    sys.stop_generation();
    let drained = sys.run_until_idle(TimeDelta::from_ms(50));
    if drained {
        sys.sanitize_check_drained();
    }
    let report = sys.sanitizer_report();
    let point = make_window_point(offered_rps, &open, &stats, mc.window);
    (point, drained, report, robust_after - robust_before)
}

/// Aggregates captured per-tenant window stats into a [`LoadPoint`] —
/// the reduction step shared by [`run_openloop`] and external callers
/// (the shard-count determinism regression serializes one directly).
pub fn make_window_point(
    offered_rps: f64,
    open: &OpenLoopConfig,
    stats: &[TenantOpenStats],
    window: TimeDelta,
) -> LoadPoint {
    let mut latency = Histogram::default();
    let mut offered = 0;
    let mut admitted = 0;
    let mut shed = 0;
    let mut completed = 0;
    let mut backpressured = 0;
    let mut tenants = Vec::with_capacity(stats.len());
    for (spec, st) in open.tenants.iter().zip(stats) {
        latency.merge(&st.latency);
        offered += st.offered;
        admitted += st.admitted;
        shed += st.shed_total();
        completed += st.completed;
        backpressured += st.arrived_backpressured;
        tenants.push(TenantPoint {
            name: spec.name.clone(),
            offered: st.offered,
            shed: st.shed_total(),
            completed: st.completed,
            p99_ns: quantile_ns(&st.latency, 0.99),
            slo_ns: spec.slo_p99.as_ns_f64(),
            slo_frac: if st.completed == 0 {
                0.0
            } else {
                st.completed_within_slo as f64 / st.completed as f64
            },
        });
    }
    LoadPoint {
        offered_rps,
        offered,
        admitted,
        shed,
        completed,
        goodput_rps: completed as f64 / window.as_secs_f64(),
        p50_ns: quantile_ns(&latency, 0.50),
        p99_ns: quantile_ns(&latency, 0.99),
        p999_ns: p999_ns(&latency),
        backpressured_frac: if offered == 0 {
            0.0
        } else {
            backpressured as f64 / offered as f64
        },
        tenants,
    }
}

/// Sweeps the offered load over `run.fractions` × the probed saturation
/// rate, sanitizer and watchdog armed at every point.
pub fn run_openloop(cfg: &SystemConfig, run: &OpenLoopRun, mc: &MeasureConfig) -> OpenLoopOutcome {
    let saturation_rps = saturation_probe(cfg, mc) * f64::from(run.cubes);
    let mut points = Vec::with_capacity(run.fractions.len());
    let mut drained = true;
    let mut report: Option<SanitizerReport> = None;
    for &frac in &run.fractions {
        let (p, d, r, _) = run_point(cfg, run, saturation_rps * frac, None, mc);
        points.push(p);
        drained &= d;
        match report.as_mut() {
            Some(acc) => acc.merge(&r),
            None => report = Some(r),
        }
    }
    OpenLoopOutcome {
        policy: run.policy,
        kind: kind_label(run.kind),
        cubes: run.cubes,
        saturation_rps,
        points,
        drained,
        report: report.expect("at least one load fraction"),
    }
}

/// The outcome of composing the open-loop frontend with a fault
/// scenario: overload plus faults, robustness layer on, watchdog armed.
#[derive(Debug, Clone)]
pub struct DegradedOutcome {
    /// Scenario name.
    pub scenario: String,
    /// The single overload point measured under the scenario.
    pub point: LoadPoint,
    /// Host robustness counters over the window (summed across shards).
    pub robust: RobustStats,
    /// True if the run went idle within the drain budget — a wedge under
    /// overload + faults shows up here (and trips the watchdog first).
    pub drained: bool,
    /// The run's sanitizer report.
    pub report: SanitizerReport,
}

impl DegradedOutcome {
    /// True if the sanitizer saw no violations and the run drained.
    pub fn is_clean(&self) -> bool {
        self.report.is_clean() && self.drained
    }
}

/// Runs one overload point (`frac` × saturation) with `scenario`
/// installed on every cube and the host robustness layer enabled: the
/// degraded mode must shed predictably, never wedge.
pub fn run_openloop_scenario(
    cfg: &SystemConfig,
    run: &OpenLoopRun,
    scenario: &FaultScenario,
    frac: f64,
    mc: &MeasureConfig,
) -> DegradedOutcome {
    let saturation_rps = saturation_probe(cfg, mc) * f64::from(run.cubes);
    let (point, drained, report, robust) =
        run_point(cfg, run, saturation_rps * frac, Some(scenario), mc);
    DegradedOutcome {
        scenario: scenario.name.clone(),
        point,
        robust,
        drained,
        report,
    }
}

/// Renders the offered-vs-goodput throughput–latency curve.
pub fn throughput_table(o: &OpenLoopOutcome) -> Table {
    let mut t = Table::new(
        format!(
            "Open-loop throughput-latency ({} arrivals, {} policy, {} cube{})",
            o.kind,
            o.policy,
            o.cubes,
            if o.cubes == 1 { "" } else { "s" }
        ),
        &["offered", "goodput", "shed%", "p50", "p99", "p999", "bp%"],
    );
    for p in &o.points {
        let shed_pct = if p.offered == 0 {
            0.0
        } else {
            100.0 * p.shed as f64 / p.offered as f64
        };
        t.row(vec![
            format!("{:.1} Mrps", p.offered_rps / 1e6),
            format!("{:.1} Mrps", p.goodput_rps / 1e6),
            f1(shed_pct),
            ns(p.p50_ns),
            ns(p.p99_ns),
            ns(p.p999_ns),
            f1(100.0 * p.backpressured_frac),
        ]);
    }
    t
}

/// Renders per-tenant SLO conformance across the load grid.
pub fn slo_table(o: &OpenLoopOutcome) -> Table {
    let mut t = Table::new(
        format!("Per-tenant SLO conformance ({} policy)", o.policy),
        &[
            "load",
            "tenant",
            "offered",
            "shed",
            "completed",
            "p99",
            "SLO",
            "conform",
        ],
    );
    for p in &o.points {
        let frac = if o.saturation_rps == 0.0 {
            0.0
        } else {
            p.offered_rps / o.saturation_rps
        };
        for tn in &p.tenants {
            t.row(vec![
                format!("{:.2}x", frac),
                tn.name.clone(),
                tn.offered.to_string(),
                tn.shed.to_string(),
                tn.completed.to_string(),
                ns(tn.p99_ns),
                ns(tn.slo_ns),
                f2(tn.slo_frac),
            ]);
        }
    }
    t
}

/// Hand-rolled JSON export of an open-loop sweep.
pub fn openloop_json(o: &OpenLoopOutcome) -> String {
    let mut s = format!(
        "{{\"policy\":\"{}\",\"kind\":\"{}\",\"cubes\":{},\
         \"saturation_rps\":{},\"drained\":{},\"violations\":{},\"points\":[",
        o.policy,
        o.kind,
        o.cubes,
        o.saturation_rps,
        o.drained,
        o.report.violations().len(),
    );
    for (i, p) in o.points.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "{{\"offered_rps\":{},\"offered\":{},\"admitted\":{},\
             \"shed\":{},\"completed\":{},\"goodput_rps\":{},\"p50_ns\":{},\
             \"p99_ns\":{},\"p999_ns\":{},\"backpressured_frac\":{},\
             \"tenants\":[",
            p.offered_rps,
            p.offered,
            p.admitted,
            p.shed,
            p.completed,
            p.goodput_rps,
            p.p50_ns,
            p.p99_ns,
            p.p999_ns,
            p.backpressured_frac,
        ));
        for (j, tn) in p.tenants.iter().enumerate() {
            if j > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"name\":\"{}\",\"offered\":{},\"shed\":{},\
                 \"completed\":{},\"p99_ns\":{},\"slo_ns\":{},\
                 \"slo_frac\":{}}}",
                tn.name, tn.offered, tn.shed, tn.completed, tn.p99_ns, tn.slo_ns, tn.slo_frac,
            ));
        }
        s.push_str("]}");
    }
    s.push_str("]}");
    s
}

impl crate::report::JsonReport for OpenLoopOutcome {
    fn kind(&self) -> &'static str {
        "openloop"
    }

    fn json(&self) -> String {
        openloop_json(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> MeasureConfig {
        MeasureConfig {
            warmup: TimeDelta::from_us(20),
            window: TimeDelta::from_us(80),
        }
    }

    fn tiny_run(policy: ShedPolicy) -> OpenLoopRun {
        OpenLoopRun {
            fractions: vec![0.5, 1.5],
            ..OpenLoopRun::standard(policy)
        }
    }

    #[test]
    fn goodput_plateaus_past_saturation() {
        let o = run_openloop(
            &SystemConfig::default(),
            &tiny_run(ShedPolicy::RejectNewest),
            &tiny(),
        );
        assert!(o.is_clean(), "{:?}", o.report.violations());
        assert_eq!(o.points.len(), 2);
        let under = &o.points[0];
        let over = &o.points[1];
        // Below saturation nothing queue-sheds and goodput tracks offer.
        assert!(
            under.completed * 10 >= under.offered * 9,
            "under load: {} of {} completed",
            under.completed,
            under.offered
        );
        // Past saturation the admission layer sheds and goodput flattens
        // instead of collapsing.
        assert!(over.shed > 0, "overload must shed");
        assert!(
            over.goodput_rps < over.offered_rps,
            "goodput must plateau below the offer"
        );
        assert!(over.goodput_rps > under.goodput_rps * 0.8, "no collapse");
    }

    #[test]
    fn every_policy_sheds_cleanly_under_mmpp() {
        for policy in ShedPolicy::ALL {
            let run = OpenLoopRun {
                fractions: vec![1.5],
                ..OpenLoopRun::mmpp(policy)
            };
            let o = run_openloop(&SystemConfig::default(), &run, &tiny());
            assert!(o.is_clean(), "policy {policy}: {:?}", o.report.violations());
            assert!(o.points[0].shed > 0, "policy {policy} must shed at 1.5x");
            assert!(o.points[0].completed > 0, "policy {policy} keeps goodput");
        }
    }

    #[test]
    fn tables_and_json_render() {
        let o = run_openloop(
            &SystemConfig::default(),
            &tiny_run(ShedPolicy::PriorityShed),
            &tiny(),
        );
        let t = throughput_table(&o);
        assert_eq!(t.len(), 2);
        let slo = slo_table(&o);
        assert_eq!(slo.len(), 2 * 3, "one row per (load, tenant)");
        assert_eq!(slo.cell(0, 1), "latency");
        let j = openloop_json(&o);
        assert!(j.starts_with("{\"policy\":\"priority-shed\""));
        assert!(j.contains("\"tenants\":[{\"name\":\"latency\""));
        assert!(j.ends_with("]}"));
        use crate::report::JsonReport as _;
        assert_eq!(o.kind(), "openloop");
    }

    #[test]
    fn degraded_overload_sheds_but_never_wedges() {
        let scenario = FaultScenario::builtin("noisy-link").expect("builtin");
        let o = run_openloop_scenario(
            &SystemConfig::default(),
            &OpenLoopRun::mmpp(ShedPolicy::DeadlineDrop),
            &scenario,
            1.5,
            &tiny(),
        );
        assert!(o.is_clean(), "{:?}", o.report.violations());
        assert!(o.point.shed > 0, "overload under faults must shed");
        assert!(o.point.completed > 0, "goodput survives the scenario");
    }
}
