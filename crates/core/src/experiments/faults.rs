//! Fault injection: link bit errors and whole-system fault scenarios.
//!
//! The paper credits HMC's packet protocol with "packet integrity and
//! proper flow control" (the Add-Seq#/Add-CRC stages of Figure 14) and
//! counts "better package-level fault tolerance" among the returns for the
//! latency premium. Two experiments live here:
//!
//! * [`ber_sweep`] injects lane bit errors and measures what the
//!   link-level retry protocol costs as the error rate climbs — the
//!   price of the integrity machinery actually doing work.
//! * [`run_scenario`] runs a seeded [`FaultScenario`] (credit leaks, link
//!   stalls, vault wedges, thermal spikes) against the full robustness
//!   stack — structural link retry, host timeouts with backoff, link
//!   degradation, and live thermal-shutdown recovery — with the protocol
//!   sanitizer armed, and characterizes the degraded mode.

use hmc_host::{RobustStats, Workload};
use hmc_mem::DeviceStats;
use hmc_types::{RequestKind, RequestSize, Time, TimeDelta};
use sim_engine::{FaultScenario, SanitizerReport};

use crate::measure::{run_measurement, MeasureConfig};
use crate::report::{f1, ns, Table};
use crate::system::SystemConfig;

/// One point of the bit-error-rate sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPoint {
    /// Injected lane bit-error rate.
    pub ber: f64,
    /// Counted bandwidth, GB/s.
    pub bandwidth_gbs: f64,
    /// Mean read latency, ns.
    pub latency_ns: f64,
    /// Link retries per million packets.
    pub retries_per_mpkt: f64,
}

/// Sweeps the injected bit-error rate under full-scale 128 B reads.
pub fn ber_sweep(cfg: &SystemConfig, bers: &[f64], mc: &MeasureConfig) -> Vec<FaultPoint> {
    bers.iter()
        .map(|&ber| {
            let mut c = cfg.clone();
            c.mem.link_layer.bit_error_rate = ber;
            let m = run_measurement(
                &c,
                &Workload::full_scale(RequestKind::ReadOnly, RequestSize::MAX),
                mc,
            );
            let packets = m.device_delta.reads_completed + m.device_delta.writes_completed;
            FaultPoint {
                ber,
                bandwidth_gbs: m.bandwidth_gbs,
                latency_ns: m.mean_latency_ns(),
                retries_per_mpkt: if packets == 0 {
                    0.0
                } else {
                    m.device_delta.link_retries as f64 * 1e6 / (2 * packets) as f64
                },
            }
        })
        .collect()
}

/// The sweep the bench target runs.
pub const BER_AXIS: [f64; 5] = [0.0, 1e-9, 1e-7, 1e-6, 1e-5];

/// Renders the sweep.
pub fn faults_table(points: &[FaultPoint]) -> Table {
    let mut t = Table::new(
        "Link fault injection: bandwidth & latency vs lane bit-error rate",
        &["BER", "GB/s", "latency", "retries/Mpkt"],
    );
    for p in points {
        t.row(vec![
            if p.ber == 0.0 {
                "0".to_string()
            } else {
                format!("{:.0e}", p.ber)
            },
            f1(p.bandwidth_gbs),
            ns(p.latency_ns),
            f1(p.retries_per_mpkt),
        ]);
    }
    t
}

/// The outcome of one fault-scenario run: the measurement window's
/// performance, the fault/recovery counters that accumulated from the
/// end of warm-up through the final drain, and the sanitizer verdict.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// Scenario name.
    pub name: String,
    /// Counted bandwidth over the measurement window, GB/s.
    pub bandwidth_gbs: f64,
    /// Completed requests over the window, millions per second.
    pub mrps: f64,
    /// Mean read latency over the window, ns (synthesized completions of
    /// abandoned requests included — degradation shows up here).
    pub mean_latency_ns: f64,
    /// Device activity delta over the window (link retries, injected
    /// stalls, leaked credits, deduplicated retransmissions).
    pub device_delta: DeviceStats,
    /// Host robustness counters from the end of warm-up through the
    /// drain (timeouts, retries, poisoned responses, abandons, link
    /// deaths, replays).
    pub robust: RobustStats,
    /// Thermal shutdown/recovery cycles executed.
    pub shutdowns: usize,
    /// Total dead time across all shutdown cycles.
    pub outage: TimeDelta,
    /// Requests issued over the whole run.
    pub issued: u64,
    /// Requests retired over the whole run (device answers plus
    /// force-completed abandons).
    pub completed: u64,
    /// True if the run went idle within the drain budget — a hung
    /// recovery or wedged link shows up as `false`.
    pub drained: bool,
    /// The merged sanitizer report (armed for the whole run).
    pub report: SanitizerReport,
}

impl ScenarioOutcome {
    /// True if the sanitizer saw no violations and the run drained.
    pub fn is_clean(&self) -> bool {
        self.report.is_clean() && self.drained
    }

    /// Bit-exact fingerprint of the outcome: every floating-point figure
    /// as raw bits plus every counter. Two runs of the same scenario on
    /// the same configuration must produce identical fingerprints
    /// regardless of host parallelism.
    pub fn fingerprint(&self) -> Vec<u64> {
        let d = &self.device_delta;
        let r = &self.robust;
        vec![
            self.bandwidth_gbs.to_bits(),
            self.mrps.to_bits(),
            self.mean_latency_ns.to_bits(),
            d.link_retries,
            d.link_stalls,
            d.credits_leaked,
            d.duplicate_requests,
            d.dropped_responses,
            r.timeouts,
            r.retries,
            r.poisoned_responses,
            r.abandoned,
            r.links_degraded,
            r.replayed,
            self.shutdowns as u64,
            self.outage.as_ps(),
            self.issued,
            self.completed,
            u64::from(self.drained),
        ]
    }
}

/// Runs one fault scenario under full-scale 128 B reads with the host
/// robustness layer enabled and the sanitizer armed.
///
/// The run warms up, measures one window (faults usually trigger inside
/// it), then — if a thermal shutdown pushed the resume instant past the
/// window — extends past the recovery so the replay executes, and
/// finally stops generation and drains. The built-in scenarios trigger
/// at 200–400 µs, inside [`MeasureConfig::standard`]'s window.
pub fn run_scenario(
    cfg: &SystemConfig,
    scenario: &FaultScenario,
    mc: &MeasureConfig,
) -> ScenarioOutcome {
    let mut sys = crate::builder::SystemBuilder::new(cfg.clone())
        .robust()
        .sanitizer()
        .faults(scenario)
        .build();
    sys.host_mut().apply_workload(&Workload::full_scale(
        RequestKind::ReadOnly,
        RequestSize::MAX,
    ));
    sys.host_mut().start(Time::ZERO);
    sys.step_until(Time::ZERO + mc.warmup);
    sys.host_mut().reset_stats();
    let device_before = sys.device().stats();
    let robust_before = sys.host().robust_stats();
    sys.step_until(Time::ZERO + mc.warmup + mc.window);
    // Window figures are captured now, before any recovery extension
    // dilutes them.
    let host = sys.host().stats();
    let device_delta = sys.device().stats() - device_before;
    // A shutdown whose recovery outlasts the window leaves the replayed
    // requests parked at the resume instant: run past it so the replay
    // actually executes (and its conservation is checked).
    if let Some(resume) = sys.recoveries().last().map(|r| r.resume_at) {
        let target = resume + mc.window / 4;
        if target > sys.now() {
            sys.step_until(target);
        }
    }
    sys.host_mut().stop_generation();
    let drained = sys.run_until_idle(TimeDelta::from_ms(50));
    if drained {
        sys.sanitize_check_drained();
    }
    ScenarioOutcome {
        name: scenario.name.clone(),
        bandwidth_gbs: host.bandwidth_gbs(mc.window),
        mrps: host.mrps(mc.window),
        mean_latency_ns: host.read_latency.mean().as_ns_f64(),
        device_delta,
        robust: sys.host().robust_stats() - robust_before,
        shutdowns: sys.recoveries().len(),
        outage: sys
            .recoveries()
            .iter()
            .fold(TimeDelta::ZERO, |acc, r| acc + r.outage()),
        issued: sys.host().total_issued(),
        completed: sys.host().total_issued() - sys.host().outstanding(),
        drained,
        report: sys.sanitizer_report(),
    }
}

/// [`run_scenario`] for a built-in scenario by name.
pub fn run_builtin(cfg: &SystemConfig, name: &str, mc: &MeasureConfig) -> Option<ScenarioOutcome> {
    let scenario = FaultScenario::builtin(name)?;
    Some(run_scenario(cfg, &scenario, mc))
}

/// Renders scenario outcomes side by side.
pub fn scenario_table(outcomes: &[ScenarioOutcome]) -> Table {
    let mut t = Table::new(
        "Fault scenarios: degraded-mode characterization (full-scale ro 128 B)",
        &[
            "scenario",
            "GB/s",
            "latency",
            "retries",
            "timeouts",
            "abandoned",
            "dead",
            "shutdowns",
            "outage",
            "clean",
        ],
    );
    for o in outcomes {
        t.row(vec![
            o.name.clone(),
            f1(o.bandwidth_gbs),
            ns(o.mean_latency_ns),
            o.device_delta.link_retries.to_string(),
            o.robust.timeouts.to_string(),
            o.robust.abandoned.to_string(),
            o.robust.links_degraded.to_string(),
            o.shutdowns.to_string(),
            format!("{}", o.outage),
            if o.is_clean() { "yes" } else { "NO" }.to_string(),
        ]);
    }
    t
}

/// Hand-rolled JSON export of scenario outcomes — the CI smoke matrix's
/// artifact format.
pub fn scenarios_json(outcomes: &[ScenarioOutcome]) -> String {
    let mut s = String::from("{\"scenarios\":[");
    for (i, o) in outcomes.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let d = &o.device_delta;
        let r = &o.robust;
        s.push_str(&format!(
            "{{\"name\":\"{}\",\"bandwidth_gbs\":{},\"mrps\":{},\
             \"mean_latency_ns\":{},\"link_retries\":{},\"link_stalls\":{},\
             \"credits_leaked\":{},\"duplicate_requests\":{},\
             \"dropped_responses\":{},\"timeouts\":{},\"host_retries\":{},\
             \"poisoned_responses\":{},\"abandoned\":{},\"links_degraded\":{},\
             \"replayed\":{},\"shutdowns\":{},\"outage_ns\":{},\
             \"issued\":{},\"completed\":{},\"drained\":{},\"violations\":{}}}",
            o.name,
            o.bandwidth_gbs,
            o.mrps,
            o.mean_latency_ns,
            d.link_retries,
            d.link_stalls,
            d.credits_leaked,
            d.duplicate_requests,
            d.dropped_responses,
            r.timeouts,
            r.retries,
            r.poisoned_responses,
            r.abandoned,
            r.links_degraded,
            r.replayed,
            o.shutdowns,
            o.outage.as_ps() / 1_000,
            o.issued,
            o.completed,
            o.drained,
            o.report.violations().len(),
        ));
    }
    s.push_str("]}");
    s
}

impl crate::report::JsonReport for [ScenarioOutcome] {
    fn kind(&self) -> &'static str {
        "faults"
    }

    fn json(&self) -> String {
        scenarios_json(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmc_types::TimeDelta;

    fn tiny() -> MeasureConfig {
        MeasureConfig {
            warmup: TimeDelta::from_us(30),
            window: TimeDelta::from_us(150),
        }
    }

    #[test]
    fn clean_links_never_retry() {
        let pts = ber_sweep(&SystemConfig::default(), &[0.0], &tiny());
        assert_eq!(pts[0].retries_per_mpkt, 0.0);
    }

    #[test]
    fn errors_cost_bandwidth_monotonically() {
        let pts = ber_sweep(&SystemConfig::default(), &[0.0, 1e-6, 1e-5], &tiny());
        assert!(pts[1].retries_per_mpkt > 0.0);
        assert!(pts[2].retries_per_mpkt > pts[1].retries_per_mpkt);
        // Heavy error injection visibly derates the read ceiling.
        assert!(
            pts[2].bandwidth_gbs < pts[0].bandwidth_gbs * 0.97,
            "BER 1e-5: {} vs clean {}",
            pts[2].bandwidth_gbs,
            pts[0].bandwidth_gbs
        );
        // Rare errors are absorbed with negligible cost — the protocol's
        // selling point.
        assert!(
            pts[1].bandwidth_gbs > pts[0].bandwidth_gbs * 0.95,
            "BER 1e-6 nearly free: {} vs {}",
            pts[1].bandwidth_gbs,
            pts[0].bandwidth_gbs
        );
    }

    #[test]
    fn table_renders() {
        let pts = ber_sweep(&SystemConfig::default(), &[0.0], &tiny());
        let t = faults_table(&pts);
        assert_eq!(t.len(), 1);
        assert_eq!(t.cell(0, 0), "0");
    }

    #[test]
    fn noisy_link_scenario_retries_and_stays_clean() {
        let o = run_builtin(&SystemConfig::default(), "noisy-link", &tiny()).unwrap();
        assert!(o.device_delta.link_retries > 0, "BER 1e-6 must retry");
        assert!(o.is_clean(), "{:?}", o.report.violations());
        assert_eq!(o.issued, o.completed, "everything retires");
        assert_eq!(o.shutdowns, 0);
    }

    #[test]
    fn scenario_fingerprint_is_deterministic() {
        let run = || run_builtin(&SystemConfig::default(), "noisy-link", &tiny()).unwrap();
        assert_eq!(run().fingerprint(), run().fingerprint());
    }

    #[test]
    fn unknown_scenario_is_none() {
        assert!(run_builtin(&SystemConfig::default(), "no-such", &tiny()).is_none());
    }

    #[test]
    fn scenario_table_and_json_render() {
        let o = run_builtin(&SystemConfig::default(), "noisy-link", &tiny()).unwrap();
        let t = scenario_table(std::slice::from_ref(&o));
        assert_eq!(t.len(), 1);
        assert_eq!(t.cell(0, 0), "noisy-link");
        let j = scenarios_json(std::slice::from_ref(&o));
        assert!(j.starts_with("{\"scenarios\":[{\"name\":\"noisy-link\""));
        assert!(j.contains("\"drained\":true"));
        assert!(j.ends_with("]}"));
    }
}
