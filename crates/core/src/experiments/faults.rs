//! Fault injection on the serial links.
//!
//! The paper credits HMC's packet protocol with "packet integrity and
//! proper flow control" (the Add-Seq#/Add-CRC stages of Figure 14) and
//! counts "better package-level fault tolerance" among the returns for the
//! latency premium. This experiment injects lane bit errors and measures
//! what the link-level retry protocol costs as the error rate climbs —
//! the price of the integrity machinery actually doing work.

use hmc_host::Workload;
use hmc_types::{RequestKind, RequestSize};

use crate::measure::{run_measurement, MeasureConfig};
use crate::report::{f1, ns, Table};
use crate::system::SystemConfig;

/// One point of the bit-error-rate sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPoint {
    /// Injected lane bit-error rate.
    pub ber: f64,
    /// Counted bandwidth, GB/s.
    pub bandwidth_gbs: f64,
    /// Mean read latency, ns.
    pub latency_ns: f64,
    /// Link retries per million packets.
    pub retries_per_mpkt: f64,
}

/// Sweeps the injected bit-error rate under full-scale 128 B reads.
pub fn ber_sweep(cfg: &SystemConfig, bers: &[f64], mc: &MeasureConfig) -> Vec<FaultPoint> {
    bers.iter()
        .map(|&ber| {
            let mut c = cfg.clone();
            c.mem.link_layer.bit_error_rate = ber;
            let m = run_measurement(
                &c,
                &Workload::full_scale(RequestKind::ReadOnly, RequestSize::MAX),
                mc,
            );
            let packets = m.device_delta.reads_completed + m.device_delta.writes_completed;
            FaultPoint {
                ber,
                bandwidth_gbs: m.bandwidth_gbs,
                latency_ns: m.mean_latency_ns(),
                retries_per_mpkt: if packets == 0 {
                    0.0
                } else {
                    m.device_delta.link_retries as f64 * 1e6 / (2 * packets) as f64
                },
            }
        })
        .collect()
}

/// The sweep the bench target runs.
pub const BER_AXIS: [f64; 5] = [0.0, 1e-9, 1e-7, 1e-6, 1e-5];

/// Renders the sweep.
pub fn faults_table(points: &[FaultPoint]) -> Table {
    let mut t = Table::new(
        "Link fault injection: bandwidth & latency vs lane bit-error rate",
        &["BER", "GB/s", "latency", "retries/Mpkt"],
    );
    for p in points {
        t.row(vec![
            if p.ber == 0.0 {
                "0".to_string()
            } else {
                format!("{:.0e}", p.ber)
            },
            f1(p.bandwidth_gbs),
            ns(p.latency_ns),
            f1(p.retries_per_mpkt),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmc_types::TimeDelta;

    fn tiny() -> MeasureConfig {
        MeasureConfig {
            warmup: TimeDelta::from_us(30),
            window: TimeDelta::from_us(150),
        }
    }

    #[test]
    fn clean_links_never_retry() {
        let pts = ber_sweep(&SystemConfig::default(), &[0.0], &tiny());
        assert_eq!(pts[0].retries_per_mpkt, 0.0);
    }

    #[test]
    fn errors_cost_bandwidth_monotonically() {
        let pts = ber_sweep(&SystemConfig::default(), &[0.0, 1e-6, 1e-5], &tiny());
        assert!(pts[1].retries_per_mpkt > 0.0);
        assert!(pts[2].retries_per_mpkt > pts[1].retries_per_mpkt);
        // Heavy error injection visibly derates the read ceiling.
        assert!(
            pts[2].bandwidth_gbs < pts[0].bandwidth_gbs * 0.97,
            "BER 1e-5: {} vs clean {}",
            pts[2].bandwidth_gbs,
            pts[0].bandwidth_gbs
        );
        // Rare errors are absorbed with negligible cost — the protocol's
        // selling point.
        assert!(
            pts[1].bandwidth_gbs > pts[0].bandwidth_gbs * 0.95,
            "BER 1e-6 nearly free: {} vs {}",
            pts[1].bandwidth_gbs,
            pts[0].bandwidth_gbs
        );
    }

    #[test]
    fn table_renders() {
        let pts = ber_sweep(&SystemConfig::default(), &[0.0], &tiny());
        let t = faults_table(&pts);
        assert_eq!(t.len(), 1);
        assert_eq!(t.cell(0, 0), "0");
    }
}
