//! The DDR DIMM baseline comparison.
//!
//! The paper positions HMC against JEDEC DIMMs qualitatively: the
//! packet-switched interface costs roughly 2× a typical closed-page DRAM
//! access in unloaded latency, in exchange for concurrency that a
//! synchronous bus cannot offer. This experiment measures both sides on
//! the two models.

use ddr_baseline::{DdrConfig, DdrDimm};
use hmc_host::Workload;
use hmc_types::{RequestKind, RequestSize, TimeDelta};
use sim_engine::SplitMix64;

use crate::measure::{run_measurement, run_stream, MeasureConfig};
use crate::report::{f1, ns, Table};
use crate::system::SystemConfig;

/// Head-to-head numbers for one request size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BaselineComparison {
    /// Request size compared.
    pub size: RequestSize,
    /// HMC unloaded read latency (single request), ns.
    pub hmc_unloaded_ns: f64,
    /// DDR unloaded read latency, ns.
    pub ddr_unloaded_ns: f64,
    /// HMC loaded random-read bandwidth, GB/s (counted).
    pub hmc_bandwidth_gbs: f64,
    /// DDR streaming bandwidth ceiling, GB/s (data).
    pub ddr_bandwidth_gbs: f64,
    /// HMC in-cube latency share, ns (round trip minus host
    /// infrastructure).
    pub hmc_in_cube_ns: f64,
}

/// Runs the comparison at one size.
pub fn compare(cfg: &SystemConfig, size: RequestSize, mc: &MeasureConfig) -> BaselineComparison {
    // HMC unloaded latency: single-request stream.
    let (hist, _) = run_stream(cfg, &Workload::read_stream(1, size));
    let hmc_unloaded = hist.min().map_or(0.0, |d| d.as_ns_f64());
    let infra = hmc_host::controller::infrastructure_latency(
        &cfg.host.tx,
        &cfg.host.rx,
        size,
        cfg.host.frequency,
    )
    .as_ns_f64();

    // HMC loaded bandwidth.
    let m = run_measurement(cfg, &Workload::full_scale(RequestKind::ReadOnly, size), mc);

    // DDR unloaded latency: one random access on an idle DIMM.
    let mut dimm = DdrDimm::new(DdrConfig::ddr3_1600());
    let done = dimm.access(0x10_0000, false, size.bytes(), hmc_types::Time::ZERO);
    let ddr_unloaded = done.as_ns_f64();

    // DDR streaming bandwidth: paced linear burst train.
    let mut stream_dimm = DdrDimm::new(DdrConfig::ddr3_1600());
    let n = 20_000u64;
    let span = stream_dimm.run_paced(
        (0..n).map(|i| (i * 64, false, 64)),
        DdrConfig::ddr3_1600().burst_time,
    );
    let ddr_bw = stream_dimm.stats().data_bytes as f64 / span.as_secs_f64() / 1e9;

    BaselineComparison {
        size,
        hmc_unloaded_ns: hmc_unloaded,
        ddr_unloaded_ns: ddr_unloaded,
        hmc_bandwidth_gbs: m.bandwidth_gbs,
        ddr_bandwidth_gbs: ddr_bw,
        hmc_in_cube_ns: hmc_unloaded - infra,
    }
}

/// Renders the comparison.
pub fn baseline_table(rows: &[BaselineComparison]) -> Table {
    let mut t = Table::new(
        "HMC vs DDR3-1600 baseline",
        &[
            "size",
            "HMC unloaded",
            "DDR unloaded",
            "HMC in-cube",
            "HMC GB/s",
            "DDR GB/s",
        ],
    );
    for r in rows {
        t.row(vec![
            r.size.to_string(),
            ns(r.hmc_unloaded_ns),
            ns(r.ddr_unloaded_ns),
            ns(r.hmc_in_cube_ns),
            f1(r.hmc_bandwidth_gbs),
            f1(r.ddr_bandwidth_gbs),
        ]);
    }
    t
}

/// Random-access throughput comparison: HMC's vault/bank concurrency vs
/// the DIMM's shared bus, under a random 128 B request flood.
pub fn random_access_throughput(cfg: &SystemConfig, mc: &MeasureConfig) -> (f64, f64) {
    let m = run_measurement(
        cfg,
        &Workload::full_scale(RequestKind::ReadOnly, RequestSize::MAX),
        mc,
    );
    let hmc_data_gbs = m.device_delta.data_read_bytes as f64 / m.window.as_secs_f64() / 1e9;
    let mut dimm = DdrDimm::new(DdrConfig::ddr3_1600());
    let mut rng = SplitMix64::new(7);
    let n = 50_000u64;
    let span = dimm.run_paced(
        (0..n).map(|_| (rng.next_below(1 << 27) * 128, false, 128)),
        TimeDelta::from_ns(10),
    );
    let ddr_data_gbs = dimm.stats().data_bytes as f64 / span.as_secs_f64() / 1e9;
    (hmc_data_gbs, ddr_data_gbs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> MeasureConfig {
        MeasureConfig {
            warmup: TimeDelta::from_us(30),
            window: TimeDelta::from_us(150),
        }
    }

    #[test]
    fn packet_interface_costs_latency() {
        let c = compare(&SystemConfig::default(), RequestSize::MAX, &tiny());
        // Unloaded: HMC is far slower than a DIMM (packetization + SerDes
        // + FPGA pipelines).
        assert!(
            c.hmc_unloaded_ns > 5.0 * c.ddr_unloaded_ns,
            "HMC {} vs DDR {}",
            c.hmc_unloaded_ns,
            c.ddr_unloaded_ns
        );
        // But the in-cube share alone is ~2x a closed-page DRAM access —
        // the paper's estimate for the packet-switched interface.
        let ratio = c.hmc_in_cube_ns / c.ddr_unloaded_ns;
        assert!((1.0..6.0).contains(&ratio), "in-cube ratio {ratio}");
    }

    #[test]
    fn hmc_wins_on_bandwidth() {
        let c = compare(&SystemConfig::default(), RequestSize::MAX, &tiny());
        assert!(
            c.hmc_bandwidth_gbs > c.ddr_bandwidth_gbs,
            "HMC {} vs DDR {}",
            c.hmc_bandwidth_gbs,
            c.ddr_bandwidth_gbs
        );
    }

    #[test]
    fn random_concurrency_advantage() {
        let (hmc, ddr) = random_access_throughput(&SystemConfig::default(), &tiny());
        assert!(hmc > ddr, "HMC {hmc} vs DDR {ddr} GB/s of random data");
    }

    #[test]
    fn table_renders() {
        let rows = vec![compare(&SystemConfig::default(), RequestSize::MIN, &tiny())];
        let t = baseline_table(&rows);
        assert_eq!(t.len(), 1);
    }
}
