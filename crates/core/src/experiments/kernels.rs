//! Application-kernel building blocks.
//!
//! The paper motivates its synthetic patterns as "building blocks of real
//! applications"; this module assembles those blocks into four
//! recognizable kernels and measures what the cube gives each one:
//!
//! * **scan** — a streaming pass (linear, all ports): link-bound.
//! * **hot spot** — 90 % of accesses to one 2 KB structure: vault-bound,
//!   the pathology the data-layout guidance warns about.
//! * **pointer chase** — a dependent walk: round-trip-latency-bound, the
//!   worst case for a packet-switched memory.
//! * **batched gather** — random independent reads: the concurrency
//!   sweet spot.

use hmc_host::workload::{Addressing, PortWorkload};
use hmc_host::Workload;
use hmc_types::{AddressMask, RequestKind, RequestSize, Time, TimeDelta};

use crate::measure::{run_measurement, MeasureConfig};
use crate::report::{f1, ns, Table};
use crate::system::{System, SystemConfig};

/// The four kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Kernel {
    /// Streaming linear pass over a large array.
    Scan,
    /// 90 % of accesses to a 2 KB hot structure, 10 % uniform.
    HotSpot,
    /// Dependent pointer chase.
    PointerChase,
    /// Independent random gather.
    Gather,
}

impl Kernel {
    /// All kernels in presentation order.
    pub const ALL: [Kernel; 4] = [
        Kernel::Scan,
        Kernel::HotSpot,
        Kernel::PointerChase,
        Kernel::Gather,
    ];
}

impl std::fmt::Display for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Kernel::Scan => "scan (linear stream)",
            Kernel::HotSpot => "hot spot (2 KB structure)",
            Kernel::PointerChase => "pointer chase",
            Kernel::Gather => "gather (random batch)",
        })
    }
}

/// Measured behaviour of one kernel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelResult {
    /// Which kernel.
    pub kernel: Kernel,
    /// Counted bandwidth, GB/s (0 for the chase — it is latency-bound by
    /// construction).
    pub bandwidth_gbs: f64,
    /// Mean read latency, ns (per hop for the chase).
    pub latency_ns: f64,
}

/// Runs all four kernels at 128 B granularity.
pub fn run_kernels(cfg: &SystemConfig, mc: &MeasureConfig) -> Vec<KernelResult> {
    let size = RequestSize::MAX;
    Kernel::ALL
        .iter()
        .map(|&kernel| match kernel {
            Kernel::Scan => {
                let m = run_measurement(
                    cfg,
                    &Workload::Continuous {
                        port: PortWorkload {
                            kind: RequestKind::ReadOnly,
                            size,
                            addressing: Addressing::Linear,
                            mask: AddressMask::NONE,
                            read_fraction: None,
                        },
                        active_ports: 9,
                    },
                    mc,
                );
                KernelResult {
                    kernel,
                    bandwidth_gbs: m.bandwidth_gbs,
                    latency_ns: m.mean_latency_ns(),
                }
            }
            Kernel::HotSpot => {
                // 90 % of ports hammer the hot structure, one port roams.
                let hot = AddressMask::zero_bits(11, 33);
                let m =
                    run_measurement(cfg, &Workload::masked(RequestKind::ReadOnly, size, hot), mc);
                KernelResult {
                    kernel,
                    bandwidth_gbs: m.bandwidth_gbs,
                    latency_ns: m.mean_latency_ns(),
                }
            }
            Kernel::Gather => {
                let m =
                    run_measurement(cfg, &Workload::full_scale(RequestKind::ReadOnly, size), mc);
                KernelResult {
                    kernel,
                    bandwidth_gbs: m.bandwidth_gbs,
                    latency_ns: m.mean_latency_ns(),
                }
            }
            Kernel::PointerChase => {
                let hops = 64;
                let mut sys = System::new(cfg.clone());
                sys.host_mut()
                    .apply_workload(&Workload::pointer_chase(hops, size, 11));
                sys.host_mut().start(Time::ZERO);
                let drained = sys.run_until_idle(TimeDelta::from_ms(10));
                debug_assert!(drained, "chase did not finish");
                let stats = sys.host().stats();
                KernelResult {
                    kernel,
                    bandwidth_gbs: 0.0,
                    latency_ns: stats.read_latency.mean().as_ns_f64(),
                }
            }
        })
        .collect()
}

/// Renders the kernel comparison.
pub fn kernels_table(results: &[KernelResult]) -> Table {
    let mut t = Table::new(
        "Application kernels on HMC (128 B accesses)",
        &["kernel", "bandwidth GB/s", "mean latency"],
    );
    for r in results {
        t.row(vec![
            r.kernel.to_string(),
            if r.bandwidth_gbs > 0.0 {
                f1(r.bandwidth_gbs)
            } else {
                "latency-bound".into()
            },
            ns(r.latency_ns),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> MeasureConfig {
        MeasureConfig {
            warmup: TimeDelta::from_us(30),
            window: TimeDelta::from_us(150),
        }
    }

    fn result(results: &[KernelResult], k: Kernel) -> KernelResult {
        *results.iter().find(|r| r.kernel == k).expect("present")
    }

    #[test]
    fn kernel_hierarchy_matches_the_papers_guidance() {
        let results = run_kernels(&SystemConfig::default(), &tiny());
        let scan = result(&results, Kernel::Scan);
        let hot = result(&results, Kernel::HotSpot);
        let gather = result(&results, Kernel::Gather);
        let chase = result(&results, Kernel::PointerChase);
        // Scans and gathers both reach the link-bound ceiling: closed
        // page means streaming buys nothing over random.
        assert!((scan.bandwidth_gbs / gather.bandwidth_gbs - 1.0).abs() < 0.15);
        // The hot 2 KB structure is parallelism-starved.
        assert!(
            hot.bandwidth_gbs < scan.bandwidth_gbs * 0.95,
            "hot {} vs scan {}",
            hot.bandwidth_gbs,
            scan.bandwidth_gbs
        );
        // A dependent chase pays one unloaded round trip per hop —
        // microseconds of progress per cache line.
        assert!(
            (550.0..900.0).contains(&chase.latency_ns),
            "chase per-hop {}",
            chase.latency_ns
        );
        assert!(chase.latency_ns < gather.latency_ns, "unloaded vs loaded");
        let table = kernels_table(&results);
        assert_eq!(table.len(), 4);
    }
}
