//! Closed-page policy experiments: Figure 13 and the open-page ablation.

use hmc_host::workload::{Addressing, PortWorkload};
use hmc_host::Workload;
use hmc_mem::PagePolicy;
use hmc_types::{RequestKind, RequestSize};
use sim_engine::exec;

use crate::measure::{run_measurement, MeasureConfig, Measurement};
use crate::pattern::AccessPattern;
use crate::report::{f1, Table};
use crate::system::SystemConfig;

/// One bar of Figure 13: pattern scope × addressing × request size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PagePolicyPoint {
    /// 16-vault or 1-vault scope.
    pub pattern: AccessPattern,
    /// Linear or random addressing.
    pub addressing: Addressing,
    /// Request size.
    pub size: RequestSize,
    /// Counted bandwidth, GB/s.
    pub bandwidth_gbs: f64,
}

fn run_point(
    cfg: &SystemConfig,
    pattern: AccessPattern,
    addressing: Addressing,
    size: RequestSize,
    mc: &MeasureConfig,
) -> Measurement {
    let mask = pattern
        .mask(cfg.mem.mapping, &cfg.mem.spec)
        .expect("pattern valid");
    let workload = Workload::Continuous {
        port: PortWorkload {
            kind: RequestKind::ReadOnly,
            size,
            addressing,
            mask,
            read_fraction: None,
        },
        active_ports: 9,
    };
    run_measurement(cfg, &workload, mc)
}

/// Figure 13: read-only bandwidth for linear and random addressing over
/// 16 vaults and 1 vault, across all eight request sizes.
pub fn figure13(cfg: &SystemConfig, mc: &MeasureConfig) -> Vec<PagePolicyPoint> {
    let points: Vec<_> = [AccessPattern::Vaults(16), AccessPattern::Vaults(1)]
        .into_iter()
        .flat_map(|pattern| {
            [Addressing::Linear, Addressing::Random]
                .into_iter()
                .flat_map(move |addressing| {
                    RequestSize::ALL
                        .into_iter()
                        .map(move |size| (pattern, addressing, size))
                })
        })
        .collect();
    exec::sweep(points, |(pattern, addressing, size)| {
        let m = run_point(cfg, pattern, addressing, size, mc);
        PagePolicyPoint {
            pattern,
            addressing,
            size,
            bandwidth_gbs: m.bandwidth_gbs,
        }
    })
}

/// Renders Figure 13.
pub fn figure13_table(points: &[PagePolicyPoint]) -> Table {
    let mut t = Table::new(
        "Figure 13: linear vs random read bandwidth by request size (GB/s)",
        &[
            "scope/mode",
            "128B",
            "112B",
            "96B",
            "80B",
            "64B",
            "48B",
            "32B",
            "16B",
        ],
    );
    for pattern in [AccessPattern::Vaults(16), AccessPattern::Vaults(1)] {
        for addressing in [Addressing::Linear, Addressing::Random] {
            let mut row = vec![format!("{pattern} {addressing}")];
            for bytes in [128u64, 112, 96, 80, 64, 48, 32, 16] {
                let bw = points
                    .iter()
                    .find(|p| {
                        p.pattern == pattern
                            && p.addressing == addressing
                            && p.size.bytes() == bytes
                    })
                    .map_or(0.0, |p| p.bandwidth_gbs);
                row.push(f1(bw));
            }
            t.row(row);
        }
    }
    t
}

/// The open-page ablation: what HMC would gain (or not) by keeping rows
/// open, measured on a linear single-vault stream where row reuse is
/// maximal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PagePolicyAblation {
    /// Bandwidth under the real closed-page policy, GB/s.
    pub closed_gbs: f64,
    /// Bandwidth with the open-page ablation, GB/s.
    pub open_gbs: f64,
    /// Row hits recorded under open page.
    pub open_row_hits: u64,
}

/// Runs the ablation on a linear 1-vault read stream (the scenario where
/// open page would help most).
pub fn page_policy_ablation(cfg: &SystemConfig, mc: &MeasureConfig) -> PagePolicyAblation {
    let size = RequestSize::MAX;
    let closed = run_point(cfg, AccessPattern::Vaults(1), Addressing::Linear, size, mc);
    let mut open_cfg = cfg.clone();
    open_cfg.mem.page_policy = PagePolicy::OpenPage;
    let open = run_point(
        &open_cfg,
        AccessPattern::Vaults(1),
        Addressing::Linear,
        size,
        mc,
    );
    PagePolicyAblation {
        closed_gbs: closed.bandwidth_gbs,
        open_gbs: open.bandwidth_gbs,
        open_row_hits: open.device_delta.row_hits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmc_types::TimeDelta;

    fn tiny() -> MeasureConfig {
        MeasureConfig {
            warmup: TimeDelta::from_us(30),
            window: TimeDelta::from_us(150),
        }
    }

    #[test]
    fn linear_and_random_match_under_closed_page() {
        // Figure 13's headline: the closed-page policy makes linear and
        // random bandwidth essentially equal.
        let cfg = SystemConfig::default();
        for pattern in [AccessPattern::Vaults(16), AccessPattern::Vaults(1)] {
            let lin = run_point(&cfg, pattern, Addressing::Linear, RequestSize::MAX, &tiny());
            let rnd = run_point(&cfg, pattern, Addressing::Random, RequestSize::MAX, &tiny());
            let ratio = rnd.bandwidth_gbs / lin.bandwidth_gbs;
            assert!(
                (0.85..1.15).contains(&ratio),
                "{pattern}: linear {} vs random {}",
                lin.bandwidth_gbs,
                rnd.bandwidth_gbs
            );
        }
    }

    #[test]
    fn bandwidth_grows_with_block_size() {
        // Figure 13: 16 B -> 128 B requests climb the bandwidth stairs.
        let cfg = SystemConfig::default();
        let bw = |bytes: u64| {
            run_point(
                &cfg,
                AccessPattern::Vaults(16),
                Addressing::Random,
                RequestSize::new(bytes).unwrap(),
                &tiny(),
            )
            .bandwidth_gbs
        };
        let b16 = bw(16);
        let b64 = bw(64);
        let b128 = bw(128);
        assert!(b16 < b64, "16B {b16} vs 64B {b64}");
        assert!(b64 < b128, "64B {b64} vs 128B {b128}");
        assert!(b128 / b16 > 1.7, "stairs too flat: {b16} .. {b128}");
    }

    #[test]
    fn open_page_ablation_shows_modest_gain_only() {
        // HMC rows are 256 B, so even a perfectly linear stream reuses a
        // row at most once per 128 B request pair — open page cannot buy
        // much, which is why the design chose closed page.
        let a = page_policy_ablation(&SystemConfig::default(), &tiny());
        assert!(a.open_row_hits > 0, "linear stream should hit rows");
        let gain = a.open_gbs / a.closed_gbs;
        assert!(
            (0.9..1.5).contains(&gain),
            "open/closed gain {gain} (closed {} open {})",
            a.closed_gbs,
            a.open_gbs
        );
    }

    #[test]
    fn table_renders_four_rows() {
        // Use a handful of synthetic points rather than the full sweep.
        let pts = vec![PagePolicyPoint {
            pattern: AccessPattern::Vaults(16),
            addressing: Addressing::Linear,
            size: RequestSize::MAX,
            bandwidth_gbs: 20.0,
        }];
        let t = figure13_table(&pts);
        assert_eq!(t.len(), 4);
        assert_eq!(t.cell(0, 1), "20.0");
        assert_eq!(t.cell(1, 1), "0.0");
    }
}
