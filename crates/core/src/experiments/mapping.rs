//! Address-mapping ablations: what the Address Mapping Mode Register's
//! degrees of freedom are worth.
//!
//! Section II-C of the paper: "the user may fine-tune the address mapping
//! scheme by changing bit positions used for vault and bank mapping. This
//! paper studies the default address mapping" — this module studies the
//! rest: the vault/bank field order and the maximum block size, measured
//! on a sequential streaming workload (the case where the interleave
//! decides everything).

use hmc_host::workload::{Addressing, PortWorkload};
use hmc_host::Workload;
use hmc_types::{
    AddressMapping, AddressMask, InterleaveOrder, MaxBlockSize, RequestKind, RequestSize,
};

use sim_engine::exec;

use crate::measure::{run_measurement, MeasureConfig};
use crate::report::{f1, Table};
use crate::system::SystemConfig;

/// One measured mapping variant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MappingPoint {
    /// Field order used.
    pub order: InterleaveOrder,
    /// Maximum block size used.
    pub max_block: MaxBlockSize,
    /// Sequential-stream counted bandwidth, GB/s.
    pub linear_gbs: f64,
    /// Random-access counted bandwidth, GB/s.
    pub random_gbs: f64,
    /// Bandwidth of random accesses confined to one 2 KB hot buffer,
    /// GB/s — the case where the interleave decides how many vaults (and
    /// therefore how much parallelism) a small data structure can see.
    pub hot_buffer_gbs: f64,
}

fn run_mapping(
    base: &SystemConfig,
    mapping: AddressMapping,
    addressing: Addressing,
    mask: AddressMask,
    mc: &MeasureConfig,
) -> f64 {
    let mut cfg = base.clone();
    cfg.mem.mapping = mapping;
    let m = run_measurement(
        &cfg,
        &Workload::Continuous {
            port: PortWorkload {
                kind: RequestKind::ReadOnly,
                size: RequestSize::MAX,
                addressing,
                mask,
                read_fraction: None,
            },
            active_ports: 9,
        },
        mc,
    );
    m.bandwidth_gbs
}

/// A mask confining all traffic to the 2 KB buffer at address zero.
fn hot_buffer_mask() -> AddressMask {
    AddressMask::zero_bits(11, 33)
}

/// Measures every order × block-size combination.
pub fn mapping_ablation(cfg: &SystemConfig, mc: &MeasureConfig) -> Vec<MappingPoint> {
    // Three workload modes per mapping variant, flattened into one grid so
    // every single measurement parallelizes.
    let modes = [
        (Addressing::Linear, AddressMask::NONE),
        (Addressing::Random, AddressMask::NONE),
        (Addressing::Random, hot_buffer_mask()),
    ];
    let combos: Vec<_> = [
        InterleaveOrder::VaultThenBank,
        InterleaveOrder::BankThenVault,
    ]
    .into_iter()
    .flat_map(|order| MaxBlockSize::ALL.into_iter().map(move |mb| (order, mb)))
    .collect();
    let points: Vec<_> = combos
        .iter()
        .flat_map(|&(order, max_block)| modes.map(move |(a, m)| (order, max_block, a, m)))
        .collect();
    let measured = exec::sweep(points, |(order, max_block, addressing, mask)| {
        let mapping = AddressMapping::with_order(max_block, order);
        run_mapping(cfg, mapping, addressing, mask, mc)
    });
    combos
        .into_iter()
        .zip(measured.chunks(modes.len()))
        .map(|((order, max_block), bw)| MappingPoint {
            order,
            max_block,
            linear_gbs: bw[0],
            random_gbs: bw[1],
            hot_buffer_gbs: bw[2],
        })
        .collect()
}

/// Renders the ablation.
pub fn mapping_table(points: &[MappingPoint]) -> Table {
    let mut t = Table::new(
        "Address-mapping ablation: field order x max block size (128 B reads)",
        &[
            "order",
            "max block",
            "linear GB/s",
            "random GB/s",
            "2KB buffer GB/s",
        ],
    );
    for p in points {
        let order = match p.order {
            InterleaveOrder::VaultThenBank => "vault-first (default)",
            InterleaveOrder::BankThenVault => "bank-first",
        };
        t.row(vec![
            order.to_string(),
            p.max_block.to_string(),
            f1(p.linear_gbs),
            f1(p.random_gbs),
            f1(p.hot_buffer_gbs),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmc_types::TimeDelta;

    fn tiny() -> MeasureConfig {
        MeasureConfig {
            warmup: TimeDelta::from_us(30),
            window: TimeDelta::from_us(150),
        }
    }

    #[test]
    fn bank_first_order_strangles_small_buffers() {
        // Under the default interleave a 2 KB buffer spans 16 vaults (one
        // bank each); bank-first packs it into vault 0 and caps it at the
        // vault's ~10 GB/s. Deeply pipelined full-space streams hide the
        // difference — small hot data structures do not.
        let cfg = SystemConfig::default();
        let default_map = AddressMapping::new(MaxBlockSize::B128);
        let bank_first =
            AddressMapping::with_order(MaxBlockSize::B128, InterleaveOrder::BankThenVault);
        let hot_default = run_mapping(
            &cfg,
            default_map,
            Addressing::Random,
            hot_buffer_mask(),
            &tiny(),
        );
        let hot_bank = run_mapping(
            &cfg,
            bank_first,
            Addressing::Random,
            hot_buffer_mask(),
            &tiny(),
        );
        assert!(
            hot_bank < hot_default * 0.7,
            "bank-first hot buffer {hot_bank} vs default {hot_default}"
        );
        assert!((8.0..12.0).contains(&hot_bank), "vault-capped: {hot_bank}");
        // Full-space random traffic is interleave-agnostic.
        let rnd_default = run_mapping(
            &cfg,
            default_map,
            Addressing::Random,
            AddressMask::NONE,
            &tiny(),
        );
        let rnd_bank = run_mapping(
            &cfg,
            bank_first,
            Addressing::Random,
            AddressMask::NONE,
            &tiny(),
        );
        let ratio = rnd_bank / rnd_default;
        assert!((0.9..1.1).contains(&ratio), "random ratio {ratio}");
    }

    #[test]
    fn table_renders_all_variants() {
        let pts = vec![MappingPoint {
            order: InterleaveOrder::VaultThenBank,
            max_block: MaxBlockSize::B128,
            linear_gbs: 19.0,
            random_gbs: 19.0,
            hot_buffer_gbs: 19.0,
        }];
        let t = mapping_table(&pts);
        assert_eq!(t.len(), 1);
        assert!(t.cell(0, 0).contains("default"));
    }
}
