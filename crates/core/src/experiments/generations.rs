//! Cross-generation projection: the same experiments on HMC 1.0, the
//! characterized HMC 1.1, and the then-unreleased HMC 2.0.
//!
//! Table I of the paper lays out the three geometries; its conclusion
//! says the insights "are generic ... to the class of 3D-memory systems".
//! This module re-runs the headline measurements on each generation —
//! including HMC 2.0's 32 vaults and four-link configuration, hardware
//! the authors could not buy.

use hmc_host::Workload;
use hmc_types::{HmcSpec, HmcVersion, LinkConfig, LinkSpeed, LinkWidth, RequestKind, RequestSize};
use sim_engine::exec;

use crate::measure::{run_measurement, MeasureConfig};
use crate::pattern::AccessPattern;
use crate::report::{f1, ns, Table};
use crate::system::SystemConfig;

/// Headline numbers for one generation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GenerationPoint {
    /// The generation measured.
    pub version: HmcVersion,
    /// Full-cube read bandwidth at 128 B, GB/s.
    pub ro_gbs: f64,
    /// Read-modify-write bandwidth, GB/s.
    pub rw_gbs: f64,
    /// Single-vault ceiling, GB/s.
    pub vault_gbs: f64,
    /// Mean high-load read latency, ns.
    pub latency_ns: f64,
    /// Link peak (Equation 2), GB/s.
    pub peak_gbs: f64,
}

/// The system configuration a generation implies: its geometry, its link
/// arrangement (HMC 2.0 is four-link only), and a host address space
/// matching its capacity.
pub fn config_for(version: HmcVersion) -> SystemConfig {
    let mut cfg = SystemConfig::default();
    cfg.mem.spec = HmcSpec::of(version);
    if version == HmcVersion::Hmc2 {
        cfg.mem.links = LinkConfig::new(4, LinkWidth::Half, LinkSpeed::G15).expect("4 links valid");
        cfg.host.links = cfg.mem.links;
    }
    cfg.host.memory_capacity = cfg.mem.spec.capacity_bytes();
    cfg
}

/// Measures the headline numbers of each generation.
pub fn generation_sweep(mc: &MeasureConfig) -> Vec<GenerationPoint> {
    let versions = [HmcVersion::Gen1, HmcVersion::Gen2, HmcVersion::Hmc2];
    // Three measurements per generation, flattened: (version, 0=ro,
    // 1=rw, 2=single-vault).
    let points: Vec<_> = versions
        .into_iter()
        .flat_map(|version| (0..3).map(move |which| (version, which)))
        .collect();
    let measured = exec::sweep(points, |(version, which)| {
        let cfg = config_for(version);
        let workload = match which {
            0 => Workload::full_scale(RequestKind::ReadOnly, RequestSize::MAX),
            1 => Workload::full_scale(RequestKind::ReadModifyWrite, RequestSize::MAX),
            _ => {
                let vault_mask = AccessPattern::Vaults(1)
                    .mask(cfg.mem.mapping, &cfg.mem.spec)
                    .expect("one vault always valid");
                Workload::masked(RequestKind::ReadOnly, RequestSize::MAX, vault_mask)
            }
        };
        run_measurement(&cfg, &workload, mc)
    });
    versions
        .into_iter()
        .zip(measured.chunks(3))
        .map(|(version, m)| {
            let cfg = config_for(version);
            GenerationPoint {
                version,
                ro_gbs: m[0].bandwidth_gbs,
                rw_gbs: m[1].bandwidth_gbs,
                vault_gbs: m[2].bandwidth_gbs,
                latency_ns: m[0].mean_latency_ns(),
                peak_gbs: cfg.mem.links.peak_bandwidth_bytes_per_sec() as f64 / 1e9,
            }
        })
        .collect()
}

/// Renders the sweep.
pub fn generations_table(points: &[GenerationPoint]) -> Table {
    let mut t = Table::new(
        "Generations: headline numbers on each Table I geometry",
        &[
            "generation",
            "peak GB/s",
            "ro GB/s",
            "rw GB/s",
            "1 vault GB/s",
            "ro latency",
        ],
    );
    for p in points {
        t.row(vec![
            p.version.to_string(),
            f1(p.peak_gbs),
            f1(p.ro_gbs),
            f1(p.rw_gbs),
            f1(p.vault_gbs),
            ns(p.latency_ns),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmc_types::TimeDelta;

    fn tiny() -> MeasureConfig {
        MeasureConfig {
            warmup: TimeDelta::from_us(30),
            window: TimeDelta::from_us(150),
        }
    }

    #[test]
    fn hmc2_outruns_gen2() {
        let pts = generation_sweep(&tiny());
        assert_eq!(pts.len(), 3);
        let gen2 = pts[1];
        let hmc2 = pts[2];
        assert_eq!(hmc2.peak_gbs, 2.0 * gen2.peak_gbs, "4 links vs 2");
        assert!(
            hmc2.ro_gbs > gen2.ro_gbs * 1.3,
            "HMC2 ro {} vs Gen2 {}",
            hmc2.ro_gbs,
            gen2.ro_gbs
        );
        // The vault ceiling is a per-vault property: constant across
        // generations.
        assert!((hmc2.vault_gbs / gen2.vault_gbs - 1.0).abs() < 0.15);
    }

    #[test]
    fn gen1_matches_gen2_on_link_bound_reads() {
        // Gen1 has half the banks but the same links: full-cube reads are
        // link-bound either way.
        let pts = generation_sweep(&tiny());
        let ratio = pts[0].ro_gbs / pts[1].ro_gbs;
        assert!((0.85..1.1).contains(&ratio), "Gen1/Gen2 ro ratio {ratio}");
    }

    #[test]
    fn config_for_scales_capacity() {
        assert_eq!(config_for(HmcVersion::Gen1).host.memory_capacity, 512 << 20);
        assert_eq!(config_for(HmcVersion::Hmc2).mem.links.num_links(), 4);
        let t = generations_table(&[]);
        assert!(t.is_empty());
    }
}
