//! Read-ratio sweep — the link-utilization experiment of the studies the
//! paper relates to.
//!
//! Rosenfeld's HMCSim exploration and Schmidt's OpenHMC measurements (both
//! cited in Section V of the paper) found that HMC link utilization peaks
//! at a read ratio between **53 % and 66 %**: the downstream direction
//! carries read data while the upstream direction carries write data, so
//! a mix saturates both where pure reads or pure writes idle one side.
//! This module sweeps the read fraction of an independent random mix and
//! locates the peak.

use hmc_host::Workload;
use hmc_types::RequestSize;
use sim_engine::exec;

use crate::measure::{run_measurement, MeasureConfig};
use crate::report::{f1, Table};
use crate::system::SystemConfig;

/// One point of the sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReadRatioPoint {
    /// Fraction of issues that are reads.
    pub read_fraction: f64,
    /// Counted bandwidth, GB/s.
    pub bandwidth_gbs: f64,
    /// Upstream (request) bytes per second at the device.
    pub up_gbs: f64,
    /// Downstream (response) bytes per second.
    pub down_gbs: f64,
}

/// Sweeps the read fraction over `steps` evenly spaced points in
/// `[0, 1]`.
pub fn read_ratio_sweep(
    cfg: &SystemConfig,
    size: RequestSize,
    steps: usize,
    mc: &MeasureConfig,
) -> Vec<ReadRatioPoint> {
    exec::sweep((0..=steps).collect(), |i| {
        let f = i as f64 / steps as f64;
        let m = run_measurement(cfg, &Workload::mixed(size, f), mc);
        let secs = m.window.as_secs_f64();
        ReadRatioPoint {
            read_fraction: f,
            bandwidth_gbs: m.bandwidth_gbs,
            up_gbs: m.device_delta.bytes_up as f64 / secs / 1e9,
            down_gbs: m.device_delta.bytes_down as f64 / secs / 1e9,
        }
    })
}

/// The sweep point with the highest counted bandwidth.
pub fn optimal_ratio(points: &[ReadRatioPoint]) -> Option<&ReadRatioPoint> {
    points
        .iter()
        .max_by(|a, b| a.bandwidth_gbs.total_cmp(&b.bandwidth_gbs))
}

/// Renders the sweep.
pub fn read_ratio_table(points: &[ReadRatioPoint]) -> Table {
    let mut t = Table::new(
        "Read-ratio sweep: counted bandwidth vs read fraction (128 B)",
        &["read %", "total GB/s", "up GB/s", "down GB/s"],
    );
    for p in points {
        t.row(vec![
            format!("{:.0}", p.read_fraction * 100.0),
            f1(p.bandwidth_gbs),
            f1(p.up_gbs),
            f1(p.down_gbs),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmc_types::TimeDelta;

    fn tiny() -> MeasureConfig {
        MeasureConfig {
            warmup: TimeDelta::from_us(30),
            window: TimeDelta::from_us(150),
        }
    }

    #[test]
    fn mixed_peak_beats_both_pure_modes() {
        let cfg = SystemConfig::default();
        let pts = read_ratio_sweep(&cfg, RequestSize::MAX, 10, &tiny());
        assert_eq!(pts.len(), 11);
        let peak = optimal_ratio(&pts).expect("non-empty");
        let pure_writes = pts.first().unwrap();
        let pure_reads = pts.last().unwrap();
        assert!(
            peak.bandwidth_gbs > pure_reads.bandwidth_gbs * 1.1,
            "peak {} vs pure reads {}",
            peak.bandwidth_gbs,
            pure_reads.bandwidth_gbs
        );
        assert!(
            peak.bandwidth_gbs > pure_writes.bandwidth_gbs * 1.3,
            "peak {} vs pure writes {}",
            peak.bandwidth_gbs,
            pure_writes.bandwidth_gbs
        );
        // The OpenHMC / HMCSim finding: optimum between ~50 and ~70 %.
        assert!(
            (0.4..=0.8).contains(&peak.read_fraction),
            "optimal read fraction {}",
            peak.read_fraction
        );
    }

    #[test]
    fn directions_trade_off_monotonically() {
        let cfg = SystemConfig::default();
        let pts = read_ratio_sweep(&cfg, RequestSize::MAX, 4, &tiny());
        // More reads -> more downstream traffic, less upstream.
        assert!(pts.last().unwrap().down_gbs > pts.first().unwrap().down_gbs);
        assert!(pts.first().unwrap().up_gbs > pts.last().unwrap().up_gbs);
    }

    #[test]
    fn table_renders_all_points() {
        let pts = vec![ReadRatioPoint {
            read_fraction: 0.5,
            bandwidth_gbs: 30.0,
            up_gbs: 15.0,
            down_gbs: 15.0,
        }];
        let t = read_ratio_table(&pts);
        assert_eq!(t.len(), 1);
        assert_eq!(t.cell(0, 0), "50");
    }
}
