//! Multi-cube chain characterization: what the paper's single-cube
//! methodology predicts once cubes are daisy-chained.
//!
//! Three questions, three sweeps:
//!
//! * **Aggregate bandwidth vs chain length** — each cube brings its own
//!   host links and DRAM, so cube-interleaved read traffic should scale
//!   nearly linearly until pass-through traffic saturates the inter-cube
//!   hops. The shape check asserts ≥ 1.8× at two cubes under the
//!   cube-interleaved 16-vault `ro` workload.
//! * **Remote-access latency vs hop count** — an unloaded pointer chase
//!   pinned at increasing distances must show a *constant* per-hop adder
//!   equal to the modeled pass-through cost (one request plus one
//!   response serialization per hop).
//! * **Near/far asymmetry** — the same workload served by the local cube
//!   vs the chain's far end: bandwidth holds (tandem links pipeline) but
//!   latency does not, the asymmetry NUMA-aware placement would exploit.

use hmc_host::Workload;
use hmc_types::{Address, CubeId, RequestKind, RequestSize, Time, TimeDelta};

use crate::builder::SystemBuilder;
use crate::measure::MeasureConfig;
use crate::report::{f1, f2, JsonReport, Table};
use crate::system::SystemConfig;
use crate::topology::{ChainSystem, Topology};

/// One chain length of the aggregate-bandwidth sweep.
#[derive(Debug, Clone, Copy)]
pub struct ChainPoint {
    /// Number of cubes in the chain.
    pub cubes: u8,
    /// Aggregate counted read bandwidth across all hosts, GB/s.
    pub bandwidth_gbs: f64,
    /// Aggregate completed requests, millions per second.
    pub mrps: f64,
    /// Mean read latency over the window, ns.
    pub mean_latency_ns: f64,
    /// Scaling relative to the single-cube point.
    pub speedup: f64,
}

/// One hop distance of the latency ladder.
#[derive(Debug, Clone, Copy)]
pub struct HopPoint {
    /// Hops between the issuing host and the serving cube.
    pub hops: u32,
    /// Unloaded mean read latency at this distance, ns.
    pub mean_latency_ns: f64,
    /// Measured latency minus the zero-hop point, ns.
    pub measured_adder_ns: f64,
    /// `hops ×` the modeled per-hop pass-through cost, ns.
    pub modeled_adder_ns: f64,
}

/// The near/far bandwidth-asymmetry measurement.
#[derive(Debug, Clone, Copy)]
pub struct NearFar {
    /// Bandwidth with host 0 pinned to its own cube, GB/s.
    pub near_bandwidth_gbs: f64,
    /// Bandwidth with host 0 pinned to the far end of the chain, GB/s.
    pub far_bandwidth_gbs: f64,
    /// Unloaded mean latency to the local cube, ns. Loaded latency is
    /// useless for the asymmetry: a saturated tag pool pins outstanding
    /// requests, so Little's law forces equal mean latency whenever the
    /// bottleneck rate is equal — the extra hops hide in in-flight
    /// buffering. The unloaded chase exposes them.
    pub near_latency_ns: f64,
    /// Unloaded mean latency to the far cube, ns.
    pub far_latency_ns: f64,
    /// Hops to the far cube.
    pub far_hops: u32,
}

/// The full chain characterization — what `repro chain` renders and
/// exports.
#[derive(Debug, Clone)]
pub struct ChainReport {
    /// The topology the sweep scaled up to.
    pub topology: Topology,
    /// Aggregate bandwidth at each chain length `1..=cubes`.
    pub scaling: Vec<ChainPoint>,
    /// The latency ladder over the longest chain.
    pub ladder: Vec<HopPoint>,
    /// Near/far asymmetry over the longest chain.
    pub near_far: NearFar,
}

/// Measures aggregate read bandwidth of an `n`-cube chain with every
/// sharded host running the cube-interleaved 16-vault `ro` workload.
fn measure_chain(
    cfg: &SystemConfig,
    topo: Topology,
    mc: &MeasureConfig,
    shards: usize,
) -> (f64, f64, f64) {
    let mut sys = SystemBuilder::new(cfg.clone())
        .parallel_shards(shards)
        .topology(topo)
        .build_chain();
    sys.apply_workload(&Workload::full_scale(
        RequestKind::ReadOnly,
        RequestSize::MAX,
    ));
    sys.start(Time::ZERO);
    sys.step_until(Time::ZERO + mc.warmup);
    sys.reset_stats();
    sys.step_until(Time::ZERO + mc.warmup + mc.window);
    let s = sys.host_stats();
    (
        s.bandwidth_gbs(mc.window),
        s.mrps(mc.window),
        s.read_latency.mean().as_ns_f64(),
    )
}

/// Unloaded pointer-chase mean latency from host 0 to cube `target` of a
/// chain, refresh disabled so the round trip is exact.
fn chase_latency(cfg: &SystemConfig, topo: Topology, target: u8, shards: usize) -> f64 {
    let mut c = cfg.clone();
    c.mem.refresh.enabled = false;
    let mut sys = ChainSystem::new(c, topo);
    sys.set_parallel_shards(shards);
    let size = RequestSize::new(128).expect("128 B is a valid request size");
    let addrs: Vec<Address> = (0..64u64).map(|i| Address::new(i * 4096)).collect();
    sys.host_mut(0)
        .apply_workload(&Workload::DependentChain { addrs, size });
    sys.host_mut(0).set_cube_pin(Some(CubeId::new(target)));
    sys.start(Time::ZERO);
    assert!(
        sys.run_until_idle(TimeDelta::from_ms(10)),
        "pointer chase to cube {target} did not drain"
    );
    sys.host(0).stats().read_latency.mean().as_ns_f64()
}

/// Loaded single-host measurement pinned at `target`, for the near/far
/// asymmetry.
fn pinned_bandwidth(
    cfg: &SystemConfig,
    topo: Topology,
    target: u8,
    mc: &MeasureConfig,
    shards: usize,
) -> (f64, f64) {
    let mut sys = ChainSystem::new(cfg.clone(), topo);
    sys.set_parallel_shards(shards);
    sys.host_mut(0).apply_workload(&Workload::full_scale(
        RequestKind::ReadOnly,
        RequestSize::MAX,
    ));
    sys.host_mut(0).set_cube_pin(Some(CubeId::new(target)));
    sys.host_mut(0).start(Time::ZERO);
    sys.step_until(Time::ZERO + mc.warmup);
    sys.reset_stats();
    sys.step_until(Time::ZERO + mc.warmup + mc.window);
    let s = sys.host(0).stats();
    (
        s.bandwidth_gbs(mc.window),
        s.read_latency.mean().as_ns_f64(),
    )
}

/// Runs the full chain characterization up to `topo.cubes()` cubes.
///
/// # Panics
///
/// Panics if any run fails to drain, or if the shape checks fail: the
/// two-cube chain must deliver ≥ 1.8× one cube's aggregate read
/// bandwidth, and every ladder rung must sit exactly on the modeled
/// per-hop adder.
pub fn characterize(cfg: &SystemConfig, topo: Topology, mc: &MeasureConfig) -> ChainReport {
    characterize_sharded(cfg, topo, mc, 1)
}

/// [`characterize`] with every multi-cube run pumped on `shards` epoch
/// worker threads. Results are bit-identical to the serial sweep at any
/// worker count — the parallel scheduler is purely a wall-clock knob —
/// so this exists for throughput, not for different answers.
pub fn characterize_sharded(
    cfg: &SystemConfig,
    topo: Topology,
    mc: &MeasureConfig,
    shards: usize,
) -> ChainReport {
    let max = topo.cubes();
    assert!(max >= 2, "chain characterization needs at least two cubes");

    // Aggregate-bandwidth scaling, N = 1..=max.
    let mut scaling = Vec::new();
    let mut base = 0.0;
    for n in 1..=max {
        let sub = match topo.arrangement() {
            crate::topology::Arrangement::Chain => Topology::chain(n),
            crate::topology::Arrangement::Star => {
                if n == 1 {
                    Topology::single()
                } else {
                    Topology::star(n)
                }
            }
        }
        .with_interleave(topo.interleave());
        let (bw, mrps, lat) = measure_chain(cfg, sub, mc, shards);
        if n == 1 {
            base = bw;
        }
        scaling.push(ChainPoint {
            cubes: n,
            bandwidth_gbs: bw,
            mrps,
            mean_latency_ns: lat,
            speedup: bw / base,
        });
    }

    // Latency ladder: pinned unloaded chases at every reachable distance.
    let near = chase_latency(cfg, topo, 0, shards);
    let probe = ChainSystem::new(cfg.clone(), topo);
    let modeled_ns = probe
        .modeled_hop_adder(RequestSize::new(128).expect("valid size"))
        .as_ns_f64();
    let mut ladder = Vec::new();
    for target in 0..max {
        let hops = topo.hops(0, target);
        let lat = if target == 0 {
            near
        } else {
            chase_latency(cfg, topo, target, shards)
        };
        ladder.push(HopPoint {
            hops,
            mean_latency_ns: lat,
            measured_adder_ns: lat - near,
            modeled_adder_ns: hops as f64 * modeled_ns,
        });
    }

    // Near/far asymmetry at the chain's extremes: loaded runs supply the
    // bandwidth halves, the unloaded ladder endpoints the latency halves
    // (see the `NearFar` field docs for why loaded latency cannot).
    let (near_bw, _) = pinned_bandwidth(cfg, topo, 0, mc, shards);
    let (far_bw, _) = pinned_bandwidth(cfg, topo, max - 1, mc, shards);
    let near_far = NearFar {
        near_bandwidth_gbs: near_bw,
        far_bandwidth_gbs: far_bw,
        near_latency_ns: ladder[0].mean_latency_ns,
        far_latency_ns: ladder[max as usize - 1].mean_latency_ns,
        far_hops: topo.hops(0, max - 1),
    };

    let report = ChainReport {
        topology: topo,
        scaling,
        ladder,
        near_far,
    };
    report.shape_check();
    report
}

impl ChainReport {
    /// The acceptance assertions of the chain model, run on every
    /// characterization (and therefore in CI's chain smoke job):
    ///
    /// * two cubes ≥ 1.8× one cube's aggregate read bandwidth;
    /// * every ladder rung within 1 ns of `hops × modeled adder` (f64
    ///   mean division is the only slack);
    /// * far latency strictly above near, far bandwidth not above near
    ///   by more than noise.
    ///
    /// # Panics
    ///
    /// Panics when a check fails.
    pub fn shape_check(&self) {
        let two = self
            .scaling
            .iter()
            .find(|p| p.cubes == 2)
            .expect("sweep includes the two-cube point");
        assert!(
            two.speedup >= 1.8,
            "two-cube aggregate bandwidth scaled only {:.2}x (need >= 1.8x)",
            two.speedup
        );
        for p in &self.ladder {
            assert!(
                (p.measured_adder_ns - p.modeled_adder_ns).abs() < 1.0,
                "hop {} adder {:.1} ns != modeled {:.1} ns",
                p.hops,
                p.measured_adder_ns,
                p.modeled_adder_ns
            );
        }
        let nf = &self.near_far;
        assert!(
            nf.far_latency_ns > nf.near_latency_ns,
            "far latency {:.1} ns must exceed near {:.1} ns",
            nf.far_latency_ns,
            nf.near_latency_ns
        );
        assert!(
            nf.far_bandwidth_gbs <= nf.near_bandwidth_gbs * 1.05,
            "far bandwidth {:.1} exceeds near {:.1} beyond noise",
            nf.far_bandwidth_gbs,
            nf.near_bandwidth_gbs
        );
    }

    /// The scaling sweep as a text table.
    pub fn scaling_table(&self) -> Table {
        let mut t = Table::new(
            format!(
                "Aggregate read bandwidth vs chain length ({})",
                self.topology
            ),
            &["cubes", "GB/s", "MR/s", "mean ns", "speedup"],
        );
        for p in &self.scaling {
            t.row(vec![
                p.cubes.to_string(),
                f1(p.bandwidth_gbs),
                f1(p.mrps),
                f1(p.mean_latency_ns),
                f2(p.speedup),
            ]);
        }
        t
    }

    /// The latency ladder as a text table.
    pub fn ladder_table(&self) -> Table {
        let mut t = Table::new(
            "Remote-access latency vs hop count (unloaded pointer chase)",
            &["hops", "mean ns", "adder ns", "modeled ns"],
        );
        for p in &self.ladder {
            t.row(vec![
                p.hops.to_string(),
                f1(p.mean_latency_ns),
                f1(p.measured_adder_ns),
                f1(p.modeled_adder_ns),
            ]);
        }
        t
    }

    /// The near/far asymmetry as a text table.
    pub fn near_far_table(&self) -> Table {
        let mut t = Table::new(
            "Near/far asymmetry (host 0 pinned)",
            &["target", "hops", "GB/s", "mean ns"],
        );
        let nf = &self.near_far;
        t.row(vec![
            "near (local cube)".into(),
            "0".into(),
            f1(nf.near_bandwidth_gbs),
            f1(nf.near_latency_ns),
        ]);
        t.row(vec![
            "far (chain end)".into(),
            nf.far_hops.to_string(),
            f1(nf.far_bandwidth_gbs),
            f1(nf.far_latency_ns),
        ]);
        t
    }
}

impl JsonReport for ChainReport {
    fn kind(&self) -> &'static str {
        "chain"
    }

    fn json(&self) -> String {
        let mut s = format!(
            "{{\"arrangement\":\"{}\",\"cubes\":{},\"interleave\":\"{}\",\"scaling\":[",
            self.topology.arrangement(),
            self.topology.cubes(),
            self.topology.interleave(),
        );
        for (i, p) in self.scaling.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"cubes\":{},\"bandwidth_gbs\":{},\"mrps\":{},\
                 \"mean_latency_ns\":{},\"speedup\":{}}}",
                p.cubes, p.bandwidth_gbs, p.mrps, p.mean_latency_ns, p.speedup
            ));
        }
        s.push_str("],\"ladder\":[");
        for (i, p) in self.ladder.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"hops\":{},\"mean_latency_ns\":{},\"measured_adder_ns\":{},\
                 \"modeled_adder_ns\":{}}}",
                p.hops, p.mean_latency_ns, p.measured_adder_ns, p.modeled_adder_ns
            ));
        }
        let nf = &self.near_far;
        s.push_str(&format!(
            "],\"near_far\":{{\"near_bandwidth_gbs\":{},\"far_bandwidth_gbs\":{},\
             \"near_latency_ns\":{},\"far_latency_ns\":{},\"far_hops\":{}}}}}",
            nf.near_bandwidth_gbs,
            nf.far_bandwidth_gbs,
            nf.near_latency_ns,
            nf.far_latency_ns,
            nf.far_hops
        ));
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_cube_chain_characterization_passes_shape_checks() {
        // characterize() runs shape_check() internally: >= 1.8x scaling at
        // two cubes, exact ladder adders, far latency above near.
        let r = characterize(
            &SystemConfig::default(),
            Topology::chain(2),
            &MeasureConfig::quick(),
        );
        assert_eq!(r.scaling.len(), 2);
        assert_eq!(r.ladder.len(), 2);
        assert!(r.scaling[0].bandwidth_gbs > 10.0, "one cube underperforms");
        let json = r.json();
        assert!(json.contains("\"cubes\":2"));
        assert!(json.contains("\"ladder\""));
        assert_eq!(r.kind(), "chain");
        assert!(!r.scaling_table().is_empty());
        assert!(!r.ladder_table().is_empty());
        assert_eq!(r.near_far_table().len(), 2);
    }

    #[test]
    fn ladder_adder_is_constant_per_hop_over_three_cubes() {
        let cfg = SystemConfig::default();
        let topo = Topology::chain(3);
        let l0 = chase_latency(&cfg, topo, 0, 1);
        let l1 = chase_latency(&cfg, topo, 1, 1);
        let l2 = chase_latency(&cfg, topo, 2, 1);
        let one_hop = l1 - l0;
        let two_hop = l2 - l0;
        assert!(
            (two_hop - 2.0 * one_hop).abs() < 1.0,
            "per-hop adder not constant: 1 hop {one_hop:.1} ns, 2 hops {two_hop:.1} ns"
        );
    }
}
