//! Thermal and power experiments: Table III and Figures 9–12.
//!
//! The paper's 200 s thermal runs settle far faster than the per-request
//! timescale, so each operating point is computed in two stages:
//!
//! 1. a discrete-event measurement window yields the workload's activity
//!    rates (bandwidth, DRAM and link traffic);
//! 2. the thermal RC network and power model are solved to their coupled
//!    fixed point (power depends on temperature via leakage; temperature
//!    depends on power), including the refresh-rate doubling in the hot
//!    regime — which feeds back into stage 1 by re-measuring with the
//!    doubled refresh rate.
//!
//! This is physically exactly the separation of timescales of the real
//! experiment: GUPS reaches its bandwidth steady state in microseconds,
//! the heatsink in tens of seconds.

use hmc_power::PowerModel;
use hmc_thermal::{CoolingConfig, CoolingPowerMap, FailurePolicy, ThermalModel, ThermalParams};
use hmc_types::{RequestKind, RequestSize, TimeDelta};
use sim_engine::{exec, LinearFit, TimeSeries};

use crate::measure::{run_measurement_with, MeasureConfig, Measurement};
use crate::pattern::AccessPattern;
use crate::report::{f1, f2, Table};
use crate::system::SystemConfig;

/// One settled thermal operating point (a bar of Figures 9/10).
#[derive(Debug, Clone)]
pub struct ThermalOutcome {
    /// Access pattern driven.
    pub pattern: AccessPattern,
    /// Request kind.
    pub kind: RequestKind,
    /// Cooling configuration name.
    pub cooling: &'static str,
    /// Counted bandwidth at the settled point, GB/s.
    pub bandwidth_gbs: f64,
    /// Settled heatsink-surface temperature (what the camera reads).
    pub surface_c: f64,
    /// Settled junction temperature.
    pub junction_c: f64,
    /// Wall-analyzer system power, W.
    pub system_power_w: f64,
    /// Power dissipated under the shared heatsink, W.
    pub local_power_w: f64,
    /// True if the hot regime doubled the refresh rate.
    pub refresh_boosted: bool,
    /// Surface temperature at shutdown, if the run thermally failed.
    pub failure: Option<f64>,
}

/// Solves one workload × cooling operating point to its thermal fixed
/// point.
pub fn thermal_operating_point(
    cfg: &SystemConfig,
    kind: RequestKind,
    pattern: AccessPattern,
    cooling: &CoolingConfig,
    mc: &MeasureConfig,
    power: &PowerModel,
    policy: &FailurePolicy,
) -> ThermalOutcome {
    let mask = pattern
        .mask(cfg.mem.mapping, &cfg.mem.spec)
        .expect("pattern valid for geometry");
    let workload = hmc_host::Workload::masked(kind, RequestSize::MAX, mask);
    let params = ThermalParams::default();
    let resistance = cooling.thermal_resistance();

    // Coupled fixed point: T = amb + R * P_local(T).
    let solve = |m: &Measurement| -> (f64, f64, f64) {
        let rates = m.activity_rates();
        let mut surface = cooling.idle_temp_c;
        let mut local = 0.0;
        for _ in 0..32 {
            let junction = surface + params.surface_offset_c;
            local = power.local_power_w(&rates, junction);
            let next = params.ambient_c + resistance * local;
            if (next - surface).abs() < 1e-6 {
                surface = next;
                break;
            }
            surface = next;
        }
        let junction = surface + params.surface_offset_c;
        (surface, junction, local)
    };

    let measured = run_measurement_with(cfg, &workload, mc, |_| {});
    let (surface, junction, local) = solve(&measured);

    // Hot regime: refresh doubles, which costs a little bandwidth and
    // power; re-measure and re-solve once.
    let (m, surface, junction, local, boosted) = if surface >= policy.refresh_boost_c {
        let m2 = run_measurement_with(cfg, &workload, mc, |sys| {
            sys.device_mut().set_refresh_multiplier(2);
        });
        let (s2, j2, l2) = solve(&m2);
        (m2, s2, j2, l2, true)
    } else {
        (measured, surface, junction, local, false)
    };

    let failure = policy.check(surface, kind.writes()).err().map(|_| surface);
    let rates = m.activity_rates();
    ThermalOutcome {
        pattern,
        kind,
        cooling: cooling.name,
        bandwidth_gbs: m.bandwidth_gbs,
        surface_c: surface,
        junction_c: junction,
        system_power_w: power.system_power_w(&rates, junction),
        local_power_w: local,
        refresh_boosted: boosted,
        failure,
    }
}

/// Figures 9 and 10: every pattern × cooling configuration for one
/// request kind. Failed configurations are included (marked by
/// [`ThermalOutcome::failure`]); the paper simply omits them from its
/// plots.
pub fn figure9_10(
    cfg: &SystemConfig,
    kind: RequestKind,
    mc: &MeasureConfig,
) -> Vec<ThermalOutcome> {
    let power = PowerModel::default();
    let policy = FailurePolicy::default();
    let points: Vec<_> = CoolingConfig::all()
        .into_iter()
        .flat_map(|cooling| {
            AccessPattern::paper_axis()
                .into_iter()
                .map(move |pattern| (cooling.clone(), pattern))
        })
        .collect();
    exec::sweep(points, |(cooling, pattern)| {
        thermal_operating_point(cfg, kind, pattern, &cooling, mc, &power, &policy)
    })
}

/// Renders the temperature table (Figure 9) for one kind.
pub fn figure9_table(kind: RequestKind, outcomes: &[ThermalOutcome]) -> Table {
    let mut t = Table::new(
        format!("Figure 9 ({kind}): surface temperature by pattern and cooling"),
        &["pattern", "BW GB/s", "Cfg1 C", "Cfg2 C", "Cfg3 C", "Cfg4 C"],
    );
    for pattern in AccessPattern::paper_axis() {
        let cell = |cfg_name: &str| {
            outcomes
                .iter()
                .find(|o| o.pattern == pattern && o.cooling == cfg_name && o.kind == kind)
                .map_or("-".to_string(), |o| match o.failure {
                    Some(temp) => format!("FAIL@{temp:.0}"),
                    None => f1(o.surface_c),
                })
        };
        let bw = outcomes
            .iter()
            .find(|o| o.pattern == pattern && o.kind == kind)
            .map_or(0.0, |o| o.bandwidth_gbs);
        t.row(vec![
            pattern.to_string(),
            f1(bw),
            cell("Cfg1"),
            cell("Cfg2"),
            cell("Cfg3"),
            cell("Cfg4"),
        ]);
    }
    t
}

/// Renders the system-power table (Figure 10) for one kind.
pub fn figure10_table(kind: RequestKind, outcomes: &[ThermalOutcome]) -> Table {
    let mut t = Table::new(
        format!("Figure 10 ({kind}): average system power by pattern and cooling"),
        &["pattern", "BW GB/s", "Cfg1 W", "Cfg2 W", "Cfg3 W", "Cfg4 W"],
    );
    for pattern in AccessPattern::paper_axis() {
        let cell = |cfg_name: &str| {
            outcomes
                .iter()
                .find(|o| o.pattern == pattern && o.cooling == cfg_name && o.kind == kind)
                .map_or("-".to_string(), |o| match o.failure {
                    Some(_) => "FAIL".to_string(),
                    None => f1(o.system_power_w),
                })
        };
        let bw = outcomes
            .iter()
            .find(|o| o.pattern == pattern && o.kind == kind)
            .map_or(0.0, |o| o.bandwidth_gbs);
        t.row(vec![
            pattern.to_string(),
            f1(bw),
            cell("Cfg1"),
            cell("Cfg2"),
            cell("Cfg3"),
            cell("Cfg4"),
        ]);
    }
    t
}

/// Figure 11: linear fits of temperature and power against bandwidth in
/// Cfg2 (the hottest configuration with no failures for any kind).
#[derive(Debug, Clone)]
pub struct Figure11 {
    /// Per-kind `(slope °C per GB/s, intercept)` temperature fits.
    pub temp_fits: Vec<(RequestKind, LinearFit)>,
    /// Per-kind system-power fits.
    pub power_fits: Vec<(RequestKind, LinearFit)>,
}

/// Computes Figure 11 from Cfg2 outcomes of all three kinds.
pub fn figure11(outcomes: &[ThermalOutcome]) -> Figure11 {
    let mut temp_fits = Vec::new();
    let mut power_fits = Vec::new();
    for kind in RequestKind::ALL {
        let pts_t: Vec<(f64, f64)> = outcomes
            .iter()
            .filter(|o| o.kind == kind && o.cooling == "Cfg2" && o.failure.is_none())
            .map(|o| (o.bandwidth_gbs, o.surface_c))
            .collect();
        let pts_p: Vec<(f64, f64)> = outcomes
            .iter()
            .filter(|o| o.kind == kind && o.cooling == "Cfg2" && o.failure.is_none())
            .map(|o| (o.bandwidth_gbs, o.system_power_w))
            .collect();
        if let Some(f) = LinearFit::fit(&pts_t) {
            temp_fits.push((kind, f));
        }
        if let Some(f) = LinearFit::fit(&pts_p) {
            power_fits.push((kind, f));
        }
    }
    Figure11 {
        temp_fits,
        power_fits,
    }
}

/// Renders Figure 11 as a table of fit parameters.
pub fn figure11_table(f: &Figure11) -> Table {
    let mut t = Table::new(
        "Figure 11: temperature & power vs bandwidth, linear fits (Cfg2)",
        &[
            "kind",
            "dT/dBW C/(GB/s)",
            "T @5GB/s",
            "T @20GB/s",
            "dP/dBW W/(GB/s)",
            "P rise 5->20 W",
        ],
    );
    for kind in RequestKind::ALL {
        let tf = f.temp_fits.iter().find(|(k, _)| *k == kind).map(|(_, f)| f);
        let pf = f
            .power_fits
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, f)| f);
        t.row(vec![
            kind.to_string(),
            tf.map_or("-".into(), |f| f2(f.slope)),
            tf.map_or("-".into(), |f| f1(f.predict(5.0))),
            tf.map_or("-".into(), |f| f1(f.predict(20.0))),
            pf.map_or("-".into(), |f| f2(f.slope)),
            pf.map_or("-".into(), |f| f1(f.predict(20.0) - f.predict(5.0))),
        ]);
    }
    t
}

/// One line of Figure 12: the cooling power needed to hold a target
/// temperature as bandwidth grows.
#[derive(Debug, Clone)]
pub struct CoolingPowerLine {
    /// Request kind.
    pub kind: RequestKind,
    /// Surface temperature being held.
    pub target_c: f64,
    /// `(bandwidth GB/s, cooling W)` samples.
    pub points: Vec<(f64, f64)>,
}

/// Figure 12: for each kind, cooling power vs bandwidth at several held
/// temperatures, derived from the measured local-power-vs-bandwidth fit
/// and the cooling-power map.
pub fn figure12(outcomes: &[ThermalOutcome], targets_c: &[f64]) -> Vec<CoolingPowerLine> {
    let map = CoolingPowerMap::fit(&CoolingConfig::all());
    let params = ThermalParams::default();
    let mut lines = Vec::new();
    for kind in RequestKind::ALL {
        // Local power vs bandwidth from every non-failed outcome of this
        // kind (cooling configuration only shifts leakage slightly).
        let pts: Vec<(f64, f64)> = outcomes
            .iter()
            .filter(|o| o.kind == kind && o.failure.is_none())
            .map(|o| (o.bandwidth_gbs, o.local_power_w))
            .collect();
        let Some(fit) = LinearFit::fit(&pts) else {
            continue;
        };
        let max_bw = pts.iter().map(|p| p.0).fold(0.0, f64::max);
        for &target in targets_c {
            let mut line = Vec::new();
            let steps = 10;
            for i in 0..=steps {
                let bw = max_bw * i as f64 / steps as f64;
                let local = fit.predict(bw);
                if let Some(w) = map.required_cooling_w(target, local, params.ambient_c) {
                    line.push((bw, w));
                }
            }
            lines.push(CoolingPowerLine {
                kind,
                target_c: target,
                points: line,
            });
        }
    }
    lines
}

/// Table III: the cooling configurations with modelled idle temperatures.
pub fn table3() -> Table {
    let mut t = Table::new(
        "Table III: cooling configurations",
        &[
            "name",
            "fan V",
            "fan A",
            "distance cm",
            "idle C (model)",
            "cooling W",
        ],
    );
    for c in CoolingConfig::all() {
        let model = ThermalModel::new(c.clone());
        t.row(vec![
            c.name.to_string(),
            f1(c.fan_voltage_v),
            f2(c.fan_current_a),
            f1(c.fan_distance_cm),
            f1(model.surface_c()),
            f2(c.cooling_power_w),
        ]);
    }
    t
}

/// Simulates the 200 s transient of one settled operating point (for the
/// trace the paper's thermal camera records), given its local power.
pub fn settle_trace(cooling: &CoolingConfig, local_power_w: f64, seconds: u64) -> TimeSeries {
    let mut model = ThermalModel::new(cooling.clone());
    let mut series = TimeSeries::new(format!("{} surface C", cooling.name));
    for s in 0..=seconds {
        let t = hmc_types::Time::from_ps(s * 1_000_000_000_000);
        series.push(t, model.surface_c());
        model.step(local_power_w, TimeDelta::from_secs(1));
    }
    series
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> MeasureConfig {
        MeasureConfig {
            warmup: TimeDelta::from_us(30),
            window: TimeDelta::from_us(120),
        }
    }

    fn point(kind: RequestKind, pattern: AccessPattern, cooling: CoolingConfig) -> ThermalOutcome {
        thermal_operating_point(
            &SystemConfig::default(),
            kind,
            pattern,
            &cooling,
            &tiny(),
            &PowerModel::default(),
            &FailurePolicy::default(),
        )
    }

    #[test]
    fn read_only_never_fails_even_at_cfg4() {
        let o = point(
            RequestKind::ReadOnly,
            AccessPattern::Vaults(16),
            CoolingConfig::cfg4(),
        );
        assert!(o.failure.is_none(), "ro failed at {:.1} C", o.surface_c);
        // Hot: in the 70-85 C band the paper's Cfg4 curve occupies.
        assert!(
            (70.0..85.0).contains(&o.surface_c),
            "ro Cfg4 surface {:.1}",
            o.surface_c
        );
    }

    #[test]
    fn write_workloads_fail_under_weak_cooling() {
        let wo = point(
            RequestKind::WriteOnly,
            AccessPattern::Vaults(16),
            CoolingConfig::cfg4(),
        );
        assert!(wo.failure.is_some(), "wo Cfg4 at {:.1} C", wo.surface_c);
        let rw = point(
            RequestKind::ReadModifyWrite,
            AccessPattern::Vaults(16),
            CoolingConfig::cfg4(),
        );
        assert!(rw.failure.is_some(), "rw Cfg4 at {:.1} C", rw.surface_c);
    }

    #[test]
    fn write_workloads_survive_strong_cooling() {
        for kind in [RequestKind::WriteOnly, RequestKind::ReadModifyWrite] {
            let o = point(kind, AccessPattern::Vaults(16), CoolingConfig::cfg1());
            assert!(o.failure.is_none(), "{kind} failed under Cfg1");
        }
    }

    #[test]
    fn narrower_patterns_run_cooler() {
        let wide = point(
            RequestKind::ReadOnly,
            AccessPattern::Vaults(16),
            CoolingConfig::cfg2(),
        );
        let narrow = point(
            RequestKind::ReadOnly,
            AccessPattern::Banks(1),
            CoolingConfig::cfg2(),
        );
        assert!(
            wide.surface_c > narrow.surface_c + 1.0,
            "wide {:.1} vs narrow {:.1}",
            wide.surface_c,
            narrow.surface_c
        );
        assert!(wide.bandwidth_gbs > narrow.bandwidth_gbs * 5.0);
    }

    #[test]
    fn cfg2_temperature_slope_matches_paper() {
        // Figure 11a: 5 -> 20 GB/s raises temperature ~3-4 C in Cfg2.
        // Build the fit from a few ro patterns spanning the range.
        let outcomes: Vec<ThermalOutcome> = [
            AccessPattern::Vaults(16),
            AccessPattern::Vaults(1),
            AccessPattern::Banks(4),
            AccessPattern::Banks(1),
        ]
        .into_iter()
        .map(|p| point(RequestKind::ReadOnly, p, CoolingConfig::cfg2()))
        .collect();
        let f11 = figure11(&outcomes);
        let (_, fit) = f11
            .temp_fits
            .iter()
            .find(|(k, _)| *k == RequestKind::ReadOnly)
            .expect("ro fit");
        let rise = fit.predict(20.0) - fit.predict(5.0);
        assert!((1.5..6.0).contains(&rise), "temperature rise {rise:.2} C");
        let (_, pfit) = f11
            .power_fits
            .iter()
            .find(|(k, _)| *k == RequestKind::ReadOnly)
            .expect("ro power fit");
        let prise = pfit.predict(20.0) - pfit.predict(5.0);
        // Figure 11b: ~2 W.
        assert!((1.0..3.5).contains(&prise), "power rise {prise:.2} W");
    }

    #[test]
    fn figure12_lines_monotone() {
        let outcomes: Vec<ThermalOutcome> = [
            AccessPattern::Vaults(16),
            AccessPattern::Vaults(1),
            AccessPattern::Banks(1),
        ]
        .into_iter()
        .map(|p| point(RequestKind::ReadOnly, p, CoolingConfig::cfg2()))
        .collect();
        let lines = figure12(&outcomes, &[55.0]);
        let line = lines
            .iter()
            .find(|l| l.kind == RequestKind::ReadOnly)
            .expect("ro line");
        assert!(line.points.len() > 5);
        for pair in line.points.windows(2) {
            assert!(pair[1].1 >= pair[0].1, "cooling power must not fall");
        }
    }

    #[test]
    fn table3_renders_idle_temps() {
        let t = table3();
        assert_eq!(t.len(), 4);
        assert_eq!(t.cell(0, 4), "43.1");
        assert_eq!(t.cell(3, 4), "71.6");
    }

    #[test]
    fn settle_trace_is_monotone_rise() {
        let trace = settle_trace(&CoolingConfig::cfg2(), 24.0, 200);
        assert_eq!(trace.len(), 201);
        let first = trace.points()[0].1;
        let last = trace.last().unwrap().1;
        assert!(last > first + 3.0);
        // Settled by 200 s.
        let at150 = trace
            .sample_at(hmc_types::Time::from_ps(150_000_000_000_000))
            .unwrap();
        assert!((last - at150).abs() < 0.2);
    }
}
