//! Bandwidth experiments: Figures 6, 7, and 8.

use hmc_host::Workload;
use hmc_types::{AddressMask, RequestKind, RequestSize};
use sim_engine::exec;

use crate::measure::{run_measurement, MeasureConfig};
use crate::pattern::AccessPattern;
use crate::report::{f1, Table};
use crate::system::SystemConfig;

/// One bar of Figure 6: an eight-bit mask position and the bandwidth it
/// yields for one request kind.
#[derive(Debug, Clone, PartialEq)]
pub struct MaskSweepPoint {
    /// Bit range forced to zero, e.g. "7-14".
    pub label: String,
    /// Request kind.
    pub kind: RequestKind,
    /// Measured counted bandwidth, GB/s.
    pub bandwidth_gbs: f64,
}

/// The mask positions Figure 6 sweeps (eight bits forced to zero).
pub const FIG6_MASKS: [(u32, u32); 7] =
    [(24, 31), (10, 17), (7, 14), (3, 10), (2, 9), (1, 8), (0, 7)];

/// Figure 6: random 128 B accesses with an eight-bit zero-mask applied at
/// each position, for `ro`, `rw`, and `wo`.
pub fn figure6(cfg: &SystemConfig, mc: &MeasureConfig) -> Vec<MaskSweepPoint> {
    let size = RequestSize::MAX;
    let points: Vec<_> = FIG6_MASKS
        .into_iter()
        .flat_map(|bits| RequestKind::ALL.into_iter().map(move |kind| (bits, kind)))
        .collect();
    exec::sweep(points, |((lo, hi), kind)| {
        let mask = AddressMask::zero_bits(lo, hi);
        let m = run_measurement(cfg, &Workload::masked(kind, size, mask), mc);
        MaskSweepPoint {
            label: format!("{lo}-{hi}"),
            kind,
            bandwidth_gbs: m.bandwidth_gbs,
        }
    })
}

/// Renders Figure 6 as a table (rows = mask positions, columns = kinds).
pub fn figure6_table(points: &[MaskSweepPoint]) -> Table {
    let mut t = Table::new(
        "Figure 6: bandwidth vs masked bit positions (128 B random)",
        &["bits zeroed", "ro GB/s", "rw GB/s", "wo GB/s"],
    );
    for (lo, hi) in FIG6_MASKS {
        let label = format!("{lo}-{hi}");
        let get = |k: RequestKind| {
            points
                .iter()
                .find(|p| p.label == label && p.kind == k)
                .map_or(0.0, |p| p.bandwidth_gbs)
        };
        t.row(vec![
            label.clone(),
            f1(get(RequestKind::ReadOnly)),
            f1(get(RequestKind::ReadModifyWrite)),
            f1(get(RequestKind::WriteOnly)),
        ]);
    }
    t
}

/// One bar of Figure 7: an access pattern and kind.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PatternPoint {
    /// The access pattern.
    pub pattern: AccessPattern,
    /// Request kind.
    pub kind: RequestKind,
    /// Measured counted bandwidth, GB/s.
    pub bandwidth_gbs: f64,
}

/// Figure 7: bandwidth of every pattern for `ro`, `rw`, and `wo` at
/// 128 B.
pub fn figure7(cfg: &SystemConfig, mc: &MeasureConfig) -> Vec<PatternPoint> {
    let size = RequestSize::MAX;
    let mapping = cfg.mem.mapping;
    let spec = cfg.mem.spec;
    let points: Vec<_> = AccessPattern::paper_axis()
        .into_iter()
        .flat_map(|pattern| {
            RequestKind::ALL
                .into_iter()
                .map(move |kind| (pattern, kind))
        })
        .collect();
    exec::sweep(points, |(pattern, kind)| {
        let mask = pattern.mask(mapping, &spec).expect("paper axis is valid");
        let m = run_measurement(cfg, &Workload::masked(kind, size, mask), mc);
        PatternPoint {
            pattern,
            kind,
            bandwidth_gbs: m.bandwidth_gbs,
        }
    })
}

/// Renders Figure 7.
pub fn figure7_table(points: &[PatternPoint]) -> Table {
    let mut t = Table::new(
        "Figure 7: bandwidth by access pattern and kind (128 B)",
        &["pattern", "ro GB/s", "rw GB/s", "wo GB/s"],
    );
    for pattern in AccessPattern::paper_axis() {
        let get = |k: RequestKind| {
            points
                .iter()
                .find(|p| p.pattern == pattern && p.kind == k)
                .map_or(0.0, |p| p.bandwidth_gbs)
        };
        t.row(vec![
            pattern.to_string(),
            f1(get(RequestKind::ReadOnly)),
            f1(get(RequestKind::ReadModifyWrite)),
            f1(get(RequestKind::WriteOnly)),
        ]);
    }
    t
}

/// One point of Figure 8: a pattern and request size, with bandwidth and
/// request rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SizePoint {
    /// The access pattern.
    pub pattern: AccessPattern,
    /// Request payload size.
    pub size: RequestSize,
    /// Counted bandwidth, GB/s.
    pub bandwidth_gbs: f64,
    /// Million requests per second.
    pub mrps: f64,
}

/// Figure 8: read-only bandwidth and MRPS for 128/64/32 B requests across
/// the pattern axis.
pub fn figure8(cfg: &SystemConfig, mc: &MeasureConfig) -> Vec<SizePoint> {
    let mapping = cfg.mem.mapping;
    let spec = cfg.mem.spec;
    let points: Vec<_> = AccessPattern::paper_axis()
        .into_iter()
        .flat_map(|pattern| {
            RequestSize::FIG8
                .into_iter()
                .map(move |size| (pattern, size))
        })
        .collect();
    exec::sweep(points, |(pattern, size)| {
        let mask = pattern.mask(mapping, &spec).expect("paper axis is valid");
        let m = run_measurement(
            cfg,
            &Workload::masked(RequestKind::ReadOnly, size, mask),
            mc,
        );
        SizePoint {
            pattern,
            size,
            bandwidth_gbs: m.bandwidth_gbs,
            mrps: m.mrps,
        }
    })
}

/// Renders Figure 8.
pub fn figure8_table(points: &[SizePoint]) -> Table {
    let mut t = Table::new(
        "Figure 8: read-only bandwidth and MRPS by request size",
        &[
            "pattern",
            "128B GB/s",
            "64B GB/s",
            "32B GB/s",
            "128B MRPS",
            "64B MRPS",
            "32B MRPS",
        ],
    );
    for pattern in AccessPattern::paper_axis() {
        let get = |bytes: u64| {
            points
                .iter()
                .find(|p| p.pattern == pattern && p.size.bytes() == bytes)
                .copied()
                .unwrap_or(SizePoint {
                    pattern,
                    size: RequestSize::MAX,
                    bandwidth_gbs: 0.0,
                    mrps: 0.0,
                })
        };
        t.row(vec![
            pattern.to_string(),
            f1(get(128).bandwidth_gbs),
            f1(get(64).bandwidth_gbs),
            f1(get(32).bandwidth_gbs),
            f1(get(128).mrps),
            f1(get(64).mrps),
            f1(get(32).mrps),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> MeasureConfig {
        MeasureConfig {
            warmup: hmc_types::TimeDelta::from_us(30),
            window: hmc_types::TimeDelta::from_us(120),
        }
    }

    #[test]
    fn figure6_shape_holds() {
        let cfg = SystemConfig::default();
        let pts = figure6(&cfg, &tiny());
        assert_eq!(pts.len(), 21);
        let bw = |label: &str, kind: RequestKind| {
            pts.iter()
                .find(|p| p.label == label && p.kind == kind)
                .unwrap()
                .bandwidth_gbs
        };
        let ro = RequestKind::ReadOnly;
        // Bits 7-14 (one bank) is the global minimum.
        let one_bank = bw("7-14", ro);
        for p in &pts {
            assert!(
                p.bandwidth_gbs >= one_bank * 0.9,
                "{} {} below the 1-bank floor",
                p.label,
                p.kind
            );
        }
        // Row-only mask (24-31) performs like unmasked: near peak.
        assert!(bw("24-31", ro) > 15.0);
        // The big drop from 2-9 (two vaults) to 3-10 (one vault).
        assert!(bw("2-9", ro) > bw("3-10", ro) * 1.5);
        // One vault sits near its 10 GB/s ceiling.
        let one_vault = bw("3-10", ro);
        assert!((7.0..12.0).contains(&one_vault), "one vault {one_vault}");
        let table = figure6_table(&pts);
        assert_eq!(table.len(), 7);
    }

    #[test]
    fn figure7_kind_ordering() {
        let cfg = SystemConfig::default();
        // Only the 16-vault column — the full figure runs in the bench.
        let mask = AccessPattern::Vaults(16)
            .mask(cfg.mem.mapping, &cfg.mem.spec)
            .unwrap();
        let bw = |kind| {
            run_measurement(
                &cfg,
                &Workload::masked(kind, RequestSize::MAX, mask),
                &tiny(),
            )
            .bandwidth_gbs
        };
        let ro = bw(RequestKind::ReadOnly);
        let rw = bw(RequestKind::ReadModifyWrite);
        let wo = bw(RequestKind::WriteOnly);
        // Paper: rw > ro > wo, with rw ≈ 2×wo.
        assert!(rw > ro, "rw {rw} vs ro {ro}");
        assert!(ro > wo, "ro {ro} vs wo {wo}");
        let ratio = rw / wo;
        assert!((1.6..2.4).contains(&ratio), "rw/wo ratio {ratio}");
    }

    #[test]
    fn figure8_small_requests_more_mrps_less_bandwidth() {
        let cfg = SystemConfig::default();
        let mask = AccessPattern::Vaults(16)
            .mask(cfg.mem.mapping, &cfg.mem.spec)
            .unwrap();
        let run = |bytes| {
            run_measurement(
                &cfg,
                &Workload::masked(
                    RequestKind::ReadOnly,
                    RequestSize::new(bytes).unwrap(),
                    mask,
                ),
                &tiny(),
            )
        };
        let big = run(128);
        let small = run(32);
        assert!(big.bandwidth_gbs > small.bandwidth_gbs);
        assert!(
            small.mrps > big.mrps * 1.4,
            "32 B {} MRPS vs 128 B {}",
            small.mrps,
            big.mrps
        );
    }
}
