//! Multi-cube chain/star topologies: N sharded hosts driving N cubes whose
//! far-side links forward non-local traffic hop by hop.
//!
//! The HMC 1.1 specification allows a cube's links to connect to *another
//! cube* instead of a host; the companion NoC study (Hadidi et al., 2017)
//! shows the interconnect, not the DRAM, bounds performance once traffic
//! crosses device boundaries. This module reproduces that regime:
//!
//! * a [`Topology`] describes 1..8 cubes in a daisy [`Arrangement::Chain`]
//!   or a hub-and-spoke [`Arrangement::Star`];
//! * every cube keeps its full [`crate::System`]-grade device model; each
//!   also gets its own sharded host whose generators split a *global*
//!   address space with a [`hmc_types::ChainShard`] (cube-first or
//!   vault-first interleave);
//! * adjacent cubes are joined by pass-through [`hmc_mem::link::DeviceLink`]
//!   pairs, so a forwarded packet pays the full SerDes serialization plus
//!   retry-protocol cost **again on every hop** — the modeled remote-access
//!   adder is `transfer_time(request) + transfer_time(response)` per hop;
//! * tracing, metrics, the sanitizer's credit/conservation ledgers, and
//!   fault scenarios all remain per-cube, and a fleet-wide forward-progress
//!   watchdog spans the whole chain.
//!
//! A single-cube [`ChainSystem`] executes the exact event interleaving of
//! [`crate::System`] — bit-identical measurements — because the shard is
//! the identity function, all seeds collapse to their single-system values,
//! and the pump degenerates to the same host→device→credits→sampler order.

use std::fmt;

use hmc_host::{Host, HostStats, LinkSink, Workload};
use hmc_mem::link::{DeviceLink, OutPacket, Transfer};
use hmc_mem::{DeviceOutput, HmcDevice};
use hmc_thermal::{FailurePolicy, RecoveryStep, ThermalEvent};
use hmc_types::packet::{OpKind, TransactionSizes};
use hmc_types::{
    ChainShard, CubeInterleave, MemoryRequest, MemoryResponse, RequestSize, Time, TimeDelta,
};
use sim_engine::{FaultKind, FaultScenario, MetricsSampler, SanitizerReport, ViolationClass};

use crate::system::{RecoveryRecord, SystemConfig, Watchdog};

/// Shift giving every sharded host a disjoint request-id range; the high
/// bits double as the stateless origin-cube routing tag for responses.
const ORIGIN_SHIFT: u32 = 48;

/// How the cubes of a multi-cube topology are wired together.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Arrangement {
    /// Daisy chain: cube `k` connects to cubes `k-1` and `k+1`. Remote
    /// traffic between cubes `s` and `d` crosses `|s - d|` hops.
    #[default]
    Chain,
    /// Star: cube 0 is the hub; every other cube hangs off it. Remote
    /// traffic crosses one hop (to or from the hub) or two (spoke to
    /// spoke).
    Star,
}

impl fmt::Display for Arrangement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Arrangement::Chain => write!(f, "chain"),
            Arrangement::Star => write!(f, "star"),
        }
    }
}

/// A multi-cube topology description: cube count, wiring, and the address
/// interleave the sharded hosts use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Topology {
    cubes: u8,
    arrangement: Arrangement,
    interleave: CubeInterleave,
}

impl Topology {
    /// A single cube — the degenerate topology whose [`ChainSystem`] is
    /// bit-identical to [`crate::System`].
    pub fn single() -> Self {
        Topology::chain(1)
    }

    /// A daisy chain of `cubes` cubes with the default cube-first
    /// interleave.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= cubes <= 8` (the CUB field width).
    pub fn chain(cubes: u8) -> Self {
        // Delegate the range check to the shard constructor.
        let _ = ChainShard::new(cubes, CubeInterleave::CubeFirst);
        Topology {
            cubes,
            arrangement: Arrangement::Chain,
            interleave: CubeInterleave::CubeFirst,
        }
    }

    /// A star of `cubes` cubes (cube 0 is the hub).
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= cubes <= 8`.
    pub fn star(cubes: u8) -> Self {
        let _ = ChainShard::new(cubes, CubeInterleave::CubeFirst);
        Topology {
            cubes,
            arrangement: Arrangement::Star,
            interleave: CubeInterleave::CubeFirst,
        }
    }

    /// Replaces the address interleave (cube-first by default).
    pub fn with_interleave(mut self, interleave: CubeInterleave) -> Self {
        self.interleave = interleave;
        self
    }

    /// Number of cubes.
    pub fn cubes(&self) -> u8 {
        self.cubes
    }

    /// The wiring arrangement.
    pub fn arrangement(&self) -> Arrangement {
        self.arrangement
    }

    /// The configured interleave.
    pub fn interleave(&self) -> CubeInterleave {
        self.interleave
    }

    /// The shard function the hosts split global addresses with.
    pub fn shard(&self) -> ChainShard {
        ChainShard::new(self.cubes, self.interleave)
    }

    /// Number of cube-to-cube edges (`cubes - 1` for both arrangements).
    pub fn edge_count(&self) -> usize {
        self.cubes as usize - 1
    }

    /// The `(lo, hi)` cube pair edge `e` joins.
    fn edge_ends(&self, e: usize) -> (usize, usize) {
        match self.arrangement {
            Arrangement::Chain => (e, e + 1),
            Arrangement::Star => (0, e + 1),
        }
    }

    /// Hop count between two cubes.
    pub fn hops(&self, from: u8, to: u8) -> u32 {
        match self.arrangement {
            Arrangement::Chain => u32::from(from.abs_diff(to)),
            Arrangement::Star => match (from, to) {
                (a, b) if a == b => 0,
                (0, _) | (_, 0) => 1,
                _ => 2,
            },
        }
    }

    /// The adjacent cube a packet at `at` moves to next on its way to
    /// `toward` (`at != toward`).
    fn next_shard(&self, at: usize, toward: usize) -> usize {
        debug_assert_ne!(at, toward);
        match self.arrangement {
            Arrangement::Chain => {
                if toward > at {
                    at + 1
                } else {
                    at - 1
                }
            }
            Arrangement::Star => {
                if at == 0 {
                    toward
                } else {
                    0
                }
            }
        }
    }

    /// The edge joining adjacent cubes `a` and `b`, and whether travelling
    /// `a -> b` goes in the edge's lo→hi ("up") direction.
    fn hop_between(&self, a: usize, b: usize) -> (usize, bool) {
        let e = match self.arrangement {
            Arrangement::Chain => a.min(b),
            Arrangement::Star => a.max(b) - 1,
        };
        (e, a < b)
    }

    /// Adjacent cubes of `s`, ascending.
    fn neighbors(&self, s: usize) -> Vec<usize> {
        let n = self.cubes as usize;
        match self.arrangement {
            Arrangement::Chain => {
                let mut v = Vec::new();
                if s > 0 {
                    v.push(s - 1);
                }
                if s + 1 < n {
                    v.push(s + 1);
                }
                v
            }
            Arrangement::Star => {
                if s == 0 {
                    (1..n).collect()
                } else {
                    vec![0]
                }
            }
        }
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} x{} ({})",
            self.arrangement, self.cubes, self.interleave
        )
    }
}

/// One direction of one cube-to-cube sub-link: a full [`DeviceLink`] (so
/// forwarded packets pay the same SerDes serialization, CRC/retry, and
/// flow-control costs as host traffic) plus the completion bookkeeping the
/// chain pump drives in place of a device event queue. Requests travel the
/// hop's direction on the ingress half; responses travel the opposite way
/// on the egress half.
#[derive(Debug)]
struct HopLink {
    link: DeviceLink,
    /// Completion instant of the in-flight ingress (request) transfer.
    ingress_done: Option<Time>,
    /// Completion instant of the in-flight egress (response) transfer.
    egress_done: Option<Time>,
}

impl HopLink {
    fn new(link: DeviceLink) -> Self {
        HopLink {
            link,
            ingress_done: None,
            egress_done: None,
        }
    }

    /// Starts any transfer the serializers are free for.
    fn kick(&mut self, now: Time) {
        if self.ingress_done.is_none() {
            self.ingress_done = self.link.start_ingress(now);
        }
        if self.egress_done.is_none() {
            self.egress_done = self.link.start_egress(now);
        }
    }

    /// Earliest pending completion on this hop.
    fn next_time(&self) -> Option<Time> {
        match (self.ingress_done, self.egress_done) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }
}

/// A cube-to-cube edge: one [`HopLink`] per external sub-link in each
/// direction, mirroring the host-facing link arrangement so per-hop
/// bandwidth matches the host-to-cube wires.
#[derive(Debug)]
struct Edge {
    lo: usize,
    hi: usize,
    /// Requests lo→hi, responses hi→lo.
    up: Vec<HopLink>,
    /// Requests hi→lo, responses lo→hi.
    down: Vec<HopLink>,
}

impl Edge {
    fn hop(&self, up: bool, l: usize) -> &HopLink {
        if up {
            &self.up[l]
        } else {
            &self.down[l]
        }
    }

    fn hop_mut(&mut self, up: bool, l: usize) -> &mut HopLink {
        if up {
            &mut self.up[l]
        } else {
            &mut self.down[l]
        }
    }

    fn next_time(&self) -> Option<Time> {
        self.up
            .iter()
            .chain(&self.down)
            .filter_map(HopLink::next_time)
            .min()
    }
}

/// The origin cube a request id encodes (the issuing host's shard).
fn origin_of(id: u64) -> usize {
    (id >> ORIGIN_SHIFT) as usize
}

/// Rebuilds the response record an [`OutPacket`] carries, stamped at `now`
/// (the host's RX path overwrites `completed_at` on delivery).
fn response_from(pkt: &OutPacket, now: Time) -> MemoryResponse {
    MemoryResponse {
        id: pkt.req.id,
        port: pkt.req.port,
        tag: pkt.req.tag,
        op: pkt.req.op,
        size: pkt.req.size,
        cube: pkt.req.cube,
        addr: pkt.req.addr,
        issued_at: pkt.req.issued_at,
        completed_at: now,
        data_token: pkt.token,
    }
}

/// Repacks a device response for another hop of egress forwarding.
fn repack(resp: &MemoryResponse) -> OutPacket {
    OutPacket {
        req: MemoryRequest {
            id: resp.id,
            port: resp.port,
            tag: resp.tag,
            op: resp.op,
            size: resp.size,
            cube: resp.cube,
            addr: resp.addr,
            issued_at: resp.issued_at,
            data_token: 0,
        },
        token: resp.data_token,
    }
}

/// The transmit sink one sharded host sees: local requests go straight to
/// the home cube's device; remote requests enter the first pass-through
/// hop toward their target. Host flow control sees the *tightest* window
/// along the local fan-out (device ingress and every adjacent outgoing
/// hop), which is conservative but never over-commits a queue.
struct ChainSink<'a> {
    shard: usize,
    topo: &'a Topology,
    devices: &'a mut [HmcDevice],
    edges: &'a mut [Edge],
}

impl LinkSink for ChainSink<'_> {
    fn free_slots(&self, link: usize) -> usize {
        let mut free = self.devices[self.shard].ingress_free(link);
        for b in self.topo.neighbors(self.shard) {
            let (e, up) = self.topo.hop_between(self.shard, b);
            free = free.min(self.edges[e].hop(up, link).link.ingress_free());
        }
        free
    }

    fn submit(&mut self, link: usize, req: MemoryRequest, now: Time) -> Result<(), MemoryRequest> {
        let dst = req.cube.index() as usize;
        if dst == self.shard {
            return self.devices[self.shard].submit(link, req, now);
        }
        let next = self.topo.next_shard(self.shard, dst);
        let (e, up) = self.topo.hop_between(self.shard, next);
        let hop = self.edges[e].hop_mut(up, link);
        hop.link.enqueue_ingress(req, now)?;
        hop.kick(now);
        Ok(())
    }
}

/// A chained (or starred) multi-cube system: N sharded hosts, N cubes,
/// pass-through links between adjacent cubes. With one cube this executes
/// the exact [`crate::System`] event interleaving.
///
/// ```
/// use hmc_core::topology::{ChainSystem, Topology};
/// use hmc_core::SystemConfig;
/// use hmc_host::Workload;
/// use hmc_types::{RequestSize, Time, TimeDelta};
///
/// let mut sys = ChainSystem::new(SystemConfig::default(), Topology::chain(2));
/// sys.apply_workload(&Workload::read_stream(4, RequestSize::new(64)?));
/// sys.start(Time::ZERO);
/// assert!(sys.run_until_idle(TimeDelta::from_ms(1)));
/// assert_eq!(sys.host_stats().reads_completed, 2 * 4);
/// # Ok::<(), hmc_types::HmcError>(())
/// ```
#[derive(Debug)]
pub struct ChainSystem {
    cfg: SystemConfig,
    topo: Topology,
    hosts: Vec<Host>,
    devices: Vec<HmcDevice>,
    edges: Vec<Edge>,
    now: Time,
    /// One gauge sampler per cube (series names stay unambiguous).
    samplers: Vec<Option<MetricsSampler>>,
    watchdog: Option<Watchdog>,
    /// Pending thermal spikes `(at, °C, cube)`, sorted ascending.
    thermal_spikes: Vec<(Time, f64, usize)>,
    policy: FailurePolicy,
    recoveries: Vec<(usize, RecoveryRecord)>,
}

impl ChainSystem {
    /// Builds an idle multi-cube system. Each cube `s` gets:
    ///
    /// * a host sharded over the whole topology, with request-id base
    ///   `s << 48` (ids double as stateless response-routing tags), and a
    ///   per-cube generator-seed salt (zero for cube 0, so a single-cube
    ///   topology draws the exact single-system streams);
    /// * a device whose link-fault seeds are salted per cube (base seed
    ///   unchanged for cube 0);
    /// * pass-through hop links toward its neighbors, one per external
    ///   sub-link per direction.
    pub fn new(cfg: SystemConfig, topo: Topology) -> Self {
        let n = topo.cubes() as usize;
        let shard = topo.shard();
        let mut hosts = Vec::with_capacity(n);
        let mut devices = Vec::with_capacity(n);
        for s in 0..n {
            let mut hc = cfg.host.clone();
            hc.shard = shard;
            hc.request_id_base = (s as u64) << ORIGIN_SHIFT;
            hc.rng_salt = (s as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            hosts.push(Host::new(hc));
            let mut mc = cfg.mem.clone();
            mc.link_seed = cfg.mem.link_seed ^ ((s as u64) << 8);
            devices.push(HmcDevice::new(mc));
        }
        let links = cfg.mem.links.num_links() as usize;
        let mut edges = Vec::with_capacity(topo.edge_count());
        for e in 0..topo.edge_count() {
            let (lo, hi) = topo.edge_ends(e);
            let mk = |dir: u64| -> Vec<HopLink> {
                (0..links)
                    .map(|l| {
                        HopLink::new(DeviceLink::with_seed(
                            cfg.mem.links,
                            cfg.mem.link_layer,
                            0xED6E ^ ((e as u64) << 12) ^ (dir << 8) ^ l as u64,
                        ))
                    })
                    .collect()
            };
            edges.push(Edge {
                lo,
                hi,
                up: mk(0),
                down: mk(1),
            });
        }
        ChainSystem {
            cfg,
            topo,
            hosts,
            devices,
            edges,
            now: Time::ZERO,
            samplers: (0..n).map(|_| None).collect(),
            watchdog: None,
            thermal_spikes: Vec::new(),
            policy: FailurePolicy::default(),
            recoveries: Vec::new(),
        }
    }

    /// The topology description.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Number of cubes.
    pub fn cubes(&self) -> usize {
        self.hosts.len()
    }

    /// The host of cube `s`.
    pub fn host(&self, s: usize) -> &Host {
        &self.hosts[s]
    }

    /// Mutable host access (workload installation, stat windows).
    pub fn host_mut(&mut self, s: usize) -> &mut Host {
        &mut self.hosts[s]
    }

    /// The device of cube `s`.
    pub fn device(&self, s: usize) -> &HmcDevice {
        &self.devices[s]
    }

    /// Mutable device access.
    pub fn device_mut(&mut self, s: usize) -> &mut HmcDevice {
        &mut self.devices[s]
    }

    /// Installs the same workload on every sharded host.
    pub fn apply_workload(&mut self, w: &Workload) {
        for h in &mut self.hosts {
            h.apply_workload(w);
        }
    }

    /// Starts every host's generators at `now`.
    pub fn start(&mut self, now: Time) {
        for h in &mut self.hosts {
            h.start(now);
        }
    }

    /// Stops every host's generators (outstanding responses still drain).
    pub fn stop_generation(&mut self) {
        for h in &mut self.hosts {
            h.stop_generation();
        }
    }

    /// Clears every host's measurement window.
    pub fn reset_stats(&mut self) {
        for h in &mut self.hosts {
            h.reset_stats();
        }
    }

    /// Merged measurement window across all hosts.
    pub fn host_stats(&self) -> HostStats {
        let mut agg = HostStats::default();
        for h in &self.hosts {
            let s = h.stats();
            agg.reads_issued += s.reads_issued;
            agg.writes_issued += s.writes_issued;
            agg.reads_completed += s.reads_completed;
            agg.writes_completed += s.writes_completed;
            agg.counted_bytes += s.counted_bytes;
            agg.integrity_failures += s.integrity_failures;
            agg.read_latency.merge(&s.read_latency);
        }
        agg
    }

    /// The modeled per-hop remote-access latency adder for `size`-byte
    /// reads: one request serialization plus one response serialization
    /// through a pass-through link (identical timing model to the
    /// host-facing wires). An unloaded chain shows exactly this constant
    /// per hop.
    pub fn modeled_hop_adder(&self, size: RequestSize) -> TimeDelta {
        let probe = DeviceLink::new(self.cfg.mem.links, self.cfg.mem.link_layer);
        let sizes = TransactionSizes::of(OpKind::Read, size);
        probe.transfer_time(sizes.request_flits().bytes())
            + probe.transfer_time(sizes.response_flits().bytes())
    }

    /// Turns on lifecycle tracing on every host and device tracer.
    pub fn enable_tracing(&mut self, sample_every: u64) {
        for h in &mut self.hosts {
            h.tracer_mut().enable(sample_every);
        }
        for d in &mut self.devices {
            d.tracer_mut().enable(sample_every);
        }
    }

    /// Installs one periodic gauge sampler per cube.
    pub fn enable_metrics(&mut self, period: TimeDelta) {
        for s in &mut self.samplers {
            *s = Some(MetricsSampler::new(period));
        }
    }

    /// Cube `s`'s gauge sampler, if metrics are enabled.
    pub fn metrics(&self, s: usize) -> Option<&MetricsSampler> {
        self.samplers[s].as_ref()
    }

    /// Arms the protocol sanitizer on every host and device plus the
    /// fleet-wide forward-progress watchdog (default span, as
    /// [`crate::System::enable_sanitizer`]).
    pub fn enable_sanitizer(&mut self) {
        self.enable_sanitizer_with_span(TimeDelta::from_us(200));
    }

    /// [`enable_sanitizer`](ChainSystem::enable_sanitizer) with an
    /// explicit watchdog span.
    pub fn enable_sanitizer_with_span(&mut self, span: TimeDelta) {
        for h in &mut self.hosts {
            h.enable_sanitizer();
        }
        for d in &mut self.devices {
            d.enable_sanitizer();
        }
        self.watchdog = Some(Watchdog {
            span,
            last_completed: self.completed(),
            last_progress: self.now,
            tripped: false,
        });
    }

    /// True once the sanitizer is armed.
    pub fn sanitizer_enabled(&self) -> bool {
        self.hosts[0].sanitizer().is_enabled()
    }

    /// The merged sanitizer outcome: hosts in cube order first, then
    /// devices — deterministic violation order, and the cube-0 pair comes
    /// out exactly as [`crate::System::sanitizer_report`] for one cube.
    pub fn sanitizer_report(&self) -> SanitizerReport {
        let mut r = self.hosts[0].sanitizer().report();
        for h in &self.hosts[1..] {
            r.merge(&h.sanitizer().report());
        }
        for d in &self.devices {
            r.merge(&d.sanitizer().report());
        }
        r
    }

    /// Asserts every host's request-conservation ledger is empty — call
    /// once the run has drained.
    pub fn sanitize_check_drained(&mut self) {
        let now = self.now;
        for h in &mut self.hosts {
            h.sanitizer_mut().check_drained(now);
        }
    }

    /// Installs a fault scenario against cube `cube`: device-level faults
    /// become that device's events; thermal spikes become per-cube time
    /// barriers. Note that a thermal shutdown of a remote cube drops any
    /// in-flight traffic other hosts sent it — run multi-cube fault
    /// scenarios with the host robustness layer enabled so those requests
    /// are replayed rather than leaked.
    pub fn install_faults(&mut self, cube: usize, scenario: &FaultScenario) {
        for ev in &scenario.events {
            match ev.kind {
                FaultKind::ThermalSpike { surface_c } => {
                    self.thermal_spikes.push((ev.at, surface_c, cube));
                }
                kind => self.devices[cube].schedule_fault(ev.at, kind),
            }
        }
        self.thermal_spikes
            .sort_by(|a, b| a.0.cmp(&b.0).then(a.1.total_cmp(&b.1)).then(a.2.cmp(&b.2)));
    }

    /// Arms a bit-error rate on every sub-link of cube-to-cube edge `e`
    /// (both directions) — the hop-level analogue of the `noisy-link`
    /// scenario.
    pub fn set_hop_bit_error_rate(&mut self, e: usize, ber: f64) {
        let edge = &mut self.edges[e];
        for hop in edge.up.iter_mut().chain(edge.down.iter_mut()) {
            hop.link.set_bit_error_rate(ber);
        }
    }

    /// Replaces the thermal limits evaluated at spikes.
    pub fn set_failure_policy(&mut self, policy: FailurePolicy) {
        self.policy = policy;
    }

    /// Every `(cube, shutdown/recovery cycle)` executed so far.
    pub fn recoveries(&self) -> &[(usize, RecoveryRecord)] {
        &self.recoveries
    }

    /// Total discrete events processed across all hosts and devices.
    pub fn events_processed(&self) -> u64 {
        self.hosts.iter().map(Host::events_processed).sum::<u64>()
            + self
                .devices
                .iter()
                .map(HmcDevice::events_processed)
                .sum::<u64>()
    }

    /// The system clock.
    pub fn now(&self) -> Time {
        self.now
    }

    /// True while any host has outstanding work.
    pub fn is_busy(&self) -> bool {
        self.hosts.iter().any(Host::is_busy)
    }

    /// Deterministic dump of every cube's occupancies plus hop-link
    /// backlogs — the watchdog's diagnostic body.
    pub fn diagnostic_dump(&self) -> String {
        let mut s = format!("chain wedged at {} ({})\n", self.now, self.topo);
        for (i, (h, d)) in self.hosts.iter().zip(&self.devices).enumerate() {
            s.push_str(&format!("-- cube {i}\n"));
            s.push_str(&h.diagnostic_dump(self.now));
            s.push_str(&d.diagnostic_dump(self.now));
        }
        for (e, edge) in self.edges.iter().enumerate() {
            let up: usize = edge
                .up
                .iter()
                .map(|h| h.link.ingress_backlog() + h.link.egress_backlog())
                .sum();
            let down: usize = edge
                .down
                .iter()
                .map(|h| h.link.ingress_backlog() + h.link.egress_backlog())
                .sum();
            s.push_str(&format!(
                "edge {e} ({}<->{}): up backlog {up}, down backlog {down}\n",
                edge.lo, edge.hi
            ));
        }
        s
    }

    fn completed(&self) -> u64 {
        self.hosts
            .iter()
            .map(|h| h.total_issued() - h.outstanding())
            .sum()
    }

    fn outstanding(&self) -> u64 {
        self.hosts.iter().map(Host::outstanding).sum()
    }

    /// Fleet-wide forward-progress check (same contract as the
    /// single-system watchdog; the violation lands on cube 0's host
    /// sanitizer so the merged report carries exactly one dump).
    fn watchdog_check(&mut self, now: Time) {
        let Some(mut wd) = self.watchdog else {
            return;
        };
        let completed = self.completed();
        if completed != wd.last_completed || self.outstanding() == 0 {
            wd.last_completed = completed;
            wd.last_progress = now;
        } else if !wd.tripped && now >= wd.last_progress && now.since(wd.last_progress) >= wd.span {
            wd.tripped = true;
            let detail = format!(
                "no retirement for {} with {} outstanding\n{}",
                now.since(wd.last_progress),
                self.outstanding(),
                self.diagnostic_dump(),
            );
            self.hosts[0]
                .sanitizer_mut()
                .note_violation(ViolationClass::Watchdog, now, detail);
        }
        self.watchdog = Some(wd);
    }

    /// Advances every component until no event at or before `end`
    /// remains; per-cube thermal spikes act as barriers exactly as in
    /// [`crate::System::step_until`].
    pub fn step_until(&mut self, end: Time) {
        while let Some(&(at, surface_c, cube)) = self.thermal_spikes.first() {
            if at > end {
                break;
            }
            self.step_events_until(at);
            self.thermal_spikes.remove(0);
            self.apply_thermal_spike(cube, at, surface_c);
        }
        self.step_events_until(end);
    }

    fn apply_thermal_spike(&mut self, cube: usize, at: Time, surface_c: f64) {
        let writes = self.devices[cube].stats().writes_completed > 0;
        match self.policy.check(surface_c, writes) {
            Ok(ThermalEvent::Normal) => {}
            Ok(ThermalEvent::RefreshBoost) => self.devices[cube].set_refresh_multiplier(2),
            Err(_) => self.thermal_shutdown(cube, at, surface_c),
        }
    }

    /// One cube's live shutdown/recovery cycle; only that cube's host
    /// replays its in-flight window (remote requesters rely on their
    /// robustness layer).
    fn thermal_shutdown(&mut self, cube: usize, at: Time, surface_c: f64) {
        let mut steps = Vec::new();
        let mut resume = at;
        for step in RecoveryStep::sequence() {
            let d = step.typical_duration();
            steps.push((step, d));
            resume += d;
        }
        self.devices[cube].reset_after_shutdown(resume);
        let replayed = self.hosts[cube].reset_for_recovery(resume);
        if let Some(wd) = &mut self.watchdog {
            wd.last_progress = resume;
        }
        self.now = self.now.max(at);
        self.recoveries.push((
            cube,
            RecoveryRecord {
                shutdown_at: at,
                surface_c,
                steps,
                resume_at: resume,
                replayed,
            },
        ));
    }

    /// Conservative free-window computation host `s` flow control sees on
    /// sub-link `l` (device ingress min'd with every adjacent outgoing
    /// hop).
    fn free_slots_for(&self, s: usize, l: usize) -> usize {
        let mut free = self.devices[s].ingress_free(l);
        for b in self.topo.neighbors(s) {
            let (e, up) = self.topo.hop_between(s, b);
            free = free.min(self.edges[e].hop(up, l).link.ingress_free());
        }
        free
    }

    /// The event-pump core. With one cube this is statement-for-statement
    /// the [`crate::System::step_events_until`] loop (the edge set is
    /// empty), which is what makes single-cube runs bit-identical.
    fn step_events_until(&mut self, end: Time) {
        let links = self.cfg.mem.links.num_links() as usize;
        let mut outputs: Vec<DeviceOutput> = Vec::new();
        loop {
            let mut next: Option<Time> = None;
            for c in self
                .hosts
                .iter()
                .map(Host::next_time)
                .chain(self.devices.iter().map(HmcDevice::next_time))
                .chain(self.edges.iter().map(Edge::next_time))
                .flatten()
            {
                next = Some(next.map_or(c, |n: Time| n.min(c)));
            }
            let Some(t) = next else { break };
            if t > end {
                break;
            }
            // Hosts first: submissions at instants <= t reach devices and
            // hops whose clocks have not passed t yet.
            {
                let ChainSystem {
                    topo,
                    hosts,
                    devices,
                    edges,
                    ..
                } = self;
                for (s, host) in hosts.iter_mut().enumerate() {
                    let mut sink = ChainSink {
                        shard: s,
                        topo,
                        devices,
                        edges,
                    };
                    host.advance(t, &mut sink);
                }
            }
            for s in 0..self.devices.len() {
                outputs.clear();
                self.devices[s].advance(t, &mut outputs);
                for o in &outputs {
                    self.route_device_output(s, o, links);
                }
            }
            self.pump_edges(t, links);
            for s in 0..self.hosts.len() {
                if self.hosts[s].any_node_stalled() {
                    for l in 0..links {
                        let free = self.free_slots_for(s, l);
                        if free > 0 {
                            self.hosts[s].notify_credit(l, free, t);
                        }
                    }
                }
            }
            for s in 0..self.samplers.len() {
                if let Some(mut smp) = self.samplers[s].take() {
                    while let Some(due) = smp.due_before(t) {
                        self.hosts[s].sample_metrics(due, &mut smp);
                        self.devices[s].sample_metrics(due, &mut smp);
                        smp.advance();
                    }
                    self.samplers[s] = Some(smp);
                }
            }
            self.now = t;
            self.watchdog_check(t);
        }
        self.now = self.now.max(end);
        self.watchdog_check(self.now);
    }

    /// Routes one device output: responses to locally-issued requests go
    /// to the local host (exactly the single-system path); responses to
    /// forwarded requests re-enter the chain toward their origin cube,
    /// paying another serialization per hop.
    fn route_device_output(&mut self, s: usize, o: &DeviceOutput, links: usize) {
        let owner = origin_of(o.resp.id.value());
        if owner == s || owner >= self.cubes() || o.link >= links {
            // Local traffic — and PIM returns, whose pseudo-link is out of
            // range — deliver straight to the local host.
            self.hosts[s].receive_response(o.resp, o.at);
            return;
        }
        let next = self.topo.next_shard(s, owner);
        // A response from `s` toward `next` rides the egress half of the
        // hop whose request direction is `next -> s`.
        let (e, up) = self.topo.hop_between(next, s);
        let hop = self.edges[e].hop_mut(up, o.link);
        hop.link.push_egress(repack(&o.resp));
        hop.kick(o.at);
    }

    /// Attempts to move a request that finished a hop into its next stage
    /// (the local device, or the next hop toward its cube). Returns the
    /// request back on downstream-full, so the hop can park it head-of-line
    /// blocked.
    fn try_deliver_request(
        &mut self,
        arrival: usize,
        l: usize,
        req: MemoryRequest,
        now: Time,
    ) -> Result<(), MemoryRequest> {
        let dst = req.cube.index() as usize;
        if dst == arrival {
            return self.devices[arrival].submit(l, req, now);
        }
        let next = self.topo.next_shard(arrival, dst);
        let (e, up) = self.topo.hop_between(arrival, next);
        let hop = self.edges[e].hop_mut(up, l);
        hop.link.enqueue_ingress(req, now)?;
        hop.kick(now);
        Ok(())
    }

    /// Delivers a response that finished a hop: at its origin cube it
    /// reaches the host; otherwise it re-enters the next hop's egress.
    fn deliver_response(&mut self, arrival: usize, l: usize, pkt: OutPacket, now: Time) {
        let owner = origin_of(pkt.req.id.value());
        if owner == arrival || owner >= self.cubes() {
            self.hosts[arrival].receive_response(response_from(&pkt, now), now);
            return;
        }
        let next = self.topo.next_shard(arrival, owner);
        let (e, up) = self.topo.hop_between(next, arrival);
        let hop = self.edges[e].hop_mut(up, l);
        hop.link.push_egress(pkt);
        hop.kick(now);
    }

    /// Drains every hop completion at or before `t` and restarts idle
    /// serializers. Passes repeat until a full sweep makes no progress, so
    /// same-instant head-of-line unblocking (a device freeing a slot this
    /// very instant) is observed deterministically in edge order.
    fn pump_edges(&mut self, t: Time, links: usize) {
        let mut progress = true;
        while progress {
            progress = false;
            for e in 0..self.edges.len() {
                for up in [true, false] {
                    for l in 0..links {
                        // Retry a head-of-line blocked request first: the
                        // downstream queue may have freed since last pass.
                        if self.edges[e].hop(up, l).link.blocked_request().is_some() {
                            let req = self.edges[e]
                                .hop_mut(up, l)
                                .link
                                .take_blocked()
                                .expect("blocked head checked above");
                            let arrival = self.edge_arrival(e, up);
                            match self.try_deliver_request(arrival, l, req, t) {
                                Ok(()) => progress = true,
                                Err(back) => self.edges[e].hop_mut(up, l).link.block_head(back),
                            }
                        }
                        // Ingress (request) completions.
                        while let Some(done) = self.edges[e].hop(up, l).ingress_done {
                            if done > t {
                                break;
                            }
                            match self.edges[e].hop_mut(up, l).link.complete_ingress(done) {
                                Transfer::Retry { next_done, .. } => {
                                    self.edges[e].hop_mut(up, l).ingress_done = Some(next_done);
                                }
                                Transfer::Delivered { payload: req, .. } => {
                                    let hop = self.edges[e].hop_mut(up, l);
                                    hop.link.finish_ingress();
                                    hop.ingress_done = None;
                                    let arrival = self.edge_arrival(e, up);
                                    if let Err(back) = self.try_deliver_request(arrival, l, req, t)
                                    {
                                        self.edges[e].hop_mut(up, l).link.block_head(back);
                                    }
                                    progress = true;
                                }
                            }
                        }
                        // Egress (response) completions.
                        while let Some(done) = self.edges[e].hop(up, l).egress_done {
                            if done > t {
                                break;
                            }
                            match self.edges[e].hop_mut(up, l).link.complete_egress(done) {
                                Transfer::Retry { next_done, .. } => {
                                    self.edges[e].hop_mut(up, l).egress_done = Some(next_done);
                                }
                                Transfer::Delivered { payload: pkt, .. } => {
                                    let hop = self.edges[e].hop_mut(up, l);
                                    hop.link.finish_egress();
                                    hop.egress_done = None;
                                    // Egress travels opposite to the hop
                                    // direction.
                                    let arrival = self.edge_arrival(e, !up);
                                    self.deliver_response(arrival, l, pkt, done);
                                    progress = true;
                                }
                            }
                        }
                        self.edges[e].hop_mut(up, l).kick(t);
                    }
                }
            }
        }
    }

    /// The cube a transfer moving in direction `up` on edge `e` arrives
    /// at.
    fn edge_arrival(&self, e: usize, up: bool) -> usize {
        if up {
            self.edges[e].hi
        } else {
            self.edges[e].lo
        }
    }

    /// Runs until no host has outstanding work or `max` simulated time
    /// elapses. Returns `true` if the chain went idle.
    pub fn run_until_idle(&mut self, max: TimeDelta) -> bool {
        let deadline = self.now + max;
        while self.now < deadline {
            if !self.is_busy() {
                return true;
            }
            let spike = self.thermal_spikes.first().map(|&(t, _, _)| t);
            let next = self
                .hosts
                .iter()
                .map(Host::next_time)
                .chain(self.devices.iter().map(HmcDevice::next_time))
                .chain(self.edges.iter().map(Edge::next_time))
                .chain([spike])
                .flatten()
                .min();
            let Some(next) = next else {
                return !self.is_busy();
            };
            if next > deadline {
                break;
            }
            self.step_until(next);
        }
        !self.is_busy()
    }

    /// Convenience: advance by a span.
    pub fn run_for(&mut self, span: TimeDelta) {
        let end = self.now + span;
        self.step_until(end);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmc_types::RequestKind;

    #[test]
    fn topology_geometry() {
        let t = Topology::chain(4);
        assert_eq!(t.edge_count(), 3);
        assert_eq!(t.hops(0, 3), 3);
        assert_eq!(t.next_shard(1, 3), 2);
        assert_eq!(t.next_shard(2, 0), 1);
        assert_eq!(t.hop_between(1, 2), (1, true));
        assert_eq!(t.hop_between(2, 1), (1, false));
        assert_eq!(t.neighbors(0), vec![1]);
        assert_eq!(t.neighbors(2), vec![1, 3]);

        let s = Topology::star(4);
        assert_eq!(s.edge_count(), 3);
        assert_eq!(s.hops(1, 3), 2);
        assert_eq!(s.hops(0, 3), 1);
        assert_eq!(s.next_shard(1, 3), 0);
        assert_eq!(s.next_shard(0, 3), 3);
        assert_eq!(s.hop_between(0, 3), (2, true));
        assert_eq!(s.hop_between(3, 0), (2, false));
        assert_eq!(s.neighbors(0), vec![1, 2, 3]);
        assert_eq!(s.neighbors(2), vec![0]);
        assert!(format!("{s}").contains("star"));
    }

    #[test]
    #[should_panic(expected = "cubes")]
    fn topology_rejects_too_many_cubes() {
        let _ = Topology::chain(9);
    }

    #[test]
    fn two_cube_stream_round_trips_remote() {
        // A read stream on sharded hosts: cube-first interleave sends
        // every other block remote, and everything still drains.
        let mut sys = ChainSystem::new(SystemConfig::default(), Topology::chain(2));
        sys.apply_workload(&Workload::read_stream(
            8,
            RequestSize::new(128).expect("valid size"),
        ));
        sys.start(Time::ZERO);
        assert!(sys.run_until_idle(TimeDelta::from_ms(1)), "chain wedged");
        let s = sys.host_stats();
        assert_eq!(s.reads_completed, 2 * 8);
        assert_eq!(s.integrity_failures, 0);
        // Both devices served traffic (the stream is split by the shard).
        assert!(sys.device(0).stats().reads_completed > 0);
        assert!(sys.device(1).stats().reads_completed > 0);
    }

    #[test]
    fn remote_reads_pay_the_modeled_hop_adder() {
        // One pinned pointer-chase per target cube, refresh disabled so
        // nothing perturbs the unloaded round trip: the far mean latency
        // must exceed the near one by exactly hops x modeled adder.
        let size = RequestSize::new(128).expect("valid size");
        let mut lat = Vec::new();
        for target in 0..2u8 {
            let mut cfg = SystemConfig::default();
            cfg.mem.refresh.enabled = false;
            let mut sys = ChainSystem::new(cfg, Topology::chain(2));
            let addrs: Vec<hmc_types::Address> = (0..64u64)
                .map(|i| hmc_types::Address::new(i * 4096))
                .collect();
            sys.host_mut(0)
                .apply_workload(&Workload::DependentChain { addrs, size });
            sys.host_mut(0)
                .set_cube_pin(Some(hmc_types::CubeId::new(target)));
            sys.start(Time::ZERO);
            assert!(sys.run_until_idle(TimeDelta::from_ms(10)));
            lat.push(sys.host(0).stats().read_latency.mean());
        }
        let adder = sys_adder(size);
        assert_eq!(
            lat[1].as_ps(),
            lat[0].as_ps() + adder.as_ps(),
            "remote latency must be near latency plus the modeled hop cost"
        );
    }

    fn sys_adder(size: RequestSize) -> TimeDelta {
        ChainSystem::new(SystemConfig::default(), Topology::chain(2)).modeled_hop_adder(size)
    }

    #[test]
    fn star_spoke_to_spoke_crosses_hub() {
        let mut sys = ChainSystem::new(SystemConfig::default(), Topology::star(3));
        // Pin host 1's traffic to cube 2: two hops via the hub.
        let size = RequestSize::new(64).expect("valid size");
        sys.host_mut(1)
            .apply_workload(&Workload::read_stream(4, size));
        sys.host_mut(1)
            .set_cube_pin(Some(hmc_types::CubeId::new(2)));
        sys.start(Time::ZERO);
        assert!(sys.run_until_idle(TimeDelta::from_ms(1)), "star wedged");
        assert_eq!(sys.host(1).stats().reads_completed, 4);
        assert_eq!(sys.device(2).stats().reads_completed, 4);
        assert_eq!(
            sys.device(0).stats().reads_completed,
            0,
            "hub only forwards"
        );
    }

    #[test]
    fn chain_sanitizer_stays_clean_under_load() {
        let mut sys = ChainSystem::new(SystemConfig::default(), Topology::chain(2));
        sys.enable_sanitizer();
        sys.apply_workload(&Workload::full_scale(
            RequestKind::ReadOnly,
            RequestSize::MAX,
        ));
        sys.start(Time::ZERO);
        sys.run_for(TimeDelta::from_us(50));
        sys.stop_generation();
        assert!(sys.run_until_idle(TimeDelta::from_ms(10)), "drain stalled");
        sys.sanitize_check_drained();
        let report = sys.sanitizer_report();
        assert!(report.is_clean(), "{}", report.to_json());
    }
}
