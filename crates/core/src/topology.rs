//! Multi-cube chain/star topologies: N sharded hosts driving N cubes whose
//! far-side links forward non-local traffic hop by hop.
//!
//! The HMC 1.1 specification allows a cube's links to connect to *another
//! cube* instead of a host; the companion NoC study (Hadidi et al., 2017)
//! shows the interconnect, not the DRAM, bounds performance once traffic
//! crosses device boundaries. This module reproduces that regime:
//!
//! * a [`Topology`] describes 1..8 cubes in a daisy [`Arrangement::Chain`]
//!   or a hub-and-spoke [`Arrangement::Star`];
//! * every cube keeps its full [`crate::System`]-grade device model; each
//!   also gets its own sharded host whose generators split a *global*
//!   address space with a [`hmc_types::ChainShard`] (cube-first or
//!   vault-first interleave);
//! * adjacent cubes are joined by pass-through [`hmc_mem::link::DeviceLink`]
//!   serializers, so a forwarded packet pays the full SerDes serialization
//!   plus retry-protocol cost **again on every hop** — the modeled
//!   remote-access adder is `transfer_time(request) +
//!   transfer_time(response)` per hop;
//! * tracing, metrics, the sanitizer's credit/conservation ledgers, and
//!   fault scenarios all remain per-cube, and a fleet-wide forward-progress
//!   watchdog spans the whole chain.
//!
//! # Conservative parallel execution
//!
//! The chain is organized as one [`CubeShard`] per cube: host, device,
//! hop-link serializers, and metrics sampler bundled behind a private
//! event pump that touches no other cube's state. Cross-cube traffic —
//! request arrivals, response arrivals, and flow-control credits — moves
//! as timestamped [`sim_engine::pdes::Envelope`]s whose delivery times
//! carry at least the per-edge SerDes floor (one 16-byte flit through a
//! pass-through link). That floor is the conservative *lookahead*: shards
//! advance in lockstep epoch windows no wider than the minimum lookahead,
//! exchanging envelopes only at epoch boundaries through per-shard
//! [`sim_engine::pdes::Mailbox`]es drained in total `(at, edge, dir, seq)`
//! order. Because every shard consumes its events and messages in a
//! fixed total order that is independent of *where* each epoch executes,
//! running the shards on [`SystemBuilder::parallel_shards`] worker
//! threads is bit-identical to running them sequentially — at every cube
//! count and every worker count. See DESIGN.md §10 for the protocol.
//!
//! A single-cube [`ChainSystem`] executes the exact event interleaving of
//! [`crate::System`] — bit-identical measurements — because the shard is
//! the identity function, all seeds collapse to their single-system
//! values, and the pump degenerates to the same
//! host→device→credits→sampler order.
//!
//! [`SystemBuilder::parallel_shards`]: crate::SystemBuilder::parallel_shards

use std::collections::VecDeque;
use std::fmt;

use hmc_host::{Host, HostStats, LinkSink, Workload};
use hmc_mem::link::{DeviceLink, OutPacket, Transfer};
use hmc_mem::{DeviceOutput, HmcDevice};
use hmc_thermal::{FailurePolicy, RecoveryStep, ThermalEvent};
use hmc_types::packet::{OpKind, TransactionSizes, FLIT_BYTES};
use hmc_types::trace::Stage;
use hmc_types::{
    ChainShard, CubeInterleave, MemoryRequest, MemoryResponse, RequestSize, Time, TimeDelta,
};
use mem_backend::MemoryBackend;
use sim_engine::pdes::{
    Envelope, EpochProfiler, EpochSample, EpochShard, LookaheadTable, Mailbox, MsgKey,
    PoolUtilization, ShardPool,
};
use sim_engine::{
    FaultKind, FaultScenario, MetricsSampler, SanitizerReport, Tracer, ViolationClass,
};

use crate::system::{RecoveryRecord, SystemConfig, Watchdog};

/// Shift giving every sharded host a disjoint request-id range; the high
/// bits double as the stateless origin-cube routing tag for responses.
const ORIGIN_SHIFT: u32 = 48;

/// How the cubes of a multi-cube topology are wired together.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Arrangement {
    /// Daisy chain: cube `k` connects to cubes `k-1` and `k+1`. Remote
    /// traffic between cubes `s` and `d` crosses `|s - d|` hops.
    #[default]
    Chain,
    /// Star: cube 0 is the hub; every other cube hangs off it. Remote
    /// traffic crosses one hop (to or from the hub) or two (spoke to
    /// spoke).
    Star,
}

impl fmt::Display for Arrangement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Arrangement::Chain => write!(f, "chain"),
            Arrangement::Star => write!(f, "star"),
        }
    }
}

/// A multi-cube topology description: cube count, wiring, and the address
/// interleave the sharded hosts use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Topology {
    cubes: u8,
    arrangement: Arrangement,
    interleave: CubeInterleave,
}

impl Topology {
    /// A single cube — the degenerate topology whose [`ChainSystem`] is
    /// bit-identical to [`crate::System`].
    pub fn single() -> Self {
        Topology::chain(1)
    }

    /// A daisy chain of `cubes` cubes with the default cube-first
    /// interleave.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= cubes <= 8` (the CUB field width).
    pub fn chain(cubes: u8) -> Self {
        // Delegate the range check to the shard constructor.
        let _ = ChainShard::new(cubes, CubeInterleave::CubeFirst);
        Topology {
            cubes,
            arrangement: Arrangement::Chain,
            interleave: CubeInterleave::CubeFirst,
        }
    }

    /// A star of `cubes` cubes (cube 0 is the hub).
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= cubes <= 8`.
    pub fn star(cubes: u8) -> Self {
        let _ = ChainShard::new(cubes, CubeInterleave::CubeFirst);
        Topology {
            cubes,
            arrangement: Arrangement::Star,
            interleave: CubeInterleave::CubeFirst,
        }
    }

    /// Replaces the address interleave (cube-first by default).
    pub fn with_interleave(mut self, interleave: CubeInterleave) -> Self {
        self.interleave = interleave;
        self
    }

    /// Number of cubes.
    pub fn cubes(&self) -> u8 {
        self.cubes
    }

    /// The wiring arrangement.
    pub fn arrangement(&self) -> Arrangement {
        self.arrangement
    }

    /// The configured interleave.
    pub fn interleave(&self) -> CubeInterleave {
        self.interleave
    }

    /// The shard function the hosts split global addresses with.
    pub fn shard(&self) -> ChainShard {
        ChainShard::new(self.cubes, self.interleave)
    }

    /// Number of cube-to-cube edges (`cubes - 1` for both arrangements).
    pub fn edge_count(&self) -> usize {
        self.cubes as usize - 1
    }

    /// Hop count between two cubes.
    pub fn hops(&self, from: u8, to: u8) -> u32 {
        match self.arrangement {
            Arrangement::Chain => u32::from(from.abs_diff(to)),
            Arrangement::Star => match (from, to) {
                (a, b) if a == b => 0,
                (0, _) | (_, 0) => 1,
                _ => 2,
            },
        }
    }

    /// The adjacent cube a packet at `at` moves to next on its way to
    /// `toward` (`at != toward`).
    fn next_shard(&self, at: usize, toward: usize) -> usize {
        debug_assert_ne!(at, toward);
        match self.arrangement {
            Arrangement::Chain => {
                if toward > at {
                    at + 1
                } else {
                    at - 1
                }
            }
            Arrangement::Star => {
                if at == 0 {
                    toward
                } else {
                    0
                }
            }
        }
    }

    /// The edge joining adjacent cubes `a` and `b`, and whether travelling
    /// `a -> b` goes in the edge's lo→hi ("up") direction.
    fn hop_between(&self, a: usize, b: usize) -> (usize, bool) {
        let e = match self.arrangement {
            Arrangement::Chain => a.min(b),
            Arrangement::Star => a.max(b) - 1,
        };
        (e, a < b)
    }

    /// Adjacent cubes of `s`, ascending.
    fn neighbors(&self, s: usize) -> Vec<usize> {
        let n = self.cubes as usize;
        match self.arrangement {
            Arrangement::Chain => {
                let mut v = Vec::new();
                if s > 0 {
                    v.push(s - 1);
                }
                if s + 1 < n {
                    v.push(s + 1);
                }
                v
            }
            Arrangement::Star => {
                if s == 0 {
                    (1..n).collect()
                } else {
                    vec![0]
                }
            }
        }
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} x{} ({})",
            self.arrangement, self.cubes, self.interleave
        )
    }
}

/// The origin cube a request id encodes (the issuing host's shard).
fn origin_of(id: u64) -> usize {
    (id >> ORIGIN_SHIFT) as usize
}

/// Rebuilds the response record an [`OutPacket`] carries, stamped at `now`
/// (the host's RX path overwrites `completed_at` on delivery).
fn response_from(pkt: &OutPacket, now: Time) -> MemoryResponse {
    MemoryResponse {
        id: pkt.req.id,
        port: pkt.req.port,
        tag: pkt.req.tag,
        op: pkt.req.op,
        size: pkt.req.size,
        cube: pkt.req.cube,
        addr: pkt.req.addr,
        issued_at: pkt.req.issued_at,
        completed_at: now,
        data_token: pkt.token,
        tenant: pkt.req.tenant,
    }
}

/// Repacks a device response for another hop of egress forwarding.
fn repack(resp: &MemoryResponse) -> OutPacket {
    OutPacket {
        req: MemoryRequest {
            id: resp.id,
            port: resp.port,
            tag: resp.tag,
            op: resp.op,
            size: resp.size,
            cube: resp.cube,
            addr: resp.addr,
            issued_at: resp.issued_at,
            data_token: 0,
            tenant: resp.tenant,
        },
        token: resp.data_token,
    }
}

/// A cross-shard hop-link message. Delivery times always carry at least
/// the per-edge lookahead, which is what lets shards advance a whole
/// epoch without hearing from their neighbours.
#[derive(Debug, Clone)]
enum HopMsg {
    /// A request finished its hop serialization and arrives on sub-link
    /// `l` of the destination's port for the edge in the key.
    Req { l: usize, req: MemoryRequest },
    /// A response finished its hop and arrives on sub-link `l`.
    Resp { l: usize, pkt: OutPacket },
    /// Flow-control credit: the receiver handed one of our requests
    /// downstream, freeing a slot on sub-link `l`.
    Credit { l: usize },
}

/// The request-transmit half of one hop sub-link, owned by the sending
/// shard: a full [`DeviceLink`] (so forwarded packets pay the same SerDes
/// serialization and CRC/retry costs as host traffic — its ingress queue
/// is the hop's admission window) plus credit-based flow control toward
/// the receiver's bounded arrival queue.
#[derive(Debug)]
struct ReqTx {
    link: DeviceLink,
    /// Completion instant of the transfer occupying the serializer.
    busy_until: Time,
    /// Remaining receive-queue slots at the far end.
    credits: usize,
}

impl ReqTx {
    /// Starts the next queued transfer at `now` if the serializer is free
    /// and the receiver has room, resolving the whole CRC/retry exchange
    /// eagerly: the returned instant is the final delivery time (each
    /// retry adds the penalty plus a reserialization, exactly as the
    /// incremental model would), so the arrival can ship as one message.
    fn try_start(&mut self, now: Time) -> Option<(Time, MemoryRequest)> {
        if self.credits == 0 || self.busy_until > now {
            return None;
        }
        let mut done = self.link.start_ingress(now)?;
        let req = loop {
            match self.link.complete_ingress(done) {
                Transfer::Retry { next_done, .. } => done = next_done,
                Transfer::Delivered { payload, .. } => {
                    self.link.finish_ingress();
                    break payload;
                }
            }
        };
        self.credits -= 1;
        self.busy_until = done;
        Some((done, req))
    }
}

/// The response-transmit half of one hop sub-link, owned by the shard
/// that forwards responses across the edge. Responses are never
/// backpressured (matching the unbounded egress path of the host-facing
/// wires), so there is no credit state.
#[derive(Debug)]
struct RespTx {
    link: DeviceLink,
    busy_until: Time,
}

impl RespTx {
    /// Starts the next queued response transfer at `now` if the
    /// serializer is free, resolving retries eagerly as
    /// [`ReqTx::try_start`] does.
    fn try_start(&mut self, now: Time) -> Option<(Time, OutPacket)> {
        if self.busy_until > now {
            return None;
        }
        let mut done = self.link.start_egress(now)?;
        let pkt = loop {
            match self.link.complete_egress(done) {
                Transfer::Retry { next_done, .. } => done = next_done,
                Transfer::Delivered { payload, .. } => {
                    self.link.finish_egress();
                    break payload;
                }
            }
        };
        self.busy_until = done;
        Some((done, pkt))
    }
}

/// One shard's endpoint of one cube-to-cube edge: transmit serializers
/// toward the peer and arrival queues from it, one of each per external
/// sub-link.
#[derive(Debug)]
struct Port {
    /// Global edge index (the mailbox ordering key's second field).
    edge: usize,
    /// Direction this shard sends in on the edge (0 = lo→hi).
    dir: u8,
    /// The adjacent shard.
    peer: usize,
    /// Minimum message latency across this edge (the credit delay).
    lookahead: TimeDelta,
    /// Next sequence number for messages sent on `(edge, dir)`.
    seq: u64,
    req_tx: Vec<ReqTx>,
    resp_tx: Vec<RespTx>,
    /// Arrived requests per sub-link; the head parks when the next stage
    /// is full (head-of-line blocking, as a wire cannot reorder).
    req_rx: Vec<VecDeque<(Time, MemoryRequest)>>,
    /// Arrived responses per sub-link; never backpressured.
    resp_rx: Vec<VecDeque<(Time, OutPacket)>>,
}

/// Emits a message through `port`, stamping the next `(edge, dir, seq)`
/// ordering key. Free function so callers can borrow the port and the
/// outbox from the same shard simultaneously.
fn send_via(port: &mut Port, outbox: &mut Vec<Envelope<HopMsg>>, at: Time, msg: HopMsg) {
    let key = MsgKey {
        at,
        edge: u32::try_from(port.edge).expect("at most 7 edges in an 8-cube topology"),
        dir: port.dir,
        seq: port.seq,
    };
    port.seq += 1;
    outbox.push(Envelope {
        to: port.peer,
        key,
        msg,
    });
}

/// The transmit sink one sharded host sees: local requests go straight to
/// the home cube's device; remote requests enter the request serializer
/// toward their target. Host flow control sees the *tightest* window
/// along the local fan-out (device ingress and every adjacent outgoing
/// hop queue), which is conservative but never over-commits a queue.
struct ShardSink<'a, B: MemoryBackend> {
    shard: usize,
    topo: &'a Topology,
    device: &'a mut B,
    ports: &'a mut [Port],
    outbox: &'a mut Vec<Envelope<HopMsg>>,
    hop_tracer: &'a mut Tracer,
}

impl<B: MemoryBackend> LinkSink for ShardSink<'_, B> {
    fn free_slots(&self, link: usize) -> usize {
        let mut free = self.device.free_slots(link);
        for p in self.ports.iter() {
            free = free.min(p.req_tx[link].link.ingress_free());
        }
        free
    }

    fn submit(&mut self, link: usize, req: MemoryRequest, now: Time) -> Result<(), MemoryRequest> {
        let dst = req.cube.index() as usize;
        if dst == self.shard {
            return self.device.submit(link, req, now);
        }
        let id = req.id.value();
        let next = self.topo.next_shard(self.shard, dst);
        let port = self
            .ports
            .iter_mut()
            .find(|p| p.peer == next)
            .expect("route leads to an adjacent port");
        port.req_tx[link].link.enqueue_ingress(req, now)?;
        // The host's LinkTx span ended at `now`; the hop stage owns the
        // request from here until its serialized arrival at the peer.
        self.hop_tracer.begin(id, now);
        if let Some((done, r)) = port.req_tx[link].try_start(now) {
            self.hop_tracer
                .finish(r.id.value(), Stage::HopLink.index(), done);
            send_via(port, self.outbox, done, HopMsg::Req { l: link, req: r });
        }
        Ok(())
    }
}

/// One cube of the chain, self-contained for epoch execution: its host,
/// device, metrics sampler, and every hop-link endpoint it drives. The
/// pump consumes local events and mailbox messages in one deterministic
/// total order, so the shard computes the same states no matter which
/// thread (or how many) runs its epochs.
#[derive(Debug)]
struct CubeShard<B: MemoryBackend = HmcDevice> {
    idx: usize,
    topo: Topology,
    links: usize,
    host: Host,
    device: B,
    sampler: Option<MetricsSampler>,
    ports: Vec<Port>,
    inbox: Mailbox<HopMsg>,
    outbox: Vec<Envelope<HopMsg>>,
    /// Local clock: the last instant this shard pumped.
    local_now: Time,
    /// Scratch buffer for device outputs.
    outputs: Vec<DeviceOutput>,
    /// Lifecycle tracer for hop-link traversal (the chain-only
    /// [`Stage::HopLink`] spans): opened when a packet enters a hop
    /// serializer or arrives over an edge, closed when it leaves for the
    /// next shard or reaches its next local stage. Disabled by default,
    /// like the host and device tracers.
    hop_tracer: Tracer,
    /// Total head-of-line parking time: arrival→delivery gaps of
    /// requests that waited at this shard because their next stage was
    /// full. Plain accounting — never feeds back into simulation state.
    hol_parked: TimeDelta,
}

impl<B: MemoryBackend> CubeShard<B> {
    /// Index of the port facing adjacent shard `peer`.
    fn port_toward(&self, peer: usize) -> usize {
        self.ports
            .iter()
            .position(|p| p.peer == peer)
            .expect("route leads to an adjacent port")
    }

    /// Earliest instant at which this shard has work: a host or device
    /// event, an undelivered mailbox message, a pending transmit start,
    /// or a metrics sample. Parked request heads are deliberately
    /// excluded — they retry when the event that frees their next stage
    /// fires. Used only on the multi-cube path (the single-cube pump
    /// mirrors [`crate::System`] exactly, sampler excluded).
    fn next_time(&self) -> Option<Time> {
        let mut next: Option<Time> = None;
        let mut fold = |c: Option<Time>| {
            if let Some(c) = c {
                next = Some(next.map_or(c, |n: Time| n.min(c)));
            }
        };
        fold(self.host.next_time());
        fold(self.device.next_time());
        fold(self.inbox.peek_at());
        fold(self.sampler.as_ref().and_then(|s| s.due_before(Time::MAX)));
        for p in &self.ports {
            for l in 0..self.links {
                let tx = &p.req_tx[l];
                if tx.credits > 0 && tx.link.ingress_backlog() > 0 {
                    fold(Some(tx.busy_until));
                }
                let rtx = &p.resp_tx[l];
                if rtx.link.egress_backlog() > 0 {
                    fold(Some(rtx.busy_until));
                }
            }
        }
        next
    }

    /// Processes one instant `t` of this shard's timeline: mailbox
    /// deliveries, host events, device events, hop-link progress, stall
    /// credits, and metrics samples — the same order per instant as the
    /// serial chain pump always used.
    fn pump_instant(&mut self, t: Time) {
        // 1. Cross-shard messages due by now, in total (at, edge, dir,
        //    seq) order. Credits open transmit windows; arrivals queue on
        //    their port and move downstream in step 4.
        while let Some((key, msg)) = self.inbox.pop_before(t) {
            let pi = self
                .ports
                .iter()
                .position(|p| p.edge == key.edge as usize)
                .expect("message addressed to an owned edge");
            match msg {
                HopMsg::Req { l, req } => {
                    // The hop stage keeps owning the request while it
                    // waits (possibly parked) for its next local stage.
                    self.hop_tracer.begin(req.id.value(), key.at);
                    self.ports[pi].req_rx[l].push_back((key.at, req));
                }
                HopMsg::Resp { l, pkt } => self.ports[pi].resp_rx[l].push_back((key.at, pkt)),
                HopMsg::Credit { l } => self.ports[pi].req_tx[l].credits += 1,
            }
        }
        // 2. Host first: its submissions at instants <= t reach a device
        //    (or hop serializer) whose clock has not passed t yet.
        {
            let CubeShard {
                idx,
                topo,
                host,
                device,
                ports,
                outbox,
                hop_tracer,
                ..
            } = self;
            let mut sink = ShardSink {
                shard: *idx,
                topo,
                device,
                ports,
                outbox,
                hop_tracer,
            };
            host.advance_instant(t, &mut sink);
        }
        // 3. Device events; responses route to the local host or back
        //    into the chain toward their origin cube.
        let mut outputs = std::mem::take(&mut self.outputs);
        outputs.clear();
        self.device.advance_instant(t, &mut outputs);
        for o in &outputs {
            self.route_device_output(o);
        }
        self.outputs = outputs;
        // 4. Hop progress: drain arrivals and restart serializers until a
        //    full sweep makes no progress, so same-instant head-of-line
        //    unblocking is observed deterministically in port order.
        let mut progress = true;
        while progress {
            progress = false;
            for pi in 0..self.ports.len() {
                for l in 0..self.links {
                    // Arrived requests: hand each to the device or the
                    // next hop; the head parks on downstream-full and the
                    // sender's credit returns one lookahead later.
                    while let Some(&(at, req)) = self.ports[pi].req_rx[l].front() {
                        if self.try_deliver_request(l, req, t).is_err() {
                            break;
                        }
                        self.hol_parked += t.since(at);
                        self.ports[pi].req_rx[l].pop_front();
                        let la = self.ports[pi].lookahead;
                        send_via(
                            &mut self.ports[pi],
                            &mut self.outbox,
                            t + la,
                            HopMsg::Credit { l },
                        );
                        progress = true;
                    }
                    // Arrived responses: deliver to the local host or
                    // re-serialize toward the origin. Never blocks.
                    while let Some((at, pkt)) = self.ports[pi].resp_rx[l].pop_front() {
                        self.deliver_response(l, pkt, at);
                        progress = true;
                    }
                    // Restart any serializer freed this instant.
                    if let Some((done, r)) = self.ports[pi].req_tx[l].try_start(t) {
                        self.hop_tracer
                            .finish(r.id.value(), Stage::HopLink.index(), done);
                        send_via(
                            &mut self.ports[pi],
                            &mut self.outbox,
                            done,
                            HopMsg::Req { l, req: r },
                        );
                        progress = true;
                    }
                    if let Some((done, p)) = self.ports[pi].resp_tx[l].try_start(t) {
                        self.hop_tracer
                            .finish(p.req.id.value(), Stage::HopLink.index(), done);
                        send_via(
                            &mut self.ports[pi],
                            &mut self.outbox,
                            done,
                            HopMsg::Resp { l, pkt: p },
                        );
                        progress = true;
                    }
                }
            }
        }
        // 5. Wake a stalled host if any fan-out window opened.
        if self.host.any_node_stalled() {
            for l in 0..self.links {
                let mut free = self.device.free_slots(l);
                for p in &self.ports {
                    free = free.min(p.req_tx[l].link.ingress_free());
                }
                if free > 0 {
                    self.host.notify_credit(l, free, t);
                }
            }
        }
        // 6. Metrics samples due by this instant. Hop gauges ride the
        //    same per-cube sampler as the host and device gauges (the
        //    single-cube pump has no ports, so its gauge stream stays
        //    byte-identical to the single-system one).
        if let Some(mut smp) = self.sampler.take() {
            while let Some(due) = smp.due_before(t) {
                self.host.sample_metrics(due, &mut smp);
                self.device.sample_metrics(due, &mut smp);
                self.sample_hop_metrics(due, &mut smp);
                smp.advance();
            }
            self.sampler = Some(smp);
        }
        self.local_now = self.local_now.max(t);
    }

    /// Records the chain-level gauges of this shard: per-edge hop-link
    /// occupancy (transmit backlog, arrival queue, remaining credit
    /// window) plus the cross-shard mailbox depth. Read-only over the
    /// port state, so an armed sampler stays bit-inert.
    fn sample_hop_metrics(&self, due: Time, smp: &mut MetricsSampler) {
        for p in &self.ports {
            let mut tx = 0usize;
            let mut rx = 0usize;
            let mut credits = 0usize;
            for l in 0..self.links {
                tx += p.req_tx[l].link.ingress_backlog() + p.resp_tx[l].link.egress_backlog();
                rx += p.req_rx[l].len() + p.resp_rx[l].len();
                credits += p.req_tx[l].credits;
            }
            let e = p.edge;
            smp.record(&format!("hop.edge{e}.tx_backlog"), due, tx as f64);
            smp.record(&format!("hop.edge{e}.rx_queued"), due, rx as f64);
            smp.record(&format!("hop.edge{e}.credits"), due, credits as f64);
        }
        smp.record("chain.mailbox", due, self.inbox.len() as f64);
    }

    /// Routes one device output: responses to locally-issued requests go
    /// to the local host (exactly the single-system path); responses to
    /// forwarded requests re-enter the chain toward their origin cube,
    /// paying another serialization per hop.
    fn route_device_output(&mut self, o: &DeviceOutput) {
        let owner = origin_of(o.resp.id.value());
        if owner == self.idx || owner >= self.topo.cubes() as usize || o.link >= self.links {
            // Local traffic — and PIM returns, whose pseudo-link is out of
            // range — deliver straight to the local host.
            self.host.receive_response(o.resp, o.at);
            return;
        }
        let next = self.topo.next_shard(self.idx, owner);
        let pi = self.port_toward(next);
        // The device tracer's LinkEgress span ended at `o.at`; the hop
        // stage owns the response from here until its wire arrival.
        self.hop_tracer.begin(o.resp.id.value(), o.at);
        self.ports[pi].resp_tx[o.link]
            .link
            .push_egress(repack(&o.resp));
        if let Some((done, pkt)) = self.ports[pi].resp_tx[o.link].try_start(o.at) {
            self.hop_tracer
                .finish(pkt.req.id.value(), Stage::HopLink.index(), done);
            send_via(
                &mut self.ports[pi],
                &mut self.outbox,
                done,
                HopMsg::Resp { l: o.link, pkt },
            );
        }
    }

    /// Attempts to move an arrived request into its next stage (the local
    /// device, or the next hop toward its cube). `Err` means
    /// downstream-full: the caller leaves it parked head-of-line.
    fn try_deliver_request(&mut self, l: usize, req: MemoryRequest, now: Time) -> Result<(), ()> {
        let dst = req.cube.index() as usize;
        if dst == self.idx {
            self.device.submit(l, req, now).map_err(|_| ())?;
            // Close the hop span opened at wire arrival: it covered the
            // head-of-line wait; the device tracer takes over at `now`.
            self.hop_tracer
                .finish(req.id.value(), Stage::HopLink.index(), now);
            return Ok(());
        }
        let next = self.topo.next_shard(self.idx, dst);
        let pi = self.port_toward(next);
        self.ports[pi].req_tx[l]
            .link
            .enqueue_ingress(req, now)
            .map_err(|_| ())?;
        if let Some((done, r)) = self.ports[pi].req_tx[l].try_start(now) {
            self.hop_tracer
                .finish(r.id.value(), Stage::HopLink.index(), done);
            send_via(
                &mut self.ports[pi],
                &mut self.outbox,
                done,
                HopMsg::Req { l, req: r },
            );
        }
        Ok(())
    }

    /// Delivers an arrived response: at its origin cube it reaches the
    /// host (stamped with its wire arrival instant); otherwise it
    /// re-enters the next hop's response serializer.
    fn deliver_response(&mut self, l: usize, pkt: OutPacket, at: Time) {
        let owner = origin_of(pkt.req.id.value());
        if owner == self.idx || owner >= self.topo.cubes() as usize {
            // `at` is the previous hop's serialized arrival instant, so
            // the host's RX rebase leaves no unattributed gap.
            self.host.receive_response(response_from(&pkt, at), at);
            return;
        }
        let next = self.topo.next_shard(self.idx, owner);
        let pi = self.port_toward(next);
        // Pass-through forward: the hop stage owns the response from its
        // arrival here until it finishes the next serialization.
        self.hop_tracer.begin(pkt.req.id.value(), at);
        self.ports[pi].resp_tx[l].link.push_egress(pkt);
        if let Some((done, p)) = self.ports[pi].resp_tx[l].try_start(at) {
            self.hop_tracer
                .finish(p.req.id.value(), Stage::HopLink.index(), done);
            send_via(
                &mut self.ports[pi],
                &mut self.outbox,
                done,
                HopMsg::Resp { l, pkt: p },
            );
        }
    }
}

impl<B: MemoryBackend> EpochShard for CubeShard<B> {
    /// Pumps every instant strictly before `end` — the epoch window is
    /// half-open, so a message timestamped exactly `end` lands in the
    /// next epoch on every shard alike.
    fn pump_epoch(&mut self, end: Time) {
        while let Some(t) = self.next_time() {
            if t >= end {
                break;
            }
            self.pump_instant(t);
        }
    }
}

/// A chained (or starred) multi-cube system: N sharded hosts, N cubes,
/// pass-through links between adjacent cubes. With one cube this executes
/// the exact [`crate::System`] event interleaving; with more, the cubes
/// advance as conservative-PDES shards (see the module docs) either
/// serially or on a worker pool — bit-identically.
///
/// ```
/// use hmc_core::topology::{ChainSystem, Topology};
/// use hmc_core::SystemConfig;
/// use hmc_host::Workload;
/// use hmc_types::{RequestSize, Time, TimeDelta};
///
/// let mut sys = ChainSystem::new(SystemConfig::default(), Topology::chain(2));
/// sys.apply_workload(&Workload::read_stream(4, RequestSize::new(64)?));
/// sys.start(Time::ZERO);
/// assert!(sys.run_until_idle(TimeDelta::from_ms(1)));
/// assert_eq!(sys.host_stats().reads_completed, 2 * 4);
/// # Ok::<(), hmc_types::HmcError>(())
/// ```
#[derive(Debug)]
pub struct ChainSystem<B: MemoryBackend = HmcDevice> {
    cfg: SystemConfig,
    topo: Topology,
    shards: Vec<CubeShard<B>>,
    /// Per-edge conservative lookahead (`None` for a single cube, which
    /// has no edges and no epochs).
    lookahead: Option<LookaheadTable>,
    /// Requested epoch worker count (1 = pump shards sequentially).
    workers: usize,
    /// Lazily-spawned persistent worker pool (only when `workers > 1` and
    /// the topology is multi-cube).
    pool: Option<ShardPool<CubeShard<B>>>,
    now: Time,
    watchdog: Option<Watchdog>,
    /// Pending thermal spikes `(at, °C, cube)`, sorted ascending.
    thermal_spikes: Vec<(Time, f64, usize)>,
    policy: FailurePolicy,
    recoveries: Vec<(usize, RecoveryRecord)>,
    /// Deterministic per-shard epoch profiler (armed on demand; the
    /// coordinator feeds it after every epoch barrier).
    profiler: Option<EpochProfiler>,
    /// Per-shard `(events, parked)` totals at the last recorded epoch,
    /// so the profiler sees per-epoch deltas.
    prof_prev: Vec<(u64, TimeDelta)>,
    /// Envelopes delivered to each shard at the last exchange.
    recv_counts: Vec<u64>,
}

impl ChainSystem {
    /// Builds an idle multi-cube system. Each cube `s` gets:
    ///
    /// * a host sharded over the whole topology, with request-id base
    ///   `s << 48` (ids double as stateless response-routing tags), and a
    ///   per-cube generator-seed salt (zero for cube 0, so a single-cube
    ///   topology draws the exact single-system streams);
    /// * a device whose link-fault seeds are salted per cube (base seed
    ///   unchanged for cube 0);
    /// * pass-through hop serializers toward its neighbors, one per
    ///   external sub-link per direction, with credit windows sized to
    ///   the link layer's retry-buffer depth.
    ///
    /// The per-edge lookahead table is fixed here: one 16-byte flit
    /// through a pass-through link (serialization at wire efficiency plus
    /// the packet and per-flit overheads) is the smallest latency any
    /// cross-shard message can carry, and therefore the conservative
    /// epoch bound.
    pub fn new(cfg: SystemConfig, topo: Topology) -> Self {
        let base_seed = cfg.mem.link_seed;
        ChainSystem::with_devices(cfg, topo, |s, cfg| {
            let mut mc = cfg.mem.clone();
            mc.link_seed = base_seed ^ ((s as u64) << 8);
            HmcDevice::new(mc)
        })
    }
}

impl<B: MemoryBackend> ChainSystem<B> {
    /// Builds an idle multi-cube system from a per-cube backend factory —
    /// the generic analogue of [`ChainSystem::new`]. The hop links joining
    /// adjacent cubes stay HMC pass-through serializers (cube chaining is
    /// an HMC-specification feature; the backend only replaces what sits
    /// behind each cube's host-facing ports).
    pub fn with_devices(
        cfg: SystemConfig,
        topo: Topology,
        mut factory: impl FnMut(usize, &SystemConfig) -> B,
    ) -> Self {
        let n = topo.cubes() as usize;
        let shard = topo.shard();
        let links = cfg.mem.links.num_links() as usize;
        let probe = DeviceLink::new(cfg.mem.links, cfg.mem.link_layer);
        let hop_floor = probe.transfer_time(FLIT_BYTES);
        let credit_window = cfg.mem.link_layer.retry_buffer_depth;
        let mut shards = Vec::with_capacity(n);
        for s in 0..n {
            let mut hc = cfg.host.clone();
            hc.shard = shard;
            hc.request_id_base = (s as u64) << ORIGIN_SHIFT;
            hc.rng_salt = (s as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let host = Host::new(hc);
            let device = factory(s, &cfg);
            let mut ports = Vec::new();
            for b in topo.neighbors(s) {
                let (e, up) = topo.hop_between(s, b);
                let dir: u8 = if up { 0 } else { 1 };
                ports.push(Port {
                    edge: e,
                    dir,
                    peer: b,
                    lookahead: hop_floor,
                    seq: 0,
                    req_tx: (0..links)
                        .map(|l| ReqTx {
                            link: DeviceLink::with_seed(
                                cfg.mem.links,
                                cfg.mem.link_layer,
                                0xED6E ^ ((e as u64) << 12) ^ (u64::from(dir) << 8) ^ l as u64,
                            ),
                            busy_until: Time::ZERO,
                            credits: credit_window,
                        })
                        .collect(),
                    resp_tx: (0..links)
                        .map(|l| RespTx {
                            link: DeviceLink::with_seed(
                                cfg.mem.links,
                                cfg.mem.link_layer,
                                0xC4E5 ^ ((e as u64) << 12) ^ (u64::from(dir) << 8) ^ l as u64,
                            ),
                            busy_until: Time::ZERO,
                        })
                        .collect(),
                    req_rx: (0..links).map(|_| VecDeque::new()).collect(),
                    resp_rx: (0..links).map(|_| VecDeque::new()).collect(),
                });
            }
            shards.push(CubeShard {
                idx: s,
                topo,
                links,
                host,
                device,
                sampler: None,
                ports,
                inbox: Mailbox::new(),
                outbox: Vec::new(),
                local_now: Time::ZERO,
                outputs: Vec::new(),
                hop_tracer: Tracer::new(&Stage::NAMES),
                hol_parked: TimeDelta::ZERO,
            });
        }
        let lookahead = (topo.edge_count() > 0)
            .then(|| LookaheadTable::new(vec![hop_floor; topo.edge_count()]));
        ChainSystem {
            cfg,
            topo,
            shards,
            lookahead,
            workers: 1,
            pool: None,
            now: Time::ZERO,
            watchdog: None,
            thermal_spikes: Vec::new(),
            policy: FailurePolicy::default(),
            recoveries: Vec::new(),
            profiler: None,
            prof_prev: vec![(0, TimeDelta::ZERO); n],
            recv_counts: vec![0; n],
        }
    }

    /// The topology description.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Number of cubes.
    pub fn cubes(&self) -> usize {
        self.shards.len()
    }

    /// The host of cube `s`.
    pub fn host(&self, s: usize) -> &Host {
        &self.shards[s].host
    }

    /// Mutable host access (workload installation, stat windows).
    pub fn host_mut(&mut self, s: usize) -> &mut Host {
        &mut self.shards[s].host
    }

    /// The device of cube `s`.
    pub fn device(&self, s: usize) -> &B {
        &self.shards[s].device
    }

    /// Mutable device access.
    pub fn device_mut(&mut self, s: usize) -> &mut B {
        &mut self.shards[s].device
    }

    /// Sets how many worker threads pump shard epochs: `<= 1` keeps the
    /// serial scheduler; more spread the cubes over a persistent pool.
    /// Results are bit-identical at every setting (the pool changes only
    /// where an epoch runs, never what it computes), so this is purely a
    /// wall-clock knob. A single-cube system always runs serially.
    pub fn set_parallel_shards(&mut self, workers: usize) {
        let workers = workers.max(1);
        if workers != self.workers {
            self.workers = workers;
            self.pool = None;
        }
    }

    /// The configured epoch worker count.
    pub fn parallel_shards(&self) -> usize {
        self.workers
    }

    /// The conservative lookahead table (`None` for a single cube).
    pub fn lookahead(&self) -> Option<&LookaheadTable> {
        self.lookahead.as_ref()
    }

    /// Installs the same workload on every sharded host.
    pub fn apply_workload(&mut self, w: &Workload) {
        for sh in &mut self.shards {
            sh.host.apply_workload(w);
        }
    }

    /// Starts every host's generators at `now`.
    pub fn start(&mut self, now: Time) {
        for sh in &mut self.shards {
            sh.host.start(now);
        }
    }

    /// Stops every host's generators (outstanding responses still drain).
    pub fn stop_generation(&mut self) {
        for sh in &mut self.shards {
            sh.host.stop_generation();
        }
    }

    /// Clears every host's measurement window.
    pub fn reset_stats(&mut self) {
        for sh in &mut self.shards {
            sh.host.reset_stats();
        }
    }

    /// Merged measurement window across all hosts.
    pub fn host_stats(&self) -> HostStats {
        let mut agg = HostStats::default();
        for sh in &self.shards {
            let s = sh.host.stats();
            agg.reads_issued += s.reads_issued;
            agg.writes_issued += s.writes_issued;
            agg.reads_completed += s.reads_completed;
            agg.writes_completed += s.writes_completed;
            agg.counted_bytes += s.counted_bytes;
            agg.integrity_failures += s.integrity_failures;
            agg.read_latency.merge(&s.read_latency);
        }
        agg
    }

    /// Merged per-tenant open-loop stats across all sharded hosts, in
    /// shard order (deterministic). Empty without the open-loop frontend.
    pub fn open_stats(&self) -> Vec<hmc_host::TenantOpenStats> {
        let mut agg: Vec<hmc_host::TenantOpenStats> = self.shards[0].host.open_stats().to_vec();
        for sh in &self.shards[1..] {
            for (a, s) in agg.iter_mut().zip(sh.host.open_stats()) {
                a.merge(s);
            }
        }
        agg
    }

    /// The modeled per-hop remote-access latency adder for `size`-byte
    /// reads: one request serialization plus one response serialization
    /// through a pass-through link (identical timing model to the
    /// host-facing wires). An unloaded chain shows exactly this constant
    /// per hop.
    pub fn modeled_hop_adder(&self, size: RequestSize) -> TimeDelta {
        let probe = DeviceLink::new(self.cfg.mem.links, self.cfg.mem.link_layer);
        let sizes = TransactionSizes::of(OpKind::Read, size);
        probe.transfer_time(sizes.request_flits().bytes())
            + probe.transfer_time(sizes.response_flits().bytes())
    }

    /// Turns on lifecycle tracing on every host, device, and hop-link
    /// tracer, so chain attribution tables telescope end to end.
    pub fn enable_tracing(&mut self, sample_every: u64) {
        for sh in &mut self.shards {
            sh.host.tracer_mut().enable(sample_every);
            sh.device.tracer_mut().enable(sample_every);
            sh.hop_tracer.enable(sample_every);
        }
    }

    /// Installs one periodic gauge sampler per cube.
    pub fn enable_metrics(&mut self, period: TimeDelta) {
        for sh in &mut self.shards {
            sh.sampler = Some(MetricsSampler::new(period));
        }
    }

    /// Cube `s`'s gauge sampler, if metrics are enabled.
    pub fn metrics(&self, s: usize) -> Option<&MetricsSampler> {
        self.shards[s].sampler.as_ref()
    }

    /// Cube `s`'s hop-link tracer (the chain-only `hop_link` spans).
    pub fn hop_tracer(&self, s: usize) -> &Tracer {
        &self.shards[s].hop_tracer
    }

    /// All per-cube gauge series merged into one sampler under
    /// `cube{N}.`-prefixed names, in cube order — the chain's exportable
    /// metrics surface. `None` unless metrics are enabled.
    pub fn merged_metrics(&self) -> Option<MetricsSampler> {
        let period = self.shards[0].sampler.as_ref()?.period();
        let mut merged = MetricsSampler::new(period);
        for sh in &self.shards {
            let smp = sh.sampler.as_ref()?;
            for series in smp.series() {
                let name = format!("cube{}.{}", sh.idx, series.name());
                for &(t, v) in series.points() {
                    merged.record(&name, t, v);
                }
            }
        }
        Some(merged)
    }

    /// Arms the deterministic per-shard epoch profiler. Sim-time only:
    /// the coordinator records each epoch's per-shard event counts,
    /// envelope traffic, window utilization, and head-of-line parking
    /// after the barrier, so profiles are bit-identical at every worker
    /// count and the armed profiler never perturbs simulation state.
    /// A single-cube system has no epochs and records nothing.
    pub fn enable_epoch_profiler(&mut self) {
        self.profiler = Some(EpochProfiler::new(self.shards.len()));
        for (prev, sh) in self.prof_prev.iter_mut().zip(&self.shards) {
            *prev = (
                sh.host.events_processed() + sh.device.events_processed(),
                sh.hol_parked,
            );
        }
    }

    /// The epoch profile recorded so far, if the profiler is armed.
    pub fn epoch_profile(&self) -> Option<&EpochProfiler> {
        self.profiler.as_ref()
    }

    /// The wall-clock worker-utilization summary of the shard pool
    /// (busy vs. barrier-wait per worker). `None` until a parallel
    /// multi-cube run has spawned the pool. Non-deterministic by nature;
    /// never fold it into a fingerprint.
    pub fn shard_utilization(&self) -> Option<&PoolUtilization> {
        self.pool.as_ref().map(|p| p.utilization())
    }

    /// Arms the protocol sanitizer on every host and device plus the
    /// fleet-wide forward-progress watchdog (default span, as
    /// [`crate::System::enable_sanitizer`]).
    pub fn enable_sanitizer(&mut self) {
        self.enable_sanitizer_with_span(TimeDelta::from_us(200));
    }

    /// [`enable_sanitizer`](ChainSystem::enable_sanitizer) with an
    /// explicit watchdog span.
    pub fn enable_sanitizer_with_span(&mut self, span: TimeDelta) {
        for sh in &mut self.shards {
            sh.host.enable_sanitizer();
            sh.device.enable_sanitizer();
        }
        self.watchdog = Some(Watchdog {
            span,
            last_completed: self.completed(),
            last_progress: self.now,
            tripped: false,
        });
    }

    /// True once the sanitizer is armed.
    pub fn sanitizer_enabled(&self) -> bool {
        self.shards[0].host.sanitizer().is_enabled()
    }

    /// The merged sanitizer outcome: hosts in cube order first, then
    /// devices — deterministic violation order, and the cube-0 pair comes
    /// out exactly as [`crate::System::sanitizer_report`] for one cube.
    pub fn sanitizer_report(&self) -> SanitizerReport {
        let mut r = self.shards[0].host.sanitizer().report();
        for sh in &self.shards[1..] {
            r.merge(&sh.host.sanitizer().report());
        }
        for sh in &self.shards {
            r.merge(&sh.device.sanitizer().report());
        }
        r
    }

    /// Asserts every host's request-conservation ledger is empty — call
    /// once the run has drained. With the open-loop frontend attached
    /// this also asserts each shard's shed-accounting invariant
    /// (`offered = shed + completed` at drain).
    pub fn sanitize_check_drained(&mut self) {
        let now = self.now;
        for sh in &mut self.shards {
            sh.host.check_open_conservation(now);
            sh.host.sanitizer_mut().check_drained(now);
        }
    }

    /// Installs a fault scenario against cube `cube`: device-level faults
    /// become that device's events; thermal spikes become per-cube time
    /// barriers. Note that a thermal shutdown of a remote cube drops any
    /// in-flight traffic other hosts sent it — run multi-cube fault
    /// scenarios with the host robustness layer enabled so those requests
    /// are replayed rather than leaked.
    pub fn install_faults(&mut self, cube: usize, scenario: &FaultScenario) {
        for ev in &scenario.events {
            match ev.kind {
                FaultKind::ThermalSpike { surface_c } => {
                    self.thermal_spikes.push((ev.at, surface_c, cube));
                }
                kind => self.shards[cube].device.schedule_fault(ev.at, kind),
            }
        }
        self.thermal_spikes
            .sort_by(|a, b| a.0.cmp(&b.0).then(a.1.total_cmp(&b.1)).then(a.2.cmp(&b.2)));
    }

    /// Arms a bit-error rate on every hop serializer of cube-to-cube edge
    /// `e` (both directions, requests and responses) — the hop-level
    /// analogue of the `noisy-link` scenario.
    pub fn set_hop_bit_error_rate(&mut self, e: usize, ber: f64) {
        for sh in &mut self.shards {
            for p in &mut sh.ports {
                if p.edge != e {
                    continue;
                }
                for l in 0..sh.links {
                    p.req_tx[l].link.set_bit_error_rate(ber);
                    p.resp_tx[l].link.set_bit_error_rate(ber);
                }
            }
        }
    }

    /// Replaces the thermal limits evaluated at spikes.
    pub fn set_failure_policy(&mut self, policy: FailurePolicy) {
        self.policy = policy;
    }

    /// Every `(cube, shutdown/recovery cycle)` executed so far.
    pub fn recoveries(&self) -> &[(usize, RecoveryRecord)] {
        &self.recoveries
    }

    /// Total discrete events processed across all hosts and devices.
    pub fn events_processed(&self) -> u64 {
        self.shards
            .iter()
            .map(|sh| sh.host.events_processed() + sh.device.events_processed())
            .sum()
    }

    /// The system clock.
    pub fn now(&self) -> Time {
        self.now
    }

    /// True while any host has outstanding work.
    pub fn is_busy(&self) -> bool {
        self.shards.iter().any(|sh| sh.host.is_busy())
    }

    /// Deterministic dump of every cube's occupancies plus hop-port
    /// backlogs — the watchdog's diagnostic body.
    pub fn diagnostic_dump(&self) -> String {
        let mut s = format!("chain wedged at {} ({})\n", self.now, self.topo);
        for sh in &self.shards {
            s.push_str(&format!("-- cube {}\n", sh.idx));
            s.push_str(&sh.host.diagnostic_dump(self.now));
            s.push_str(&sh.device.diagnostic_dump(self.now));
            for p in &sh.ports {
                let tx: usize = (0..sh.links)
                    .map(|l| {
                        p.req_tx[l].link.ingress_backlog() + p.resp_tx[l].link.egress_backlog()
                    })
                    .sum();
                let rx: usize = (0..sh.links)
                    .map(|l| p.req_rx[l].len() + p.resp_rx[l].len())
                    .sum();
                let credits: usize = (0..sh.links).map(|l| p.req_tx[l].credits).sum();
                s.push_str(&format!(
                    "port ->{} (edge {}): tx backlog {tx}, rx queued {rx}, credits {credits}\n",
                    p.peer, p.edge
                ));
            }
            if !sh.inbox.is_empty() {
                s.push_str(&format!("inbox pending {}\n", sh.inbox.len()));
            }
        }
        s
    }

    fn completed(&self) -> u64 {
        self.shards
            .iter()
            .map(|sh| sh.host.total_issued() - sh.host.outstanding())
            .sum()
    }

    fn outstanding(&self) -> u64 {
        self.shards.iter().map(|sh| sh.host.outstanding()).sum()
    }

    /// Fleet-wide forward-progress check (same contract as the
    /// single-system watchdog; the violation lands on cube 0's host
    /// sanitizer so the merged report carries exactly one dump).
    fn watchdog_check(&mut self, now: Time) {
        let Some(mut wd) = self.watchdog.take() else {
            return;
        };
        let completed = self.completed();
        if completed != wd.last_completed || self.outstanding() == 0 {
            wd.last_completed = completed;
            wd.last_progress = now;
        } else if !wd.tripped && now >= wd.last_progress && now.since(wd.last_progress) >= wd.span {
            wd.tripped = true;
            let detail = format!(
                "no retirement for {} with {} outstanding\n{}",
                now.since(wd.last_progress),
                self.outstanding(),
                self.diagnostic_dump(),
            );
            self.shards[0].host.sanitizer_mut().note_violation(
                ViolationClass::Watchdog,
                now,
                detail,
            );
        }
        self.watchdog = Some(wd);
    }

    /// Advances every component until no event at or before `end`
    /// remains; per-cube thermal spikes act as barriers exactly as in
    /// [`crate::System::step_until`].
    pub fn step_until(&mut self, end: Time) {
        while let Some(&(at, surface_c, cube)) = self.thermal_spikes.first() {
            if at > end {
                break;
            }
            self.step_events_until(at);
            self.thermal_spikes.remove(0);
            self.apply_thermal_spike(cube, at, surface_c);
        }
        self.step_events_until(end);
    }

    fn apply_thermal_spike(&mut self, cube: usize, at: Time, surface_c: f64) {
        let writes = self.shards[cube].device.core_stats().writes_completed > 0;
        match self.policy.check(surface_c, writes) {
            Ok(ThermalEvent::Normal) => {}
            Ok(ThermalEvent::RefreshBoost) => self.shards[cube].device.set_refresh_multiplier(2),
            Err(_) => self.thermal_shutdown(cube, at, surface_c),
        }
    }

    /// One cube's live shutdown/recovery cycle; only that cube's host
    /// replays its in-flight window (remote requesters rely on their
    /// robustness layer).
    fn thermal_shutdown(&mut self, cube: usize, at: Time, surface_c: f64) {
        let mut steps = Vec::new();
        let mut resume = at;
        for step in RecoveryStep::sequence() {
            let d = step.typical_duration();
            steps.push((step, d));
            resume += d;
        }
        self.shards[cube].device.reset_after_shutdown(resume);
        let replayed = self.shards[cube].host.reset_for_recovery(resume);
        if let Some(wd) = &mut self.watchdog {
            wd.last_progress = resume;
        }
        self.now = self.now.max(at);
        self.recoveries.push((
            cube,
            RecoveryRecord {
                shutdown_at: at,
                surface_c,
                steps,
                resume_at: resume,
                replayed,
            },
        ));
    }

    /// The event-pump core. One cube runs the exact [`crate::System`]
    /// loop; more cubes run the conservative epoch scheduler, serially or
    /// on the worker pool — all three paths compute bit-identical states.
    fn step_events_until(&mut self, end: Time) {
        if self.shards.len() == 1 {
            self.step_single_until(end);
        } else {
            self.step_epochs_until(end);
        }
    }

    /// The single-cube pump: statement for statement the
    /// [`crate::System::step_events_until`] loop (there are no ports),
    /// which is what makes single-cube runs bit-identical.
    fn step_single_until(&mut self, end: Time) {
        loop {
            let sh = &mut self.shards[0];
            let t = match (sh.host.next_time(), sh.device.next_time()) {
                (Some(h), Some(d)) => h.min(d),
                (Some(h), None) => h,
                (None, Some(d)) => d,
                (None, None) => break,
            };
            if t > end {
                break;
            }
            // Host first: its submissions at instants <= t reach a device
            // whose clock has not passed t yet.
            {
                let CubeShard {
                    idx,
                    topo,
                    host,
                    device,
                    ports,
                    outbox,
                    hop_tracer,
                    ..
                } = sh;
                let mut sink = ShardSink {
                    shard: *idx,
                    topo,
                    device,
                    ports,
                    outbox,
                    hop_tracer,
                };
                host.advance_instant(t, &mut sink);
            }
            let mut outputs = std::mem::take(&mut sh.outputs);
            outputs.clear();
            sh.device.advance_instant(t, &mut outputs);
            for o in &outputs {
                sh.host.receive_response(o.resp, o.at);
            }
            sh.outputs = outputs;
            if sh.host.any_node_stalled() {
                for l in 0..sh.links {
                    let free = sh.device.free_slots(l);
                    if free > 0 {
                        sh.host.notify_credit(l, free, t);
                    }
                }
            }
            if let Some(mut smp) = sh.sampler.take() {
                while let Some(due) = smp.due_before(t) {
                    sh.host.sample_metrics(due, &mut smp);
                    sh.device.sample_metrics(due, &mut smp);
                    smp.advance();
                }
                sh.sampler = Some(smp);
            }
            sh.local_now = t;
            self.now = t;
            self.watchdog_check(t);
        }
        self.now = self.now.max(end);
        // A wedged system can drain both event queues while requests are
        // still outstanding: the loop above exits immediately, so the
        // watchdog must also see the end-of-step instant.
        self.watchdog_check(self.now);
    }

    /// The multi-cube pump: lockstep epochs bounded by the global
    /// lookahead, with deterministic mailbox exchange at every barrier.
    fn step_epochs_until(&mut self, end: Time) {
        let delta = self
            .lookahead
            .as_ref()
            .expect("multi-cube topologies have edges")
            .global();
        // Epoch windows are half-open, so covering every event at or
        // before `end` means capping windows at `end + 1 ps`.
        let cap = Time::from_ps(end.as_ps().saturating_add(1));
        if self.workers > 1 && self.pool.is_none() {
            self.pool = Some(ShardPool::new(self.workers.min(self.shards.len())));
        }
        while let Some(next) = self.shards.iter().filter_map(CubeShard::next_time).min() {
            if next >= cap {
                break;
            }
            // No shard has work before `next`, so every message emitted
            // in this window is timestamped >= next + delta: the window
            // [next, next + delta) is conservative.
            let window = (next + delta).min(cap);
            if let Some(pool) = (self.workers > 1).then_some(self.pool.as_mut()).flatten() {
                let owned: Vec<(usize, CubeShard<B>)> = self.shards.drain(..).enumerate().collect();
                let back = pool.run_epoch(owned, window);
                self.shards.extend(back.into_iter().map(|(_, sh)| sh));
            } else {
                for sh in &mut self.shards {
                    sh.pump_epoch(window);
                }
            }
            // Envelope counts must be read at the barrier: the outbox
            // drains during exchange, which in turn fills recv_counts.
            let sent: Option<Vec<u64>> = self.profiler.is_some().then(|| {
                self.shards
                    .iter()
                    .map(|sh| sh.outbox.len() as u64)
                    .collect()
            });
            self.exchange();
            if let Some(prof) = &mut self.profiler {
                let sent = sent.expect("captured before exchange");
                let mut samples = Vec::with_capacity(self.shards.len());
                for (i, sh) in self.shards.iter().enumerate() {
                    let events = sh.host.events_processed() + sh.device.events_processed();
                    let parked = sh.hol_parked;
                    let prev = &mut self.prof_prev[i];
                    samples.push(EpochSample {
                        events: events - prev.0,
                        sent: sent[i],
                        received: self.recv_counts[i],
                        advanced_to: sh.local_now,
                        parked: TimeDelta::from_ps(parked.as_ps() - prev.1.as_ps()),
                    });
                    *prev = (events, parked);
                }
                prof.record_epoch(next, window, &samples);
            }
            self.now = self.now.max(next);
            self.watchdog_check(self.now);
        }
        self.now = self.now.max(end);
        self.watchdog_check(self.now);
    }

    /// Routes every envelope emitted during the last epoch into its
    /// destination shard's mailbox. Arrival order is irrelevant: the
    /// mailbox pops in total key order.
    fn exchange(&mut self) {
        self.recv_counts.fill(0);
        for i in 0..self.shards.len() {
            let envs = std::mem::take(&mut self.shards[i].outbox);
            for env in envs {
                self.recv_counts[env.to] += 1;
                self.shards[env.to].inbox.push(env.key, env.msg);
            }
        }
    }

    /// Runs until no host has outstanding work or `max` simulated time
    /// elapses. Returns `true` if the chain went idle.
    pub fn run_until_idle(&mut self, max: TimeDelta) -> bool {
        let deadline = self.now + max;
        while self.now < deadline {
            if !self.is_busy() {
                return true;
            }
            let spike = self.thermal_spikes.first().map(|&(t, _, _)| t);
            let next = if self.shards.len() == 1 {
                // The exact single-system jump computation.
                let sh = &self.shards[0];
                [sh.host.next_time(), sh.device.next_time(), spike]
                    .into_iter()
                    .flatten()
                    .min()
            } else {
                self.shards
                    .iter()
                    .filter_map(CubeShard::next_time)
                    .chain(spike)
                    .min()
            };
            let Some(next) = next else {
                return !self.is_busy();
            };
            if next > deadline {
                break;
            }
            self.step_until(next);
        }
        !self.is_busy()
    }

    /// Convenience: advance by a span.
    pub fn run_for(&mut self, span: TimeDelta) {
        let end = self.now + span;
        self.step_until(end);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmc_types::RequestKind;

    #[test]
    fn topology_geometry() {
        let t = Topology::chain(4);
        assert_eq!(t.edge_count(), 3);
        assert_eq!(t.hops(0, 3), 3);
        assert_eq!(t.next_shard(1, 3), 2);
        assert_eq!(t.next_shard(2, 0), 1);
        assert_eq!(t.hop_between(1, 2), (1, true));
        assert_eq!(t.hop_between(2, 1), (1, false));
        assert_eq!(t.neighbors(0), vec![1]);
        assert_eq!(t.neighbors(2), vec![1, 3]);

        let s = Topology::star(4);
        assert_eq!(s.edge_count(), 3);
        assert_eq!(s.hops(1, 3), 2);
        assert_eq!(s.hops(0, 3), 1);
        assert_eq!(s.next_shard(1, 3), 0);
        assert_eq!(s.next_shard(0, 3), 3);
        assert_eq!(s.hop_between(0, 3), (2, true));
        assert_eq!(s.hop_between(3, 0), (2, false));
        assert_eq!(s.neighbors(0), vec![1, 2, 3]);
        assert_eq!(s.neighbors(2), vec![0]);
        assert!(format!("{s}").contains("star"));
    }

    #[test]
    #[should_panic(expected = "cubes")]
    fn topology_rejects_too_many_cubes() {
        let _ = Topology::chain(9);
    }

    #[test]
    fn two_cube_stream_round_trips_remote() {
        // A read stream on sharded hosts: cube-first interleave sends
        // every other block remote, and everything still drains.
        let mut sys = ChainSystem::new(SystemConfig::default(), Topology::chain(2));
        sys.apply_workload(&Workload::read_stream(
            8,
            RequestSize::new(128).expect("valid size"),
        ));
        sys.start(Time::ZERO);
        assert!(sys.run_until_idle(TimeDelta::from_ms(1)), "chain wedged");
        let s = sys.host_stats();
        assert_eq!(s.reads_completed, 2 * 8);
        assert_eq!(s.integrity_failures, 0);
        // Both devices served traffic (the stream is split by the shard).
        assert!(sys.device(0).stats().reads_completed > 0);
        assert!(sys.device(1).stats().reads_completed > 0);
    }

    #[test]
    fn remote_reads_pay_the_modeled_hop_adder() {
        // One pinned pointer-chase per target cube, refresh disabled so
        // nothing perturbs the unloaded round trip: the far mean latency
        // must exceed the near one by exactly hops x modeled adder.
        let size = RequestSize::new(128).expect("valid size");
        let mut lat = Vec::new();
        for target in 0..2u8 {
            let mut cfg = SystemConfig::default();
            cfg.mem.refresh.enabled = false;
            let mut sys = ChainSystem::new(cfg, Topology::chain(2));
            let addrs: Vec<hmc_types::Address> = (0..64u64)
                .map(|i| hmc_types::Address::new(i * 4096))
                .collect();
            sys.host_mut(0)
                .apply_workload(&Workload::DependentChain { addrs, size });
            sys.host_mut(0)
                .set_cube_pin(Some(hmc_types::CubeId::new(target)));
            sys.start(Time::ZERO);
            assert!(sys.run_until_idle(TimeDelta::from_ms(10)));
            lat.push(sys.host(0).stats().read_latency.mean());
        }
        let adder = sys_adder(size);
        assert_eq!(
            lat[1].as_ps(),
            lat[0].as_ps() + adder.as_ps(),
            "remote latency must be near latency plus the modeled hop cost"
        );
    }

    fn sys_adder(size: RequestSize) -> TimeDelta {
        ChainSystem::new(SystemConfig::default(), Topology::chain(2)).modeled_hop_adder(size)
    }

    #[test]
    fn star_spoke_to_spoke_crosses_hub() {
        let mut sys = ChainSystem::new(SystemConfig::default(), Topology::star(3));
        // Pin host 1's traffic to cube 2: two hops via the hub.
        let size = RequestSize::new(64).expect("valid size");
        sys.host_mut(1)
            .apply_workload(&Workload::read_stream(4, size));
        sys.host_mut(1)
            .set_cube_pin(Some(hmc_types::CubeId::new(2)));
        sys.start(Time::ZERO);
        assert!(sys.run_until_idle(TimeDelta::from_ms(1)), "star wedged");
        assert_eq!(sys.host(1).stats().reads_completed, 4);
        assert_eq!(sys.device(2).stats().reads_completed, 4);
        assert_eq!(
            sys.device(0).stats().reads_completed,
            0,
            "hub only forwards"
        );
    }

    #[test]
    fn chain_sanitizer_stays_clean_under_load() {
        let mut sys = ChainSystem::new(SystemConfig::default(), Topology::chain(2));
        sys.enable_sanitizer();
        sys.apply_workload(&Workload::full_scale(
            RequestKind::ReadOnly,
            RequestSize::MAX,
        ));
        sys.start(Time::ZERO);
        sys.run_for(TimeDelta::from_us(50));
        sys.stop_generation();
        assert!(sys.run_until_idle(TimeDelta::from_ms(10)), "drain stalled");
        sys.sanitize_check_drained();
        let report = sys.sanitizer_report();
        assert!(report.is_clean(), "{}", report.to_json());
    }

    #[test]
    fn lookahead_is_the_single_flit_floor() {
        let sys = ChainSystem::new(SystemConfig::default(), Topology::chain(3));
        let la = sys.lookahead().expect("multi-cube lookahead");
        assert_eq!(la.edges(), 2);
        let probe = DeviceLink::new(sys.cfg.mem.links, sys.cfg.mem.link_layer);
        assert_eq!(la.global(), probe.transfer_time(FLIT_BYTES));
        assert!(la.global() > TimeDelta::ZERO);
        // Single cube: no edges, no epochs, no table.
        let solo = ChainSystem::new(SystemConfig::default(), Topology::single());
        assert!(solo.lookahead().is_none());
    }
}
