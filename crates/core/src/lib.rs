//! `hmc-core` — the public API of the `hmcsim` HMC characterization
//! laboratory.
//!
//! This crate assembles the substrate crates (device model, host model,
//! thermal and power models, DDR baseline) into a full system and exposes
//! the paper's experiments as reusable functions:
//!
//! * [`system`] — [`System`]: the host + device co-simulation with
//!   deterministic event interleaving.
//! * [`pattern`] — [`AccessPattern`]: the paper's *k*-bank / *k*-vault
//!   targeted access patterns expressed as GUPS address masks.
//! * [`measure`] — warm-up/window measurement runner producing a
//!   [`Measurement`] (bandwidth, MRPS, latency, device activity).
//! * [`experiments`] — one module per paper table/figure: address-mask
//!   sweeps (Fig 6), bandwidth by pattern and size (Figs 7, 8), thermal
//!   and power sweeps (Figs 9–12, Table III), page-policy contrasts
//!   (Fig 13), latency deconstruction and load studies (Figs 14–18), and
//!   the DDR baseline comparison.
//! * [`observe`] — observed runs: merged host+device lifecycle traces
//!   ([`TraceReport`]), exact latency attribution tables, Chrome
//!   trace-event export, and metrics-series JSON.
//! * [`analysis`] — Little's-law readings and saturation-knee detection.
//! * [`sanitize`] — sanitized runs: the Figure 9 bandwidth subset under
//!   the runtime protocol sanitizer, with bit-identity fingerprints.
//! * [`report`] — plain-text table rendering for the benchmark harness.
//!
//! # Quickstart
//!
//! ```
//! use hmc_core::{Measurement, SystemConfig};
//! use hmc_core::measure::{run_measurement, MeasureConfig};
//! use hmc_host::Workload;
//! use hmc_types::{RequestKind, RequestSize};
//!
//! let m: Measurement = run_measurement(
//!     &SystemConfig::default(),
//!     &Workload::full_scale(RequestKind::ReadOnly, RequestSize::new(128)?),
//!     &MeasureConfig::quick(),
//! );
//! assert!(m.bandwidth_gbs > 10.0, "measured {}", m.bandwidth_gbs);
//! # Ok::<(), hmc_types::HmcError>(())
//! ```

pub mod analysis;
pub mod backends;
pub mod builder;
pub mod experiments;
pub mod measure;
pub mod observe;
pub mod pattern;
pub mod report;
pub mod sanitize;
pub mod system;
pub mod topology;

pub use backends::AnyBackend;
pub use builder::SystemBuilder;
pub use measure::{BackendMeasurement, MeasureConfig, Measurement};
pub use observe::{ObservedChain, ObservedStream, ObservedWindow, TraceReport};
pub use pattern::AccessPattern;
pub use report::{JsonReport, Table};
pub use sanitize::{SanitizedPoint, SanitizedRun};
pub use system::{RecoveryRecord, System, SystemConfig};
pub use topology::{Arrangement, ChainSystem, Topology};

// Re-export the substrate crates so downstream users need only hmc-core.
pub use ddr_baseline;
pub use hmc_host;
pub use hmc_mem;
pub use hmc_power;
pub use hmc_thermal;
pub use hmc_types;
pub use mem_backend;
pub use sim_engine;
