//! Plain-text table rendering and the unified JSON-export surface of the
//! benchmark harness: each experiment prints the same rows/series its
//! paper table or figure reports, and every exportable artifact implements
//! [`JsonReport`].

use std::fmt;
use std::io;
use std::path::Path;

use sim_engine::{EpochProfiler, MetricsSampler, SanitizerReport};

/// A JSON-exportable artifact.
///
/// The harness historically grew four bespoke exporters — the Chrome
/// trace (`TraceReport::chrome_json`), the gauge series
/// ([`crate::observe::metrics_json`]), the sanitizer outcome
/// (`SanitizerReport::to_json`), and the fault characterization
/// ([`crate::experiments::faults::scenarios_json`]) — each wired to its
/// own `--*-json` flag. They all implement this trait now, so the `repro`
/// subcommands share one `--json PATH` path and tests can treat any
/// artifact uniformly.
pub trait JsonReport {
    /// Short artifact-kind tag (`"trace"`, `"metrics"`, `"sanitizer"`,
    /// `"faults"`, `"chain"`, `"profile"`), embeddable in file names and
    /// manifests.
    fn kind(&self) -> &'static str;

    /// Renders the artifact as a self-contained JSON document.
    fn json(&self) -> String;

    /// Writes [`json`](JsonReport::json) to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    fn write_json(&self, path: &Path) -> io::Result<()> {
        std::fs::write(path, self.json())
    }
}

impl JsonReport for SanitizerReport {
    fn kind(&self) -> &'static str {
        "sanitizer"
    }

    fn json(&self) -> String {
        self.to_json()
    }
}

impl JsonReport for MetricsSampler {
    fn kind(&self) -> &'static str {
        "metrics"
    }

    fn json(&self) -> String {
        crate::observe::metrics_json(self)
    }
}

impl JsonReport for EpochProfiler {
    fn kind(&self) -> &'static str {
        "profile"
    }

    fn json(&self) -> String {
        self.to_json()
    }
}

/// A simple aligned text table.
///
/// ```
/// use hmc_core::report::Table;
///
/// let mut t = Table::new("Demo", &["pattern", "GB/s"]);
/// t.row(vec!["16 vaults".into(), "21.2".into()]);
/// let s = t.to_string();
/// assert!(s.contains("16 vaults"));
/// assert!(s.contains("GB/s"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match the header width.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(cells);
        self
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Cell access for programmatic checks.
    pub fn cell(&self, row: usize, col: usize) -> &str {
        &self.rows[row][col]
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        writeln!(f, "## {}", self.title)?;
        let header: Vec<String> = self
            .headers
            .iter()
            .zip(&widths)
            .map(|(h, w)| format!("{h:>w$}"))
            .collect();
        writeln!(f, "{}", header.join("  "))?;
        let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        writeln!(f, "{}", rule.join("  "))?;
        for row in &self.rows {
            let cells: Vec<String> = row
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect();
            writeln!(f, "{}", cells.join("  "))?;
        }
        Ok(())
    }
}

/// Formats a float with one decimal.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

/// Formats a float with two decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats nanoseconds.
pub fn ns(x: f64) -> String {
    format!("{x:.0} ns")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("T", &["a", "long-header"]);
        t.row(vec!["xxxxxx".into(), "1".into()]);
        t.row(vec!["y".into(), "2".into()]);
        let s = t.to_string();
        assert!(s.starts_with("## T\n"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
        // All data lines have the same width.
        assert_eq!(lines[2].len(), lines[3].len());
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        assert_eq!(t.cell(0, 0), "xxxxxx");
        assert_eq!(t.title(), "T");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        Table::new("T", &["a", "b"]).row(vec!["only-one".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(f1(1.26), "1.3");
        assert_eq!(f2(1.264), "1.26");
        assert_eq!(ns(711.4), "711 ns");
    }
}
