//! Sanitized experiment runs: the Figure 9 bandwidth subset executed with
//! the protocol sanitizer armed.
//!
//! The sanitizer is pure observation — it never changes scheduling — so a
//! sanitized sweep must be **bit-identical** to the unsanitized one while
//! additionally reporting every invariant check it performed. `repro
//! --sanitize` runs [`fig9_bandwidth_subset`] both ways, verifies the
//! figures match to the bit, and prints (or exports as JSON) the merged
//! [`SanitizerReport`].

use hmc_host::Workload;
use hmc_types::{RequestKind, RequestSize};
use sim_engine::SanitizerReport;

use crate::builder::SystemBuilder;
use crate::measure::{run_measurement_built, MeasureConfig};
use crate::pattern::AccessPattern;
use crate::report::Table;
use crate::system::SystemConfig;

/// One pattern point of the sanitized bandwidth sweep.
#[derive(Debug, Clone)]
pub struct SanitizedPoint {
    /// The access pattern of this point.
    pub pattern: AccessPattern,
    /// Counted read bandwidth, GB/s.
    pub bandwidth_gbs: f64,
    /// Completed requests, millions per second.
    pub mrps: f64,
}

/// A full sanitized (or plain) sweep: the figures plus the merged
/// sanitizer outcome across every point's run.
#[derive(Debug, Clone)]
pub struct SanitizedRun {
    /// One point per [`AccessPattern::paper_axis`] entry.
    pub points: Vec<SanitizedPoint>,
    /// Merged sanitizer report (all-zero checks when run unsanitized).
    pub report: SanitizerReport,
}

impl SanitizedRun {
    /// The figures as a stable fingerprint: every f64 by exact bit
    /// pattern, so "bit-identical" is checkable without float tolerance.
    pub fn fingerprint(&self) -> Vec<u64> {
        self.points
            .iter()
            .flat_map(|p| [p.bandwidth_gbs.to_bits(), p.mrps.to_bits()])
            .collect()
    }

    /// Renders the sweep as the harness's text table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Figure 9 subset: ro 128 B bandwidth by pattern (sanitized)",
            &["pattern", "GB/s", "MRPS"],
        );
        for p in &self.points {
            t.row(vec![
                p.pattern.to_string(),
                format!("{:.2}", p.bandwidth_gbs),
                format!("{:.2}", p.mrps),
            ]);
        }
        t
    }
}

/// Runs the Figure 9 bandwidth subset — read-only 128 B traffic over the
/// paper's pattern axis — with the sanitizer armed (or not, for the
/// bit-identity baseline). Each pattern point runs on a fresh system;
/// reports merge in axis order.
///
/// # Panics
///
/// Panics if a paper-axis pattern is invalid for the configured geometry
/// (cannot happen with the default spec).
pub fn fig9_bandwidth_subset(
    cfg: &SystemConfig,
    mc: &MeasureConfig,
    sanitize: bool,
) -> SanitizedRun {
    let mut points = Vec::new();
    let mut report = SanitizerReport::default();
    for pattern in AccessPattern::paper_axis() {
        let mask = pattern
            .mask(cfg.mem.mapping, &cfg.mem.spec)
            .expect("paper axis patterns fit the default geometry");
        let workload = Workload::masked(RequestKind::ReadOnly, RequestSize::MAX, mask);
        let mut builder = SystemBuilder::new(cfg.clone());
        if sanitize {
            builder = builder.sanitizer();
        }
        let (m, sys) = run_measurement_built(builder.build(), &workload, mc);
        report.merge(&sys.sanitizer_report());
        points.push(SanitizedPoint {
            pattern,
            bandwidth_gbs: m.bandwidth_gbs,
            mrps: m.mrps,
        });
    }
    SanitizedRun { points, report }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmc_types::TimeDelta;

    fn tiny() -> MeasureConfig {
        MeasureConfig {
            warmup: TimeDelta::from_us(20),
            window: TimeDelta::from_us(60),
        }
    }

    #[test]
    fn sanitized_sweep_is_clean_and_counts_checks() {
        let run = fig9_bandwidth_subset(&SystemConfig::default(), &tiny(), true);
        assert_eq!(run.points.len(), 9);
        assert!(run.report.is_clean(), "{}", run.report);
        assert!(run.report.total_checks() > 0, "sanitizer actually ran");
        assert!(run.report.injected() > 0);
        let t = run.table();
        assert_eq!(t.len(), 9);
    }

    #[test]
    fn sanitizer_does_not_perturb_figures() {
        let plain = fig9_bandwidth_subset(&SystemConfig::default(), &tiny(), false);
        let sane = fig9_bandwidth_subset(&SystemConfig::default(), &tiny(), true);
        assert_eq!(
            plain.fingerprint(),
            sane.fingerprint(),
            "sanitized run must be bit-identical"
        );
        assert_eq!(
            plain.report.total_checks(),
            0,
            "disabled sanitizer is inert"
        );
    }
}
