//! Observed runs: lifecycle-trace reports, latency attribution, and
//! metrics export.
//!
//! The host and device each own a [`Tracer`](sim_engine::Tracer); this
//! module merges the two into a single [`TraceReport`] whose per-stage
//! histograms telescope — for a drained read stream the stage spans sum
//! *exactly* (in integer picoseconds) to the end-to-end read latency, so
//! the Figure 14 breakdown is an attribution, not an estimate.
//!
//! Multi-cube chains add a third tracer per cube (the hop tracer, stage
//! [`Stage::HopLink`]) covering cube-to-cube traversal, so the same
//! zero-residue telescoping holds end-to-end across a chain.
//! [`TraceReport::from_chain`] merges all `3 × cubes` tracers, and
//! [`run_chain_observed`] is the chain counterpart of
//! [`run_stream_observed`] / [`run_window_observed`], additionally
//! capturing the merged cube-prefixed gauge stream and the deterministic
//! PDES epoch profile.

use std::fmt::Write as _;

use hmc_host::Workload;
use hmc_types::trace::Stage;
use hmc_types::{Time, TimeDelta};
use mem_backend::{BackendKind, MemoryBackend};
use sim_engine::stats::Histogram;
use sim_engine::trace::{chrome_trace_events, chrome_trace_json, TraceEvent};
use sim_engine::{EpochProfiler, MetricsSampler};

use crate::builder::SystemBuilder;
use crate::report::{f1, Table};
use crate::system::{System, SystemConfig};
use crate::topology::{ChainSystem, Topology};

/// The merged host + device lifecycle trace of one run.
#[derive(Debug, Clone)]
pub struct TraceReport {
    stages: Vec<Histogram>,
    events: Vec<TraceEvent>,
}

impl TraceReport {
    /// Merges the host and device tracers of a finished (or paused)
    /// system into one report (any backend: the device tracer comes
    /// through the [`MemoryBackend`] surface).
    pub fn from_system<B: MemoryBackend>(sys: &System<B>) -> Self {
        let mut stages: Vec<Histogram> = sys.host().tracer().stage_histograms().to_vec();
        for (mine, theirs) in stages
            .iter_mut()
            .zip(sys.device().tracer().stage_histograms())
        {
            mine.merge(theirs);
        }
        let mut events: Vec<TraceEvent> = sys.host().tracer().events().to_vec();
        events.extend_from_slice(sys.device().tracer().events());
        TraceReport { stages, events }
    }

    /// Merges every tracer of a chain — each cube's host and device
    /// tracer plus each shard's hop tracer (stage
    /// [`Stage::HopLink`]) — into one report. On a single-cube chain the
    /// hop tracers are empty and this reduces to
    /// [`from_system`](TraceReport::from_system) semantics.
    pub fn from_chain(sys: &ChainSystem) -> Self {
        let mut stages = vec![Histogram::new(); Stage::COUNT];
        let mut events: Vec<TraceEvent> = Vec::new();
        for s in 0..sys.cubes() {
            for t in [
                sys.host(s).tracer(),
                sys.device(s).tracer(),
                sys.hop_tracer(s),
            ] {
                for (mine, theirs) in stages.iter_mut().zip(t.stage_histograms()) {
                    mine.merge(theirs);
                }
                events.extend_from_slice(t.events());
            }
        }
        TraceReport { stages, events }
    }

    /// The span histogram of one stage.
    pub fn stage(&self, stage: Stage) -> &Histogram {
        &self.stages[stage.index()]
    }

    /// The merged sampled event log.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Sum of all stage spans, averaged per request (`n` requests). For a
    /// drained read stream with `n` completed reads this equals the mean
    /// end-to-end read latency exactly.
    pub fn stage_sum_ns(&self, n: u64) -> f64 {
        let total: u64 = self.stages.iter().map(|h| h.total().as_ps()).sum();
        total as f64 / n.max(1) as f64 / 1_000.0
    }

    /// Renders the latency-attribution table: one row per populated
    /// stage with its count, mean span, per-request contribution, and
    /// share of the end-to-end mean, followed by the telescoping check
    /// rows (sum of stages vs. measured end-to-end).
    pub fn attribution_table(&self, title: impl Into<String>, end_to_end: &Histogram) -> Table {
        let mut t = Table::new(
            title,
            &["stage", "count", "mean ns", "per-req ns", "share %"],
        );
        let n = end_to_end.count().max(1) as f64;
        let e2e_ns = end_to_end.mean().as_ns_f64();
        let mut sum_ns = 0.0;
        for s in Stage::ALL {
            let h = &self.stages[s.index()];
            if h.is_empty() {
                continue;
            }
            let per_req = h.total().as_ns_f64() / n;
            sum_ns += per_req;
            let share = if e2e_ns > 0.0 {
                per_req / e2e_ns * 100.0
            } else {
                0.0
            };
            t.row(vec![
                s.name().to_string(),
                h.count().to_string(),
                f1(h.mean().as_ns_f64()),
                f1(per_req),
                f1(share),
            ]);
        }
        let delta = if e2e_ns > 0.0 {
            (sum_ns - e2e_ns) / e2e_ns * 100.0
        } else {
            0.0
        };
        t.row(vec![
            "sum of stages".to_string(),
            String::new(),
            String::new(),
            f1(sum_ns),
            String::new(),
        ]);
        t.row(vec![
            "end-to-end mean".to_string(),
            end_to_end.count().to_string(),
            String::new(),
            f1(e2e_ns),
            f1(100.0),
        ]);
        t.row(vec![
            "attribution delta".to_string(),
            String::new(),
            String::new(),
            f1(sum_ns - e2e_ns),
            f1(delta),
        ]);
        t
    }

    /// The event log as Chrome trace-event JSON (Perfetto-loadable).
    pub fn chrome_json(&self) -> String {
        chrome_trace_json(&self.events, &Stage::NAMES)
    }

    /// Like [`chrome_json`](TraceReport::chrome_json), with one extra
    /// Perfetto track per PDES shard carrying its epoch spans (process 1,
    /// thread = shard index; the request spans stay on process 0). Each
    /// epoch event's `args` records the events processed and envelopes
    /// sent inside that window.
    pub fn chrome_json_with_profile(&self, profile: Option<&EpochProfiler>) -> String {
        let mut out = String::with_capacity(64 + self.events.len() * 96);
        out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
        chrome_trace_events(&self.events, &Stage::NAMES, &mut out);
        if let Some(p) = profile {
            if !out.ends_with('[') {
                out.push(',');
            }
            out.push_str(
                "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\
                 \"args\":{\"name\":\"pdes shards\"}}",
            );
            for (s, sp) in p.shards().iter().enumerate() {
                write!(
                    out,
                    ",{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\
                     \"tid\":{s},\"args\":{{\"name\":\"shard {s}\"}}}}"
                )
                .expect("writing to a String cannot fail");
                for e in &sp.spans {
                    write!(
                        out,
                        ",{{\"name\":\"epoch\",\"cat\":\"pdes\",\"ph\":\"X\",\
                         \"ts\":{:.6},\"dur\":{:.6},\"pid\":1,\"tid\":{s},\
                         \"args\":{{\"events\":{},\"sent\":{}}}}}",
                        e.start.as_ps() as f64 / 1e6,
                        e.end.since(e.start).as_ps() as f64 / 1e6,
                        e.events,
                        e.sent,
                    )
                    .expect("writing to a String cannot fail");
                }
            }
        }
        out.push_str("]}\n");
        out
    }
}

impl crate::report::JsonReport for TraceReport {
    fn kind(&self) -> &'static str {
        "trace"
    }

    fn json(&self) -> String {
        self.chrome_json()
    }
}

/// A drained stream run with tracing enabled.
#[derive(Debug, Clone)]
pub struct ObservedStream {
    /// End-to-end read-latency histogram.
    pub latency: Histogram,
    /// Data-integrity failures (must be zero).
    pub integrity_failures: u64,
    /// The merged lifecycle trace.
    pub report: TraceReport,
}

/// Runs a [`Workload::Stream`] to completion with lifecycle tracing on.
/// `sample_every` controls event-log retention (1 keeps every request).
///
/// # Panics
///
/// Panics if the stream does not drain within 100 ms of simulated time.
pub fn run_stream_observed(
    cfg: &SystemConfig,
    workload: &Workload,
    sample_every: u64,
) -> ObservedStream {
    let mut sys = SystemBuilder::new(cfg.clone())
        .tracing(sample_every)
        .build();
    sys.host_mut().apply_workload(workload);
    sys.host_mut().start(Time::ZERO);
    let drained = sys.run_until_idle(TimeDelta::from_ms(100));
    assert!(
        drained,
        "observed stream did not drain: {} outstanding at t={} ns",
        sys.host().outstanding(),
        sys.now().as_ns_f64(),
    );
    let stats = sys.host().stats();
    ObservedStream {
        latency: stats.read_latency.clone(),
        integrity_failures: stats.integrity_failures,
        report: TraceReport::from_system(&sys),
    }
}

/// A fixed-span continuous run with tracing and gauge sampling on.
#[derive(Debug, Clone)]
pub struct ObservedWindow {
    /// End-to-end read-latency histogram over the run.
    pub latency: Histogram,
    /// The merged lifecycle trace.
    pub report: TraceReport,
    /// The periodic gauge sampler with all recorded series.
    pub metrics: MetricsSampler,
}

/// Runs a continuous workload for `span` with lifecycle tracing (one
/// request in `sample_every` kept in the event log) and periodic gauge
/// sampling every `metrics_period`. This is what `repro sweep trace` and
/// `repro sweep metrics` capture.
pub fn run_window_observed(
    cfg: &SystemConfig,
    workload: &Workload,
    span: TimeDelta,
    sample_every: u64,
    metrics_period: TimeDelta,
) -> ObservedWindow {
    let sys = SystemBuilder::new(cfg.clone())
        .tracing(sample_every)
        .metrics(metrics_period)
        .build();
    observe_window_on(sys, workload, span)
}

/// [`run_window_observed`] against a selected backend preset: the same
/// traced + gauge-sampled window, built through
/// [`SystemBuilder::backend`] so any technology can be captured.
pub fn run_window_observed_backend(
    cfg: &SystemConfig,
    kind: BackendKind,
    workload: &Workload,
    span: TimeDelta,
    sample_every: u64,
    metrics_period: TimeDelta,
) -> ObservedWindow {
    let sys = SystemBuilder::new(cfg.clone())
        .backend(kind)
        .tracing(sample_every)
        .metrics(metrics_period)
        .build_any();
    observe_window_on(sys, workload, span)
}

/// The shared window body: run the workload for `span` and package the
/// merged trace, gauge stream, and latency histogram.
fn observe_window_on<B: MemoryBackend>(
    mut sys: System<B>,
    workload: &Workload,
    span: TimeDelta,
) -> ObservedWindow {
    sys.host_mut().apply_workload(workload);
    sys.host_mut().start(Time::ZERO);
    sys.run_for(span);
    let metrics = sys.metrics().expect("metrics were enabled").clone();
    ObservedWindow {
        latency: sys.host().stats().read_latency.clone(),
        report: TraceReport::from_system(&sys),
        metrics,
    }
}

/// A fully-observed chain run: merged lifecycle trace (host + device +
/// hop tracers of every cube), merged cube-prefixed gauge stream, and the
/// deterministic PDES epoch profile.
#[derive(Debug, Clone)]
pub struct ObservedChain {
    /// End-to-end read-latency histogram aggregated over all cubes.
    pub latency: Histogram,
    /// Data-integrity failures (must be zero).
    pub integrity_failures: u64,
    /// The merged lifecycle trace across every tracer of the chain.
    pub report: TraceReport,
    /// Merged gauge sampler with `cube{i}.`-prefixed series, if metrics
    /// were requested (`metrics_period` was `Some`).
    pub metrics: Option<MetricsSampler>,
    /// The deterministic per-shard epoch profile.
    pub profile: EpochProfiler,
}

/// Runs a workload on a chain with full observability armed: lifecycle
/// tracing (one request in `sample_every` kept in the event log), the
/// PDES epoch profiler, and — when `metrics_period` is `Some` — per-cube
/// gauge sampling merged into one cube-prefixed stream.
///
/// With `span = None` the workload runs to completion (a drained
/// stream); with `span = Some(d)` it runs continuously for `d`.
/// `shards > 1` pumps epochs on that many worker threads — every
/// artifact except the wall-clock pool utilization is bit-identical at
/// any setting.
///
/// # Panics
///
/// Panics if `span` is `None` and the stream does not drain within
/// 100 ms of simulated time.
pub fn run_chain_observed(
    cfg: &SystemConfig,
    topo: Topology,
    workload: &Workload,
    span: Option<TimeDelta>,
    sample_every: u64,
    metrics_period: Option<TimeDelta>,
    shards: usize,
) -> ObservedChain {
    let mut b = SystemBuilder::new(cfg.clone())
        .topology(topo)
        .tracing(sample_every)
        .epoch_profiler()
        .parallel_shards(shards);
    if let Some(period) = metrics_period {
        b = b.metrics(period);
    }
    let mut sys = b.build_chain();
    sys.apply_workload(workload);
    sys.start(Time::ZERO);
    match span {
        Some(d) => sys.run_for(d),
        None => {
            let drained = sys.run_until_idle(TimeDelta::from_ms(100));
            assert!(
                drained,
                "observed chain stream did not drain by t={} ns",
                sys.now().as_ns_f64(),
            );
        }
    }
    let stats = sys.host_stats();
    ObservedChain {
        latency: stats.read_latency.clone(),
        integrity_failures: stats.integrity_failures,
        report: TraceReport::from_chain(&sys),
        metrics: sys.merged_metrics(),
        profile: sys
            .epoch_profile()
            .expect("epoch profiler was enabled")
            .clone(),
    }
}

/// Renders a metrics sampler as JSON: `{"period_ps": ..., "series":
/// [{"name": ..., "points": [[t_ps, value], ...]}, ...]}`.
pub fn metrics_json(sampler: &MetricsSampler) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    write!(
        out,
        "{{\"period_ps\":{},\"series\":[",
        sampler.period().as_ps()
    )
    .expect("writing to a String cannot fail");
    for (i, s) in sampler.series().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write!(out, "{{\"name\":\"{}\",\"points\":[", s.name())
            .expect("writing to a String cannot fail");
        for (j, (t, v)) in s.points().iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            write!(out, "[{},{}]", t.as_ps(), v).expect("writing to a String cannot fail");
        }
        out.push_str("]}");
    }
    out.push_str("]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmc_types::{RequestKind, RequestSize};

    #[test]
    fn read_stream_stage_spans_sum_exactly_to_end_to_end() {
        let obs = run_stream_observed(
            &SystemConfig::default(),
            &Workload::read_stream(16, RequestSize::new(64).unwrap()),
            1,
        );
        assert_eq!(obs.latency.count(), 16);
        assert_eq!(obs.integrity_failures, 0);
        // Every read-path stage saw all 16 requests; write stages none.
        for s in Stage::read_path() {
            assert_eq!(obs.report.stage(s).count(), 16, "stage {s}");
        }
        assert!(obs.report.stage(Stage::WriteStall).is_empty());
        assert!(obs.report.stage(Stage::WriteDrain).is_empty());
        // Telescoping: stage spans sum to end-to-end latency exactly.
        let stage_sum_ps: u64 = Stage::ALL
            .iter()
            .map(|s| obs.report.stage(*s).total().as_ps())
            .sum();
        assert_eq!(
            stage_sum_ps,
            obs.latency.total().as_ps(),
            "stage attribution must telescope with zero residue"
        );
    }

    #[test]
    fn attribution_table_reports_near_zero_delta() {
        let obs = run_stream_observed(
            &SystemConfig::default(),
            &Workload::read_stream(8, RequestSize::MAX),
            1,
        );
        let t = obs
            .report
            .attribution_table("Fig 14 breakdown", &obs.latency);
        let rendered = t.to_string();
        assert!(rendered.contains("dram"));
        assert!(rendered.contains("sum of stages"));
        // Last row is the attribution delta; exact telescoping makes the
        // per-request residue 0.0 ns.
        assert_eq!(t.cell(t.len() - 1, 3), "0.0");
    }

    #[test]
    fn untraced_system_produces_an_empty_report() {
        let mut sys = System::new(SystemConfig::default());
        sys.host_mut()
            .apply_workload(&Workload::read_stream(4, RequestSize::MAX));
        sys.host_mut().start(Time::ZERO);
        assert!(sys.run_until_idle(TimeDelta::from_ms(100)));
        let report = TraceReport::from_system(&sys);
        assert!(report.events().is_empty());
        let total: u64 = Stage::ALL.iter().map(|s| report.stage(*s).count()).sum();
        assert_eq!(total, 0, "disabled tracers must record nothing");
    }

    #[test]
    fn noisy_links_surface_the_retry_stage_in_attribution() {
        let mut cfg = SystemConfig::default();
        cfg.mem.link_layer.bit_error_rate = 1e-4;
        let obs = run_stream_observed(&cfg, &Workload::read_stream(64, RequestSize::MAX), 1);
        let t = obs.report.attribution_table("noisy links", &obs.latency);
        let rendered = t.to_string();
        assert!(rendered.contains("link_retry"), "{rendered}");
        // Telescoping attribution stays exact even when retries reshuffle
        // the stage boundaries.
        assert_eq!(t.cell(t.len() - 1, 3), "0.0");
    }

    #[test]
    fn chain_attribution_telescopes_with_zero_residue() {
        // The hop_link stage closes the chain attribution gap: for 1-,
        // 2-, and 4-cube chains the stage spans must sum exactly (in
        // integer picoseconds) to the measured end-to-end latency.
        for cubes in [1u8, 2, 4] {
            let obs = run_chain_observed(
                &SystemConfig::default(),
                Topology::chain(cubes),
                &Workload::read_stream(32, RequestSize::new(64).unwrap()),
                None,
                1,
                None,
                1,
            );
            // Each cube's sharded host issues the full stream.
            assert_eq!(obs.latency.count(), 32 * u64::from(cubes), "{cubes} cubes");
            assert_eq!(obs.integrity_failures, 0);
            let stage_sum_ps: u64 = Stage::ALL
                .iter()
                .map(|s| obs.report.stage(*s).total().as_ps())
                .sum();
            assert_eq!(
                stage_sum_ps,
                obs.latency.total().as_ps(),
                "chain attribution must telescope exactly ({cubes} cubes)"
            );
            let hops = obs.report.stage(Stage::HopLink).count();
            if cubes == 1 {
                assert_eq!(hops, 0, "no hop spans on a single cube");
            } else {
                assert!(hops > 0, "{cubes}-cube chain must record hop spans");
            }
            let t = obs
                .report
                .attribution_table("chain breakdown", &obs.latency);
            assert_eq!(t.cell(t.len() - 1, 3), "0.0", "{cubes} cubes");
            if cubes > 1 {
                assert!(t.to_string().contains("hop_link"));
            }
        }
    }

    #[test]
    fn chain_export_carries_one_epoch_track_per_shard() {
        let obs = run_chain_observed(
            &SystemConfig::default(),
            Topology::chain(4),
            &Workload::read_stream(64, RequestSize::new(64).unwrap()),
            None,
            8,
            None,
            4,
        );
        assert_eq!(obs.profile.shards().len(), 4);
        assert!(obs.profile.epochs() > 0, "multi-cube runs pump epochs");
        let json = obs.report.chrome_json_with_profile(Some(&obs.profile));
        assert!(json.starts_with("{\"displayTimeUnit\""));
        for s in 0..4 {
            assert!(
                json.contains(&format!("\"args\":{{\"name\":\"shard {s}\"}}")),
                "missing thread_name track for shard {s}"
            );
        }
        assert!(json.contains("\"name\":\"epoch\""));
        assert!(json.contains("\"cat\":\"pdes\""));
        // Profile JSON is a valid artifact too.
        let pjson = obs.profile.to_json();
        assert!(pjson.contains("\"window_utilization\""));
        assert!(pjson.contains("\"parked_ps\""));
    }

    #[test]
    fn chain_window_capture_merges_cube_prefixed_gauges() {
        let obs = run_chain_observed(
            &SystemConfig::default(),
            Topology::chain(2),
            &Workload::full_scale(RequestKind::ReadOnly, RequestSize::new(64).unwrap()),
            Some(TimeDelta::from_us(20)),
            8,
            Some(TimeDelta::from_us(1)),
            1,
        );
        let m = obs.metrics.expect("metrics were enabled");
        for name in [
            "cube0.host.outstanding",
            "cube0.device.vault_queued",
            "cube0.device.link_stalls",
            "cube0.device.credits_leaked",
            "cube0.hop.edge0.tx_backlog",
            "cube0.chain.mailbox",
            "cube1.device.busy_banks",
            "cube1.hop.edge0.credits",
        ] {
            let s = m.get(name).unwrap_or_else(|| panic!("{name}"));
            assert!(s.len() >= 15, "{name} has {} samples", s.len());
        }
        let json = metrics_json(&m);
        assert!(json.contains("cube1.hop.edge0.rx_queued"));
    }

    #[test]
    fn window_capture_exports_valid_trace_and_metrics() {
        let obs = run_window_observed(
            &SystemConfig::default(),
            &Workload::full_scale(RequestKind::ReadModifyWrite, RequestSize::new(64).unwrap()),
            TimeDelta::from_us(20),
            8,
            TimeDelta::from_us(1),
        );
        let json = obs.report.chrome_json();
        assert!(json.starts_with("{\"displayTimeUnit\""));
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"name\":\"dram\""));
        // ~20 samples of each gauge.
        for name in [
            "host.outstanding",
            "host.tx_queue",
            "device.vault_queued",
            "device.busy_banks",
            "device.ingress_credits",
            "device.link_retries",
        ] {
            let s = obs.metrics.get(name).unwrap_or_else(|| panic!("{name}"));
            assert!(s.len() >= 15, "{name} has {} samples", s.len());
        }
        let mjson = metrics_json(&obs.metrics);
        assert!(mjson.contains("\"period_ps\":1000000"));
        assert!(mjson.contains("\"series\""));
        assert!(mjson.contains("device.busy_banks"));
    }
}
