//! Observed runs: lifecycle-trace reports, latency attribution, and
//! metrics export.
//!
//! The host and device each own a [`Tracer`](sim_engine::Tracer); this
//! module merges the two into a single [`TraceReport`] whose per-stage
//! histograms telescope — for a drained read stream the stage spans sum
//! *exactly* (in integer picoseconds) to the end-to-end read latency, so
//! the Figure 14 breakdown is an attribution, not an estimate.

use hmc_host::Workload;
use hmc_types::trace::Stage;
use hmc_types::{Time, TimeDelta};
use sim_engine::stats::Histogram;
use sim_engine::trace::{chrome_trace_json, TraceEvent};
use sim_engine::MetricsSampler;

use crate::builder::SystemBuilder;
use crate::report::{f1, Table};
use crate::system::{System, SystemConfig};

/// The merged host + device lifecycle trace of one run.
#[derive(Debug, Clone)]
pub struct TraceReport {
    stages: Vec<Histogram>,
    events: Vec<TraceEvent>,
}

impl TraceReport {
    /// Merges the host and device tracers of a finished (or paused)
    /// system into one report.
    pub fn from_system(sys: &System) -> Self {
        let mut stages: Vec<Histogram> = sys.host().tracer().stage_histograms().to_vec();
        for (mine, theirs) in stages
            .iter_mut()
            .zip(sys.device().tracer().stage_histograms())
        {
            mine.merge(theirs);
        }
        let mut events: Vec<TraceEvent> = sys.host().tracer().events().to_vec();
        events.extend_from_slice(sys.device().tracer().events());
        TraceReport { stages, events }
    }

    /// The span histogram of one stage.
    pub fn stage(&self, stage: Stage) -> &Histogram {
        &self.stages[stage.index()]
    }

    /// The merged sampled event log.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Sum of all stage spans, averaged per request (`n` requests). For a
    /// drained read stream with `n` completed reads this equals the mean
    /// end-to-end read latency exactly.
    pub fn stage_sum_ns(&self, n: u64) -> f64 {
        let total: u64 = self.stages.iter().map(|h| h.total().as_ps()).sum();
        total as f64 / n.max(1) as f64 / 1_000.0
    }

    /// Renders the latency-attribution table: one row per populated
    /// stage with its count, mean span, per-request contribution, and
    /// share of the end-to-end mean, followed by the telescoping check
    /// rows (sum of stages vs. measured end-to-end).
    pub fn attribution_table(&self, title: impl Into<String>, end_to_end: &Histogram) -> Table {
        let mut t = Table::new(
            title,
            &["stage", "count", "mean ns", "per-req ns", "share %"],
        );
        let n = end_to_end.count().max(1) as f64;
        let e2e_ns = end_to_end.mean().as_ns_f64();
        let mut sum_ns = 0.0;
        for s in Stage::ALL {
            let h = &self.stages[s.index()];
            if h.is_empty() {
                continue;
            }
            let per_req = h.total().as_ns_f64() / n;
            sum_ns += per_req;
            let share = if e2e_ns > 0.0 {
                per_req / e2e_ns * 100.0
            } else {
                0.0
            };
            t.row(vec![
                s.name().to_string(),
                h.count().to_string(),
                f1(h.mean().as_ns_f64()),
                f1(per_req),
                f1(share),
            ]);
        }
        let delta = if e2e_ns > 0.0 {
            (sum_ns - e2e_ns) / e2e_ns * 100.0
        } else {
            0.0
        };
        t.row(vec![
            "sum of stages".to_string(),
            String::new(),
            String::new(),
            f1(sum_ns),
            String::new(),
        ]);
        t.row(vec![
            "end-to-end mean".to_string(),
            end_to_end.count().to_string(),
            String::new(),
            f1(e2e_ns),
            f1(100.0),
        ]);
        t.row(vec![
            "attribution delta".to_string(),
            String::new(),
            String::new(),
            f1(sum_ns - e2e_ns),
            f1(delta),
        ]);
        t
    }

    /// The event log as Chrome trace-event JSON (Perfetto-loadable).
    pub fn chrome_json(&self) -> String {
        chrome_trace_json(&self.events, &Stage::NAMES)
    }
}

impl crate::report::JsonReport for TraceReport {
    fn kind(&self) -> &'static str {
        "trace"
    }

    fn json(&self) -> String {
        self.chrome_json()
    }
}

/// A drained stream run with tracing enabled.
#[derive(Debug, Clone)]
pub struct ObservedStream {
    /// End-to-end read-latency histogram.
    pub latency: Histogram,
    /// Data-integrity failures (must be zero).
    pub integrity_failures: u64,
    /// The merged lifecycle trace.
    pub report: TraceReport,
}

/// Runs a [`Workload::Stream`] to completion with lifecycle tracing on.
/// `sample_every` controls event-log retention (1 keeps every request).
///
/// # Panics
///
/// Panics if the stream does not drain within 100 ms of simulated time.
pub fn run_stream_observed(
    cfg: &SystemConfig,
    workload: &Workload,
    sample_every: u64,
) -> ObservedStream {
    let mut sys = SystemBuilder::new(cfg.clone())
        .tracing(sample_every)
        .build();
    sys.host_mut().apply_workload(workload);
    sys.host_mut().start(Time::ZERO);
    let drained = sys.run_until_idle(TimeDelta::from_ms(100));
    assert!(
        drained,
        "observed stream did not drain: {} outstanding at t={} ns",
        sys.host().outstanding(),
        sys.now().as_ns_f64(),
    );
    let stats = sys.host().stats();
    ObservedStream {
        latency: stats.read_latency.clone(),
        integrity_failures: stats.integrity_failures,
        report: TraceReport::from_system(&sys),
    }
}

/// A fixed-span continuous run with tracing and gauge sampling on.
#[derive(Debug, Clone)]
pub struct ObservedWindow {
    /// End-to-end read-latency histogram over the run.
    pub latency: Histogram,
    /// The merged lifecycle trace.
    pub report: TraceReport,
    /// The periodic gauge sampler with all recorded series.
    pub metrics: MetricsSampler,
}

/// Runs a continuous workload for `span` with lifecycle tracing (one
/// request in `sample_every` kept in the event log) and periodic gauge
/// sampling every `metrics_period`. This is what `repro sweep trace` and
/// `repro sweep metrics` capture.
pub fn run_window_observed(
    cfg: &SystemConfig,
    workload: &Workload,
    span: TimeDelta,
    sample_every: u64,
    metrics_period: TimeDelta,
) -> ObservedWindow {
    let mut sys = SystemBuilder::new(cfg.clone())
        .tracing(sample_every)
        .metrics(metrics_period)
        .build();
    sys.host_mut().apply_workload(workload);
    sys.host_mut().start(Time::ZERO);
    sys.run_for(span);
    let metrics = sys.metrics().expect("metrics were enabled").clone();
    ObservedWindow {
        latency: sys.host().stats().read_latency.clone(),
        report: TraceReport::from_system(&sys),
        metrics,
    }
}

/// Renders a metrics sampler as JSON: `{"period_ps": ..., "series":
/// [{"name": ..., "points": [[t_ps, value], ...]}, ...]}`.
pub fn metrics_json(sampler: &MetricsSampler) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    write!(
        out,
        "{{\"period_ps\":{},\"series\":[",
        sampler.period().as_ps()
    )
    .expect("writing to a String cannot fail");
    for (i, s) in sampler.series().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write!(out, "{{\"name\":\"{}\",\"points\":[", s.name())
            .expect("writing to a String cannot fail");
        for (j, (t, v)) in s.points().iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            write!(out, "[{},{}]", t.as_ps(), v).expect("writing to a String cannot fail");
        }
        out.push_str("]}");
    }
    out.push_str("]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmc_types::{RequestKind, RequestSize};

    #[test]
    fn read_stream_stage_spans_sum_exactly_to_end_to_end() {
        let obs = run_stream_observed(
            &SystemConfig::default(),
            &Workload::read_stream(16, RequestSize::new(64).unwrap()),
            1,
        );
        assert_eq!(obs.latency.count(), 16);
        assert_eq!(obs.integrity_failures, 0);
        // Every read-path stage saw all 16 requests; write stages none.
        for s in Stage::read_path() {
            assert_eq!(obs.report.stage(s).count(), 16, "stage {s}");
        }
        assert!(obs.report.stage(Stage::WriteStall).is_empty());
        assert!(obs.report.stage(Stage::WriteDrain).is_empty());
        // Telescoping: stage spans sum to end-to-end latency exactly.
        let stage_sum_ps: u64 = Stage::ALL
            .iter()
            .map(|s| obs.report.stage(*s).total().as_ps())
            .sum();
        assert_eq!(
            stage_sum_ps,
            obs.latency.total().as_ps(),
            "stage attribution must telescope with zero residue"
        );
    }

    #[test]
    fn attribution_table_reports_near_zero_delta() {
        let obs = run_stream_observed(
            &SystemConfig::default(),
            &Workload::read_stream(8, RequestSize::MAX),
            1,
        );
        let t = obs
            .report
            .attribution_table("Fig 14 breakdown", &obs.latency);
        let rendered = t.to_string();
        assert!(rendered.contains("dram"));
        assert!(rendered.contains("sum of stages"));
        // Last row is the attribution delta; exact telescoping makes the
        // per-request residue 0.0 ns.
        assert_eq!(t.cell(t.len() - 1, 3), "0.0");
    }

    #[test]
    fn untraced_system_produces_an_empty_report() {
        let mut sys = System::new(SystemConfig::default());
        sys.host_mut()
            .apply_workload(&Workload::read_stream(4, RequestSize::MAX));
        sys.host_mut().start(Time::ZERO);
        assert!(sys.run_until_idle(TimeDelta::from_ms(100)));
        let report = TraceReport::from_system(&sys);
        assert!(report.events().is_empty());
        let total: u64 = Stage::ALL.iter().map(|s| report.stage(*s).count()).sum();
        assert_eq!(total, 0, "disabled tracers must record nothing");
    }

    #[test]
    fn noisy_links_surface_the_retry_stage_in_attribution() {
        let mut cfg = SystemConfig::default();
        cfg.mem.link_layer.bit_error_rate = 1e-4;
        let obs = run_stream_observed(&cfg, &Workload::read_stream(64, RequestSize::MAX), 1);
        let t = obs.report.attribution_table("noisy links", &obs.latency);
        let rendered = t.to_string();
        assert!(rendered.contains("link_retry"), "{rendered}");
        // Telescoping attribution stays exact even when retries reshuffle
        // the stage boundaries.
        assert_eq!(t.cell(t.len() - 1, 3), "0.0");
    }

    #[test]
    fn window_capture_exports_valid_trace_and_metrics() {
        let obs = run_window_observed(
            &SystemConfig::default(),
            &Workload::full_scale(RequestKind::ReadModifyWrite, RequestSize::new(64).unwrap()),
            TimeDelta::from_us(20),
            8,
            TimeDelta::from_us(1),
        );
        let json = obs.report.chrome_json();
        assert!(json.starts_with("{\"displayTimeUnit\""));
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"name\":\"dram\""));
        // ~20 samples of each gauge.
        for name in [
            "host.outstanding",
            "host.tx_queue",
            "device.vault_queued",
            "device.busy_banks",
            "device.ingress_credits",
            "device.link_retries",
        ] {
            let s = obs.metrics.get(name).unwrap_or_else(|| panic!("{name}"));
            assert!(s.len() >= 15, "{name} has {} samples", s.len());
        }
        let mjson = metrics_json(&obs.metrics);
        assert!(mjson.contains("\"period_ps\":1000000"));
        assert!(mjson.contains("\"series\""));
        assert!(mjson.contains("device.busy_banks"));
    }
}
