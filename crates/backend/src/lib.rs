//! The pluggable memory-backend interface.
//!
//! The paper's central claim is comparative: HMC's packetized,
//! high-concurrency interior behaves unlike conventional DRAM under the
//! same access streams. Making that comparison honest requires running
//! *identical* host pipelines, workloads, observability, and fault
//! planes against different device models. [`MemoryBackend`] is the
//! seam: the submit / advance-to-time / drain-outputs / next-event-time
//! / stats-and-gauges surface the HMC device model already implemented
//! de facto, lifted into a trait that `System` and `ChainSystem` are
//! generic over.
//!
//! Contract in one paragraph: the **host owns global time** and drives
//! the backend with `advance_instant(t, ..)` at monotonically
//! non-decreasing instants chosen from `next_time()`; the backend owns
//! everything behind its ports (queues, banks, links) and reports
//! completions as [`BackendOutput`]s tagged with the port they emerge
//! from. Flow control is credit-shaped: the host checks
//! [`free_slots`](MemoryBackend::free_slots) before
//! [`submit`](MemoryBackend::submit), and a submit may still bounce the
//! request back (`Err(req)`) when a race consumed the slot — the host
//! retries later. Every implementation must be deterministic: two runs
//! from the same seed produce bit-identical outputs and stats.
//!
//! The crate also carries [`AddressLayout`], the build-time handshake
//! that catches a silent host/device address-interleave mismatch (the
//! hwgc-soft lesson: a DRAM model wired to a different bit layout than
//! the address generator produces plausible but meaningless bank
//! conflicts), and [`BackendKind`], the preset vocabulary the
//! `SystemBuilder` and `repro` expose.

use std::fmt;

use hmc_types::{AddressMapping, HmcSpec, MemoryRequest, MemoryResponse, Time};
use sim_engine::{FaultKind, MetricsSampler, Sanitizer, Tracer};

/// A completed response leaving a backend, tagged with the port (link)
/// it emerges from and the instant it is on the wire toward the host.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackendOutput {
    /// The response payload.
    pub resp: MemoryResponse,
    /// Port (external link) index the response leaves on.
    pub link: usize,
    /// When the response reaches the host side.
    pub at: Time,
}

/// The technology-neutral core counters every backend reports — the
/// subset of the HMC device's stats block the generic system layers
/// (thermal spike gating, compare tables, conservation checks) read.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreStats {
    /// Read requests fully serviced.
    pub reads_completed: u64,
    /// Write requests fully serviced.
    pub writes_completed: u64,
    /// Payload bytes read out of the memory arrays.
    pub data_read_bytes: u64,
    /// Payload bytes written into the memory arrays.
    pub data_write_bytes: u64,
    /// Request bytes received host-to-device across the backend's
    /// ports, including any protocol overhead the technology imposes
    /// ("up" into the device, matching the HMC stats convention).
    pub bytes_up: u64,
    /// Response bytes sent device-to-host across the backend's ports,
    /// including any protocol overhead.
    pub bytes_down: u64,
}

impl CoreStats {
    /// Total requests fully serviced.
    pub fn completed(&self) -> u64 {
        self.reads_completed + self.writes_completed
    }

    /// Total payload bytes moved (the figure-of-merit bandwidth
    /// numerator the paper uses).
    pub fn data_bytes(&self) -> u64 {
        self.data_read_bytes + self.data_write_bytes
    }
}

/// One named bit-field of an address layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddressField {
    /// Field name (`"vault"`, `"bank"`, `"row"`, `"channel"`, ...).
    pub name: &'static str,
    /// Lowest bit of the field.
    pub shift: u32,
    /// Field width in bits.
    pub width: u32,
}

impl fmt::Display for AddressField {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "`{}` = bits {}..{}",
            self.name,
            self.shift,
            self.shift + self.width
        )
    }
}

/// A named address bit-field layout: which address bits a decoder treats
/// as which structural coordinate.
///
/// Backends report the layout they decode with; the `SystemBuilder`
/// compares it against the host's interleave at build time and fails
/// fast with a diagnostic naming both bit-fields when they disagree —
/// a mismatch would not crash anything, it would silently bend every
/// parallelism measurement (the hwgc-soft DRAMsim3 address-mapping
/// lesson).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AddressLayout {
    scheme: &'static str,
    fields: Vec<AddressField>,
}

impl AddressLayout {
    /// Creates an empty layout named after its decoding scheme.
    pub fn new(scheme: &'static str) -> Self {
        AddressLayout {
            scheme,
            fields: Vec::new(),
        }
    }

    /// Adds one named bit-field (builder style).
    #[must_use]
    pub fn field(mut self, name: &'static str, shift: u32, width: u32) -> Self {
        self.fields.push(AddressField { name, shift, width });
        self
    }

    /// The canonical layout of the low-order interleaved HMC mapping
    /// (Figure 3) for a given device geometry — also the layout of the
    /// host's address generators, which draw through the same mapping.
    pub fn of_mapping(scheme: &'static str, mapping: AddressMapping, spec: &HmcSpec) -> Self {
        AddressLayout::new(scheme)
            .field("vault", mapping.vault_shift_for(spec), spec.vault_bits())
            .field("bank", mapping.bank_shift(spec), spec.bank_bits())
            .field("row", mapping.row_shift(spec), 64 - mapping.row_shift(spec))
    }

    /// The scheme name (used in mismatch diagnostics).
    pub fn scheme(&self) -> &'static str {
        self.scheme
    }

    /// The named bit-fields.
    pub fn fields(&self) -> &[AddressField] {
        &self.fields
    }

    /// Looks up a field by name.
    pub fn get(&self, name: &str) -> Option<AddressField> {
        self.fields.iter().copied().find(|f| f.name == name)
    }

    /// Checks this (backend) layout against the host's interleave:
    /// every field name both sides define must occupy identical bits.
    ///
    /// # Errors
    ///
    /// Returns a diagnostic naming both bit-fields on the first
    /// mismatch, e.g. `address-layout mismatch: backend 'ddr3-1600'
    /// decodes field 'bank' = bits 11..14 but host interleave
    /// 'hmc-low-interleave' generates field 'bank' = bits 13..17`.
    pub fn check_against_host(&self, host: &AddressLayout) -> Result<(), String> {
        for mine in &self.fields {
            if let Some(theirs) = host.get(mine.name) {
                if mine.shift != theirs.shift || mine.width != theirs.width {
                    return Err(format!(
                        "address-layout mismatch: backend '{}' decodes field {} \
                         but host interleave '{}' generates field {}",
                        self.scheme, mine, host.scheme, theirs
                    ));
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for AddressLayout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:", self.scheme)?;
        for field in &self.fields {
            write!(f, " {field}")?;
        }
        Ok(())
    }
}

/// The backend preset vocabulary `SystemBuilder::backend` and
/// `repro sweep --backend` / `repro compare` select from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendKind {
    /// The characterized HMC 1.1 (Gen2) device — the default.
    #[default]
    Hmc,
    /// The projected HMC Gen3 geometry: four full-width links, 64
    /// vaults.
    HmcGen3,
    /// A conventional DDR3-1600 DIMM behind the same host path.
    Ddr3_1600,
    /// An HBM-style stack: 32 pseudo-channels, wide slow PHY, no
    /// packet-link/SerDes layer.
    Hbm,
}

impl BackendKind {
    /// Every selectable backend, in compare-table order.
    pub const ALL: [BackendKind; 4] = [
        BackendKind::Hmc,
        BackendKind::HmcGen3,
        BackendKind::Ddr3_1600,
        BackendKind::Hbm,
    ];

    /// The command-line name.
    pub const fn label(self) -> &'static str {
        match self {
            BackendKind::Hmc => "hmc",
            BackendKind::HmcGen3 => "hmc-gen3",
            BackendKind::Ddr3_1600 => "ddr3-1600",
            BackendKind::Hbm => "hbm",
        }
    }

    /// Parses a command-line name.
    pub fn parse(s: &str) -> Option<Self> {
        BackendKind::ALL.into_iter().find(|k| k.label() == s)
    }
}

impl fmt::Display for BackendKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One memory device model behind the host: the submit / advance /
/// drain-outputs / next-event-time / stats-and-gauges surface.
///
/// # Time ownership
///
/// The *system* owns global time. It computes the next interesting
/// instant as the minimum of the host's and the backend's
/// [`next_time`](MemoryBackend::next_time) and calls
/// [`advance_instant`](MemoryBackend::advance_instant) with
/// non-decreasing instants; the backend must never act on an event later
/// than the instant it was given. [`advance`](MemoryBackend::advance)
/// is the batch form (process everything `<= until`).
///
/// # Flow control
///
/// Ports are credit-shaped: [`free_slots`](MemoryBackend::free_slots)
/// is the number of requests port `link` can take right now, and
/// [`submit`](MemoryBackend::submit) either accepts the request or
/// hands it back unchanged. All interior queues must be bounded; a
/// backend may never allocate proportionally to the number of
/// in-flight requests beyond its declared depths.
///
/// # Determinism
///
/// Everything observable — outputs, their order, stats, gauges — must
/// be a pure function of the submitted request stream and the config.
/// No wall-clock, no ambient randomness.
pub trait MemoryBackend: Send + fmt::Debug + 'static {
    /// Short technology label (`"hmc"`, `"ddr3-1600"`, ...) used in
    /// tables and diagnostics.
    fn label(&self) -> &'static str;

    /// Number of host-facing ports (external links). Port indices in
    /// [`submit`](MemoryBackend::submit) and [`BackendOutput::link`]
    /// are `0..num_links()`.
    fn num_links(&self) -> usize;

    /// The address bit-field layout this backend decodes requests
    /// with, checked against the host's interleave at build time.
    fn address_layout(&self) -> AddressLayout;

    /// True if port `link` can take another request right now.
    fn can_accept(&self, link: usize) -> bool {
        self.free_slots(link) > 0
    }

    /// Free request slots on port `link` (the credit count the host's
    /// flow control sees).
    fn free_slots(&self, link: usize) -> usize;

    /// Offers a request to port `link` at `now`. Returns the request
    /// unchanged if the port cannot take it.
    ///
    /// # Errors
    ///
    /// `Err(req)` hands the request back untouched; the host retries
    /// after the next credit notification.
    fn submit(&mut self, link: usize, req: MemoryRequest, now: Time) -> Result<(), MemoryRequest>;

    /// Earliest pending internal event, if any. The system pumps the
    /// backend at exactly these instants (or earlier host instants).
    fn next_time(&self) -> Option<Time>;

    /// The backend's current local time (the last instant it was
    /// advanced to).
    fn now(&self) -> Time;

    /// Pending internal events (diagnostics and watchdog heuristics).
    fn pending_events(&self) -> usize;

    /// Processes every internal event at or before `until`, appending
    /// completed responses to `out` in deterministic order.
    fn advance(&mut self, until: Time, out: &mut Vec<BackendOutput>);

    /// Processes exactly the events at instant `t` (the PDES-friendly
    /// single-instant form; `t` must be `>=` [`now`](MemoryBackend::now)).
    fn advance_instant(&mut self, t: Time, out: &mut Vec<BackendOutput>);

    /// Total internal events processed (simulation-throughput metric).
    fn events_processed(&self) -> u64;

    /// Requests currently queued anywhere inside the backend.
    fn total_queued(&self) -> usize;

    /// Structurally independent service channels with work in flight at
    /// `now` — vaults for HMC, banks for a DIMM, pseudo-channels for
    /// HBM. The cross-technology concurrency gauge of the compare
    /// table.
    fn channels_in_flight(&self, now: Time) -> usize;

    /// Technology-neutral core counters.
    fn core_stats(&self) -> CoreStats;

    /// Records this backend's gauges into the shared sampler.
    fn sample_metrics(&self, at: Time, s: &mut MetricsSampler);

    /// The lifecycle tracer (disabled tracers cost nothing).
    fn tracer(&self) -> &Tracer;

    /// Mutable access to the lifecycle tracer (to arm it).
    fn tracer_mut(&mut self) -> &mut Tracer;

    /// Arms the protocol sanitizer. Armed runs must stay bit-identical
    /// to unarmed runs.
    fn enable_sanitizer(&mut self);

    /// The protocol sanitizer.
    fn sanitizer(&self) -> &Sanitizer;

    /// Mutable access to the protocol sanitizer (drain-time checks).
    fn sanitizer_mut(&mut self) -> &mut Sanitizer;

    /// A human-readable snapshot of all interior state at `at`, for
    /// watchdog dumps.
    fn diagnostic_dump(&self, at: Time) -> String;

    /// Schedules a fault-plane event. Backends without the modeled
    /// hardware (links, refresh engines) ignore kinds that do not
    /// apply; the default ignores everything.
    fn schedule_fault(&mut self, at: Time, kind: FaultKind) {
        let _ = (at, kind);
    }

    /// Clears interior queues after a thermal shutdown and restarts at
    /// `resume`. The default is a no-op for backends without a thermal
    /// plane.
    fn reset_after_shutdown(&mut self, resume: Time) {
        let _ = resume;
    }

    /// Sets the refresh-rate multiplier (thermal throttling). The
    /// default ignores it.
    fn set_refresh_multiplier(&mut self, m: u32) {
        let _ = m;
    }

    /// The current refresh-rate multiplier.
    fn refresh_multiplier(&self) -> u32 {
        1
    }

    /// Drops any retained data-payload state (chain rebalancing). The
    /// default is a no-op.
    fn wipe_data(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmc_types::address::MaxBlockSize;

    #[test]
    fn layout_mismatch_names_both_fields() {
        let host = AddressLayout::new("hmc-low-interleave")
            .field("vault", 11, 4)
            .field("bank", 15, 4);
        let backend = AddressLayout::new("ddr3-1600")
            .field("bank", 11, 3)
            .field("row", 14, 50);
        let err = backend.check_against_host(&host).unwrap_err();
        assert!(err.contains("ddr3-1600"), "{err}");
        assert!(err.contains("hmc-low-interleave"), "{err}");
        assert!(err.contains("`bank` = bits 11..14"), "{err}");
        assert!(err.contains("`bank` = bits 15..19"), "{err}");
    }

    #[test]
    fn layout_compatible_when_shared_fields_agree() {
        let host = AddressLayout::new("host")
            .field("vault", 11, 4)
            .field("bank", 15, 4)
            .field("row", 19, 45);
        let backend = AddressLayout::new("hbm")
            .field("vault", 11, 4)
            .field("channel", 11, 5);
        // `channel` has no host counterpart: only shared names are
        // compared.
        assert!(backend.check_against_host(&host).is_ok());
    }

    #[test]
    fn mapping_layout_matches_figure_3() {
        let spec = HmcSpec::default();
        let map = AddressMapping::new(MaxBlockSize::B128);
        let l = AddressLayout::of_mapping("hmc", map, &spec);
        assert_eq!(l.get("vault").unwrap().shift, map.vault_shift_for(&spec));
        assert_eq!(l.get("bank").unwrap().shift, map.bank_shift(&spec));
        assert_eq!(l.get("row").unwrap().shift, map.row_shift(&spec));
        assert!(l.to_string().contains("vault"));
    }

    #[test]
    fn backend_kind_round_trip() {
        for k in BackendKind::ALL {
            assert_eq!(BackendKind::parse(k.label()), Some(k));
            assert_eq!(k.to_string(), k.label());
        }
        assert_eq!(BackendKind::parse("dimm"), None);
        assert_eq!(BackendKind::default(), BackendKind::Hmc);
    }

    #[test]
    fn core_stats_totals() {
        let s = CoreStats {
            reads_completed: 3,
            writes_completed: 2,
            data_read_bytes: 384,
            data_write_bytes: 256,
            ..CoreStats::default()
        };
        assert_eq!(s.completed(), 5);
        assert_eq!(s.data_bytes(), 640);
    }
}
