//! Conservative parallel discrete-event scaffolding: epoch scheduling,
//! deterministic mailboxes, and a persistent shard worker pool.
//!
//! The engine stays policy-free: this module knows nothing about cubes,
//! links, or packets. It provides the three mechanisms a conservative
//! (lookahead-based) PDES driver needs, and the simulation crate supplies
//! the physics:
//!
//! * [`LookaheadTable`] — per-channel minimum cross-shard latencies fixed
//!   at build time. Any message a shard emits during the half-open window
//!   `[a, b)` carries a timestamp `>= b` as long as `b − a` never exceeds
//!   the global lookahead, so shards can advance a whole epoch without
//!   hearing from their neighbours.
//! * [`Mailbox`] — a timestamped inbox drained in total [`MsgKey`] order
//!   `(at, edge, dir, seq)`. Because the key order is total and identical
//!   however messages arrive, delivery order — and therefore simulation
//!   state — is independent of which thread produced each message, which
//!   is what makes parallel runs bit-identical to serial ones.
//! * [`ShardPool`] — a persistent pool of worker threads that shards are
//!   *moved* through each epoch: the coordinator sends owned shard chunks
//!   down a channel, workers call [`EpochShard::pump_epoch`], and the
//!   shards come back. Between epochs the coordinator owns every shard
//!   outright, so cross-shard exchange needs no locks or atomics.
//!
//! The pool is deliberately rendezvous-style rather than work-stealing:
//! determinism comes from the mailbox order and the epoch barrier, and a
//! fixed round-robin shard→worker assignment keeps scheduling noise out
//! of profiles.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::mpsc;

use hmc_types::{Time, TimeDelta};

/// Total ordering key for cross-shard messages: timestamp first, then the
/// originating edge, direction (`0` = toward the higher-numbered cube,
/// `1` = toward the lower), and a per-(edge, direction) sequence number.
/// Every message in one simulation has a distinct key, so draining a
/// [`Mailbox`] in key order is a deterministic total order regardless of
/// arrival interleaving.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct MsgKey {
    /// Simulated instant at which the message takes effect at the receiver.
    pub at: Time,
    /// Index of the topology edge the message travelled.
    pub edge: u32,
    /// Direction along the edge (0 = up, 1 = down).
    pub dir: u8,
    /// Monotonic sequence number within `(edge, dir)`.
    pub seq: u64,
}

/// An addressed cross-shard message: destination shard plus its ordering
/// key and payload.
#[derive(Debug, Clone)]
pub struct Envelope<M> {
    /// Destination shard index.
    pub to: usize,
    /// Total-order delivery key.
    pub key: MsgKey,
    /// Payload (request/response/credit — the simulation crate decides).
    pub msg: M,
}

#[derive(Debug)]
struct Item<M> {
    key: MsgKey,
    msg: M,
}

impl<M> PartialEq for Item<M> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<M> Eq for Item<M> {}
impl<M> PartialOrd for Item<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Item<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

/// A deterministic timestamped inbox: messages pop in [`MsgKey`] order no
/// matter the order they were pushed. One per shard; the coordinator
/// routes [`Envelope`]s into it at epoch boundaries.
#[derive(Debug)]
pub struct Mailbox<M> {
    heap: BinaryHeap<Reverse<Item<M>>>,
}

impl<M> Mailbox<M> {
    /// Creates an empty mailbox.
    pub fn new() -> Self {
        Mailbox {
            heap: BinaryHeap::new(),
        }
    }

    /// Deposits a message under its delivery key.
    pub fn push(&mut self, key: MsgKey, msg: M) {
        self.heap.push(Reverse(Item { key, msg }));
    }

    /// Removes and returns the first message (in key order) due at or
    /// before `limit`, if any.
    pub fn pop_before(&mut self, limit: Time) -> Option<(MsgKey, M)> {
        if self.heap.peek().map(|e| e.0.key.at <= limit) != Some(true) {
            return None;
        }
        let Reverse(item) = self.heap.pop().expect("peeked non-empty");
        Some((item.key, item.msg))
    }

    /// Delivery time of the earliest pending message, if any.
    pub fn peek_at(&self) -> Option<Time> {
        self.heap.peek().map(|e| e.0.key.at)
    }

    /// Number of pending messages.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no messages are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending messages.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<M> Default for Mailbox<M> {
    fn default() -> Self {
        Mailbox::new()
    }
}

/// Per-channel minimum cross-shard message latencies, fixed at topology
/// build time. The conservative epoch bound is [`LookaheadTable::global`]:
/// a shard at local time `a` may safely advance to `a + global()` because
/// no in-flight message can take effect earlier than that.
#[derive(Debug, Clone)]
pub struct LookaheadTable {
    per_edge: Vec<TimeDelta>,
    global: TimeDelta,
}

impl LookaheadTable {
    /// Builds the table from per-edge minimum latencies. Every entry must
    /// be strictly positive — a zero-latency channel has no conservative
    /// lookahead and would stall the epoch scheduler.
    pub fn new(per_edge: Vec<TimeDelta>) -> Self {
        assert!(!per_edge.is_empty(), "lookahead table needs >= 1 edge");
        let global = per_edge.iter().copied().min().expect("non-empty");
        assert!(
            global > TimeDelta::ZERO,
            "conservative PDES requires strictly positive lookahead"
        );
        LookaheadTable { per_edge, global }
    }

    /// Minimum message latency across edge `e`.
    pub fn per_edge(&self, e: usize) -> TimeDelta {
        self.per_edge[e]
    }

    /// The global lookahead: the minimum over all edges, i.e. the widest
    /// epoch window that is still conservative for every shard.
    pub fn global(&self) -> TimeDelta {
        self.global
    }

    /// Number of edges in the table.
    pub fn edges(&self) -> usize {
        self.per_edge.len()
    }
}

/// One unit of parallel work: a shard that can advance itself to an epoch
/// boundary using only state it owns. Messages for other shards are
/// buffered inside the shard and collected by the coordinator after the
/// epoch (the engine never sees them in flight).
pub trait EpochShard: Send + 'static {
    /// Processes every local event and already-delivered message strictly
    /// before `end` (the epoch window is half-open, so a message
    /// timestamped exactly `end` lands in the next epoch on every shard
    /// alike).
    fn pump_epoch(&mut self, end: Time);
}

/// Maximum retained epoch spans per shard in the profiler. Busy epochs
/// past the cap are still counted in the aggregates but drop out of the
/// Perfetto track; the drop count is reported so truncation is visible.
const EPOCH_SPAN_CAP: usize = 4096;

/// One recorded epoch on one shard's Perfetto track.
#[derive(Debug, Clone, Copy)]
pub struct EpochSpan {
    /// Epoch window start (inclusive).
    pub start: Time,
    /// Epoch window end (exclusive).
    pub end: Time,
    /// Events the shard processed inside the window.
    pub events: u64,
    /// Cross-shard envelopes the shard emitted during the window.
    pub sent: u64,
}

/// What one shard did during one epoch, as observed by the coordinator.
/// All fields are deltas over the epoch, derived purely from simulation
/// state — no wall clock is involved, so profiles are bit-identical
/// across worker counts.
#[derive(Debug, Clone, Copy)]
pub struct EpochSample {
    /// Events processed this epoch (host + device + deliveries).
    pub events: u64,
    /// Cross-shard envelopes emitted this epoch.
    pub sent: u64,
    /// Cross-shard envelopes delivered into the shard's mailbox at the
    /// end of this epoch.
    pub received: u64,
    /// The shard's local clock after the epoch (last instant pumped).
    pub advanced_to: Time,
    /// Head-of-line parking time accrued this epoch (arrival→delivery
    /// gaps of messages that had to wait at the receiving shard).
    pub parked: TimeDelta,
}

/// The accumulated deterministic profile of one shard.
#[derive(Debug, Clone, Default)]
pub struct ShardEpochProfile {
    /// Epochs the shard participated in.
    pub epochs: u64,
    /// Epochs in which the shard processed at least one event.
    pub busy_epochs: u64,
    /// Total events processed.
    pub events: u64,
    /// Total cross-shard envelopes emitted.
    pub sent: u64,
    /// Total cross-shard envelopes received.
    pub received: u64,
    /// Sum over busy epochs of how far into the lookahead window the
    /// shard's local clock actually advanced; divided by the summed
    /// window widths this is the lookahead-window utilization.
    pub occupied: TimeDelta,
    /// Total head-of-line parking time.
    pub parked: TimeDelta,
    /// Retained busy-epoch spans (capped at [`EPOCH_SPAN_CAP`]).
    pub spans: Vec<EpochSpan>,
    /// Busy epochs whose spans were dropped once the cap was reached.
    pub dropped_spans: u64,
}

/// A deterministic, sim-time profiler for the conservative epoch
/// scheduler. The *coordinator* feeds it one [`EpochSample`] per shard
/// after each epoch, so the profiler never runs on worker threads and
/// its output is independent of the worker count — armed or not, it
/// reads simulation state without mutating it (bit-inert).
#[derive(Debug, Clone)]
pub struct EpochProfiler {
    shards: Vec<ShardEpochProfile>,
    epochs: u64,
    window_total: TimeDelta,
}

impl EpochProfiler {
    /// Creates a profiler for `n` shards.
    pub fn new(n: usize) -> Self {
        EpochProfiler {
            shards: vec![ShardEpochProfile::default(); n],
            epochs: 0,
            window_total: TimeDelta::ZERO,
        }
    }

    /// Records one epoch `[start, end)`; `samples` holds one entry per
    /// shard, in shard-index order.
    pub fn record_epoch(&mut self, start: Time, end: Time, samples: &[EpochSample]) {
        assert_eq!(samples.len(), self.shards.len(), "one sample per shard");
        self.epochs += 1;
        self.window_total += end.since(start);
        for (p, s) in self.shards.iter_mut().zip(samples) {
            p.epochs += 1;
            p.events += s.events;
            p.sent += s.sent;
            p.received += s.received;
            p.parked += s.parked;
            if s.events == 0 {
                continue;
            }
            p.busy_epochs += 1;
            if s.advanced_to > start {
                p.occupied += s.advanced_to.min(end).since(start);
            }
            if p.spans.len() < EPOCH_SPAN_CAP {
                p.spans.push(EpochSpan {
                    start,
                    end,
                    events: s.events,
                    sent: s.sent,
                });
            } else {
                p.dropped_spans += 1;
            }
        }
    }

    /// Epochs recorded so far.
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// Sum of all epoch window widths.
    pub fn window_total(&self) -> TimeDelta {
        self.window_total
    }

    /// Per-shard profiles, in shard-index order.
    pub fn shards(&self) -> &[ShardEpochProfile] {
        &self.shards
    }

    /// Renders the profile as JSON: per-shard aggregates plus the span
    /// retention counts. Spans themselves go to the Perfetto export.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let w = self.window_total.as_ps().max(1) as f64;
        write!(
            out,
            "{{\"epochs\":{},\"window_total_ps\":{},\"shards\":[",
            self.epochs,
            self.window_total.as_ps()
        )
        .expect("writing to a String cannot fail");
        for (i, p) in self.shards.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let util = p.occupied.as_ps() as f64 / w;
            write!(
                out,
                "{{\"shard\":{i},\"epochs\":{},\"busy_epochs\":{},\"events\":{},\
                 \"sent\":{},\"received\":{},\"occupied_ps\":{},\"parked_ps\":{},\
                 \"window_utilization\":{util:.6},\"spans\":{},\"dropped_spans\":{}}}",
                p.epochs,
                p.busy_epochs,
                p.events,
                p.sent,
                p.received,
                p.occupied.as_ps(),
                p.parked.as_ps(),
                p.spans.len(),
                p.dropped_spans,
            )
            .expect("writing to a String cannot fail");
        }
        out.push_str("]}");
        out
    }
}

/// Wall-clock utilization summary of a [`ShardPool`]: how much host time
/// each worker spent pumping shards vs. waiting at the epoch barrier.
///
/// This is the *only* non-deterministic observable in the PDES layer —
/// it explains `BENCH_simperf.json` speedups but must never feed back
/// into simulation state or deterministic fingerprints.
#[derive(Debug, Clone, Default)]
pub struct PoolUtilization {
    /// Nanoseconds each worker spent executing `pump_epoch` calls.
    pub busy_ns: Vec<u64>,
    /// Nanoseconds the coordinator spent inside `run_epoch` overall
    /// (dispatch + worker execution + barrier collection).
    pub wall_ns: u64,
    /// Epochs dispatched through the pool.
    pub epochs: u64,
}

impl PoolUtilization {
    /// Busy fraction of one worker (0.0 when nothing ran).
    pub fn busy_fraction(&self, worker: usize) -> f64 {
        if self.wall_ns == 0 {
            return 0.0;
        }
        self.busy_ns[worker] as f64 / self.wall_ns as f64
    }
}

type Chunk<S> = Vec<(usize, S)>;

struct Worker<S> {
    job_tx: mpsc::Sender<(Chunk<S>, Time)>,
    done_rx: mpsc::Receiver<(Chunk<S>, u64)>,
    // hmc-lint: allow(thread)
    handle: Option<std::thread::JoinHandle<()>>,
}

/// A persistent pool of epoch workers. Shards are moved to workers for
/// the duration of one epoch and moved back; the coordinator owns all
/// shards between epochs, so exchange logic is plain single-threaded code.
///
/// Determinism note: the pool affects *where* a shard's epoch runs, never
/// *what* it computes — shard↔worker assignment is a fixed round-robin of
/// the (already sorted) shard list, and results are re-sorted by shard
/// index before they are returned.
pub struct ShardPool<S: EpochShard> {
    workers: Vec<Worker<S>>,
    utilization: PoolUtilization,
}

impl<S: EpochShard> ShardPool<S> {
    /// Spawns `n` persistent worker threads (`n >= 1`).
    pub fn new(n: usize) -> Self {
        let n = n.max(1);
        let workers = (0..n)
            .map(|i| {
                let (job_tx, job_rx) = mpsc::channel::<(Chunk<S>, Time)>();
                let (done_tx, done_rx) = mpsc::channel::<(Chunk<S>, u64)>();
                // hmc-lint: allow(thread)
                let handle = std::thread::Builder::new()
                    .name(format!("pdes-shard-{i}"))
                    .spawn(move || {
                        while let Ok((mut chunk, end)) = job_rx.recv() {
                            // Busy time is wall-clock by definition (it
                            // explains speedups); it rides back on the
                            // done channel and never touches the shards.
                            // hmc-lint: allow(wall-clock)
                            let t0 = std::time::Instant::now();
                            for (_, shard) in &mut chunk {
                                shard.pump_epoch(end);
                            }
                            let busy = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
                            if done_tx.send((chunk, busy)).is_err() {
                                break;
                            }
                        }
                    })
                    .expect("spawn pdes worker");
                Worker {
                    job_tx,
                    done_rx,
                    handle: Some(handle),
                }
            })
            .collect();
        ShardPool {
            workers,
            utilization: PoolUtilization {
                busy_ns: vec![0; n],
                wall_ns: 0,
                epochs: 0,
            },
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// The accumulated wall-clock utilization summary (busy vs. barrier
    /// wait per worker). Non-deterministic; never fold this into a
    /// simulation fingerprint.
    pub fn utilization(&self) -> &PoolUtilization {
        &self.utilization
    }

    /// Runs one epoch: every shard advances to `end` on some worker, and
    /// the full shard list comes back sorted by shard index.
    pub fn run_epoch(&mut self, shards: Chunk<S>, end: Time) -> Chunk<S> {
        // hmc-lint: allow(wall-clock)
        let wall0 = std::time::Instant::now();
        let n = self.workers.len();
        let mut chunks: Vec<Chunk<S>> = (0..n).map(|_| Vec::new()).collect();
        for (i, shard) in shards.into_iter().enumerate() {
            chunks[i % n].push(shard);
        }
        let mut active = Vec::with_capacity(n);
        for (w, chunk) in chunks.into_iter().enumerate() {
            if chunk.is_empty() {
                continue;
            }
            self.workers[w]
                .job_tx
                .send((chunk, end))
                .expect("pdes worker alive");
            active.push(w);
        }
        let mut out: Chunk<S> = Vec::new();
        for w in active {
            let (chunk, busy) = self.workers[w].done_rx.recv().expect("pdes worker alive");
            self.utilization.busy_ns[w] = self.utilization.busy_ns[w].saturating_add(busy);
            out.extend(chunk);
        }
        out.sort_by_key(|(idx, _)| *idx);
        self.utilization.epochs += 1;
        self.utilization.wall_ns = self
            .utilization
            .wall_ns
            .saturating_add(u64::try_from(wall0.elapsed().as_nanos()).unwrap_or(u64::MAX));
        out
    }
}

impl<S: EpochShard> Drop for ShardPool<S> {
    fn drop(&mut self) {
        for w in &mut self.workers {
            // Dropping the sender ends the worker's recv loop.
            let (dead_tx, _) = mpsc::channel();
            w.job_tx = dead_tx;
            if let Some(h) = w.handle.take() {
                let _ = h.join();
            }
        }
    }
}

impl<S: EpochShard> std::fmt::Debug for ShardPool<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardPool")
            .field("workers", &self.workers.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mailbox_pops_in_total_key_order() {
        let mut mb = Mailbox::new();
        let k = |at: u64, edge: u32, dir: u8, seq: u64| MsgKey {
            at: Time::from_ps(at),
            edge,
            dir,
            seq,
        };
        // Pushed in scrambled order, including same-instant collisions
        // that must resolve by (edge, dir, seq).
        mb.push(k(50, 1, 0, 2), "e");
        mb.push(k(10, 3, 1, 0), "b");
        mb.push(k(50, 0, 1, 9), "d");
        mb.push(k(10, 2, 0, 7), "a");
        mb.push(k(50, 1, 1, 0), "f");
        mb.push(k(20, 0, 0, 1), "c");
        let mut got = Vec::new();
        while let Some((_, m)) = mb.pop_before(Time::from_ps(49)) {
            got.push(m);
        }
        assert_eq!(got, vec!["a", "b", "c"]);
        assert_eq!(mb.peek_at(), Some(Time::from_ps(50)));
        while let Some((_, m)) = mb.pop_before(Time::MAX) {
            got.push(m);
        }
        assert_eq!(got, vec!["a", "b", "c", "d", "e", "f"]);
        assert!(mb.is_empty());
    }

    #[test]
    fn lookahead_global_is_min_edge() {
        let t = LookaheadTable::new(vec![
            TimeDelta::from_ps(9_000),
            TimeDelta::from_ps(8_000),
            TimeDelta::from_ps(12_000),
        ]);
        assert_eq!(t.global(), TimeDelta::from_ps(8_000));
        assert_eq!(t.per_edge(2), TimeDelta::from_ps(12_000));
        assert_eq!(t.edges(), 3);
    }

    #[test]
    #[should_panic(expected = "strictly positive")]
    fn lookahead_rejects_zero_latency_edge() {
        let _ = LookaheadTable::new(vec![TimeDelta::from_ps(100), TimeDelta::ZERO]);
    }

    struct Counter {
        id: usize,
        log: Vec<u64>,
    }
    impl EpochShard for Counter {
        fn pump_epoch(&mut self, end: Time) {
            self.log.push(end.as_ps() + self.id as u64);
        }
    }

    #[test]
    fn pool_round_trips_shards_in_index_order() {
        for workers in [1, 2, 3, 8] {
            let mut pool: ShardPool<Counter> = ShardPool::new(workers);
            assert_eq!(pool.workers(), workers);
            let mut shards: Vec<(usize, Counter)> = (0..5)
                .map(|i| {
                    (
                        i,
                        Counter {
                            id: i,
                            log: Vec::new(),
                        },
                    )
                })
                .collect();
            for epoch in 1..=4u64 {
                shards = pool.run_epoch(shards, Time::from_ps(epoch * 100));
                assert_eq!(
                    shards.iter().map(|(i, _)| *i).collect::<Vec<_>>(),
                    vec![0, 1, 2, 3, 4],
                    "{workers} workers, epoch {epoch}"
                );
            }
            for (i, c) in &shards {
                let want: Vec<u64> = (1..=4).map(|e| e * 100 + *i as u64).collect();
                assert_eq!(c.log, want, "shard {i} saw every epoch in order");
            }
        }
    }

    #[test]
    fn epoch_profiler_accumulates_per_shard() {
        let mut p = EpochProfiler::new(2);
        let d = TimeDelta::from_ps(1_000);
        let s = |events, sent, adv: u64| EpochSample {
            events,
            sent,
            received: sent,
            advanced_to: Time::from_ps(adv),
            parked: TimeDelta::from_ps(if events > 0 { 10 } else { 0 }),
        };
        // Epoch [0, 1000): shard 0 busy to 600, shard 1 idle.
        p.record_epoch(Time::ZERO, Time::ZERO + d, &[s(4, 2, 600), s(0, 0, 0)]);
        // Epoch [1000, 2000): both busy; shard 1 overshoots the window
        // end (clamped to the window for utilization).
        p.record_epoch(
            Time::from_ps(1_000),
            Time::from_ps(2_000),
            &[s(1, 0, 1_500), s(8, 3, 2_500)],
        );
        assert_eq!(p.epochs(), 2);
        assert_eq!(p.window_total(), TimeDelta::from_ps(2_000));
        let sh = p.shards();
        assert_eq!(sh[0].events, 5);
        assert_eq!(sh[0].busy_epochs, 2);
        assert_eq!(sh[0].occupied, TimeDelta::from_ps(600 + 500));
        assert_eq!(sh[0].parked, TimeDelta::from_ps(20));
        assert_eq!(sh[0].spans.len(), 2);
        assert_eq!(sh[1].busy_epochs, 1);
        assert_eq!(sh[1].occupied, TimeDelta::from_ps(1_000));
        assert_eq!(sh[1].sent, 3);
        assert_eq!(sh[1].spans.len(), 1);
        assert_eq!(sh[1].spans[0].events, 8);
        let json = p.to_json();
        assert!(json.contains("\"epochs\":2"));
        assert!(json.contains("\"window_utilization\""));
        assert!(json.contains("\"shard\":1"));
    }

    #[test]
    fn epoch_profiler_caps_spans_and_counts_drops() {
        let mut p = EpochProfiler::new(1);
        for e in 0..(EPOCH_SPAN_CAP as u64 + 10) {
            let start = Time::from_ps(e * 100);
            let end = Time::from_ps(e * 100 + 100);
            p.record_epoch(
                start,
                end,
                &[EpochSample {
                    events: 1,
                    sent: 0,
                    received: 0,
                    advanced_to: end,
                    parked: TimeDelta::ZERO,
                }],
            );
        }
        assert_eq!(p.shards()[0].spans.len(), EPOCH_SPAN_CAP);
        assert_eq!(p.shards()[0].dropped_spans, 10);
        assert!(p.to_json().contains("\"dropped_spans\":10"));
    }

    #[test]
    fn pool_reports_utilization() {
        let mut pool: ShardPool<Counter> = ShardPool::new(2);
        let mut shards: Vec<(usize, Counter)> = (0..4)
            .map(|i| {
                (
                    i,
                    Counter {
                        id: i,
                        log: Vec::new(),
                    },
                )
            })
            .collect();
        for e in 1..=3u64 {
            shards = pool.run_epoch(shards, Time::from_ps(e * 10));
        }
        let u = pool.utilization();
        assert_eq!(u.epochs, 3);
        assert_eq!(u.busy_ns.len(), 2);
        assert!(u.wall_ns > 0, "coordinator wall time must accumulate");
        assert!(u.busy_fraction(0) <= 1.0 + f64::EPSILON);
    }

    #[test]
    fn pool_handles_more_workers_than_shards() {
        let mut pool: ShardPool<Counter> = ShardPool::new(8);
        let shards = vec![(
            0,
            Counter {
                id: 0,
                log: Vec::new(),
            },
        )];
        let shards = pool.run_epoch(shards, Time::from_ps(7));
        assert_eq!(shards.len(), 1);
        assert_eq!(shards[0].1.log, vec![7]);
    }
}
