//! Conservative parallel discrete-event scaffolding: epoch scheduling,
//! deterministic mailboxes, and a persistent shard worker pool.
//!
//! The engine stays policy-free: this module knows nothing about cubes,
//! links, or packets. It provides the three mechanisms a conservative
//! (lookahead-based) PDES driver needs, and the simulation crate supplies
//! the physics:
//!
//! * [`LookaheadTable`] — per-channel minimum cross-shard latencies fixed
//!   at build time. Any message a shard emits during the half-open window
//!   `[a, b)` carries a timestamp `>= b` as long as `b − a` never exceeds
//!   the global lookahead, so shards can advance a whole epoch without
//!   hearing from their neighbours.
//! * [`Mailbox`] — a timestamped inbox drained in total [`MsgKey`] order
//!   `(at, edge, dir, seq)`. Because the key order is total and identical
//!   however messages arrive, delivery order — and therefore simulation
//!   state — is independent of which thread produced each message, which
//!   is what makes parallel runs bit-identical to serial ones.
//! * [`ShardPool`] — a persistent pool of worker threads that shards are
//!   *moved* through each epoch: the coordinator sends owned shard chunks
//!   down a channel, workers call [`EpochShard::pump_epoch`], and the
//!   shards come back. Between epochs the coordinator owns every shard
//!   outright, so cross-shard exchange needs no locks or atomics.
//!
//! The pool is deliberately rendezvous-style rather than work-stealing:
//! determinism comes from the mailbox order and the epoch barrier, and a
//! fixed round-robin shard→worker assignment keeps scheduling noise out
//! of profiles.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::mpsc;

use hmc_types::{Time, TimeDelta};

/// Total ordering key for cross-shard messages: timestamp first, then the
/// originating edge, direction (`0` = toward the higher-numbered cube,
/// `1` = toward the lower), and a per-(edge, direction) sequence number.
/// Every message in one simulation has a distinct key, so draining a
/// [`Mailbox`] in key order is a deterministic total order regardless of
/// arrival interleaving.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct MsgKey {
    /// Simulated instant at which the message takes effect at the receiver.
    pub at: Time,
    /// Index of the topology edge the message travelled.
    pub edge: u32,
    /// Direction along the edge (0 = up, 1 = down).
    pub dir: u8,
    /// Monotonic sequence number within `(edge, dir)`.
    pub seq: u64,
}

/// An addressed cross-shard message: destination shard plus its ordering
/// key and payload.
#[derive(Debug, Clone)]
pub struct Envelope<M> {
    /// Destination shard index.
    pub to: usize,
    /// Total-order delivery key.
    pub key: MsgKey,
    /// Payload (request/response/credit — the simulation crate decides).
    pub msg: M,
}

#[derive(Debug)]
struct Item<M> {
    key: MsgKey,
    msg: M,
}

impl<M> PartialEq for Item<M> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<M> Eq for Item<M> {}
impl<M> PartialOrd for Item<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Item<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

/// A deterministic timestamped inbox: messages pop in [`MsgKey`] order no
/// matter the order they were pushed. One per shard; the coordinator
/// routes [`Envelope`]s into it at epoch boundaries.
#[derive(Debug)]
pub struct Mailbox<M> {
    heap: BinaryHeap<Reverse<Item<M>>>,
}

impl<M> Mailbox<M> {
    /// Creates an empty mailbox.
    pub fn new() -> Self {
        Mailbox {
            heap: BinaryHeap::new(),
        }
    }

    /// Deposits a message under its delivery key.
    pub fn push(&mut self, key: MsgKey, msg: M) {
        self.heap.push(Reverse(Item { key, msg }));
    }

    /// Removes and returns the first message (in key order) due at or
    /// before `limit`, if any.
    pub fn pop_before(&mut self, limit: Time) -> Option<(MsgKey, M)> {
        if self.heap.peek().map(|e| e.0.key.at <= limit) != Some(true) {
            return None;
        }
        let Reverse(item) = self.heap.pop().expect("peeked non-empty");
        Some((item.key, item.msg))
    }

    /// Delivery time of the earliest pending message, if any.
    pub fn peek_at(&self) -> Option<Time> {
        self.heap.peek().map(|e| e.0.key.at)
    }

    /// Number of pending messages.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no messages are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending messages.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<M> Default for Mailbox<M> {
    fn default() -> Self {
        Mailbox::new()
    }
}

/// Per-channel minimum cross-shard message latencies, fixed at topology
/// build time. The conservative epoch bound is [`LookaheadTable::global`]:
/// a shard at local time `a` may safely advance to `a + global()` because
/// no in-flight message can take effect earlier than that.
#[derive(Debug, Clone)]
pub struct LookaheadTable {
    per_edge: Vec<TimeDelta>,
    global: TimeDelta,
}

impl LookaheadTable {
    /// Builds the table from per-edge minimum latencies. Every entry must
    /// be strictly positive — a zero-latency channel has no conservative
    /// lookahead and would stall the epoch scheduler.
    pub fn new(per_edge: Vec<TimeDelta>) -> Self {
        assert!(!per_edge.is_empty(), "lookahead table needs >= 1 edge");
        let global = per_edge.iter().copied().min().expect("non-empty");
        assert!(
            global > TimeDelta::ZERO,
            "conservative PDES requires strictly positive lookahead"
        );
        LookaheadTable { per_edge, global }
    }

    /// Minimum message latency across edge `e`.
    pub fn per_edge(&self, e: usize) -> TimeDelta {
        self.per_edge[e]
    }

    /// The global lookahead: the minimum over all edges, i.e. the widest
    /// epoch window that is still conservative for every shard.
    pub fn global(&self) -> TimeDelta {
        self.global
    }

    /// Number of edges in the table.
    pub fn edges(&self) -> usize {
        self.per_edge.len()
    }
}

/// One unit of parallel work: a shard that can advance itself to an epoch
/// boundary using only state it owns. Messages for other shards are
/// buffered inside the shard and collected by the coordinator after the
/// epoch (the engine never sees them in flight).
pub trait EpochShard: Send + 'static {
    /// Processes every local event and already-delivered message strictly
    /// before `end` (the epoch window is half-open, so a message
    /// timestamped exactly `end` lands in the next epoch on every shard
    /// alike).
    fn pump_epoch(&mut self, end: Time);
}

type Chunk<S> = Vec<(usize, S)>;

struct Worker<S> {
    job_tx: mpsc::Sender<(Chunk<S>, Time)>,
    done_rx: mpsc::Receiver<Chunk<S>>,
    // hmc-lint: allow(thread)
    handle: Option<std::thread::JoinHandle<()>>,
}

/// A persistent pool of epoch workers. Shards are moved to workers for
/// the duration of one epoch and moved back; the coordinator owns all
/// shards between epochs, so exchange logic is plain single-threaded code.
///
/// Determinism note: the pool affects *where* a shard's epoch runs, never
/// *what* it computes — shard↔worker assignment is a fixed round-robin of
/// the (already sorted) shard list, and results are re-sorted by shard
/// index before they are returned.
pub struct ShardPool<S: EpochShard> {
    workers: Vec<Worker<S>>,
}

impl<S: EpochShard> ShardPool<S> {
    /// Spawns `n` persistent worker threads (`n >= 1`).
    pub fn new(n: usize) -> Self {
        let n = n.max(1);
        let workers = (0..n)
            .map(|i| {
                let (job_tx, job_rx) = mpsc::channel::<(Chunk<S>, Time)>();
                let (done_tx, done_rx) = mpsc::channel::<Chunk<S>>();
                // hmc-lint: allow(thread)
                let handle = std::thread::Builder::new()
                    .name(format!("pdes-shard-{i}"))
                    .spawn(move || {
                        while let Ok((mut chunk, end)) = job_rx.recv() {
                            for (_, shard) in &mut chunk {
                                shard.pump_epoch(end);
                            }
                            if done_tx.send(chunk).is_err() {
                                break;
                            }
                        }
                    })
                    .expect("spawn pdes worker");
                Worker {
                    job_tx,
                    done_rx,
                    handle: Some(handle),
                }
            })
            .collect();
        ShardPool { workers }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Runs one epoch: every shard advances to `end` on some worker, and
    /// the full shard list comes back sorted by shard index.
    pub fn run_epoch(&mut self, shards: Chunk<S>, end: Time) -> Chunk<S> {
        let n = self.workers.len();
        let mut chunks: Vec<Chunk<S>> = (0..n).map(|_| Vec::new()).collect();
        for (i, shard) in shards.into_iter().enumerate() {
            chunks[i % n].push(shard);
        }
        let mut active = Vec::with_capacity(n);
        for (w, chunk) in chunks.into_iter().enumerate() {
            if chunk.is_empty() {
                continue;
            }
            self.workers[w]
                .job_tx
                .send((chunk, end))
                .expect("pdes worker alive");
            active.push(w);
        }
        let mut out: Chunk<S> = Vec::new();
        for w in active {
            out.extend(self.workers[w].done_rx.recv().expect("pdes worker alive"));
        }
        out.sort_by_key(|(idx, _)| *idx);
        out
    }
}

impl<S: EpochShard> Drop for ShardPool<S> {
    fn drop(&mut self) {
        for w in &mut self.workers {
            // Dropping the sender ends the worker's recv loop.
            let (dead_tx, _) = mpsc::channel();
            w.job_tx = dead_tx;
            if let Some(h) = w.handle.take() {
                let _ = h.join();
            }
        }
    }
}

impl<S: EpochShard> std::fmt::Debug for ShardPool<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardPool")
            .field("workers", &self.workers.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mailbox_pops_in_total_key_order() {
        let mut mb = Mailbox::new();
        let k = |at: u64, edge: u32, dir: u8, seq: u64| MsgKey {
            at: Time::from_ps(at),
            edge,
            dir,
            seq,
        };
        // Pushed in scrambled order, including same-instant collisions
        // that must resolve by (edge, dir, seq).
        mb.push(k(50, 1, 0, 2), "e");
        mb.push(k(10, 3, 1, 0), "b");
        mb.push(k(50, 0, 1, 9), "d");
        mb.push(k(10, 2, 0, 7), "a");
        mb.push(k(50, 1, 1, 0), "f");
        mb.push(k(20, 0, 0, 1), "c");
        let mut got = Vec::new();
        while let Some((_, m)) = mb.pop_before(Time::from_ps(49)) {
            got.push(m);
        }
        assert_eq!(got, vec!["a", "b", "c"]);
        assert_eq!(mb.peek_at(), Some(Time::from_ps(50)));
        while let Some((_, m)) = mb.pop_before(Time::MAX) {
            got.push(m);
        }
        assert_eq!(got, vec!["a", "b", "c", "d", "e", "f"]);
        assert!(mb.is_empty());
    }

    #[test]
    fn lookahead_global_is_min_edge() {
        let t = LookaheadTable::new(vec![
            TimeDelta::from_ps(9_000),
            TimeDelta::from_ps(8_000),
            TimeDelta::from_ps(12_000),
        ]);
        assert_eq!(t.global(), TimeDelta::from_ps(8_000));
        assert_eq!(t.per_edge(2), TimeDelta::from_ps(12_000));
        assert_eq!(t.edges(), 3);
    }

    #[test]
    #[should_panic(expected = "strictly positive")]
    fn lookahead_rejects_zero_latency_edge() {
        let _ = LookaheadTable::new(vec![TimeDelta::from_ps(100), TimeDelta::ZERO]);
    }

    struct Counter {
        id: usize,
        log: Vec<u64>,
    }
    impl EpochShard for Counter {
        fn pump_epoch(&mut self, end: Time) {
            self.log.push(end.as_ps() + self.id as u64);
        }
    }

    #[test]
    fn pool_round_trips_shards_in_index_order() {
        for workers in [1, 2, 3, 8] {
            let mut pool: ShardPool<Counter> = ShardPool::new(workers);
            assert_eq!(pool.workers(), workers);
            let mut shards: Vec<(usize, Counter)> = (0..5)
                .map(|i| {
                    (
                        i,
                        Counter {
                            id: i,
                            log: Vec::new(),
                        },
                    )
                })
                .collect();
            for epoch in 1..=4u64 {
                shards = pool.run_epoch(shards, Time::from_ps(epoch * 100));
                assert_eq!(
                    shards.iter().map(|(i, _)| *i).collect::<Vec<_>>(),
                    vec![0, 1, 2, 3, 4],
                    "{workers} workers, epoch {epoch}"
                );
            }
            for (i, c) in &shards {
                let want: Vec<u64> = (1..=4).map(|e| e * 100 + *i as u64).collect();
                assert_eq!(c.log, want, "shard {i} saw every epoch in order");
            }
        }
    }

    #[test]
    fn pool_handles_more_workers_than_shards() {
        let mut pool: ShardPool<Counter> = ShardPool::new(8);
        let shards = vec![(
            0,
            Counter {
                id: 0,
                log: Vec::new(),
            },
        )];
        let shards = pool.run_epoch(shards, Time::from_ps(7));
        assert_eq!(shards.len(), 1);
        assert_eq!(shards[0].1.log, vec![7]);
    }
}
