//! A bounded FIFO with time-weighted occupancy statistics.

use std::collections::VecDeque;

use hmc_types::{Time, TimeDelta};

/// A capacity-limited FIFO queue that tracks its own occupancy over
/// simulated time.
///
/// The occupancy integral lets experiment code apply Little's law
/// (`L = λ·W`) to any queue in the system — the analysis the paper performs
/// on the vault controller in Figure 17.
///
/// ```
/// use sim_engine::queue::BoundedQueue;
/// use hmc_types::Time;
///
/// let mut q: BoundedQueue<u32> = BoundedQueue::new(2);
/// assert!(q.try_push(1, Time::from_ps(0)).is_ok());
/// assert!(q.try_push(2, Time::from_ps(0)).is_ok());
/// assert_eq!(q.try_push(3, Time::from_ps(0)), Err(3)); // full
/// assert_eq!(q.pop(Time::from_ps(10)), Some(1));
/// ```
#[derive(Debug, Clone)]
pub struct BoundedQueue<T> {
    items: VecDeque<T>,
    capacity: usize,
    /// Time-weighted occupancy integral, in item·ps.
    occupancy_integral: f64,
    last_change: Time,
    peak: usize,
    total_pushed: u64,
    total_rejected: u64,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be non-zero");
        BoundedQueue {
            // Full pre-allocation: a bounded queue can never outgrow its
            // capacity, so reserving it up front eliminates every
            // warm-up reallocation.
            items: VecDeque::with_capacity(capacity),
            capacity,
            occupancy_integral: 0.0,
            last_change: Time::ZERO,
            peak: 0,
            total_pushed: 0,
            total_rejected: 0,
        }
    }

    fn account(&mut self, now: Time) {
        let dt = now.since(self.last_change).as_ps() as f64;
        self.occupancy_integral += dt * self.items.len() as f64;
        self.last_change = now;
    }

    /// Attempts to enqueue `item` at instant `now`; hands the item back if
    /// the queue is full.
    pub fn try_push(&mut self, item: T, now: Time) -> Result<(), T> {
        if self.items.len() >= self.capacity {
            self.total_rejected += 1;
            return Err(item);
        }
        self.account(now);
        self.items.push_back(item);
        self.peak = self.peak.max(self.items.len());
        self.total_pushed += 1;
        Ok(())
    }

    /// Dequeues the oldest item at instant `now`.
    pub fn pop(&mut self, now: Time) -> Option<T> {
        if self.items.is_empty() {
            return None;
        }
        self.account(now);
        self.items.pop_front()
    }

    /// A reference to the oldest item without removing it.
    pub fn front(&self) -> Option<&T> {
        self.items.front()
    }

    /// Current number of queued items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// True if the queue is at capacity.
    pub fn is_full(&self) -> bool {
        self.items.len() >= self.capacity
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Remaining free slots.
    pub fn free(&self) -> usize {
        self.capacity - self.items.len()
    }

    /// Highest occupancy ever observed.
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Total successful enqueues.
    pub fn total_pushed(&self) -> u64 {
        self.total_pushed
    }

    /// Total rejected enqueues (attempts while full).
    pub fn total_rejected(&self) -> u64 {
        self.total_rejected
    }

    /// Average occupancy over `[start of sim, now]`, from the time-weighted
    /// integral. Returns 0 for a zero-length interval.
    pub fn mean_occupancy(&mut self, now: Time) -> f64 {
        self.account(now);
        let span = now.since(Time::ZERO).as_ps() as f64;
        if span == 0.0 {
            0.0
        } else {
            self.occupancy_integral / span
        }
    }

    /// Average occupancy over the window ending at `now` of length `window`,
    /// assuming statistics were reset at the window start via
    /// [`reset_stats`].
    ///
    /// [`reset_stats`]: BoundedQueue::reset_stats
    pub fn mean_occupancy_over(&mut self, now: Time, window: TimeDelta) -> f64 {
        self.account(now);
        if window.is_zero() {
            0.0
        } else {
            self.occupancy_integral / window.as_ps() as f64
        }
    }

    /// Clears accumulated statistics (not the queued items) as of `now`.
    pub fn reset_stats(&mut self, now: Time) {
        self.occupancy_integral = 0.0;
        self.last_change = now;
        self.peak = self.items.len();
        self.total_pushed = 0;
        self.total_rejected = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let mut q = BoundedQueue::new(4);
        for i in 0..4 {
            q.try_push(i, Time::ZERO).unwrap();
        }
        for i in 0..4 {
            assert_eq!(q.pop(Time::ZERO), Some(i));
        }
        assert_eq!(q.pop(Time::ZERO), None);
    }

    #[test]
    fn rejects_when_full() {
        let mut q = BoundedQueue::new(1);
        assert!(q.try_push('x', Time::ZERO).is_ok());
        assert!(q.is_full());
        assert_eq!(q.try_push('y', Time::ZERO), Err('y'));
        assert_eq!(q.total_rejected(), 1);
        assert_eq!(q.free(), 0);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_panics() {
        let _: BoundedQueue<u8> = BoundedQueue::new(0);
    }

    #[test]
    fn tracks_peak_and_counts() {
        let mut q = BoundedQueue::new(8);
        for i in 0..5 {
            q.try_push(i, Time::ZERO).unwrap();
        }
        q.pop(Time::ZERO);
        q.pop(Time::ZERO);
        assert_eq!(q.peak(), 5);
        assert_eq!(q.len(), 3);
        assert_eq!(q.total_pushed(), 5);
        assert!(!q.is_empty());
        assert_eq!(q.front(), Some(&2));
    }

    #[test]
    fn mean_occupancy_time_weighted() {
        let mut q = BoundedQueue::new(4);
        // Occupancy 1 over [0, 100), then 2 over [100, 200).
        q.try_push(1u8, Time::from_ps(0)).unwrap();
        q.try_push(2u8, Time::from_ps(100)).unwrap();
        let mean = q.mean_occupancy(Time::from_ps(200));
        assert!((mean - 1.5).abs() < 1e-9, "mean was {mean}");
    }

    #[test]
    fn mean_occupancy_empty_interval() {
        let mut q: BoundedQueue<u8> = BoundedQueue::new(2);
        assert_eq!(q.mean_occupancy(Time::ZERO), 0.0);
    }

    #[test]
    fn reset_stats_restarts_window() {
        let mut q = BoundedQueue::new(4);
        q.try_push(1u8, Time::from_ps(0)).unwrap();
        q.reset_stats(Time::from_ps(1_000));
        // Over the window [1000, 2000] occupancy is constant 1.
        let mean = q.mean_occupancy_over(Time::from_ps(2_000), TimeDelta::from_ps(1_000));
        assert!((mean - 1.0).abs() < 1e-9);
        assert_eq!(q.total_pushed(), 0);
        assert_eq!(q.peak(), 1);
    }

    #[test]
    fn littles_law_on_a_queue() {
        // Synthetic M/D/1-ish flow: push one item every 10 ps, pop it 30 ps
        // later. Steady-state occupancy should approach rate x wait = 3.
        let mut q = BoundedQueue::new(64);
        let mut now;
        for i in 0..1_000u64 {
            now = Time::from_ps(i * 10);
            q.try_push(i, now).unwrap();
            if i >= 3 {
                q.pop(now).unwrap();
            }
        }
        let mean = q.mean_occupancy(Time::from_ps(10_000));
        assert!((mean - 3.0).abs() < 0.1, "mean was {mean}");
    }
}
