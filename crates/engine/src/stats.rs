//! Measurement instruments: counters, latency histograms, time-weighted
//! averages, and bandwidth meters.

use std::fmt;

use hmc_types::{Time, TimeDelta};

/// A monotonically increasing event counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Creates a zeroed counter.
    pub const fn new() -> Self {
        Counter(0)
    }

    /// Adds one.
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current count.
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Resets to zero.
    pub fn reset(&mut self) {
        self.0 = 0;
    }

    /// Count divided by an elapsed wall of simulated time, in events per
    /// second.
    pub fn rate_per_sec(self, elapsed: TimeDelta) -> f64 {
        if elapsed.is_zero() {
            0.0
        } else {
            self.0 as f64 / elapsed.as_secs_f64()
        }
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A latency histogram storing summary moments plus a bounded reservoir of
/// raw samples for percentile queries.
///
/// The GUPS monitoring unit reports min / max / aggregate read latency; this
/// mirrors that and adds percentiles for richer analysis.
///
/// ```
/// use sim_engine::stats::Histogram;
/// use hmc_types::TimeDelta;
///
/// let mut h = Histogram::new();
/// for ns in [10, 20, 30] {
///     h.record(TimeDelta::from_ns(ns));
/// }
/// assert_eq!(h.mean().as_ns_f64(), 20.0);
/// assert_eq!(h.min().unwrap().as_ns_f64(), 10.0);
/// assert_eq!(h.max().unwrap().as_ns_f64(), 30.0);
/// ```
#[derive(Debug, Clone)]
pub struct Histogram {
    count: u64,
    sum_ps: u128,
    sum_sq_ps: f64,
    min: Option<TimeDelta>,
    max: Option<TimeDelta>,
    /// Raw samples, capped at `RESERVOIR_CAP` by uniform decimation.
    samples: Vec<u64>,
    /// Every `stride`-th sample is kept once the reservoir fills.
    stride: u64,
}

impl Histogram {
    const RESERVOIR_CAP: usize = 65_536;

    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            count: 0,
            sum_ps: 0,
            sum_sq_ps: 0.0,
            min: None,
            max: None,
            samples: Vec::new(),
            stride: 1,
        }
    }

    /// Records one latency sample.
    pub fn record(&mut self, sample: TimeDelta) {
        let ps = sample.as_ps();
        self.count += 1;
        self.sum_ps += ps as u128;
        self.sum_sq_ps += (ps as f64) * (ps as f64);
        self.min = Some(self.min.map_or(sample, |m| m.min(sample)));
        self.max = Some(self.max.map_or(sample, |m| m.max(sample)));
        if self.count.is_multiple_of(self.stride) {
            if self.samples.len() >= Self::RESERVOIR_CAP {
                // Decimate: keep every other sample and double the stride.
                let mut keep = Vec::with_capacity(Self::RESERVOIR_CAP / 2);
                for (i, &s) in self.samples.iter().enumerate() {
                    if i % 2 == 0 {
                        keep.push(s);
                    }
                }
                self.samples = keep;
                self.stride *= 2;
            }
            self.samples.push(ps);
        }
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Smallest recorded sample.
    pub fn min(&self) -> Option<TimeDelta> {
        self.min
    }

    /// Largest recorded sample.
    pub fn max(&self) -> Option<TimeDelta> {
        self.max
    }

    /// Arithmetic mean (zero if empty).
    pub fn mean(&self) -> TimeDelta {
        if self.count == 0 {
            TimeDelta::ZERO
        } else {
            TimeDelta::from_ps((self.sum_ps / self.count as u128) as u64)
        }
    }

    /// Population standard deviation in picoseconds (zero if fewer than two
    /// samples).
    pub fn std_dev_ps(&self) -> f64 {
        if self.count < 2 {
            return 0.0;
        }
        let n = self.count as f64;
        let mean = self.sum_ps as f64 / n;
        let var = (self.sum_sq_ps / n) - mean * mean;
        var.max(0.0).sqrt()
    }

    /// The `q`-quantile (`0.0..=1.0`) from the sample reservoir.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<TimeDelta> {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
        // The float picks an *index*; the sample itself is integer ps.
        // hmc-lint: allow(float-time)
        Some(TimeDelta::from_ps(sorted[idx]))
    }

    /// True while the reservoir still holds every recorded sample (no
    /// decimation yet), so exact-count percentiles are available.
    pub fn is_exact(&self) -> bool {
        self.stride == 1
    }

    /// The 99.9th percentile.
    ///
    /// While the reservoir is exact ([`is_exact`](Histogram::is_exact))
    /// this uses the exact nearest-rank definition — the
    /// `ceil(0.999 × n)`-th smallest sample, computed in integer
    /// arithmetic — which stays well-defined on sparse per-tenant
    /// histograms: a single sample is its own p999, and n ≤ 1000 yields
    /// the maximum. After decimation it falls back to the reservoir
    /// quantile estimate.
    pub fn p999(&self) -> Option<TimeDelta> {
        if self.samples.is_empty() {
            return None;
        }
        if !self.is_exact() {
            return self.quantile(0.999);
        }
        let n = self.samples.len();
        let rank = (999 * n).div_ceil(1000) - 1;
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        Some(TimeDelta::from_ps(sorted[rank]))
    }

    /// Sum of all samples.
    pub fn total(&self) -> TimeDelta {
        TimeDelta::from_ps(self.sum_ps.min(u64::MAX as u128) as u64)
    }

    /// Merges another histogram's moments into this one (reservoirs are
    /// concatenated then decimated lazily on the next record).
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum_ps += other.sum_ps;
        self.sum_sq_ps += other.sum_sq_ps;
        self.min = match (self.min, other.min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.max = match (self.max, other.max) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
        self.samples.extend_from_slice(&other.samples);
        if self.samples.len() > 2 * Self::RESERVOIR_CAP {
            let mut keep = Vec::with_capacity(Self::RESERVOIR_CAP);
            for (i, &s) in self.samples.iter().enumerate() {
                if i % 2 == 0 {
                    keep.push(s);
                }
            }
            self.samples = keep;
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "histogram(empty)");
        }
        write!(
            f,
            "n={} min={} mean={} max={}",
            self.count,
            self.min.unwrap_or(TimeDelta::ZERO),
            self.mean(),
            self.max.unwrap_or(TimeDelta::ZERO),
        )
    }
}

/// A time-weighted running average of a piecewise-constant signal (e.g.
/// instantaneous power).
#[derive(Debug, Clone)]
pub struct TimeWeighted {
    integral: f64,
    last_value: f64,
    last_time: Time,
    start: Time,
}

impl TimeWeighted {
    /// Starts tracking a signal whose value is `initial` at `start`.
    pub fn new(start: Time, initial: f64) -> Self {
        TimeWeighted {
            integral: 0.0,
            last_value: initial,
            last_time: start,
            start,
        }
    }

    /// Records that the signal changed to `value` at instant `now`.
    pub fn set(&mut self, now: Time, value: f64) {
        self.integral += self.last_value * now.since(self.last_time).as_ps() as f64;
        self.last_value = value;
        self.last_time = now;
    }

    /// The signal's current value.
    pub fn current(&self) -> f64 {
        self.last_value
    }

    /// The time-weighted mean over `[start, now]`.
    pub fn mean(&self, now: Time) -> f64 {
        let span = now.since(self.start).as_ps() as f64;
        if span == 0.0 {
            return self.last_value;
        }
        let integral = self.integral + self.last_value * now.since(self.last_time).as_ps() as f64;
        integral / span
    }
}

/// Accumulates bytes moved and reports bandwidth over the observation
/// window — the paper's accounting multiplies access counts by full packet
/// footprints (header + tail + payload) and divides by elapsed time.
#[derive(Debug, Clone, Copy, Default)]
pub struct BandwidthMeter {
    bytes: u64,
}

impl BandwidthMeter {
    /// Creates a zeroed meter.
    pub const fn new() -> Self {
        BandwidthMeter { bytes: 0 }
    }

    /// Records `bytes` moved.
    pub fn record(&mut self, bytes: u64) {
        self.bytes += bytes;
    }

    /// Total bytes recorded.
    pub const fn bytes(self) -> u64 {
        self.bytes
    }

    /// Bandwidth in bytes per second over `elapsed`.
    pub fn bytes_per_sec(self, elapsed: TimeDelta) -> f64 {
        if elapsed.is_zero() {
            0.0
        } else {
            self.bytes as f64 / elapsed.as_secs_f64()
        }
    }

    /// Bandwidth in gigabytes per second (decimal GB) over `elapsed`.
    pub fn gb_per_sec(self, elapsed: TimeDelta) -> f64 {
        self.bytes_per_sec(elapsed) / 1e9
    }

    /// Resets the meter.
    pub fn reset(&mut self) {
        self.bytes = 0;
    }
}

impl fmt::Display for BandwidthMeter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} bytes", self.bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let mut c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(c.rate_per_sec(TimeDelta::from_secs(5)), 1.0);
        c.reset();
        assert_eq!(c.get(), 0);
        assert_eq!(c.rate_per_sec(TimeDelta::ZERO), 0.0);
    }

    #[test]
    fn histogram_moments() {
        let mut h = Histogram::new();
        for ns in [100u64, 200, 300, 400] {
            h.record(TimeDelta::from_ns(ns));
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.mean().as_ns_f64(), 250.0);
        assert_eq!(h.min().unwrap().as_ns_f64(), 100.0);
        assert_eq!(h.max().unwrap().as_ns_f64(), 400.0);
        assert_eq!(h.total().as_ns_f64(), 1000.0);
        // Population std-dev of {100,200,300,400} ns is ~111.8 ns.
        assert!((h.std_dev_ps() / 1000.0 - 111.8).abs() < 0.1);
    }

    #[test]
    fn histogram_quantiles() {
        let mut h = Histogram::new();
        for i in 1..=100u64 {
            h.record(TimeDelta::from_ns(i));
        }
        assert_eq!(h.quantile(0.0).unwrap().as_ns_f64(), 1.0);
        assert_eq!(h.quantile(1.0).unwrap().as_ns_f64(), 100.0);
        let median = h.quantile(0.5).unwrap().as_ns_f64();
        assert!((49.0..=52.0).contains(&median));
    }

    #[test]
    fn p999_empty_is_none() {
        let h = Histogram::new();
        assert_eq!(h.p999(), None);
        assert!(h.is_exact());
    }

    #[test]
    fn p999_single_sample_is_that_sample() {
        let mut h = Histogram::new();
        h.record(TimeDelta::from_ns(42));
        assert_eq!(h.p999().unwrap().as_ns_f64(), 42.0);
    }

    #[test]
    fn p999_all_equal_collapses() {
        let mut h = Histogram::new();
        for _ in 0..500 {
            h.record(TimeDelta::from_ns(7));
        }
        assert_eq!(h.p999().unwrap().as_ns_f64(), 7.0);
    }

    #[test]
    fn p999_exact_nearest_rank() {
        // 1..=1000 ns: nearest-rank p999 is exactly the 999th smallest.
        let mut h = Histogram::new();
        for i in 1..=1000u64 {
            h.record(TimeDelta::from_ns(i));
        }
        assert!(h.is_exact());
        assert_eq!(h.p999().unwrap().as_ns_f64(), 999.0);
        // Under 1000 samples the nearest rank is the maximum.
        let mut small = Histogram::new();
        for i in 1..=100u64 {
            small.record(TimeDelta::from_ns(i));
        }
        assert_eq!(small.p999().unwrap().as_ns_f64(), 100.0);
    }

    #[test]
    fn p999_decimated_falls_back_to_estimate() {
        let mut h = Histogram::new();
        for i in 0..200_000u64 {
            h.record(TimeDelta::from_ps(i));
        }
        assert!(!h.is_exact());
        let p = h.p999().unwrap().as_ps();
        assert!((195_000..200_000).contains(&p), "p999 {p}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn quantile_range_checked() {
        let h = Histogram::new();
        let _ = h.quantile(1.5);
    }

    #[test]
    fn histogram_reservoir_decimates() {
        let mut h = Histogram::new();
        for i in 0..200_000u64 {
            h.record(TimeDelta::from_ps(i));
        }
        assert_eq!(h.count(), 200_000);
        assert!(h.samples.len() <= 70_000);
        // Quantiles remain sane after decimation.
        let q = h.quantile(0.5).unwrap().as_ps();
        assert!((90_000..110_000).contains(&q), "median {q}");
    }

    #[test]
    fn single_sample_quantiles_all_collapse() {
        let mut h = Histogram::new();
        h.record(TimeDelta::from_ns(42));
        for q in [0.0, 0.25, 0.5, 0.75, 1.0] {
            assert_eq!(h.quantile(q).unwrap().as_ns_f64(), 42.0, "q={q}");
        }
        assert_eq!(h.min(), h.max());
        assert_eq!(h.mean().as_ns_f64(), 42.0);
        assert_eq!(h.std_dev_ps(), 0.0);
    }

    #[test]
    fn merge_into_empty_copies_everything() {
        let mut src = Histogram::new();
        for ns in [5u64, 15, 25] {
            src.record(TimeDelta::from_ns(ns));
        }
        let mut dst = Histogram::new();
        dst.merge(&src);
        assert_eq!(dst.count(), 3);
        assert_eq!(dst.mean().as_ns_f64(), 15.0);
        assert_eq!(dst.min().unwrap().as_ns_f64(), 5.0);
        assert_eq!(dst.max().unwrap().as_ns_f64(), 25.0);
        assert_eq!(dst.quantile(0.5).unwrap().as_ns_f64(), 15.0);
        assert_eq!(dst.total(), src.total());
    }

    #[test]
    fn merge_empty_into_populated_is_identity() {
        let mut a = Histogram::new();
        a.record(TimeDelta::from_ns(10));
        let before = (a.count(), a.min(), a.max(), a.total());
        a.merge(&Histogram::new());
        assert_eq!((a.count(), a.min(), a.max(), a.total()), before);
    }

    #[test]
    fn merge_two_empties_stays_empty() {
        let mut a = Histogram::new();
        a.merge(&Histogram::new());
        assert!(a.is_empty());
        assert_eq!(a.min(), None);
        assert_eq!(a.max(), None);
        assert_eq!(a.quantile(0.0), None);
        assert_eq!(a.quantile(1.0), None);
        assert_eq!(a.mean(), TimeDelta::ZERO);
    }

    #[test]
    fn quantile_extremes_bracket_after_merge() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for i in 1..=50u64 {
            a.record(TimeDelta::from_ns(i));
            b.record(TimeDelta::from_ns(100 + i));
        }
        a.merge(&b);
        assert_eq!(a.quantile(0.0).unwrap().as_ns_f64(), 1.0);
        assert_eq!(a.quantile(1.0).unwrap().as_ns_f64(), 150.0);
        assert_eq!(a.count(), 100);
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(TimeDelta::from_ns(10));
        b.record(TimeDelta::from_ns(30));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.mean().as_ns_f64(), 20.0);
        assert_eq!(a.min().unwrap().as_ns_f64(), 10.0);
        assert_eq!(a.max().unwrap().as_ns_f64(), 30.0);
    }

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.mean(), TimeDelta::ZERO);
        assert_eq!(h.min(), None);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.std_dev_ps(), 0.0);
        assert_eq!(format!("{h}"), "histogram(empty)");
    }

    #[test]
    fn time_weighted_mean() {
        let mut tw = TimeWeighted::new(Time::ZERO, 10.0);
        tw.set(Time::from_ps(100), 20.0);
        // 10 over [0,100), 20 over [100,200): mean 15.
        assert!((tw.mean(Time::from_ps(200)) - 15.0).abs() < 1e-9);
        assert_eq!(tw.current(), 20.0);
        // Zero-length window returns the current value.
        let fresh = TimeWeighted::new(Time::ZERO, 7.0);
        assert_eq!(fresh.mean(Time::ZERO), 7.0);
    }

    #[test]
    fn bandwidth_meter() {
        let mut m = BandwidthMeter::new();
        m.record(160);
        m.record(160);
        assert_eq!(m.bytes(), 320);
        // 320 B over 16 ns = 20 GB/s.
        assert!((m.gb_per_sec(TimeDelta::from_ns(16)) - 20.0).abs() < 1e-9);
        assert_eq!(m.bytes_per_sec(TimeDelta::ZERO), 0.0);
        m.reset();
        assert_eq!(m.bytes(), 0);
    }

    #[test]
    fn display_impls() {
        let mut h = Histogram::new();
        h.record(TimeDelta::from_ns(5));
        assert!(format!("{h}").contains("n=1"));
        let mut c = Counter::new();
        c.incr();
        assert_eq!(format!("{c}"), "1");
        assert!(format!("{}", BandwidthMeter::new()).contains("bytes"));
    }
}
