//! Seeded fault-scenario model: a deterministic schedule of typed faults.
//!
//! A [`FaultScenario`] is a named, seeded schedule of [`FaultEvent`]s.
//! Each event carries a trigger time and a [`FaultKind`]; the simulation
//! layers (device, host, system) translate them into ordinary simulation
//! events at install time, so a faulted run is exactly as deterministic
//! as a clean one. Per-packet effects (flit corruption) do not enumerate
//! packets here — they arm a bit-error rate on a link, and the link draws
//! per-packet corruption from its own seeded PRNG.
//!
//! The module is policy-free: it knows nothing about links, vaults, or
//! hosts beyond their indices. Composition into the built-in named
//! scenarios lives here so every consumer (CLI, tests, CI) agrees on
//! what, say, `link-death` means.

use std::fmt;

use hmc_types::{Time, TimeDelta};

/// One typed fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Arm a bit-error rate on one external link; every packet transfer
    /// on that link thereafter draws corruption from the link's seeded
    /// PRNG and re-serializes through the retry protocol on failure.
    FlitCorruption {
        /// External link index.
        link: usize,
        /// Probability of a single bit flipping in transit.
        ber: f64,
    },
    /// Leak ingress tokens on one link: the device stops advertising
    /// `count` credits to the host, permanently shrinking the usable
    /// flow-control window.
    CreditLeak {
        /// External link index.
        link: usize,
        /// Credits that disappear from the advertised window.
        count: usize,
    },
    /// Stall one link's serializers (both directions) for a duration:
    /// in-progress transfers finish, but no new transfer starts until
    /// the stall lifts. A duration longer than the run models link
    /// death.
    LinkStall {
        /// External link index.
        link: usize,
        /// How long the link stays silent.
        duration: TimeDelta,
    },
    /// Wedge one vault: its banks accept no new DRAM access until the
    /// hold lifts (queued requests wait; upstream backpressure applies).
    VaultWedge {
        /// Vault index.
        vault: usize,
        /// How long the vault stays wedged.
        duration: TimeDelta,
    },
    /// Force the cube's surface temperature to a value at the trigger
    /// instant. If it crosses the `FailurePolicy` limit for the active
    /// workload the device performs an in-band thermal shutdown and the
    /// timed recovery sequence.
    ThermalSpike {
        /// Forced surface temperature in degrees Celsius.
        surface_c: f64,
    },
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            FaultKind::FlitCorruption { link, ber } => {
                write!(f, "flit-corruption(link {link}, ber {ber:.1e})")
            }
            FaultKind::CreditLeak { link, count } => {
                write!(f, "credit-leak(link {link}, {count} tokens)")
            }
            FaultKind::LinkStall { link, duration } => {
                write!(f, "link-stall(link {link}, {} ns)", duration.as_ns_f64())
            }
            FaultKind::VaultWedge { vault, duration } => {
                write!(f, "vault-wedge(vault {vault}, {} ns)", duration.as_ns_f64())
            }
            FaultKind::ThermalSpike { surface_c } => {
                write!(f, "thermal-spike({surface_c:.1} C)")
            }
        }
    }
}

/// A fault with its deterministic trigger time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// Simulated instant the fault triggers.
    pub at: Time,
    /// What happens.
    pub kind: FaultKind,
}

/// A named, seeded, composable schedule of faults.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultScenario {
    /// Scenario name (built-in scenarios use stable names the CLI and CI
    /// refer to).
    pub name: String,
    /// Seed mixed into per-packet draws (the link PRNGs), so two
    /// scenarios with the same schedule but different seeds corrupt
    /// different packets.
    pub seed: u64,
    /// The schedule, sorted by trigger time at construction.
    pub events: Vec<FaultEvent>,
}

impl FaultScenario {
    /// Creates an empty scenario.
    pub fn new(name: &str, seed: u64) -> Self {
        FaultScenario {
            name: name.to_string(),
            seed,
            events: Vec::new(),
        }
    }

    /// Adds a fault at `at`, keeping the schedule sorted by trigger
    /// time (stable for equal times).
    pub fn with(mut self, at: Time, kind: FaultKind) -> Self {
        self.events.push(FaultEvent { at, kind });
        self.events.sort_by_key(|e| e.at);
        self
    }

    /// True if the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The names of the built-in scenarios, in presentation order.
    pub fn builtin_names() -> &'static [&'static str] {
        &[
            "noisy-link",
            "credit-leak",
            "link-stall",
            "link-death",
            "vault-wedge",
            "thermal-throttle",
            "thermal-runaway",
        ]
    }

    /// Looks up a built-in scenario by name.
    ///
    /// * `noisy-link` — BER 1e-6 on both links from t=0: every packet
    ///   pays the CRC/retry stage, a few percent re-serialize.
    /// * `credit-leak` — link 0 silently loses 24 of its 32 ingress
    ///   tokens at 200 us, throttling one link's flow-control window.
    /// * `link-stall` — link 1 goes silent for 60 us at 300 us, long
    ///   enough for host deadlines to fire and duplicate-response
    ///   handling to engage when the link comes back.
    /// * `link-death` — link 1 goes permanently silent at 200 us; after
    ///   N consecutive timeouts the host declares it dead and degrades
    ///   to the surviving link.
    /// * `vault-wedge` — vault 5 accepts no DRAM access for 40 us at
    ///   250 us; upstream backpressure and recovery are observable.
    /// * `thermal-throttle` — an 82 C spike at 300 us: below the read
    ///   shutdown limit but above the refresh-boost threshold, so the
    ///   device doubles its refresh rate (and a write-heavy workload
    ///   shuts down instead).
    /// * `thermal-runaway` — a 92 C spike at 400 us: above every limit,
    ///   forcing shutdown, DRAM loss, the timed recovery sequence, and
    ///   a host replay of its in-flight window.
    pub fn builtin(name: &str) -> Option<Self> {
        let us = |n: u64| Time::from_ps(n * 1_000_000);
        let scenario = match name {
            "noisy-link" => FaultScenario::new(name, 0xFA_0711)
                .with(Time::ZERO, FaultKind::FlitCorruption { link: 0, ber: 1e-6 })
                .with(Time::ZERO, FaultKind::FlitCorruption { link: 1, ber: 1e-6 }),
            "credit-leak" => FaultScenario::new(name, 0xFA_0712)
                .with(us(200), FaultKind::CreditLeak { link: 0, count: 24 }),
            "link-stall" => FaultScenario::new(name, 0xFA_0713).with(
                us(300),
                FaultKind::LinkStall {
                    link: 1,
                    duration: TimeDelta::from_ns(60_000),
                },
            ),
            "link-death" => FaultScenario::new(name, 0xFA_0714).with(
                us(200),
                FaultKind::LinkStall {
                    link: 1,
                    // Far longer than any run: the link never comes back.
                    duration: TimeDelta::from_ns(3_600_000_000_000),
                },
            ),
            "vault-wedge" => FaultScenario::new(name, 0xFA_0715).with(
                us(250),
                FaultKind::VaultWedge {
                    vault: 5,
                    duration: TimeDelta::from_ns(40_000),
                },
            ),
            "thermal-throttle" => FaultScenario::new(name, 0xFA_0716)
                .with(us(300), FaultKind::ThermalSpike { surface_c: 82.0 }),
            "thermal-runaway" => FaultScenario::new(name, 0xFA_0717)
                .with(us(400), FaultKind::ThermalSpike { surface_c: 92.0 }),
            _ => return None,
        };
        Some(scenario)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_stays_sorted() {
        let s = FaultScenario::new("x", 1)
            .with(
                Time::from_ps(500),
                FaultKind::ThermalSpike { surface_c: 90.0 },
            )
            .with(
                Time::from_ps(100),
                FaultKind::CreditLeak { link: 0, count: 2 },
            )
            .with(
                Time::from_ps(300),
                FaultKind::LinkStall {
                    link: 1,
                    duration: TimeDelta::from_ns(10),
                },
            );
        let times: Vec<u64> = s.events.iter().map(|e| e.at.as_ps()).collect();
        assert_eq!(times, vec![100, 300, 500]);
    }

    #[test]
    fn every_builtin_resolves() {
        for name in FaultScenario::builtin_names() {
            let s = FaultScenario::builtin(name).expect("builtin must resolve");
            assert_eq!(s.name, *name);
            assert!(!s.is_empty(), "{name} has an empty schedule");
        }
        assert!(FaultScenario::builtin("no-such-scenario").is_none());
    }

    #[test]
    fn builtin_seeds_are_distinct() {
        let mut seeds: Vec<u64> = FaultScenario::builtin_names()
            .iter()
            .map(|n| FaultScenario::builtin(n).expect("resolves").seed)
            .collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), FaultScenario::builtin_names().len());
    }

    #[test]
    fn display_is_readable() {
        let k = FaultKind::FlitCorruption { link: 1, ber: 1e-6 };
        assert_eq!(k.to_string(), "flit-corruption(link 1, ber 1.0e-6)");
        let k = FaultKind::ThermalSpike { surface_c: 92.0 };
        assert_eq!(k.to_string(), "thermal-spike(92.0 C)");
    }
}
