//! Per-request lifecycle tracing: stage-transition spans accumulated into
//! per-stage histograms, plus a sampled event log exportable as Chrome
//! trace-event JSON (loadable in Perfetto / `chrome://tracing`).
//!
//! The tracer is always compiled in and owned by each simulation actor,
//! but **disabled by default**: every recording method begins with an
//! `enabled` check and returns immediately, so the steady-state cost of a
//! disabled tracer is one predictable branch per call site — no
//! allocation, no hashing, no histogram update.
//!
//! The engine stays policy-free: stages are plain indices into a static
//! name table the owning crate supplies (the HMC stage vocabulary lives in
//! `hmc_types::trace`). A request's spans telescope: `begin` opens the
//! trace at an instant, each `transition` records the span since the last
//! boundary under one stage, and `finish` records the final span and
//! closes the trace. `rebase` re-opens a trace at a hand-off instant when
//! another actor (with its own tracer) accounted for the interval in
//! between.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use hmc_types::{Time, TimeDelta};

use crate::stats::Histogram;

/// One sampled stage span of one traced request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// The trace (request) identifier.
    pub trace_id: u64,
    /// Index into the tracer's stage-name table.
    pub stage: usize,
    /// Instant the stage began.
    pub start: Time,
    /// Instant the stage ended.
    pub end: Time,
}

impl TraceEvent {
    /// The span's duration.
    pub fn duration(&self) -> TimeDelta {
        self.end.since(self.start)
    }
}

/// A lifecycle tracer owned by one simulation actor.
#[derive(Debug, Clone)]
pub struct Tracer {
    enabled: bool,
    /// Requests whose trace id is a multiple of this are kept in the
    /// event log (histograms always see every request).
    sample_every: u64,
    names: &'static [&'static str],
    /// Open traces: id → instant of the last recorded boundary.
    open: BTreeMap<u64, Time>,
    stages: Vec<Histogram>,
    events: Vec<TraceEvent>,
}

impl Tracer {
    /// Creates a disabled tracer over the given stage vocabulary.
    pub fn new(names: &'static [&'static str]) -> Self {
        Tracer {
            enabled: false,
            sample_every: 1,
            names,
            open: BTreeMap::new(),
            stages: vec![Histogram::new(); names.len()],
            events: Vec::new(),
        }
    }

    /// Enables recording. Every request feeds the per-stage histograms;
    /// one in `sample_every` (by trace id) is additionally kept in the
    /// event log for export (0 is treated as 1).
    pub fn enable(&mut self, sample_every: u64) {
        self.enabled = true;
        self.sample_every = sample_every.max(1);
    }

    /// True if the tracer records anything.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The stage-name table this tracer indexes into.
    pub fn stage_names(&self) -> &'static [&'static str] {
        self.names
    }

    /// Opens a trace: the request's first boundary is `at`.
    #[inline]
    pub fn begin(&mut self, id: u64, at: Time) {
        if !self.enabled {
            return;
        }
        self.open.insert(id, at);
    }

    /// Re-opens a trace at a hand-off instant (a different actor's tracer
    /// accounted for the time since this tracer's last boundary).
    #[inline]
    pub fn rebase(&mut self, id: u64, at: Time) {
        if !self.enabled {
            return;
        }
        self.open.insert(id, at);
    }

    /// Records the span since the trace's last boundary under `stage` and
    /// moves the boundary to `at`. Unknown ids are ignored (the request
    /// predates tracing being enabled).
    #[inline]
    pub fn transition(&mut self, id: u64, stage: usize, at: Time) {
        if !self.enabled {
            return;
        }
        self.record(id, stage, at, false);
    }

    /// Like [`transition`](Tracer::transition), then closes the trace.
    #[inline]
    pub fn finish(&mut self, id: u64, stage: usize, at: Time) {
        if !self.enabled {
            return;
        }
        self.record(id, stage, at, true);
    }

    fn record(&mut self, id: u64, stage: usize, at: Time, close: bool) {
        let Some(slot) = self.open.get_mut(&id) else {
            return;
        };
        let start = *slot;
        self.stages[stage].record(at.since(start));
        if close {
            self.open.remove(&id);
        } else {
            *slot = at;
        }
        if id.is_multiple_of(self.sample_every) {
            self.events.push(TraceEvent {
                trace_id: id,
                stage,
                start,
                end: at,
            });
        }
    }

    /// Per-stage span histograms, indexed by stage.
    pub fn stage_histograms(&self) -> &[Histogram] {
        &self.stages
    }

    /// The sampled event log, in recording order (not time order — a
    /// boundary may be recorded ahead of time when it is already known).
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Traces begun but not yet finished (in-flight requests).
    pub fn open_traces(&self) -> usize {
        self.open.len()
    }
}

/// Renders events as Chrome trace-event JSON (the `traceEvents` array
/// format Perfetto and `chrome://tracing` load directly). Events are
/// sorted for deterministic output; each traced request becomes one
/// `tid` track carrying its stage spans as complete (`"ph":"X"`) events.
pub fn chrome_trace_json(events: &[TraceEvent], names: &[&str]) -> String {
    let mut out = String::with_capacity(64 + events.len() * 96);
    out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    chrome_trace_events(events, names, &mut out);
    out.push_str("]}\n");
    out
}

/// Serializes request events as a comma-separated fragment of Chrome
/// trace-event objects (no surrounding array), appended to `out`.
/// Callers composing a larger export (e.g. adding per-shard epoch
/// tracks) use this and supply their own wrapper. Events are sorted for
/// deterministic output; each traced request becomes one `pid:0` /
/// `tid:trace_id` track.
pub fn chrome_trace_events(events: &[TraceEvent], names: &[&str], out: &mut String) {
    let mut sorted: Vec<&TraceEvent> = events.iter().collect();
    sorted.sort_by_key(|e| (e.start, e.trace_id, e.stage));
    for (i, e) in sorted.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        // Chrome trace timestamps are microseconds (fractions allowed).
        write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"request\",\"ph\":\"X\",\
             \"ts\":{:.6},\"dur\":{:.6},\"pid\":0,\"tid\":{},\
             \"args\":{{\"stage\":{}}}}}",
            names.get(e.stage).copied().unwrap_or("?"),
            e.start.as_ps() as f64 / 1e6,
            e.duration().as_ps() as f64 / 1e6,
            e.trace_id,
            e.stage,
        )
        .expect("writing to a String cannot fail");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const NAMES: [&str; 3] = ["alpha", "beta", "gamma"];

    fn tracer() -> Tracer {
        let mut t = Tracer::new(&NAMES);
        t.enable(1);
        t
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut t = Tracer::new(&NAMES);
        assert!(!t.is_enabled());
        t.begin(1, Time::ZERO);
        t.transition(1, 0, Time::from_ps(10));
        t.finish(1, 1, Time::from_ps(20));
        assert!(t.events().is_empty());
        assert!(t.stage_histograms().iter().all(|h| h.is_empty()));
        assert_eq!(t.open_traces(), 0);
    }

    #[test]
    fn spans_telescope_to_the_full_interval() {
        let mut t = tracer();
        t.begin(7, Time::from_ps(100));
        t.transition(7, 0, Time::from_ps(150));
        t.transition(7, 1, Time::from_ps(400));
        t.finish(7, 2, Time::from_ps(1_000));
        let h = t.stage_histograms();
        assert_eq!(h[0].total().as_ps(), 50);
        assert_eq!(h[1].total().as_ps(), 250);
        assert_eq!(h[2].total().as_ps(), 600);
        let sum: u64 = h.iter().map(|h| h.total().as_ps()).sum();
        assert_eq!(sum, 900, "stages cover begin..finish exactly");
        assert_eq!(t.open_traces(), 0);
        assert_eq!(t.events().len(), 3);
    }

    #[test]
    fn rebase_skips_the_handed_off_interval() {
        let mut t = tracer();
        t.begin(2, Time::ZERO);
        t.transition(2, 0, Time::from_ps(10));
        // 10..90 accounted elsewhere.
        t.rebase(2, Time::from_ps(90));
        t.finish(2, 1, Time::from_ps(100));
        assert_eq!(t.stage_histograms()[0].total().as_ps(), 10);
        assert_eq!(t.stage_histograms()[1].total().as_ps(), 10);
    }

    #[test]
    fn unknown_ids_are_ignored() {
        let mut t = tracer();
        t.transition(99, 0, Time::from_ps(10));
        t.finish(99, 1, Time::from_ps(20));
        assert!(t.events().is_empty());
        assert!(t.stage_histograms().iter().all(|h| h.is_empty()));
    }

    #[test]
    fn sampling_keeps_histograms_complete() {
        let mut t = Tracer::new(&NAMES);
        t.enable(4);
        for id in 0..8u64 {
            t.begin(id, Time::ZERO);
            t.finish(id, 0, Time::from_ps(5));
        }
        // Histograms see all 8; the event log keeps ids 0 and 4 only.
        assert_eq!(t.stage_histograms()[0].count(), 8);
        let ids: Vec<u64> = t.events().iter().map(|e| e.trace_id).collect();
        assert_eq!(ids, vec![0, 4]);
    }

    #[test]
    fn chrome_json_shape() {
        let mut t = tracer();
        t.begin(1, Time::from_ps(2_000_000));
        t.finish(1, 2, Time::from_ps(3_000_000));
        let json = chrome_trace_json(t.events(), t.stage_names());
        assert!(json.starts_with('{'));
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"name\":\"gamma\""));
        assert!(json.contains("\"ts\":2.000000"));
        assert!(json.contains("\"dur\":1.000000"));
        assert!(json.contains("\"tid\":1"));
    }

    #[test]
    fn chrome_json_is_sorted_and_deterministic() {
        let events = [
            TraceEvent {
                trace_id: 5,
                stage: 0,
                start: Time::from_ps(300),
                end: Time::from_ps(400),
            },
            TraceEvent {
                trace_id: 1,
                stage: 1,
                start: Time::from_ps(100),
                end: Time::from_ps(200),
            },
        ];
        let json = chrome_trace_json(&events, &NAMES);
        let beta = json.find("\"beta\"").expect("beta present");
        let alpha = json.find("\"alpha\"").expect("alpha present");
        assert!(beta < alpha, "earlier span serialized first");
        assert_eq!(json, chrome_trace_json(&events, &NAMES));
    }
}
