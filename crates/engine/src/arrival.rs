//! Deterministic open-loop arrival processes.
//!
//! Closed-loop generators (the GUPS ports) self-limit: a port with no free
//! tag simply waits, so the system can never be offered more load than it
//! retires. Production traffic is the opposite — arrivals keep coming no
//! matter how the memory behaves. This module supplies the deterministic
//! arrival processes the open-loop frontend draws from:
//!
//! * [`ArrivalStream`] — Poisson and two-state MMPP (Markov-modulated
//!   Poisson) interarrival processes, seeded from [`SplitMix64`]. One
//!   stream stands in for thousands-to-millions of logical clients: the
//!   superposition of many independent sparse client processes converges
//!   to a Poisson process at the aggregate rate, so per-tenant folding is
//!   exact in the limit the frontend targets.
//! * [`ZipfSampler`] — Zipf-distributed item ranks (the YCSB/Gray
//!   rejection-free approximation) for hot-address popularity skew.
//!
//! Everything here is pure state + seed: the same construction parameters
//! replay the same arrival instants bit-for-bit, which is what lets the
//! overload experiments stay deterministic at any shard count.

use hmc_types::{Time, TimeDelta};

use crate::rng::SplitMix64;

/// Hard ceiling on one sampled interarrival gap (1 ms in ps). Keeps a
/// pathological exponential tail from overflowing picosecond arithmetic;
/// at the ≥ 10⁴ rps rates the frontend drives this truncates a vanishing
/// fraction of mass.
const MAX_GAP_PS: f64 = 1e9;

/// Draws an exponential variate with the given mean (in picoseconds),
/// clamped to `[1, MAX_GAP_PS]` so arrivals always advance time.
fn exp_gap_ps(rng: &mut SplitMix64, mean_ps: f64) -> u64 {
    // `1 - u` maps the `[0, 1)` uniform onto `(0, 1]`, keeping ln finite.
    let u = 1.0 - rng.next_f64();
    let gap = -u.ln() * mean_ps;
    // The float picks a *gap width*; arithmetic on Time stays integer ps.
    gap.clamp(1.0, MAX_GAP_PS) as u64
}

/// Shape of a tenant's interarrival process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalKind {
    /// Memoryless arrivals at the stream's mean rate.
    Poisson,
    /// Two-state Markov-modulated Poisson process: the stream alternates
    /// between an ON (burst) state running at `burst ×` the mean rate and
    /// an OFF state slowed so the long-run average still equals the mean.
    Mmpp {
        /// Rate multiplier while bursting. Must satisfy
        /// `burst × on_fraction ≤ 1` so the OFF-state rate stays
        /// non-negative.
        burst: f64,
        /// Long-run fraction of time spent in the ON state, in `(0, 1)`.
        on_fraction: f64,
        /// Mean length of one ON + OFF cycle. Dwell times in each state
        /// are exponential with means `on_fraction × cycle` and
        /// `(1 − on_fraction) × cycle`.
        cycle: TimeDelta,
    },
}

/// One tenant's deterministic arrival process.
///
/// ```
/// use sim_engine::arrival::{ArrivalKind, ArrivalStream};
/// use sim_engine::rng::SplitMix64;
/// use hmc_types::Time;
///
/// let mut s = ArrivalStream::new(1.0e6, ArrivalKind::Poisson, SplitMix64::new(7));
/// let first = s.next_arrival(Time::ZERO);
/// let second = s.next_arrival(first);
/// assert!(second > first);
/// ```
#[derive(Debug, Clone)]
pub struct ArrivalStream {
    /// Long-run mean arrival rate in requests per second.
    mean_rps: f64,
    kind: ArrivalKind,
    rng: SplitMix64,
    /// MMPP state: currently bursting?
    on: bool,
    /// MMPP state: instant of the next state switch (`None` until the
    /// first arrival query initializes it, and always `None` for Poisson).
    switch_at: Option<Time>,
}

impl ArrivalStream {
    /// Creates a stream with the given long-run mean rate.
    ///
    /// # Panics
    ///
    /// Panics on a non-positive rate or out-of-range MMPP parameters.
    pub fn new(mean_rps: f64, kind: ArrivalKind, rng: SplitMix64) -> Self {
        assert!(mean_rps > 0.0, "arrival rate must be positive");
        if let ArrivalKind::Mmpp {
            burst,
            on_fraction,
            cycle,
        } = kind
        {
            assert!(burst >= 1.0, "burst multiplier must be >= 1");
            assert!(
                (0.0..1.0).contains(&on_fraction) && on_fraction > 0.0,
                "on_fraction must be in (0, 1)"
            );
            assert!(
                burst * on_fraction <= 1.0,
                "burst x on_fraction must not exceed 1 (OFF rate would go negative)"
            );
            assert!(!cycle.is_zero(), "MMPP cycle must be positive");
        }
        ArrivalStream {
            mean_rps,
            kind,
            rng,
            // Streams begin in the OFF state so a freshly started system
            // sees the baseline rate before the first burst.
            on: false,
            switch_at: None,
        }
    }

    /// The long-run mean rate in requests per second.
    pub fn mean_rps(&self) -> f64 {
        self.mean_rps
    }

    /// The instantaneous rate of the current MMPP state (or the mean for
    /// Poisson).
    fn current_rps(&self) -> f64 {
        match self.kind {
            ArrivalKind::Poisson => self.mean_rps,
            ArrivalKind::Mmpp {
                burst, on_fraction, ..
            } => {
                if self.on {
                    self.mean_rps * burst
                } else {
                    // Chosen so on_fraction·r_on + (1−on_fraction)·r_off
                    // equals the mean exactly.
                    self.mean_rps * (1.0 - burst * on_fraction) / (1.0 - on_fraction)
                }
            }
        }
    }

    /// Mean dwell time of the current MMPP state, in picoseconds.
    fn dwell_mean_ps(&self) -> f64 {
        match self.kind {
            ArrivalKind::Poisson => 0.0,
            ArrivalKind::Mmpp {
                on_fraction, cycle, ..
            } => {
                let f = if self.on {
                    on_fraction
                } else {
                    1.0 - on_fraction
                };
                cycle.as_ps() as f64 * f
            }
        }
    }

    /// Flips the MMPP state at `boundary` and draws the next dwell.
    fn switch_state(&mut self, boundary: Time) {
        self.on = !self.on;
        let mean = self.dwell_mean_ps();
        let dwell = exp_gap_ps(&mut self.rng, mean);
        self.switch_at = Some(boundary + TimeDelta::from_ps(dwell));
    }

    /// The instant of the next arrival strictly after `now`.
    ///
    /// Open loop: the caller schedules this instant unconditionally — the
    /// stream never looks at system occupancy. Both the exponential gaps
    /// and the MMPP dwell times are memoryless, so crossing a state
    /// boundary discards the partial gap and redraws at the new rate
    /// without biasing the process.
    pub fn next_arrival(&mut self, now: Time) -> Time {
        if matches!(self.kind, ArrivalKind::Poisson) {
            let gap = exp_gap_ps(&mut self.rng, 1e12 / self.mean_rps);
            return now + TimeDelta::from_ps(gap);
        }
        let mut cursor = now;
        loop {
            let boundary = match self.switch_at {
                Some(b) if b > cursor => b,
                // Uninitialized or already-passed boundary: start a fresh
                // dwell of the current state from the cursor.
                _ => {
                    let mean = self.dwell_mean_ps();
                    let dwell = exp_gap_ps(&mut self.rng, mean);
                    let b = cursor + TimeDelta::from_ps(dwell);
                    self.switch_at = Some(b);
                    b
                }
            };
            let rps = self.current_rps();
            if rps <= 0.0 {
                // Fully silent OFF state: jump to the burst.
                self.switch_state(boundary);
                cursor = boundary;
                continue;
            }
            let gap = exp_gap_ps(&mut self.rng, 1e12 / rps);
            let candidate = cursor + TimeDelta::from_ps(gap);
            if candidate < boundary {
                return candidate;
            }
            self.switch_state(boundary);
            cursor = boundary;
        }
    }
}

/// Zipf-distributed item ranks over `0..n` — the YCSB/Gray rejection-free
/// generator. Rank 0 is the hottest item; skew `theta` in `[0, 1)` (0 =
/// uniform, 0.99 = the YCSB default "hotspot" skew).
///
/// ```
/// use sim_engine::arrival::ZipfSampler;
/// use sim_engine::rng::SplitMix64;
///
/// let zipf = ZipfSampler::new(1000, 0.99);
/// let mut rng = SplitMix64::new(3);
/// assert!(zipf.sample(&mut rng) < 1000);
/// ```
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    /// ζ(2, θ) = 1 + 2⁻ᶿ — the two-item partial zeta the Gray formula
    /// special-cases.
    zeta2: f64,
}

impl ZipfSampler {
    /// Precomputes the partial zeta sums for `n` items at skew `theta`.
    /// O(n) once; sampling is O(1).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `theta` is outside `[0, 1)`.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one item");
        assert!((0.0..1.0).contains(&theta), "theta must be in [0, 1)");
        let mut zetan = 0.0;
        for i in 1..=n {
            zetan += 1.0 / (i as f64).powf(theta);
        }
        let zeta2 = if n >= 2 {
            1.0 + 0.5f64.powf(theta)
        } else {
            1.0
        };
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        ZipfSampler {
            n,
            theta,
            alpha,
            zetan,
            eta,
            zeta2,
        }
    }

    /// Number of items.
    pub fn items(&self) -> u64 {
        self.n
    }

    /// The configured skew.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Draws one rank in `0..n`, hottest first.
    pub fn sample(&self, rng: &mut SplitMix64) -> u64 {
        if self.n == 1 {
            // Consume one draw anyway so stream alignment is shape-free.
            let _ = rng.next_f64();
            return 0;
        }
        let u = rng.next_f64();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < self.zeta2 {
            return 1;
        }
        let rank = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(self.n - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_mean_interarrival_matches_rate() {
        // 1M rps => 1 µs mean gap.
        let mut s = ArrivalStream::new(1.0e6, ArrivalKind::Poisson, SplitMix64::new(11));
        let mut t = Time::ZERO;
        let n = 20_000;
        for _ in 0..n {
            t = s.next_arrival(t);
        }
        let mean_gap_ns = t.as_ps() as f64 / n as f64 / 1000.0;
        assert!((900.0..1100.0).contains(&mean_gap_ns), "mean {mean_gap_ns}");
    }

    #[test]
    fn arrivals_strictly_advance() {
        let kind = ArrivalKind::Mmpp {
            burst: 4.0,
            on_fraction: 0.2,
            cycle: TimeDelta::from_us(10),
        };
        let mut s = ArrivalStream::new(5.0e6, kind, SplitMix64::new(23));
        let mut t = Time::ZERO;
        for _ in 0..50_000 {
            let next = s.next_arrival(t);
            assert!(next > t);
            t = next;
        }
    }

    #[test]
    fn mmpp_long_run_rate_matches_mean() {
        let kind = ArrivalKind::Mmpp {
            burst: 4.0,
            on_fraction: 0.2,
            cycle: TimeDelta::from_us(10),
        };
        let mut s = ArrivalStream::new(2.0e6, kind, SplitMix64::new(5));
        let mut t = Time::ZERO;
        let n = 200_000;
        for _ in 0..n {
            t = s.next_arrival(t);
        }
        let rate = n as f64 / (t.as_ps() as f64 / 1e12);
        assert!(
            (1.8e6..2.2e6).contains(&rate),
            "long-run rate {rate} vs mean 2e6"
        );
    }

    #[test]
    fn mmpp_is_burstier_than_poisson() {
        // Compare squared-coefficient-of-variation of interarrival gaps:
        // Poisson has CV² ≈ 1; a 5x burst process must exceed it.
        let sq_cv = |kind: ArrivalKind| {
            let mut s = ArrivalStream::new(1.0e6, kind, SplitMix64::new(99));
            let mut t = Time::ZERO;
            let mut gaps = Vec::new();
            for _ in 0..100_000 {
                let next = s.next_arrival(t);
                gaps.push(next.as_ps() - t.as_ps());
                t = next;
            }
            let mean = gaps.iter().sum::<u64>() as f64 / gaps.len() as f64;
            let var = gaps
                .iter()
                .map(|&g| (g as f64 - mean) * (g as f64 - mean))
                .sum::<f64>()
                / gaps.len() as f64;
            var / (mean * mean)
        };
        let poisson = sq_cv(ArrivalKind::Poisson);
        let mmpp = sq_cv(ArrivalKind::Mmpp {
            burst: 5.0,
            on_fraction: 0.15,
            cycle: TimeDelta::from_us(50),
        });
        assert!((0.9..1.1).contains(&poisson), "poisson CV² {poisson}");
        assert!(mmpp > 1.5, "MMPP CV² {mmpp} not bursty");
    }

    #[test]
    fn streams_replay_bit_identically() {
        let kind = ArrivalKind::Mmpp {
            burst: 3.0,
            on_fraction: 0.25,
            cycle: TimeDelta::from_us(5),
        };
        let mut a = ArrivalStream::new(1.0e6, kind, SplitMix64::new(42));
        let mut b = ArrivalStream::new(1.0e6, kind, SplitMix64::new(42));
        let mut t_a = Time::ZERO;
        let mut t_b = Time::ZERO;
        for _ in 0..10_000 {
            t_a = a.next_arrival(t_a);
            t_b = b.next_arrival(t_b);
            assert_eq!(t_a, t_b);
        }
    }

    #[test]
    fn zipf_rank_zero_is_hottest() {
        let zipf = ZipfSampler::new(10_000, 0.99);
        let mut rng = SplitMix64::new(17);
        let mut counts = vec![0u32; 16];
        let mut total_in_head = 0u32;
        let n = 100_000;
        for _ in 0..n {
            let r = zipf.sample(&mut rng);
            assert!(r < 10_000);
            if (r as usize) < counts.len() {
                counts[r as usize] += 1;
                total_in_head += 1;
            }
        }
        // Heavy skew: the 16 hottest of 10k items (0.16% of the keyspace)
        // absorb about a third of the traffic (analytically ~34% at
        // theta = 0.99), and rank 0 beats rank 8 by the power law.
        assert!(
            (n / 4..n / 2).contains(&total_in_head),
            "head share {total_in_head}/{n}"
        );
        assert!(counts[0] > counts[8] * 2, "counts {counts:?}");
    }

    #[test]
    fn zipf_theta_zero_is_roughly_uniform() {
        let zipf = ZipfSampler::new(8, 0.0);
        let mut rng = SplitMix64::new(31);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[zipf.sample(&mut rng) as usize] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket {c}");
        }
    }

    #[test]
    fn zipf_single_item_always_zero() {
        let zipf = ZipfSampler::new(1, 0.5);
        let mut rng = SplitMix64::new(1);
        for _ in 0..100 {
            assert_eq!(zipf.sample(&mut rng), 0);
        }
    }

    #[test]
    #[should_panic(expected = "OFF rate")]
    fn mmpp_rejects_impossible_burst() {
        let _ = ArrivalStream::new(
            1.0,
            ArrivalKind::Mmpp {
                burst: 10.0,
                on_fraction: 0.5,
                cycle: TimeDelta::from_us(1),
            },
            SplitMix64::new(0),
        );
    }
}
