//! A time-ordered, FIFO-stable event queue.
//!
//! Internally this is a hierarchical timing wheel rather than a plain
//! binary heap: the common case in a memory-system simulation is a dense
//! cloud of events within the next few hundred nanoseconds (link flits,
//! DRAM timing edges, queue retries) plus a sparse far tail (refresh every
//! 7.8 µs, thermal ticks). Near-future events are bucketed by coarse time
//! into a fixed ring of [`BUCKETS`] slots of `2^`[`SHIFT`]` ps` each
//! (≈ 1 ns buckets, ≈ 1 µs horizon), so push is O(1) and pop amortizes to
//! a word-scan plus a tiny in-bucket sort instead of a `log n` chain of
//! tuple comparisons. Far-future events overflow into a small heap and
//! migrate into the wheel as simulated time approaches them.

use std::cell::Cell;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use hmc_types::Time;

/// Log2 of the bucket width in picoseconds (2^10 ps ≈ 1 ns).
pub const SHIFT: u32 = 10;
/// Number of wheel slots; horizon = `BUCKETS << SHIFT` ps ≈ 1.05 µs.
pub const BUCKETS: usize = 1024;

const MASK: u64 = (BUCKETS - 1) as u64;
const WORDS: usize = BUCKETS / 64;

/// Peek-cache sentinel: earliest time unknown, recompute on demand.
const DIRTY: u64 = u64::MAX;
/// Peek-cache sentinel: the queue is empty.
const EMPTY: u64 = u64::MAX - 1;

/// A discrete-event queue: events pop in non-decreasing time order, and
/// events scheduled for the same instant pop in insertion order
/// (FIFO-stable), which keeps simulations deterministic.
///
/// ```
/// use sim_engine::event::EventQueue;
/// use hmc_types::Time;
///
/// let mut q = EventQueue::new();
/// let t = Time::from_ps(5);
/// q.push(t, 'a');
/// q.push(t, 'b');
/// assert_eq!(q.pop().unwrap().1, 'a');
/// assert_eq!(q.pop().unwrap().1, 'b');
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    /// Events already extracted into exact `(time, seq)` order; always the
    /// earliest region of the queue. Refilled from the wheel one bucket at
    /// a time.
    now_buf: VecDeque<(Time, u64, E)>,
    /// The ring of near-future buckets; slot `abs & MASK` holds events
    /// whose coarse bucket index `abs` lies in
    /// `(active_abs, active_abs + BUCKETS]`.
    wheel: Vec<Vec<(Time, u64, E)>>,
    /// One bit per wheel slot: set iff the slot's bucket is non-empty.
    occupied: [u64; WORDS],
    /// Coarse bucket index of the most recently materialized bucket; the
    /// wheel window starts just past it. Only ever advances.
    active_abs: u64,
    /// Far-future events (beyond the wheel horizon at push time).
    overflow: BinaryHeap<Entry<E>>,
    seq: u64,
    len: usize,
    popped: u64,
    /// Cached earliest-event time in ps, or [`DIRTY`]/[`EMPTY`]. Lets
    /// `peek_time(&self)` stay O(1) on the hot path. A `Cell` (not an
    /// atomic): the queue is single-owner by design — the PDES pool
    /// *moves* whole shards between threads, it never shares one — so
    /// the type is `Send` but deliberately not `Sync`.
    cached_peek: Cell<u64>,
}

#[derive(Debug)]
struct Entry<E> {
    key: Reverse<(Time, u64)>,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

#[inline]
fn bucket_of(at: Time) -> u64 {
    at.as_ps() >> SHIFT
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// Creates an empty queue with pre-allocated capacity for the
    /// in-order staging buffer and the far-future overflow.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            now_buf: VecDeque::with_capacity(cap.min(4096)),
            wheel: (0..BUCKETS).map(|_| Vec::new()).collect(),
            occupied: [0; WORDS],
            active_abs: 0,
            overflow: BinaryHeap::with_capacity(cap.min(64)),
            seq: 0,
            len: 0,
            popped: 0,
            cached_peek: Cell::new(EMPTY),
        }
    }

    /// Schedules `event` at instant `at`.
    pub fn push(&mut self, at: Time, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.len += 1;
        let abs = bucket_of(at);
        if abs <= self.active_abs {
            // The bucket was already materialized: insert in exact order.
            // `seq` is larger than every resident entry, so placing the
            // event after all entries at `<= at` preserves FIFO stability.
            let idx = self.now_buf.partition_point(|e| e.0 <= at);
            self.now_buf.insert(idx, (at, seq, event));
        } else if abs - self.active_abs <= BUCKETS as u64 {
            let slot = (abs & MASK) as usize;
            self.wheel[slot].push((at, seq, event));
            self.occupied[slot / 64] |= 1 << (slot % 64);
        } else {
            self.overflow.push(Entry {
                key: Reverse((at, seq)),
                event,
            });
        }
        let cached = self.cached_peek.get();
        if cached != DIRTY && at.as_ps() < cached {
            self.cached_peek.set(at.as_ps());
        }
    }

    /// Removes and returns the earliest event with its scheduled time.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        self.pop_before(Time::MAX)
    }

    /// Removes and returns the earliest event if it is scheduled at or
    /// before `limit`; otherwise leaves the queue untouched. This is the
    /// simulation loop's fast path: one call replaces a
    /// `peek_time`-then-`pop` pair.
    pub fn pop_before(&mut self, limit: Time) -> Option<(Time, E)> {
        if self.now_buf.is_empty() {
            if self.len == 0 {
                return None;
            }
            self.refill();
        }
        if self.now_buf.front().map(|e| e.0 <= limit) != Some(true) {
            return None;
        }
        let (t, _, event) = self.now_buf.pop_front().expect("refilled non-empty");
        self.len -= 1;
        self.popped += 1;
        let next = match self.now_buf.front() {
            Some(e) => e.0.as_ps(),
            None if self.len == 0 => EMPTY,
            None => DIRTY,
        };
        self.cached_peek.set(next);
        Some((t, event))
    }

    /// Drains every event scheduled at or before `limit` into `out`, in
    /// the same `(time, seq)` order a `pop_before` loop would produce,
    /// and returns how many events were appended. This is the epoch
    /// advance primitive: one call replaces a peek/pop loop and amortizes
    /// the staging-buffer bookkeeping over the whole batch.
    pub fn pop_until(&mut self, limit: Time, out: &mut Vec<(Time, E)>) -> usize {
        let before = out.len();
        loop {
            if self.now_buf.is_empty() {
                if self.len == 0 {
                    break;
                }
                self.refill();
            }
            let n = self.now_buf.partition_point(|e| e.0 <= limit);
            if n == 0 {
                break;
            }
            out.extend(self.now_buf.drain(..n).map(|(t, _, e)| (t, e)));
            self.len -= n;
            self.popped += n as u64;
            if !self.now_buf.is_empty() || self.len == 0 {
                break;
            }
            // The staging buffer drained completely below `limit`; later
            // buckets (or overflow) may still hold in-bound events.
        }
        let next = match self.now_buf.front() {
            Some(e) => e.0.as_ps(),
            None if self.len == 0 => EMPTY,
            None => DIRTY,
        };
        self.cached_peek.set(next);
        out.len() - before
    }

    /// Advances `active_abs` to the next non-empty bucket (pulling any
    /// overflow events that fall inside the window on the way) and
    /// materializes that bucket into `now_buf` in `(time, seq)` order.
    fn refill(&mut self) {
        debug_assert!(self.now_buf.is_empty() && self.len > 0);
        loop {
            // Overflow events the advancing window now covers belong in
            // the wheel, where they merge with same-bucket residents.
            while let Some(top) = self.overflow.peek() {
                let abs = bucket_of(top.key.0 .0);
                if abs > self.active_abs + BUCKETS as u64 {
                    break;
                }
                let e = self.overflow.pop().expect("peeked");
                let slot = (abs & MASK) as usize;
                self.wheel[slot].push((e.key.0 .0, e.key.0 .1, e.event));
                self.occupied[slot / 64] |= 1 << (slot % 64);
            }
            if let Some(abs) = self.next_occupied_abs() {
                let slot = (abs & MASK) as usize;
                self.occupied[slot / 64] &= !(1 << (slot % 64));
                // (time, seq) keys are unique, so an unstable sort yields
                // the same order a stable one would.
                self.wheel[slot].sort_unstable_by_key(|e| (e.0, e.1));
                self.now_buf.extend(self.wheel[slot].drain(..));
                self.active_abs = abs;
                return;
            }
            // The whole window is empty: jump to just before the earliest
            // far-future event and let the migration above pull it in.
            let top = self.overflow.peek().expect("len > 0 but queue drained");
            self.active_abs = bucket_of(top.key.0 .0) - 1;
        }
    }

    /// Finds the smallest bucket index in `(active_abs, active_abs +
    /// BUCKETS]` whose slot is occupied, by scanning the occupancy bitmap
    /// word-by-word from the slot after `active_abs`.
    fn next_occupied_abs(&self) -> Option<u64> {
        let base = self.active_abs + 1;
        let start_slot = (base & MASK) as usize;
        let mut word = start_slot / 64;
        let mut mask = !0u64 << (start_slot % 64);
        for _ in 0..=WORDS {
            let bits = self.occupied[word] & mask;
            if bits != 0 {
                let slot = word * 64 + bits.trailing_zeros() as usize;
                let dist = (slot + BUCKETS - start_slot) as u64 & MASK;
                return Some(base + dist);
            }
            word = (word + 1) % WORDS;
            mask = !0;
        }
        None
    }

    /// The time of the earliest scheduled event, if any.
    pub fn peek_time(&self) -> Option<Time> {
        match self.cached_peek.get() {
            EMPTY => None,
            DIRTY => {
                let t = self.scan_min_time();
                self.cached_peek.set(t.map_or(EMPTY, Time::as_ps));
                t
            }
            ps => Some(Time::from_ps(ps)),
        }
    }

    /// Recomputes the earliest event time without mutating the queue: the
    /// staging buffer front if present, else the minimum over the first
    /// occupied wheel bucket and the overflow top (overflow may hold
    /// events the window has since grown over, so both must be checked).
    fn scan_min_time(&self) -> Option<Time> {
        if let Some(e) = self.now_buf.front() {
            return Some(e.0);
        }
        let wheel_min = self.next_occupied_abs().and_then(|abs| {
            let slot = (abs & MASK) as usize;
            self.wheel[slot].iter().map(|e| e.0).min()
        });
        let over_min = self.overflow.peek().map(|e| e.key.0 .0);
        match (wheel_min, over_min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total events this queue has ever popped (throughput accounting).
    pub fn total_popped(&self) -> u64 {
        self.popped
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        self.now_buf.clear();
        for w in 0..WORDS {
            let mut bits = self.occupied[w];
            while bits != 0 {
                let slot = w * 64 + bits.trailing_zeros() as usize;
                self.wheel[slot].clear();
                bits &= bits - 1;
            }
            self.occupied[w] = 0;
        }
        self.overflow.clear();
        self.len = 0;
        self.cached_peek.set(EMPTY);
    }

    /// Iterates over pending events in arbitrary order (diagnostics).
    pub fn iter(&self) -> impl Iterator<Item = (Time, &E)> {
        self.now_buf
            .iter()
            .map(|e| (e.0, &e.2))
            .chain(
                self.wheel
                    .iter()
                    .flat_map(|b| b.iter().map(|e| (e.0, &e.2))),
            )
            .chain(self.overflow.iter().map(|e| (e.key.0 .0, &e.event)))
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Time::from_ps(30), 3);
        q.push(Time::from_ps(10), 1);
        q.push(Time::from_ps(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn fifo_stable_at_equal_times() {
        let mut q = EventQueue::new();
        let t = Time::from_ps(100);
        for i in 0..50 {
            q.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(Time::from_ps(10), "a");
        q.push(Time::from_ps(5), "b");
        assert_eq!(q.pop().unwrap().1, "b");
        q.push(Time::from_ps(7), "c");
        q.push(Time::from_ps(20), "d");
        assert_eq!(q.pop().unwrap().1, "c");
        assert_eq!(q.pop().unwrap().1, "a");
        assert_eq!(q.pop().unwrap().1, "d");
        assert!(q.pop().is_none());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(Time::from_ps(42), ());
        assert_eq!(q.peek_time(), Some(Time::from_ps(42)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::with_capacity(8);
        q.push(Time::ZERO, 1);
        q.push(Time::ZERO, 2);
        q.push(Time::from_ps(50_000_000), 3); // parked in overflow
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        assert!(q.pop().is_none());
    }

    #[test]
    fn default_is_empty() {
        let q: EventQueue<u8> = EventQueue::default();
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn far_future_overflow_migrates_in_order() {
        let mut q = EventQueue::new();
        // Refresh-style far events, beyond the ~1 µs wheel horizon.
        for i in 0..4u64 {
            q.push(Time::from_ps(7_800_000 * (i + 1)), i + 100);
        }
        // Near-future cloud.
        q.push(Time::from_ps(500), 1);
        q.push(Time::from_ps(900_000), 2);
        let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 100, 101, 102, 103]);
    }

    #[test]
    fn same_instant_fifo_across_wheel_and_overflow() {
        let mut q = EventQueue::new();
        let far = Time::from_ps(9_000_000);
        q.push(far, 0); // overflow (beyond horizon from active_abs = 0)
        q.push(Time::from_ps(100), 99);
        assert_eq!(q.pop(), Some((Time::from_ps(100), 99)));
        // Window has advanced only slightly; `far` is still in overflow.
        q.push(far, 1); // still beyond horizon → overflow too
        q.push(far, 2);
        assert_eq!(q.pop(), Some((far, 0)));
        assert_eq!(q.pop(), Some((far, 1)));
        assert_eq!(q.pop(), Some((far, 2)));
    }

    #[test]
    fn push_earlier_than_materialized_bucket() {
        let mut q = EventQueue::new();
        q.push(Time::from_ps(2048), "late");
        assert_eq!(q.pop().unwrap().1, "late");
        // active_abs now covers bucket 2; a push into an earlier bucket
        // must still pop before later events.
        q.push(Time::from_ps(5000), "later");
        q.push(Time::from_ps(100), "early");
        assert_eq!(q.pop().unwrap().1, "early");
        assert_eq!(q.pop().unwrap().1, "later");
    }

    #[test]
    fn pop_before_respects_limit() {
        let mut q = EventQueue::new();
        q.push(Time::from_ps(10), 'a');
        q.push(Time::from_ps(3000), 'b');
        assert_eq!(q.pop_before(Time::from_ps(5)), None);
        assert_eq!(
            q.pop_before(Time::from_ps(10)),
            Some((Time::from_ps(10), 'a'))
        );
        assert_eq!(q.pop_before(Time::from_ps(2999)), None);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop_before(Time::MAX), Some((Time::from_ps(3000), 'b')));
        assert_eq!(q.pop_before(Time::MAX), None);
    }

    #[test]
    fn pop_until_drains_in_pop_order() {
        // Reference check: pop_until(limit) must produce exactly the same
        // sequence a pop_before(limit) loop would, across random loads.
        let mut rng = SplitMix64::new(0xBEEF);
        let mut a: EventQueue<u64> = EventQueue::new();
        let mut b: EventQueue<u64> = EventQueue::new();
        let mut seq = 0u64;
        let mut base = 0u64;
        let mut batch = Vec::new();
        for round in 0..200 {
            for _ in 0..rng.next_below(20) {
                let t = base
                    + if rng.next_below(8) == 0 {
                        2_000_000 + rng.next_below(9_000_000)
                    } else {
                        rng.next_below(50_000)
                    };
                a.push(Time::from_ps(t), seq);
                b.push(Time::from_ps(t), seq);
                seq += 1;
            }
            let limit = Time::from_ps(base + rng.next_below(4_000_000));
            batch.clear();
            let n = a.pop_until(limit, &mut batch);
            assert_eq!(n, batch.len());
            for want in &batch {
                assert_eq!(b.pop_before(limit).as_ref(), Some(want));
            }
            assert_eq!(b.pop_before(limit), None, "round {round}");
            assert_eq!(a.len(), b.len());
            assert_eq!(a.total_popped(), b.total_popped());
            assert_eq!(a.peek_time(), b.peek_time());
            if let Some((t, _)) = batch.last() {
                base = t.as_ps();
            }
        }
    }

    #[test]
    fn pop_until_spans_bucket_boundaries() {
        let mut q = EventQueue::new();
        // One event per wheel bucket across several buckets, plus events
        // sitting exactly on bucket edges (at = k << SHIFT).
        let w = 1u64 << SHIFT;
        for k in 0..6u64 {
            q.push(Time::from_ps(k * w), k * 10); // exact bucket boundary
            q.push(Time::from_ps(k * w + 7), k * 10 + 1); // interior
        }
        // Limit on a boundary: events at exactly `3*w` are included, the
        // interior event just after it is not.
        let mut out = Vec::new();
        let n = q.pop_until(Time::from_ps(3 * w), &mut out);
        assert_eq!(n, 7);
        assert_eq!(
            out.iter().map(|e| e.1).collect::<Vec<_>>(),
            vec![0, 1, 10, 11, 20, 21, 30]
        );
        assert_eq!(q.peek_time(), Some(Time::from_ps(3 * w + 7)));
        // Drain the rest with a generous bound.
        out.clear();
        assert_eq!(q.pop_until(Time::MAX, &mut out), 5);
        assert_eq!(
            out.iter().map(|e| e.1).collect::<Vec<_>>(),
            vec![31, 40, 41, 50, 51]
        );
        assert!(q.is_empty());
        assert_eq!(q.pop_until(Time::MAX, &mut out), 0);
    }

    #[test]
    fn pop_until_migrates_heap_overflow() {
        let mut q = EventQueue::new();
        // Far-future events beyond the ~1 µs horizon live in the overflow
        // heap; pop_until must migrate them through the wheel in order.
        for i in 0..4u64 {
            q.push(Time::from_ps(7_800_000 * (i + 1)), 100 + i);
        }
        q.push(Time::from_ps(500), 1);
        let mut out = Vec::new();
        // Bound between the second and third refresh ticks: two overflow
        // events migrate and drain, two stay parked.
        let n = q.pop_until(Time::from_ps(16_000_000), &mut out);
        assert_eq!(n, 3);
        assert_eq!(
            out.iter().map(|e| e.1).collect::<Vec<_>>(),
            vec![1, 100, 101]
        );
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(Time::from_ps(7_800_000 * 3)));
        out.clear();
        q.pop_until(Time::MAX, &mut out);
        assert_eq!(out.iter().map(|e| e.1).collect::<Vec<_>>(), vec![102, 103]);
    }

    #[test]
    fn total_popped_accumulates() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.push(Time::from_ps(i), i);
        }
        while q.pop().is_some() {}
        q.push(Time::ZERO, 0);
        q.pop();
        assert_eq!(q.total_popped(), 11);
    }

    #[test]
    fn peek_recomputes_after_bucket_drains() {
        let mut q = EventQueue::new();
        q.push(Time::from_ps(100), 1);
        q.push(Time::from_ps(300_000), 2);
        assert_eq!(q.pop().unwrap().1, 1);
        // now_buf is empty and the cache is dirty: peek must scan the wheel.
        assert_eq!(q.peek_time(), Some(Time::from_ps(300_000)));
        assert_eq!(q.peek_time(), Some(Time::from_ps(300_000)));
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn matches_heap_reference_under_random_load() {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let mut rng = SplitMix64::new(0xC0FFEE);
        let mut q: EventQueue<u64> = EventQueue::new();
        let mut model: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
        let mut seq = 0u64;
        let mut base = 0u64;
        for _ in 0..5000 {
            if rng.next_below(3) < 2 {
                let t = base
                    + if rng.next_below(10) == 0 {
                        7_800_000 + rng.next_below(10_000_000)
                    } else {
                        rng.next_below(100_000)
                    };
                q.push(Time::from_ps(t), seq);
                model.push(Reverse((t, seq)));
                seq += 1;
            } else {
                let got = q.pop();
                let want = model.pop().map(|Reverse((t, s))| (Time::from_ps(t), s));
                assert_eq!(got, want);
                if let Some((t, _)) = got {
                    base = t.as_ps();
                }
            }
            assert_eq!(
                q.peek_time().map(Time::as_ps),
                model.peek().map(|Reverse((t, _))| *t)
            );
        }
        while let Some(Reverse((t, s))) = model.pop() {
            assert_eq!(q.pop(), Some((Time::from_ps(t), s)));
        }
        assert!(q.pop().is_none());
    }
}
