//! A time-ordered, FIFO-stable event queue.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use hmc_types::Time;

/// A discrete-event queue: events pop in non-decreasing time order, and
/// events scheduled for the same instant pop in insertion order
/// (FIFO-stable), which keeps simulations deterministic.
///
/// ```
/// use sim_engine::event::EventQueue;
/// use hmc_types::Time;
///
/// let mut q = EventQueue::new();
/// let t = Time::from_ps(5);
/// q.push(t, 'a');
/// q.push(t, 'b');
/// assert_eq!(q.pop().unwrap().1, 'a');
/// assert_eq!(q.pop().unwrap().1, 'b');
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
}

#[derive(Debug)]
struct Entry<E> {
    key: Reverse<(Time, u64)>,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Creates an empty queue with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            seq: 0,
        }
    }

    /// Schedules `event` at instant `at`.
    pub fn push(&mut self, at: Time, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry {
            key: Reverse((at, seq)),
            event,
        });
    }

    /// Removes and returns the earliest event with its scheduled time.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        self.heap.pop().map(|e| (e.key.0 .0, e.event))
    }

    /// The time of the earliest scheduled event, if any.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|e| e.key.0 .0)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }

    /// Iterates over pending events in arbitrary order (diagnostics).
    pub fn iter(&self) -> impl Iterator<Item = (Time, &E)> {
        self.heap.iter().map(|e| (e.key.0 .0, &e.event))
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Time::from_ps(30), 3);
        q.push(Time::from_ps(10), 1);
        q.push(Time::from_ps(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn fifo_stable_at_equal_times() {
        let mut q = EventQueue::new();
        let t = Time::from_ps(100);
        for i in 0..50 {
            q.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(Time::from_ps(10), "a");
        q.push(Time::from_ps(5), "b");
        assert_eq!(q.pop().unwrap().1, "b");
        q.push(Time::from_ps(7), "c");
        q.push(Time::from_ps(20), "d");
        assert_eq!(q.pop().unwrap().1, "c");
        assert_eq!(q.pop().unwrap().1, "a");
        assert_eq!(q.pop().unwrap().1, "d");
        assert!(q.pop().is_none());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(Time::from_ps(42), ());
        assert_eq!(q.peek_time(), Some(Time::from_ps(42)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::with_capacity(8);
        q.push(Time::ZERO, 1);
        q.push(Time::ZERO, 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn default_is_empty() {
        let q: EventQueue<u8> = EventQueue::default();
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
    }
}
