//! A named-metrics registry with a periodic sampler.
//!
//! Components expose gauge callbacks (queue depths, credit levels, bank
//! occupancy); the simulation loop asks the sampler for due instants and
//! lets every component [`record`](MetricsSampler::record) its gauges at
//! exactly those instants, producing aligned [`TimeSeries`] per metric.
//! Sampling at event-driven due times (rather than wall-clock polling)
//! keeps runs deterministic: the same simulation produces the same series
//! at any host speed or thread count.

use std::collections::BTreeMap;

use hmc_types::{Time, TimeDelta};

use crate::series::TimeSeries;

/// A periodic sampler holding one [`TimeSeries`] per registered metric
/// name. Names are registered lazily on first record.
#[derive(Debug, Clone)]
pub struct MetricsSampler {
    period: TimeDelta,
    next_due: Time,
    series: Vec<TimeSeries>,
    index: BTreeMap<String, usize>,
}

impl MetricsSampler {
    /// Creates a sampler firing every `period`, first at `period` after
    /// time zero.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn new(period: TimeDelta) -> Self {
        assert!(!period.is_zero(), "sampler period must be positive");
        MetricsSampler {
            period,
            next_due: Time::ZERO + period,
            series: Vec::new(),
            index: BTreeMap::new(),
        }
    }

    /// The sampling cadence.
    pub fn period(&self) -> TimeDelta {
        self.period
    }

    /// The next instant a sample is due, if it is at or before `t`. The
    /// driving loop calls this before processing events at `t`, records
    /// every component's gauges at the returned instant, then calls
    /// [`advance`](MetricsSampler::advance) — repeating until `None`.
    pub fn due_before(&self, t: Time) -> Option<Time> {
        (self.next_due <= t).then_some(self.next_due)
    }

    /// Moves to the next sampling instant.
    pub fn advance(&mut self) {
        self.next_due += self.period;
    }

    /// Appends one gauge sample, creating the series on first use.
    pub fn record(&mut self, name: &str, at: Time, value: f64) {
        let idx = match self.index.get(name) {
            Some(&i) => i,
            None => {
                let i = self.series.len();
                self.series.push(TimeSeries::new(name));
                self.index.insert(name.to_string(), i);
                i
            }
        };
        self.series[idx].push(at, value);
    }

    /// All recorded series, in registration order.
    pub fn series(&self) -> &[TimeSeries] {
        &self.series
    }

    /// Looks a series up by name.
    pub fn get(&self, name: &str) -> Option<&TimeSeries> {
        self.index.get(name).map(|&i| &self.series[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cadence_fires_once_per_period() {
        let mut s = MetricsSampler::new(TimeDelta::from_ns(100));
        assert_eq!(s.period(), TimeDelta::from_ns(100));
        assert_eq!(s.due_before(Time::from_ps(50_000)), None);
        let mut fired = Vec::new();
        while let Some(due) = s.due_before(Time::from_ps(350_000)) {
            fired.push(due.as_ps());
            s.record("q", due, fired.len() as f64);
            s.advance();
        }
        assert_eq!(fired, vec![100_000, 200_000, 300_000]);
        assert_eq!(s.get("q").unwrap().len(), 3);
    }

    #[test]
    fn lazy_registration_keeps_order() {
        let mut s = MetricsSampler::new(TimeDelta::from_ns(1));
        s.record("b", Time::ZERO, 1.0);
        s.record("a", Time::ZERO, 2.0);
        s.record("b", Time::from_ps(10), 3.0);
        let names: Vec<&str> = s.series().iter().map(|t| t.name()).collect();
        assert_eq!(names, vec!["b", "a"]);
        assert_eq!(s.get("b").unwrap().len(), 2);
        assert!(s.get("missing").is_none());
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn zero_period_rejected() {
        let _ = MetricsSampler::new(TimeDelta::ZERO);
    }
}
