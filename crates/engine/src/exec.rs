//! A deterministic scoped-thread sweep executor.
//!
//! Paper figures are sweeps of mutually independent simulation points
//! (workload × configuration × seed), each of which builds its own
//! `System` and runs single-threaded. This module fans those points out
//! across OS threads with [`std::thread::scope`] — no runtime
//! dependencies — and returns results **in input order**, so a sweep's
//! output is bit-identical at any thread count: parallelism changes only
//! which core runs a point, never what the point computes or where its
//! result lands.

// The sweep executor is one of the two audited schedulers: the atomics
// below carry only work-distribution state (a thread-count override and
// a work-stealing cursor), never simulation state, so results stay
// input-order deterministic regardless of interleaving.
// hmc-lint: allow(atomics)
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Sweep-wide thread-count override; 0 means "use all available cores".
// hmc-lint: allow(atomics)
static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Sets the thread count used by [`sweep`]: `0` restores the default of
/// one thread per available core. Typically driven by a `--threads` CLI
/// flag.
pub fn set_threads(n: usize) {
    GLOBAL_THREADS.store(n, Ordering::Relaxed); // hmc-lint: allow(atomics)
}

/// The effective thread count [`sweep`] will use.
pub fn threads() -> usize {
    // hmc-lint: allow(atomics)
    match GLOBAL_THREADS.load(Ordering::Relaxed) {
        // hmc-lint: allow(thread)
        0 => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        n => n,
    }
}

/// Applies `f` to every item, fanning the calls across the configured
/// number of threads (see [`set_threads`]), and returns the results in
/// the items' input order.
pub fn sweep<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    sweep_with(threads(), items, f)
}

/// [`sweep`] with an explicit thread count (used directly by tests so the
/// global setting cannot race between concurrently running test threads).
///
/// Threads claim items off a shared atomic cursor, so a slow point does
/// not stall the others; each worker tags results with their input index
/// and the merged output is sorted by that index before returning.
pub fn sweep_with<T, R, F>(threads: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let threads = threads.max(1).min(items.len());
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let work: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let cursor = AtomicUsize::new(0); // hmc-lint: allow(atomics)
    let (work, cursor, f) = (&work, &cursor, &f);
    // hmc-lint: allow(thread)
    let mut tagged: Vec<(usize, R)> = std::thread::scope(|s| {
        let workers: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(move || {
                    let mut out = Vec::new();
                    loop {
                        // hmc-lint: allow(atomics)
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= work.len() {
                            break;
                        }
                        let item = work[i].lock().expect("work slot poisoned").take();
                        out.push((i, f(item.expect("each slot is claimed once"))));
                    }
                    out
                })
            })
            .collect();
        workers
            .into_iter()
            .flat_map(|w| w.join().expect("sweep worker panicked"))
            .collect()
    });
    tagged.sort_by_key(|&(i, _)| i);
    tagged.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        for threads in [1, 2, 3, 8, 33] {
            let items: Vec<u64> = (0..100).collect();
            let out = sweep_with(threads, items, |i| i * 3);
            assert_eq!(
                out,
                (0..100).map(|i| i * 3).collect::<Vec<_>>(),
                "{threads} threads"
            );
        }
    }

    #[test]
    fn handles_empty_and_singleton() {
        let empty: Vec<u8> = Vec::new();
        assert!(sweep_with(4, empty, |x| x).is_empty());
        assert_eq!(sweep_with(4, vec![9], |x| x + 1), vec![10]);
    }

    #[test]
    fn results_identical_across_thread_counts() {
        // A mildly stateful computation per item: results must not depend
        // on scheduling.
        let run = |threads| {
            sweep_with(threads, (0..64u64).collect(), |i| {
                let mut rng = crate::rng::SplitMix64::new(i);
                (0..100).map(|_| rng.next_below(1000)).sum::<u64>()
            })
        };
        let serial = run(1);
        assert_eq!(serial, run(2));
        assert_eq!(serial, run(8));
    }

    #[test]
    fn set_threads_round_trips() {
        let before = GLOBAL_THREADS.load(Ordering::Relaxed);
        set_threads(3);
        assert_eq!(threads(), 3);
        set_threads(0);
        assert!(threads() >= 1);
        GLOBAL_THREADS.store(before, Ordering::Relaxed);
    }
}
