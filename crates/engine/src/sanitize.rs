//! Runtime protocol sanitizer: machine-checked structural invariants.
//!
//! The model's headline behaviours (the per-vault bandwidth ceiling, the
//! closed-page linear≡random equivalence, queueing-dominated tails) are
//! consequences of invariants that are otherwise enforced only by
//! convention: closed-page bank-timing legality, credit-based link flow
//! control, and request conservation. The [`Sanitizer`] checks them at
//! run time, mirroring the zero-cost-when-disabled pattern of
//! [`trace`](crate::trace): every recording method is `#[inline]` and
//! returns immediately while disabled, so production sweeps pay nothing.
//!
//! Checked invariant classes:
//!
//! * **DRAM timing** — a per-bank FSM validates every scheduled access
//!   against the [`DramTimingFloor`] of the device spec: accesses never
//!   overlap on a bank, data never appears before `tRCD + tCL`, the bank
//!   never frees before `tRAS + tRP` (writes: `tRCD + tWR + tRP`),
//!   activates on one bank stay `tRC` apart, and column data bursts stay
//!   `tCCD` apart.
//! * **Credit conservation** — a per-link ledger of the SerDes ingress
//!   credit window: credits in use never exceed the configured pool and
//!   never go negative.
//! * **Request conservation** — every injected request is retired exactly
//!   once or accounted in flight; the ledger must be empty at drain.
//! * **Time order** — event queues never deliver an event earlier than
//!   one already processed.
//! * **Queue bounds** — event-queue occupancy stays within the
//!   structural bound implied by the configuration.
//! * **Forward progress** — a watchdog (driven by the system loop)
//!   reports deadlock/livelock: outstanding requests with no retirement
//!   for a configured span, with a deterministic diagnostic dump.
//!
//! Violations are collected (capped at [`MAX_VIOLATIONS`], counting
//! overflow) into a [`SanitizerReport`] that merges across components and
//! exports deterministic JSON.

use std::collections::BTreeMap;
use std::fmt;

use hmc_types::spec::DramTimingFloor;
use hmc_types::Time;

/// Hard cap on stored violations; later ones only increment a counter so
/// a badly corrupted run cannot balloon memory.
pub const MAX_VIOLATIONS: usize = 64;

/// The invariant classes the sanitizer distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ViolationClass {
    /// A scheduled bank access violated the DRAM timing floor.
    DramTiming,
    /// More link ingress credits in use than the configured pool.
    CreditOverflow,
    /// A link ingress credit released that was never acquired.
    CreditUnderflow,
    /// A request lost or duplicated between injection and retirement.
    Conservation,
    /// An event delivered earlier than one already processed.
    TimeOrder,
    /// An event queue exceeded its structural occupancy bound.
    QueueBound,
    /// Outstanding requests made no progress for the watchdog span.
    Watchdog,
}

impl ViolationClass {
    /// Every class, in report order.
    pub const ALL: [ViolationClass; 7] = [
        ViolationClass::DramTiming,
        ViolationClass::CreditOverflow,
        ViolationClass::CreditUnderflow,
        ViolationClass::Conservation,
        ViolationClass::TimeOrder,
        ViolationClass::QueueBound,
        ViolationClass::Watchdog,
    ];

    /// Number of classes (length of per-class counter arrays).
    pub const COUNT: usize = Self::ALL.len();

    /// Stable kebab-case name used in reports and JSON.
    pub const fn name(self) -> &'static str {
        match self {
            ViolationClass::DramTiming => "dram-timing",
            ViolationClass::CreditOverflow => "credit-overflow",
            ViolationClass::CreditUnderflow => "credit-underflow",
            ViolationClass::Conservation => "conservation",
            ViolationClass::TimeOrder => "time-order",
            ViolationClass::QueueBound => "queue-bound",
            ViolationClass::Watchdog => "watchdog",
        }
    }

    /// Index into per-class counter arrays.
    pub const fn index(self) -> usize {
        self as usize
    }
}

impl fmt::Display for ViolationClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One detected invariant violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The invariant class that failed.
    pub class: ViolationClass,
    /// Simulated instant of detection.
    pub at: Time,
    /// Deterministic human-readable description.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] at {}: {}", self.class, self.at, self.detail)
    }
}

/// Which DRAM operation a bank access performs (for the timing FSM).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BankOp {
    /// ACT → RD → PRE.
    Read,
    /// ACT → WR → PRE.
    Write,
}

impl BankOp {
    const fn name(self) -> &'static str {
        match self {
            BankOp::Read => "read",
            BankOp::Write => "write",
        }
    }
}

/// Per-bank FSM state: the last committed access of one bank.
#[derive(Debug, Clone, Copy, Default)]
struct BankState {
    /// End of the previous access (bank busy until here).
    busy_until: Time,
    /// Start (ACT) of the previous access.
    last_start: Option<Time>,
    /// Data instant (column command) of the previous access.
    last_data: Option<Time>,
}

/// The runtime protocol sanitizer. Disabled by default and free when
/// disabled; [`enable`](Sanitizer::enable) arms it. One sanitizer lives
/// in each checked component (host, device); their reports merge.
#[derive(Debug, Clone)]
pub struct Sanitizer {
    enabled: bool,
    floor: Option<DramTimingFloor>,
    banks: BTreeMap<u32, BankState>,
    credit_pool: Vec<usize>,
    credit_in_use: Vec<usize>,
    in_flight: BTreeMap<u64, Time>,
    injected: u64,
    retired: u64,
    last_event_time: Time,
    checks: [u64; ViolationClass::COUNT],
    violations: Vec<Violation>,
    dropped: u64,
}

impl Sanitizer {
    /// A disabled sanitizer (allocation-free; every check is a no-op).
    pub fn new() -> Self {
        Sanitizer {
            enabled: false,
            floor: None,
            banks: BTreeMap::new(),
            credit_pool: Vec::new(),
            credit_in_use: Vec::new(),
            in_flight: BTreeMap::new(),
            injected: 0,
            retired: 0,
            last_event_time: Time::ZERO,
            checks: [0; ViolationClass::COUNT],
            violations: Vec::new(),
            dropped: 0,
        }
    }

    /// Arms the sanitizer. `floor` enables the DRAM timing FSM (pass
    /// `None` for page policies the closed-page floor does not apply to);
    /// all other invariant classes are always checked once enabled.
    pub fn enable(&mut self, floor: Option<DramTimingFloor>) {
        self.enabled = true;
        self.floor = floor;
    }

    /// True once [`enable`](Sanitizer::enable) was called.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Declares the per-link ingress credit pools (index = link id).
    pub fn set_credit_pools(&mut self, pools: &[usize]) {
        if !self.enabled {
            return;
        }
        self.credit_pool = pools.to_vec();
        self.credit_in_use = vec![0; pools.len()];
    }

    // ---------------------------------------------------------------
    // credit conservation
    // ---------------------------------------------------------------

    /// Records one ingress credit taken on `link` (a request accepted
    /// into the link's ingress window).
    #[inline]
    pub fn credit_acquire(&mut self, link: usize, now: Time) {
        if !self.enabled {
            return;
        }
        self.checks[ViolationClass::CreditOverflow.index()] += 1;
        if link >= self.credit_pool.len() {
            return;
        }
        self.credit_in_use[link] += 1;
        if self.credit_in_use[link] > self.credit_pool[link] {
            let detail = format!(
                "link {link}: {} credits in use exceeds pool of {}",
                self.credit_in_use[link], self.credit_pool[link]
            );
            self.record(ViolationClass::CreditOverflow, now, detail);
        }
    }

    /// Records one ingress credit returned on `link` (the request left
    /// the ingress window).
    #[inline]
    pub fn credit_release(&mut self, link: usize, now: Time) {
        if !self.enabled {
            return;
        }
        self.checks[ViolationClass::CreditUnderflow.index()] += 1;
        if link >= self.credit_pool.len() {
            return;
        }
        if self.credit_in_use[link] == 0 {
            let detail = format!("link {link}: credit released below zero in use");
            self.record(ViolationClass::CreditUnderflow, now, detail);
        } else {
            self.credit_in_use[link] -= 1;
        }
    }

    /// Credits currently in use on each link (diagnostics).
    pub fn credits_in_use(&self) -> &[usize] {
        &self.credit_in_use
    }

    /// Forgets all credits in use without a violation: the ingress
    /// windows were legitimately emptied outside the normal release path
    /// (a shutdown dropped the queues on the floor).
    pub fn credit_forget_all(&mut self) {
        for c in &mut self.credit_in_use {
            *c = 0;
        }
    }

    // ---------------------------------------------------------------
    // DRAM timing FSM
    // ---------------------------------------------------------------

    /// Validates one committed bank access against the timing floor.
    /// `bank` is a device-global bank id; `start` is the ACT instant,
    /// `data_at` the column-data instant, and `busy_until` the end of the
    /// bank's own cycle (before any bus-contention extension).
    #[inline]
    pub fn check_bank_access(
        &mut self,
        bank: u32,
        op: BankOp,
        start: Time,
        data_at: Time,
        busy_until: Time,
    ) {
        if !self.enabled {
            return;
        }
        self.checks[ViolationClass::DramTiming.index()] += 1;
        let st = *self.banks.entry(bank).or_default();
        if start < st.busy_until {
            let detail = format!(
                "bank {bank}: {} ACT at {start} overlaps previous access busy until {}",
                op.name(),
                st.busy_until
            );
            self.record(ViolationClass::DramTiming, start, detail);
        }
        if let Some(f) = self.floor {
            if let Some(prev) = st.last_start {
                if start < prev || start.since(prev) < f.t_rc() {
                    let detail = format!(
                        "bank {bank}: ACT-to-ACT spacing {} below tRC floor {} \
                         (previous ACT at {prev})",
                        if start >= prev {
                            start.since(prev)
                        } else {
                            hmc_types::TimeDelta::ZERO
                        },
                        f.t_rc()
                    );
                    self.record(ViolationClass::DramTiming, start, detail);
                }
            }
            let min_data = match op {
                BankOp::Read => f.read_access(),
                // Write data needs the row open: tRCD.
                BankOp::Write => f.t_rcd,
            };
            if data_at < start || data_at.since(start) < min_data {
                let detail = format!(
                    "bank {bank}: {} data at {data_at} only {} after ACT at {start}, \
                     floor is {min_data}",
                    op.name(),
                    if data_at >= start {
                        data_at.since(start)
                    } else {
                        hmc_types::TimeDelta::ZERO
                    }
                );
                self.record(ViolationClass::DramTiming, data_at, detail);
            }
            let min_cycle = match op {
                BankOp::Read => f.t_rc(),
                BankOp::Write => f.write_cycle(),
            };
            if busy_until < start || busy_until.since(start) < min_cycle {
                let detail = format!(
                    "bank {bank}: {} cycle {} below floor {min_cycle} (tRAS/tWR + tRP)",
                    op.name(),
                    if busy_until >= start {
                        busy_until.since(start)
                    } else {
                        hmc_types::TimeDelta::ZERO
                    }
                );
                self.record(ViolationClass::DramTiming, busy_until, detail);
            }
            if let Some(prev_data) = st.last_data {
                if data_at >= prev_data && data_at.since(prev_data) < f.t_ccd {
                    let detail = format!(
                        "bank {bank}: column commands {} apart, tCCD floor is {}",
                        data_at.since(prev_data),
                        f.t_ccd
                    );
                    self.record(ViolationClass::DramTiming, data_at, detail);
                }
            }
        }
        let st = self.banks.entry(bank).or_default();
        st.busy_until = st.busy_until.max(busy_until);
        st.last_start = Some(start);
        st.last_data = Some(data_at);
    }

    // ---------------------------------------------------------------
    // request conservation
    // ---------------------------------------------------------------

    /// Records a request entering the system (host issue).
    #[inline]
    pub fn note_inject(&mut self, id: u64, now: Time) {
        if !self.enabled {
            return;
        }
        self.checks[ViolationClass::Conservation.index()] += 1;
        self.injected += 1;
        if self.in_flight.insert(id, now).is_some() {
            let detail = format!("request {id} injected twice without retirement");
            self.record(ViolationClass::Conservation, now, detail);
        }
    }

    /// Records a request retiring (response delivered to its port).
    #[inline]
    pub fn note_retire(&mut self, id: u64, now: Time) {
        if !self.enabled {
            return;
        }
        self.checks[ViolationClass::Conservation.index()] += 1;
        self.retired += 1;
        if self.in_flight.remove(&id).is_none() {
            let detail = format!("request {id} retired but was never injected (or retired twice)");
            self.record(ViolationClass::Conservation, now, detail);
        }
    }

    /// Asserts the conservation ledger is empty — call at drain.
    pub fn check_drained(&mut self, now: Time) {
        if !self.enabled {
            return;
        }
        self.checks[ViolationClass::Conservation.index()] += 1;
        if !self.in_flight.is_empty() {
            let mut ids: Vec<String> = self.in_flight.keys().take(8).map(u64::to_string).collect();
            if self.in_flight.len() > 8 {
                ids.push("...".to_string());
            }
            let detail = format!(
                "{} requests still in flight at drain (ids {})",
                self.in_flight.len(),
                ids.join(", ")
            );
            self.record(ViolationClass::Conservation, now, detail);
        }
    }

    /// Requests injected but not yet retired.
    pub fn in_flight_count(&self) -> u64 {
        self.in_flight.len() as u64
    }

    // ---------------------------------------------------------------
    // event-queue checks
    // ---------------------------------------------------------------

    /// Checks that event delivery times never move backwards.
    #[inline]
    pub fn check_event_time(&mut self, t: Time) {
        if !self.enabled {
            return;
        }
        self.checks[ViolationClass::TimeOrder.index()] += 1;
        if t < self.last_event_time {
            let detail = format!(
                "event delivered at {t} after an event at {}",
                self.last_event_time
            );
            self.record(ViolationClass::TimeOrder, t, detail);
        } else {
            self.last_event_time = t;
        }
    }

    /// Checks an event-queue occupancy against its structural bound.
    #[inline]
    pub fn check_queue_bound(&mut self, what: &str, len: usize, bound: usize, now: Time) {
        if !self.enabled {
            return;
        }
        self.checks[ViolationClass::QueueBound.index()] += 1;
        if len > bound {
            let detail = format!("{what}: {len} queued exceeds structural bound {bound}");
            self.record(ViolationClass::QueueBound, now, detail);
        }
    }

    // ---------------------------------------------------------------
    // reporting
    // ---------------------------------------------------------------

    /// Records an externally detected violation (the system watchdog uses
    /// this for forward-progress failures with a diagnostic dump).
    pub fn note_violation(&mut self, class: ViolationClass, at: Time, detail: String) {
        if !self.enabled {
            return;
        }
        self.checks[class.index()] += 1;
        self.record(class, at, detail);
    }

    fn record(&mut self, class: ViolationClass, at: Time, detail: String) {
        if self.violations.len() < MAX_VIOLATIONS {
            self.violations.push(Violation { class, at, detail });
        } else {
            self.dropped += 1;
        }
    }

    /// Violations recorded so far.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Snapshot of this component's checks and violations.
    pub fn report(&self) -> SanitizerReport {
        SanitizerReport {
            checks: self.checks,
            violations: self.violations.clone(),
            dropped: self.dropped,
            injected: self.injected,
            retired: self.retired,
            in_flight: self.in_flight_count(),
        }
    }
}

impl Default for Sanitizer {
    fn default() -> Self {
        Sanitizer::new()
    }
}

/// The merged outcome of a sanitized run: per-class check counts, every
/// recorded violation, and the conservation-ledger totals.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SanitizerReport {
    checks: [u64; ViolationClass::COUNT],
    violations: Vec<Violation>,
    dropped: u64,
    injected: u64,
    retired: u64,
    in_flight: u64,
}

impl SanitizerReport {
    /// Folds another component's report into this one.
    pub fn merge(&mut self, other: &SanitizerReport) {
        for (mine, theirs) in self.checks.iter_mut().zip(other.checks.iter()) {
            *mine += theirs;
        }
        self.violations.extend_from_slice(&other.violations);
        self.dropped += other.dropped;
        self.injected += other.injected;
        self.retired += other.retired;
        self.in_flight += other.in_flight;
    }

    /// All recorded violations, in component merge order.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Violations of one class.
    pub fn count_of(&self, class: ViolationClass) -> usize {
        self.violations.iter().filter(|v| v.class == class).count()
    }

    /// Checks performed for one class.
    pub fn checks_of(&self, class: ViolationClass) -> u64 {
        self.checks[class.index()]
    }

    /// Total checks performed across all classes.
    pub fn total_checks(&self) -> u64 {
        self.checks.iter().sum()
    }

    /// Total violations (stored plus overflowed).
    pub fn total_violations(&self) -> u64 {
        self.violations.len() as u64 + self.dropped
    }

    /// True if no invariant was violated.
    pub fn is_clean(&self) -> bool {
        self.total_violations() == 0
    }

    /// Requests injected over the run.
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// Requests retired over the run.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Requests still in flight when the report was taken.
    pub fn in_flight(&self) -> u64 {
        self.in_flight
    }

    /// Deterministic JSON export (`repro sanitize` writes this).
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        out.push_str("{\"clean\":");
        out.push_str(if self.is_clean() { "true" } else { "false" });
        write!(
            out,
            ",\"injected\":{},\"retired\":{},\"in_flight\":{},\"dropped\":{}",
            self.injected, self.retired, self.in_flight, self.dropped
        )
        .expect("writing to a String cannot fail");
        out.push_str(",\"checks\":{");
        for (i, c) in ViolationClass::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write!(out, "\"{}\":{}", c.name(), self.checks[c.index()])
                .expect("writing to a String cannot fail");
        }
        out.push_str("},\"violations\":[");
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write!(
                out,
                "{{\"class\":\"{}\",\"at_ps\":{},\"detail\":\"{}\"}}",
                v.class.name(),
                v.at.as_ps(),
                json_escape(&v.detail)
            )
            .expect("writing to a String cannot fail");
        }
        out.push_str("]}\n");
        out
    }
}

impl fmt::Display for SanitizerReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "sanitizer: {} checks, {} violations ({}); {} injected, {} retired, {} in flight",
            self.total_checks(),
            self.total_violations(),
            if self.is_clean() { "clean" } else { "DIRTY" },
            self.injected,
            self.retired,
            self.in_flight,
        )?;
        for c in ViolationClass::ALL {
            writeln!(
                f,
                "  {:<17} checks={:<10} violations={}",
                c.name(),
                self.checks[c.index()],
                self.count_of(c)
            )?;
        }
        for v in &self.violations {
            writeln!(f, "  ! {v}")?;
        }
        if self.dropped > 0 {
            writeln!(f, "  ... and {} more violations not stored", self.dropped)?;
        }
        Ok(())
    }
}

/// Minimal JSON string escaping for violation details (quotes,
/// backslashes, and the newlines of diagnostic dumps).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if u32::from(c) < 0x20 => {
                use std::fmt::Write as _;
                write!(out, "\\u{:04x}", u32::from(c)).expect("writing to a String cannot fail");
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmc_types::spec::HmcSpec;
    use hmc_types::TimeDelta;

    fn armed() -> Sanitizer {
        let mut s = Sanitizer::new();
        s.enable(Some(HmcSpec::default().timing_floor()));
        s
    }

    #[test]
    fn disabled_sanitizer_records_nothing() {
        let mut s = Sanitizer::new();
        s.set_credit_pools(&[1]);
        s.credit_acquire(0, Time::ZERO);
        s.credit_acquire(0, Time::ZERO);
        s.credit_release(0, Time::ZERO);
        s.credit_release(0, Time::ZERO);
        s.note_inject(1, Time::ZERO);
        s.check_event_time(Time::from_ps(10));
        s.check_event_time(Time::from_ps(5));
        s.check_bank_access(0, BankOp::Read, Time::ZERO, Time::ZERO, Time::ZERO);
        s.check_drained(Time::ZERO);
        let r = s.report();
        assert!(r.is_clean());
        assert_eq!(r.total_checks(), 0);
    }

    #[test]
    fn legal_closed_page_schedule_is_clean() {
        let mut s = armed();
        let f = HmcSpec::default().timing_floor();
        let mut t = Time::ZERO;
        for _ in 0..5 {
            s.check_bank_access(
                3,
                BankOp::Read,
                t,
                t + f.read_access(),
                t + f.t_rc() + TimeDelta::from_ns(12),
            );
            t = t + f.t_rc() + TimeDelta::from_ns(12);
        }
        let r = s.report();
        assert!(r.is_clean(), "{r}");
        assert_eq!(r.checks_of(ViolationClass::DramTiming), 5);
    }

    #[test]
    fn short_bank_cycle_violates_timing() {
        let mut s = armed();
        let f = HmcSpec::default().timing_floor();
        // A cycle of tRAS alone (missing the precharge) is illegal.
        s.check_bank_access(0, BankOp::Read, Time::ZERO, Time::ZERO + f.read_access(), {
            Time::ZERO + f.t_ras
        });
        let r = s.report();
        assert_eq!(r.count_of(ViolationClass::DramTiming), 1);
        assert!(r.violations()[0].detail.contains("cycle"));
    }

    #[test]
    fn overlapping_accesses_and_fast_reactivation_flagged() {
        let mut s = armed();
        let f = HmcSpec::default().timing_floor();
        s.check_bank_access(
            7,
            BankOp::Read,
            Time::ZERO,
            Time::ZERO + f.read_access(),
            Time::ZERO + f.t_rc(),
        );
        // Second ACT long before the bank freed: overlap, tRC spacing, and
        // tCCD spacing (column commands 1 ns apart) all fire.
        s.check_bank_access(
            7,
            BankOp::Read,
            Time::from_ps(1_000),
            Time::from_ps(1_000) + f.read_access(),
            Time::from_ps(1_000) + f.t_rc(),
        );
        let r = s.report();
        assert_eq!(r.count_of(ViolationClass::DramTiming), 3);
    }

    #[test]
    fn early_data_violates_trcd_tcl() {
        let mut s = armed();
        let f = HmcSpec::default().timing_floor();
        s.check_bank_access(
            1,
            BankOp::Read,
            Time::ZERO,
            Time::from_ps(1_000), // far below the 50 ns floor
            Time::ZERO + f.t_rc(),
        );
        let r = s.report();
        assert_eq!(r.count_of(ViolationClass::DramTiming), 1);
        assert!(r.violations()[0].detail.contains("data"));
    }

    #[test]
    fn credit_ledger_catches_overflow_and_underflow() {
        let mut s = armed();
        s.set_credit_pools(&[2, 2]);
        s.credit_acquire(0, Time::ZERO);
        s.credit_acquire(0, Time::ZERO);
        s.credit_acquire(0, Time::ZERO); // over the pool
        let r = s.report();
        assert_eq!(r.count_of(ViolationClass::CreditOverflow), 1);
        s.credit_release(1, Time::ZERO); // never acquired on link 1
        let r = s.report();
        assert_eq!(r.count_of(ViolationClass::CreditUnderflow), 1);
        assert_eq!(s.credits_in_use()[0], 3);
    }

    #[test]
    fn balanced_credits_are_clean() {
        let mut s = armed();
        s.set_credit_pools(&[32]);
        for _ in 0..1_000 {
            s.credit_acquire(0, Time::ZERO);
            s.credit_release(0, Time::ZERO);
        }
        assert!(s.report().is_clean());
        assert_eq!(s.credits_in_use()[0], 0);
    }

    #[test]
    fn conservation_ledger_tracks_inject_and_retire() {
        let mut s = armed();
        s.note_inject(1, Time::ZERO);
        s.note_inject(2, Time::ZERO);
        assert_eq!(s.in_flight_count(), 2);
        s.note_retire(1, Time::from_ps(10));
        s.check_drained(Time::from_ps(20));
        let r = s.report();
        assert_eq!(r.count_of(ViolationClass::Conservation), 1);
        assert!(r.violations()[0].detail.contains("in flight at drain"));
        assert_eq!(r.injected(), 2);
        assert_eq!(r.retired(), 1);
        assert_eq!(r.in_flight(), 1);
    }

    #[test]
    fn duplicate_inject_and_unknown_retire_flagged() {
        let mut s = armed();
        s.note_inject(5, Time::ZERO);
        s.note_inject(5, Time::ZERO);
        s.note_retire(99, Time::ZERO);
        let r = s.report();
        assert_eq!(r.count_of(ViolationClass::Conservation), 2);
    }

    #[test]
    fn time_order_and_queue_bound() {
        let mut s = armed();
        s.check_event_time(Time::from_ps(100));
        s.check_event_time(Time::from_ps(100)); // equal is fine
        s.check_event_time(Time::from_ps(50)); // backwards
        s.check_queue_bound("device events", 10, 100, Time::ZERO);
        s.check_queue_bound("device events", 200, 100, Time::ZERO);
        let r = s.report();
        assert_eq!(r.count_of(ViolationClass::TimeOrder), 1);
        assert_eq!(r.count_of(ViolationClass::QueueBound), 1);
    }

    #[test]
    fn violation_cap_counts_overflow() {
        let mut s = armed();
        for i in 0..(MAX_VIOLATIONS as u64 + 10) {
            s.note_retire(i, Time::ZERO); // every one unknown
        }
        let r = s.report();
        assert_eq!(r.violations().len(), MAX_VIOLATIONS);
        assert_eq!(r.total_violations(), MAX_VIOLATIONS as u64 + 10);
        assert!(!r.is_clean());
    }

    #[test]
    fn reports_merge_and_export_json() {
        let mut a = armed();
        a.note_inject(1, Time::ZERO);
        let mut b = armed();
        b.note_violation(
            ViolationClass::Watchdog,
            Time::from_ps(42),
            "no progress\nqueue dump: \"q0\"=3".to_string(),
        );
        let mut r = a.report();
        r.merge(&b.report());
        assert_eq!(r.total_violations(), 1);
        assert_eq!(r.in_flight(), 1);
        let json = r.to_json();
        assert!(json.contains("\"clean\":false"));
        assert!(json.contains("\"class\":\"watchdog\""));
        assert!(json.contains("\\n"), "newlines escaped: {json}");
        assert!(json.contains("\\\"q0\\\""), "quotes escaped: {json}");
        assert!(!json.contains("\n\""), "raw newline leaked into JSON");
        let text = r.to_string();
        assert!(text.contains("DIRTY"));
        assert!(text.contains("watchdog"));
    }
}
